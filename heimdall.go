// Package heimdall is the public API of this repository: a complete
// implementation of Heimdall, the least-privilege architecture for managed
// network services from "Watching the watchmen: Least privilege for managed
// network services" (HotNets'21).
//
// Heimdall replaces the current MSP model — where an authenticated
// technician holds root on every device of the customer network — with a
// three-step workflow:
//
//  1. a fine-grained privilege specification (Privilegemsp) is generated
//     for each ticket from a task template or written in a small DSL;
//  2. the technician works inside an isolated twin network that mimics the
//     production network, with every command mediated by a reference
//     monitor against the Privilegemsp;
//  3. a policy enforcer — hosted in a (simulated) trusted execution
//     environment — verifies the proposed changes against the customer's
//     network policies, schedules them safely into production, and keeps a
//     tamper-evident audit trail.
//
// The package re-exports the stable surface of the internal packages, so a
// downstream user needs a single import:
//
//	sys, err := heimdall.NewSystem(heimdall.Options{Network: prod})
//	tk := sys.Tickets.Create(heimdall.Ticket{Summary: "h1 cannot reach h2",
//	        Kind: heimdall.TaskConnectivity, SrcHost: "h1", DstHost: "h2"})
//	eng, err := sys.StartWork(tk.ID, "alice")
//	sess, err := eng.Console("r1")
//	out, err := sess.Exec("show ip route")
//	decision, err := eng.Commit()
//
// See the examples/ directory for complete runnable programs and DESIGN.md
// for the system inventory.
package heimdall

import (
	"heimdall/internal/audit"
	"heimdall/internal/authz"
	"heimdall/internal/config"
	"heimdall/internal/console"
	"heimdall/internal/core"
	"heimdall/internal/dataplane"
	"heimdall/internal/enclave"
	"heimdall/internal/enforcer"
	"heimdall/internal/faultinject"
	"heimdall/internal/journal"
	"heimdall/internal/monitor"
	"heimdall/internal/netmodel"
	"heimdall/internal/privilege"
	"heimdall/internal/replica"
	"heimdall/internal/scenarios"
	"heimdall/internal/service"
	"heimdall/internal/spec"
	"heimdall/internal/telemetry"
	"heimdall/internal/ticket"
	"heimdall/internal/twin"
	"heimdall/internal/verify"
)

// Network model.
type (
	// Network is the semantic model of a managed network.
	Network = netmodel.Network
	// Device is one managed network element (router, switch or host).
	Device = netmodel.Device
	// Interface is one interface of a device.
	Interface = netmodel.Interface
	// ACL is an ordered access list.
	ACL = netmodel.ACL
	// ACLEntry is one rule of an access list.
	ACLEntry = netmodel.ACLEntry
	// StaticRoute is a manually configured route.
	StaticRoute = netmodel.StaticRoute
	// OSPFProcess is a device's OSPF configuration.
	OSPFProcess = netmodel.OSPFProcess
	// BGPProcess is a device's eBGP configuration.
	BGPProcess = netmodel.BGPProcess
	// BGPNeighbor is one configured eBGP peering.
	BGPNeighbor = netmodel.BGPNeighbor
	// DeviceKind classifies devices (Router, Switch, Host).
	DeviceKind = netmodel.DeviceKind
	// Protocol identifies IP protocols in flows and ACLs.
	Protocol = netmodel.Protocol
	// ACLAction is the verdict of an ACL entry.
	ACLAction = netmodel.ACLAction
)

// ACL entry actions.
const (
	ACLPermit = netmodel.Permit
	ACLDeny   = netmodel.Deny
)

// Device kinds and protocols.
const (
	Router = netmodel.Router
	Switch = netmodel.Switch
	Host   = netmodel.Host

	AnyProto = netmodel.AnyProto
	TCP      = netmodel.TCP
	UDP      = netmodel.UDP
	ICMP     = netmodel.ICMP
)

// NewNetwork returns an empty network model.
func NewNetwork(name string) *Network { return netmodel.NewNetwork(name) }

// Configuration text.
var (
	// ParseConfig reads vendor-style configuration text into a device model.
	ParseConfig = config.Parse
	// PrintConfig renders a device model as canonical configuration text.
	PrintConfig = config.Print
	// DiffDevices computes the semantic changes between two device states.
	DiffDevices = config.DiffDevice
)

// Dataplane.
type (
	// Snapshot is the computed forwarding state of one network
	// configuration.
	Snapshot = dataplane.Snapshot
	// Flow describes traffic for traces and policy checks.
	Flow = dataplane.Flow
	// Trace is the hop-by-hop fate of one flow.
	Trace = dataplane.Trace
	// ChangeKind classifies a configuration change for incremental
	// snapshot derivation (Snapshot.Derive).
	ChangeKind = dataplane.ChangeKind
	// NetworkChange names one mutated device and its change class.
	NetworkChange = dataplane.Change
	// ChangeSet lists the changes between a snapshot's network and a
	// derived network.
	ChangeSet = dataplane.ChangeSet
)

// Change classes for Snapshot.Derive. ChangeL2 covers switching-fabric
// edits (VLANs, access/trunk port membership, L2 port state); ChangeL3Topology
// covers routed-interface and addressing edits. ChangeTopology remains the
// conservative umbrella for link or device add/remove.
const (
	ChangeACL        = dataplane.ChangeACL
	ChangeStatic     = dataplane.ChangeStatic
	ChangeOSPF       = dataplane.ChangeOSPF
	ChangeBGP        = dataplane.ChangeBGP
	ChangeL2         = dataplane.ChangeL2
	ChangeL3Topology = dataplane.ChangeL3Topology
	ChangeTopology   = dataplane.ChangeTopology
)

// ComputeSnapshot computes the forwarding behaviour of a network.
func ComputeSnapshot(n *Network) *Snapshot { return dataplane.Compute(n) }

// Policies and verification.
type (
	// Policy is one verifiable network policy.
	Policy = verify.Policy
	// Violation is a failed policy with its counterexample trace.
	Violation = verify.Violation
	// VerifyResult summarises one verification run.
	VerifyResult = verify.Result
)

// Policy kinds.
const (
	Reachability = verify.Reachability
	Isolation    = verify.Isolation
	Waypoint     = verify.Waypoint
)

var (
	// CheckPolicies evaluates policies against a snapshot.
	CheckPolicies = verify.Check
	// ParsePolicies decodes a JSON policy set.
	ParsePolicies = verify.ParsePolicies
	// MinePolicies derives the policy set implied by a baseline snapshot
	// (the config2spec role in the paper's pipeline).
	MinePolicies = spec.Mine
)

// MiningOptions configures MinePolicies.
type MiningOptions = spec.Options

// MiningService is one probed protocol/port combination.
type MiningService = spec.Service

// Privilegemsp.
type (
	// PrivilegeSpec is a ticket's Privilegemsp.
	PrivilegeSpec = privilege.Spec
	// PrivilegeRule is one allow/deny predicate.
	PrivilegeRule = privilege.Rule
	// CompiledPrivilegeSpec is a Spec compiled into a segment trie for
	// allocation-free Allows checks on hot mediation paths.
	CompiledPrivilegeSpec = privilege.CompiledSpec
	// TaskKind classifies tickets for privilege templates.
	TaskKind = privilege.TaskKind
	// TemplateInput describes a ticket to GeneratePrivileges.
	TemplateInput = privilege.TemplateInput
	// Escalation is a pending privilege escalation request.
	Escalation = privilege.Escalation
)

// Task kinds for privilege templates.
const (
	TaskConnectivity = privilege.TaskConnectivity
	TaskACL          = privilege.TaskACL
	TaskVLAN         = privilege.TaskVLAN
	TaskOSPF         = privilege.TaskOSPF
	TaskISP          = privilege.TaskISP
	TaskInterface    = privilege.TaskInterface
	TaskMonitoring   = privilege.TaskMonitoring

	Allow = privilege.AllowEffect
	Deny  = privilege.DenyEffect
)

var (
	// ParsePrivilegeSpec parses the text DSL ("allow(action, resource)").
	ParsePrivilegeSpec = privilege.ParseSpec
	// GeneratePrivileges builds a task-driven Privilegemsp.
	GeneratePrivileges = privilege.Generate
)

// Twin network.
type (
	// Twin is an isolated twin network for one ticket.
	Twin = twin.Twin
	// TwinConfig assembles a twin network.
	TwinConfig = twin.Config
	// TwinSession is a mediated console on a twin device.
	TwinSession = twin.Session
	// SliceStrategy selects how the presentation slice is computed.
	SliceStrategy = twin.SliceStrategy
	// ErrDenied is returned when the reference monitor blocks a command.
	ErrDenied = twin.ErrDenied
)

// Slice strategies (the paper's Figure 5 design space).
const (
	SliceAll        = twin.SliceAll
	SliceNeighbors  = twin.SliceNeighbors
	SliceTaskDriven = twin.SliceTaskDriven
)

var (
	// NewTwin builds a twin network.
	NewTwin = twin.New
	// ComputeSlice returns the devices a strategy exposes for a ticket.
	ComputeSlice = twin.ComputeSlice
)

// Terminal adds IOS-style modal editing (configure terminal, sub-modes) on
// top of any mediated command Runner.
type Terminal = console.Terminal

// TerminalRunner executes one flat console command line.
type TerminalRunner = console.Runner

// NewTerminal wraps a Runner (e.g. a TwinSession's Exec) in a modal
// terminal.
func NewTerminal(run console.Runner) *Terminal { return console.NewTerminal(run) }

// Tickets.
type (
	// Ticket describes one reported issue.
	Ticket = ticket.Ticket
	// TicketStatus is the lifecycle state of a ticket.
	TicketStatus = ticket.Status
	// Fault is one injectable misconfiguration (fault-injection library).
	Fault = ticket.Fault
	// FixCommand is one console command of a prepared fix script.
	FixCommand = ticket.FixCommand
)

// Ticket statuses.
const (
	TicketOpen       = ticket.Open
	TicketInProgress = ticket.InProgress
	TicketResolved   = ticket.Resolved
	TicketRejected   = ticket.Rejected
	TicketClosed     = ticket.Closed
)

// Enforcer, audit and enclave.
type (
	// Enforcer gates twin changes into production.
	Enforcer = enforcer.Enforcer
	// Decision is the outcome of reviewing a change set.
	Decision = enforcer.Decision
	// AuditTrail is the tamper-evident audit log.
	AuditTrail = audit.Trail
	// AuditEntry is one link of the audit chain.
	AuditEntry = audit.Entry
	// EnclavePlatform is the simulated TEE root of trust.
	EnclavePlatform = enclave.Platform
	// AttestationReport proves the enforcer's code identity.
	AttestationReport = enclave.Report
)

// ScheduleChanges orders a change set for safe application (additive
// changes before subtractive ones).
var ScheduleChanges = enforcer.Schedule

// Resilient commit pipeline (see docs/ROBUSTNESS.md).
type (
	// RetryPolicy tunes per-change push retries and backoff
	// (Enforcer.Retry; the zero value means the defaults).
	RetryPolicy = enforcer.RetryPolicy
	// CommitTarget is the device-push path of a commit.
	CommitTarget = enforcer.Target
	// RecoveryReport describes what Enforcer.Recover did.
	RecoveryReport = enforcer.RecoveryReport
	// CommitJournal is the enforcer's write-ahead commit journal.
	CommitJournal = journal.Journal
	// JournalRecord is one hash-chained commit-journal record.
	JournalRecord = journal.Record
	// FaultPlan is a deterministic fault schedule.
	FaultPlan = faultinject.Plan
	// FaultRule schedules faults for one device/operation.
	FaultRule = faultinject.Rule
	// FaultInjector executes a FaultPlan (Enforcer.SetInjector).
	FaultInjector = faultinject.Injector
)

var (
	// NewFaultInjector builds an injector from a fault plan.
	NewFaultInjector = faultinject.New
	// RandomFaultPlan derives a reproducible fault schedule from a seed.
	RandomFaultPlan = faultinject.RandomPlan
	// IsTransientFault reports whether an error is retryable.
	IsTransientFault = faultinject.IsTransient
	// WrapFaultConn gates a net.Conn with an injector (transport drills).
	WrapFaultConn = faultinject.WrapConn
	// ImportCommitJournal parses an exported commit journal and verifies
	// it against the journal key before recovery may trust it.
	ImportCommitJournal = journal.Import
)

// Replicated enforcer: N replicas each holding an independent HMAC-chained
// journal copy, quorum commits and Byzantine cross-audit (see
// docs/ROBUSTNESS.md, "The replicated enforcer").
type (
	// ReplicaGroup is a quorum of enforcer replicas; wire it in with
	// Enforcer.SetTarget to replicate commits.
	ReplicaGroup = replica.Group
	// ReplicaConfig assembles a ReplicaGroup.
	ReplicaConfig = replica.Config
	// EnforcerReplica is one member of a ReplicaGroup.
	EnforcerReplica = replica.Replica
	// ReplicaState is a replica's lifecycle state (live, lagging,
	// quarantined).
	ReplicaState = replica.State
	// ReplicaAuditReport is the outcome of one Byzantine cross-audit.
	ReplicaAuditReport = replica.AuditReport
	// QuorumError is the permanent (non-retryable) error a commit gets
	// when the live replica count falls below quorum.
	QuorumError = replica.QuorumError
	// JournalDiff classifies how two journal chains relate
	// (equal/prefix/extends/diverged) with the first disagreeing index.
	JournalDiff = journal.DiffResult
	// JournalHead summarises a chain tip (length + head hash).
	JournalHead = journal.Head
	// JournalApproval is one multi-party authorization signature embedded
	// in a journal intent record.
	JournalApproval = journal.Approval
)

var (
	// NewReplicaGroup builds a replica group mirroring the coordinator's
	// journal onto fresh copies of the production network.
	NewReplicaGroup = replica.NewGroup
	// DiffJournals compares two journal chains record by record.
	DiffJournals = journal.Diff
)

// M-of-N multi-party authorization: high-risk change sets need M approval
// signatures before the enforcer (and every replica) will push them.
type (
	// AuthzRisk classifies a change set's blast radius.
	AuthzRisk = authz.Risk
	// AuthzPolicy holds the registered approvers and the M-of-N rule per
	// risk class.
	AuthzPolicy = authz.Policy
	// AuthzSigner produces HMAC approval signatures for one approver.
	AuthzSigner = authz.Signer
)

var (
	// ClassifyRisk assigns a change set its risk class.
	ClassifyRisk = authz.Classify
	// NewAuthzPolicy builds an M-of-N approval policy.
	NewAuthzPolicy = authz.NewPolicy
	// AuthzDigest is the canonical ticket+changes digest approvals sign.
	AuthzDigest = authz.Digest
)

// ConflictPolicy selects how the enforcer mediates racing tickets whose
// change scopes overlap (Enforcer.Conflict): off, serialize, or reject.
type ConflictPolicy = enforcer.ConflictPolicy

// Conflict mediation policies.
const (
	MediateOff       = enforcer.MediateOff
	MediateSerialize = enforcer.MediateSerialize
	MediateReject    = enforcer.MediateReject
)

// ImportAuditTrail parses an exported audit trail and verifies it against
// the trail key, rejecting any tampering.
var ImportAuditTrail = audit.Import

// SummarizeAuditTrail groups trail entries into per-ticket review reports.
var SummarizeAuditTrail = audit.Summarize

// AuditTicketReport is the per-ticket review summary an auditor reads.
type AuditTicketReport = audit.TicketReport

// ReachabilityDelta is one host pair whose reachability a change flips.
type ReachabilityDelta = verify.Delta

// DiffReachability returns the host pairs whose delivery verdict changes
// between two snapshots (the what-if view of a change set).
var DiffReachability = verify.DiffReachability

// ConfigChange is one semantic configuration change.
type ConfigChange = config.Change

// Workflow.
type (
	// System is one Heimdall deployment for a customer network.
	System = core.System
	// Options configures a deployment.
	Options = core.Options
	// Engagement is one technician working one ticket inside a twin.
	Engagement = core.Engagement
)

// NewSystem builds a Heimdall deployment around a production network.
func NewSystem(opts Options) (*System, error) { return core.NewSystem(opts) }

// EmergencySession is a mediated, enforcer-guarded console on a production
// device (paper §7 emergency mode; see Engagement.EnableEmergency).
type EmergencySession = core.EmergencySession

// Replay is the result of re-executing a ticket's audited session.
type Replay = core.Replay

// ReplayTicket re-executes a ticket's allowed commands — extracted from a
// verified audit trail — on a twin of the incident-time baseline.
var ReplayTicket = core.ReplayTicket

// Performance monitoring (the paper's §2.1 third MSP service class).
type (
	// TrafficDemand is one offered host-to-host flow.
	TrafficDemand = monitor.Demand
	// BandwidthReport aggregates routed demands into per-interface load.
	BandwidthReport = monitor.Report
	// InterfaceLoad is the traffic leaving one interface.
	InterfaceLoad = monitor.InterfaceLoad
)

var (
	// EvaluateTraffic routes a demand matrix over a snapshot.
	EvaluateTraffic = monitor.Evaluate
	// UniformTrafficMatrix generates a deterministic random demand matrix.
	UniformTrafficMatrix = monitor.UniformMatrix
)

// Telemetry: dependency-free metrics and span tracing for the mediation
// path. Pass a *MetricsRegistry as Options.Meter to instrument a whole
// deployment, or leave it nil for the zero-cost no-op meter.
type (
	// Meter hands out counters, gauges and histograms.
	Meter = telemetry.Meter
	// MetricsRegistry is the concrete Meter with Prometheus-text exposition.
	MetricsRegistry = telemetry.Registry
	// MetricLabel is one metric or span label.
	MetricLabel = telemetry.Label
	// Tracer records parent/child spans on a pluggable clock.
	Tracer = telemetry.Tracer
	// Span is one traced operation.
	Span = telemetry.Span
	// VirtualClock is a manually advanced clock for deterministic spans.
	VirtualClock = telemetry.VirtualClock
)

var (
	// NewMetricsRegistry creates an empty metrics registry.
	NewMetricsRegistry = telemetry.NewRegistry
	// NopMeter returns the shared no-op meter.
	NopMeter = telemetry.Nop
	// Label builds one metric label.
	Label = telemetry.L
	// NewTracer creates a span tracer on the given clock (nil = wall clock).
	NewTracer = telemetry.NewTracer
	// NewVirtualClock creates a deterministic clock starting at start.
	NewVirtualClock = telemetry.NewVirtualClock
	// LatencyBuckets is the default histogram bucketing for latencies.
	LatencyBuckets = telemetry.LatencyBuckets
	// CheckPoliciesMetered is CheckPolicies with verifier telemetry.
	CheckPoliciesMetered = verify.CheckMetered
)

// Evaluation scenarios (the paper's Table 1 networks).
type Scenario = scenarios.Scenario

var (
	// EnterpriseScenario builds the enterprise evaluation network.
	EnterpriseScenario = scenarios.Enterprise
	// UniversityScenario builds the university evaluation network.
	UniversityScenario = scenarios.University
	// ProviderScenario builds the multi-site eBGP scenario (beyond the
	// paper's Table 1 pair).
	ProviderScenario = scenarios.Provider
)

// Multi-tenant service (cmd/heimdalld): one long-running process hosting
// many customer networks, each behind its own twin/enforcer/audit-trail
// deployment, with session lifecycle, bounded verify capacity and an HTTP
// JSON API. See docs/SERVICE.md.
type (
	// Service hosts many tenant deployments concurrently.
	Service = service.Service
	// ServiceConfig tunes a Service (shards, verify pool, idle timeout,
	// clock, catalog).
	ServiceConfig = service.Config
	// ServiceTenant is one hosted customer network.
	ServiceTenant = service.Tenant
	// SessionInfo is the API-facing view of a technician session.
	SessionInfo = service.Info
	// ServiceLoadConfig sizes the scripted-technician load generator.
	ServiceLoadConfig = service.LoadConfig
	// ServiceLoadReport is the load generator's result.
	ServiceLoadReport = service.LoadReport
)

var (
	// NewService assembles a multi-tenant service.
	NewService = service.New
	// RunServiceLoad replays concurrent scripted technician sessions
	// against a service and reports mediated throughput and latency.
	RunServiceLoad = service.RunLoad
	// BuiltinScenarioCatalog maps the built-in scenario names to their
	// constructors for ServiceConfig.Catalog.
	BuiltinScenarioCatalog = service.BuiltinCatalog
)

// Service errors (HTTP-mapped by the API layer).
var (
	ErrServiceQueueFull      = service.ErrQueueFull
	ErrServiceSessionExpired = service.ErrSessionExpired
	ErrServiceSessionClosed  = service.ErrSessionClosed
	ErrServiceBadToken       = service.ErrBadToken
)
