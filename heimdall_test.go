package heimdall_test

import (
	"errors"
	"net/netip"
	"strings"
	"testing"

	"heimdall"
)

// buildNet assembles the quickstart topology through the public API.
func buildNet(t *testing.T) *heimdall.Network {
	t.Helper()
	n := heimdall.NewNetwork("api-test")
	r1 := n.AddDevice("r1", heimdall.Router)
	h1 := n.AddDevice("h1", heimdall.Host)
	web := n.AddDevice("web", heimdall.Host)
	if err := n.Connect("h1", "eth0", "r1", "Gi0/0"); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("r1", "Gi0/1", "web", "eth0"); err != nil {
		t.Fatal(err)
	}
	h1.Interface("eth0").Addr = netip.MustParsePrefix("10.1.0.10/24")
	h1.DefaultGateway = netip.MustParseAddr("10.1.0.1")
	r1.Interface("Gi0/0").Addr = netip.MustParsePrefix("10.1.0.1/24")
	r1.Interface("Gi0/1").Addr = netip.MustParsePrefix("10.2.0.1/24")
	web.Interface("eth0").Addr = netip.MustParsePrefix("10.2.0.10/24")
	web.DefaultGateway = netip.MustParseAddr("10.2.0.1")
	edge := r1.ACL("EDGE", true)
	edge.InsertEntry(heimdall.ACLEntry{Seq: 10, Action: heimdall.ACLDeny, Proto: heimdall.TCP,
		Dst: netip.MustParsePrefix("10.2.0.10/32"), DstPort: 80})
	edge.InsertEntry(heimdall.ACLEntry{Seq: 20, Action: heimdall.ACLPermit})
	r1.Interface("Gi0/0").ACLIn = "EDGE"
	return n
}

func TestPublicWorkflow(t *testing.T) {
	prod := buildNet(t)
	policies := []heimdall.Policy{
		{ID: "P001", Kind: heimdall.Reachability, Src: "h1", Dst: "web", Proto: heimdall.TCP, DstPort: 80},
	}
	sys, err := heimdall.NewSystem(heimdall.Options{Network: prod, Policies: policies})
	if err != nil {
		t.Fatal(err)
	}
	tk := sys.Tickets.Create(heimdall.Ticket{
		Summary: "web down", Kind: heimdall.TaskACL,
		SrcHost: "h1", DstHost: "web", Proto: heimdall.TCP, DstPort: 80,
		CreatedBy: "admin",
	})
	eng, err := sys.StartWork(tk.ID, "alice")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.Console("r1")
	if err != nil {
		t.Fatal(err)
	}
	// Denied command surfaces the typed error through the facade.
	_, err = sess.Exec("interface Gi0/0 shutdown")
	var denied *heimdall.ErrDenied
	if !errors.As(err, &denied) {
		t.Fatalf("expected ErrDenied, got %v", err)
	}
	if _, err := sess.Exec("no access-list EDGE 10"); err != nil {
		t.Fatal(err)
	}
	decision, err := eng.Commit()
	if err != nil || !decision.Accepted {
		t.Fatalf("commit: %v %+v", err, decision)
	}
	if got := sys.Tickets.Get(tk.ID).Status; got != heimdall.TicketResolved {
		t.Fatalf("status = %v", got)
	}
	// Trace through the snapshot API.
	tr := heimdall.ComputeSnapshot(prod).TraceFrom("h1", heimdall.Flow{
		Proto: heimdall.TCP, Src: netip.MustParseAddr("10.1.0.10"),
		Dst: netip.MustParseAddr("10.2.0.10"), SrcPort: 40000, DstPort: 80,
	})
	if !tr.Delivered() {
		t.Fatalf("production trace: %s", tr)
	}
	// Audit export/import through the facade.
	data, err := sys.Enforcer.Trail().Export()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := heimdall.ImportAuditTrail(sys.Enforcer.TrailKey(), data); err != nil {
		t.Fatal(err)
	}
}

func TestPublicConfigAndPolicies(t *testing.T) {
	n := buildNet(t)
	text := heimdall.PrintConfig(n.Device("r1"))
	if !strings.Contains(text, "ip access-list extended EDGE") {
		t.Fatalf("config:\n%s", text)
	}
	parsed, err := heimdall.ParseConfig("r1", text)
	if err != nil {
		t.Fatal(err)
	}
	if diff := heimdall.DiffDevices(n.Device("r1"), parsed); len(diff) != 0 {
		t.Fatalf("round trip diff: %v", diff)
	}

	spec, err := heimdall.ParsePrivilegeSpec("T", "u", "allow(show.*, device:*)")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Allows("show.ip.route", "device:r1") {
		t.Fatal("DSL spec evaluation broken through the facade")
	}

	// Mining and checking through the facade.
	snap := heimdall.ComputeSnapshot(n)
	mined := heimdall.MinePolicies(snap, n, heimdall.MiningOptions{})
	if len(mined) == 0 {
		t.Fatal("no policies mined")
	}
	if res := heimdall.CheckPolicies(snap, mined); !res.OK() {
		t.Fatalf("mined policies violated: %v", res.Violations)
	}
}

func TestPublicScenarios(t *testing.T) {
	ent := heimdall.EnterpriseScenario()
	if got := ent.Row().Routers; got != 9 {
		t.Fatalf("enterprise routers = %d", got)
	}
	slice := heimdall.ComputeSlice(ent.Network, ent.Snapshot(), heimdall.SliceTaskDriven, "h2", "h3", nil)
	if len(slice) == 0 || len(slice) >= len(ent.Network.Devices) {
		t.Fatalf("slice = %v", slice)
	}
	if heimdall.SliceTaskDriven.String() != "Heimdall" {
		t.Fatal("strategy naming broken")
	}
}

func TestPublicTwinDirect(t *testing.T) {
	// Using the twin layer directly (without the workflow engine).
	prod := buildNet(t)
	spec, err := heimdall.GeneratePrivileges(heimdall.TemplateInput{
		Ticket: "T1", Technician: "t", Kind: heimdall.TaskMonitoring,
		Scope: []string{"r1", "h1", "web"},
	})
	if err != nil {
		t.Fatal(err)
	}
	tw, err := heimdall.NewTwin(heimdall.TwinConfig{
		Ticket: "T1", Technician: "t", Production: prod, Spec: spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := tw.OpenConsole("r1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("show ip route"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("no access-list EDGE 10"); err == nil {
		t.Fatal("monitoring spec should deny writes")
	}
}

func TestPublicTerminalOverTwin(t *testing.T) {
	prod := buildNet(t)
	policies := []heimdall.Policy{
		{ID: "P001", Kind: heimdall.Reachability, Src: "h1", Dst: "web", Proto: heimdall.TCP, DstPort: 80},
	}
	sys, err := heimdall.NewSystem(heimdall.Options{Network: prod, Policies: policies})
	if err != nil {
		t.Fatal(err)
	}
	tk := sys.Tickets.Create(heimdall.Ticket{
		Summary: "web down", Kind: heimdall.TaskACL,
		SrcHost: "h1", DstHost: "web", Proto: heimdall.TCP, DstPort: 80,
		CreatedBy: "admin",
	})
	eng, err := sys.StartWork(tk.ID, "alice")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.Console("r1")
	if err != nil {
		t.Fatal(err)
	}
	// Modal editing over the mediated session.
	term := heimdall.NewTerminal(sess.Exec)
	if _, err := term.Script(`
show access-lists EDGE
configure terminal
ip access-list extended EDGE
no 10
end
`); err != nil {
		t.Fatal(err)
	}
	// The reference monitor still applies inside config mode.
	if _, err := term.Script("configure terminal\ninterface Gi0/0\nshutdown\n"); err == nil {
		t.Fatal("denied write accepted through the terminal")
	}
	if _, err := eng.Commit(); err != nil {
		t.Fatal(err)
	}

	// Forensic replay through the facade.
	replay, err := heimdall.ReplayTicket(sys.Enforcer.Trail(), tk.ID, buildNet(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(replay.Changes) != 1 {
		t.Fatalf("replay changes = %v", replay.Changes)
	}
	// Per-ticket audit report through the facade.
	reports := heimdall.SummarizeAuditTrail(sys.Enforcer.Trail().Entries())
	if len(reports) != 1 || reports[0].Commands == 0 {
		t.Fatalf("reports = %+v", reports)
	}
}
