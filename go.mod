module heimdall

go 1.22
