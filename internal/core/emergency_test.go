package core

import (
	"strings"
	"testing"

	"heimdall/internal/audit"
	"heimdall/internal/dataplane"
	"heimdall/internal/privilege"
)

func TestEmergencyModeRequiresAuthorization(t *testing.T) {
	sys, issue := newFaultedSystem(t, "isp")
	tk := fileIssue(sys, issue)
	eng, err := sys.StartWork(tk.ID, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.EmergencyConsole(issue.Fault.RootCause); err == nil {
		t.Fatal("emergency console without authorization")
	}
	eng.EnableEmergency("netadmin")
	if _, err := eng.EmergencyConsole(issue.Fault.RootCause); err != nil {
		t.Fatal(err)
	}
	// Devices outside the slice stay invisible even in emergencies.
	if _, err := eng.EmergencyConsole("h9"); err == nil {
		t.Fatal("emergency console outside slice")
	}
}

func TestEmergencyFixAppliesDirectlyToProduction(t *testing.T) {
	sys, issue := newFaultedSystem(t, "isp")
	tk := fileIssue(sys, issue)
	eng, err := sys.StartWork(tk.ID, "alice")
	if err != nil {
		t.Fatal(err)
	}
	eng.EnableEmergency("netadmin")

	sess, err := eng.EmergencyConsole("r3")
	if err != nil {
		t.Fatal(err)
	}
	// Reads execute against live production state.
	out, err := sess.Exec("show ip route")
	if err != nil || !strings.Contains(out, "directly connected") {
		t.Fatalf("show = %q err %v", out, err)
	}
	// The real fix, straight to production.
	for _, cmd := range issue.Fault.Fix {
		if _, err := sess.Exec(cmd.Line); err != nil {
			t.Fatalf("%s: %v", cmd.Line, err)
		}
	}
	tr, err := dataplane.Compute(sys.Production()).Reach(issue.SrcHost, issue.DstHost, issue.Proto, issue.DstPort)
	if err != nil || !tr.Delivered() {
		t.Fatalf("production not fixed: %v %v", tr, err)
	}

	// The trail carries EMERGENCY markers for the whole episode.
	markers := 0
	for _, e := range sys.Enforcer.Trail().Entries() {
		if strings.Contains(e.Detail, "EMERGENCY") {
			markers++
		}
	}
	if markers < 5 {
		t.Fatalf("EMERGENCY audit markers = %d", markers)
	}
	if err := sys.Enforcer.Trail().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestEmergencyPrivilegesStillEnforced(t *testing.T) {
	sys, issue := newFaultedSystem(t, "isp")
	tk := fileIssue(sys, issue)
	eng, err := sys.StartWork(tk.ID, "mallory")
	if err != nil {
		t.Fatal(err)
	}
	eng.EnableEmergency("netadmin")
	sess, err := eng.EmergencyConsole("r3")
	if err != nil {
		t.Fatal(err)
	}
	// An ISP ticket's spec grants no ACL writes — not even in emergencies.
	if _, err := sess.Exec("access-list EVIL 10 permit ip any any"); err == nil {
		t.Fatal("unprivileged emergency write accepted")
	}
	// Parse errors are audited and rejected.
	if _, err := sess.Exec("frobnicate"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestEmergencyShadowVerificationBlocksViolations(t *testing.T) {
	sys, issue := newFaultedSystem(t, "isp")
	tk := fileIssue(sys, issue)
	eng, err := sys.StartWork(tk.ID, "mallory")
	if err != nil {
		t.Fatal(err)
	}
	// Over-broad grant again: ACL writes on r2 (finance guard).
	eng.Spec.Rules = append(eng.Spec.Rules,
		privilegeRule("config.acl.*", "device:r2"),
		privilegeRule("show.*", "device:r2"))
	eng.Slice["r2"] = true
	eng.EnableEmergency("netadmin")

	sess, err := eng.EmergencyConsole("r2")
	if err != nil {
		t.Fatal(err)
	}
	// The command is privileged, but shadow verification catches the
	// policy violation before production changes.
	_, err = sess.Exec("access-list FINANCE-GUARD 15 permit ip any 10.9.0.0 0.0.0.255")
	if err == nil || !strings.Contains(err.Error(), "violate") {
		t.Fatalf("violating emergency write: err = %v", err)
	}
	for _, e := range sys.Production().Device("r2").ACLs["FINANCE-GUARD"].Entries {
		if e.Seq == 15 {
			t.Fatal("violating entry reached production")
		}
	}
	// A refusal entry is on the trail.
	found := false
	for _, e := range sys.Enforcer.Trail().Entries() {
		if e.Kind == audit.KindVerify && strings.Contains(e.Detail, "EMERGENCY write refused") {
			found = true
		}
	}
	if !found {
		t.Fatal("refusal not audited")
	}
}

func TestEmergencyRepairNotBlockedByExistingOutage(t *testing.T) {
	// The incident itself violates reachability policies; the shadow
	// verifier must scope them out so the repair is not deadlocked.
	sys, issue := newFaultedSystem(t, "ospf")
	tk := fileIssue(sys, issue)
	eng, err := sys.StartWork(tk.ID, "alice")
	if err != nil {
		t.Fatal(err)
	}
	eng.EnableEmergency("netadmin")
	sess, err := eng.EmergencyConsole("r7")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("router ospf no passive-interface Gi0/0"); err != nil {
		t.Fatalf("repair blocked: %v", err)
	}
	tr, _ := dataplane.Compute(sys.Production()).Reach(issue.SrcHost, issue.DstHost, issue.Proto, issue.DstPort)
	if !tr.Delivered() {
		t.Fatalf("production not repaired: %s", tr)
	}
}

func privilegeRule(action, resource string) privilege.Rule {
	return privilege.Rule{Effect: privilege.AllowEffect, Action: action, Resource: resource}
}
