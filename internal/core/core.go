// Package core wires Heimdall's components into the paper's three-step
// workflow (Figure 4):
//
//  1. an admin (or the task template) produces a Privilegemsp for a ticket;
//  2. the technician resolves the ticket inside an isolated twin network,
//     every command mediated by the reference monitor;
//  3. the policy enforcer verifies the resulting changes and imports them
//     into the production network, recording a tamper-evident audit trail
//     from inside a (simulated) TEE.
package core

import (
	"fmt"
	"sync"

	"heimdall/internal/audit"
	"heimdall/internal/config"
	"heimdall/internal/console"
	"heimdall/internal/dataplane"
	"heimdall/internal/enclave"
	"heimdall/internal/enforcer"
	"heimdall/internal/netmodel"
	"heimdall/internal/privilege"
	"heimdall/internal/spec"
	"heimdall/internal/telemetry"
	"heimdall/internal/ticket"
	"heimdall/internal/twin"
	"heimdall/internal/verify"
)

// Options configures a Heimdall deployment.
type Options struct {
	// Network is the customer's production network (required).
	Network *netmodel.Network
	// Policies are the network policies the enforcer guards. When nil,
	// they are mined from the baseline with config2spec-style mining.
	Policies []verify.Policy
	// Sensitive names hosts whose isolation is policy (used for mining
	// and for explicit denies in generated privilege specs).
	Sensitive map[string]bool
	// PlatformSeed makes the simulated TEE deterministic for tests; empty
	// uses a random platform secret.
	PlatformSeed string
	// SliceStrategy selects the twin's presentation slice; the default is
	// the paper's task-driven strategy.
	SliceStrategy twin.SliceStrategy
	// SliceStrategySet marks SliceStrategy as explicitly chosen (the zero
	// value is the All strategy, which is a valid choice).
	SliceStrategySet bool
	// Meter receives telemetry from the whole mediation path (reference
	// monitor, enforcer, verifier, audit trail). Nil means the no-op meter:
	// zero-config deployments pay nothing.
	Meter telemetry.Meter
}

// System is one customer deployment: production network, policies,
// ticketing, and the enclave-hosted policy enforcer.
type System struct {
	production *netmodel.Network
	policies   []verify.Policy
	sensitive  map[string]bool
	strategy   twin.SliceStrategy
	meter      telemetry.Meter

	Tickets  *ticket.System
	Enforcer *enforcer.Enforcer
	platform *enclave.Platform

	// prodMu guards reads (twin construction, snapshots) against writes
	// (commits, emergency changes) on the production network.
	prodMu sync.RWMutex
	// prodConsoleEnv backs emergency-mode consoles (lazily built).
	prodConsoleEnv *console.Env
}

// NewSystem builds a deployment around a production network.
func NewSystem(opts Options) (*System, error) {
	if opts.Network == nil {
		return nil, fmt.Errorf("core: nil production network")
	}
	if err := opts.Network.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid network: %w", err)
	}
	var platform *enclave.Platform
	var err error
	if opts.PlatformSeed != "" {
		platform = enclave.NewPlatformFromSeed(opts.PlatformSeed)
	} else if platform, err = enclave.NewPlatform(); err != nil {
		return nil, err
	}
	policies := opts.Policies
	if policies == nil {
		policies = spec.Mine(dataplane.Compute(opts.Network), opts.Network, spec.Options{
			Sensitive: opts.Sensitive,
		})
	}
	strategy := twin.SliceTaskDriven
	if opts.SliceStrategySet {
		strategy = opts.SliceStrategy
	}
	meter := opts.Meter
	if meter == nil {
		meter = telemetry.Nop()
	}
	encl := platform.Load("heimdall-enforcer-v1")
	enf := enforcer.New(encl, policies)
	enf.SetMeter(meter)
	return &System{
		production: opts.Network,
		policies:   policies,
		sensitive:  opts.Sensitive,
		strategy:   strategy,
		meter:      meter,
		Tickets:    ticket.NewSystem(),
		Enforcer:   enf,
		platform:   platform,
	}, nil
}

// Meter returns the deployment's telemetry meter (the no-op meter when
// none was configured).
func (s *System) Meter() telemetry.Meter { return s.meter }

// Production exposes the production network (the admin's view; MSP
// technicians never touch it directly).
func (s *System) Production() *netmodel.Network { return s.production }

// Policies returns the guarded policy set.
func (s *System) Policies() []verify.Policy { return s.policies }

// MutateProduction applies fn to the production network under the write
// lock, serializing out-of-band mutations (fault injection, admin edits)
// against concurrent twin construction, reviews and commits.
func (s *System) MutateProduction(fn func(*netmodel.Network) error) error {
	s.prodMu.Lock()
	defer s.prodMu.Unlock()
	// The mutation happens behind the enforcer's back; drop any review
	// verdicts cached against the pre-mutation network. Invalidate even
	// when fn fails — it may have partially applied before erroring.
	defer s.Enforcer.InvalidateReviews()
	return fn(s.production)
}

// Attest returns an attestation report for the enforcer, verifiable
// against the deployment's platform.
func (s *System) Attest(nonce []byte) (enclave.Report, error) {
	report := s.Enforcer.Attest(nonce)
	if err := s.platform.VerifyReport(report, report.Measurement, nonce); err != nil {
		return enclave.Report{}, err
	}
	return report, nil
}

// Engagement is one technician working one ticket inside a twin network.
type Engagement struct {
	sys    *System
	Ticket *ticket.Ticket
	Spec   *privilege.Spec
	Twin   *twin.Twin
	Slice  map[string]bool

	// emergency marks the engagement as authorized for emergency mode.
	emergency bool
}

// StartWork assigns the ticket to the technician and builds the engagement:
// the task-driven slice, the generated Privilegemsp, and the twin network.
func (s *System) StartWork(ticketID, technician string) (*Engagement, error) {
	tk := s.Tickets.Get(ticketID)
	if tk == nil {
		return nil, fmt.Errorf("core: no ticket %s", ticketID)
	}
	if err := s.Tickets.Assign(ticketID, technician); err != nil {
		return nil, err
	}
	tk = s.Tickets.Get(ticketID)

	s.prodMu.RLock()
	defer s.prodMu.RUnlock()
	snap := dataplane.Compute(s.production)
	slice := twin.ComputeSlice(s.production, snap, s.strategy, tk.SrcHost, tk.DstHost, tk.Suspects)

	var scope, suspects, sensitive []string
	for dev := range slice {
		scope = append(scope, dev)
		if s.production.Devices[dev] != nil && s.production.Devices[dev].Kind != netmodel.Host {
			suspects = append(suspects, dev)
		}
	}
	for h := range s.sensitive {
		if !slice[h] {
			sensitive = append(sensitive, h)
		}
	}
	pspec, err := privilege.Generate(privilege.TemplateInput{
		Ticket: tk.ID, Technician: technician, Kind: tk.Kind,
		Scope: scope, Suspects: suspects, Sensitive: sensitive,
	})
	if err != nil {
		return nil, err
	}
	tw, err := twin.New(twin.Config{
		Ticket:     tk.ID,
		Technician: technician,
		Production: s.production,
		Spec:       pspec,
		Slice:      slice,
		Trail:      s.Enforcer.Trail(),
		Meter:      s.meter,
	})
	if err != nil {
		return nil, err
	}
	return &Engagement{sys: s, Ticket: tk, Spec: pspec, Twin: tw, Slice: slice}, nil
}

// Console opens a mediated console on a twin device.
func (e *Engagement) Console(device string) (*twin.Session, error) {
	return e.Twin.OpenConsole(device)
}

// RunScript executes a prepared command list through mediated consoles and
// returns each command's output. It stops at the first error.
func (e *Engagement) RunScript(script []ticket.FixCommand) ([]string, error) {
	outputs := make([]string, 0, len(script))
	sessions := make(map[string]*twin.Session)
	for _, cmd := range script {
		sess, ok := sessions[cmd.Device]
		if !ok {
			var err error
			sess, err = e.Twin.OpenConsole(cmd.Device)
			if err != nil {
				return outputs, err
			}
			sessions[cmd.Device] = sess
		}
		out, err := sess.Exec(cmd.Line)
		if err != nil {
			return outputs, fmt.Errorf("core: %s on %s: %w", cmd.Line, cmd.Device, err)
		}
		outputs = append(outputs, out)
	}
	return outputs, nil
}

// SymptomResolved checks the ticket's flow inside the twin.
func (e *Engagement) SymptomResolved() (bool, error) {
	tk := e.Ticket
	if tk.SrcHost == "" || tk.DstHost == "" {
		return false, fmt.Errorf("core: ticket %s has no symptom flow", tk.ID)
	}
	tr, err := e.Twin.Snapshot().Reach(tk.SrcHost, tk.DstHost, tk.Proto, tk.DstPort)
	if err != nil {
		return false, err
	}
	return tr.Delivered(), nil
}

// RequestEscalation files a privilege escalation for admin review.
func (e *Engagement) RequestEscalation(rule privilege.Rule, justification string) *privilege.Escalation {
	esc := e.Spec.RequestEscalation(rule, justification)
	e.sys.Enforcer.Trail().Append(e.Ticket.ID, e.Ticket.Assignee, audit.KindEscalation,
		fmt.Sprintf("requested %s: %s", rule, justification), true)
	return esc
}

// ApproveEscalation applies an escalation after admin review.
func (e *Engagement) ApproveEscalation(esc *privilege.Escalation) error {
	if err := e.Spec.Approve(esc); err != nil {
		return err
	}
	e.sys.Enforcer.Trail().Append(e.Ticket.ID, e.Ticket.Assignee, audit.KindEscalation,
		"approved "+esc.Rule.String(), true)
	return nil
}

// Drifted reports whether the production network has changed since this
// engagement's twin was instantiated (e.g. another ticket committed, or an
// emergency fix landed). The enforcer always verifies against *current*
// production at commit time, so drift is safe — but a drifted twin may no
// longer reproduce production behaviour, and the technician should know.
func (e *Engagement) Drifted() bool {
	e.sys.prodMu.RLock()
	defer e.sys.prodMu.RUnlock()
	for _, name := range e.sys.production.DeviceNames() {
		base := e.Twin.Baseline().Devices[name]
		if base == nil {
			return true
		}
		// The twin baseline is sanitized; compare through the same lens.
		if len(config.DiffDevice(config.Sanitize(e.sys.production.Devices[name]), base)) != 0 {
			return true
		}
	}
	return false
}

// Review runs the enforcer's verification of the twin's current changes
// against live production — privilege check plus shadow-snapshot policy
// verification — without applying anything. The service layer calls this
// from its bounded verify pool; technicians use it as a pre-flight before
// Commit.
func (e *Engagement) Review() (*enforcer.Decision, error) {
	d, _, err := e.ReviewCached()
	return d, err
}

// ReviewCached is Review plus the enforcer's cache-hit indicator: true
// means the verdict was replayed from the content-addressed review cache
// rather than recomputed (always false when the cache is disabled).
func (e *Engagement) ReviewCached() (*enforcer.Decision, bool, error) {
	changes := e.Twin.Changes()
	if len(changes) == 0 {
		return nil, false, fmt.Errorf("core: nothing to review for %s", e.Ticket.ID)
	}
	e.sys.prodMu.RLock()
	defer e.sys.prodMu.RUnlock()
	d, hit := e.sys.Enforcer.ReviewCached(e.sys.production, changes, e.Spec)
	return d, hit, nil
}

// ReviewKey returns the content address a review of this engagement's
// pending changes would occupy right now (enforcer.ReviewKey), and false
// when there is nothing to review. Concurrent submissions with equal keys
// would receive the same verdict, which is what the service layer's
// request coalescing keys on.
func (e *Engagement) ReviewKey() (string, bool) {
	changes := e.Twin.Changes()
	if len(changes) == 0 {
		return "", false
	}
	return e.sys.Enforcer.ReviewKey(changes, e.Spec), true
}

// Commit extracts the twin's changes, has the enforcer verify and schedule
// them, applies them to production, and moves the ticket to Resolved (or
// Rejected when the enforcer refuses).
func (e *Engagement) Commit() (*enforcer.Decision, error) {
	changes := e.Twin.Changes()
	if len(changes) == 0 {
		return nil, fmt.Errorf("core: nothing to commit for %s", e.Ticket.ID)
	}
	e.sys.prodMu.Lock()
	decision, err := e.sys.Enforcer.Commit(e.sys.production, changes, e.Spec)
	e.sys.prodMu.Unlock()
	if err != nil {
		_ = e.sys.Tickets.AddNote(e.Ticket.ID, "enforcer rejected commit: "+decision.Reason())
		if terr := e.sys.Tickets.Transition(e.Ticket.ID, ticket.Rejected); terr != nil {
			return decision, fmt.Errorf("%w (and ticket transition failed: %v)", err, terr)
		}
		return decision, err
	}
	_ = e.sys.Tickets.AddNote(e.Ticket.ID,
		fmt.Sprintf("enforcer accepted %d changes (%d policies verified)", len(changes), decision.Checked))
	if err := e.sys.Tickets.Transition(e.Ticket.ID, ticket.Resolved); err != nil {
		return decision, err
	}
	return decision, nil
}
