package core

import (
	"errors"
	"strings"
	"testing"

	"heimdall/internal/audit"
	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
	"heimdall/internal/privilege"
	"heimdall/internal/scenarios"
	"heimdall/internal/telemetry"
	"heimdall/internal/ticket"
	"heimdall/internal/twin"
	"heimdall/internal/verify"
)

// newFaultedSystem injects the given enterprise issue into a fresh
// enterprise network and returns the system plus the issue.
func newFaultedSystem(t *testing.T, issueName string) (*System, scenarios.Issue) {
	t.Helper()
	scen := scenarios.Enterprise()
	var issue scenarios.Issue
	found := false
	for _, is := range scen.Issues {
		if is.Name == issueName {
			issue = is
			found = true
		}
	}
	if !found {
		t.Fatalf("no issue %q", issueName)
	}
	prod := scen.Network.Clone()
	if err := issue.Fault.Inject(prod); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Options{
		Network:      prod,
		Policies:     scen.Policies,
		Sensitive:    scen.Sensitive,
		PlatformSeed: "core-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, issue
}

func fileIssue(sys *System, issue scenarios.Issue) *ticket.Ticket {
	return sys.Tickets.Create(ticket.Ticket{
		Summary: issue.Fault.Description,
		Kind:    issue.Fault.Kind,
		SrcHost: issue.SrcHost,
		DstHost: issue.DstHost,
		Proto:   issue.Proto,
		DstPort: issue.DstPort,
		// The admin suspects the devices near the symptom; naming the
		// root-cause device mirrors tickets created by monitoring alarms.
		Suspects:  []string{issue.Fault.RootCause},
		CreatedBy: "netadmin",
	})
}

// TestEndToEndWorkflow runs the complete paper workflow for every
// enterprise issue: file ticket -> start work -> reproduce symptom in twin
// -> run prepared script -> symptom gone -> commit -> production fixed,
// ticket resolved, audit trail intact.
func TestEndToEndWorkflow(t *testing.T) {
	for _, name := range []string{"vlan", "ospf", "isp"} {
		t.Run(name, func(t *testing.T) {
			sys, issue := newFaultedSystem(t, name)
			tk := fileIssue(sys, issue)

			eng, err := sys.StartWork(tk.ID, "alice")
			if err != nil {
				t.Fatal(err)
			}
			// The symptom reproduces inside the twin.
			if ok, err := eng.SymptomResolved(); err != nil || ok {
				t.Fatalf("symptom should reproduce in twin: ok=%v err=%v", ok, err)
			}
			// The prepared script runs under mediation.
			if _, err := eng.RunScript(issue.Script); err != nil {
				t.Fatalf("script: %v", err)
			}
			if ok, _ := eng.SymptomResolved(); !ok {
				t.Fatal("symptom should be resolved in twin after script")
			}
			// Production is still broken until commit.
			tr, err := dataplane.Compute(sys.Production()).Reach(issue.SrcHost, issue.DstHost, issue.Proto, issue.DstPort)
			if err != nil || tr.Delivered() {
				t.Fatalf("production fixed before commit: %v %v", tr, err)
			}
			decision, err := eng.Commit()
			if err != nil {
				t.Fatalf("commit: %v (decision %+v)", err, decision)
			}
			if !decision.Accepted {
				t.Fatalf("decision = %+v", decision)
			}
			// Production now delivers the flow.
			tr, err = dataplane.Compute(sys.Production()).Reach(issue.SrcHost, issue.DstHost, issue.Proto, issue.DstPort)
			if err != nil || !tr.Delivered() {
				t.Fatalf("production not fixed: %v %v", tr, err)
			}
			// Ticket is resolved.
			if got := sys.Tickets.Get(tk.ID); got.Status != ticket.Resolved {
				t.Fatalf("ticket status = %v", got.Status)
			}
			// Audit trail verifies and shows the workflow.
			trail := sys.Enforcer.Trail()
			if err := trail.Verify(); err != nil {
				t.Fatal(err)
			}
			var kinds = map[audit.Kind]int{}
			for _, e := range trail.Entries() {
				kinds[e.Kind]++
			}
			for _, want := range []audit.Kind{audit.KindSession, audit.KindCommand,
				audit.KindDecision, audit.KindVerify, audit.KindChange} {
				if kinds[want] == 0 {
					t.Errorf("audit trail missing kind %s", want)
				}
			}
		})
	}
}

// TestMaliciousChangeRejected reproduces the paper's §4.3 attack: the
// technician fixes the issue but also opens a path to the sensitive host.
// The enforcer must reject the whole change set.
func TestMaliciousChangeRejected(t *testing.T) {
	sys, issue := newFaultedSystem(t, "isp")
	tk := fileIssue(sys, issue)
	// Give the malicious technician broader privileges than the template
	// would (an over-permissive admin): they may edit ACLs on r2, too.
	eng, err := sys.StartWork(tk.ID, "mallory")
	if err != nil {
		t.Fatal(err)
	}
	eng.Spec.Rules = append(eng.Spec.Rules,
		privilege.Rule{Effect: privilege.AllowEffect, Action: "config.acl.*", Resource: "device:r2"},
		privilege.Rule{Effect: privilege.AllowEffect, Action: "show.*", Resource: "device:r2"})
	eng.Slice["r2"] = true

	// Legitimate fix...
	if _, err := eng.RunScript(issue.Script); err != nil {
		t.Fatal(err)
	}
	// ...plus a malicious permit that lets h1 reach the finance server.
	r2, err := eng.Console("r2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Exec("access-list FINANCE-GUARD 15 permit ip any 10.9.0.0 0.0.0.255"); err != nil {
		t.Fatalf("the spec allows the command itself: %v", err)
	}

	// The enforcer catches the policy violation at commit time.
	decision, err := eng.Commit()
	if err == nil || decision.Accepted {
		t.Fatalf("malicious commit accepted: %+v", decision)
	}
	if len(decision.Violations) == 0 {
		t.Fatal("no violations reported")
	}
	// Production keeps its guard and stays broken (nothing applied).
	guard := sys.Production().Device("r2").ACLs["FINANCE-GUARD"]
	for _, e := range guard.Entries {
		if e.Seq == 15 {
			t.Fatal("malicious entry reached production")
		}
	}
	if got := sys.Tickets.Get(tk.ID); got.Status != ticket.Rejected {
		t.Fatalf("ticket status = %v, want rejected", got.Status)
	}
}

// TestUnauthorizedCommandBlockedInTwin checks the reference monitor blocks
// out-of-scope commands during the session (not just at commit).
func TestUnauthorizedCommandBlockedInTwin(t *testing.T) {
	sys, issue := newFaultedSystem(t, "isp")
	tk := fileIssue(sys, issue)
	eng, err := sys.StartWork(tk.ID, "alice")
	if err != nil {
		t.Fatal(err)
	}
	// The ISP-template grants route/interface writes, not ACL writes.
	sess, err := eng.Console(issue.Fault.RootCause)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.Exec("access-list FINANCE-GUARD 15 permit ip any any")
	var denied *twin.ErrDenied
	if !errors.As(err, &denied) {
		t.Fatalf("expected ErrDenied, got %v", err)
	}
	// Sensitive host consoles are unreachable even though h9's router may
	// be in the slice.
	if _, err := eng.Console("h9"); err == nil {
		t.Fatal("console on sensitive host should fail (outside slice)")
	}
}

func TestEscalationWorkflow(t *testing.T) {
	sys, issue := newFaultedSystem(t, "ospf")
	tk := fileIssue(sys, issue)
	eng, err := sys.StartWork(tk.ID, "alice")
	if err != nil {
		t.Fatal(err)
	}
	rule := privilege.Rule{Effect: privilege.AllowEffect, Action: "config.acl.*",
		Resource: "device:" + issue.Fault.RootCause}
	if eng.Spec.Allows("config.acl.add", "device:"+issue.Fault.RootCause) {
		t.Fatal("ACL writes should not be pre-granted on an OSPF ticket")
	}
	esc := eng.RequestEscalation(rule, "suspect the firewall as well")
	if err := eng.ApproveEscalation(esc); err != nil {
		t.Fatal(err)
	}
	if !eng.Spec.Allows("config.acl.add", "device:"+issue.Fault.RootCause) {
		t.Fatal("approved escalation should widen privileges")
	}
	// Escalations appear on the audit trail.
	found := 0
	for _, e := range sys.Enforcer.Trail().Entries() {
		if e.Kind == audit.KindEscalation {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("escalation audit entries = %d, want 2 (request+approve)", found)
	}
}

func TestAttestation(t *testing.T) {
	sys, _ := newFaultedSystem(t, "isp")
	report, err := sys.Attest([]byte("customer-nonce"))
	if err != nil {
		t.Fatal(err)
	}
	if report.Measurement == "" {
		t.Fatal("empty measurement")
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Options{}); err == nil {
		t.Fatal("nil network accepted")
	}
	bad := netmodel.NewNetwork("bad")
	bad.Links = append(bad.Links, &netmodel.Link{A: netmodel.Endpoint{Device: "ghost"}})
	if _, err := NewSystem(Options{Network: bad}); err == nil {
		t.Fatal("invalid network accepted")
	}
}

func TestMinedPoliciesDefault(t *testing.T) {
	scen := scenarios.Enterprise()
	sys, err := NewSystem(Options{
		Network:      scen.Network.Clone(),
		Sensitive:    scen.Sensitive,
		PlatformSeed: "mine",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Policies()) == 0 {
		t.Fatal("no policies mined")
	}
	if !strings.HasPrefix(sys.Policies()[0].ID, "P") {
		t.Fatalf("policy IDs = %v", sys.Policies()[0].ID)
	}
}

func TestStartWorkErrors(t *testing.T) {
	sys, issue := newFaultedSystem(t, "isp")
	if _, err := sys.StartWork("T-9999", "alice"); err == nil {
		t.Fatal("unknown ticket accepted")
	}
	tk := fileIssue(sys, issue)
	if _, err := sys.StartWork(tk.ID, "alice"); err != nil {
		t.Fatal(err)
	}
	// Starting again fails (already in progress).
	if _, err := sys.StartWork(tk.ID, "bob"); err == nil {
		t.Fatal("double assignment accepted")
	}
}

func TestCommitWithoutChanges(t *testing.T) {
	sys, issue := newFaultedSystem(t, "isp")
	tk := fileIssue(sys, issue)
	eng, err := sys.StartWork(tk.ID, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Commit(); err == nil {
		t.Fatal("empty commit accepted")
	}
}

func TestVerifyCheckCount(t *testing.T) {
	// Sanity link between core and verify: the enterprise policy count
	// drives the Figure 7 verify-step cost.
	scen := scenarios.Enterprise()
	if len(scen.Policies) != 21 {
		t.Fatalf("policies = %d", len(scen.Policies))
	}
	res := verify.Check(scen.Snapshot(), scen.Policies)
	if res.Checked != 21 || !res.OK() {
		t.Fatalf("baseline check = %+v", res)
	}
}

// TestWorkflowTelemetry wires a metrics registry through Options.Meter and
// checks that one end-to-end workflow lights up every layer of the
// mediation path: reference monitor, enforcer, verifier and audit trail.
func TestWorkflowTelemetry(t *testing.T) {
	scen := scenarios.Enterprise()
	issueName := "vlan"
	var issue scenarios.Issue
	for _, is := range scen.Issues {
		if is.Name == issueName {
			issue = is
		}
	}
	prod := scen.Network.Clone()
	if err := issue.Fault.Inject(prod); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	sys, err := NewSystem(Options{
		Network:      prod,
		Policies:     scen.Policies,
		Sensitive:    scen.Sensitive,
		PlatformSeed: "core-test",
		Meter:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Meter() != telemetry.Meter(reg) {
		t.Fatal("System.Meter() should return the configured meter")
	}
	tk := fileIssue(sys, issue)
	eng, err := sys.StartWork(tk.ID, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunScript(issue.Script); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Commit(); err != nil {
		t.Fatal(err)
	}

	// Reference monitor: every script command was mediated and allowed.
	if got := reg.CounterValue("heimdall_monitor_commands_total"); got != float64(len(issue.Script)) {
		t.Errorf("commands_total = %v, want %d", got, len(issue.Script))
	}
	if got := reg.HistogramCount("heimdall_monitor_mediation_seconds"); got != uint64(len(issue.Script)) {
		t.Errorf("mediation_seconds count = %v, want %d", got, len(issue.Script))
	}
	// Enforcer: one accepted review and commit, changes applied, no
	// rollback.
	if got := reg.CounterValue("heimdall_enforcer_reviews_total", telemetry.L("accepted", "true")); got != 1 {
		t.Errorf("accepted reviews = %v, want 1", got)
	}
	if got := reg.CounterValue("heimdall_enforcer_commits_total", telemetry.L("accepted", "true")); got != 1 {
		t.Errorf("accepted commits = %v, want 1", got)
	}
	if got := reg.CounterValue("heimdall_enforcer_changes_applied_total"); got == 0 {
		t.Error("changes_applied_total = 0, want > 0")
	}
	if got := reg.CounterValue("heimdall_enforcer_rollbacks_total"); got != 0 {
		t.Errorf("rollbacks_total = %v, want 0", got)
	}
	// Verifier: the review check plus the post-apply check.
	if got := reg.CounterValue("heimdall_verify_runs_total"); got != 2 {
		t.Errorf("verify_runs_total = %v, want 2", got)
	}
	if got := reg.CounterValue("heimdall_verify_policies_checked_total"); got == 0 {
		t.Error("policies_checked_total = 0, want > 0")
	}
	if got := reg.CounterValue("heimdall_verify_counterexamples_total"); got != 0 {
		t.Errorf("counterexamples_total = %v, want 0", got)
	}
	// Audit: the chain-length gauge tracks the trail.
	if got := reg.GaugeValue("heimdall_audit_chain_length"); got != float64(sys.Enforcer.Trail().Len()) {
		t.Errorf("audit_chain_length = %v, want %d", got, sys.Enforcer.Trail().Len())
	}
	if got := reg.CounterValue("heimdall_audit_entries_total", telemetry.L("kind", "command")); got == 0 {
		t.Error("audit command entries = 0, want > 0")
	}
	// The dump is a valid Prometheus exposition with the headline series.
	dump := reg.Dump()
	for _, want := range []string{
		"# TYPE heimdall_monitor_commands_total counter",
		"# TYPE heimdall_monitor_mediation_seconds histogram",
		"heimdall_audit_chain_length",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q", want)
		}
	}
}
