package core

import (
	"reflect"
	"strings"
	"testing"

	"heimdall/internal/audit"
)

// TestReplayReproducesSession runs a workflow (including one denied
// command), then replays it from the trail onto a fresh copy of the
// incident-time baseline and checks the replay reproduces exactly the
// committed change set.
func TestReplayReproducesSession(t *testing.T) {
	sys, issue := newFaultedSystem(t, "isp")
	// Keep the incident-time baseline for the auditor.
	baseline := sys.Production().Clone()

	tk := fileIssue(sys, issue)
	eng, err := sys.StartWork(tk.ID, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunScript(issue.Script); err != nil {
		t.Fatal(err)
	}
	// One denied probe for the record.
	if sess, err := eng.Console(issue.Fault.RootCause); err == nil {
		_, _ = sess.Exec("access-list X 10 permit ip any any")
	}
	originalChanges := eng.Twin.Changes()
	if _, err := eng.Commit(); err != nil {
		t.Fatal(err)
	}

	replay, err := ReplayTicket(sys.Enforcer.Trail(), tk.ID, baseline)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay.Commands) != len(issue.Script)+1 {
		t.Fatalf("replayed %d commands, want %d", len(replay.Commands), len(issue.Script)+1)
	}
	// The denied command is recorded but not re-executed.
	last := replay.Commands[len(replay.Commands)-1]
	if last.AllowedThen || last.Output != "" || !strings.HasPrefix(last.Line, "access-list X") {
		t.Fatalf("denied command replay = %+v", last)
	}
	// The replayed semantic diff matches what was committed.
	if !reflect.DeepEqual(replay.Changes, originalChanges) {
		t.Fatalf("replay changes differ:\n got %v\nwant %v", replay.Changes, originalChanges)
	}
}

func TestReplayRejectsTamperedTrail(t *testing.T) {
	sys, issue := newFaultedSystem(t, "isp")
	baseline := sys.Production().Clone()
	tk := fileIssue(sys, issue)
	eng, err := sys.StartWork(tk.ID, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunScript(issue.Script); err != nil {
		t.Fatal(err)
	}
	// Build a forged trail (different key) with the same-shaped entries.
	forged := audit.NewTrail([]byte("attacker-key"))
	for _, e := range sys.Enforcer.Trail().Entries() {
		forged.Append(e.Ticket, e.Technician, e.Kind, e.Detail, e.Allowed)
	}
	// The forged trail verifies under its own key, so replay works there —
	// the protection is that an attacker cannot forge under the REAL key.
	// Tamper with the real trail's export instead:
	export, _ := sys.Enforcer.Trail().Export()
	doctored := strings.Replace(string(export), issue.Script[0].Line, "rm -rf /", 1)
	tampered, err := audit.Import(sys.Enforcer.TrailKey(), []byte(doctored))
	if err == nil {
		if _, err := ReplayTicket(tampered, tk.ID, baseline); err == nil {
			t.Fatal("tampered trail replayed")
		}
	}
	// Import itself must already have rejected it.
	if err == nil {
		t.Fatal("tampered export imported")
	}
}

func TestReplaySkipsEmergencyAndParseErrors(t *testing.T) {
	sys, issue := newFaultedSystem(t, "isp")
	baseline := sys.Production().Clone()
	tk := fileIssue(sys, issue)
	eng, err := sys.StartWork(tk.ID, "alice")
	if err != nil {
		t.Fatal(err)
	}
	// A parse error and an emergency command both land on the trail but
	// must not be replayed against the twin.
	if sess, err := eng.Console(issue.Fault.RootCause); err == nil {
		_, _ = sess.Exec("garbage command")
	}
	eng.EnableEmergency("netadmin")
	if es, err := eng.EmergencyConsole(issue.Fault.RootCause); err == nil {
		if _, err := es.Exec("show ip route"); err != nil {
			t.Fatal(err)
		}
	}
	replay, err := ReplayTicket(sys.Enforcer.Trail(), tk.ID, baseline)
	if err != nil {
		t.Fatal(err)
	}
	for _, rc := range replay.Commands {
		if rc.Line == "garbage command" || strings.HasPrefix(rc.Line, "EMERGENCY") {
			t.Fatalf("should not replay %+v", rc)
		}
	}
	if len(replay.Changes) != 0 {
		t.Fatalf("no twin writes happened, but replay changes = %v", replay.Changes)
	}
}
