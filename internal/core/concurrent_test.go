package core

import (
	"strings"
	"sync"
	"testing"

	"heimdall/internal/audit"
	"heimdall/internal/dataplane"
	"heimdall/internal/scenarios"
	"heimdall/internal/ticket"
)

// TestConcurrentEngagements runs two technicians on two different tickets
// against the same deployment at once: both work their own twins in
// parallel, both commits land (serialized by the enforcer), production
// ends up fixed for both issues, and the shared audit trail stays intact.
func TestConcurrentEngagements(t *testing.T) {
	scen := scenarios.Enterprise()
	prod := scen.Network.Clone()
	var issueA, issueB scenarios.Issue
	for _, is := range scen.Issues {
		switch is.Name {
		case "isp":
			issueA = is
		case "ospf":
			issueB = is
		}
	}
	// Two independent faults at once.
	if err := issueA.Fault.Inject(prod); err != nil {
		t.Fatal(err)
	}
	if err := issueB.Fault.Inject(prod); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Options{
		Network: prod, Policies: scen.Policies,
		Sensitive: scen.Sensitive, PlatformSeed: "conc",
	})
	if err != nil {
		t.Fatal(err)
	}

	work := func(issue scenarios.Issue, tech string) error {
		tk := sys.Tickets.Create(ticket.Ticket{
			Summary: issue.Fault.Description, Kind: issue.Fault.Kind,
			SrcHost: issue.SrcHost, DstHost: issue.DstHost,
			Proto: issue.Proto, DstPort: issue.DstPort,
			Suspects: []string{issue.Fault.RootCause}, CreatedBy: "netadmin",
		})
		eng, err := sys.StartWork(tk.ID, tech)
		if err != nil {
			return err
		}
		if _, err := eng.RunScript(issue.Script); err != nil {
			return err
		}
		_, err = eng.Commit()
		return err
	}

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, job := range []struct {
		issue scenarios.Issue
		tech  string
	}{{issueA, "alice"}, {issueB, "bob"}} {
		wg.Add(1)
		go func(issue scenarios.Issue, tech string) {
			defer wg.Done()
			if err := work(issue, tech); err != nil {
				errs <- err
			}
		}(job.issue, job.tech)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Both symptoms fixed in production.
	snap := dataplane.Compute(sys.Production())
	for _, issue := range []scenarios.Issue{issueA, issueB} {
		tr, err := snap.Reach(issue.SrcHost, issue.DstHost, issue.Proto, issue.DstPort)
		if err != nil || !tr.Delivered() {
			t.Fatalf("%s not fixed: %v %v", issue.Name, tr, err)
		}
	}
	// The shared trail survived concurrent writers and summarizes both
	// tickets.
	if err := sys.Enforcer.Trail().Verify(); err != nil {
		t.Fatal(err)
	}
	reports := audit.Summarize(sys.Enforcer.Trail().Entries())
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	for _, r := range reports {
		if len(r.Changes) == 0 {
			t.Fatalf("ticket %s has no committed changes in its report", r.Ticket)
		}
	}
}

// TestDriftDetection: a second engagement's commit makes the first
// engagement's twin stale, and Drifted reports it.
func TestDriftDetection(t *testing.T) {
	scen := scenarios.Enterprise()
	prod := scen.Network.Clone()
	var issueA, issueB scenarios.Issue
	for _, is := range scen.Issues {
		switch is.Name {
		case "isp":
			issueA = is
		case "ospf":
			issueB = is
		}
	}
	if err := issueA.Fault.Inject(prod); err != nil {
		t.Fatal(err)
	}
	if err := issueB.Fault.Inject(prod); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Options{Network: prod, Policies: scen.Policies,
		Sensitive: scen.Sensitive, PlatformSeed: "drift"})
	if err != nil {
		t.Fatal(err)
	}
	file := func(issue scenarios.Issue) *Engagement {
		tk := sys.Tickets.Create(ticket.Ticket{
			Summary: issue.Fault.Description, Kind: issue.Fault.Kind,
			SrcHost: issue.SrcHost, DstHost: issue.DstHost,
			Proto: issue.Proto, DstPort: issue.DstPort,
			Suspects: []string{issue.Fault.RootCause}, CreatedBy: "netadmin",
		})
		eng, err := sys.StartWork(tk.ID, "tech-"+issue.Name)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	engA := file(issueA)
	engB := file(issueB)
	if engA.Drifted() || engB.Drifted() {
		t.Fatal("fresh twins report drift")
	}
	// A commits; B's twin is now stale.
	if _, err := engA.RunScript(issueA.Script); err != nil {
		t.Fatal(err)
	}
	if _, err := engA.Commit(); err != nil {
		t.Fatal(err)
	}
	if !engB.Drifted() {
		t.Fatal("B's twin should report drift after A's commit")
	}
	// B can still resolve and commit: the enforcer verifies against the
	// CURRENT production state.
	if _, err := engB.RunScript(issueB.Script); err != nil {
		t.Fatal(err)
	}
	if _, err := engB.Commit(); err != nil {
		t.Fatal(err)
	}
	// The commit note landed on the ticket.
	found := false
	for _, tk := range sys.Tickets.List() {
		for _, note := range tk.Notes {
			if strings.Contains(note, "enforcer accepted") {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("commit note missing from tickets")
	}
}
