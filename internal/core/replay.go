package core

import (
	"fmt"
	"strings"

	"heimdall/internal/audit"
	"heimdall/internal/config"
	"heimdall/internal/netmodel"
	"heimdall/internal/privilege"
	"heimdall/internal/twin"
)

// Forensic replay (paper §3, Challenge 3): the audit trail must let the
// customer reconstruct, after the fact, exactly what a technician did.
// ReplayTicket re-executes the allowed commands of one ticket — extracted
// from a verified trail — against a fresh twin of the incident-time
// baseline, so an auditor can inspect the resulting state and semantic
// diff independently of what the technician claimed.

// ReplayedCommand is one trail command with its replay outcome.
type ReplayedCommand struct {
	Device string
	Line   string
	// AllowedThen reports the original reference-monitor decision.
	AllowedThen bool
	// Output is the replayed command output (empty for denied commands,
	// which are not re-executed).
	Output string
}

// Replay is the result of re-executing a ticket's session.
type Replay struct {
	Ticket   string
	Commands []ReplayedCommand
	// Twin is the replayed twin network, ready for inspection.
	Twin *twin.Twin
	// Changes is the semantic diff the replay produced.
	Changes []config.Change
}

// ReplayTicket verifies the trail, extracts the mediated twin commands of
// the ticket, and replays the allowed ones on a twin built from baseline
// (the production state at incident time, e.g. restored from backup).
func ReplayTicket(trail *audit.Trail, ticketID string, baseline *netmodel.Network) (*Replay, error) {
	if err := trail.Verify(); err != nil {
		return nil, fmt.Errorf("core: refusing to replay a tampered trail: %w", err)
	}
	// Replay runs unrestricted: the privilege decisions being audited are
	// taken from the trail itself, not re-derived.
	allowAll := &privilege.Spec{Ticket: ticketID, Technician: "auditor", Rules: []privilege.Rule{
		{Effect: privilege.AllowEffect, Action: "*", Resource: "*"},
	}}
	tw, err := twin.New(twin.Config{
		Ticket: ticketID, Technician: "auditor",
		Production: baseline, Spec: allowAll,
	})
	if err != nil {
		return nil, err
	}

	entries := trail.Entries()
	replay := &Replay{Ticket: ticketID, Twin: tw}
	sessions := make(map[string]*twin.Session)
	for i, e := range entries {
		if e.Ticket != ticketID || e.Kind != audit.KindCommand {
			continue
		}
		dev, line, ok := parseCommandDetail(e.Detail)
		if !ok {
			continue // parse errors and emergency entries are skipped
		}
		allowed := decisionFor(entries, i, ticketID)
		rc := ReplayedCommand{Device: dev, Line: line, AllowedThen: allowed}
		if allowed {
			sess, ok := sessions[dev]
			if !ok {
				sess, err = tw.OpenConsole(dev)
				if err != nil {
					return nil, fmt.Errorf("core: replay console on %s: %w", dev, err)
				}
				sessions[dev] = sess
			}
			out, err := sess.Exec(line)
			if err != nil {
				return nil, fmt.Errorf("core: replaying %q on %s: %w", line, dev, err)
			}
			rc.Output = out
		}
		replay.Commands = append(replay.Commands, rc)
	}
	replay.Changes = tw.Changes()
	return replay, nil
}

// parseCommandDetail extracts device and line from a "[dev] line" command
// entry, rejecting parse failures and EMERGENCY entries (those executed
// against production, not the twin).
func parseCommandDetail(detail string) (dev, line string, ok bool) {
	if strings.HasPrefix(detail, "EMERGENCY") {
		return "", "", false
	}
	if strings.HasSuffix(detail, "(parse error)") || strings.Contains(detail, " failed: ") {
		return "", "", false
	}
	if !strings.HasPrefix(detail, "[") {
		return "", "", false
	}
	end := strings.IndexByte(detail, ']')
	if end < 0 || end+2 > len(detail) {
		return "", "", false
	}
	return detail[1:end], detail[end+2:], true
}

// decisionFor finds the reference-monitor decision that follows a command
// entry: the next entry of the same ticket (the twin logs command, then
// decision; entries of concurrent tickets may interleave between them).
func decisionFor(entries []audit.Entry, cmdIdx int, ticketID string) bool {
	for j := cmdIdx + 1; j < len(entries); j++ {
		if entries[j].Ticket != ticketID {
			continue
		}
		if entries[j].Kind == audit.KindDecision {
			return entries[j].Allowed
		}
		return false
	}
	return false
}
