package core

import (
	"strings"
	"testing"

	"heimdall/internal/rmm"
)

// TestHeimdallOverRMM runs the full workflow with the technician connected
// through the RMM TCP protocol — the same tooling as the insecure
// baseline, but backed by the twin network and reference monitor.
func TestHeimdallOverRMM(t *testing.T) {
	sys, issue := newFaultedSystem(t, "isp")
	tk := fileIssue(sys, issue)
	eng, err := sys.StartWork(tk.ID, "alice")
	if err != nil {
		t.Fatal(err)
	}

	backend := NewEngagementBackend()
	backend.Register("alice", eng)
	srv := rmm.NewServer(map[string]string{"alice": "tok-a", "bob": "tok-b"}, backend)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := rmm.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Login("alice", "tok-a"); err != nil {
		t.Fatal(err)
	}

	// The technician only sees the slice, not the whole network.
	devs, err := client.Devices()
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) >= len(sys.Production().Devices) {
		t.Fatalf("RMM exposes %d devices; slice should be smaller", len(devs))
	}
	seen := map[string]bool{}
	for _, d := range devs {
		seen[d] = true
	}
	if seen["h9"] {
		t.Fatal("sensitive host visible over RMM")
	}

	// Run the prepared script over the wire.
	for _, cmd := range issue.Script {
		if _, err := client.Exec(cmd.Device, cmd.Line); err != nil {
			t.Fatalf("%s on %s over RMM: %v", cmd.Line, cmd.Device, err)
		}
	}
	// Privilege denials travel back as protocol errors.
	if _, err := client.Exec("r3", "access-list EVIL 10 permit ip any any"); err == nil ||
		!strings.Contains(err.Error(), "permission denied") {
		t.Fatalf("denied command over RMM: %v", err)
	}
	// Out-of-slice devices are invisible.
	if _, err := client.Exec("h9", "show interfaces"); err == nil {
		t.Fatal("out-of-slice exec accepted")
	}
	// A technician without an engagement gets nothing.
	bob, err := rmm.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()
	if err := bob.Login("bob", "tok-b"); err != nil {
		t.Fatal(err)
	}
	if devs, _ := bob.Devices(); len(devs) != 0 {
		t.Fatalf("bob sees %v without an engagement", devs)
	}
	if _, err := bob.Exec("r3", "show ip route"); err == nil {
		t.Fatal("engagement-less exec accepted")
	}

	// Commit from the admin side; production gets the verified fix.
	if ok, _ := eng.SymptomResolved(); !ok {
		t.Fatal("symptom unresolved in twin")
	}
	if _, err := eng.Commit(); err != nil {
		t.Fatal(err)
	}
}
