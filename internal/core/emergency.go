package core

import (
	"fmt"

	"heimdall/internal/audit"
	"heimdall/internal/console"
	"heimdall/internal/dataplane"
	"heimdall/internal/verify"
)

// Emergency mode implements the paper's §7 escape hatch: for issues the
// twin cannot faithfully reproduce (hardware faults, timing bugs), the
// reference monitor bypasses the twin and sends commands directly to the
// production network *through the policy enforcer*. Least privilege still
// holds — every command is checked against the ticket's Privilegemsp — and
// every write is shadow-verified against the network policies before it
// executes on production. Everything is audited with an EMERGENCY marker.

// EnableEmergency authorizes emergency mode for this engagement. The call
// models the customer admin's explicit approval (how to *decide* when a
// problem needs it is the paper's open question; the mechanism requires
// the decision to be explicit and it lands on the audit trail).
func (e *Engagement) EnableEmergency(approvedBy string) {
	e.emergency = true
	e.sys.Enforcer.Trail().Append(e.Ticket.ID, e.Ticket.Assignee, audit.KindSession,
		fmt.Sprintf("EMERGENCY mode enabled (approved by %s)", approvedBy), true)
}

// EmergencyConsole opens a mediated console that executes directly against
// the production network. It requires EnableEmergency first and the device
// to be inside the ticket's slice.
func (e *Engagement) EmergencyConsole(device string) (*EmergencySession, error) {
	if !e.emergency {
		return nil, fmt.Errorf("core: emergency mode not enabled for %s", e.Ticket.ID)
	}
	if !e.Slice[device] || e.sys.production.Devices[device] == nil {
		e.sys.Enforcer.Trail().Append(e.Ticket.ID, e.Ticket.Assignee, audit.KindDecision,
			fmt.Sprintf("EMERGENCY deny console on %s (outside slice)", device), false)
		return nil, fmt.Errorf("core: no such device %q", device)
	}
	e.sys.Enforcer.Trail().Append(e.Ticket.ID, e.Ticket.Assignee, audit.KindSession,
		"EMERGENCY console opened on "+device, true)
	return &EmergencySession{eng: e, con: console.New(device, e.sys.prodEnv())}, nil
}

// prodEnv lazily builds the production console environment.
func (s *System) prodEnv() *console.Env {
	s.prodMu.Lock()
	defer s.prodMu.Unlock()
	if s.prodConsoleEnv == nil {
		s.prodConsoleEnv = console.NewEnv(s.production)
	}
	return s.prodConsoleEnv
}

// EmergencySession is a mediated, enforcer-guarded console on a production
// device.
type EmergencySession struct {
	eng *Engagement
	con *console.Console
}

// Device returns the session's device name.
func (s *EmergencySession) Device() string { return s.con.Device() }

// Exec runs one command: privilege check first, and for writes a shadow
// verification against the policy set before the command touches
// production. Violating writes are refused.
func (s *EmergencySession) Exec(line string) (string, error) {
	e := s.eng
	trail := e.sys.Enforcer.Trail()
	cmd, err := s.con.Parse(line)
	if err != nil {
		trail.Append(e.Ticket.ID, e.Ticket.Assignee, audit.KindCommand,
			fmt.Sprintf("EMERGENCY [%s] %s (parse error)", s.Device(), line), false)
		return "", err
	}
	trail.Append(e.Ticket.ID, e.Ticket.Assignee, audit.KindCommand,
		fmt.Sprintf("EMERGENCY [%s] %s", s.Device(), line), true)
	if !e.Spec.Allows(cmd.Action, cmd.Resource) {
		trail.Append(e.Ticket.ID, e.Ticket.Assignee, audit.KindDecision,
			fmt.Sprintf("EMERGENCY deny %s on %s", cmd.Action, cmd.Resource), false)
		return "", fmt.Errorf("core: permission denied: %s on %s", cmd.Action, cmd.Resource)
	}
	trail.Append(e.Ticket.ID, e.Ticket.Assignee, audit.KindDecision,
		fmt.Sprintf("EMERGENCY allow %s on %s", cmd.Action, cmd.Resource), true)

	// Writes (and the reads serving them) execute under the production
	// lock so emergency changes never interleave with commits.
	if cmd.Write {
		e.sys.prodMu.Lock()
		defer e.sys.prodMu.Unlock()
		if err := s.shadowVerify(line); err != nil {
			trail.Append(e.Ticket.ID, e.Ticket.Assignee, audit.KindVerify,
				fmt.Sprintf("EMERGENCY write refused: %v", err), false)
			return "", err
		}
	} else {
		e.sys.prodMu.RLock()
		defer e.sys.prodMu.RUnlock()
	}
	out, err := s.con.Execute(cmd)
	if err != nil {
		trail.Append(e.Ticket.ID, e.Ticket.Assignee, audit.KindCommand,
			fmt.Sprintf("EMERGENCY [%s] %s failed: %v", s.Device(), line, err), true)
		return "", err
	}
	if cmd.Write {
		trail.Append(e.Ticket.ID, e.Ticket.Assignee, audit.KindChange,
			fmt.Sprintf("EMERGENCY applied [%s] %s", s.Device(), line), true)
		// The write bypassed the commit pipeline; cached review verdicts
		// no longer describe production.
		e.sys.Enforcer.InvalidateReviews()
	}
	return out, nil
}

// shadowVerify applies the command to a clone of production and checks
// that no policy that held before becomes violated. Policies already
// broken (the incident itself) stay out of scope so emergency repairs are
// not blocked by the very outage they address.
func (s *EmergencySession) shadowVerify(line string) error {
	e := s.eng
	prod := e.sys.production
	pre := make(map[string]bool)
	for _, v := range verify.Check(dataplane.Compute(prod), e.sys.policies).Violations {
		pre[v.Policy.ID] = true
	}
	shadow := prod.Clone()
	if _, err := console.New(s.Device(), console.NewEnv(shadow)).Run(line); err != nil {
		return fmt.Errorf("core: shadow apply failed: %w", err)
	}
	res := verify.Check(dataplane.Compute(shadow), e.sys.policies)
	for _, v := range res.Violations {
		if !pre[v.Policy.ID] {
			return fmt.Errorf("core: command would violate %s: %s", v.Policy.ID, v.Reason)
		}
	}
	return nil
}
