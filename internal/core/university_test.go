package core

import (
	"testing"

	"heimdall/internal/dataplane"
	"heimdall/internal/scenarios"
	"heimdall/internal/ticket"
)

// TestEndToEndWorkflowUniversity runs the full workflow for every
// university issue — the larger, denser network with 175 policies.
func TestEndToEndWorkflowUniversity(t *testing.T) {
	scen := scenarios.University()
	for _, issue := range scen.Issues {
		t.Run(issue.Name, func(t *testing.T) {
			prod := scen.Network.Clone()
			if err := issue.Fault.Inject(prod); err != nil {
				t.Fatal(err)
			}
			sys, err := NewSystem(Options{
				Network: prod, Policies: scen.Policies,
				Sensitive: scen.Sensitive, PlatformSeed: "uni",
			})
			if err != nil {
				t.Fatal(err)
			}
			tk := sys.Tickets.Create(ticket.Ticket{
				Summary: issue.Fault.Description, Kind: issue.Fault.Kind,
				SrcHost: issue.SrcHost, DstHost: issue.DstHost,
				Proto: issue.Proto, DstPort: issue.DstPort,
				Suspects: []string{issue.Fault.RootCause}, CreatedBy: "netadmin",
			})
			eng, err := sys.StartWork(tk.ID, "casey")
			if err != nil {
				t.Fatal(err)
			}
			// The dense mesh still yields a proper slice, not everything.
			if vis := len(eng.Twin.VisibleDevices()); vis == 0 || vis >= len(prod.Devices) {
				t.Fatalf("slice size = %d of %d", vis, len(prod.Devices))
			}
			if ok, _ := eng.SymptomResolved(); ok {
				t.Fatal("symptom should reproduce in twin")
			}
			if _, err := eng.RunScript(issue.Script); err != nil {
				t.Fatal(err)
			}
			if ok, _ := eng.SymptomResolved(); !ok {
				t.Fatal("script did not resolve the symptom in the twin")
			}
			decision, err := eng.Commit()
			if err != nil || !decision.Accepted {
				t.Fatalf("commit: %v %+v", err, decision)
			}
			if decision.Checked != 175 {
				t.Fatalf("checked %d policies, want 175", decision.Checked)
			}
			tr, err := dataplane.Compute(sys.Production()).Reach(issue.SrcHost, issue.DstHost, issue.Proto, issue.DstPort)
			if err != nil || !tr.Delivered() {
				t.Fatalf("production not fixed: %v %v", tr, err)
			}
			if err := sys.Enforcer.Trail().Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestEndToEndWorkflowProvider runs the full workflow for every provider
// (multi-site eBGP) issue.
func TestEndToEndWorkflowProvider(t *testing.T) {
	scen := scenarios.Provider()
	for _, issue := range scen.Issues {
		t.Run(issue.Name, func(t *testing.T) {
			prod := scen.Network.Clone()
			if err := issue.Fault.Inject(prod); err != nil {
				t.Fatal(err)
			}
			sys, err := NewSystem(Options{
				Network: prod, Policies: scen.Policies,
				Sensitive: scen.Sensitive, PlatformSeed: "prov",
			})
			if err != nil {
				t.Fatal(err)
			}
			tk := sys.Tickets.Create(ticket.Ticket{
				Summary: issue.Fault.Description, Kind: issue.Fault.Kind,
				SrcHost: issue.SrcHost, DstHost: issue.DstHost,
				Proto: issue.Proto, DstPort: issue.DstPort,
				Suspects: []string{issue.Fault.RootCause}, CreatedBy: "netadmin",
			})
			eng, err := sys.StartWork(tk.ID, "sam")
			if err != nil {
				t.Fatal(err)
			}
			// The sensitive billing server stays outside the slice unless
			// the ticket is about it.
			if issue.DstHost != "hB2" && eng.Twin.Visible("hB2") {
				t.Error("billing server visible on an unrelated ticket")
			}
			if _, err := eng.RunScript(issue.Script); err != nil {
				t.Fatal(err)
			}
			if ok, _ := eng.SymptomResolved(); !ok {
				t.Fatal("symptom unresolved in twin")
			}
			if _, err := eng.Commit(); err != nil {
				t.Fatal(err)
			}
			tr, err := dataplane.Compute(sys.Production()).Reach(issue.SrcHost, issue.DstHost, issue.Proto, issue.DstPort)
			if err != nil || !tr.Delivered() {
				t.Fatalf("production not fixed: %v %v", tr, err)
			}
		})
	}
}
