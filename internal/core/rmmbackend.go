package core

import (
	"fmt"
	"sync"

	"heimdall/internal/twin"
)

// EngagementBackend adapts engagements to the rmm.Backend interface, so
// Heimdall slots into the existing RMM client-server tooling unchanged
// (paper §3's compatibility requirement): the technician logs into the
// same kind of central server, but their commands land in a twin network
// behind the reference monitor instead of on production devices.
//
// It satisfies rmm.Backend structurally; core does not import rmm.
type EngagementBackend struct {
	mu          sync.Mutex
	engagements map[string]*Engagement
	sessions    map[string]map[string]*twin.Session
}

// NewEngagementBackend returns an empty backend.
func NewEngagementBackend() *EngagementBackend {
	return &EngagementBackend{
		engagements: make(map[string]*Engagement),
		sessions:    make(map[string]map[string]*twin.Session),
	}
}

// Register binds a technician's RMM login to their engagement. A second
// registration replaces the first (new ticket, fresh twin).
func (b *EngagementBackend) Register(technician string, eng *Engagement) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.engagements[technician] = eng
	b.sessions[technician] = make(map[string]*twin.Session)
}

// Devices implements rmm.Backend: only the twin's presentation slice.
func (b *EngagementBackend) Devices(technician string) []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	eng, ok := b.engagements[technician]
	if !ok {
		return nil
	}
	return eng.Twin.VisibleDevices()
}

// Exec implements rmm.Backend: commands run through the twin's mediated
// sessions, one cached session per (technician, device).
func (b *EngagementBackend) Exec(technician, device, line string) (string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	eng, ok := b.engagements[technician]
	if !ok {
		return "", fmt.Errorf("core: no engagement for technician %q", technician)
	}
	sess, ok := b.sessions[technician][device]
	if !ok {
		var err error
		sess, err = eng.Console(device)
		if err != nil {
			return "", err
		}
		b.sessions[technician][device] = sess
	}
	return sess.Exec(line)
}
