package core

import (
	"net/netip"
	"strings"
	"testing"

	"heimdall/internal/console"
	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
	"heimdall/internal/ticket"
)

// bgpProd builds h1 - edge(AS 65001) === isp(AS 65010) - ext with a healthy
// eBGP peering.
func bgpProd() *netmodel.Network {
	n := netmodel.NewNetwork("bgp-prod")
	edge := n.AddDevice("edge", netmodel.Router)
	isp := n.AddDevice("isp", netmodel.Router)
	h1 := n.AddDevice("h1", netmodel.Host)
	ext := n.AddDevice("ext", netmodel.Host)
	n.MustConnect("h1", "eth0", "edge", "Gi0/0")
	n.MustConnect("edge", "Gi0/1", "isp", "Gi0/0")
	n.MustConnect("isp", "Gi0/1", "ext", "eth0")
	h1.Interface("eth0").Addr = netip.MustParsePrefix("10.1.0.10/24")
	h1.DefaultGateway = netip.MustParseAddr("10.1.0.1")
	edge.Interface("Gi0/0").Addr = netip.MustParsePrefix("10.1.0.1/24")
	edge.Interface("Gi0/1").Addr = netip.MustParsePrefix("203.0.113.1/30")
	isp.Interface("Gi0/0").Addr = netip.MustParsePrefix("203.0.113.2/30")
	isp.Interface("Gi0/1").Addr = netip.MustParsePrefix("198.51.100.1/24")
	ext.Interface("eth0").Addr = netip.MustParsePrefix("198.51.100.10/24")
	ext.DefaultGateway = netip.MustParseAddr("198.51.100.1")
	edge.BGP = &netmodel.BGPProcess{LocalAS: 65001,
		Networks: []netip.Prefix{netip.MustParsePrefix("10.1.0.0/24")}}
	edge.BGP.SetNeighbor(netip.MustParseAddr("203.0.113.2"), 65010)
	isp.BGP = &netmodel.BGPProcess{LocalAS: 65010,
		Networks: []netip.Prefix{netip.MustParsePrefix("198.51.100.0/24")}}
	isp.BGP.SetNeighbor(netip.MustParseAddr("203.0.113.1"), 65001)
	return n
}

// TestBGPWorkflowEndToEnd runs the full ticket lifecycle for the BGP
// wrong-AS fault: twin diagnosis via show ip bgp, modal-terminal fix,
// enforcer commit, production repaired.
func TestBGPWorkflowEndToEnd(t *testing.T) {
	prod := bgpProd()
	fault := ticket.BGPWrongAS("edge", 65001, netip.MustParseAddr("203.0.113.2"), 65011, 65010)
	if err := fault.Inject(prod); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Options{Network: prod, PlatformSeed: "bgp", Sensitive: nil})
	if err != nil {
		t.Fatal(err)
	}
	// Policies were mined from the broken state (session down), so state
	// the intended behaviour explicitly — as the quickstart does.
	sys.policies = sys.policies[:0]
	tk := sys.Tickets.Create(ticket.Ticket{
		Summary: fault.Description, Kind: fault.Kind,
		SrcHost: "h1", DstHost: "ext", Proto: netmodel.ICMP,
		Suspects: []string{"edge"}, CreatedBy: "netadmin",
	})
	eng, err := sys.StartWork(tk.ID, "dana")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.Console("edge")
	if err != nil {
		t.Fatal(err)
	}
	out, err := sess.Exec("show ip bgp")
	if err != nil || !strings.Contains(out, "Idle") {
		t.Fatalf("diagnosis = %q %v", out, err)
	}
	// Fix through the modal terminal over the mediated session.
	term := console.NewTerminal(sess.Exec)
	if _, err := term.Script(`
configure terminal
router bgp 65001
neighbor 203.0.113.2 remote-as 65010
end
`); err != nil {
		t.Fatal(err)
	}
	if ok, _ := eng.SymptomResolved(); !ok {
		t.Fatal("BGP fix did not resolve the symptom in the twin")
	}
	decision, err := eng.Commit()
	if err != nil || !decision.Accepted {
		t.Fatalf("commit: %v %+v", err, decision)
	}
	tr, err := dataplane.Compute(sys.Production()).Reach("h1", "ext", netmodel.ICMP, 0)
	if err != nil || !tr.Delivered() {
		t.Fatalf("production: %v %v", tr, err)
	}
}
