package rmm

import (
	"context"
	"errors"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"heimdall/internal/faultinject"
)

// slowBackend serves exec only after a gate opens — the shape of an
// in-flight request during shutdown.
type slowBackend struct {
	gate chan struct{}
}

func (b *slowBackend) Devices(string) []string { return []string{"r1"} }
func (b *slowBackend) Exec(_, _, _ string) (string, error) {
	<-b.gate
	return "slow-ok", nil
}

// TestClientIOTimeoutNonAcceptingListener: a listener that never accepts
// still completes the kernel handshake, so the hang appears at the first
// request, not at Dial. The client's IO timeout must bound it.
func TestClientIOTimeoutNonAcceptingListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close() // never accepts
	c, err := DialTimeout(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("dial into listen backlog failed: %v", err)
	}
	defer c.Close()
	c.SetIOTimeout(100 * time.Millisecond)
	start := time.Now()
	err = c.Login("alice", "tok-a")
	if err == nil {
		t.Fatal("login against non-accepting listener succeeded")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("login took %v, deadline did not bound it", elapsed)
	}
}

// TestDialTLSTimeoutHandshakeHang: a server that accepts TCP but never
// speaks TLS must not hang the dialer — the timeout covers the handshake.
func TestDialTLSTimeoutHandshakeHang(t *testing.T) {
	creds, err := NewSelfSignedTLS([]string{"127.0.0.1"}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var held []net.Conn
	var mu sync.Mutex
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			held = append(held, conn) // accept, then silence
			mu.Unlock()
		}
	}()
	defer func() {
		mu.Lock()
		for _, c := range held {
			c.Close()
		}
		mu.Unlock()
	}()

	start := time.Now()
	_, err = DialTLSTimeout(ln.Addr().String(), creds.ClientConfig("127.0.0.1"), 150*time.Millisecond)
	if err == nil {
		t.Fatal("TLS dial against silent listener succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("TLS dial took %v, timeout did not bound the handshake", elapsed)
	}
}

// TestErrConnClosedMidExec: the server dies between accepting a request
// and answering it — the client must surface the one sentinel reconnect
// logic keys on, not a scanner quirk.
func TestErrConnClosedMidExec(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 4096)
		conn.Read(buf)                        // login request
		conn.Write([]byte("{\"ok\":true}\n")) // login OK
		conn.Read(buf)                        // exec request...
		conn.Close()                          // ...and the server dies
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Login("alice", "tok-a"); err != nil {
		t.Fatal(err)
	}
	_, err = c.Exec("r1", "show version")
	if !errors.Is(err, ErrConnClosed) {
		t.Fatalf("exec against dying server = %v, want ErrConnClosed", err)
	}
}

// TestServerCloseYieldsErrConnClosed: the real server's Close must produce
// the same sentinel.
func TestServerCloseYieldsErrConnClosed(t *testing.T) {
	srv := startServer(t, NewDirectBackend(prodNet()))
	c := login(t, srv.Addr(), "alice", "tok-a")
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("r1", "show ip route"); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("exec after server close = %v, want ErrConnClosed", err)
	}
}

// TestShutdownDrainsInFlightExec: a graceful shutdown lets the in-flight
// request finish and the client sees its response.
func TestShutdownDrainsInFlightExec(t *testing.T) {
	backend := &slowBackend{gate: make(chan struct{})}
	srv := NewServer(map[string]string{"alice": "tok-a"}, backend)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c := login(t, srv.Addr(), "alice", "tok-a")

	type result struct {
		out string
		err error
	}
	execDone := make(chan result, 1)
	go func() {
		out, err := c.Exec("r1", "show version")
		execDone <- result{out, err}
	}()
	time.Sleep(50 * time.Millisecond) // let the exec reach the backend
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(backend.gate) // the in-flight request completes mid-drain
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// The drained handler exits once the client disconnects.
	go func() {
		r := <-execDone
		execDone <- r
		c.Close()
	}()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	r := <-execDone
	if r.err != nil || r.out != "slow-ok" {
		t.Fatalf("in-flight exec during drain = %q, %v; want slow-ok", r.out, r.err)
	}
}

// TestShutdownForceClosesOnDeadline: an idle client that never hangs up
// cannot stall shutdown forever — the context deadline force-closes it,
// and Shutdown still returns only after every handler exited.
func TestShutdownForceClosesOnDeadline(t *testing.T) {
	srv := startServer(t, NewDirectBackend(prodNet()))
	c := login(t, srv.Addr(), "alice", "tok-a")

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := srv.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown with idle client = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("shutdown took %v after force-close", elapsed)
	}
	if _, err := c.Exec("r1", "show ip route"); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("exec after forced shutdown = %v, want ErrConnClosed", err)
	}
}

// TestIdleTimeoutDropsConnection: the server reclaims connections whose
// technician walked away.
func TestIdleTimeoutDropsConnection(t *testing.T) {
	srv := NewServer(map[string]string{"alice": "tok-a"}, NewDirectBackend(prodNet()))
	srv.SetIdleTimeout(50 * time.Millisecond)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c := login(t, srv.Addr(), "alice", "tok-a")
	time.Sleep(200 * time.Millisecond)
	if _, err := c.Exec("r1", "show ip route"); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("exec on idle-dropped conn = %v, want ErrConnClosed", err)
	}
}

// TestDialRetryReconnects: the client half of a server bounce — retries
// with backoff until the listener is back.
func TestDialRetryReconnects(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listening: first attempts fail fast

	srv := NewServer(map[string]string{"alice": "tok-a"}, NewDirectBackend(prodNet()))
	go func() {
		time.Sleep(60 * time.Millisecond)
		if err := srv.Listen(addr); err != nil {
			t.Errorf("relisten: %v", err)
		}
	}()
	t.Cleanup(func() { srv.Close() })

	c, err := DialRetry(addr, 8, 25*time.Millisecond)
	if err != nil {
		t.Fatalf("DialRetry never reconnected: %v", err)
	}
	defer c.Close()
	if err := c.Login("alice", "tok-a"); err != nil {
		t.Fatal(err)
	}

	// Zero attempts degrade to one try; a dead address reports the cause.
	if _, err := DialRetry("127.0.0.1:1", 0, time.Millisecond); err == nil {
		t.Fatal("DialRetry to dead port succeeded")
	}
}

// TestWrappedConnInjectsTransportFaults: the chaos injector plugs in under
// the client as a net.Conn, so transport-level schedules reach the same
// classification the pipeline retries on.
func TestWrappedConnInjectsTransportFaults(t *testing.T) {
	srv := startServer(t, NewDirectBackend(prodNet()))
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(faultinject.Plan{Rules: []faultinject.Rule{
		{Scope: "rmm", Op: "write", FailNth: 1, Class: faultinject.Transient},
	}})
	c := NewClientFromConn(faultinject.WrapConn(conn, inj, "rmm"))
	defer c.Close()
	err = c.Login("alice", "tok-a")
	if err == nil {
		t.Fatal("login over faulted conn succeeded")
	}
	if !faultinject.IsTransient(err) {
		t.Fatalf("injected transport fault not classified transient: %v", err)
	}
	if inj.Injected() != 1 {
		t.Fatalf("Injected = %d, want 1", inj.Injected())
	}
}
