// Package rmm implements the Remote Management and Monitoring substrate of
// the paper's §2.1: a central server technicians log into, which executes
// commands on the customer network's devices on their behalf.
//
// The transport is a line-delimited JSON protocol over TCP. The server is
// backend-agnostic:
//
//   - DirectBackend is the *current* MSP model the paper criticises: once
//     authenticated, the technician has root on every device of the
//     production network.
//   - Heimdall plugs in its twin-network sessions as a Backend, so both
//     models run over identical tooling — exactly the paper's "compatible
//     with existing workflows" requirement.
package rmm

import (
	"bufio"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"syscall"
	"time"

	"heimdall/internal/console"
	"heimdall/internal/netmodel"
	"heimdall/internal/telemetry"
)

// Transport hardening defaults. The RMM channel crosses the MSP/customer
// boundary, so every blocking step is bounded: an unresponsive peer must
// surface as an error the commit pipeline can retry, never as a hang.
const (
	// DefaultDialTimeout bounds connection establishment (and, for TLS,
	// the handshake).
	DefaultDialTimeout = 5 * time.Second
	// DefaultIdleTimeout is how long the server keeps an idle
	// authenticated connection before dropping it.
	DefaultIdleTimeout = 2 * time.Minute
	// serverWriteTimeout bounds one response write; a client that stops
	// reading cannot pin a handler goroutine forever.
	serverWriteTimeout = 10 * time.Second
)

// ErrConnClosed reports that the server closed the connection — at idle
// timeout, shutdown, or mid-request. Callers detect it with errors.Is and
// reconnect (see DialRetry).
var ErrConnClosed = errors.New("rmm: connection closed")

// connClosed reports whether a transport error means the peer is gone
// rather than the request being malformed.
func connClosed(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE)
}

// Backend executes commands for authenticated technicians.
type Backend interface {
	// Devices lists the devices the technician may open. The server makes
	// a defensive copy of the returned slice before handing it to the
	// protocol layer, so backends may return internal state; callers of a
	// Backend directly must not mutate the result.
	Devices(technician string) []string
	// Exec runs one console command line on a device.
	Exec(technician, device, line string) (string, error)
}

// DirectBackend exposes the production network with unrestricted root
// access — the baseline the paper's incidents exploit.
type DirectBackend struct {
	mu  sync.Mutex
	net *netmodel.Network
	env *console.Env
}

// NewDirectBackend wraps a production network.
func NewDirectBackend(n *netmodel.Network) *DirectBackend {
	return &DirectBackend{net: n, env: console.NewEnv(n)}
}

// Devices implements Backend: every device, for everyone.
func (b *DirectBackend) Devices(string) []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.net.DeviceNames()
}

// Exec implements Backend: any command on any device, no mediation.
func (b *DirectBackend) Exec(_, device, line string) (string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.net.Devices[device] == nil {
		return "", fmt.Errorf("rmm: no device %q", device)
	}
	return console.New(device, b.env).Run(line)
}

// request is one protocol message from client to server.
type request struct {
	Op     string `json:"op"` // login, devices, exec
	User   string `json:"user,omitempty"`
	Token  string `json:"token,omitempty"`
	Device string `json:"device,omitempty"`
	Line   string `json:"line,omitempty"`
}

// response is one protocol message from server to client.
type response struct {
	OK      bool     `json:"ok"`
	Error   string   `json:"error,omitempty"`
	Output  string   `json:"output,omitempty"`
	Devices []string `json:"devices,omitempty"`
}

// Server is the central RMM server.
type Server struct {
	backend Backend
	tokens  map[string]string // user -> token
	meter   telemetry.Meter
	idle    time.Duration

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]bool
	wg    sync.WaitGroup
}

// NewServer creates a server authenticating the given user->token map
// against the backend.
func NewServer(tokens map[string]string, backend Backend) *Server {
	t := make(map[string]string, len(tokens))
	for u, tok := range tokens {
		t[u] = tok
	}
	return &Server{backend: backend, tokens: t, meter: telemetry.Nop(),
		conns: make(map[net.Conn]bool), idle: DefaultIdleTimeout}
}

// SetIdleTimeout changes how long the server keeps an idle connection
// (call before Listen; zero disables the deadline).
func (s *Server) SetIdleTimeout(d time.Duration) { s.idle = d }

// SetTelemetry wires a meter into the server (call before Listen). When
// the meter also implements telemetry.Exposer — a *telemetry.Registry
// does — authenticated clients can fetch the Prometheus dump with the
// `metrics` protocol op.
func (s *Server) SetTelemetry(m telemetry.Meter) {
	if m == nil {
		m = telemetry.Nop()
	}
	s.meter = m
}

// Listen binds to addr (e.g. "127.0.0.1:0") and starts serving until Close.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("rmm: listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener, terminates open connections, and waits for
// connection handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	ln := s.ln
	s.ln = nil
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Shutdown drains the server gracefully: it stops accepting, lets
// in-flight requests finish, and waits for every handler. If the context
// expires first the remaining connections are force-closed and ctx's error
// is returned — but never before the handlers have actually exited, so a
// returned Shutdown means no request is still touching the backend.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	ln := s.ln
	s.ln = nil
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// track registers a live connection; it returns false when the server is
// already closing.
func (s *Server) track(conn net.Conn, add bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		if s.ln == nil {
			return false
		}
		s.conns[conn] = true
		return true
	}
	delete(s.conns, conn)
	return true
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !s.track(conn, true) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.track(conn, false)
			defer conn.Close()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	enc := json.NewEncoder(conn)
	authedUser := ""
	for {
		// The idle deadline covers waiting for the next request; a
		// technician who walks away does not hold a connection slot.
		if s.idle > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.idle))
		}
		if !sc.Scan() {
			return
		}
		var req request
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			_ = enc.Encode(response{Error: "malformed request"})
			return
		}
		resp := s.dispatch(&authedUser, req)
		_ = conn.SetWriteDeadline(time.Now().Add(serverWriteTimeout))
		if err := enc.Encode(resp); err != nil {
			return
		}
		_ = conn.SetWriteDeadline(time.Time{})
	}
}

// knownOps bounds the cardinality of the per-op request counter.
var knownOps = map[string]bool{"login": true, "devices": true, "exec": true, "metrics": true}

func (s *Server) dispatch(authedUser *string, req request) response {
	op := req.Op
	if !knownOps[op] {
		op = "unknown"
	}
	s.meter.Counter("heimdall_rmm_requests_total", telemetry.L("op", op)).Inc()
	switch req.Op {
	case "login":
		want, ok := s.tokens[req.User]
		if !ok || subtle.ConstantTimeCompare([]byte(want), []byte(req.Token)) != 1 {
			s.meter.Counter("heimdall_rmm_auth_failures_total").Inc()
			return response{Error: "authentication failed"}
		}
		*authedUser = req.User
		return response{OK: true}
	case "devices":
		if *authedUser == "" {
			return response{Error: "not authenticated"}
		}
		// Defensive copy: the backend may return internal state, and the
		// protocol layer (or a later server feature) must never be able to
		// corrupt it through the shared slice.
		devices := append([]string(nil), s.backend.Devices(*authedUser)...)
		return response{OK: true, Devices: devices}
	case "exec":
		if *authedUser == "" {
			return response{Error: "not authenticated"}
		}
		start := time.Now()
		out, err := s.backend.Exec(*authedUser, req.Device, req.Line)
		s.meter.Histogram("heimdall_rmm_exec_seconds", telemetry.LatencyBuckets).
			ObserveDuration(time.Since(start))
		if err != nil {
			s.meter.Counter("heimdall_rmm_exec_errors_total").Inc()
			return response{Error: err.Error()}
		}
		return response{OK: true, Output: out}
	case "metrics":
		if *authedUser == "" {
			return response{Error: "not authenticated"}
		}
		exp, ok := s.meter.(telemetry.Exposer)
		if !ok {
			return response{Error: "telemetry not enabled on this server"}
		}
		return response{OK: true, Output: exp.Dump()}
	default:
		return response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// Client is a technician's connection to an RMM server.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	sc   *bufio.Scanner
	io   time.Duration
}

// Dial connects to an RMM server over plain TCP (tests and the lab CLI;
// production deployments use DialTLS) within DefaultDialTimeout.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, DefaultDialTimeout)
}

// DialTimeout connects with an explicit connection-establishment bound.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("rmm: dial: %w", err)
	}
	return NewClientFromConn(conn), nil
}

// DialRetry dials with exponential backoff: attempts tries, sleeping
// base, 2*base, ... between them. It is the client half of graceful server
// restarts — a technician session survives the RMM server bouncing.
func DialRetry(addr string, attempts int, base time.Duration) (*Client, error) {
	if attempts <= 0 {
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(base << (i - 1))
		}
		c, err := DialTimeout(addr, DefaultDialTimeout)
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("rmm: dial failed after %d attempts: %w", attempts, lastErr)
}

// NewClientFromConn wraps an established connection — e.g. one wrapped by
// faultinject.WrapConn for transport-fault drills.
func NewClientFromConn(conn net.Conn) *Client {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &Client{conn: conn, enc: json.NewEncoder(conn), sc: sc}
}

// SetIOTimeout bounds each request round (write + response read). Zero —
// the default — leaves rounds unbounded for interactive sessions; the
// enforcer's push path sets it so a wedged server cannot stall a commit.
func (c *Client) SetIOTimeout(d time.Duration) { c.io = d }

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) round(req request) (response, error) {
	if c.io > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.io))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := c.enc.Encode(req); err != nil {
		if connClosed(err) {
			return response{}, fmt.Errorf("rmm: send: %w", ErrConnClosed)
		}
		return response{}, fmt.Errorf("rmm: send: %w", err)
	}
	if !c.sc.Scan() {
		err := c.sc.Err()
		if err == nil || connClosed(err) {
			// EOF mid-request: the server closed on us (shutdown, idle
			// drop, crash). One sentinel so callers can reconnect.
			return response{}, ErrConnClosed
		}
		return response{}, fmt.Errorf("rmm: recv: %w", err)
	}
	var resp response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return response{}, fmt.Errorf("rmm: recv: %w", err)
	}
	if resp.Error != "" {
		return resp, errors.New(resp.Error)
	}
	return resp, nil
}

// Login authenticates the technician.
func (c *Client) Login(user, token string) error {
	_, err := c.round(request{Op: "login", User: user, Token: token})
	return err
}

// Devices lists the devices visible to the technician.
func (c *Client) Devices() ([]string, error) {
	resp, err := c.round(request{Op: "devices"})
	return resp.Devices, err
}

// Exec runs one console command on a device.
func (c *Client) Exec(device, line string) (string, error) {
	resp, err := c.round(request{Op: "exec", Device: device, Line: line})
	return resp.Output, err
}

// Metrics fetches the server's Prometheus text dump (requires a server
// with an exposing meter wired via SetTelemetry).
func (c *Client) Metrics() (string, error) {
	resp, err := c.round(request{Op: "metrics"})
	return resp.Output, err
}
