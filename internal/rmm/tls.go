package rmm

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"net"
	"time"
)

// TLS support for the RMM channel. The incidents motivating the paper
// (APT10, SolarWinds N-central) rode on the RMM software itself, so the
// transport carries server authentication and encryption: the server
// presents a certificate and clients pin its authority.

// ServerTLS holds a server certificate and the CA material clients pin.
type ServerTLS struct {
	cert tls.Certificate
	pool *x509.CertPool
}

// NewSelfSignedTLS generates an ECDSA P-256 self-signed server certificate
// for the given host names, valid for the given duration.
func NewSelfSignedTLS(hosts []string, validity time.Duration) (*ServerTLS, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("rmm: generating key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return nil, fmt.Errorf("rmm: generating serial: %w", err)
	}
	tmpl := x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: "heimdall-rmm"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(validity),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("rmm: creating certificate: %w", err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	pool := x509.NewCertPool()
	pool.AddCert(leaf)
	return &ServerTLS{
		cert: tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key, Leaf: leaf},
		pool: pool,
	}, nil
}

// ServerConfig returns the tls.Config the server listens with.
func (s *ServerTLS) ServerConfig() *tls.Config {
	return &tls.Config{
		Certificates: []tls.Certificate{s.cert},
		MinVersion:   tls.VersionTLS13,
	}
}

// ClientConfig returns a tls.Config pinned to this server's certificate.
func (s *ServerTLS) ClientConfig(serverName string) *tls.Config {
	return &tls.Config{
		RootCAs:    s.pool,
		ServerName: serverName,
		MinVersion: tls.VersionTLS13,
	}
}

// ListenTLS binds the server with TLS on addr.
func (s *Server) ListenTLS(addr string, creds *ServerTLS) error {
	ln, err := tls.Listen("tcp", addr, creds.ServerConfig())
	if err != nil {
		return fmt.Errorf("rmm: tls listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// DialTLS connects to a TLS RMM server using the pinned client config,
// bounding connection plus handshake by DefaultDialTimeout.
func DialTLS(addr string, cfg *tls.Config) (*Client, error) {
	return DialTLSTimeout(addr, cfg, DefaultDialTimeout)
}

// DialTLSTimeout is DialTLS with an explicit bound. The timeout covers the
// TCP connect AND the TLS handshake: a listener that accepts but never
// handshakes — the shape a half-dead RMM server presents — cannot hang the
// client.
func DialTLSTimeout(addr string, cfg *tls.Config, timeout time.Duration) (*Client, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	d := &tls.Dialer{NetDialer: &net.Dialer{Timeout: timeout}, Config: cfg}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rmm: tls dial: %w", err)
	}
	return NewClientFromConn(conn), nil
}
