package rmm

import (
	"crypto/tls"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"heimdall/internal/netmodel"
	"heimdall/internal/telemetry"
)

func prodNet() *netmodel.Network {
	n := netmodel.NewNetwork("p")
	r1 := n.AddDevice("r1", netmodel.Router)
	h1 := n.AddDevice("h1", netmodel.Host)
	h2 := n.AddDevice("h2", netmodel.Host)
	n.MustConnect("h1", "eth0", "r1", "Gi0/0")
	n.MustConnect("r1", "Gi0/1", "h2", "eth0")
	h1.Interface("eth0").Addr = netip.MustParsePrefix("10.1.0.10/24")
	h1.DefaultGateway = netip.MustParseAddr("10.1.0.1")
	r1.Interface("Gi0/0").Addr = netip.MustParsePrefix("10.1.0.1/24")
	r1.Interface("Gi0/1").Addr = netip.MustParsePrefix("10.2.0.1/24")
	h2.Interface("eth0").Addr = netip.MustParsePrefix("10.2.0.10/24")
	h2.DefaultGateway = netip.MustParseAddr("10.2.0.1")
	return n
}

func startServer(t *testing.T, backend Backend) *Server {
	t.Helper()
	srv := NewServer(map[string]string{"alice": "tok-a", "bob": "tok-b"}, backend)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func login(t *testing.T, addr, user, token string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Login(user, token); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLoginAndAuthFailures(t *testing.T) {
	srv := startServer(t, NewDirectBackend(prodNet()))
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Unauthenticated requests are refused.
	if _, err := c.Devices(); err == nil || !strings.Contains(err.Error(), "not authenticated") {
		t.Fatalf("unauthenticated devices: %v", err)
	}
	if err := c.Login("alice", "wrong"); err == nil {
		t.Fatal("wrong token accepted")
	}
	if err := c.Login("mallory", "tok-a"); err == nil {
		t.Fatal("unknown user accepted")
	}
	if err := c.Login("alice", "tok-a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Devices(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectBackendFullAccess(t *testing.T) {
	n := prodNet()
	srv := startServer(t, NewDirectBackend(n))
	c := login(t, srv.Addr(), "alice", "tok-a")

	devs, err := c.Devices()
	if err != nil || len(devs) != 3 {
		t.Fatalf("devices = %v, %v", devs, err)
	}
	out, err := c.Exec("h1", "ping h2")
	if err != nil || !strings.Contains(out, "success") {
		t.Fatalf("ping via RMM = %q, %v", out, err)
	}
	// The direct model lets the technician break production — that is the
	// paper's criticism, and the baseline must reproduce it.
	if _, err := c.Exec("r1", "interface Gi0/1 shutdown"); err != nil {
		t.Fatal(err)
	}
	if !n.Device("r1").Interface("Gi0/1").Shutdown {
		t.Fatal("direct exec did not reach production")
	}
	out, err = c.Exec("h1", "ping h2")
	if err != nil || !strings.Contains(out, "failed") {
		t.Fatalf("production outage not visible: %q, %v", out, err)
	}
	// Unknown device / bad command errors propagate.
	if _, err := c.Exec("ghost", "show vlan"); err == nil {
		t.Fatal("unknown device accepted")
	}
	if _, err := c.Exec("r1", "frobnicate"); err == nil {
		t.Fatal("bad command accepted")
	}
}

// restrictedBackend exposes only one device per technician, to prove the
// server honours backend scoping (this is how Heimdall's twin plugs in).
type restrictedBackend struct {
	inner Backend
	allow map[string]string // user -> device
}

func (b *restrictedBackend) Devices(user string) []string {
	if d, ok := b.allow[user]; ok {
		return []string{d}
	}
	return nil
}

func (b *restrictedBackend) Exec(user, device, line string) (string, error) {
	if b.allow[user] != device {
		return "", &deniedError{}
	}
	return b.inner.Exec(user, device, line)
}

type deniedError struct{}

func (*deniedError) Error() string { return "permission denied" }

func TestBackendScoping(t *testing.T) {
	srv := startServer(t, &restrictedBackend{
		inner: NewDirectBackend(prodNet()),
		allow: map[string]string{"alice": "h1", "bob": "r1"},
	})
	alice := login(t, srv.Addr(), "alice", "tok-a")
	devs, _ := alice.Devices()
	if len(devs) != 1 || devs[0] != "h1" {
		t.Fatalf("alice devices = %v", devs)
	}
	if _, err := alice.Exec("r1", "show ip route"); err == nil {
		t.Fatal("alice reached bob's device")
	}
	if _, err := alice.Exec("h1", "show interfaces"); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv := startServer(t, NewDirectBackend(prodNet()))
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			if err := c.Login("alice", "tok-a"); err != nil {
				errs <- err
				return
			}
			for j := 0; j < 10; j++ {
				if _, err := c.Exec("r1", "show ip route"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestMalformedRequest(t *testing.T) {
	srv := startServer(t, NewDirectBackend(prodNet()))
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	// Server answers with an error and closes; the next round fails.
	if !c.sc.Scan() {
		t.Fatal("no error response")
	}
	if !strings.Contains(c.sc.Text(), "malformed") {
		t.Fatalf("response = %q", c.sc.Text())
	}
}

func TestUnknownOp(t *testing.T) {
	srv := startServer(t, NewDirectBackend(prodNet()))
	c := login(t, srv.Addr(), "alice", "tok-a")
	if _, err := c.round(request{Op: "reboot"}); err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("unknown op: %v", err)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	srv := startServer(t, NewDirectBackend(prodNet()))
	c := login(t, srv.Addr(), "alice", "tok-a")
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("r1", "show ip route"); err == nil {
		t.Fatal("exec after server close succeeded")
	}
	if addr := srv.Addr(); addr != "" {
		t.Fatalf("Addr after close = %q", addr)
	}
}

func TestTLSTransport(t *testing.T) {
	creds, err := NewSelfSignedTLS([]string{"127.0.0.1"}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(map[string]string{"alice": "tok-a"}, NewDirectBackend(prodNet()))
	if err := srv.ListenTLS("127.0.0.1:0", creds); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialTLS(srv.Addr(), creds.ClientConfig("127.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Login("alice", "tok-a"); err != nil {
		t.Fatal(err)
	}
	out, err := c.Exec("h1", "ping h2")
	if err != nil || !strings.Contains(out, "success") {
		t.Fatalf("exec over TLS = %q, %v", out, err)
	}

	// A client that does not pin the server's certificate is refused.
	if _, err := DialTLS(srv.Addr(), &tls.Config{MinVersion: tls.VersionTLS13}); err == nil {
		t.Fatal("unpinned client connected")
	}
	// A different authority's pin fails too (MITM protection).
	other, err := NewSelfSignedTLS([]string{"127.0.0.1"}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DialTLS(srv.Addr(), other.ClientConfig("127.0.0.1")); err == nil {
		t.Fatal("wrong-authority client connected")
	}
	// Plaintext clients cannot speak to a TLS server.
	if pc, err := Dial(srv.Addr()); err == nil {
		if err := pc.Login("alice", "tok-a"); err == nil {
			t.Fatal("plaintext login over TLS listener succeeded")
		}
		pc.Close()
	}
}

func TestServerMetrics(t *testing.T) {
	srv := startServer(t, NewDirectBackend(prodNet()))
	reg := telemetry.NewRegistry()
	srv.SetTelemetry(reg)

	// One failed login, then a full login -> devices -> exec round.
	bad, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	if err := bad.Login("alice", "wrong"); err == nil {
		t.Fatal("wrong token accepted")
	}
	c := login(t, srv.Addr(), "alice", "tok-a")
	if _, err := c.Devices(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("r1", "show ip route"); err != nil {
		t.Fatal(err)
	}

	for op, want := range map[string]float64{"login": 2, "devices": 1, "exec": 1} {
		if got := reg.CounterValue("heimdall_rmm_requests_total", telemetry.L("op", op)); got != want {
			t.Errorf("requests_total{op=%q} = %v, want %v", op, got, want)
		}
	}
	if got := reg.CounterValue("heimdall_rmm_auth_failures_total"); got != 1 {
		t.Errorf("auth_failures_total = %v, want 1", got)
	}
	if got := reg.HistogramCount("heimdall_rmm_exec_seconds"); got != 1 {
		t.Errorf("exec_seconds count = %v, want 1", got)
	}

	// The metrics protocol op returns the Prometheus dump to authed clients.
	dump, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`heimdall_rmm_requests_total{op="exec"} 1`,
		"heimdall_rmm_exec_seconds_count 1",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("metrics dump missing %q:\n%s", want, dump)
		}
	}
}

func TestMetricsOpRequiresTelemetryAndAuth(t *testing.T) {
	srv := startServer(t, NewDirectBackend(prodNet()))
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Metrics(); err == nil || !strings.Contains(err.Error(), "not authenticated") {
		t.Fatalf("unauthenticated metrics: %v", err)
	}
	if err := c.Login("alice", "tok-a"); err != nil {
		t.Fatal(err)
	}
	// The default meter is the no-op meter, which has nothing to dump.
	if _, err := c.Metrics(); err == nil || !strings.Contains(err.Error(), "telemetry not enabled") {
		t.Fatalf("metrics without telemetry: %v", err)
	}
}

// sharedSliceBackend returns the same underlying slice on every Devices
// call, modelling a backend that exposes internal state.
type sharedSliceBackend struct {
	devices []string
}

func (b *sharedSliceBackend) Devices(string) []string { return b.devices }

func (b *sharedSliceBackend) Exec(_, device, _ string) (string, error) {
	return "ok on " + device, nil
}

func TestDevicesDefensiveCopy(t *testing.T) {
	backend := &sharedSliceBackend{devices: []string{"r1", "r2", "r3"}}
	srv := startServer(t, backend)
	c := login(t, srv.Addr(), "alice", "tok-a")
	got, err := c.Devices()
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the returned slice must not corrupt backend state: the
	// server copies before the protocol layer ever sees it.
	for i := range got {
		got[i] = "owned"
	}
	resp := srv.dispatch(new(string), request{Op: "devices"})
	if resp.Error != "not authenticated" {
		t.Fatalf("unexpected dispatch response: %+v", resp)
	}
	authed := "alice"
	resp = srv.dispatch(&authed, request{Op: "devices"})
	if len(resp.Devices) != 3 || resp.Devices[0] != "r1" || resp.Devices[2] != "r3" {
		t.Fatalf("backend state corrupted: %v", resp.Devices)
	}
	// And the server-side mutation path: corrupting a dispatch result's
	// slice must not show up in the backend either.
	resp.Devices[1] = "owned"
	if backend.devices[1] != "r2" {
		t.Fatalf("backend slice mutated through response: %v", backend.devices)
	}
}
