package audit

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// TicketReport is the per-ticket review summary an auditor reads after the
// fact — the paper's "audit trails ... reviewed later to analyze a
// technician's network modifications" (§3, Challenge 3).
type TicketReport struct {
	Ticket      string
	Technicians []string
	First, Last time.Time

	Commands    int
	Denials     []string // denied decisions, in order
	Changes     []string // changes applied to production
	Escalations []string
	Emergency   bool
	VerifyRuns  int
	Rollbacks   int
}

// Summarize groups a trail's entries into per-ticket reports, sorted by
// ticket ID.
func Summarize(entries []Entry) []TicketReport {
	byTicket := make(map[string]*TicketReport)
	for _, e := range entries {
		r, ok := byTicket[e.Ticket]
		if !ok {
			r = &TicketReport{Ticket: e.Ticket, First: e.Time}
			byTicket[e.Ticket] = r
		}
		if e.Time.Before(r.First) {
			r.First = e.Time
		}
		if e.Time.After(r.Last) {
			r.Last = e.Time
		}
		if e.Technician != "" && !contains(r.Technicians, e.Technician) {
			r.Technicians = append(r.Technicians, e.Technician)
		}
		if strings.Contains(e.Detail, "EMERGENCY") {
			r.Emergency = true
		}
		switch e.Kind {
		case KindCommand:
			r.Commands++
		case KindDecision:
			if !e.Allowed {
				r.Denials = append(r.Denials, e.Detail)
			}
		case KindChange:
			if strings.HasPrefix(e.Detail, "ROLLBACK") {
				r.Rollbacks++
			} else {
				r.Changes = append(r.Changes, e.Detail)
			}
		case KindVerify:
			r.VerifyRuns++
		case KindEscalation:
			r.Escalations = append(r.Escalations, e.Detail)
		}
	}
	out := make([]TicketReport, 0, len(byTicket))
	for _, r := range byTicket {
		sort.Strings(r.Technicians)
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ticket < out[j].Ticket })
	return out
}

// String renders the report for the auditor.
func (r TicketReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ticket %s  technicians=%s  window=%s..%s\n",
		r.Ticket, strings.Join(r.Technicians, ","),
		r.First.Format(time.TimeOnly), r.Last.Format(time.TimeOnly))
	fmt.Fprintf(&b, "  commands=%d  denials=%d  changes=%d  verify-runs=%d  rollbacks=%d",
		r.Commands, len(r.Denials), len(r.Changes), r.VerifyRuns, r.Rollbacks)
	if r.Emergency {
		b.WriteString("  EMERGENCY-MODE")
	}
	if len(r.Escalations) > 0 {
		fmt.Fprintf(&b, "  escalations=%d", len(r.Escalations))
	}
	for _, d := range r.Denials {
		fmt.Fprintf(&b, "\n  DENIED: %s", d)
	}
	for _, c := range r.Changes {
		fmt.Fprintf(&b, "\n  CHANGE: %s", c)
	}
	return b.String()
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
