// Package audit implements Heimdall's tamper-evident audit trail
// (paper §4.3): every mediated technician command, reference-monitor
// decision, applied change and verification result is appended to a
// SHA-256 hash chain whose links are authenticated with an HMAC key held
// by the policy enforcer's trusted execution environment. Any later
// modification, reordering or truncation-in-the-middle of the trail is
// detected by Verify.
package audit

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"heimdall/internal/telemetry"
)

// Kind classifies an audit entry.
type Kind string

const (
	// KindCommand records a technician command submitted to the twin.
	KindCommand Kind = "command"
	// KindDecision records a reference-monitor allow/deny decision.
	KindDecision Kind = "decision"
	// KindChange records a configuration change applied to production.
	KindChange Kind = "change"
	// KindVerify records a verification run and its outcome.
	KindVerify Kind = "verify"
	// KindEscalation records a privilege escalation request/approval.
	KindEscalation Kind = "escalation"
	// KindSession records session lifecycle events (open/close/commit).
	KindSession Kind = "session"
)

// Entry is one link of the audit chain.
type Entry struct {
	Index      int       `json:"index"`
	Time       time.Time `json:"time"`
	Ticket     string    `json:"ticket"`
	Technician string    `json:"technician"`
	Kind       Kind      `json:"kind"`
	Detail     string    `json:"detail"`
	Allowed    bool      `json:"allowed"`
	PrevHash   string    `json:"prevHash"`
	Hash       string    `json:"hash"`
	MAC        string    `json:"mac"`
}

// content returns the canonical byte string covered by the entry hash.
func (e *Entry) content() []byte {
	return []byte(fmt.Sprintf("%d|%d|%s|%s|%s|%s|%t|%s",
		e.Index, e.Time.UnixNano(), e.Ticket, e.Technician, e.Kind, e.Detail, e.Allowed, e.PrevHash))
}

// Trail is an append-only, hash-chained audit log. It is safe for
// concurrent use.
type Trail struct {
	mu      sync.Mutex
	key     []byte
	entries []Entry
	now     func() time.Time
	meter   telemetry.Meter
}

// NewTrail creates a trail authenticated with the given HMAC key. The key
// is what makes the trail tamper-evident against anyone who can rewrite
// storage but does not hold the key — in Heimdall it never leaves the
// enforcer's enclave.
func NewTrail(key []byte) *Trail {
	k := make([]byte, len(key))
	copy(k, key)
	return &Trail{key: k, now: time.Now, meter: telemetry.Nop()}
}

// SetClock replaces the time source (tests and deterministic replays).
func (t *Trail) SetClock(now func() time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
}

// SetMeter wires audit metrics (entries appended by kind, chain length).
func (t *Trail) SetMeter(m telemetry.Meter) {
	if m == nil {
		m = telemetry.Nop()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.meter = m
}

// Append adds an entry to the chain, filling in index, time, hashes and
// MAC, and returns the completed entry.
func (t *Trail) Append(ticket, technician string, kind Kind, detail string, allowed bool) Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := Entry{
		Index:      len(t.entries),
		Time:       t.now(),
		Ticket:     ticket,
		Technician: technician,
		Kind:       kind,
		Detail:     detail,
		Allowed:    allowed,
	}
	if len(t.entries) > 0 {
		e.PrevHash = t.entries[len(t.entries)-1].Hash
	}
	sum := sha256.Sum256(e.content())
	e.Hash = hex.EncodeToString(sum[:])
	mac := hmac.New(sha256.New, t.key)
	mac.Write(sum[:])
	e.MAC = hex.EncodeToString(mac.Sum(nil))
	t.entries = append(t.entries, e)
	t.meter.Counter("heimdall_audit_entries_total", telemetry.L("kind", string(kind))).Inc()
	t.meter.Gauge("heimdall_audit_chain_length").Set(float64(len(t.entries)))
	return e
}

// Entries returns a copy of the trail.
func (t *Trail) Entries() []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Entry, len(t.entries))
	copy(out, t.entries)
	return out
}

// Len returns the number of entries.
func (t *Trail) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// Verify checks the whole chain: per-entry hashes, the prev-hash links,
// index continuity, and every HMAC. It returns the first inconsistency.
func (t *Trail) Verify() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return verifyEntries(t.entries, t.key)
}

func verifyEntries(entries []Entry, key []byte) error {
	prev := ""
	for i := range entries {
		e := &entries[i]
		if e.Index != i {
			return fmt.Errorf("audit: entry %d has index %d (reordered or truncated)", i, e.Index)
		}
		if e.PrevHash != prev {
			return fmt.Errorf("audit: entry %d chain break", i)
		}
		sum := sha256.Sum256(e.content())
		if hex.EncodeToString(sum[:]) != e.Hash {
			return fmt.Errorf("audit: entry %d content hash mismatch (tampered)", i)
		}
		mac := hmac.New(sha256.New, key)
		mac.Write(sum[:])
		if !hmac.Equal(mac.Sum(nil), mustHex(e.MAC)) {
			return fmt.Errorf("audit: entry %d MAC mismatch (forged)", i)
		}
		prev = e.Hash
	}
	return nil
}

func mustHex(s string) []byte {
	b, err := hex.DecodeString(s)
	if err != nil {
		return nil
	}
	return b
}

// Export serialises the trail as JSON for offline review.
func (t *Trail) Export() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return json.MarshalIndent(t.entries, "", "  ")
}

// Import parses an exported trail and verifies it against the key before
// returning it. Tampered exports are rejected.
func Import(key, data []byte) (*Trail, error) {
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("audit: parsing export: %w", err)
	}
	if err := verifyEntries(entries, key); err != nil {
		return nil, err
	}
	t := NewTrail(key)
	t.entries = entries
	return t, nil
}
