package audit

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func testTrail() *Trail {
	t := NewTrail([]byte("test-key"))
	base := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	i := 0
	t.SetClock(func() time.Time {
		i++
		return base.Add(time.Duration(i) * time.Second)
	})
	return t
}

func TestAppendAndVerify(t *testing.T) {
	tr := testTrail()
	e1 := tr.Append("T1", "alice", KindCommand, "show ip route on r1", true)
	e2 := tr.Append("T1", "alice", KindDecision, "deny config.acl.add on device:r2", false)
	if e1.Index != 0 || e2.Index != 1 {
		t.Fatalf("indexes = %d, %d", e1.Index, e2.Index)
	}
	if e2.PrevHash != e1.Hash {
		t.Fatal("chain link broken at append time")
	}
	if err := tr.Verify(); err != nil {
		t.Fatalf("fresh trail fails verify: %v", err)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestTamperDetection(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(entries []Entry) []Entry
	}{
		{"edit detail", func(es []Entry) []Entry { es[1].Detail = "innocent"; return es }},
		{"flip allowed", func(es []Entry) []Entry { es[1].Allowed = false; return es }},
		{"drop middle", func(es []Entry) []Entry { return append(es[:1], es[2:]...) }},
		{"reorder", func(es []Entry) []Entry { es[0], es[1] = es[1], es[0]; return es }},
		{"rewrite hash", func(es []Entry) []Entry {
			es[1].Detail = "innocent"
			// recompute hash but NOT the MAC (attacker lacks the key)
			es[1].Hash = strings.Repeat("0", 64)
			return es
		}},
	}
	for _, m := range mutations {
		tr := testTrail()
		tr.Append("T1", "alice", KindCommand, "cmd1", true)
		tr.Append("T1", "alice", KindCommand, "cmd2", true)
		tr.Append("T1", "alice", KindChange, "apply acl change", true)
		es := m.mutate(tr.Entries())
		if err := verifyEntries(es, []byte("test-key")); err == nil {
			t.Errorf("%s: tampering not detected", m.name)
		}
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	tr := testTrail()
	tr.Append("T1", "alice", KindSession, "session opened", true)
	tr.Append("T1", "alice", KindVerify, "21 policies checked, 0 violations", true)
	data, err := tr.Export()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Import([]byte("test-key"), data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("imported Len = %d", back.Len())
	}
	if err := back.Verify(); err != nil {
		t.Fatal(err)
	}
	// Import with the wrong key fails (MACs don't verify).
	if _, err := Import([]byte("wrong-key"), data); err == nil {
		t.Fatal("import with wrong key accepted")
	}
	// Tampered export fails.
	tampered := strings.Replace(string(data), "alice", "mallory", 1)
	if _, err := Import([]byte("test-key"), []byte(tampered)); err == nil {
		t.Fatal("tampered export accepted")
	}
	if _, err := Import([]byte("test-key"), []byte("{not json")); err == nil {
		t.Fatal("garbage export accepted")
	}
}

func TestAppendAfterImportContinuesChain(t *testing.T) {
	tr := testTrail()
	tr.Append("T1", "a", KindCommand, "one", true)
	data, _ := tr.Export()
	back, err := Import([]byte("test-key"), data)
	if err != nil {
		t.Fatal(err)
	}
	back.Append("T1", "a", KindCommand, "two", true)
	if err := back.Verify(); err != nil {
		t.Fatalf("chain after import+append: %v", err)
	}
}

func TestConcurrentAppend(t *testing.T) {
	tr := NewTrail([]byte("k"))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				tr.Append("T", "x", KindCommand, "c", true)
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 400 {
		t.Fatalf("Len = %d, want 400", tr.Len())
	}
	if err := tr.Verify(); err != nil {
		t.Fatalf("concurrent appends broke the chain: %v", err)
	}
}

func TestEntriesIsACopy(t *testing.T) {
	tr := testTrail()
	tr.Append("T", "x", KindCommand, "c", true)
	es := tr.Entries()
	es[0].Detail = "mutated"
	if tr.Entries()[0].Detail != "c" {
		t.Fatal("Entries exposed internal storage")
	}
}
