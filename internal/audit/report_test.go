package audit

import (
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	tr := testTrail()
	tr.Append("T-0001", "alice", KindSession, "twin created", true)
	tr.Append("T-0001", "alice", KindCommand, "[r1] show ip route", true)
	tr.Append("T-0001", "alice", KindDecision, "allow show.ip.route on device:r1", true)
	tr.Append("T-0001", "alice", KindCommand, "[r1] access-list X 10 permit ip any any", true)
	tr.Append("T-0001", "alice", KindDecision, "deny config.acl.add on device:r1:acl:X", false)
	tr.Append("T-0001", "alice", KindEscalation, "requested allow(config.acl.*, device:r1)", true)
	tr.Append("T-0001", "alice", KindVerify, "review: 1 changes, 21 policies checked, 0 violations", true)
	tr.Append("T-0001", "alice", KindChange, "r1 add-acl-entry: 10 permit ip any any", true)
	tr.Append("T-0002", "bob", KindSession, "EMERGENCY mode enabled (approved by admin)", true)
	tr.Append("T-0002", "bob", KindChange, "ROLLBACK: post-apply verification failed", false)

	reports := Summarize(tr.Entries())
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	r1 := reports[0]
	if r1.Ticket != "T-0001" || r1.Commands != 2 || len(r1.Denials) != 1 ||
		len(r1.Changes) != 1 || r1.VerifyRuns != 1 || len(r1.Escalations) != 1 {
		t.Fatalf("T-0001 report = %+v", r1)
	}
	if r1.Emergency || r1.Rollbacks != 0 {
		t.Fatalf("T-0001 flags wrong: %+v", r1)
	}
	if !strings.Contains(r1.String(), "DENIED:") || !strings.Contains(r1.String(), "CHANGE:") {
		t.Fatalf("report text:\n%s", r1)
	}
	r2 := reports[1]
	if !r2.Emergency || r2.Rollbacks != 1 {
		t.Fatalf("T-0002 report = %+v", r2)
	}
	if r2.Technicians[0] != "bob" {
		t.Fatalf("technicians = %v", r2.Technicians)
	}
	if !r2.Last.After(r2.First) && r2.Last != r2.First {
		t.Fatal("time window wrong")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if got := Summarize(nil); len(got) != 0 {
		t.Fatalf("Summarize(nil) = %v", got)
	}
}
