// Package replica turns the single-node enforcer into a replicated one:
// N replicas each hold an independent copy of the production network and
// of the HMAC-chained commit journal, and every commit runs a
// deterministic quorum protocol driven through the enforcer's existing
// push pipeline (enforcer.ReplicationHooks):
//
//	propose   — the journaled intent record is sent to every live replica;
//	vote      — each replica independently verifies the record (HMAC under
//	            the shared enclave-derived key, chain continuity, and the
//	            M-of-N approvals for high-risk change sets) and ACKs by
//	            appending it verbatim;
//	commit    — the coordinator pushes only if ACKs reach the quorum;
//	            otherwise it aborts pre-push and a rollback record closes
//	            the commit on every copy that opened it.
//
// Replicas that miss a message (crash, partition — modelled by the
// deterministic fault injector on link scopes) drop out of the commit and
// are healed later by authenticated state transfer. Honest replica
// journals are bit-identical to the coordinator's by construction: records
// are mirrored verbatim, never re-stamped.
//
// The second half of the package is the Byzantine cross-audit (paper
// threat model: the watchman itself is compromised). Replicas exchange
// journal heads and chains; a replica that forged a record (even an
// insider re-chaining with the key), truncated its chain, or equivocates
// — reporting different heads to different peers — is detected by
// majority cross-verification and quarantined.
package replica

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"heimdall/internal/authz"
	"heimdall/internal/config"
	"heimdall/internal/faultinject"
	"heimdall/internal/journal"
	"heimdall/internal/netmodel"
	"heimdall/internal/telemetry"
)

// State is a replica's membership state.
type State int

const (
	// Live replicas vote on and mirror every commit.
	Live State = iota
	// Lagging replicas missed a message (crash/partition) and sit out
	// until healed by state transfer.
	Lagging
	// Quarantined replicas were caught lying by cross-audit. They are
	// excluded from quorum and are not healed automatically.
	Quarantined
)

// String names the state.
func (s State) String() string {
	switch s {
	case Lagging:
		return "lagging"
	case Quarantined:
		return "quarantined"
	default:
		return "live"
	}
}

// Lie selects a Byzantine behaviour a drill arms on one replica. Lies
// surface at cross-audit time: the replica's commit-path behaviour stays
// honest (a subverted replica wants to stay under the radar), but the
// chain it shows auditors is not the chain it holds.
type Lie int

const (
	// LieNone: honest replica.
	LieNone Lie = iota
	// LieForge: the replica rewrites one record's payload and re-chains
	// its copy with the journal key — the insider forgery chain
	// verification alone cannot catch.
	LieForge
	// LieTruncate: the replica drops the tail of its chain and presents
	// the prefix as current — hiding the most recent commit.
	LieTruncate
	// LieEquivocate: the replica reports different heads to different
	// peers.
	LieEquivocate
)

// String names the lie.
func (l Lie) String() string {
	switch l {
	case LieForge:
		return "forge"
	case LieTruncate:
		return "truncate"
	case LieEquivocate:
		return "equivocate"
	default:
		return "none"
	}
}

// Replica is one enforcer replica: an independent copy of production and
// of the commit journal.
type Replica struct {
	Name    string
	coord   string // the coordinator's name (the equivocation target)
	net     *netmodel.Network
	journal *journal.Journal
	state   State
	// verdict is why the replica was quarantined ("forged-chain",
	// "truncated-chain", "equivocating-heads").
	verdict string
	lie     Lie
}

// State returns the replica's membership state.
func (r *Replica) State() State { return r.state }

// Verdict returns the cross-audit verdict that quarantined the replica.
func (r *Replica) Verdict() string { return r.verdict }

// Journal returns the replica's journal copy.
func (r *Replica) Journal() *journal.Journal { return r.journal }

// Net returns the replica's copy of the production network.
func (r *Replica) Net() *netmodel.Network { return r.net }

// chainFor returns the record chain the replica presents to auditors,
// with its armed lie applied.
func (r *Replica) chainFor(key []byte) []journal.Record {
	records := r.journal.Records()
	switch r.lie {
	case LieForge:
		if len(records) > 0 {
			records[len(records)/2].Detail += " [forged]"
			journal.Rechain(records, key)
		}
	case LieTruncate:
		if len(records) > 0 {
			records = records[:len(records)-1]
		}
	}
	return records
}

// headFor returns the head the replica claims to the named peer. An
// equivocating replica tells the coordinator a stale head and its peers
// the truth — the classic attack of showing the auditor a different
// history than the group, and deterministic, so the same schedule always
// produces the same lie. Because the coordinator and at least one peer
// both collect claims, the conflicting pair is always observable.
func (r *Replica) headFor(peer string, key []byte) journal.Head {
	records := r.journal.Records()
	if r.lie == LieEquivocate && peer == r.coord && len(records) > 0 {
		return journal.HeadOf(records[:len(records)-1])
	}
	return journal.HeadOf(r.chainFor(key))
}

// QuorumError is the permanent (never retried) error the group returns
// when a commit cannot reach quorum.
type QuorumError struct {
	Acks, Quorum, Members int
	Phase                 string
}

// Error implements the error interface.
func (e *QuorumError) Error() string {
	return fmt.Sprintf("replica: quorum not reached at %s: %d/%d acks (quorum %d)",
		e.Phase, e.Acks, e.Members, e.Quorum)
}

// Config parameterises a replica group.
type Config struct {
	// Coordinator is the coordinator's scope name for link faults
	// (default "coord").
	Coordinator string
	// Replicas names the replicas, e.g. ["r-a", "r-b", "r-c"].
	Replicas []string
	// Quorum is the number of group members (replicas + coordinator)
	// that must hold a commit for it to proceed; 0 means a strict
	// majority of the group.
	Quorum int
	// Key is the journal HMAC key shared by every copy (in deployment,
	// derived inside each replica's enclave from the same sealed secret).
	Key []byte
	// Auth, when set, makes every replica re-verify the M-of-N approvals
	// in high-risk intents before ACKing — a coordinator that skips its
	// own check cannot reach quorum.
	Auth *authz.Policy
	// Injector gates every inter-replica message on the canonical link
	// scope (faultinject.LinkScope) with ops "propose", "apply",
	// "restore", "finish" and "head". Nil means a perfect network.
	Injector *faultinject.Injector
	// Meter receives group telemetry.
	Meter telemetry.Meter
}

// Group is a set of enforcer replicas mirroring one coordinator. It
// implements enforcer.Target and enforcer.ReplicationHooks; install it
// with Enforcer.SetTarget to replicate the commit pipeline.
type Group struct {
	mu       sync.Mutex
	coord    string
	prod     *netmodel.Network
	journal  *journal.Journal // the coordinator's journal
	replicas []*Replica
	quorum   int
	key      []byte
	auth     *authz.Policy
	inj      *faultinject.Injector
	meter    telemetry.Meter
}

// NewGroup builds a replica group around the coordinator's production
// network and journal. Each replica starts Live with a deep clone of
// production and a copy of the coordinator's current chain, so a group
// can be installed on an enforcer that has already committed.
func NewGroup(prod *netmodel.Network, coordJournal *journal.Journal, cfg Config) (*Group, error) {
	if cfg.Coordinator == "" {
		cfg.Coordinator = "coord"
	}
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("replica: group needs at least one replica")
	}
	members := len(cfg.Replicas) + 1
	quorum := cfg.Quorum
	if quorum == 0 {
		quorum = members/2 + 1
	}
	if quorum < 1 || quorum > members {
		return nil, fmt.Errorf("replica: quorum %d out of range for %d members", quorum, members)
	}
	meter := cfg.Meter
	if meter == nil {
		meter = telemetry.Nop()
	}
	g := &Group{
		coord:   cfg.Coordinator,
		prod:    prod,
		journal: coordJournal,
		quorum:  quorum,
		key:     append([]byte(nil), cfg.Key...),
		auth:    cfg.Auth,
		inj:     cfg.Injector,
		meter:   meter,
	}
	seed := coordJournal.Records()
	for _, name := range cfg.Replicas {
		j, err := journal.Import(g.key, mustExport(seed))
		if err != nil {
			return nil, fmt.Errorf("replica: seeding %s: %w", name, err)
		}
		g.replicas = append(g.replicas, &Replica{Name: name, coord: g.coord, net: prod.Clone(), journal: j})
	}
	return g, nil
}

// exportRecords serialises a record slice in the journal's export format,
// so Import can authenticate it on the receiving side.
func exportRecords(records []journal.Record) ([]byte, error) {
	return json.MarshalIndent(records, "", "  ")
}

// mustExport serialises a record slice the way Journal.Export does.
func mustExport(records []journal.Record) []byte {
	b, err := exportRecords(records)
	if err != nil {
		panic(fmt.Sprintf("replica: export seed chain: %v", err))
	}
	return b
}

// SetInjector replaces the link fault injector (sweeps clear faults
// before the final audit round).
func (g *Group) SetInjector(inj *faultinject.Injector) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inj = inj
}

// Quorum returns the configured quorum over replicas + coordinator.
func (g *Group) Quorum() int { return g.quorum }

// Replicas returns the group members in configuration order.
func (g *Group) Replicas() []*Replica {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*Replica(nil), g.replicas...)
}

// Replica returns the named member, or nil.
func (g *Group) Replica(name string) *Replica {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, r := range g.replicas {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// MakeByzantine arms a lie on the named replica (drills and sweeps).
func (g *Group) MakeByzantine(name string, lie Lie) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, r := range g.replicas {
		if r.Name == name {
			r.lie = lie
		}
	}
}

// visit consults the injector on the coordinator→replica link.
func (g *Group) visit(r *Replica, op string) error {
	if g.inj == nil {
		return nil
	}
	return g.inj.Visit(faultinject.LinkScope(g.coord, r.Name), op)
}

// dropOut marks a replica lagging mid-commit: it missed a message and
// sits out until healed.
func (g *Group) dropOut(r *Replica, why string) {
	if r.state != Live {
		return
	}
	r.state = Lagging
	g.meter.Counter("heimdall_replica_dropouts_total", telemetry.L("replica", r.Name)).Inc()
}

// liveCount counts members currently able to hold the commit: the
// coordinator plus Live replicas.
func (g *Group) liveCount() int {
	n := 1
	for _, r := range g.replicas {
		if r.state == Live {
			n++
		}
	}
	return n
}

// BeginCommit implements enforcer.ReplicationHooks: propose the intent,
// gather verify votes, and veto the commit when ACKs (plus the
// coordinator's own) miss the quorum.
func (g *Group) BeginCommit(intent journal.Record) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	acks := 1 // the coordinator journaled the intent
	for _, r := range g.replicas {
		if r.state != Live {
			continue
		}
		if err := g.visit(r, "propose"); err != nil {
			g.dropOut(r, "unreachable at propose")
			continue
		}
		if err := g.vote(r, intent); err != nil {
			// A NACK is not a crash, but the replica now refuses this
			// commit's records; it sits out until healed.
			g.dropOut(r, "nacked intent")
			g.meter.Counter("heimdall_replica_nacks_total", telemetry.L("replica", r.Name)).Inc()
			continue
		}
		acks++
	}
	if acks < g.quorum {
		g.meter.Counter("heimdall_replica_quorum_aborts_total").Inc()
		return &QuorumError{Acks: acks, Quorum: g.quorum, Members: len(g.replicas) + 1, Phase: "propose"}
	}
	return nil
}

// vote is one replica's independent verification of a proposed intent:
// approvals for high-risk change sets, then record authenticity and chain
// continuity via the verbatim append (the ACK).
func (g *Group) vote(r *Replica, intent journal.Record) error {
	if g.auth != nil && authz.Classify(intent.Changes) == authz.HighRisk {
		if err := g.auth.Verify(intent.Ticket, intent.Changes, intent.Approvals); err != nil {
			return fmt.Errorf("replica %s: %w", r.Name, err)
		}
	}
	return r.journal.AppendVerbatim(intent)
}

// MirrorRecord implements enforcer.ReplicationHooks: distribute one
// post-intent record. Applied records ride the apply message (no separate
// fault point); terminal records cross the link as their own "finish"
// message, so a replica can crash between the last apply and the close —
// exactly the journal-boundary crash the sweep must cover.
func (g *Group) MirrorRecord(rec journal.Record) {
	g.mu.Lock()
	defer g.mu.Unlock()
	terminal := rec.Kind != journal.KindApplied
	for _, r := range g.replicas {
		if r.state != Live {
			continue
		}
		if terminal {
			if err := g.visit(r, "finish"); err != nil {
				g.dropOut(r, "unreachable at finish")
				continue
			}
		}
		if err := r.journal.AppendVerbatim(rec); err != nil {
			g.dropOut(r, "chain mismatch on mirror")
		}
	}
}

// Apply implements enforcer.Target: push one change to the coordinator's
// production network (gated per device, like the in-memory target) and to
// every live replica's copy (gated per link). Losing a replica is not an
// error — it drops out and heals later — unless the group as a whole
// falls below quorum, which aborts the commit with a permanent error so
// the pipeline rolls back immediately.
func (g *Group) Apply(c config.Change) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inj != nil {
		if err := g.inj.Visit(c.Device, "apply"); err != nil {
			return err
		}
	}
	d := g.prod.Devices[c.Device]
	if d == nil {
		return fmt.Errorf("replica: no production device %q", c.Device)
	}
	if err := config.ApplyChange(d, c); err != nil {
		return err
	}
	for _, r := range g.replicas {
		if r.state != Live {
			continue
		}
		if err := g.visit(r, "apply"); err != nil {
			g.dropOut(r, "unreachable at apply")
			continue
		}
		if rd := r.net.Devices[c.Device]; rd != nil {
			// Same change on same state cannot fail differently; if it
			// somehow does, the replica is inconsistent — drop it out.
			if err := config.ApplyChange(rd, c); err != nil {
				g.dropOut(r, "apply diverged")
			}
		}
	}
	if n := g.liveCount(); n < g.quorum {
		g.meter.Counter("heimdall_replica_quorum_aborts_total").Inc()
		return &QuorumError{Acks: n, Quorum: g.quorum, Members: len(g.replicas) + 1, Phase: "apply"}
	}
	return nil
}

// RestoreDevice implements enforcer.Target: rollback restores the
// coordinator's device and every live replica's copy.
func (g *Group) RestoreDevice(name string, d *netmodel.Device) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inj != nil {
		if err := g.inj.Visit(name, "restore"); err != nil {
			return err
		}
	}
	g.prod.Devices[name] = d
	for _, r := range g.replicas {
		if r.state != Live {
			continue
		}
		if err := g.visit(r, "restore"); err != nil {
			g.dropOut(r, "unreachable at restore")
			continue
		}
		r.net.Devices[name] = d.Clone()
	}
	return nil
}

// Verdicts a cross-audit can assign.
const (
	VerdictOK          = "ok"
	VerdictLagging     = "lagging"
	VerdictForged      = "forged-chain"
	VerdictTruncated   = "truncated-chain"
	VerdictEquivocated = "equivocating-heads"
	VerdictUnreachable = "unreachable"
)

// AuditReport is the outcome of one cross-audit round.
type AuditReport struct {
	// Conclusive is false when the canonical chain could not be
	// corroborated by a quorum (too many members partitioned away, or
	// the coordinator's chain conflicts with its replicas); nothing is
	// quarantined or healed in that case.
	Conclusive bool
	// CoordinatorSuspect is set when enough members were reachable to
	// form a quorum and they still failed to corroborate the
	// coordinator's chain — the watchman itself is the outlier.
	CoordinatorSuspect bool
	// Canonical is the head of the corroborated canonical chain.
	Canonical journal.Head
	// Verdicts maps every replica to its audit verdict.
	Verdicts map[string]string
	// NewlyQuarantined lists replicas this round caught lying.
	NewlyQuarantined []string
	// Healed lists lagging replicas brought back by state transfer.
	Healed []string
}

// CrossAudit runs one audit round: exchange heads pairwise (catching
// equivocation), collect chains, establish the canonical chain, quarantine
// liars, and heal honest laggards by authenticated state transfer.
//
// The canonical chain is the coordinator's, but never by fiat: it counts
// as canonical only when a quorum of members (itself included) hold a
// chain equal to it or a clean prefix of it. Prefix-holders corroborate —
// the hash chain makes a prefix an exact commitment to the longer chain's
// history — which matters because a crash can leave the newest record on
// fewer members than the quorum that ACKed the intent. If a quorum of
// reachable members does NOT corroborate, the audit is inconclusive and
// flags the coordinator as suspect: a rewritten coordinator chain makes
// every honest replica diverge, and that majority disagreement is
// precisely the signal. A replica claiming records beyond the canonical
// head fabricated them (no quorum ever saw them) and is quarantined just
// like a diverging one.
func (g *Group) CrossAudit() *AuditReport {
	g.mu.Lock()
	defer g.mu.Unlock()
	rep := &AuditReport{Verdicts: make(map[string]string)}

	// Reachability and head exchange. Peers are the coordinator plus all
	// non-quarantined replicas; every reachable pair exchanges heads.
	type claim struct {
		asker string
		head  journal.Head
	}
	reachable := map[string]bool{}
	heads := map[string][]claim{}
	var audited []*Replica
	for _, r := range g.replicas {
		if r.state == Quarantined {
			rep.Verdicts[r.Name] = r.verdict
			continue
		}
		if err := g.visit(r, "head"); err != nil {
			rep.Verdicts[r.Name] = VerdictUnreachable
			continue
		}
		reachable[r.Name] = true
		audited = append(audited, r)
		heads[r.Name] = append(heads[r.Name], claim{g.coord, r.headFor(g.coord, g.key)})
	}
	for _, asker := range audited {
		for _, r := range audited {
			if asker == r {
				continue
			}
			if g.inj != nil && g.inj.Visit(faultinject.LinkScope(asker.Name, r.Name), "head") != nil {
				continue
			}
			heads[r.Name] = append(heads[r.Name], claim{asker.Name, r.headFor(asker.Name, g.key)})
		}
	}

	// Equivocation: two peers got different heads from the same replica.
	for _, r := range audited {
		claims := heads[r.Name]
		for i := 1; i < len(claims); i++ {
			if claims[i].head != claims[0].head {
				g.quarantine(r, VerdictEquivocated, rep)
				break
			}
		}
	}

	// Chain collection and quorum agreement. A chain's fingerprint is its
	// (length, head hash): hash-chaining makes an equal head imply an
	// equal chain, given per-chain validity.
	type vc struct {
		records []journal.Record
		valid   bool
	}
	chains := map[string]vc{}
	coordRecords := g.journal.Records()
	chains[g.coord] = vc{coordRecords, journal.VerifyChain(coordRecords, g.key) == nil}
	for _, r := range audited {
		if r.state == Quarantined {
			continue
		}
		recs := r.chainFor(g.key)
		chains[r.Name] = vc{recs, journal.VerifyChain(recs, g.key) == nil}
	}
	coord := chains[g.coord]
	if !coord.valid {
		rep.CoordinatorSuspect = true
		return rep
	}
	canonRecords := coord.records
	corroborating := 0
	for _, c := range chains {
		if !c.valid {
			continue
		}
		switch journal.Diff(c.records, canonRecords).Relation {
		case journal.RelEqual, journal.RelPrefix:
			corroborating++
		}
	}
	if corroborating < g.quorum {
		// Either too few members reachable to judge, or — if a quorum
		// was reachable and still disagrees — the coordinator itself is
		// the outlier.
		rep.CoordinatorSuspect = len(chains) >= g.quorum
		return rep
	}
	rep.Conclusive = true
	rep.Canonical = journal.HeadOf(canonRecords)

	// Verdict per audited replica.
	for _, r := range audited {
		if r.state == Quarantined { // equivocator caught above
			continue
		}
		c := chains[r.Name]
		if !c.valid {
			g.quarantine(r, VerdictForged, rep)
			continue
		}
		switch diff := journal.Diff(c.records, canonRecords); diff.Relation {
		case journal.RelEqual:
			if r.state == Lagging {
				g.heal(r, canonRecords, rep)
			} else {
				rep.Verdicts[r.Name] = VerdictOK
			}
		case journal.RelPrefix:
			if r.state == Lagging {
				// Honest laggard: it dropped out mid-commit and its
				// prefix chain says so. State transfer brings it back.
				g.heal(r, canonRecords, rep)
			} else {
				// A live replica ACKed these records; showing a prefix
				// means it hid them.
				g.quarantine(r, VerdictTruncated, rep)
			}
		default: // diverged, or claims records the majority never saw
			g.quarantine(r, VerdictForged, rep)
		}
	}
	return rep
}

// quarantine marks a replica Byzantine with the given verdict.
func (g *Group) quarantine(r *Replica, verdict string, rep *AuditReport) {
	r.state = Quarantined
	r.verdict = verdict
	rep.Verdicts[r.Name] = verdict
	rep.NewlyQuarantined = append(rep.NewlyQuarantined, r.Name)
	g.meter.Counter("heimdall_replica_byzantine_detected_total",
		telemetry.L("verdict", verdict)).Inc()
}

// heal brings a lagging replica back by authenticated state transfer:
// the canonical chain is imported (verifying every record under the key)
// and the network copy is refreshed from the coordinator's production
// state, which the canonical chain fully determines.
func (g *Group) heal(r *Replica, canonical []journal.Record, rep *AuditReport) {
	data, err := exportRecords(canonical)
	if err != nil {
		return
	}
	j, err := journal.Import(g.key, data)
	if err != nil {
		return
	}
	r.journal = j
	r.net = g.prod.Clone()
	r.state = Live
	r.verdict = ""
	rep.Verdicts[r.Name] = VerdictLagging
	rep.Healed = append(rep.Healed, r.Name)
	g.meter.Counter("heimdall_replica_heals_total", telemetry.L("replica", r.Name)).Inc()
}

// sortedNames returns the names of the replicas in a state.
func (g *Group) sortedNames(s State) []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []string
	for _, r := range g.replicas {
		if r.state == s {
			out = append(out, r.Name)
		}
	}
	sort.Strings(out)
	return out
}

// LiveNames returns the live replicas' names, sorted.
func (g *Group) LiveNames() []string { return g.sortedNames(Live) }

// QuarantinedNames returns the quarantined replicas' names, sorted.
func (g *Group) QuarantinedNames() []string { return g.sortedNames(Quarantined) }
