package replica

import (
	"bytes"
	"net/netip"
	"sort"
	"testing"
	"time"

	"heimdall/internal/authz"
	"heimdall/internal/config"
	"heimdall/internal/dataplane"
	"heimdall/internal/enclave"
	"heimdall/internal/enforcer"
	"heimdall/internal/faultinject"
	"heimdall/internal/journal"
	"heimdall/internal/netmodel"
	"heimdall/internal/privilege"
	"heimdall/internal/spec"
	"heimdall/internal/telemetry"
)

// prod: h1 - r1 - h2, plus sensitive h3 behind the same router guarded by
// an isolation-enforcing ACL (same fixture as the enforcer tests).
func prod() *netmodel.Network {
	n := netmodel.NewNetwork("prod")
	r1 := n.AddDevice("r1", netmodel.Router)
	for i, sub := range []string{"10.1.0", "10.2.0", "10.3.0"} {
		name := []string{"h1", "h2", "h3"}[i]
		itf := []string{"Gi0/0", "Gi0/1", "Gi0/2"}[i]
		h := n.AddDevice(name, netmodel.Host)
		n.MustConnect(name, "eth0", "r1", itf)
		h.Interface("eth0").Addr = netip.MustParsePrefix(sub + ".10/24")
		h.DefaultGateway = netip.MustParseAddr(sub + ".1")
		r1.Interface(itf).Addr = netip.MustParsePrefix(sub + ".1/24")
	}
	guard := r1.ACL("GUARD", true)
	guard.InsertEntry(netmodel.ACLEntry{Seq: 10, Action: netmodel.Deny, Proto: netmodel.AnyProto,
		Dst: netip.MustParsePrefix("10.3.0.0/24")})
	guard.InsertEntry(netmodel.ACLEntry{Seq: 20, Action: netmodel.Permit})
	r1.Interface("Gi0/0").ACLIn = "GUARD"
	r1.Interface("Gi0/1").ACLIn = "GUARD"
	return n
}

func newEnforcer(n *netmodel.Network) *enforcer.Enforcer {
	platform := enclave.NewPlatformFromSeed("test")
	encl := platform.Load("heimdall-enforcer-v1")
	policies := spec.Mine(dataplane.Compute(n), n, spec.Options{Sensitive: map[string]bool{"h3": true}})
	return enforcer.New(encl, policies)
}

func aclSpec() *privilege.Spec {
	return &privilege.Spec{Ticket: "T1", Technician: "alice", Rules: []privilege.Rule{
		{Effect: privilege.AllowEffect, Action: "config.acl.*", Resource: "device:r1"},
	}}
}

func benignChange(seq, port int) config.Change {
	return config.Change{
		Device: "r1", Op: config.OpAddACLEntry, ACLName: "GUARD",
		Entry: &netmodel.ACLEntry{Seq: seq, Action: netmodel.Permit, Proto: netmodel.TCP,
			Dst: netip.MustParsePrefix("10.2.0.10/32"), DstPort: uint16(port)},
	}
}

// fingerprint renders every device's canonical config, concatenated.
func fingerprint(n *netmodel.Network) string {
	names := make([]string, 0, len(n.Devices))
	for name := range n.Devices {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf bytes.Buffer
	for _, name := range names {
		buf.WriteString(config.Print(n.Devices[name]))
	}
	return buf.String()
}

// rig builds enforcer + 3-replica group wired as its push target.
func rig(t *testing.T, inj *faultinject.Injector, auth *authz.Policy) (*netmodel.Network, *enforcer.Enforcer, *Group, *telemetry.Registry) {
	t.Helper()
	n := prod()
	e := newEnforcer(n)
	reg := telemetry.NewRegistry()
	e.SetMeter(reg)
	e.Retry = enforcer.RetryPolicy{Sleep: func(time.Duration) {}}
	e.Journal().SetClock(stepClock())
	g, err := NewGroup(n, e.Journal(), Config{
		Replicas: []string{"rep-a", "rep-b", "rep-c"},
		Key:      e.JournalKey(),
		Auth:     auth,
		Injector: inj,
		Meter:    reg,
	})
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	e.SetTarget(g)
	return n, e, g, reg
}

func mustExportJ(t *testing.T, j *journal.Journal) []byte {
	t.Helper()
	b, err := j.Export()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	return b
}

func TestQuorumCommitMirrorsBitIdentically(t *testing.T) {
	n, e, g, _ := rig(t, nil, nil)
	if _, err := e.Commit(n, []config.Change{benignChange(15, 443)}, aclSpec()); err != nil {
		t.Fatalf("commit: %v", err)
	}
	coord := mustExportJ(t, e.Journal())
	want := fingerprint(n)
	for _, r := range g.Replicas() {
		if r.State() != Live {
			t.Fatalf("replica %s not live after clean commit: %s", r.Name, r.State())
		}
		if got := mustExportJ(t, r.Journal()); !bytes.Equal(got, coord) {
			t.Fatalf("replica %s journal differs from coordinator", r.Name)
		}
		if fingerprint(r.Net()) != want {
			t.Fatalf("replica %s network differs from production", r.Name)
		}
	}
	// The replicated happy path is byte-identical to the single-node
	// pipeline: a plain enforcer (no group) committing the same change
	// under the same clock produces the exact same journal bytes.
	solo := prod()
	se := newEnforcer(solo)
	se.Journal().SetClock(stepClock())
	se.Retry = enforcer.RetryPolicy{Sleep: func(time.Duration) {}}
	if _, err := se.Commit(solo, []config.Change{benignChange(15, 443)}, aclSpec()); err != nil {
		t.Fatalf("solo commit: %v", err)
	}
	if !bytes.Equal(mustExportJ(t, se.Journal()), coord) {
		t.Fatal("replicated happy-path journal differs from single-node pipeline")
	}
	if fingerprint(solo) != want {
		t.Fatal("replicated happy-path production differs from single-node pipeline")
	}
}

// stepClock is a deterministic journal clock: epoch + n seconds per append.
func stepClock() func() time.Time {
	n := 0
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Second)
	}
}

func TestPartitionedReplicaDropsOutAndHeals(t *testing.T) {
	inj := faultinject.New(faultinject.Plan{Rules: []faultinject.Rule{
		faultinject.PartitionRule("coord", "rep-b"),
	}})
	n, e, g, reg := rig(t, inj, nil)
	if _, err := e.Commit(n, []config.Change{benignChange(15, 443)}, aclSpec()); err != nil {
		t.Fatalf("commit with one partitioned replica: %v", err)
	}
	if got := g.LiveNames(); len(got) != 2 {
		t.Fatalf("live replicas = %v, want 2", got)
	}
	if g.Replica("rep-b").State() != Lagging {
		t.Fatalf("rep-b state = %s, want lagging", g.Replica("rep-b").State())
	}
	// Heal the partition, audit: the laggard is brought back by state
	// transfer and ends bit-identical.
	g.SetInjector(nil)
	rep := g.CrossAudit()
	if !rep.Conclusive {
		t.Fatal("audit inconclusive with healed partition")
	}
	if len(rep.NewlyQuarantined) != 0 {
		t.Fatalf("honest laggard quarantined: %v", rep.NewlyQuarantined)
	}
	if len(rep.Healed) != 1 || rep.Healed[0] != "rep-b" {
		t.Fatalf("healed = %v, want [rep-b]", rep.Healed)
	}
	coord := mustExportJ(t, e.Journal())
	if got := mustExportJ(t, g.Replica("rep-b").Journal()); !bytes.Equal(got, coord) {
		t.Fatal("healed replica journal differs from coordinator")
	}
	if fingerprint(g.Replica("rep-b").Net()) != fingerprint(n) {
		t.Fatal("healed replica network differs from production")
	}
	if v := reg.CounterValue("heimdall_replica_heals_total", telemetry.L("replica", "rep-b")); v != 1 {
		t.Fatalf("heals_total = %v, want 1", v)
	}
}

func TestQuorumLossAbortsPrePush(t *testing.T) {
	inj := faultinject.New(faultinject.Plan{Rules: []faultinject.Rule{
		faultinject.PartitionRule("coord", "rep-a"),
		faultinject.PartitionRule("coord", "rep-b"),
	}})
	n, e, g, reg := rig(t, inj, nil)
	before := fingerprint(n)
	_, err := e.Commit(n, []config.Change{benignChange(15, 443)}, aclSpec())
	if err == nil {
		t.Fatal("commit with quorum lost should fail")
	}
	if before != fingerprint(n) {
		t.Fatal("aborted commit mutated production")
	}
	// Coordinator chain: intent + rolled-back, no applied records.
	recs := e.Journal().Records()
	if len(recs) != 2 || recs[0].Kind != journal.KindIntent || recs[1].Kind != journal.KindRolledBack {
		t.Fatalf("coordinator chain = %+v, want intent+rolled-back", kinds(recs))
	}
	// The surviving replica holds the identical aborted chain.
	coord := mustExportJ(t, e.Journal())
	if got := mustExportJ(t, g.Replica("rep-c").Journal()); !bytes.Equal(got, coord) {
		t.Fatal("surviving replica chain differs after abort")
	}
	if v := reg.CounterValue("heimdall_replica_quorum_aborts_total"); v != 1 {
		t.Fatalf("quorum_aborts_total = %v, want 1", v)
	}
}

func TestQuorumLossMidPushRollsBackEverywhere(t *testing.T) {
	// Replicas reachable at propose, lost at the apply message.
	inj := faultinject.New(faultinject.Plan{Rules: []faultinject.Rule{
		{Partition: [2]string{"coord", "rep-a"}, Op: "apply", Outage: true},
		{Partition: [2]string{"coord", "rep-b"}, Op: "apply", Outage: true},
	}})
	n, e, g, _ := rig(t, inj, nil)
	before := fingerprint(n)
	_, err := e.Commit(n, []config.Change{benignChange(15, 443)}, aclSpec())
	if err == nil {
		t.Fatal("commit losing quorum mid-push should fail")
	}
	if before != fingerprint(n) {
		t.Fatal("production not rolled back")
	}
	// Survivor mirrors the full aborted chain (intent, applied, rolled-back).
	coord := mustExportJ(t, e.Journal())
	if got := mustExportJ(t, g.Replica("rep-c").Journal()); !bytes.Equal(got, coord) {
		t.Fatal("surviving replica chain differs after mid-push rollback")
	}
	if fingerprint(g.Replica("rep-c").Net()) != before {
		t.Fatal("surviving replica network not rolled back")
	}
	// Laggards heal back to the same state.
	g.SetInjector(nil)
	rep := g.CrossAudit()
	if len(rep.Healed) != 2 {
		t.Fatalf("healed = %v, want 2 replicas", rep.Healed)
	}
	for _, name := range []string{"rep-a", "rep-b"} {
		if got := mustExportJ(t, g.Replica(name).Journal()); !bytes.Equal(got, coord) {
			t.Fatalf("healed %s chain differs", name)
		}
	}
}

func kinds(recs []journal.Record) []journal.Kind {
	out := make([]journal.Kind, len(recs))
	for i, r := range recs {
		out[i] = r.Kind
	}
	return out
}

func TestByzantineLiesDetectedAndQuarantined(t *testing.T) {
	cases := []struct {
		lie     Lie
		verdict string
	}{
		{LieForge, VerdictForged},
		{LieTruncate, VerdictTruncated},
		{LieEquivocate, VerdictEquivocated},
	}
	for _, tc := range cases {
		t.Run(tc.lie.String(), func(t *testing.T) {
			n, e, g, reg := rig(t, nil, nil)
			if _, err := e.Commit(n, []config.Change{benignChange(15, 443)}, aclSpec()); err != nil {
				t.Fatalf("commit: %v", err)
			}
			g.MakeByzantine("rep-b", tc.lie)
			rep := g.CrossAudit()
			if !rep.Conclusive {
				t.Fatal("audit inconclusive")
			}
			if got := rep.Verdicts["rep-b"]; got != tc.verdict {
				t.Fatalf("verdict for liar = %q, want %q", got, tc.verdict)
			}
			if g.Replica("rep-b").State() != Quarantined {
				t.Fatal("liar not quarantined")
			}
			for _, honest := range []string{"rep-a", "rep-c"} {
				if got := rep.Verdicts[honest]; got != VerdictOK {
					t.Fatalf("honest %s verdict = %q, want ok (no false positive)", honest, got)
				}
			}
			if v := reg.CounterValue("heimdall_replica_byzantine_detected_total",
				telemetry.L("verdict", tc.verdict)); v != 1 {
				t.Fatalf("byzantine_detected_total = %v, want 1", v)
			}
			// Audits are idempotent: a second round adds no new verdicts.
			rep2 := g.CrossAudit()
			if len(rep2.NewlyQuarantined) != 0 {
				t.Fatalf("second audit re-quarantined: %v", rep2.NewlyQuarantined)
			}
		})
	}
}

func TestNoFalsePositivesOnHonestGroup(t *testing.T) {
	n, e, g, reg := rig(t, nil, nil)
	for i := 0; i < 3; i++ {
		if _, err := e.Commit(n, []config.Change{benignChange(15+i, 1000+i)}, aclSpec()); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	rep := g.CrossAudit()
	if !rep.Conclusive || len(rep.NewlyQuarantined) != 0 || len(rep.Healed) != 0 {
		t.Fatalf("honest audit not clean: %+v", rep)
	}
	if v := reg.CounterValue("heimdall_replica_byzantine_detected_total"); v != 0 {
		t.Fatalf("byzantine_detected_total = %v on honest group", v)
	}
}

func TestReplicasVetoUnauthorizedHighRiskCommit(t *testing.T) {
	// The compromised-coordinator drill: the enforcer skips its own M-of-N
	// check (Auth unset), but every replica re-verifies approvals before
	// ACKing — the unauthorized high-risk push cannot reach quorum.
	auth := authz.NewPolicy(2, true)
	auth.Register("cust", authz.RoleCustomer, []byte("ck"))
	auth.Register("msp", authz.RoleMSP, []byte("mk"))
	n, e, g, _ := rig(t, nil, auth)
	before := fingerprint(n)
	_, err := e.Commit(n, []config.Change{benignChange(15, 443)}, aclSpec())
	if err == nil {
		t.Fatal("unauthorized high-risk commit reached quorum")
	}
	if before != fingerprint(n) {
		t.Fatal("vetoed commit mutated production")
	}
	// All replicas NACKed: chain shows the aborted attempt only on the
	// coordinator (replicas refused the intent and sit out until healed).
	for _, r := range g.Replicas() {
		if r.State() != Lagging {
			t.Fatalf("replica %s = %s, want lagging after NACK", r.Name, r.State())
		}
	}

	// With approvals from both parties, the same change commits and the
	// approvals are recorded in every intent copy.
	g.SetInjector(nil)
	if rep := g.CrossAudit(); len(rep.Healed) != 3 {
		t.Fatalf("healed = %v, want all 3", rep.Healed)
	}
	e.Auth = auth
	changes := []config.Change{benignChange(15, 443)}
	ordered := enforcer.Schedule(changes)
	approvals := []journal.Approval{
		authz.NewSigner("cust", authz.RoleCustomer, []byte("ck")).Approve("T1", ordered),
		authz.NewSigner("msp", authz.RoleMSP, []byte("mk")).Approve("T1", ordered),
	}
	if _, err := e.CommitApproved(n, changes, aclSpec(), approvals); err != nil {
		t.Fatalf("approved commit: %v", err)
	}
	coord := mustExportJ(t, e.Journal())
	for _, r := range g.Replicas() {
		if got := mustExportJ(t, r.Journal()); !bytes.Equal(got, coord) {
			t.Fatalf("replica %s journal differs after approved commit", r.Name)
		}
	}
	// The intent record carries the approvals.
	recs := e.Journal().Records()
	var intent *journal.Record
	for i := range recs {
		if recs[i].Kind == journal.KindIntent && recs[i].Commit == "T1#2" {
			intent = &recs[i]
		}
	}
	if intent == nil || len(intent.Approvals) != 2 {
		t.Fatalf("intent approvals not journaled: %+v", intent)
	}
}
