package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", L("op", "exec"))
	c.Inc()
	c.Add(2.5)
	c.Add(-3) // ignored: counters never decrease
	if v := r.CounterValue("requests_total", L("op", "exec")); v != 3.5 {
		t.Fatalf("counter = %v, want 3.5", v)
	}
	// Label order must not matter.
	r.Counter("multi", L("a", "1"), L("b", "2")).Inc()
	r.Counter("multi", L("b", "2"), L("a", "1")).Inc()
	if v := r.CounterValue("multi", L("a", "1"), L("b", "2")); v != 2 {
		t.Fatalf("label-order-insensitive counter = %v, want 2", v)
	}
	// Absent series read as zero.
	if v := r.CounterValue("requests_total", L("op", "nope")); v != 0 {
		t.Fatalf("absent series = %v", v)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("chain_length")
	g.Set(10)
	g.Add(-3)
	if v := r.GaugeValue("chain_length"); v != 7 {
		t.Fatalf("gauge = %v, want 7", v)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5) // lands in +Inf
	h.ObserveDuration(20 * time.Millisecond)
	if n := r.HistogramCount("latency_seconds"); n != 5 {
		t.Fatalf("count = %d, want 5", n)
	}
	want := 0.005 + 0.05 + 0.5 + 5 + 0.02
	if s := r.HistogramSum("latency_seconds"); math.Abs(s-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", s, want)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on type mismatch")
		}
	}()
	r.Gauge("x")
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("heimdall_requests_total", L("op", "exec")).Add(3)
	r.Counter("heimdall_requests_total", L("op", "login")).Inc()
	r.Gauge("heimdall_chain_length").Set(12)
	h := r.Histogram("heimdall_exec_seconds", []float64{0.01, 1})
	h.Observe(0.001)
	h.Observe(0.5)
	h.Observe(7)

	dump := r.Dump()
	for _, want := range []string{
		"# TYPE heimdall_chain_length gauge\n",
		"heimdall_chain_length 12\n",
		"# TYPE heimdall_exec_seconds histogram\n",
		`heimdall_exec_seconds_bucket{le="0.01"} 1` + "\n",
		`heimdall_exec_seconds_bucket{le="1"} 2` + "\n",
		`heimdall_exec_seconds_bucket{le="+Inf"} 3` + "\n",
		"heimdall_exec_seconds_sum 7.501\n",
		"heimdall_exec_seconds_count 3\n",
		"# TYPE heimdall_requests_total counter\n",
		`heimdall_requests_total{op="exec"} 3` + "\n",
		`heimdall_requests_total{op="login"} 1` + "\n",
	} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}
	// Families are sorted by name.
	if strings.Index(dump, "heimdall_chain_length") > strings.Index(dump, "heimdall_requests_total") {
		t.Fatalf("families not sorted:\n%s", dump)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", L("detail", "say \"hi\"\nback\\slash")).Inc()
	dump := r.Dump()
	want := `esc_total{detail="say \"hi\"\nback\\slash"} 1`
	if !strings.Contains(dump, want) {
		t.Fatalf("dump = %q, want to contain %q", dump, want)
	}
}

// TestConcurrentRegistry hammers one registry from many goroutines; run
// under -race it also proves the update paths are data-race free.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Shared series and per-worker series, fetched on the hot
				// path each iteration (the instrument lookup is part of
				// what must be safe).
				r.Counter("shared_total").Inc()
				r.Counter("per_worker_total", L("w", string(rune('a'+w)))).Inc()
				r.Gauge("last_i").Set(float64(i))
				r.Histogram("obs_seconds", LatencyBuckets).Observe(float64(i) * 1e-6)
			}
		}(w)
	}
	wg.Wait()
	if v := r.CounterValue("shared_total"); v != workers*perWorker {
		t.Fatalf("shared counter = %v, want %d", v, workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		if v := r.CounterValue("per_worker_total", L("w", string(rune('a'+w)))); v != perWorker {
			t.Fatalf("worker %d counter = %v, want %d", w, v, perWorker)
		}
	}
	if n := r.HistogramCount("obs_seconds"); n != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", n, workers*perWorker)
	}
}

func TestNopMeterDoesNothing(t *testing.T) {
	m := Nop()
	m.Counter("x", L("a", "b")).Inc()
	m.Gauge("y").Set(3)
	m.Histogram("z", LatencyBuckets).Observe(1)
	// Nop must not be an Exposer: the RMM metrics op uses that to detect
	// that telemetry is disabled.
	if _, ok := m.(Exposer); ok {
		t.Fatal("Nop meter must not expose metrics")
	}
}

// The hot-path cost of one counter update, including the series lookup.
func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	b.Run("lookup+inc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.Counter("bench_total", L("op", "exec")).Inc()
		}
	})
	b.Run("hoisted", func(b *testing.B) {
		c := r.Counter("bench2_total")
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("nop", func(b *testing.B) {
		m := Nop()
		for i := 0; i < b.N; i++ {
			m.Counter("bench_total", L("op", "exec")).Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", LatencyBuckets)
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}
