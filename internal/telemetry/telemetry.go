// Package telemetry is Heimdall's observability subsystem: a
// dependency-free metrics registry (counters, gauges, fixed-bucket
// histograms with Prometheus text exposition) and a span-based tracer
// whose pluggable clock lets the virtual latency model drive
// deterministic span durations.
//
// Every instrumented component accepts a Meter and defaults to Nop(),
// so zero-config callers pay (almost) nothing and need no wiring: the
// no-op instruments are method calls on empty structs that the compiler
// can inline away. A deployment that wants metrics passes a *Registry
// (which implements Meter) through core.Options, rmm.Server.SetTelemetry
// or twin.Config, and dumps it with Registry.Dump / WritePrometheus —
// surfaced to operators as the `heimdallctl metrics` subcommand and the
// RMM protocol's `metrics` op.
//
// The tracer complements the audit trail (paper §3, Challenge 3): spans
// carry the same ticket/technician/device attributes as audit entries,
// so an exported span timeline can be joined against the tamper-evident
// trail to reconstruct where a mediated command spent its time.
package telemetry

import "time"

// Label is one key=value dimension of a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric.
type Counter interface {
	// Inc adds 1.
	Inc()
	// Add adds v; negative values are ignored (counters never decrease).
	Add(v float64)
}

// Gauge is a metric that can go up and down.
type Gauge interface {
	Set(v float64)
	Add(v float64)
}

// Histogram accumulates observations into fixed buckets.
type Histogram interface {
	Observe(v float64)
	// ObserveDuration records d in seconds (the Prometheus base unit).
	ObserveDuration(d time.Duration)
}

// Meter hands out instruments. Implementations must be safe for
// concurrent use; the same (name, labels) always yields the same series.
type Meter interface {
	Counter(name string, labels ...Label) Counter
	Gauge(name string, labels ...Label) Gauge
	Histogram(name string, buckets []float64, labels ...Label) Histogram
}

// Exposer is implemented by meters that can render their state as
// Prometheus text (the *Registry). The RMM server's `metrics` op probes
// its Meter for this interface.
type Exposer interface {
	Dump() string
}

// LatencyBuckets spans the emulator's microsecond command costs up to
// human-scale seconds; used by every *_seconds histogram in Heimdall.
var LatencyBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10,
}

// Nop returns the shared no-op Meter: every instrument it hands out
// discards all updates. This is the default everywhere a Meter can be
// wired, so uninstrumented deployments and tests pay no cost.
func Nop() Meter { return nopMeter{} }

type nopMeter struct{}

type nopInstrument struct{}

func (nopMeter) Counter(string, ...Label) Counter                { return nopInstrument{} }
func (nopMeter) Gauge(string, ...Label) Gauge                    { return nopInstrument{} }
func (nopMeter) Histogram(string, []float64, ...Label) Histogram { return nopInstrument{} }

func (nopInstrument) Inc()                          {}
func (nopInstrument) Add(float64)                   {}
func (nopInstrument) Set(float64)                   {}
func (nopInstrument) Observe(float64)               {}
func (nopInstrument) ObserveDuration(time.Duration) {}
