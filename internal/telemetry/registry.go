package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a concurrent metrics registry implementing Meter. Series
// values are lock-free atomics; the maps resolving (name, labels) to a
// series are guarded by an RWMutex whose read path is the hot path, so
// per-update overhead stays in the tens of nanoseconds (see the
// package benchmarks).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type family struct {
	name    string
	typ     string    // "counter", "gauge" or "histogram"
	buckets []float64 // histogram upper bounds, sorted, without +Inf
	mu      sync.RWMutex
	series  map[string]*series
}

// series is one labelled time series. For counters and gauges the value
// lives in bits (float64 bits, CAS-updated); histograms use the
// per-bucket counts plus sumBits/count.
type series struct {
	labels  []Label
	bits    atomic.Uint64
	counts  []atomic.Uint64 // len(buckets)+1, last is +Inf
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func (s *series) addFloat(v float64) {
	for {
		old := s.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (s *series) observe(buckets []float64, v float64) {
	i := sort.SearchFloat64s(buckets, v) // first bucket with upper bound >= v
	s.counts[i].Add(1)
	s.count.Add(1)
	for {
		old := s.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

type counter struct{ s *series }

func (c counter) Inc() { c.s.addFloat(1) }
func (c counter) Add(v float64) {
	if v > 0 {
		c.s.addFloat(v)
	}
}

type gauge struct{ s *series }

func (g gauge) Set(v float64) { g.s.bits.Store(math.Float64bits(v)) }
func (g gauge) Add(v float64) { g.s.addFloat(v) }

type histogram struct {
	s       *series
	buckets []float64
}

func (h histogram) Observe(v float64)               { h.s.observe(h.buckets, v) }
func (h histogram) ObserveDuration(d time.Duration) { h.s.observe(h.buckets, d.Seconds()) }

// Counter implements Meter.
func (r *Registry) Counter(name string, labels ...Label) Counter {
	return counter{r.series(name, "counter", nil, labels)}
}

// Gauge implements Meter.
func (r *Registry) Gauge(name string, labels ...Label) Gauge {
	return gauge{r.series(name, "gauge", nil, labels)}
}

// Histogram implements Meter. The buckets are upper bounds in ascending
// order (+Inf is implicit); every call for the same name must pass the
// same buckets.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) Histogram {
	s := r.series(name, "histogram", buckets, labels)
	return histogram{s: s, buckets: r.family(name).buckets}
}

func (r *Registry) family(name string) *family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.families[name]
}

func (r *Registry) series(name, typ string, buckets []float64, labels []Label) *series {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{name: name, typ: typ, series: make(map[string]*series)}
			if typ == "histogram" {
				f.buckets = append([]float64(nil), buckets...)
				sort.Float64s(f.buckets)
			}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}

	key := labelKey(labels)
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s == nil {
		s = &series{labels: sortedLabels(labels)}
		if typ == "histogram" {
			s.counts = make([]atomic.Uint64, len(f.buckets)+1)
		}
		f.series[key] = s
	}
	return s
}

func sortedLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := sortedLabels(labels)
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Key)
		b.WriteByte(0)
		b.WriteString(l.Value)
		b.WriteByte(0)
	}
	return b.String()
}

// ── Programmatic reads (tests and assertions) ───────────────────────────

// CounterValue returns the current value of a counter series (0 when the
// series does not exist).
func (r *Registry) CounterValue(name string, labels ...Label) float64 {
	return r.seriesValue(name, labels)
}

// GaugeValue returns the current value of a gauge series.
func (r *Registry) GaugeValue(name string, labels ...Label) float64 {
	return r.seriesValue(name, labels)
}

func (r *Registry) seriesValue(name string, labels []Label) float64 {
	s := r.lookup(name, labels)
	if s == nil {
		return 0
	}
	return math.Float64frombits(s.bits.Load())
}

// HistogramCount returns the number of observations of a histogram series.
func (r *Registry) HistogramCount(name string, labels ...Label) uint64 {
	s := r.lookup(name, labels)
	if s == nil {
		return 0
	}
	return s.count.Load()
}

// HistogramSum returns the sum of observations of a histogram series.
func (r *Registry) HistogramSum(name string, labels ...Label) float64 {
	s := r.lookup(name, labels)
	if s == nil {
		return 0
	}
	return math.Float64frombits(s.sumBits.Load())
}

func (r *Registry) lookup(name string, labels []Label) *series {
	f := r.family(name)
	if f == nil {
		return nil
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.series[labelKey(labels)]
}

// ── Prometheus text exposition ──────────────────────────────────────────

// WritePrometheus renders every series in the Prometheus text format
// (families sorted by name, series sorted by label key).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

// Dump returns the Prometheus text exposition as a string, implementing
// the Exposer interface.
func (r *Registry) Dump() string {
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	return b.String()
}

func (f *family) write(w io.Writer) error {
	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sers := make([]*series, 0, len(keys))
	for _, k := range keys {
		sers = append(sers, f.series[k])
	}
	f.mu.RUnlock()

	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
		return err
	}
	for _, s := range sers {
		if f.typ == "histogram" {
			if err := f.writeHistogram(w, s); err != nil {
				return err
			}
			continue
		}
		v := math.Float64frombits(s.bits.Load())
		if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(s.labels), formatFloat(v)); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeHistogram(w io.Writer, s *series) error {
	withLe := func(le string) []Label {
		ls := make([]Label, len(s.labels)+1)
		copy(ls, s.labels)
		ls[len(s.labels)] = Label{"le", le}
		return ls
	}
	cum := uint64(0)
	for i, ub := range f.buckets {
		cum += s.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, renderLabels(withLe(formatFloat(ub))), cum); err != nil {
			return err
		}
	}
	cum += s.counts[len(f.buckets)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		f.name, renderLabels(withLe("+Inf")), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		f.name, renderLabels(s.labels), formatFloat(math.Float64frombits(s.sumBits.Load()))); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, renderLabels(s.labels), s.count.Load())
	return err
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
