package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Clock is the tracer's time source. Production tracers use time.Now;
// experiments plug a VirtualClock so the internal/latency model drives
// deterministic span durations.
type Clock func() time.Time

// VirtualClock is a manually advanced time source, safe for concurrent
// use. It lets modeled wall-clock costs (the Figure 7 latency model)
// appear as span durations without sleeping.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock starts a virtual clock at the given instant.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now implements Clock (pass vc.Now to NewTracer).
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time.
func (c *VirtualClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

// Span is one timed operation. Spans in the same trace share TraceID;
// child spans carry their parent's SpanID. Attributes name the audit
// trail's correlation keys (ticket, technician, device) so a span
// timeline can be joined against audit entries.
type Span struct {
	TraceID  string            `json:"trace"`
	SpanID   string            `json:"span"`
	ParentID string            `json:"parent,omitempty"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	End      time.Time         `json:"end"`
	DurMS    float64           `json:"durationMs"`
	Attrs    map[string]string `json:"attrs,omitempty"`

	tr *Tracer
}

// Duration returns the span's measured duration.
func (s *Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// SetAttr records one attribute on the span.
func (s *Span) SetAttr(key, value string) *Span {
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]string)
	}
	s.Attrs[key] = value
	return s
}

// StartChild opens a child span in the same trace.
func (s *Span) StartChild(name string, attrs ...Label) *Span {
	return s.tr.start(s.TraceID, s.SpanID, name, attrs)
}

// Finish stamps the span's end time from the tracer's clock and files it
// for export. It returns the span for chaining.
func (s *Span) Finish() *Span {
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.End = s.tr.clock()
	s.DurMS = float64(s.End.Sub(s.Start)) / float64(time.Millisecond)
	s.tr.finished = append(s.tr.finished, s)
	return s
}

// Tracer creates and collects spans. IDs are sequential (not random) so
// exports are deterministic under a virtual clock.
type Tracer struct {
	mu       sync.Mutex
	clock    Clock
	nextID   int
	finished []*Span
}

// NewTracer returns a tracer reading time from the given clock
// (time.Now when nil).
func NewTracer(clock Clock) *Tracer {
	if clock == nil {
		clock = time.Now
	}
	return &Tracer{clock: clock}
}

// StartTrace opens a new root span (a fresh trace).
func (t *Tracer) StartTrace(name string, attrs ...Label) *Span {
	return t.start("", "", name, attrs)
}

func (t *Tracer) start(traceID, parentID, name string, attrs []Label) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	spanID := fmt.Sprintf("s%04d", t.nextID)
	if traceID == "" {
		traceID = "t" + spanID[1:]
	}
	s := &Span{
		TraceID:  traceID,
		SpanID:   spanID,
		ParentID: parentID,
		Name:     name,
		Start:    t.clock(),
		tr:       t,
	}
	for _, l := range attrs {
		if s.Attrs == nil {
			s.Attrs = make(map[string]string)
		}
		s.Attrs[l.Key] = l.Value
	}
	return s
}

// Finished returns the finished spans ordered by start time (then span
// ID, for spans sharing a start instant under a virtual clock).
func (t *Tracer) Finished() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]*Span(nil), t.finished...)
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].SpanID < out[j].SpanID
	})
	return out
}

// ExportJSONL writes one JSON object per finished span, in start order —
// the span schema documented in docs/TELEMETRY.md.
func (t *Tracer) ExportJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range t.Finished() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// ParseJSONL reads spans back from an ExportJSONL stream.
func ParseJSONL(data []byte) ([]*Span, error) {
	var out []*Span
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var s Span
		if err := dec.Decode(&s); err != nil {
			return nil, fmt.Errorf("telemetry: parsing span JSONL: %w", err)
		}
		out = append(out, &s)
	}
	return out, nil
}
