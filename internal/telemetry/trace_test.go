package telemetry

import (
	"bytes"
	"testing"
	"time"
)

var epoch = time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)

func TestVirtualClockSpans(t *testing.T) {
	clock := NewVirtualClock(epoch)
	tr := NewTracer(clock.Now)

	root := tr.StartTrace("resolve:vlan", L("ticket", "T-0001"), L("technician", "pilot"))
	connect := root.StartChild("connect")
	clock.Advance(2 * time.Second)
	connect.Finish()
	operate := root.StartChild("operate", L("device", "s1"))
	clock.Advance(9 * time.Second)
	operate.Finish()
	root.Finish()

	if d := connect.Duration(); d != 2*time.Second {
		t.Fatalf("connect duration = %s", d)
	}
	if d := operate.Duration(); d != 9*time.Second {
		t.Fatalf("operate duration = %s", d)
	}
	if d := root.Duration(); d != 11*time.Second {
		t.Fatalf("root duration = %s", d)
	}
	if connect.TraceID != root.TraceID || operate.TraceID != root.TraceID {
		t.Fatal("children left the trace")
	}
	if connect.ParentID != root.SpanID {
		t.Fatalf("connect parent = %q, want %q", connect.ParentID, root.SpanID)
	}
	if root.Attrs["ticket"] != "T-0001" || operate.Attrs["device"] != "s1" {
		t.Fatalf("attrs lost: %v %v", root.Attrs, operate.Attrs)
	}
}

func TestExportJSONLRoundTrip(t *testing.T) {
	clock := NewVirtualClock(epoch)
	tr := NewTracer(clock.Now)
	root := tr.StartTrace("issue", L("ticket", "T-0002"))
	step := root.StartChild("verify")
	clock.Advance(3 * time.Second)
	step.Finish()
	root.Finish()

	var buf bytes.Buffer
	if err := tr.ExportJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	spans, err := ParseJSONL(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Start order: both start at epoch, so span-ID order (root first).
	if spans[0].Name != "issue" || spans[1].Name != "verify" {
		t.Fatalf("order = %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[1].DurMS != 3000 {
		t.Fatalf("verify durationMs = %v", spans[1].DurMS)
	}
	if spans[0].Attrs["ticket"] != "T-0002" {
		t.Fatalf("attrs = %v", spans[0].Attrs)
	}
}

func TestUnfinishedSpansNotExported(t *testing.T) {
	tr := NewTracer(nil)
	tr.StartTrace("open-ended")
	done := tr.StartTrace("done").Finish()
	got := tr.Finished()
	if len(got) != 1 || got[0] != done {
		t.Fatalf("finished = %v", got)
	}
}

func TestDeterministicIDs(t *testing.T) {
	mk := func() []string {
		clock := NewVirtualClock(epoch)
		tr := NewTracer(clock.Now)
		a := tr.StartTrace("a")
		b := a.StartChild("b")
		b.Finish()
		a.Finish()
		var ids []string
		for _, s := range tr.Finished() {
			ids = append(ids, s.TraceID+"/"+s.SpanID)
		}
		return ids
	}
	first, second := mk(), mk()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("run 1 ids %v != run 2 ids %v", first, second)
		}
	}
}
