package verify

import (
	"fmt"

	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
)

// Probe is one protocol/port combination checked by DiffReachability.
type Probe struct {
	Proto netmodel.Protocol
	Port  uint16
}

// Delta is one host pair whose reachability flips between two snapshots —
// the "what does this change actually do to the network" summary the
// enforcer can show the admin alongside its accept/reject decision.
type Delta struct {
	Src, Dst string
	Probe    Probe
	// Before and After report delivery in the respective snapshots.
	Before, After bool
}

// String renders the delta ("h1 -> h3 tcp/22: unreachable => REACHABLE").
func (d Delta) String() string {
	svc := d.Probe.Proto.String()
	if d.Probe.Port != 0 {
		svc = fmt.Sprintf("%s/%d", d.Probe.Proto, d.Probe.Port)
	}
	state := func(ok bool) string {
		if ok {
			return "REACHABLE"
		}
		return "unreachable"
	}
	return fmt.Sprintf("%s -> %s %s: %s => %s", d.Src, d.Dst, svc, state(d.Before), state(d.After))
}

// DiffReachability probes every host pair in both snapshots and returns the
// pairs whose delivery verdict changes. Probes defaults to a single ICMP
// probe when empty. The host list comes from the "after" network so newly
// relevant endpoints are covered.
func DiffReachability(before, after *dataplane.Snapshot, n *netmodel.Network, probes []Probe) []Delta {
	if len(probes) == 0 {
		probes = []Probe{{Proto: netmodel.ICMP}}
	}
	hosts := n.Hosts()
	var out []Delta
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			for _, pr := range probes {
				b, errB := before.Reach(src, dst, pr.Proto, pr.Port)
				a, errA := after.Reach(src, dst, pr.Proto, pr.Port)
				if errB != nil || errA != nil {
					continue
				}
				if b.Delivered() != a.Delivered() {
					out = append(out, Delta{
						Src: src, Dst: dst, Probe: pr,
						Before: b.Delivered(), After: a.Delivered(),
					})
				}
			}
		}
	}
	return out
}
