// Package verify implements Heimdall's network policy verification: the
// policy types an enterprise states about its network (reachability,
// isolation, waypoint traversal), a checker that evaluates them against a
// computed dataplane snapshot, and counterexample traces for violations.
//
// The policy enforcer runs this checker over the twin network's output
// before any change is imported into the production network (paper §4.3).
package verify

import (
	"encoding/json"
	"fmt"
	"time"

	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
	"heimdall/internal/telemetry"
)

// Kind classifies a network policy.
type Kind int

const (
	// Reachability requires the flow to be delivered.
	Reachability Kind = iota
	// Isolation requires the flow NOT to be delivered.
	Isolation
	// Waypoint requires the flow to be delivered AND to traverse a named
	// device (e.g. a firewall).
	Waypoint
)

// String returns the lowercase kind name.
func (k Kind) String() string {
	switch k {
	case Reachability:
		return "reachability"
	case Isolation:
		return "isolation"
	case Waypoint:
		return "waypoint"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Policy is one verifiable statement about the network's behaviour.
// Src and Dst name hosts; the checker resolves their addresses from the
// snapshot under test.
type Policy struct {
	ID      string
	Kind    Kind
	Src     string
	Dst     string
	Proto   netmodel.Protocol
	DstPort uint16
	// Via is the waypoint device for Kind == Waypoint.
	Via string
}

// String renders the policy in config2spec-like syntax.
func (p Policy) String() string {
	svc := p.Proto.String()
	if p.DstPort != 0 {
		svc = fmt.Sprintf("%s/%d", p.Proto, p.DstPort)
	}
	switch p.Kind {
	case Reachability:
		return fmt.Sprintf("%s: reachable(%s -> %s, %s)", p.ID, p.Src, p.Dst, svc)
	case Isolation:
		return fmt.Sprintf("%s: isolated(%s -> %s, %s)", p.ID, p.Src, p.Dst, svc)
	case Waypoint:
		return fmt.Sprintf("%s: waypoint(%s -> %s, %s, via %s)", p.ID, p.Src, p.Dst, svc, p.Via)
	}
	return p.ID
}

// policyJSON is the Batfish-inspired JSON frontend format.
type policyJSON struct {
	ID      string `json:"id"`
	Kind    string `json:"kind"`
	Src     string `json:"src"`
	Dst     string `json:"dst"`
	Proto   string `json:"proto,omitempty"`
	DstPort uint16 `json:"dstPort,omitempty"`
	Via     string `json:"via,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (p Policy) MarshalJSON() ([]byte, error) {
	return json.Marshal(policyJSON{
		ID: p.ID, Kind: p.Kind.String(), Src: p.Src, Dst: p.Dst,
		Proto: p.Proto.String(), DstPort: p.DstPort, Via: p.Via,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Policy) UnmarshalJSON(data []byte) error {
	var j policyJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	var kind Kind
	switch j.Kind {
	case "reachability":
		kind = Reachability
	case "isolation":
		kind = Isolation
	case "waypoint":
		kind = Waypoint
	default:
		return fmt.Errorf("verify: unknown policy kind %q", j.Kind)
	}
	proto := netmodel.AnyProto
	if j.Proto != "" {
		var err error
		proto, err = netmodel.ParseProtocol(j.Proto)
		if err != nil {
			return err
		}
	}
	*p = Policy{ID: j.ID, Kind: kind, Src: j.Src, Dst: j.Dst, Proto: proto, DstPort: j.DstPort, Via: j.Via}
	return nil
}

// ParsePolicies decodes a JSON array of policies.
func ParsePolicies(data []byte) ([]Policy, error) {
	var out []Policy
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("verify: parsing policies: %w", err)
	}
	return out, nil
}

// MarshalPolicies encodes policies as indented JSON.
func MarshalPolicies(policies []Policy) ([]byte, error) {
	return json.MarshalIndent(policies, "", "  ")
}

// Violation is one failed policy with its counterexample trace.
type Violation struct {
	Policy Policy
	Trace  *dataplane.Trace
	Reason string
}

// String renders the violation with its evidence.
func (v Violation) String() string {
	s := fmt.Sprintf("VIOLATION %s: %s", v.Policy, v.Reason)
	if v.Trace != nil {
		s += " | " + v.Trace.String()
	}
	return s
}

// Result summarises one verification run.
type Result struct {
	Checked    int
	Violations []Violation
	Elapsed    time.Duration
}

// OK reports whether every policy held.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// Check evaluates every policy against the snapshot.
func Check(s *dataplane.Snapshot, policies []Policy) *Result {
	return CheckMetered(s, policies, nil)
}

// CheckMetered is Check with verifier telemetry: policies checked,
// counterexamples found, runs, and per-run latency land on the meter
// (nil means no instrumentation — the zero-config path stays free).
func CheckMetered(s *dataplane.Snapshot, policies []Policy, m telemetry.Meter) *Result {
	start := time.Now()
	res := &Result{Checked: len(policies)}
	for _, p := range policies {
		if v := CheckPolicy(s, p); v != nil {
			res.Violations = append(res.Violations, *v)
		}
	}
	res.Elapsed = time.Since(start)
	if m != nil {
		m.Counter("heimdall_verify_runs_total").Inc()
		m.Counter("heimdall_verify_policies_checked_total").Add(float64(res.Checked))
		m.Counter("heimdall_verify_counterexamples_total").Add(float64(len(res.Violations)))
		m.Histogram("heimdall_verify_run_seconds", telemetry.LatencyBuckets).
			ObserveDuration(res.Elapsed)
	}
	return res
}

// CheckPolicy evaluates one policy, returning nil when it holds and the
// violation (with counterexample) when it does not.
func CheckPolicy(s *dataplane.Snapshot, p Policy) *Violation {
	tr, err := s.Reach(p.Src, p.Dst, p.Proto, p.DstPort)
	if err != nil {
		return &Violation{Policy: p, Reason: err.Error()}
	}
	switch p.Kind {
	case Reachability:
		if !tr.Delivered() {
			return &Violation{Policy: p, Trace: tr, Reason: "flow not delivered"}
		}
	case Isolation:
		if tr.Delivered() {
			return &Violation{Policy: p, Trace: tr, Reason: "flow delivered but must be isolated"}
		}
	case Waypoint:
		if !tr.Delivered() {
			return &Violation{Policy: p, Trace: tr, Reason: "flow not delivered"}
		}
		if !tr.Traverses(p.Via) {
			return &Violation{Policy: p, Trace: tr, Reason: fmt.Sprintf("flow bypasses waypoint %s", p.Via)}
		}
	default:
		return &Violation{Policy: p, Reason: "unknown policy kind"}
	}
	return nil
}

// AffectedBy returns the subset of policies whose src->dst traffic traverses
// any of the named devices in the baseline snapshot. The enforcer uses this
// to verify only impacted policies when incremental verification is enabled.
func AffectedBy(s *dataplane.Snapshot, policies []Policy, devices map[string]bool) []Policy {
	var out []Policy
	for _, p := range policies {
		tr, err := s.Reach(p.Src, p.Dst, p.Proto, p.DstPort)
		if err != nil {
			out = append(out, p)
			continue
		}
		touched := false
		for _, h := range tr.Hops {
			if devices[h.Device] {
				touched = true
				break
			}
		}
		// Non-delivered flows could become delivered by changes anywhere;
		// isolation policies therefore always stay in scope.
		if touched || !tr.Delivered() || p.Kind == Isolation {
			out = append(out, p)
		}
	}
	return out
}
