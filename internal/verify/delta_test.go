package verify

import (
	"net/netip"
	"testing"

	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
)

func TestDiffReachabilityFindsFlips(t *testing.T) {
	before := twoHostNet()
	after := before.Clone()
	// Block h1 -> h2 in the "after" state.
	r1 := after.Device("r1")
	acl := r1.ACL("BLOCK", true)
	acl.InsertEntry(netmodel.ACLEntry{Seq: 10, Action: netmodel.Deny,
		Src: mustPfx("10.1.0.0/24")})
	acl.InsertEntry(netmodel.ACLEntry{Seq: 20, Action: netmodel.Permit})
	r1.Interface("Gi0/0").ACLIn = "BLOCK"

	deltas := DiffReachability(dataplane.Compute(before), dataplane.Compute(after), after, nil)
	if len(deltas) != 1 {
		t.Fatalf("deltas = %v", deltas)
	}
	d := deltas[0]
	if d.Src != "h1" || d.Dst != "h2" || !d.Before || d.After {
		t.Fatalf("delta = %+v", d)
	}
	if d.String() != "h1 -> h2 icmp: REACHABLE => unreachable" {
		t.Fatalf("String = %q", d.String())
	}
}

func TestDiffReachabilityIdentityIsEmpty(t *testing.T) {
	n := twoHostNet()
	snap := dataplane.Compute(n)
	if deltas := DiffReachability(snap, dataplane.Compute(n.Clone()), n, nil); len(deltas) != 0 {
		t.Fatalf("identity deltas = %v", deltas)
	}
}

func TestDiffReachabilityMultipleProbes(t *testing.T) {
	before := twoHostNet()
	after := before.Clone()
	// Block only tcp/80: the ICMP probe stays stable, the web probe flips.
	r1 := after.Device("r1")
	acl := r1.ACL("WEB", true)
	acl.InsertEntry(netmodel.ACLEntry{Seq: 10, Action: netmodel.Deny,
		Proto: netmodel.TCP, DstPort: 80})
	acl.InsertEntry(netmodel.ACLEntry{Seq: 20, Action: netmodel.Permit})
	r1.Interface("Gi0/0").ACLIn = "WEB"

	probes := []Probe{{Proto: netmodel.ICMP}, {Proto: netmodel.TCP, Port: 80}}
	deltas := DiffReachability(dataplane.Compute(before), dataplane.Compute(after), after, probes)
	if len(deltas) != 1 {
		t.Fatalf("deltas = %v", deltas)
	}
	if deltas[0].Probe.Port != 80 {
		t.Fatalf("wrong probe flipped: %+v", deltas[0])
	}
}

func mustPfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
