package verify

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"heimdall/internal/config"
)

// ChangeSetDigest returns a canonical content digest of a change set: two
// change sets digest equal exactly when they would apply the same
// operations with the same payloads in the same order. The enforcer's
// review cache and the service layer's request coalescing both key on it —
// two technicians replaying the same scripted ticket produce the same
// twin diff, so their reviews share one verification.
//
// The encoding is JSON over config.Change's exported payload (Go's
// encoder writes struct fields in declaration order and map keys sorted,
// so the bytes are deterministic for equal values), hashed with SHA-256.
func ChangeSetDigest(changes []config.Change) string {
	h := sha256.New()
	for i, c := range changes {
		b, err := json.Marshal(c)
		if err != nil {
			// config.Change holds only plain data (no channels, funcs or
			// cycles); Marshal cannot fail on it. Keep the digest total
			// anyway: fold the op identity in and move on.
			b = []byte(fmt.Sprintf("unencodable:%s:%s", c.Action(), c.Resource()))
		}
		fmt.Fprintf(h, "%d|", i)
		h.Write(b)
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}
