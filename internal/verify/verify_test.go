package verify

import (
	"net/netip"
	"strings"
	"testing"

	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
)

// twoHostNet: h1 - r1 - h2, with an ACL hook on r1 and a second router r2
// hanging off r1 as a potential waypoint bypass.
func twoHostNet() *netmodel.Network {
	n := netmodel.NewNetwork("v")
	r1 := n.AddDevice("r1", netmodel.Router)
	h1 := n.AddDevice("h1", netmodel.Host)
	h2 := n.AddDevice("h2", netmodel.Host)
	n.MustConnect("h1", "eth0", "r1", "Gi0/0")
	n.MustConnect("r1", "Gi0/1", "h2", "eth0")
	h1.Interface("eth0").Addr = netip.MustParsePrefix("10.1.0.10/24")
	h1.DefaultGateway = netip.MustParseAddr("10.1.0.1")
	r1.Interface("Gi0/0").Addr = netip.MustParsePrefix("10.1.0.1/24")
	r1.Interface("Gi0/1").Addr = netip.MustParsePrefix("10.2.0.1/24")
	h2.Interface("eth0").Addr = netip.MustParsePrefix("10.2.0.10/24")
	h2.DefaultGateway = netip.MustParseAddr("10.2.0.1")
	return n
}

func TestCheckReachabilityAndIsolation(t *testing.T) {
	n := twoHostNet()
	s := dataplane.Compute(n)
	policies := []Policy{
		{ID: "P1", Kind: Reachability, Src: "h1", Dst: "h2", Proto: netmodel.ICMP},
		{ID: "P2", Kind: Isolation, Src: "h2", Dst: "h1", Proto: netmodel.TCP, DstPort: 22},
	}
	res := Check(s, policies)
	if res.Checked != 2 {
		t.Fatalf("Checked = %d", res.Checked)
	}
	// P1 holds; P2 is violated (h2 can in fact reach h1).
	if len(res.Violations) != 1 || res.Violations[0].Policy.ID != "P2" {
		t.Fatalf("violations = %v", res.Violations)
	}
	if res.OK() {
		t.Fatal("Result.OK with violations")
	}
	if res.Violations[0].Trace == nil || !res.Violations[0].Trace.Delivered() {
		t.Fatal("isolation violation must carry a delivered counterexample")
	}
	if !strings.Contains(res.Violations[0].String(), "VIOLATION") {
		t.Fatal("violation string missing marker")
	}
}

func TestCheckReachabilityViolationCarriesTrace(t *testing.T) {
	n := twoHostNet()
	// Block h1->h2 with an ACL on r1.
	r1 := n.Device("r1")
	acl := r1.ACL("DENY-ALL", true)
	acl.InsertEntry(netmodel.ACLEntry{Seq: 10, Action: netmodel.Deny})
	r1.Interface("Gi0/0").ACLIn = "DENY-ALL"
	s := dataplane.Compute(n)

	v := CheckPolicy(s, Policy{ID: "P1", Kind: Reachability, Src: "h1", Dst: "h2", Proto: netmodel.ICMP})
	if v == nil {
		t.Fatal("expected violation")
	}
	if v.Trace.Disposition != dataplane.DropACL || v.Trace.Where != "r1" {
		t.Fatalf("counterexample = %s", v.Trace)
	}
}

func TestCheckWaypoint(t *testing.T) {
	n := twoHostNet()
	s := dataplane.Compute(n)
	if v := CheckPolicy(s, Policy{ID: "W1", Kind: Waypoint, Src: "h1", Dst: "h2", Proto: netmodel.ICMP, Via: "r1"}); v != nil {
		t.Fatalf("waypoint through r1 should hold: %v", v)
	}
	v := CheckPolicy(s, Policy{ID: "W2", Kind: Waypoint, Src: "h1", Dst: "h2", Proto: netmodel.ICMP, Via: "fw9"})
	if v == nil || !strings.Contains(v.Reason, "bypasses") {
		t.Fatalf("waypoint via unknown device should be violated: %v", v)
	}
}

func TestCheckUnknownHost(t *testing.T) {
	s := dataplane.Compute(twoHostNet())
	v := CheckPolicy(s, Policy{ID: "X", Kind: Reachability, Src: "ghost", Dst: "h2"})
	if v == nil {
		t.Fatal("unknown host should be a violation")
	}
}

func TestPolicyJSONRoundTrip(t *testing.T) {
	in := []Policy{
		{ID: "P1", Kind: Reachability, Src: "h1", Dst: "h2", Proto: netmodel.TCP, DstPort: 80},
		{ID: "P2", Kind: Isolation, Src: "h1", Dst: "h3", Proto: netmodel.ICMP},
		{ID: "P3", Kind: Waypoint, Src: "h1", Dst: "h2", Via: "fw1", Proto: netmodel.AnyProto},
	}
	data, err := MarshalPolicies(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParsePolicies(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("round trip count = %d", len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("policy %d: %+v != %+v", i, in[i], out[i])
		}
	}
	if _, err := ParsePolicies([]byte(`[{"id":"x","kind":"nonsense","src":"a","dst":"b"}]`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := ParsePolicies([]byte(`{`)); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestPolicyString(t *testing.T) {
	p := Policy{ID: "P9", Kind: Reachability, Src: "a", Dst: "b", Proto: netmodel.TCP, DstPort: 443}
	if got := p.String(); got != "P9: reachable(a -> b, tcp/443)" {
		t.Fatalf("String = %q", got)
	}
	w := Policy{ID: "W1", Kind: Waypoint, Src: "a", Dst: "b", Proto: netmodel.ICMP, Via: "fw"}
	if !strings.Contains(w.String(), "via fw") {
		t.Fatalf("String = %q", w.String())
	}
}

func TestAffectedBy(t *testing.T) {
	n := twoHostNet()
	s := dataplane.Compute(n)
	policies := []Policy{
		{ID: "P1", Kind: Reachability, Src: "h1", Dst: "h2", Proto: netmodel.ICMP},
		{ID: "P2", Kind: Isolation, Src: "h2", Dst: "h1", Proto: netmodel.TCP, DstPort: 22},
	}
	// Changes on r1 affect P1 (its path crosses r1) and P2 (isolation
	// always stays in scope).
	got := AffectedBy(s, policies, map[string]bool{"r1": true})
	if len(got) != 2 {
		t.Fatalf("AffectedBy(r1) = %v", got)
	}
	// Changes on an unrelated device: only the isolation policy remains.
	got = AffectedBy(s, policies, map[string]bool{"elsewhere": true})
	if len(got) != 1 || got[0].ID != "P2" {
		t.Fatalf("AffectedBy(elsewhere) = %v", got)
	}
}
