package ticket

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
	"heimdall/internal/privilege"
)

func newSystem() *System {
	s := NewSystem()
	s.SetClock(func() time.Time { return time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC) })
	return s
}

func TestLifecycle(t *testing.T) {
	s := newSystem()
	tk := s.Create(Ticket{Summary: "h1 cannot reach h2", Kind: privilege.TaskConnectivity,
		SrcHost: "h1", DstHost: "h2", CreatedBy: "netadmin"})
	if tk.ID != "T-0001" || tk.Status != Open {
		t.Fatalf("created = %+v", tk)
	}
	if err := s.Assign(tk.ID, "alice"); err != nil {
		t.Fatal(err)
	}
	if got := s.Get(tk.ID); got.Status != InProgress || got.Assignee != "alice" {
		t.Fatalf("after assign = %+v", got)
	}
	if err := s.AddNote(tk.ID, "root cause: ACL on r2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Transition(tk.ID, Resolved); err != nil {
		t.Fatal(err)
	}
	if err := s.Transition(tk.ID, Closed); err != nil {
		t.Fatal(err)
	}
	// Closed is terminal.
	if err := s.Transition(tk.ID, InProgress); err == nil {
		t.Fatal("transition out of closed accepted")
	}
	// A second ticket gets the next ID.
	tk2 := s.Create(Ticket{Summary: "other"})
	if tk2.ID != "T-0002" {
		t.Fatalf("second ID = %s", tk2.ID)
	}
	if got := s.List(); len(got) != 2 || got[0].ID != "T-0001" {
		t.Fatalf("List = %+v", got)
	}
}

func TestInvalidTransitionsAndMissing(t *testing.T) {
	s := newSystem()
	tk := s.Create(Ticket{Summary: "x"})
	if err := s.Transition(tk.ID, Resolved); err == nil {
		t.Fatal("open -> resolved accepted")
	}
	if err := s.Transition("T-9999", InProgress); err == nil {
		t.Fatal("missing ticket accepted")
	}
	if err := s.Assign("T-9999", "a"); err == nil {
		t.Fatal("assign to missing ticket accepted")
	}
	if err := s.AddNote("T-9999", "n"); err == nil {
		t.Fatal("note on missing ticket accepted")
	}
	if s.Get("T-9999") != nil {
		t.Fatal("Get of missing ticket non-nil")
	}
}

func TestRejectedFlow(t *testing.T) {
	s := newSystem()
	tk := s.Create(Ticket{Summary: "x"})
	if err := s.Assign(tk.ID, "mallory"); err != nil {
		t.Fatal(err)
	}
	if err := s.Transition(tk.ID, Rejected); err != nil {
		t.Fatal(err)
	}
	// A rejected ticket can be retried.
	if err := s.Transition(tk.ID, InProgress); err != nil {
		t.Fatal(err)
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{
		Open: "open", InProgress: "in-progress", Resolved: "resolved",
		Rejected: "rejected", Closed: "closed",
	} {
		if st.String() != want {
			t.Errorf("%d = %q", int(st), st.String())
		}
	}
}

// faultNet builds a network where every fault type is injectable and its
// prepared fix genuinely restores connectivity.
func faultNet() *netmodel.Network {
	n := netmodel.NewNetwork("f")
	r1 := n.AddDevice("r1", netmodel.Router)
	r2 := n.AddDevice("r2", netmodel.Router)
	h1 := n.AddDevice("h1", netmodel.Host)
	h2 := n.AddDevice("h2", netmodel.Host)
	n.MustConnect("h1", "eth0", "r1", "Gi0/0")
	n.MustConnect("r1", "Gi0/1", "r2", "Gi0/0")
	n.MustConnect("r2", "Gi0/1", "h2", "eth0")
	h1.Interface("eth0").Addr = netip.MustParsePrefix("10.1.0.10/24")
	h1.DefaultGateway = netip.MustParseAddr("10.1.0.1")
	r1.Interface("Gi0/0").Addr = netip.MustParsePrefix("10.1.0.1/24")
	r1.Interface("Gi0/1").Addr = netip.MustParsePrefix("10.0.12.1/30")
	r2.Interface("Gi0/0").Addr = netip.MustParsePrefix("10.0.12.2/30")
	r2.Interface("Gi0/1").Addr = netip.MustParsePrefix("10.2.0.1/24")
	h2.Interface("eth0").Addr = netip.MustParsePrefix("10.2.0.10/24")
	h2.DefaultGateway = netip.MustParseAddr("10.2.0.1")
	for _, r := range []*netmodel.Device{r1, r2} {
		r.OSPF = &netmodel.OSPFProcess{ProcessID: 1,
			Networks: []netmodel.OSPFNetwork{{Prefix: netip.MustParsePrefix("10.0.0.0/8"), Area: 0}},
			Passive:  map[string]bool{}}
	}
	acl := r2.ACL("EDGE", true)
	acl.InsertEntry(netmodel.ACLEntry{Seq: 100, Action: netmodel.Permit})
	r2.Interface("Gi0/0").ACLIn = "EDGE"
	return n
}

func reaches(n *netmodel.Network, proto netmodel.Protocol, port uint16) bool {
	tr, err := dataplane.Compute(n).Reach("h1", "h2", proto, port)
	return err == nil && tr.Delivered()
}

func TestFaultsBreakAndFixesRestore(t *testing.T) {
	faults := []struct {
		fault Fault
		proto netmodel.Protocol
		port  uint16
	}{
		{InterfaceDown("r2", "Gi0/0"), netmodel.ICMP, 0},
		{ACLDeny("r2", "EDGE", 50, netip.MustParsePrefix("10.2.0.10/32"), 80), netmodel.TCP, 80},
		{OSPFPassive("r1", "Gi0/1"), netmodel.ICMP, 0},
	}
	for _, tc := range faults {
		n := faultNet()
		if !reaches(n, tc.proto, tc.port) {
			t.Fatalf("%s: baseline broken", tc.fault.Name)
		}
		if err := tc.fault.Inject(n); err != nil {
			t.Fatalf("%s: inject: %v", tc.fault.Name, err)
		}
		if reaches(n, tc.proto, tc.port) {
			t.Fatalf("%s: fault did not break connectivity", tc.fault.Name)
		}
		if tc.fault.RootCause == "" || len(tc.fault.Fix) == 0 {
			t.Fatalf("%s: missing root cause or fix", tc.fault.Name)
		}
	}
}

func TestBadStaticRouteFault(t *testing.T) {
	n := faultNet()
	// Give r1 a static route to a far subnet (the "ISP prefix") via r2 and
	// corrupt it.
	far := netip.MustParsePrefix("198.51.100.0/24")
	n.Device("r1").StaticRoutes = append(n.Device("r1").StaticRoutes,
		netmodel.StaticRoute{Prefix: far, NextHop: netip.MustParseAddr("10.0.12.2")})
	f := BadStaticRoute("r1", far, netip.MustParseAddr("10.1.0.99"), netip.MustParseAddr("10.0.12.2"))
	if err := f.Inject(n); err != nil {
		t.Fatal(err)
	}
	if n.Device("r1").StaticRoutes[len(n.Device("r1").StaticRoutes)-1].NextHop != netip.MustParseAddr("10.1.0.99") {
		t.Fatal("route not corrupted")
	}
	if len(f.Fix) != 2 || !strings.Contains(f.Fix[0].Line, "no ip route") {
		t.Fatalf("fix = %+v", f.Fix)
	}
}

func TestWrongAccessVLANFault(t *testing.T) {
	n := netmodel.NewNetwork("v")
	sw := n.AddDevice("sw1", netmodel.Switch)
	h := n.AddDevice("h1", netmodel.Host)
	n.MustConnect("h1", "eth0", "sw1", "Gi1/0/1")
	p := sw.Interface("Gi1/0/1")
	p.Mode, p.AccessVLAN = netmodel.Access, 10
	f := WrongAccessVLAN("sw1", "Gi1/0/1", 30, 10)
	if err := f.Inject(n); err != nil {
		t.Fatal(err)
	}
	if p.AccessVLAN != 30 {
		t.Fatal("VLAN not changed")
	}
	if f.Kind != privilege.TaskVLAN {
		t.Fatal("wrong kind")
	}
	_ = h
	// Injecting on a routed port fails.
	p.Mode = netmodel.Routed
	if err := WrongAccessVLAN("sw1", "Gi1/0/1", 30, 10).Inject(n); err == nil {
		t.Fatal("routed port accepted")
	}
}

func TestFaultInjectErrors(t *testing.T) {
	n := faultNet()
	bad := []Fault{
		InterfaceDown("ghost", "Gi0/0"),
		InterfaceDown("r1", "Gi9/9"),
		ACLDeny("r1", "NOPE", 10, netip.MustParsePrefix("10.0.0.0/8"), 80),
		OSPFPassive("h1", "eth0"), // hosts have no OSPF
		BadStaticRoute("r1", netip.MustParsePrefix("203.0.113.0/24"), netip.MustParseAddr("1.2.3.4"), netip.MustParseAddr("5.6.7.8")),
	}
	for _, f := range bad {
		if err := f.Inject(n); err == nil {
			t.Errorf("%s: expected inject error", f.Name)
		}
	}
}

func TestFileFor(t *testing.T) {
	s := newSystem()
	f := InterfaceDown("r2", "Gi0/0")
	tk := s.FileFor(f, "h1", "h2", netmodel.TCP, 80)
	if tk.Kind != privilege.TaskInterface || tk.SrcHost != "h1" || tk.DstPort != 80 {
		t.Fatalf("ticket = %+v", tk)
	}
	if tk.Summary == "" || tk.CreatedBy != "netadmin" {
		t.Fatalf("ticket metadata = %+v", tk)
	}
}
