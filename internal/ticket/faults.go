package ticket

import (
	"fmt"
	"net/netip"

	"heimdall/internal/netmodel"
	"heimdall/internal/privilege"
)

// Fault is one injectable misconfiguration or failure. Faults drive the
// evaluation: each is injected into a copy of the production network, a
// ticket is filed for the symptom, and the technician's job is to find and
// undo the root cause.
type Fault struct {
	Name        string
	Kind        privilege.TaskKind
	Description string
	// RootCause is the device that must be reachable (and fixable) for a
	// technique to count as feasible in the Figure 8/9 experiments.
	RootCause string
	// Inject mutates the network to create the issue.
	Inject func(n *netmodel.Network) error
	// Fix is the prepared command list (paper §5, "level playing field")
	// that an experienced technician would run on the root-cause device to
	// resolve the issue.
	Fix []FixCommand
}

// FixCommand is one console command of a prepared fix script.
type FixCommand struct {
	Device string
	Line   string
}

// InterfaceDown injects an administrative shutdown.
func InterfaceDown(device, itf string) Fault {
	return Fault{
		Name:        fmt.Sprintf("if-down-%s-%s", device, itf),
		Kind:        privilege.TaskInterface,
		Description: fmt.Sprintf("interface %s on %s is down", itf, device),
		RootCause:   device,
		Inject: func(n *netmodel.Network) error {
			d := n.Devices[device]
			if d == nil || d.Interface(itf) == nil {
				return fmt.Errorf("ticket: no interface %s:%s", device, itf)
			}
			d.Interface(itf).Shutdown = true
			return nil
		},
		Fix: []FixCommand{{Device: device, Line: fmt.Sprintf("interface %s no shutdown", itf)}},
	}
}

// ACLDeny injects a deny entry that blocks the given destination/port into
// an existing ACL, reproducing the paper's running example of a
// misconfigured access-control rule (§4.2/§4.3).
func ACLDeny(device, aclName string, seq int, dst netip.Prefix, port uint16) Fault {
	return Fault{
		Name:        fmt.Sprintf("acl-deny-%s-%s-%d", device, aclName, seq),
		Kind:        privilege.TaskACL,
		Description: fmt.Sprintf("ACL %s on %s denies traffic to %s:%d", aclName, device, dst.Addr(), port),
		RootCause:   device,
		Inject: func(n *netmodel.Network) error {
			d := n.Devices[device]
			if d == nil {
				return fmt.Errorf("ticket: no device %s", device)
			}
			a := d.ACL(aclName, false)
			if a == nil {
				return fmt.Errorf("ticket: no ACL %s on %s", aclName, device)
			}
			a.InsertEntry(netmodel.ACLEntry{
				Seq: seq, Action: netmodel.Deny, Proto: netmodel.TCP, Dst: dst, DstPort: port,
			})
			return nil
		},
		Fix: []FixCommand{{Device: device, Line: fmt.Sprintf("no access-list %s %d", aclName, seq)}},
	}
}

// WrongAccessVLAN moves an access port into the wrong VLAN — the classic
// StackExchange "access port config" issue.
func WrongAccessVLAN(device, port string, wrongVLAN, rightVLAN int) Fault {
	return Fault{
		Name:        fmt.Sprintf("vlan-%s-%s", device, port),
		Kind:        privilege.TaskVLAN,
		Description: fmt.Sprintf("port %s on %s assigned to vlan %d instead of %d", port, device, wrongVLAN, rightVLAN),
		RootCause:   device,
		Inject: func(n *netmodel.Network) error {
			d := n.Devices[device]
			if d == nil || d.Interface(port) == nil {
				return fmt.Errorf("ticket: no port %s:%s", device, port)
			}
			itf := d.Interface(port)
			if itf.Mode != netmodel.Access {
				return fmt.Errorf("ticket: %s:%s is not an access port", device, port)
			}
			itf.AccessVLAN = wrongVLAN
			return nil
		},
		Fix: []FixCommand{{Device: device, Line: fmt.Sprintf("interface %s switchport access vlan %d", port, rightVLAN)}},
	}
}

// OSPFPassive marks a transit interface passive, silently killing the
// adjacency — the "I can't ping the other router using OSPF" issue.
func OSPFPassive(device, itf string) Fault {
	return Fault{
		Name:        fmt.Sprintf("ospf-passive-%s-%s", device, itf),
		Kind:        privilege.TaskOSPF,
		Description: fmt.Sprintf("OSPF on %s has passive-interface %s, adjacency lost", device, itf),
		RootCause:   device,
		Inject: func(n *netmodel.Network) error {
			d := n.Devices[device]
			if d == nil || d.OSPF == nil {
				return fmt.Errorf("ticket: no OSPF process on %s", device)
			}
			d.OSPF.Passive[itf] = true
			return nil
		},
		Fix: []FixCommand{{Device: device, Line: fmt.Sprintf("router ospf no passive-interface %s", itf)}},
	}
}

// BadStaticRoute replaces a static route's next hop with a wrong address —
// the "changing configuration on Cisco router" ISP-reconfiguration issue.
func BadStaticRoute(device string, prefix netip.Prefix, wrongNH, rightNH netip.Addr) Fault {
	mask := maskString(prefix.Bits())
	return Fault{
		Name:        fmt.Sprintf("isp-route-%s-%s", device, prefix),
		Kind:        privilege.TaskISP,
		Description: fmt.Sprintf("static route %s on %s points at %s instead of %s", prefix, device, wrongNH, rightNH),
		RootCause:   device,
		Inject: func(n *netmodel.Network) error {
			d := n.Devices[device]
			if d == nil {
				return fmt.Errorf("ticket: no device %s", device)
			}
			for i, r := range d.StaticRoutes {
				if r.Prefix == prefix {
					d.StaticRoutes[i].NextHop = wrongNH
					return nil
				}
			}
			return fmt.Errorf("ticket: no route %s on %s", prefix, device)
		},
		Fix: []FixCommand{
			{Device: device, Line: fmt.Sprintf("no ip route %s %s %s", prefix.Addr(), mask, wrongNH)},
			{Device: device, Line: fmt.Sprintf("ip route %s %s %s", prefix.Addr(), mask, rightNH)},
		},
	}
}

// BGPWrongAS corrupts an eBGP neighbor statement's remote-as, tearing the
// session down — the other classic ISP-reconfiguration mistake (the ISP
// migrated to a new AS and the enterprise edge still peers with the old
// number, or a typo during turn-up).
func BGPWrongAS(device string, localAS int, neighbor netip.Addr, wrongAS, rightAS int) Fault {
	return Fault{
		Name:        fmt.Sprintf("bgp-as-%s-%s", device, neighbor),
		Kind:        privilege.TaskISP,
		Description: fmt.Sprintf("BGP neighbor %s on %s configured with remote-as %d instead of %d; session down", neighbor, device, wrongAS, rightAS),
		RootCause:   device,
		Inject: func(n *netmodel.Network) error {
			d := n.Devices[device]
			if d == nil || d.BGP == nil {
				return fmt.Errorf("ticket: no BGP process on %s", device)
			}
			if d.BGP.Neighbor(neighbor) == nil {
				return fmt.Errorf("ticket: no BGP neighbor %s on %s", neighbor, device)
			}
			d.BGP.SetNeighbor(neighbor, wrongAS)
			return nil
		},
		Fix: []FixCommand{{Device: device,
			Line: fmt.Sprintf("router bgp %d neighbor %s remote-as %d", localAS, neighbor, rightAS)}},
	}
}

func maskString(bits int) string {
	v := uint32(0)
	if bits > 0 {
		v = ^uint32(0) << (32 - bits)
	}
	return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// FileFor creates the ticket an admin would file for the fault's symptom.
func (s *System) FileFor(f Fault, srcHost, dstHost string, proto netmodel.Protocol, port uint16) *Ticket {
	return s.Create(Ticket{
		Summary:   f.Description,
		Kind:      f.Kind,
		SrcHost:   srcHost,
		DstHost:   dstHost,
		Proto:     proto,
		DstPort:   port,
		CreatedBy: "netadmin",
	})
}
