// Package ticket implements the MSP ticketing system of the paper's
// workflow (§2.1): tickets created by the customer's network admin or a
// monitoring system, picked up by MSP technicians, and closed when the
// issue is resolved. It also provides the fault-injection library used by
// the evaluation to reproduce real-world issue classes (VLAN
// misassignment, OSPF misconfiguration, ISP reconfiguration, interface
// failures, ACL misconfigurations).
package ticket

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"heimdall/internal/netmodel"
	"heimdall/internal/privilege"
)

// Status is the lifecycle state of a ticket.
type Status int

const (
	// Open means no technician has picked the ticket up yet.
	Open Status = iota
	// InProgress means a technician is working on it.
	InProgress
	// Resolved means the fix has been applied and verified.
	Resolved
	// Rejected means the proposed fix was refused by the policy enforcer.
	Rejected
	// Closed means the admin confirmed and archived the ticket.
	Closed
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Open:
		return "open"
	case InProgress:
		return "in-progress"
	case Resolved:
		return "resolved"
	case Rejected:
		return "rejected"
	case Closed:
		return "closed"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// validTransitions encodes the ticket lifecycle.
var validTransitions = map[Status][]Status{
	Open:       {InProgress, Closed},
	InProgress: {Resolved, Rejected, Open},
	Resolved:   {Closed, InProgress},
	Rejected:   {InProgress, Closed},
	Closed:     {},
}

// Ticket describes one reported issue.
type Ticket struct {
	ID      string
	Summary string
	Kind    privilege.TaskKind
	// SrcHost and DstHost are the affected endpoints for connectivity
	// issues ("a web service on H cannot receive packets").
	SrcHost string
	DstHost string
	Proto   netmodel.Protocol
	DstPort uint16
	// Suspects optionally names devices the reporter believes are
	// involved; the twin's slice always includes them.
	Suspects []string

	Status    Status
	CreatedBy string
	Assignee  string
	CreatedAt time.Time
	Notes     []string
}

// System is the ticketing service. It is safe for concurrent use.
type System struct {
	mu      sync.Mutex
	seq     int
	tickets map[string]*Ticket
	now     func() time.Time
}

// NewSystem returns an empty ticketing system.
func NewSystem() *System {
	return &System{tickets: make(map[string]*Ticket), now: time.Now}
}

// SetClock replaces the time source for deterministic tests.
func (s *System) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// Create files a new ticket and assigns it an ID.
func (s *System) Create(t Ticket) *Ticket {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	t.ID = fmt.Sprintf("T-%04d", s.seq)
	t.Status = Open
	t.CreatedAt = s.now()
	s.tickets[t.ID] = &t
	return &t
}

// Get returns a copy of the ticket, or nil.
func (s *System) Get(id string) *Ticket {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tickets[id]
	if !ok {
		return nil
	}
	c := *t
	c.Notes = append([]string(nil), t.Notes...)
	return &c
}

// List returns copies of all tickets sorted by ID.
func (s *System) List() []Ticket {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Ticket, 0, len(s.tickets))
	for _, t := range s.tickets {
		c := *t
		c.Notes = append([]string(nil), t.Notes...)
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Assign puts the ticket in progress under the named technician.
func (s *System) Assign(id, technician string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tickets[id]
	if !ok {
		return fmt.Errorf("ticket: no ticket %s", id)
	}
	if err := checkTransition(t.Status, InProgress); err != nil {
		return err
	}
	t.Status = InProgress
	t.Assignee = technician
	return nil
}

// Transition moves the ticket to a new lifecycle state.
func (s *System) Transition(id string, to Status) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tickets[id]
	if !ok {
		return fmt.Errorf("ticket: no ticket %s", id)
	}
	if err := checkTransition(t.Status, to); err != nil {
		return err
	}
	t.Status = to
	return nil
}

// AddNote appends a technician note to the ticket.
func (s *System) AddNote(id, note string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tickets[id]
	if !ok {
		return fmt.Errorf("ticket: no ticket %s", id)
	}
	t.Notes = append(t.Notes, note)
	return nil
}

func checkTransition(from, to Status) error {
	for _, ok := range validTransitions[from] {
		if ok == to {
			return nil
		}
	}
	return fmt.Errorf("ticket: invalid transition %s -> %s", from, to)
}
