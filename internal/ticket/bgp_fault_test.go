package ticket

import (
	"net/netip"
	"strings"
	"testing"

	"heimdall/internal/console"
	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
	"heimdall/internal/privilege"
)

func bgpFaultNet() *netmodel.Network {
	n := netmodel.NewNetwork("bf")
	r1 := n.AddDevice("edge", netmodel.Router)
	r2 := n.AddDevice("isp", netmodel.Router)
	h1 := n.AddDevice("h1", netmodel.Host)
	h2 := n.AddDevice("ext", netmodel.Host)
	n.MustConnect("h1", "eth0", "edge", "Gi0/0")
	n.MustConnect("edge", "Gi0/1", "isp", "Gi0/0")
	n.MustConnect("isp", "Gi0/1", "ext", "eth0")
	h1.Interface("eth0").Addr = netip.MustParsePrefix("10.1.0.10/24")
	h1.DefaultGateway = netip.MustParseAddr("10.1.0.1")
	r1.Interface("Gi0/0").Addr = netip.MustParsePrefix("10.1.0.1/24")
	r1.Interface("Gi0/1").Addr = netip.MustParsePrefix("203.0.113.1/30")
	r2.Interface("Gi0/0").Addr = netip.MustParsePrefix("203.0.113.2/30")
	r2.Interface("Gi0/1").Addr = netip.MustParsePrefix("198.51.100.1/24")
	h2.Interface("eth0").Addr = netip.MustParsePrefix("198.51.100.10/24")
	h2.DefaultGateway = netip.MustParseAddr("198.51.100.1")
	r1.BGP = &netmodel.BGPProcess{LocalAS: 65001,
		Networks: []netip.Prefix{netip.MustParsePrefix("10.1.0.0/24")}}
	r1.BGP.SetNeighbor(netip.MustParseAddr("203.0.113.2"), 65010)
	r2.BGP = &netmodel.BGPProcess{LocalAS: 65010,
		Networks: []netip.Prefix{netip.MustParsePrefix("198.51.100.0/24")}}
	r2.BGP.SetNeighbor(netip.MustParseAddr("203.0.113.1"), 65001)
	return n
}

func TestBGPWrongASFault(t *testing.T) {
	n := bgpFaultNet()
	check := func(want bool, context string) {
		t.Helper()
		tr, err := dataplane.Compute(n).Reach("h1", "ext", netmodel.ICMP, 0)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Delivered() != want {
			t.Fatalf("%s: delivered=%v want %v (%s)", context, tr.Delivered(), want, tr)
		}
	}
	check(true, "baseline")

	f := BGPWrongAS("edge", 65001, netip.MustParseAddr("203.0.113.2"), 65011, 65010)
	if f.Kind != privilege.TaskISP || f.RootCause != "edge" {
		t.Fatalf("fault metadata = %+v", f)
	}
	if !strings.Contains(f.Description, "remote-as 65011") {
		t.Fatalf("description = %q", f.Description)
	}
	if err := f.Inject(n); err != nil {
		t.Fatal(err)
	}
	check(false, "after fault")

	// The prepared fix restores the session.
	env := console.NewEnv(n)
	for _, cmd := range f.Fix {
		if _, err := console.New(cmd.Device, env).Run(cmd.Line); err != nil {
			t.Fatalf("fix %q: %v", cmd.Line, err)
		}
	}
	check(true, "after fix")
}

func TestBGPWrongASInjectErrors(t *testing.T) {
	n := bgpFaultNet()
	if err := BGPWrongAS("h1", 1, netip.MustParseAddr("1.2.3.4"), 2, 3).Inject(n); err == nil {
		t.Error("host without BGP accepted")
	}
	if err := BGPWrongAS("edge", 65001, netip.MustParseAddr("9.9.9.9"), 2, 3).Inject(n); err == nil {
		t.Error("unknown neighbor accepted")
	}
}
