package scenarios

import (
	"testing"

	"heimdall/internal/netmodel"
)

// TestScenarioCloneNoAliasing follows the CloneCOW aliasing-test pattern:
// two "tenants" cloned from the same scenario mutate their own copy and
// must never observe each other's changes — no shared *Device, no shared
// interface/ACL/route structures, independent Configs/Sensitive maps.
func TestScenarioCloneNoAliasing(t *testing.T) {
	for _, build := range []func() *Scenario{Enterprise, University, Provider} {
		base := build()
		a, b := base.Clone(), base.Clone()
		if a.Network == b.Network || a.Network == base.Network {
			t.Fatalf("%s: cloned networks alias", base.Name)
		}
		for _, name := range base.Network.DeviceNames() {
			if a.Network.Devices[name] == b.Network.Devices[name] {
				t.Fatalf("%s: device %s shared between clones", base.Name, name)
			}
			if a.Network.Devices[name] == base.Network.Devices[name] {
				t.Fatalf("%s: device %s shared with the base scenario", base.Name, name)
			}
		}

		// Tenant A injects its first issue's fault; tenant B and the base
		// must stay byte-identical to each other.
		if len(base.Issues) == 0 {
			t.Fatalf("%s: no issues to inject", base.Name)
		}
		if err := base.Issues[0].Fault.Inject(a.Network); err != nil {
			t.Fatal(err)
		}
		root := base.Issues[0].Fault.RootCause
		if devicesEqual(a.Network.Devices[root], b.Network.Devices[root]) {
			t.Fatalf("%s: fault on tenant A's %s not visible in its own network", base.Name, root)
		}
		if !devicesEqual(b.Network.Devices[root], base.Network.Devices[root]) {
			t.Fatalf("%s: tenant A's fault leaked into tenant B", base.Name)
		}

		// Map-level independence for the non-network fixtures.
		a.Configs[root] = "tampered"
		if b.Configs[root] == "tampered" || base.Configs[root] == "tampered" {
			t.Fatalf("%s: Configs map shared", base.Name)
		}
		a.Sensitive["ghost-host"] = true
		if b.Sensitive["ghost-host"] || base.Sensitive["ghost-host"] {
			t.Fatalf("%s: Sensitive map shared", base.Name)
		}
		if len(a.Issues) > 0 {
			a.Issues[0].Script[0].Line = "tampered"
			if b.Issues[0].Script[0].Line == "tampered" || base.Issues[0].Script[0].Line == "tampered" {
				t.Fatalf("%s: issue scripts shared", base.Name)
			}
		}
	}
}

// devicesEqual compares two devices through the config printer (the same
// lens DiffDevice uses).
func devicesEqual(a, b *netmodel.Device) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return renderDevice(a) == renderDevice(b)
}

func renderDevice(d *netmodel.Device) string {
	m := render(&netmodel.Network{Devices: map[string]*netmodel.Device{d.Name: d}})
	return m[d.Name]
}
