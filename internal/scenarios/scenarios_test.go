package scenarios

import (
	"testing"

	"heimdall/internal/config"
	"heimdall/internal/console"
	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
	"heimdall/internal/verify"
)

func TestEnterpriseBaseline(t *testing.T) {
	s := Enterprise()
	if err := s.Network.Validate(); err != nil {
		t.Fatal(err)
	}
	row := s.Row()
	if row.Routers != 9 || row.Hosts != 9 || row.Links != 22 {
		t.Fatalf("topology = %+v, want 9/9/22", row)
	}
	if row.Policies != 21 {
		t.Fatalf("policies = %d, want 21", row.Policies)
	}
	t.Logf("enterprise config lines: %d (paper: 1394)", row.ConfigLines)
	if row.ConfigLines < 1100 || row.ConfigLines > 1700 {
		t.Errorf("config lines = %d, want ≈1394 (±~20%%)", row.ConfigLines)
	}

	// All mined policies hold on the baseline.
	res := verify.Check(s.Snapshot(), s.Policies)
	if !res.OK() {
		t.Fatalf("baseline violates mined policies: %v", res.Violations)
	}

	// Key reachability facts.
	snap := s.Snapshot()
	mustReach := [][2]string{{"h1", "h3"}, {"h2", "h3"}, {"h5", "h6"}, {"h4", "ext-www"}, {"h1", "h4"}}
	for _, pair := range mustReach {
		tr, err := snap.Reach(pair[0], pair[1], netmodel.ICMP, 0)
		if err != nil || !tr.Delivered() {
			t.Errorf("%s -> %s should deliver: %v %v", pair[0], pair[1], tr, err)
		}
	}
	// The finance server is isolated from ordinary hosts...
	tr, _ := snap.Reach("h1", "h9", netmodel.ICMP, 0)
	if tr.Delivered() {
		t.Error("h1 should not reach finance h9")
	}
	// ...but the backup host reaches it on ssh.
	tr, _ = snap.Reach("h8", "h9", netmodel.TCP, 22)
	if !tr.Delivered() {
		t.Errorf("h8 should reach h9 on ssh: %s", tr)
	}

	// Configs parse back to the same semantics (round trip through text).
	for dev, text := range s.Configs {
		if _, err := config.Parse(dev, text); err != nil {
			t.Fatalf("config for %s does not parse: %v", dev, err)
		}
	}
}

func TestUniversityBaseline(t *testing.T) {
	s := University()
	if err := s.Network.Validate(); err != nil {
		t.Fatal(err)
	}
	row := s.Row()
	if row.Routers != 13 || row.Hosts != 17 || row.Links != 92 {
		t.Fatalf("topology = %+v, want 13/17/92", row)
	}
	if row.Policies != 175 {
		t.Fatalf("policies = %d, want 175", row.Policies)
	}
	t.Logf("university config lines: %d (paper: 2146)", row.ConfigLines)
	if row.ConfigLines < 1700 || row.ConfigLines > 2600 {
		t.Errorf("config lines = %d, want ≈2146 (±~20%%)", row.ConfigLines)
	}
	res := verify.Check(s.Snapshot(), s.Policies)
	if !res.OK() {
		t.Fatalf("baseline violates mined policies: %v", res.Violations[0])
	}
	snap := s.Snapshot()
	tr, _ := snap.Reach("h1", "h15", netmodel.TCP, 22)
	if !tr.Delivered() {
		t.Errorf("IT host should reach registrar on ssh: %s", tr)
	}
	tr, _ = snap.Reach("h2", "h15", netmodel.ICMP, 0)
	if tr.Delivered() {
		t.Error("ordinary host reaches sensitive h15")
	}
	tr, _ = snap.Reach("h4", "h14", netmodel.ICMP, 0)
	if !tr.Delivered() {
		t.Errorf("default chain to external service broken: %s", tr)
	}
}

// TestIssuesBreakAndScriptsFix injects every issue of both scenarios,
// checks the symptom appears, replays the prepared command script on the
// faulted network, and checks the symptom is gone.
func TestIssuesBreakAndScriptsFix(t *testing.T) {
	for _, scen := range []*Scenario{Enterprise(), University()} {
		for _, issue := range scen.Issues {
			t.Run(scen.Name+"/"+issue.Name, func(t *testing.T) {
				n := scen.Network.Clone()
				// Baseline symptom-free.
				tr, err := dataplane.Compute(n).Reach(issue.SrcHost, issue.DstHost, issue.Proto, issue.DstPort)
				if err != nil || !tr.Delivered() {
					t.Fatalf("baseline should deliver: %v %v", tr, err)
				}
				if err := issue.Fault.Inject(n); err != nil {
					t.Fatal(err)
				}
				tr, _ = dataplane.Compute(n).Reach(issue.SrcHost, issue.DstHost, issue.Proto, issue.DstPort)
				if tr.Delivered() {
					t.Fatalf("fault did not create the symptom: %s", tr)
				}
				// Replay the prepared script directly (no mediation here;
				// twin-mediated replays are covered in the core package).
				env := console.NewEnv(n)
				for _, cmd := range issue.Script {
					if _, err := console.New(cmd.Device, env).Run(cmd.Line); err != nil {
						t.Fatalf("script command %q on %s failed: %v", cmd.Line, cmd.Device, err)
					}
				}
				tr, _ = dataplane.Compute(n).Reach(issue.SrcHost, issue.DstHost, issue.Proto, issue.DstPort)
				if !tr.Delivered() {
					t.Fatalf("script did not fix the symptom: %s", tr)
				}
			})
		}
	}
}

func TestScenariosDeterministic(t *testing.T) {
	a, b := Enterprise(), Enterprise()
	if a.Row() != b.Row() {
		t.Fatal("enterprise not deterministic")
	}
	for dev := range a.Configs {
		if a.Configs[dev] != b.Configs[dev] {
			t.Fatalf("config for %s differs between runs", dev)
		}
	}
	for i := range a.Policies {
		if a.Policies[i] != b.Policies[i] {
			t.Fatalf("policy %d differs", i)
		}
	}
}

func TestProviderBaseline(t *testing.T) {
	s := Provider()
	if err := s.Network.Validate(); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	// Cross-site reachability over the eBGP backbone, both ways.
	for _, pair := range [][2]string{{"hA1", "hB1"}, {"hB1", "hA1"}, {"hA2", "hB1"}} {
		tr, err := snap.Reach(pair[0], pair[1], netmodel.ICMP, 0)
		if err != nil || !tr.Delivered() {
			t.Errorf("%s -> %s: %v %v", pair[0], pair[1], tr, err)
		}
	}
	// Billing server: https from hA1 only.
	tr, _ := snap.Reach("hA1", "hB2", netmodel.TCP, 443)
	if !tr.Delivered() {
		t.Errorf("authorized billing access broken: %s", tr)
	}
	tr, _ = snap.Reach("hA2", "hB2", netmodel.TCP, 443)
	if tr.Delivered() {
		t.Error("unauthorized host reaches billing")
	}
	// Mined policies hold.
	if res := verify.Check(snap, s.Policies); !res.OK() {
		t.Fatalf("baseline violates policies: %v", res.Violations[0])
	}
	if len(s.Policies) == 0 {
		t.Fatal("no policies mined")
	}
	// Configs round-trip (BGP sections included).
	for dev, text := range s.Configs {
		if _, err := config.Parse(dev, text); err != nil {
			t.Fatalf("config for %s: %v", dev, err)
		}
	}
}

func TestProviderIssues(t *testing.T) {
	scen := Provider()
	for _, issue := range scen.Issues {
		t.Run(issue.Name, func(t *testing.T) {
			n := scen.Network.Clone()
			tr, err := dataplane.Compute(n).Reach(issue.SrcHost, issue.DstHost, issue.Proto, issue.DstPort)
			if err != nil || !tr.Delivered() {
				t.Fatalf("baseline: %v %v", tr, err)
			}
			if err := issue.Fault.Inject(n); err != nil {
				t.Fatal(err)
			}
			tr, _ = dataplane.Compute(n).Reach(issue.SrcHost, issue.DstHost, issue.Proto, issue.DstPort)
			if tr.Delivered() {
				t.Fatalf("no symptom: %s", tr)
			}
			env := console.NewEnv(n)
			for _, cmd := range issue.Script {
				if _, err := console.New(cmd.Device, env).Run(cmd.Line); err != nil {
					t.Fatalf("%q on %s: %v", cmd.Line, cmd.Device, err)
				}
			}
			tr, _ = dataplane.Compute(n).Reach(issue.SrcHost, issue.DstHost, issue.Proto, issue.DstPort)
			if !tr.Delivered() {
				t.Fatalf("script did not fix: %s", tr)
			}
		})
	}
}
