// Package scenarios synthesizes the two evaluation networks of the paper's
// Table 1 — an enterprise network and a university network — together with
// their rendered device configurations, mined policy sets, and the three
// real-world issues (vlan, ospf, isp) used in the pilot study.
//
// The paper evaluates on two real config sets from the Batfish test suite;
// those configurations are not redistributable, so these generators build
// deterministic networks calibrated to the same published statistics
// (#routers, #hosts, #links, #policies, lines of config) and supporting the
// same issue classes. EXPERIMENTS.md records generated-vs-published values.
package scenarios

import (
	"fmt"
	"net/netip"

	"heimdall/internal/config"
	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
	"heimdall/internal/ticket"
	"heimdall/internal/verify"
)

// Issue is one scripted trouble ticket of the pilot study: a fault, the
// symptom pair, and the prepared command list (diagnosis plus fix) an
// experienced technician would run.
type Issue struct {
	Name    string // "vlan", "ospf", "isp"
	Fault   ticket.Fault
	SrcHost string
	DstHost string
	Proto   netmodel.Protocol
	DstPort uint16
	// Script is the full prepared command list, diagnosis and fix, in
	// order. The fix commands are exactly Fault.Fix.
	Script []ticket.FixCommand
}

// Scenario is one evaluation network with everything the experiments need.
type Scenario struct {
	Name      string
	Network   *netmodel.Network
	Configs   map[string]string
	Policies  []verify.Policy
	Sensitive map[string]bool
	Issues    []Issue
}

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Network     string
	Routers     int
	Hosts       int
	Links       int
	Policies    int
	ConfigLines int
}

// Row computes the scenario's Table 1 statistics.
func (s *Scenario) Row() Table1Row {
	lines := 0
	for _, devName := range s.Network.RoutersAndSwitches() {
		lines += config.CountLines(s.Configs[devName])
	}
	return Table1Row{
		Network:     s.Name,
		Routers:     len(s.Network.RoutersAndSwitches()),
		Hosts:       len(s.Network.Hosts()),
		Links:       len(s.Network.Links),
		Policies:    len(s.Policies),
		ConfigLines: lines,
	}
}

// Snapshot computes the baseline dataplane of the scenario.
func (s *Scenario) Snapshot() *dataplane.Snapshot { return dataplane.Compute(s.Network) }

// Clone returns an independent deep copy of the scenario, so several
// deployments (the multi-tenant service hands one scenario per tenant)
// can mutate their networks without aliasing any state. The network is
// deep-cloned; configs, policies, sensitive sets and issue scripts are
// copied. Issue Fault closures are shared — they are pure functions of
// the network they are handed and hold no network state.
func (s *Scenario) Clone() *Scenario {
	c := &Scenario{
		Name:    s.Name,
		Network: s.Network.Clone(),
		Configs: make(map[string]string, len(s.Configs)),
	}
	for k, v := range s.Configs {
		c.Configs[k] = v
	}
	c.Policies = append([]verify.Policy(nil), s.Policies...)
	if s.Sensitive != nil {
		c.Sensitive = make(map[string]bool, len(s.Sensitive))
		for k, v := range s.Sensitive {
			c.Sensitive[k] = v
		}
	}
	c.Issues = make([]Issue, len(s.Issues))
	for i, is := range s.Issues {
		is.Script = append([]ticket.FixCommand(nil), is.Script...)
		is.Fault.Fix = append([]ticket.FixCommand(nil), is.Fault.Fix...)
		c.Issues[i] = is
	}
	return c
}

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func ip(s string) netip.Addr    { return netip.MustParseAddr(s) }

// p2p addresses both ends of a /30 infrastructure link.
func p2p(n *netmodel.Network, devA, ifA, devB, ifB, subnet string) {
	n.MustConnect(devA, ifA, devB, ifB)
	base := ip(subnet)
	b := base.As4()
	a1 := netip.AddrFrom4([4]byte{b[0], b[1], b[2], b[3] + 1})
	a2 := netip.AddrFrom4([4]byte{b[0], b[1], b[2], b[3] + 2})
	n.Devices[devA].Interface(ifA).Addr = netip.PrefixFrom(a1, 30)
	n.Devices[devB].Interface(ifB).Addr = netip.PrefixFrom(a2, 30)
}

// attachHost cables a host to a routed port: the router side gets .1, the
// host .10 of the /24, and the host's default gateway points at the router.
func attachHost(n *netmodel.Network, host, dev, itf, subnet24 string) {
	n.MustConnect(host, "eth0", dev, itf)
	base := ip(subnet24)
	b := base.As4()
	gw := netip.AddrFrom4([4]byte{b[0], b[1], b[2], 1})
	ha := netip.AddrFrom4([4]byte{b[0], b[1], b[2], 10})
	n.Devices[dev].Interface(itf).Addr = netip.PrefixFrom(gw, 24)
	h := n.Devices[host]
	h.Interface("eth0").Addr = netip.PrefixFrom(ha, 24)
	h.DefaultGateway = gw
}

// ospfAll enables OSPF (process 1, area 0, 10.0.0.0/8) on the named
// devices, marking host-facing and SVI interfaces passive.
func ospfAll(n *netmodel.Network, devices []string) {
	for _, name := range devices {
		d := n.Devices[name]
		d.OSPF = &netmodel.OSPFProcess{
			ProcessID: 1,
			RouterID:  routerID(name),
			Networks:  []netmodel.OSPFNetwork{{Prefix: pfx("10.0.0.0/8"), Area: 0}},
			Passive:   map[string]bool{},
		}
		for _, ifName := range d.InterfaceNames() {
			itf := d.Interfaces[ifName]
			if !itf.HasAddr() {
				continue
			}
			// Host subnets and SVIs are passive: advertised, no adjacency.
			if itf.Addr.Bits() == 24 {
				link := n.LinkAt(name, ifName)
				peerIsInfra := false
				if link != nil {
					if other, ok := link.Other(name); ok {
						peerIsInfra = n.Devices[other.Device].Kind != netmodel.Host
					}
				}
				if itf.IsSVI() || !peerIsInfra {
					d.OSPF.Passive[ifName] = true
				}
			}
		}
	}
}

func routerID(name string) netip.Addr {
	var n int
	fmt.Sscanf(name[len(name)-1:], "%d", &n)
	if n == 0 {
		n = 99
	}
	return netip.AddrFrom4([4]byte{byte(n), byte(n), byte(n), byte(n)})
}

// mgmtACL pads a device with the kind of operational ACL real enterprise
// configs carry (management-plane filters), sized to calibrate the config
// line counts of Table 1. The ACL is not bound to any interface.
func mgmtACL(d *netmodel.Device, entries int) {
	a := d.ACL("MGMT-PLANE", true)
	for i := 0; i < entries; i++ {
		e := netmodel.ACLEntry{
			Seq:    (i + 1) * 10,
			Action: netmodel.Deny,
			Proto:  netmodel.TCP,
			Src:    netip.PrefixFrom(netip.AddrFrom4([4]byte{192, 168, byte(i / 250), byte(1 + i%250)}), 32),
			Dst:    pfx("10.0.0.0/8"),
		}
		if i%2 == 0 {
			e.DstPort = 23 // telnet
		} else {
			e.DstPort = 22
		}
		a.InsertEntry(e)
	}
	a.InsertEntry(netmodel.ACLEntry{Seq: (entries + 1) * 10, Action: netmodel.Permit})
}

func secrets(d *netmodel.Device, seed string) {
	d.Secrets["enable"] = "ENC-" + seed
	d.Secrets["snmp"] = "comm-" + seed
}

func render(n *netmodel.Network) map[string]string {
	out := make(map[string]string, len(n.Devices))
	for name, d := range n.Devices {
		out[name] = config.Print(d)
	}
	return out
}
