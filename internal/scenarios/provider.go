package scenarios

import (
	"net/netip"

	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
	"heimdall/internal/spec"
	"heimdall/internal/ticket"
)

// Provider builds a third scenario beyond the paper's Table 1 pair: a
// multi-site enterprise whose sites hang off an ISP backbone over eBGP —
// the deployment where "ISP reconfiguration" tickets are really about
// peering state. Two customer edge routers (AS 65001, 65002) each peer
// with one backbone router (both AS 64900); sites exchange routes across
// the backbone.
//
//	hA1,hA2 - edgeA ==eBGP== isp1 ---- isp2 ==eBGP== edgeB - hB1,hB2
//	 (AS 65001)                (AS 64900 backbone)      (AS 65002)
//
// hB2 is the sensitive billing server, guarded on edgeB.
func Provider() *Scenario {
	n := netmodel.NewNetwork("provider")
	edgeA := n.AddDevice("edgeA", netmodel.Router)
	edgeB := n.AddDevice("edgeB", netmodel.Router)
	isp1 := n.AddDevice("isp1", netmodel.Router)
	isp2 := n.AddDevice("isp2", netmodel.Router)
	for _, h := range []string{"hA1", "hA2", "hB1", "hB2"} {
		n.AddDevice(h, netmodel.Host)
	}

	// Site A.
	attachHost(n, "hA1", "edgeA", "Gi0/2", "10.10.1.0")
	attachHost(n, "hA2", "edgeA", "Gi0/3", "10.10.2.0")
	// Site B.
	attachHost(n, "hB1", "edgeB", "Gi0/2", "10.20.1.0")
	attachHost(n, "hB2", "edgeB", "Gi0/3", "10.20.2.0")
	// Backbone.
	p2p(n, "edgeA", "Gi0/0", "isp1", "Gi0/0", "203.0.113.0")
	p2p(n, "edgeB", "Gi0/0", "isp2", "Gi0/0", "203.0.113.4")
	p2p(n, "isp1", "Gi0/1", "isp2", "Gi0/1", "203.0.113.8")

	// eBGP: edges originate their site space; the backbone originates its
	// own infrastructure space and transits everything.
	edgeA.BGP = &netmodel.BGPProcess{LocalAS: 65001, RouterID: ip("1.1.1.1"),
		Networks: []netip.Prefix{pfx("10.10.1.0/24"), pfx("10.10.2.0/24")}}
	edgeA.BGP.SetNeighbor(ip("203.0.113.2"), 64900)
	edgeB.BGP = &netmodel.BGPProcess{LocalAS: 65002, RouterID: ip("2.2.2.2"),
		Networks: []netip.Prefix{pfx("10.20.1.0/24"), pfx("10.20.2.0/24")}}
	edgeB.BGP.SetNeighbor(ip("203.0.113.6"), 64900)

	// The backbone routers share AS 64900; between themselves they run
	// OSPF (iBGP is out of scope) and re-originate customer routes
	// learned from their own customers. For a faithful-but-simple model,
	// both backbone routers peer eBGP with their customer edge and share
	// an IGP that carries the peering subnets; each backbone router
	// additionally originates the site prefixes it learns — modeled by
	// static routes toward the customer edge, redistributed via BGP
	// "network" statements on the far side's peer.
	isp1.BGP = &netmodel.BGPProcess{LocalAS: 64900, RouterID: ip("9.9.9.1"),
		// The backbone advertises the far site's aggregate to its customer
		// (an ISP originating customer routes toward its other customers).
		Networks: []netip.Prefix{pfx("203.0.113.8/30"), pfx("10.20.0.0/16")}}
	isp1.BGP.SetNeighbor(ip("203.0.113.1"), 65001)
	isp2.BGP = &netmodel.BGPProcess{LocalAS: 64900, RouterID: ip("9.9.9.2"),
		Networks: []netip.Prefix{pfx("203.0.113.8/30"), pfx("10.10.0.0/16")}}
	isp2.BGP.SetNeighbor(ip("203.0.113.5"), 65002)

	// Backbone IGP: OSPF over the isp1-isp2 link plus statics carrying the
	// customer routes across the backbone (each ISP router knows how to
	// reach the other side's learned prefixes via its neighbor).
	for _, name := range []string{"isp1", "isp2"} {
		n.Devices[name].OSPF = &netmodel.OSPFProcess{ProcessID: 1,
			RouterID: routerID(name),
			Networks: []netmodel.OSPFNetwork{{Prefix: pfx("203.0.113.0/24"), Area: 0}},
			Passive:  map[string]bool{"Gi0/0": true}}
	}
	n.Devices["isp1"].StaticRoutes = []netmodel.StaticRoute{
		{Prefix: pfx("10.20.0.0/16"), NextHop: ip("203.0.113.10")},
	}
	n.Devices["isp2"].StaticRoutes = []netmodel.StaticRoute{
		{Prefix: pfx("10.10.0.0/16"), NextHop: ip("203.0.113.9")},
	}

	// Billing-server guard on edgeB: only hA1's subnet, https only.
	guard := edgeB.ACL("BILLING-GUARD", true)
	guard.InsertEntry(netmodel.ACLEntry{Seq: 10, Action: netmodel.Permit, Proto: netmodel.TCP,
		Src: pfx("10.10.1.0/24"), Dst: pfx("10.20.2.0/24"), DstPort: 443})
	guard.InsertEntry(netmodel.ACLEntry{Seq: 20, Action: netmodel.Deny, Proto: netmodel.AnyProto,
		Dst: pfx("10.20.2.0/24")})
	guard.InsertEntry(netmodel.ACLEntry{Seq: 30, Action: netmodel.Permit})
	edgeB.Interface("Gi0/0").ACLIn = "BILLING-GUARD"

	for _, r := range n.RoutersAndSwitches() {
		secrets(n.Devices[r], r)
	}

	sensitive := map[string]bool{"hB2": true}
	snap := dataplane.Compute(n)
	policies := spec.Mine(snap, n, spec.Options{
		Services:  []spec.Service{{Proto: netmodel.ICMP}, {Proto: netmodel.TCP, Port: 443}},
		Sensitive: sensitive,
	})

	s := &Scenario{
		Name:      "provider",
		Network:   n,
		Configs:   render(n),
		Policies:  policies,
		Sensitive: sensitive,
	}
	s.Issues = providerIssues()
	return s
}

// providerIssues defines the scenario's scripted tickets.
func providerIssues() []Issue {
	// The ISP migrated edgeA's peering to a new AS numbering plan and the
	// change was fat-fingered on the customer side.
	bgpFault := ticket.BGPWrongAS("edgeA", 65001, ip("203.0.113.2"), 64901, 64900)
	bgp := Issue{
		Name: "bgp", Fault: bgpFault,
		SrcHost: "hA1", DstHost: "hB1", Proto: netmodel.ICMP,
		Script: append([]ticket.FixCommand{
			{Device: "hA1", Line: "ping hB1"},
			{Device: "edgeA", Line: "show ip bgp"},
			{Device: "edgeA", Line: "show running-config"},
		}, bgpFault.Fix...),
	}
	bgp.Script = append(bgp.Script, ticket.FixCommand{Device: "hA1", Line: "ping hB1"})

	// An over-tight ACL edit locked the authorized client out of billing.
	aclFault := ticket.ACLDeny("edgeB", "BILLING-GUARD", 5, pfx("10.20.2.10/32"), 443)
	acl := Issue{
		Name: "acl", Fault: aclFault,
		SrcHost: "hA1", DstHost: "hB2", Proto: netmodel.TCP, DstPort: 443,
		Script: append([]ticket.FixCommand{
			{Device: "hA1", Line: "ping hB2 tcp 443"},
			{Device: "edgeB", Line: "show access-lists BILLING-GUARD"},
		}, aclFault.Fix...),
	}
	acl.Script = append(acl.Script, ticket.FixCommand{Device: "hA1", Line: "ping hB2 tcp 443"})

	// A backbone maintenance window left an interface down.
	ifFault := ticket.InterfaceDown("isp1", "Gi0/1")
	iface := Issue{
		Name: "interface", Fault: ifFault,
		SrcHost: "hA2", DstHost: "hB1", Proto: netmodel.ICMP,
		Script: append([]ticket.FixCommand{
			{Device: "hA2", Line: "ping hB1"},
			{Device: "isp1", Line: "show interfaces"},
		}, ifFault.Fix...),
	}
	iface.Script = append(iface.Script, ticket.FixCommand{Device: "hA2", Line: "ping hB1"})

	return []Issue{bgp, acl, iface}
}
