package scenarios

import (
	"fmt"
	"net/netip"

	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
	"heimdall/internal/spec"
	"heimdall/internal/ticket"
)

// universityMgmtEntries calibrates the university config size to Table 1's
// 2146 lines.
const universityMgmtEntries = 116

// University builds the university evaluation network: 13 routers in a
// dense (near-full) mesh — the flat, historically grown topology typical of
// campus networks — with 17 hosts spread across departments, three of them
// sensitive (registrar, payroll, medical records). 92 links: 75 inter-router
// plus 17 host links.
func University() *Scenario {
	n := netmodel.NewNetwork("university")
	const routers = 13
	for i := 1; i <= routers; i++ {
		n.AddDevice(fmt.Sprintf("r%d", i), netmodel.Router)
	}

	// Near-full mesh: all 78 pairs except three (r1-r2, r1-r3, r2-r3),
	// giving exactly 75 inter-router links.
	skip := map[[2]int]bool{{1, 2}: true, {1, 3}: true, {2, 3}: true}
	linkIdx := 0
	ifCount := make(map[string]int)
	nextIf := func(dev string) string {
		ifCount[dev]++
		return fmt.Sprintf("Gi0/%d", ifCount[dev]-1)
	}
	for i := 1; i <= routers; i++ {
		for j := i + 1; j <= routers; j++ {
			if skip[[2]int{i, j}] {
				continue
			}
			a, b := fmt.Sprintf("r%d", i), fmt.Sprintf("r%d", j)
			subnet := fmt.Sprintf("10.200.%d.0", linkIdx)
			p2p(n, a, nextIf(a), b, nextIf(b), subnet)
			linkIdx++
		}
	}

	// 17 hosts: h1..h17 round-robin across routers; hN gets subnet
	// 10.N.0.0/24 — except h14, the "external" service behind the campus
	// uplink on r1, whose subnet (192.0.2.0/24) is deliberately outside
	// the OSPF-advertised 10/8 so it exercises the static default chain.
	for h := 1; h <= 17; h++ {
		host := fmt.Sprintf("h%d", h)
		n.AddDevice(host, netmodel.Host)
		if h == 14 {
			attachHost(n, host, "r1", nextIf("r1"), "192.0.2.0")
			continue
		}
		router := fmt.Sprintf("r%d", (h-1)%routers+1)
		attachHost(n, host, router, nextIf(router), fmt.Sprintf("10.%d.0.0", h))
	}

	infra := n.RoutersAndSwitches()
	ospfAll(n, infra)

	// Sensitive department servers, each guarded on its gateway router:
	// only the IT subnet (h1's) may reach them, on ssh.
	sensitive := map[string]bool{"h15": true, "h16": true, "h17": true}
	for h := 15; h <= 17; h++ {
		router := fmt.Sprintf("r%d", (h-1)%routers+1)
		sub := fmt.Sprintf("10.%d.0.0/24", h)
		aclName := fmt.Sprintf("SENSITIVE-%d", h)
		guard := n.Devices[router].ACL(aclName, true)
		guard.InsertEntry(netmodel.ACLEntry{Seq: 10, Action: netmodel.Permit, Proto: netmodel.TCP,
			Src: pfx("10.1.0.0/24"), Dst: pfx(sub), DstPort: 22})
		guard.InsertEntry(netmodel.ACLEntry{Seq: 20, Action: netmodel.Deny, Proto: netmodel.AnyProto,
			Dst: pfx(sub)})
		guard.InsertEntry(netmodel.ACLEntry{Seq: 30, Action: netmodel.Permit})
		// Find the host-facing interface (the /24 one for this subnet).
		for _, ifName := range n.Devices[router].InterfaceNames() {
			itf := n.Devices[router].Interfaces[ifName]
			if itf.HasAddr() && itf.Addr.Bits() == 24 && pfx(sub).Contains(itf.Addr.Addr()) {
				itf.ACLOut = aclName
			}
		}
	}

	// The campus default chain: every router points its default at r1
	// (where the external subnet lives); r2 and r3, which have no direct
	// r1 link, default via r4. The ISP reconfiguration issue mutates one
	// of these routes.
	for i := 2; i <= routers; i++ {
		name := fmt.Sprintf("r%d", i)
		nh := meshNeighborAddr(n, name, "r1")
		if !nh.IsValid() {
			nh = meshNeighborAddr(n, name, "r4")
		}
		if nh.IsValid() {
			n.Devices[name].StaticRoutes = []netmodel.StaticRoute{{Prefix: pfx("0.0.0.0/0"), NextHop: nh}}
		}
	}

	for _, r := range infra {
		mgmtACL(n.Devices[r], universityMgmtEntries)
		secrets(n.Devices[r], r)
	}

	snap := dataplane.Compute(n)
	policies := spec.Mine(snap, n, spec.Options{
		Services:    []spec.Service{{Proto: netmodel.ICMP}, {Proto: netmodel.TCP, Port: 80}},
		Sensitive:   sensitive,
		MaxPolicies: 175,
	})

	s := &Scenario{
		Name:      "university",
		Network:   n,
		Configs:   render(n),
		Policies:  policies,
		Sensitive: sensitive,
	}
	s.Issues = universityIssues(n)
	return s
}

// meshNeighborAddr returns the peer address of the first /30 link between
// dev and peer, or the zero Addr.
func meshNeighborAddr(n *netmodel.Network, dev, peer string) netip.Addr {
	d := n.Devices[dev]
	for _, ifName := range d.InterfaceNames() {
		link := n.LinkAt(dev, ifName)
		if link == nil {
			continue
		}
		other, ok := link.Other(dev)
		if !ok || other.Device != peer {
			continue
		}
		pi := n.Devices[peer].Interface(other.Interface)
		if pi != nil && pi.HasAddr() {
			return pi.Addr.Addr()
		}
	}
	return netip.Addr{}
}

// universityIssues defines the three pilot-study issues on the university
// network (the paper reports these results as "similar" to the enterprise
// ones and omits the figure; we regenerate them anyway).
func universityIssues(n *netmodel.Network) []Issue {
	// ACL issue standing in for the VLAN class (the campus body is fully
	// routed): the registrar guard on h15's router denies too much.
	aclFault := ticket.ACLDeny("r2", "SENSITIVE-15", 5, pfx("10.15.0.10/32"), 22)
	acl := Issue{
		Name: "acl", Fault: aclFault,
		SrcHost: "h1", DstHost: "h15", Proto: netmodel.TCP, DstPort: 22,
		Script: append([]ticket.FixCommand{
			{Device: "h1", Line: "ping h15 tcp 22"},
			{Device: "r2", Line: "show ip route"},
			{Device: "r2", Line: "show access-lists SENSITIVE-15"},
			{Device: "r2", Line: "show running-config"},
		}, aclFault.Fix...),
	}
	acl.Script = append(acl.Script, ticket.FixCommand{Device: "h1", Line: "ping h15 tcp 22"})

	// OSPF issue: in a dense mesh a single passive interface reroutes
	// instead of breaking, so the fault silences ALL of r13's adjacencies
	// (a botched "passive-interface default" rollout), stranding h13.
	ospfFault := universityOSPFFault(n)
	ospf := Issue{
		Name: "ospf", Fault: ospfFault,
		SrcHost: "h2", DstHost: "h13", Proto: netmodel.ICMP,
		Script: append([]ticket.FixCommand{
			{Device: "h2", Line: "ping h13"},
			{Device: "r13", Line: "show ip ospf neighbor"},
			{Device: "r13", Line: "show ip route"},
			{Device: "r13", Line: "show running-config"},
		}, ospfFault.Fix...),
	}
	ospf.Script = append(ospf.Script, ticket.FixCommand{Device: "h2", Line: "ping h13"})

	// ISP issue: r4's campus default points at a junk next hop, cutting
	// h4 off from the external service h14.
	nh := meshNeighborAddr(n, "r4", "r1")
	ispFault := ticket.BadStaticRoute("r4", pfx("0.0.0.0/0"), ip("10.250.0.9"), nh)
	isp := Issue{
		Name: "isp", Fault: ispFault,
		SrcHost: "h4", DstHost: "h14", Proto: netmodel.ICMP,
		Script: append([]ticket.FixCommand{
			{Device: "h4", Line: "ping h14"},
			{Device: "r4", Line: "show ip route"},
		}, ispFault.Fix...),
	}
	isp.Script = append(isp.Script, ticket.FixCommand{Device: "h4", Line: "ping h14"})

	return []Issue{acl, ospf, isp}
}

// universityOSPFFault silences every OSPF adjacency of r13 (passive on all
// transit interfaces), stranding h13's subnet.
func universityOSPFFault(n *netmodel.Network) ticket.Fault {
	d := n.Devices["r13"]
	var transit []string
	for _, ifName := range d.InterfaceNames() {
		itf := d.Interfaces[ifName]
		if itf.HasAddr() && itf.Addr.Bits() == 30 {
			transit = append(transit, ifName)
		}
	}
	var fixes []ticket.FixCommand
	for _, ifName := range transit {
		fixes = append(fixes, ticket.FixCommand{Device: "r13",
			Line: "router ospf no passive-interface " + ifName})
	}
	return ticket.Fault{
		Name:        "ospf-passive-r13-all",
		Kind:        "ospf",
		Description: "r13 marked every transit interface passive; campus lost routes to 10.13.0.0/24",
		RootCause:   "r13",
		Inject: func(net *netmodel.Network) error {
			dd := net.Devices["r13"]
			if dd == nil || dd.OSPF == nil {
				return fmt.Errorf("scenarios: r13 has no OSPF")
			}
			for _, ifName := range transit {
				dd.OSPF.Passive[ifName] = true
			}
			return nil
		},
		Fix: fixes,
	}
}
