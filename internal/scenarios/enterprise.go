package scenarios

import (
	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
	"heimdall/internal/spec"
	"heimdall/internal/ticket"
)

// enterpriseMgmtEntries calibrates the enterprise config size to Table 1's
// 1394 lines.
const enterpriseMgmtEntries = 130

// Enterprise builds the enterprise evaluation network: two core routers, a
// distribution pair, three edge routers and two L3 access switches (9
// network devices), nine hosts (including an external "ISP-side" web
// server and a sensitive finance server), 22 links.
//
//	          ext-www                 h9 (finance, sensitive)
//	             |                     |
//	h1,h2 - sw1  r1 ======== r2 ------+
//	         |    \  \      /  \
//	         |     \   r3 =====  r4 --- h8
//	        sw2    |  /  \       |
//	         |     r5     r6     r7 --- h6
//	        h3     |h4    |h5    |
//	               +------+------+ (sw2-r7 uplink, r5-r6 interlink)
func Enterprise() *Scenario {
	n := netmodel.NewNetwork("enterprise")
	for _, r := range []string{"r1", "r2", "r3", "r4", "r5", "r6", "r7"} {
		n.AddDevice(r, netmodel.Router)
	}
	n.AddDevice("sw1", netmodel.Switch)
	n.AddDevice("sw2", netmodel.Switch)
	for _, h := range []string{"h1", "h2", "h3", "h4", "h5", "h6", "ext-www", "h8", "h9"} {
		n.AddDevice(h, netmodel.Host)
	}

	// Core / distribution / edge fabric (10 routed /30 links).
	p2p(n, "r1", "Gi0/0", "r2", "Gi0/0", "10.0.1.0")
	p2p(n, "r1", "Gi0/1", "r3", "Gi0/0", "10.0.2.0")
	p2p(n, "r1", "Gi0/2", "r4", "Gi0/0", "10.0.3.0")
	p2p(n, "r2", "Gi0/1", "r3", "Gi0/1", "10.0.4.0")
	p2p(n, "r2", "Gi0/2", "r4", "Gi0/1", "10.0.5.0")
	p2p(n, "r3", "Gi0/2", "r4", "Gi0/2", "10.0.6.0")
	p2p(n, "r3", "Gi0/3", "r5", "Gi0/0", "10.0.7.0")
	p2p(n, "r3", "Gi0/4", "r6", "Gi0/0", "10.0.8.0")
	p2p(n, "r4", "Gi0/3", "r7", "Gi0/0", "10.0.9.0")
	p2p(n, "r5", "Gi0/2", "r6", "Gi0/2", "10.0.10.0")

	// Switch uplinks (routed ports on the L3 switches) and the trunk.
	p2p(n, "sw1", "Gi1/0/24", "r5", "Gi0/1", "10.0.11.0")
	p2p(n, "sw2", "Gi1/0/24", "r7", "Gi0/1", "10.0.12.0")
	n.MustConnect("sw1", "Gi1/0/23", "sw2", "Gi1/0/23")
	for _, sw := range []string{"sw1", "sw2"} {
		tr := n.Devices[sw].Interface("Gi1/0/23")
		tr.Mode = netmodel.Trunk
		tr.TrunkVLANs = []int{10, 20}
		n.Devices[sw].VLANs[10] = &netmodel.VLAN{ID: 10, Name: "users"}
		n.Devices[sw].VLANs[20] = &netmodel.VLAN{ID: 20, Name: "staff"}
	}

	// SVIs: sw1 routes both VLANs; sw2 has a standby SVI in vlan 20.
	svi := n.Devices["sw1"].AddInterface("Vlan10")
	svi.Addr = pfx("10.10.0.1/24")
	svi = n.Devices["sw1"].AddInterface("Vlan20")
	svi.Addr = pfx("10.20.0.1/24")
	svi = n.Devices["sw2"].AddInterface("Vlan20")
	svi.Addr = pfx("10.20.0.2/24")

	// VLAN access ports + hosts behind the switches.
	access := func(sw, port string, vlan int) {
		p := n.Devices[sw].AddInterface(port)
		p.Mode = netmodel.Access
		p.AccessVLAN = vlan
	}
	access("sw1", "Gi1/0/1", 10)
	access("sw1", "Gi1/0/2", 20)
	access("sw2", "Gi1/0/1", 20)
	n.MustConnect("h1", "eth0", "sw1", "Gi1/0/1")
	n.MustConnect("h2", "eth0", "sw1", "Gi1/0/2")
	n.MustConnect("h3", "eth0", "sw2", "Gi1/0/1")
	setHost := func(host, addr, gw string) {
		h := n.Devices[host]
		h.Interface("eth0").Addr = pfx(addr)
		h.DefaultGateway = ip(gw)
	}
	setHost("h1", "10.10.0.11/24", "10.10.0.1")
	setHost("h2", "10.20.0.12/24", "10.20.0.1")
	setHost("h3", "10.20.0.13/24", "10.20.0.1")

	// Directly attached hosts.
	attachHost(n, "h4", "r5", "Gi0/3", "10.4.0.0")
	attachHost(n, "h5", "r6", "Gi0/1", "10.5.0.0")
	attachHost(n, "h6", "r7", "Gi0/2", "10.6.0.0")
	attachHost(n, "ext-www", "r1", "Gi0/3", "198.51.100.0")
	attachHost(n, "h8", "r4", "Gi0/4", "10.8.0.0")
	attachHost(n, "h9", "r2", "Gi0/3", "10.9.0.0")

	infra := []string{"r1", "r2", "r3", "r4", "r5", "r6", "r7", "sw1", "sw2"}
	ospfAll(n, infra)
	// The external subnet (198.51.100/24) is outside 10/8 and therefore
	// not advertised: it is reached through the static default chain.
	n.Devices["r2"].StaticRoutes = []netmodel.StaticRoute{{Prefix: pfx("0.0.0.0/0"), NextHop: ip("10.0.1.1")}}
	n.Devices["r3"].StaticRoutes = []netmodel.StaticRoute{{Prefix: pfx("0.0.0.0/0"), NextHop: ip("10.0.2.1")}}
	n.Devices["r4"].StaticRoutes = []netmodel.StaticRoute{{Prefix: pfx("0.0.0.0/0"), NextHop: ip("10.0.3.1")}}
	n.Devices["r5"].StaticRoutes = []netmodel.StaticRoute{{Prefix: pfx("0.0.0.0/0"), NextHop: ip("10.0.7.1")}}
	n.Devices["r6"].StaticRoutes = []netmodel.StaticRoute{{Prefix: pfx("0.0.0.0/0"), NextHop: ip("10.0.8.1")}}
	n.Devices["r7"].StaticRoutes = []netmodel.StaticRoute{{Prefix: pfx("0.0.0.0/0"), NextHop: ip("10.0.9.1")}}
	n.Devices["sw1"].StaticRoutes = []netmodel.StaticRoute{{Prefix: pfx("0.0.0.0/0"), NextHop: ip("10.0.11.2")}}
	n.Devices["sw2"].StaticRoutes = []netmodel.StaticRoute{{Prefix: pfx("0.0.0.0/0"), NextHop: ip("10.0.12.2")}}

	// Finance protection on r2: only h8 (backup) may reach h9, on ssh.
	guard := n.Devices["r2"].ACL("FINANCE-GUARD", true)
	guard.InsertEntry(netmodel.ACLEntry{Seq: 10, Action: netmodel.Permit, Proto: netmodel.TCP,
		Src: pfx("10.8.0.0/24"), Dst: pfx("10.9.0.0/24"), DstPort: 22})
	guard.InsertEntry(netmodel.ACLEntry{Seq: 20, Action: netmodel.Deny, Proto: netmodel.AnyProto,
		Dst: pfx("10.9.0.0/24")})
	guard.InsertEntry(netmodel.ACLEntry{Seq: 30, Action: netmodel.Permit})
	n.Devices["r2"].Interface("Gi0/3").ACLOut = "FINANCE-GUARD"

	// Perimeter filter on r1: the external side cannot initiate into the
	// finance subnet.
	edge := n.Devices["r1"].ACL("EXT-IN", true)
	edge.InsertEntry(netmodel.ACLEntry{Seq: 10, Action: netmodel.Deny, Proto: netmodel.AnyProto,
		Src: pfx("198.51.100.0/24"), Dst: pfx("10.9.0.0/24")})
	edge.InsertEntry(netmodel.ACLEntry{Seq: 20, Action: netmodel.Permit})
	n.Devices["r1"].Interface("Gi0/3").ACLIn = "EXT-IN"

	for _, r := range infra {
		mgmtACL(n.Devices[r], enterpriseMgmtEntries)
		secrets(n.Devices[r], r)
	}

	sensitive := map[string]bool{"h9": true}
	snap := dataplane.Compute(n)
	policies := spec.Mine(snap, n, spec.Options{
		Services:    []spec.Service{{Proto: netmodel.ICMP}, {Proto: netmodel.TCP, Port: 80}},
		Sensitive:   sensitive,
		MaxPolicies: 21,
	})

	s := &Scenario{
		Name:      "enterprise",
		Network:   n,
		Configs:   render(n),
		Policies:  policies,
		Sensitive: sensitive,
	}
	s.Issues = enterpriseIssues()
	return s
}

// enterpriseIssues returns the three pilot-study issues with their
// prepared command scripts (diagnosis first, fix last — the paper scripts
// commands to keep the comparison about workflow overhead, not expertise).
func enterpriseIssues() []Issue {
	vlanFault := ticket.WrongAccessVLAN("sw2", "Gi1/0/1", 30, 20)
	vlan := Issue{
		Name: "vlan", Fault: vlanFault,
		SrcHost: "h2", DstHost: "h3", Proto: netmodel.ICMP,
		Script: append([]ticket.FixCommand{
			{Device: "h2", Line: "ping h3"},
			{Device: "h2", Line: "traceroute h3"},
			{Device: "sw1", Line: "show vlan"},
			{Device: "sw1", Line: "show interfaces"},
			{Device: "sw1", Line: "show ip route"},
			{Device: "sw2", Line: "show vlan"},
			{Device: "sw2", Line: "show interfaces Gi1/0/1"},
			{Device: "sw2", Line: "show running-config"},
		}, vlanFault.Fix...),
	}
	vlan.Script = append(vlan.Script, ticket.FixCommand{Device: "h2", Line: "ping h3"})

	ospfFault := ticket.OSPFPassive("r7", "Gi0/0")
	ospf := Issue{
		Name: "ospf", Fault: ospfFault,
		SrcHost: "h5", DstHost: "h6", Proto: netmodel.ICMP,
		Script: append([]ticket.FixCommand{
			{Device: "h5", Line: "ping h6"},
			{Device: "r6", Line: "show ip route"},
			{Device: "r4", Line: "show ip route"},
			{Device: "r4", Line: "show ip ospf neighbor"},
			{Device: "r7", Line: "show ip ospf neighbor"},
			{Device: "r7", Line: "show running-config"},
		}, ospfFault.Fix...),
	}
	ospf.Script = append(ospf.Script, ticket.FixCommand{Device: "h5", Line: "ping h6"})

	ispFault := ticket.BadStaticRoute("r3", pfx("0.0.0.0/0"), ip("10.0.6.9"), ip("10.0.2.1"))
	isp := Issue{
		Name: "isp", Fault: ispFault,
		SrcHost: "h4", DstHost: "ext-www", Proto: netmodel.TCP, DstPort: 80,
		Script: append([]ticket.FixCommand{
			{Device: "h4", Line: "ping ext-www tcp 80"},
			{Device: "r5", Line: "show ip route"},
			{Device: "r3", Line: "show ip route"},
		}, ispFault.Fix...),
	}
	isp.Script = append(isp.Script, ticket.FixCommand{Device: "h4", Line: "ping ext-www tcp 80"})

	return []Issue{vlan, ospf, isp}
}
