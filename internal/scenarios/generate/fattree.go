package generate

import (
	"fmt"

	"heimdall/internal/netmodel"
	"heimdall/internal/scenarios"
	"heimdall/internal/spec"
	"heimdall/internal/ticket"
)

// FatTreeParams sizes the datacenter generator.
type FatTreeParams struct {
	// K is the fat-tree arity: K pods of K/2 aggregation routers and K/2
	// top-of-rack switches, (K/2)^2 cores, K/2 hosts per rack. Clamped to
	// an even value in [4, 16]. K=8 yields 80 switches/routers and 128
	// hosts; K=16 yields 320 and 1024.
	K int
	// Seed varies the sampled cross-pod slice of the mined policy set.
	Seed int64
	// CrossSample overrides the cross-pod mining rate (0 = default:
	// exhaustive at K=4, 4% above).
	CrossSample float64
}

func (p *FatTreeParams) normalize() {
	if p.K < 4 {
		p.K = 4
	}
	if p.K > 16 {
		p.K = 16
	}
	p.K &^= 1
	if p.CrossSample == 0 {
		if p.K <= 4 {
			p.CrossSample = 1
		} else {
			p.CrossSample = 0.04
		}
	}
}

// FatTree builds a k-ary fat-tree datacenter scenario: (k/2)^2 core
// routers in k/2 groups, k pods of k/2 aggregation routers and k/2
// top-of-rack L3 access switches, and k/2 hosts per rack sharing the
// rack's VLAN. Core<g,j> links to pod p's aggregation router g, and every
// pod is a full agg-edge bipartite graph, so every cross-pod path has k/2
// equal-cost uplink choices at the rack and pod layers — the ECMP-heavy
// regime the partitioned SPF and FIB interning are sized for.
//
// OSPF areas follow the physical hierarchy: the core-agg backbone is area
// 0 (aggregation routers are the ABRs), pod p is area p+1, rack subnets
// are passive SVIs. Addressing: backbone /30s under 10.192.0.0/11, pod
// p's /30s inside 10.224.<p>.0/24, rack p/i at 10.<p>.<i>.0/24. The
// aggregation routers carry `area range` statements summarizing each pod
// (10.<p>.0.0/16 + 10.224.<p>.0/24) toward the backbone and the backbone
// (10.192.0.0/11) toward the pods, so a single link fault stays invisible
// outside its own area — the property the incremental Derive path exploits.
func FatTree(params FatTreeParams) *scenarios.Scenario {
	params.normalize()
	k := params.K
	half := k / 2
	n := netmodel.NewNetwork(fmt.Sprintf("fattree-k%d", k))

	core := func(g, j int) string { return fmt.Sprintf("c%d-%d", g, j) }
	agg := func(p, g int) string { return fmt.Sprintf("a%d-%d", p, g) }
	edge := func(p, i int) string { return fmt.Sprintf("e%d-%d", p, i) }
	host := func(p, i, j int) string { return fmt.Sprintf("h%d-%d-%d", p, i, j) }

	for g := 0; g < half; g++ {
		for j := 0; j < half; j++ {
			n.AddDevice(core(g, j), netmodel.Router)
		}
	}
	for p := 0; p < k; p++ {
		for g := 0; g < half; g++ {
			n.AddDevice(agg(p, g), netmodel.Router)
		}
		for i := 0; i < half; i++ {
			sw := n.AddDevice(edge(p, i), netmodel.Switch)
			sw.VLANs[10] = &netmodel.VLAN{ID: 10, Name: "rack"}
			svi := sw.AddInterface("Vlan10")
			svi.Addr = prefix4(10, byte(p), byte(i), 1, 24)
			for j := 0; j < half; j++ {
				n.AddDevice(host(p, i, j), netmodel.Host)
			}
		}
	}

	// Backbone: core<g,j> to every pod's aggregation router g.
	li := 0
	for g := 0; g < half; g++ {
		for j := 0; j < half; j++ {
			for p := 0; p < k; p++ {
				link30(n, core(g, j), fmt.Sprintf("Gi0/%d", p),
					agg(p, g), fmt.Sprintf("Gi0/%d", j), linkBase(192, li))
				li++
			}
		}
	}
	// Pods: full agg-edge bipartite graph, then racks. Pod p's link /30s
	// all sit inside 10.224.<p>.0/24 ((k/2)^2 <= 64 links per pod) so the
	// pod range statements below can summarize them.
	for p := 0; p < k; p++ {
		lp := 0
		for g := 0; g < half; g++ {
			for i := 0; i < half; i++ {
				link30(n, agg(p, g), fmt.Sprintf("Gi1/%d", i),
					edge(p, i), fmt.Sprintf("Gi0/%d", g), linkBase(224, p*64+lp))
				lp++
			}
		}
		for i := 0; i < half; i++ {
			for j := 0; j < half; j++ {
				attachLAN(n, host(p, i, j), edge(p, i), fmt.Sprintf("Gi1/%d", j),
					10, n.Devices[edge(p, i)].Interface("Vlan10").Addr, byte(10+j))
			}
		}
	}

	// OSPF: backbone range in area 0, pod p's ranges in area p+1.
	backbone := netmodel.OSPFNetwork{Prefix: prefix4(10, 192, 0, 0, 11), Area: 0}
	podRange := prefix4(10, 224, 0, 0, 11)
	rackRange := prefix4(10, 0, 0, 0, 12)
	for g := 0; g < half; g++ {
		for j := 0; j < half; j++ {
			n.Devices[core(g, j)].OSPF = &netmodel.OSPFProcess{
				ProcessID: 1, RouterID: addr4(1, byte(g), byte(j), 1),
				Networks: []netmodel.OSPFNetwork{backbone},
				Passive:  map[string]bool{},
			}
		}
	}
	for p := 0; p < k; p++ {
		for g := 0; g < half; g++ {
			n.Devices[agg(p, g)].OSPF = &netmodel.OSPFProcess{
				ProcessID: 1, RouterID: addr4(2, byte(p), byte(g), 1),
				Networks: []netmodel.OSPFNetwork{
					{Prefix: podRange, Area: p + 1}, backbone,
				},
				// ABR summaries: the pod collapses to two aggregates toward
				// the backbone, the backbone to one toward the pod.
				Ranges: []netmodel.OSPFNetwork{
					{Prefix: prefix4(10, byte(p), 0, 0, 16), Area: p + 1},
					{Prefix: prefix4(10, 224, byte(p), 0, 24), Area: p + 1},
					{Prefix: prefix4(10, 192, 0, 0, 11), Area: 0},
				},
				Passive: map[string]bool{},
			}
		}
		for i := 0; i < half; i++ {
			n.Devices[edge(p, i)].OSPF = &netmodel.OSPFProcess{
				ProcessID: 1, RouterID: addr4(3, byte(p), byte(i), 1),
				Networks: []netmodel.OSPFNetwork{
					{Prefix: podRange, Area: p + 1},
					{Prefix: rackRange, Area: p + 1},
				},
				Passive: map[string]bool{"Vlan10": true},
			}
		}
	}

	// Rack 0-0 is the storage rack: sensitive, reachable on ssh from the
	// admin rack (0-1) only. The guard hangs on the storage rack's SVI.
	sensitive := make(map[string]bool, half)
	for j := 0; j < half; j++ {
		sensitive[host(0, 0, j)] = true
	}
	guard := n.Devices[edge(0, 0)].ACL("STORAGE-GUARD", true)
	guard.InsertEntry(netmodel.ACLEntry{Seq: 10, Action: netmodel.Permit, Proto: netmodel.TCP,
		Src: prefix4(10, 0, 1, 0, 24), Dst: prefix4(10, 0, 0, 0, 24), DstPort: 22})
	guard.InsertEntry(netmodel.ACLEntry{Seq: 20, Action: netmodel.Deny, Proto: netmodel.AnyProto,
		Dst: prefix4(10, 0, 0, 0, 24)})
	guard.InsertEntry(netmodel.ACLEntry{Seq: 30, Action: netmodel.Permit})
	n.Devices[edge(0, 0)].Interface("Vlan10").ACLOut = "STORAGE-GUARD"

	// Mining partition: one partition per pod. Intra-pod pairs are probed
	// exhaustively; cross-pod pairs are sampled (the pods are symmetric, so
	// the sample pins the same behaviour classes).
	partition := make(map[string]string, k*half*half)
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			for j := 0; j < half; j++ {
				partition[host(p, i, j)] = fmt.Sprintf("pod%d", p)
			}
		}
	}

	issues := fatTreeIssues(host, edge, half)
	return finish(n.Name, n, sensitive, spec.Options{
		Services:    []spec.Service{{Proto: netmodel.ICMP}, {Proto: netmodel.TCP, Port: 22}},
		Sensitive:   sensitive,
		MaxPolicies: 400,
		Partition:   partition,
		CrossSample: params.CrossSample,
		Seed:        params.Seed,
	}, issues)
}

// fatTreeIssues scripts the scenario's three ticket classes. Single-link
// faults are invisible to reachability on this fabric (ECMP reroutes), so
// each issue is a device-scoped misconfiguration that actually strands
// traffic.
func fatTreeIssues(host func(p, i, j int) string, edge func(p, i int) string, half int) []scenarios.Issue {
	// Over-tight storage guard: an extra deny locks the admin rack out.
	aclFault := ticket.ACLDeny(edge(0, 0), "STORAGE-GUARD", 5, prefix4(10, 0, 0, 10, 32), 22)
	acl := scenarios.Issue{
		Name: "acl", Fault: aclFault,
		SrcHost: host(0, 1, 0), DstHost: host(0, 0, 0),
		Proto: netmodel.TCP, DstPort: 22,
	}
	script(&acl,
		ticket.FixCommand{Device: edge(0, 0), Line: "show access-lists STORAGE-GUARD"},
		ticket.FixCommand{Device: edge(0, 0), Line: "show running-config"},
	)

	// Botched passive-interface rollout on a ToR: all uplinks silenced,
	// stranding the rack despite the fabric's redundancy.
	uplinks := make([]string, half)
	for g := 0; g < half; g++ {
		uplinks[g] = fmt.Sprintf("Gi0/%d", g)
	}
	ospfFault := passiveAllFault(edge(1, 0), uplinks, "10.1.0.0/24")
	ospf := scenarios.Issue{
		Name: "ospf", Fault: ospfFault,
		SrcHost: host(0, 0, 0), DstHost: host(1, 0, 0), Proto: netmodel.ICMP,
	}
	script(&ospf,
		ticket.FixCommand{Device: edge(1, 0), Line: "show ip ospf neighbor"},
		ticket.FixCommand{Device: edge(1, 0), Line: "show running-config"},
	)

	// Classic access-port VLAN mistake on another rack.
	vlanFault := ticket.WrongAccessVLAN(edge(2, 0), "Gi1/0", 999, 10)
	vlan := scenarios.Issue{
		Name: "vlan", Fault: vlanFault,
		SrcHost: host(0, 0, 0), DstHost: host(2, 0, 0), Proto: netmodel.ICMP,
	}
	script(&vlan,
		ticket.FixCommand{Device: edge(2, 0), Line: "show vlan"},
		ticket.FixCommand{Device: edge(2, 0), Line: "show running-config"},
	)

	return []scenarios.Issue{acl, ospf, vlan}
}
