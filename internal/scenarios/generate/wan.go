package generate

import (
	"fmt"

	"heimdall/internal/netmodel"
	"heimdall/internal/scenarios"
	"heimdall/internal/spec"
	"heimdall/internal/ticket"
)

// WANParams sizes the multi-site enterprise WAN generator.
type WANParams struct {
	// Sites is the number of branch sites hanging off the HQ hubs
	// (clamped to [4, 14], default 6).
	Sites int
	// Seed varies the sampled cross-site slice of the mined policies.
	Seed int64
	// CrossSample overrides the cross-site mining rate (default 0.5).
	CrossSample float64
}

func (p *WANParams) normalize() {
	if p.Sites == 0 {
		p.Sites = 6
	}
	if p.Sites < 4 {
		p.Sites = 4
	}
	if p.Sites > 14 {
		p.Sites = 14
	}
	if p.CrossSample == 0 {
		p.CrossSample = 0.5
	}
}

// WAN builds a multi-site enterprise WAN scenario: two HQ hub routers in
// OSPF area 0 (each with a datacenter subnet), and per branch site a pair
// of site routers — the site's ABRs, one uplinked to each hub — plus an
// access switch serving two host VLANs. Site s is area s; the site-router
// pair is joined by TWO parallel equal-cost links, so losing either one
// changes no intra-site distance and no ABR summary — the change stays
// fingerprint-local to the site's area while every other area's SPF
// results are reused verbatim (the localization case PERFORMANCE.md §6
// measures).
//
// Addressing: WAN /30s under 10.250.0.0/16 (area 0), HQ datacenter
// subnets under 10.50.0.0/16, site s under 10.<100+s>.0.0/16.
func WAN(params WANParams) *scenarios.Scenario {
	params.normalize()
	sites := params.Sites
	n := netmodel.NewNetwork(fmt.Sprintf("wan-s%d", sites))

	hub := func(r int) string { return fmt.Sprintf("hub%d", r) }
	sr := func(s, r int) string { return fmt.Sprintf("sr%d-%d", s, r) }
	ar := func(s int) string { return fmt.Sprintf("ar%d", s) }
	host := func(s, j int) string { return fmt.Sprintf("hs%d-%d", s, j) }

	wanRange := prefix4(10, 250, 0, 0, 16)
	dcRange := prefix4(10, 50, 0, 0, 16)
	siteRange := func(s int) netmodel.OSPFNetwork {
		return netmodel.OSPFNetwork{Prefix: prefix4(10, byte(100+s), 0, 0, 16), Area: s}
	}

	for r := 0; r < 2; r++ {
		h := n.AddDevice(hub(r), netmodel.Router)
		h.OSPF = &netmodel.OSPFProcess{
			ProcessID: 1, RouterID: addr4(6, 0, byte(r), 1),
			Networks: []netmodel.OSPFNetwork{
				{Prefix: wanRange, Area: 0}, {Prefix: dcRange, Area: 0},
			},
			Passive: map[string]bool{"Gi2/0": true},
		}
		n.AddDevice(fmt.Sprintf("hq-%d", r), netmodel.Host)
		attach(n, fmt.Sprintf("hq-%d", r), hub(r), "Gi2/0", addr4(10, 50, byte(1+r), 0), 10)
	}
	// Redundant hub interconnect (two parallel equal-cost links).
	link30(n, hub(0), "Gi0/0", hub(1), "Gi0/0", addr4(10, 250, 0, 0))
	link30(n, hub(0), "Gi0/1", hub(1), "Gi0/1", addr4(10, 250, 0, 4))

	wl := 2 // WAN /30 link counter, 10.250.<wl>.0
	for s := 1; s < sites; s++ {
		blk := byte(100 + s)
		for r := 0; r < 2; r++ {
			d := n.AddDevice(sr(s, r), netmodel.Router)
			d.OSPF = &netmodel.OSPFProcess{
				ProcessID: 1, RouterID: addr4(6, byte(s), byte(r), 1),
				Networks:  []netmodel.OSPFNetwork{siteRange(s), {Prefix: wanRange, Area: 0}},
				// ABR summaries: the site collapses to one aggregate toward
				// the backbone; the WAN core and the HQ datacenters collapse
				// to one aggregate each toward the site.
				Ranges: []netmodel.OSPFNetwork{
					{Prefix: prefix4(10, blk, 0, 0, 16), Area: s},
					{Prefix: wanRange, Area: 0},
					{Prefix: dcRange, Area: 0},
				},
				Passive: map[string]bool{},
			}
		}
		sw := n.AddDevice(ar(s), netmodel.Switch)
		sw.OSPF = &netmodel.OSPFProcess{
			ProcessID: 1, RouterID: addr4(6, byte(s), 9, 1),
			Networks:  []netmodel.OSPFNetwork{siteRange(s)},
			Passive:   map[string]bool{"Vlan10": true, "Vlan20": true},
		}
		for vi, vlan := range []int{10, 20} {
			sw.VLANs[vlan] = &netmodel.VLAN{ID: vlan, Name: fmt.Sprintf("lan%d", vi+1)}
			svi := sw.AddInterface(fmt.Sprintf("Vlan%d", vlan))
			svi.Addr = prefix4(10, blk, byte(1+vi), 1, 24)
		}

		// WAN uplinks: one site router to each hub.
		link30(n, sr(s, 0), "Gi0/0", hub(0), fmt.Sprintf("Gi1/%d", s), addr4(10, 250, byte(wl), 0))
		wl++
		link30(n, sr(s, 1), "Gi0/0", hub(1), fmt.Sprintf("Gi1/%d", s), addr4(10, 250, byte(wl), 0))
		wl++
		// Intra-site: the parallel site-router pair, then the access switch
		// dual-homed to both site routers.
		link30(n, sr(s, 0), "Gi0/1", sr(s, 1), "Gi0/1", addr4(10, blk, 255, 0))
		link30(n, sr(s, 0), "Gi0/2", sr(s, 1), "Gi0/2", addr4(10, blk, 255, 4))
		link30(n, sr(s, 0), "Gi1/0", ar(s), "Gi0/0", addr4(10, blk, 255, 8))
		link30(n, sr(s, 1), "Gi1/0", ar(s), "Gi0/1", addr4(10, blk, 255, 12))

		for j := 0; j < 4; j++ {
			vlan := 10 + 10*(j/2)
			n.AddDevice(host(s, j), netmodel.Host)
			attachLAN(n, host(s, j), ar(s), fmt.Sprintf("Gi1/%d", j), vlan,
				sw.Interface(fmt.Sprintf("Vlan%d", vlan)).Addr, byte(10+j%2))
		}
	}

	// hq-0 is the sensitive records server: https from site 1 only.
	sensitive := map[string]bool{"hq-0": true}
	guard := n.Devices[hub(0)].ACL("RECORDS-GUARD", true)
	guard.InsertEntry(netmodel.ACLEntry{Seq: 10, Action: netmodel.Permit, Proto: netmodel.TCP,
		Src: prefix4(10, 101, 0, 0, 16), Dst: prefix4(10, 50, 1, 0, 24), DstPort: 443})
	guard.InsertEntry(netmodel.ACLEntry{Seq: 20, Action: netmodel.Deny, Proto: netmodel.AnyProto,
		Dst: prefix4(10, 50, 1, 0, 24)})
	guard.InsertEntry(netmodel.ACLEntry{Seq: 30, Action: netmodel.Permit})
	n.Devices[hub(0)].Interface("Gi2/0").ACLOut = "RECORDS-GUARD"

	partition := map[string]string{"hq-0": "hq", "hq-1": "hq"}
	for s := 1; s < sites; s++ {
		for j := 0; j < 4; j++ {
			partition[host(s, j)] = fmt.Sprintf("site%d", s)
		}
	}

	issues := wanIssues(hub, ar, host)
	return finish(n.Name, n, sensitive, spec.Options{
		Services:    []spec.Service{{Proto: netmodel.ICMP}, {Proto: netmodel.TCP, Port: 443}},
		Sensitive:   sensitive,
		MaxPolicies: 250,
		Partition:   partition,
		CrossSample: params.CrossSample,
		Seed:        params.Seed,
	}, issues)
}

// wanIssues scripts the scenario's three ticket classes.
func wanIssues(hub func(int) string, ar func(int) string, host func(s, j int) string) []scenarios.Issue {
	// Over-tight records guard at HQ.
	aclFault := ticket.ACLDeny(hub(0), "RECORDS-GUARD", 5, prefix4(10, 50, 1, 10, 32), 443)
	acl := scenarios.Issue{
		Name: "acl", Fault: aclFault,
		SrcHost: host(1, 0), DstHost: "hq-0", Proto: netmodel.TCP, DstPort: 443,
	}
	script(&acl,
		ticket.FixCommand{Device: hub(0), Line: "show access-lists RECORDS-GUARD"},
		ticket.FixCommand{Device: hub(0), Line: "show running-config"},
	)

	// A desk move left site 2's first access port shut down.
	ifFault := ticket.InterfaceDown(ar(2), "Gi1/0")
	iface := scenarios.Issue{
		Name: "interface", Fault: ifFault,
		SrcHost: host(1, 0), DstHost: host(2, 0), Proto: netmodel.ICMP,
	}
	script(&iface,
		ticket.FixCommand{Device: ar(2), Line: "show interfaces"},
	)

	// Botched passive-interface rollout on site 3's access switch: both
	// uplinks silenced, the site's LANs vanish from the WAN.
	ospfFault := passiveAllFault(ar(3), []string{"Gi0/0", "Gi0/1"}, "site 3")
	ospf := scenarios.Issue{
		Name: "ospf", Fault: ospfFault,
		SrcHost: host(1, 0), DstHost: host(3, 0), Proto: netmodel.ICMP,
	}
	script(&ospf,
		ticket.FixCommand{Device: ar(3), Line: "show ip ospf neighbor"},
		ticket.FixCommand{Device: ar(3), Line: "show running-config"},
	)

	return []scenarios.Issue{acl, iface, ospf}
}
