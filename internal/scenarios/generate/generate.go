// Package generate synthesizes datacenter- and provider-scale evaluation
// networks: a k-ary fat-tree datacenter, an ISP backbone with many eBGP
// customer attachments, and a multi-site enterprise WAN. Where package
// scenarios hand-builds the paper's Table 1 networks, these generators are
// parametric and deterministic — the same parameters and seed always
// produce a byte-identical Scenario (network, rendered configs, mined
// policies, scripted issues) — so sweeps, mining and the multi-tenant
// service consume them exactly like the hand-built ones.
package generate

import (
	"fmt"
	"net/netip"

	"heimdall/internal/config"
	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
	"heimdall/internal/privilege"
	"heimdall/internal/scenarios"
	"heimdall/internal/spec"
	"heimdall/internal/ticket"
)

func addr4(a, b, c, d byte) netip.Addr {
	return netip.AddrFrom4([4]byte{a, b, c, d})
}

func prefix4(a, b, c, d byte, bits int) netip.Prefix {
	return netip.PrefixFrom(addr4(a, b, c, d), bits)
}

// linkBase maps a link index into a /30 inside the 10.<region>.0.0 space:
// 64 links per third octet, 16384 per second octet. Regions are chosen so
// generated address plans never collide (fat-tree backbone 10.192/11,
// fat-tree pods 10.224/11, host subnets under 10.0/12, and so on).
func linkBase(region byte, i int) netip.Addr {
	return addr4(10, region+byte(i/16384), byte((i/64)%256), byte((i%64)*4))
}

// link30 cables a /30 infrastructure link: devA gets .1, devB gets .2.
func link30(n *netmodel.Network, devA, ifA, devB, ifB string, base netip.Addr) {
	n.MustConnect(devA, ifA, devB, ifB)
	b := base.As4()
	n.Devices[devA].Interface(ifA).Addr = netip.PrefixFrom(addr4(b[0], b[1], b[2], b[3]+1), 30)
	n.Devices[devB].Interface(ifB).Addr = netip.PrefixFrom(addr4(b[0], b[1], b[2], b[3]+2), 30)
}

// attach cables a host to a routed port: the gateway side gets .1 of the
// /24, the host gets .last, and the host's default gateway is set.
func attach(n *netmodel.Network, host, dev, itf string, subnet netip.Addr, last byte) {
	n.MustConnect(host, "eth0", dev, itf)
	b := subnet.As4()
	gw := addr4(b[0], b[1], b[2], 1)
	n.Devices[dev].Interface(itf).Addr = netip.PrefixFrom(gw, 24)
	h := n.Devices[host]
	h.Interface("eth0").Addr = netip.PrefixFrom(addr4(b[0], b[1], b[2], last), 24)
	h.DefaultGateway = gw
}

// attachLAN cables a host into an access-port VLAN LAN whose SVI gateway
// already exists on the switch; the host gets .last of the SVI's /24.
func attachLAN(n *netmodel.Network, host, sw, port string, vlan int, svi netip.Prefix, last byte) {
	n.MustConnect(host, "eth0", sw, port)
	p := n.Devices[sw].Interface(port)
	p.Mode = netmodel.Access
	p.AccessVLAN = vlan
	b := svi.Addr().As4()
	h := n.Devices[host]
	h.Interface("eth0").Addr = netip.PrefixFrom(addr4(b[0], b[1], b[2], last), svi.Bits())
	h.DefaultGateway = svi.Addr()
}

func secrets(d *netmodel.Device, seed string) {
	d.Secrets["enable"] = "ENC-" + seed
	d.Secrets["snmp"] = "comm-" + seed
}

func render(n *netmodel.Network) map[string]string {
	out := make(map[string]string, len(n.Devices))
	for name, d := range n.Devices {
		out[name] = config.Print(d)
	}
	return out
}

// finish computes the scenario's baseline snapshot, mines its policy set
// and assembles the Scenario.
func finish(name string, n *netmodel.Network, sensitive map[string]bool,
	opts spec.Options, issues []scenarios.Issue) *scenarios.Scenario {

	for _, r := range n.RoutersAndSwitches() {
		secrets(n.Devices[r], r)
	}
	snap := dataplane.Compute(n)
	return &scenarios.Scenario{
		Name:      name,
		Network:   n,
		Configs:   render(n),
		Policies:  spec.Mine(snap, n, opts),
		Sensitive: sensitive,
		Issues:    issues,
	}
}

// passiveAllFault silences every listed transit interface of one device —
// the botched "passive-interface default" rollout class. Unlike a single
// passive interface, this breaks reachability even on ECMP-redundant
// fabrics, which is what makes it ticketable.
func passiveAllFault(device string, transit []string, stranded string) ticket.Fault {
	fixes := make([]ticket.FixCommand, 0, len(transit))
	for _, ifName := range transit {
		fixes = append(fixes, ticket.FixCommand{Device: device,
			Line: "router ospf no passive-interface " + ifName})
	}
	return ticket.Fault{
		Name:        "ospf-passive-" + device + "-all",
		Kind:        privilege.TaskOSPF,
		Description: fmt.Sprintf("%s marked every transit interface passive; routes to %s lost", device, stranded),
		RootCause:   device,
		Inject: func(net *netmodel.Network) error {
			d := net.Devices[device]
			if d == nil || d.OSPF == nil {
				return fmt.Errorf("generate: %s has no OSPF", device)
			}
			for _, ifName := range transit {
				d.OSPF.Passive[ifName] = true
			}
			return nil
		},
		Fix: fixes,
	}
}

// pingLine renders the console ping a technician opens a ticket with.
func pingLine(issue *scenarios.Issue) ticket.FixCommand {
	line := "ping " + issue.DstHost
	if issue.Proto == netmodel.TCP {
		line = fmt.Sprintf("ping %s tcp %d", issue.DstHost, issue.DstPort)
	}
	return ticket.FixCommand{Device: issue.SrcHost, Line: line}
}

// script assembles the issue's prepared command list: symptom ping,
// diagnosis commands, the fault's fix, and the verification re-ping.
func script(issue *scenarios.Issue, diagnosis ...ticket.FixCommand) {
	s := make([]ticket.FixCommand, 0, len(diagnosis)+len(issue.Fault.Fix)+2)
	s = append(s, pingLine(issue))
	s = append(s, diagnosis...)
	s = append(s, issue.Fault.Fix...)
	s = append(s, pingLine(issue))
	issue.Script = s
}
