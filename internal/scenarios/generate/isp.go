package generate

import (
	"fmt"
	"net/netip"

	"heimdall/internal/netmodel"
	"heimdall/internal/scenarios"
	"heimdall/internal/spec"
	"heimdall/internal/ticket"
)

// ISPParams sizes the provider-backbone generator.
type ISPParams struct {
	// Pops is the number of backbone PoP routers in the core ring
	// (clamped to [4, 16], default 8).
	Pops int
	// CustomersPerPop is the number of eBGP customer attachments per PoP
	// (clamped to [1, 8], default 3).
	CustomersPerPop int
	// Seed varies the sampled cross-customer slice of the mined policies.
	Seed int64
	// CrossSample overrides the cross-customer mining rate (default 0.25).
	CrossSample float64
}

func (p *ISPParams) normalize() {
	if p.Pops == 0 {
		p.Pops = 8
	}
	if p.Pops < 4 {
		p.Pops = 4
	}
	if p.Pops > 16 {
		p.Pops = 16
	}
	if p.CustomersPerPop == 0 {
		p.CustomersPerPop = 3
	}
	if p.CustomersPerPop < 1 {
		p.CustomersPerPop = 1
	}
	if p.CustomersPerPop > 8 {
		p.CustomersPerPop = 8
	}
	if p.CrossSample == 0 {
		p.CrossSample = 0.25
	}
}

// ISP builds a provider-backbone scenario: a ring of PoP routers plus two
// reflector hubs linked to every PoP, and many customer edge routers each
// attached to a PoP over eBGP. Every backbone router runs its own private
// AS (iBGP is out of scope in the dataplane model), so customer routes
// propagate path-vector through the core and concentrate on the hub
// routers — the same route-distribution role route reflectors play in a
// real iBGP mesh. The backbone interior also runs single-area OSPF over
// the infrastructure /30s (10.99.0.0/16); customer blocks are
// 10.<40+n>.0.0/16, originated by each customer edge via BGP.
func ISP(params ISPParams) *scenarios.Scenario {
	params.normalize()
	pops, perPop := params.Pops, params.CustomersPerPop
	customers := pops * perPop
	n := netmodel.NewNetwork(fmt.Sprintf("isp-p%d-c%d", pops, customers))

	pop := func(i int) string { return fmt.Sprintf("p%d", i) }
	rr := func(r int) string { return fmt.Sprintf("rr%d", r) }
	ce := func(c int) string { return fmt.Sprintf("ce%02d", c) }
	host := func(c, j int) string { return fmt.Sprintf("hc%02d-%d", c, j) }
	popAS := func(i int) int { return 64610 + i }
	rrAS := func(r int) int { return 64601 + r }
	ceAS := func(c int) int { return 65001 + c }

	as := make(map[string]int)
	for i := 0; i < pops; i++ {
		n.AddDevice(pop(i), netmodel.Router)
		as[pop(i)] = popAS(i)
	}
	for r := 0; r < 2; r++ {
		n.AddDevice(rr(r), netmodel.Router)
		as[rr(r)] = rrAS(r)
	}
	for c := 0; c < customers; c++ {
		n.AddDevice(ce(c), netmodel.Router)
		as[ce(c)] = ceAS(c)
		n.AddDevice(host(c, 1), netmodel.Host)
		n.AddDevice(host(c, 2), netmodel.Host)
	}

	// BGP processes first, so link construction can add the neighbor
	// statements for both ends in one place.
	for name, a := range as {
		d := n.Devices[name]
		d.BGP = &netmodel.BGPProcess{LocalAS: a, RouterID: addr4(9, 9, byte(a%256), byte(a/256))}
	}
	bgpLink := func(devA, ifA, devB, ifB string, base netip.Addr) {
		link30(n, devA, ifA, devB, ifB, base)
		aItf := n.Devices[devA].Interface(ifA).Addr.Addr()
		bItf := n.Devices[devB].Interface(ifB).Addr.Addr()
		n.Devices[devA].BGP.SetNeighbor(bItf, as[devB])
		n.Devices[devB].BGP.SetNeighbor(aItf, as[devA])
	}

	// Core: PoP ring plus both hubs linked to every PoP.
	li := 0
	infra := func() netip.Addr { b := addr4(10, 99, byte(li), 0); li++; return b }
	for i := 0; i < pops; i++ {
		bgpLink(pop(i), "Gi0/0", pop((i+1)%pops), "Gi0/1", infra())
	}
	for r := 0; r < 2; r++ {
		for i := 0; i < pops; i++ {
			bgpLink(rr(r), fmt.Sprintf("Gi0/%d", i), pop(i), fmt.Sprintf("Gi1/%d", r), infra())
		}
	}
	bgpLink(rr(0), fmt.Sprintf("Gi0/%d", pops), rr(1), fmt.Sprintf("Gi0/%d", pops), infra())

	// Customers: eBGP attachment on 10.<40+c>.255.0/30, two host subnets,
	// the /16 aggregate originated at the edge.
	for c := 0; c < customers; c++ {
		p := c % pops
		blk := byte(40 + c)
		bgpLink(pop(p), fmt.Sprintf("Gi2/%d", c/pops), ce(c), "Gi0/0", addr4(10, blk, 255, 0))
		attach(n, host(c, 1), ce(c), "Gi0/1", addr4(10, blk, 1, 0), 10)
		attach(n, host(c, 2), ce(c), "Gi0/2", addr4(10, blk, 2, 0), 10)
		n.Devices[ce(c)].BGP.Networks = []netip.Prefix{prefix4(10, blk, 0, 0, 16)}
	}

	// Backbone interior IGP over the infrastructure range.
	for i := 0; i < pops; i++ {
		n.Devices[pop(i)].OSPF = &netmodel.OSPFProcess{
			ProcessID: 1, RouterID: addr4(5, 0, byte(i), 1),
			Networks: []netmodel.OSPFNetwork{{Prefix: prefix4(10, 99, 0, 0, 16), Area: 0}},
			Passive:  map[string]bool{},
		}
	}
	for r := 0; r < 2; r++ {
		n.Devices[rr(r)].OSPF = &netmodel.OSPFProcess{
			ProcessID: 1, RouterID: addr4(5, 1, byte(r), 1),
			Networks: []netmodel.OSPFNetwork{{Prefix: prefix4(10, 99, 0, 0, 16), Area: 0}},
			Passive:  map[string]bool{},
		}
	}

	// Customer 1 hosts the billing service: https from customer 0's first
	// subnet only, guarded at the customer edge's uplink.
	sensitive := map[string]bool{host(1, 2): true}
	guard := n.Devices[ce(1)].ACL("BILLING-GUARD", true)
	guard.InsertEntry(netmodel.ACLEntry{Seq: 10, Action: netmodel.Permit, Proto: netmodel.TCP,
		Src: prefix4(10, 40, 1, 0, 24), Dst: prefix4(10, 41, 2, 0, 24), DstPort: 443})
	guard.InsertEntry(netmodel.ACLEntry{Seq: 20, Action: netmodel.Deny, Proto: netmodel.AnyProto,
		Dst: prefix4(10, 41, 2, 0, 24)})
	guard.InsertEntry(netmodel.ACLEntry{Seq: 30, Action: netmodel.Permit})
	n.Devices[ce(1)].Interface("Gi0/0").ACLIn = "BILLING-GUARD"

	partition := make(map[string]string, 2*customers)
	for c := 0; c < customers; c++ {
		partition[host(c, 1)] = fmt.Sprintf("c%02d", c)
		partition[host(c, 2)] = fmt.Sprintf("c%02d", c)
	}

	issues := ispIssues(ce, host, popAS(0))
	return finish(n.Name, n, sensitive, spec.Options{
		Services:    []spec.Service{{Proto: netmodel.ICMP}, {Proto: netmodel.TCP, Port: 443}},
		Sensitive:   sensitive,
		MaxPolicies: 300,
		Partition:   partition,
		CrossSample: params.CrossSample,
		Seed:        params.Seed,
	}, issues)
}

// ispIssues scripts the scenario's three ticket classes.
func ispIssues(ce func(int) string, host func(c, j int) string, pop0AS int) []scenarios.Issue {
	// The provider renumbered its PoP ASes and customer 0's side of the
	// peering was fat-fingered.
	bgpFault := ticket.BGPWrongAS(ce(0), 65001, addr4(10, 40, 255, 1), pop0AS+80, pop0AS)
	bgp := scenarios.Issue{
		Name: "bgp", Fault: bgpFault,
		SrcHost: host(0, 1), DstHost: host(4, 1), Proto: netmodel.ICMP,
	}
	script(&bgp,
		ticket.FixCommand{Device: ce(0), Line: "show ip bgp"},
		ticket.FixCommand{Device: ce(0), Line: "show running-config"},
	)

	// An over-tight ACL edit locked the authorized client out of billing.
	aclFault := ticket.ACLDeny(ce(1), "BILLING-GUARD", 5, prefix4(10, 41, 2, 10, 32), 443)
	acl := scenarios.Issue{
		Name: "acl", Fault: aclFault,
		SrcHost: host(0, 1), DstHost: host(1, 2), Proto: netmodel.TCP, DstPort: 443,
	}
	script(&acl,
		ticket.FixCommand{Device: ce(1), Line: "show access-lists BILLING-GUARD"},
	)

	// A maintenance window left customer 2's uplink shut down.
	ifFault := ticket.InterfaceDown(ce(2), "Gi0/0")
	iface := scenarios.Issue{
		Name: "interface", Fault: ifFault,
		SrcHost: host(0, 1), DstHost: host(2, 1), Proto: netmodel.ICMP,
	}
	script(&iface,
		ticket.FixCommand{Device: ce(2), Line: "show interfaces"},
	)

	return []scenarios.Issue{bgp, acl, iface}
}
