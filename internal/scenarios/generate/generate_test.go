package generate_test

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"heimdall/internal/attacksurface"
	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
	"heimdall/internal/scenarios"
	"heimdall/internal/scenarios/generate"
	"heimdall/internal/spec"
)

// serialize renders a scenario into one deterministic byte string: device
// configs in name order, the mined policy set, and the issue scripts.
func serialize(s *scenarios.Scenario) string {
	var b strings.Builder
	fmt.Fprintf(&b, "name=%s\n", s.Name)
	names := make([]string, 0, len(s.Configs))
	for name := range s.Configs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "== %s ==\n%s\n", name, s.Configs[name])
	}
	for _, p := range s.Policies {
		fmt.Fprintf(&b, "policy %+v\n", p)
	}
	for _, is := range s.Issues {
		fmt.Fprintf(&b, "issue %s src=%s dst=%s proto=%d port=%d\n",
			is.Name, is.SrcHost, is.DstHost, is.Proto, is.DstPort)
		for _, cmd := range is.Script {
			fmt.Fprintf(&b, "  %s: %s\n", cmd.Device, cmd.Line)
		}
	}
	return b.String()
}

// TestGeneratorDeterminism pins the generators' core contract: the same
// parameters and seed always produce a byte-identical scenario.
func TestGeneratorDeterminism(t *testing.T) {
	builds := map[string]func() *scenarios.Scenario{
		"fattree": func() *scenarios.Scenario { return generate.FatTree(generate.FatTreeParams{K: 4, Seed: 7}) },
		"isp": func() *scenarios.Scenario {
			return generate.ISP(generate.ISPParams{Pops: 4, CustomersPerPop: 2, Seed: 7})
		},
		"wan": func() *scenarios.Scenario { return generate.WAN(generate.WANParams{Sites: 4, Seed: 7}) },
	}
	for name, build := range builds {
		t.Run(name, func(t *testing.T) {
			a, b := serialize(build()), serialize(build())
			if a != b {
				t.Fatalf("two builds with identical params diverged (len %d vs %d)", len(a), len(b))
			}
			if len(a) == 0 {
				t.Fatal("empty serialization")
			}
		})
	}
}

// TestFatTreeECMP checks the fabric delivers every leaf pair and that
// cross-pod routes really are ECMP: each top-of-rack's route to a remote
// rack subnet must spread over all k/2 uplinks.
func TestFatTreeECMP(t *testing.T) {
	const k, half = 4, 2
	scen := generate.FatTree(generate.FatTreeParams{K: k})
	snap := dataplane.Compute(scen.Network)

	hosts := scen.Network.Hosts()
	if want := k * half * half; len(hosts) != want {
		t.Fatalf("host count = %d, want %d", len(hosts), want)
	}
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			tr, err := snap.Reach(src, dst, netmodel.ICMP, 0)
			if err != nil {
				t.Fatalf("Reach(%s, %s): %v", src, dst, err)
			}
			if scen.Sensitive[dst] && !strings.HasPrefix(src, "h0-0-") {
				// The storage guard isolates the sensitive rack from
				// everything but admin-rack ssh.
				if tr.Delivered() {
					t.Errorf("%s -> %s delivered past the storage guard: %s", src, dst, tr)
				}
				continue
			}
			if !tr.Delivered() {
				t.Errorf("%s -> %s not delivered: %s", src, dst, tr)
			}
		}
	}
	// The one flow the guard admits: admin-rack ssh into storage.
	if tr, err := snap.Reach("h0-1-0", "h0-0-0", netmodel.TCP, 22); err != nil || !tr.Delivered() {
		t.Fatalf("admin ssh into storage not delivered: %v %s", err, tr)
	}

	// Remote pods arrive as the ABRs' summarized /16 (area ranges collapse
	// each pod's racks to one aggregate), and the summary must still carry
	// k/2 next hops on k/2 distinct uplink interfaces. Same-pod remote racks
	// stay intra-area per-prefix /24s, ECMP'd the same way.
	ecmp := func(tor, want string) {
		t.Helper()
		outIfs := map[string]bool{}
		for _, e := range snap.RIB(tor) {
			if e.Proto == dataplane.OSPF && e.Prefix.String() == want {
				outIfs[e.OutIf] = true
			}
		}
		if len(outIfs) != half {
			t.Fatalf("%s route to %s uses %d uplinks (%v), want %d",
				tor, want, len(outIfs), outIfs, half)
		}
	}
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			tor := fmt.Sprintf("e%d-%d", p, i)
			for rp := 0; rp < k; rp++ {
				if rp != p {
					ecmp(tor, fmt.Sprintf("10.%d.0.0/16", rp))
					continue
				}
				for ri := 0; ri < half; ri++ {
					if ri != i {
						ecmp(tor, fmt.Sprintf("10.%d.%d.0/24", rp, ri))
					}
				}
			}
		}
	}
}

// TestGeneratedDeriveOracle extends the Derive ≡ Compute oracle to a
// generated scenario: on the k=4 fat-tree, a derived snapshot must match a
// from-scratch compute for the mutation classes the scale benchmarks lean
// on — including the backbone link shutdown used as the derive_l3topo
// timing mutation.
func TestGeneratedDeriveOracle(t *testing.T) {
	scen := generate.FatTree(generate.FatTreeParams{K: 4})
	base := scen.Network
	snap := dataplane.Compute(base)

	cases := []struct {
		name   string
		device string
		kind   dataplane.ChangeKind
		apply  func(d *netmodel.Device)
	}{
		{
			// The scale-tier bench mutation: a core-agg backbone link down.
			name: "backbone-link-down", device: "c0-0", kind: dataplane.ChangeL3Topology,
			apply: func(d *netmodel.Device) { d.Interfaces["Gi0/0"].Shutdown = true },
		},
		{
			name: "pod-link-down", device: "a1-0", kind: dataplane.ChangeL3Topology,
			apply: func(d *netmodel.Device) { d.Interfaces["Gi1/0"].Shutdown = true },
		},
		{
			name: "tor-ospf-cost", device: "e2-1", kind: dataplane.ChangeOSPF,
			apply: func(d *netmodel.Device) { d.Interfaces["Gi0/0"].OSPFCost = 9 },
		},
		{
			name: "tor-acl-deny", device: "e0-0", kind: dataplane.ChangeACL,
			apply: func(d *netmodel.Device) {
				d.ACL("STORAGE-GUARD", false).InsertEntry(netmodel.ACLEntry{
					Seq: 1, Action: netmodel.Deny, Proto: netmodel.AnyProto,
				})
			},
		},
		{
			name: "rack-vlan-move", device: "e3-0", kind: dataplane.ChangeL2,
			apply: func(d *netmodel.Device) { d.Interfaces["Gi1/0"].AccessVLAN = 999 },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := base.CloneCOW(tc.device)
			tc.apply(mutated.Devices[tc.device])
			derived := snap.Derive(mutated, dataplane.ChangeSet{{Device: tc.device, Kind: tc.kind}})
			full := dataplane.Compute(mutated)
			for _, dev := range mutated.DeviceNames() {
				if !reflect.DeepEqual(derived.RIB(dev), full.RIB(dev)) {
					t.Errorf("%s RIB diverged:\nderived:\n%s\nfull:\n%s",
						dev, derived.FormatRIB(dev), full.FormatRIB(dev))
				}
			}
			for _, src := range mutated.Hosts() {
				for _, dst := range mutated.Hosts() {
					if src == dst {
						continue
					}
					g, gerr := derived.Reach(src, dst, netmodel.ICMP, 0)
					w, werr := full.Reach(src, dst, netmodel.ICMP, 0)
					if (gerr == nil) != (werr == nil) {
						t.Fatalf("%s->%s errors diverged: %v vs %v", src, dst, gerr, werr)
					}
					if gerr != nil {
						continue
					}
					if !reflect.DeepEqual(g, w) {
						t.Errorf("%s->%s trace diverged:\nderived: %s\nfull:    %s", src, dst, g, w)
					}
				}
			}
		})
	}
}

// TestPartitionedMineOracle pins the partitioned miner's degenerate cases
// against the exhaustive baseline: a saturating sample rate (and a nil
// partition map) must reproduce the exact all-pairs policy set.
func TestPartitionedMineOracle(t *testing.T) {
	scen := generate.FatTree(generate.FatTreeParams{K: 4})
	n := scen.Network
	snap := dataplane.Compute(n)

	services := []spec.Service{{Proto: netmodel.ICMP}, {Proto: netmodel.TCP, Port: 22}}
	sensitive := map[string]bool{"h0-0-0": true, "h0-0-1": true}
	partition := make(map[string]string)
	for _, h := range n.Hosts() {
		partition[h] = h[:2] // pod prefix "h0", "h1", ...
	}

	exhaustive := spec.Mine(snap, n, spec.Options{Services: services, Sensitive: sensitive})
	saturated := spec.Mine(snap, n, spec.Options{
		Services: services, Sensitive: sensitive,
		Partition: partition, CrossSample: 1,
	})
	if !reflect.DeepEqual(exhaustive, saturated) {
		t.Fatalf("saturated partitioned mine diverged from exhaustive: %d vs %d policies",
			len(saturated), len(exhaustive))
	}

	// Sampling must shrink the cross-pod slice but keep every intra-pod
	// policy, and stay deterministic in the seed.
	sampled := func(seed int64) []string {
		got := spec.Mine(snap, n, spec.Options{
			Services: services, Sensitive: sensitive,
			Partition: partition, CrossSample: 0.2, Seed: seed,
		})
		keys := make([]string, len(got))
		for i, p := range got {
			keys[i] = fmt.Sprintf("%d|%s|%s|%d|%d", p.Kind, p.Src, p.Dst, p.Proto, p.DstPort)
		}
		return keys
	}
	a, b := sampled(3), sampled(3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sampled mining is not deterministic in the seed")
	}
	if len(a) >= len(exhaustive) {
		t.Fatalf("sampling did not shrink the policy set: %d vs %d", len(a), len(exhaustive))
	}
	seen := make(map[string]bool, len(a))
	for _, k := range a {
		seen[k] = true
	}
	for _, p := range exhaustive {
		if partition[p.Src] == partition[p.Dst] {
			k := fmt.Sprintf("%d|%s|%s|%d|%d", p.Kind, p.Src, p.Dst, p.Proto, p.DstPort)
			if !seen[k] {
				t.Fatalf("intra-pod policy %s missing from sampled set", k)
			}
		}
	}
}

// TestGeneratedIssuesBreak checks each scripted issue is genuinely
// ticketable: the baseline probe is delivered, and injecting the fault on a
// COW clone breaks it.
func TestGeneratedIssuesBreak(t *testing.T) {
	scens := []*scenarios.Scenario{
		generate.FatTree(generate.FatTreeParams{K: 4}),
		generate.ISP(generate.ISPParams{Pops: 4, CustomersPerPop: 2}),
		generate.WAN(generate.WANParams{Sites: 4}),
	}
	for _, scen := range scens {
		base := scen.Network
		snap := dataplane.Compute(base)
		for _, is := range scen.Issues {
			t.Run(scen.Name+"/"+is.Name, func(t *testing.T) {
				tr, err := snap.Reach(is.SrcHost, is.DstHost, is.Proto, is.DstPort)
				if err != nil {
					t.Fatalf("baseline Reach: %v", err)
				}
				if !tr.Delivered() {
					t.Fatalf("baseline probe %s -> %s already broken: %s", is.SrcHost, is.DstHost, tr)
				}
				mutated := base.CloneCOW(is.Fault.RootCause)
				if err := is.Fault.Inject(mutated); err != nil {
					t.Fatalf("Inject: %v", err)
				}
				broken := dataplane.Compute(mutated)
				tr, err = broken.Reach(is.SrcHost, is.DstHost, is.Proto, is.DstPort)
				if err == nil && tr.Delivered() {
					t.Fatalf("fault %s did not break %s -> %s: %s",
						is.Fault.Name, is.SrcHost, is.DstHost, tr)
				}
			})
		}
	}
}

// TestFatTreeBoundedSweep runs a bounded attack-surface sweep over the
// generated fat-tree: all three techniques, a prefix of the interface
// faults, a small mutation budget. The parallel sweep must reproduce the
// serial samples exactly; CI runs this under the race detector, so the
// worker fan-out is exercised against a generated datacenter fabric on
// every push.
func TestFatTreeBoundedSweep(t *testing.T) {
	scen := generate.FatTree(generate.FatTreeParams{K: 4})
	cases := attacksurface.InterfaceFaults(scen.Network, nil)
	if len(cases) > 8 {
		cases = cases[:8]
	}
	if len(cases) == 0 {
		t.Fatal("no interface fault cases on the fat-tree")
	}
	for _, tech := range []attacksurface.Technique{attacksurface.All, attacksurface.Neighbor, attacksurface.Heimdall} {
		ev := &attacksurface.Evaluator{Base: scen.Network, Policies: scen.Policies,
			Sensitive: scen.Sensitive, MutationBudget: 2}
		serial := ev.Evaluate(tech, cases)
		if len(serial.Samples) != len(cases) {
			t.Fatalf("%s: %d samples for %d cases", tech.Name, len(serial.Samples), len(cases))
		}
		ev.Workers = 4
		par := ev.Evaluate(tech, cases)
		if !reflect.DeepEqual(serial.Samples, par.Samples) {
			t.Errorf("%s: parallel sweep diverged from serial\nserial:   %+v\nparallel: %+v",
				tech.Name, serial.Samples, par.Samples)
		}
	}
}
