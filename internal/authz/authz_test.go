package authz

import (
	"net/netip"
	"strings"
	"testing"

	"heimdall/internal/config"
	"heimdall/internal/journal"
	"heimdall/internal/netmodel"
)

func aclChange() config.Change {
	return config.Change{Device: "r1", Op: config.OpAddACLEntry, ACLName: "GUARD",
		Entry: &netmodel.ACLEntry{Seq: 30, Action: netmodel.Permit, Proto: netmodel.TCP,
			Src: netip.MustParsePrefix("10.0.1.0/24"), Dst: netip.MustParsePrefix("10.0.2.0/24"), DstPort: 443}}
}

func vlanChange() config.Change {
	return config.Change{Device: "r1", Op: config.OpSetVLAN, VLAN: &netmodel.VLAN{ID: 30, Name: "guest"}}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name    string
		changes []config.Change
		want    Risk
	}{
		{"empty", nil, LowRisk},
		{"vlan-only", []config.Change{vlanChange()}, LowRisk},
		{"acl", []config.Change{aclChange()}, HighRisk},
		{"mixed", []config.Change{vlanChange(), aclChange()}, HighRisk},
		{"static-route", []config.Change{{Device: "r1", Op: config.OpAddStaticRoute}}, HighRisk},
		{"gateway", []config.Change{{Device: "r1", Op: config.OpSetGateway}}, HighRisk},
		{"ospf", []config.Change{{Device: "r1", Op: config.OpSetOSPF}}, HighRisk},
		{"bgp", []config.Change{{Device: "r1", Op: config.OpSetBGP}}, HighRisk},
		{"routed-interface", []config.Change{{Device: "r1", Op: config.OpSetInterface,
			Interface: &netmodel.Interface{Name: "ge-0/0/1", Addr: netip.MustParsePrefix("10.0.0.1/24")}}}, HighRisk},
		{"l2-interface", []config.Change{{Device: "sw1", Op: config.OpSetInterface,
			Interface: &netmodel.Interface{Name: "ge-0/0/2", Mode: netmodel.Access, AccessVLAN: 10}}}, LowRisk},
		{"unknown-op", []config.Change{{Device: "r1", Op: config.Op(99)}}, HighRisk},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Classify(tc.changes); got != tc.want {
				t.Fatalf("Classify(%s) = %s, want %s", tc.name, got, tc.want)
			}
		})
	}
}

func testPolicy() (*Policy, *Signer, *Signer, *Signer) {
	p := NewPolicy(2, true)
	cust := p.Register("alice", RoleCustomer, []byte("alice-key"))
	msp := p.Register("bob", RoleMSP, []byte("bob-key"))
	msp2 := p.Register("carol", RoleMSP, []byte("carol-key"))
	return p, cust, msp, msp2
}

func TestVerifyMofN(t *testing.T) {
	changes := []config.Change{aclChange()}
	p, cust, msp, msp2 := testPolicy()

	// Happy path: customer + MSP.
	ok := []journal.Approval{cust.Approve("T-1", changes), msp.Approve("T-1", changes)}
	if err := p.Verify("T-1", changes, ok); err != nil {
		t.Fatalf("valid 2-of-N rejected: %v", err)
	}

	// Too few approvals.
	if err := p.Verify("T-1", changes, ok[:1]); err == nil || !strings.Contains(err.Error(), "need 2") {
		t.Fatalf("1 approval accepted, err=%v", err)
	}

	// Two MSP approvals but no customer: RequireBothParties trips.
	mspOnly := []journal.Approval{msp.Approve("T-1", changes), msp2.Approve("T-1", changes)}
	if err := p.Verify("T-1", changes, mspOnly); err == nil || !strings.Contains(err.Error(), "both") {
		t.Fatalf("msp-only approvals accepted, err=%v", err)
	}

	// Same signer twice does not count twice.
	dup := []journal.Approval{cust.Approve("T-1", changes), cust.Approve("T-1", changes)}
	if err := p.Verify("T-1", changes, dup); err == nil {
		t.Fatal("duplicate signer counted as two approvals")
	}

	// Unknown signer is ignored.
	rogue := NewSigner("mallory", RoleMSP, []byte("mallory-key"))
	withRogue := []journal.Approval{cust.Approve("T-1", changes), rogue.Approve("T-1", changes)}
	if err := p.Verify("T-1", changes, withRogue); err == nil {
		t.Fatal("unregistered signer's approval counted")
	}
}

func TestVerifyBinding(t *testing.T) {
	changes := []config.Change{aclChange()}
	p, cust, msp, _ := testPolicy()

	// Approval over a different ticket must not verify.
	wrongTicket := []journal.Approval{cust.Approve("T-2", changes), msp.Approve("T-1", changes)}
	if err := p.Verify("T-1", changes, wrongTicket); err == nil {
		t.Fatal("approval for another ticket accepted")
	}

	// Approval over a different change set must not verify.
	other := []config.Change{vlanChange()}
	wrongChanges := []journal.Approval{cust.Approve("T-1", other), msp.Approve("T-1", changes)}
	if err := p.Verify("T-1", changes, wrongChanges); err == nil {
		t.Fatal("approval over different change set accepted")
	}

	// Tampered MAC must not verify.
	a := cust.Approve("T-1", changes)
	a.MAC = "00" + a.MAC[2:]
	if err := p.Verify("T-1", changes, []journal.Approval{a, msp.Approve("T-1", changes)}); err == nil {
		t.Fatal("tampered MAC accepted")
	}

	// Digest is deterministic and order-sensitive.
	if string(Digest("T-1", changes)) != string(Digest("T-1", changes)) {
		t.Fatal("Digest not deterministic")
	}
	two := []config.Change{aclChange(), vlanChange()}
	rev := []config.Change{vlanChange(), aclChange()}
	if string(Digest("T-1", two)) == string(Digest("T-1", rev)) {
		t.Fatal("Digest ignores change order")
	}
}
