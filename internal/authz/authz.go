// Package authz implements M-of-N multi-party authorization for high-risk
// production changes, following the Kinkelin line of work on multi-party
// authorization for network configuration: the paper's threat model is a
// compromised MSP, so no single party — not even the enforcer operator —
// may authorize a change class that could re-open the attack surface.
//
// A change set is classified by risk: anything touching ACLs, routing
// (static routes, gateways, OSPF, BGP) or routed-interface state is
// high-risk and requires M valid signer approvals, drawn from both the
// customer and the MSP, before the enforcer's push phase may start. Each
// approval is an HMAC over a canonical digest of (ticket, scheduled change
// set) under that signer's key, and the approvals are recorded in the
// commit journal's intent record — so the journal itself proves who
// authorized what, and every enforcer replica re-verifies the approvals
// independently before voting to commit (a coordinator that skips the
// check cannot reach quorum).
package authz

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"heimdall/internal/config"
	"heimdall/internal/journal"
	"heimdall/internal/netmodel"
)

// Risk classifies a change set's blast radius.
type Risk int

const (
	// LowRisk changes cannot re-open reachability into guarded segments:
	// VLAN definitions and L2-only interface edits.
	LowRisk Risk = iota
	// HighRisk changes touch ACLs, routing state, or routed (addressed)
	// interfaces — the classes a compromised technician would use.
	HighRisk
)

// String returns "low" or "high".
func (r Risk) String() string {
	if r == HighRisk {
		return "high"
	}
	return "low"
}

// Classify returns the risk class of a change set: the maximum over its
// changes. ACL edits, static routes, gateway changes, OSPF/BGP process
// edits and routed-interface changes are high-risk; VLAN definitions and
// L2-only interface edits are low-risk. (Privilege-spec changes are not
// config changes — they go through the escalation workflow, which has its
// own approval step.)
func Classify(changes []config.Change) Risk {
	for _, c := range changes {
		switch c.Op {
		case config.OpAddACLEntry, config.OpRemoveACLEntry, config.OpRemoveACL,
			config.OpAddStaticRoute, config.OpRemoveStaticRoute, config.OpSetGateway,
			config.OpSetOSPF, config.OpRemoveOSPF, config.OpSetBGP, config.OpRemoveBGP:
			return HighRisk
		case config.OpAddInterface, config.OpSetInterface:
			if !netmodel.InterfaceL2Only(c.Interface) {
				return HighRisk
			}
		case config.OpSetVLAN, config.OpRemoveVLAN:
			// L2 fabric definitions: low risk.
		default:
			// Unknown ops are conservatively high-risk.
			return HighRisk
		}
	}
	return LowRisk
}

// Signer roles. A valid M-of-N quorum must include both sides of the
// engagement when the policy demands it — the customer alone cannot push
// without the MSP's review, and a compromised MSP cannot push without the
// customer.
const (
	RoleCustomer = "customer"
	RoleMSP      = "msp"
)

// Digest is the canonical byte string an approval signs: a versioned
// domain separator, the ticket, and every scheduled change in order.
func Digest(ticket string, changes []config.Change) []byte {
	h := sha256.New()
	h.Write([]byte("heimdall-authz-v1\x00"))
	h.Write([]byte(ticket))
	h.Write([]byte{0})
	for _, c := range changes {
		h.Write([]byte(c.String()))
		h.Write([]byte{0})
	}
	return h.Sum(nil)
}

// Signer holds one approving party's HMAC key.
type Signer struct {
	Name string
	Role string
	key  []byte
}

// NewSigner builds a signer from a name, role and key copy.
func NewSigner(name, role string, key []byte) *Signer {
	return &Signer{Name: name, Role: role, key: append([]byte(nil), key...)}
}

// Approve signs the (ticket, change set) digest.
func (s *Signer) Approve(ticket string, changes []config.Change) journal.Approval {
	mac := hmac.New(sha256.New, s.key)
	mac.Write(Digest(ticket, changes))
	return journal.Approval{Signer: s.Name, Role: s.Role, MAC: hex.EncodeToString(mac.Sum(nil))}
}

// Policy is an M-of-N authorization requirement over a registered signer
// set. Configure it once at deployment time; Verify is safe for concurrent
// use afterwards.
type Policy struct {
	// M is how many distinct valid signatures a high-risk change needs.
	M int
	// RequireBothParties additionally demands at least one valid customer
	// and one valid MSP signature among the M.
	RequireBothParties bool
	signers            map[string]*Signer
}

// NewPolicy builds an M-of-N policy with no registered signers.
func NewPolicy(m int, requireBoth bool) *Policy {
	return &Policy{M: m, RequireBothParties: requireBoth, signers: make(map[string]*Signer)}
}

// Register adds a signer key and returns the signer (for tests and the
// approval workflow).
func (p *Policy) Register(name, role string, key []byte) *Signer {
	s := NewSigner(name, role, key)
	p.signers[name] = s
	return s
}

// Signers returns the registered signer names, sorted.
func (p *Policy) Signers() []string {
	out := make([]string, 0, len(p.signers))
	for name := range p.signers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Verify checks the approvals against the policy for the given ticket and
// scheduled change set: at least M distinct registered signers with valid
// MACs over the digest, including both parties when required. Unknown
// signers, duplicate signers and bad MACs are ignored (they don't count),
// not fatal — the question is whether enough valid approvals exist.
func (p *Policy) Verify(ticket string, changes []config.Change, approvals []journal.Approval) error {
	digest := Digest(ticket, changes)
	valid := 0
	roles := map[string]bool{}
	seen := map[string]bool{}
	for _, a := range approvals {
		s := p.signers[a.Signer]
		if s == nil || seen[a.Signer] {
			continue
		}
		want := hmac.New(sha256.New, s.key)
		want.Write(digest)
		got, err := hex.DecodeString(a.MAC)
		if err != nil || !hmac.Equal(want.Sum(nil), got) {
			continue
		}
		seen[a.Signer] = true
		valid++
		roles[s.Role] = true
	}
	if valid < p.M {
		return fmt.Errorf("authz: %d valid approvals, need %d", valid, p.M)
	}
	if p.RequireBothParties && (!roles[RoleCustomer] || !roles[RoleMSP]) {
		return fmt.Errorf("authz: approvals must include both customer and msp signatures")
	}
	return nil
}
