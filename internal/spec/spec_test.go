package spec

import (
	"net/netip"
	"testing"

	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
	"heimdall/internal/verify"
)

// miningNet: h1, h2 reach each other through r1; h3 (sensitive) is behind
// an ACL that denies everything to it.
func miningNet() *netmodel.Network {
	n := netmodel.NewNetwork("mine")
	r1 := n.AddDevice("r1", netmodel.Router)
	for i, sub := range []string{"10.1.0", "10.2.0", "10.3.0"} {
		h := n.AddDevice([]string{"h1", "h2", "h3"}[i], netmodel.Host)
		n.MustConnect(h.Name, "eth0", "r1", []string{"Gi0/0", "Gi0/1", "Gi0/2"}[i])
		h.Interface("eth0").Addr = netip.MustParsePrefix(sub + ".10/24")
		h.DefaultGateway = netip.MustParseAddr(sub + ".1")
		r1.Interface([]string{"Gi0/0", "Gi0/1", "Gi0/2"}[i]).Addr = netip.MustParsePrefix(sub + ".1/24")
	}
	guard := r1.ACL("GUARD", true)
	guard.InsertEntry(netmodel.ACLEntry{Seq: 10, Action: netmodel.Deny, Proto: netmodel.AnyProto,
		Dst: netip.MustParsePrefix("10.3.0.0/24")})
	guard.InsertEntry(netmodel.ACLEntry{Seq: 20, Action: netmodel.Permit, Proto: netmodel.AnyProto})
	r1.Interface("Gi0/0").ACLIn = "GUARD"
	r1.Interface("Gi0/1").ACLIn = "GUARD"
	return n
}

func TestMineReachabilityAndIsolation(t *testing.T) {
	n := miningNet()
	s := dataplane.Compute(n)
	policies := Mine(s, n, Options{Sensitive: map[string]bool{"h3": true}})

	var reach, isolate int
	for _, p := range policies {
		switch p.Kind {
		case verify.Reachability:
			reach++
			if p.Dst == "h3" {
				t.Errorf("h3 should not be reachable: %s", p)
			}
		case verify.Isolation:
			isolate++
			if p.Src != "h3" && p.Dst != "h3" {
				t.Errorf("isolation policy without sensitive host: %s", p)
			}
		}
	}
	// Reachable pairs: h1<->h2 (2), h3->h1, h3->h2 (ACL is ingress-only on
	// h1/h2 ports, h3's own port has none). Isolated: h1->h3, h2->h3.
	if reach != 4 {
		t.Errorf("reachability policies = %d, want 4: %v", reach, policies)
	}
	if isolate != 2 {
		t.Errorf("isolation policies = %d, want 2: %v", isolate, policies)
	}

	// All mined policies must hold on the baseline by construction.
	res := verify.Check(s, policies)
	if !res.OK() {
		t.Fatalf("mined policies violated on baseline: %v", res.Violations)
	}
	// IDs are unique and sequential.
	if policies[0].ID != "P001" {
		t.Errorf("first ID = %s", policies[0].ID)
	}
}

func TestMineServicesAndTruncation(t *testing.T) {
	n := miningNet()
	s := dataplane.Compute(n)
	full := Mine(s, n, Options{
		Services:  []Service{{Proto: netmodel.ICMP}, {Proto: netmodel.TCP, Port: 80}},
		Sensitive: map[string]bool{"h3": true},
	})
	if len(full) != 12 { // (4 reach + 2 isolate) per service
		t.Fatalf("full = %d policies: %v", len(full), full)
	}
	capped := Mine(s, n, Options{
		Services:    []Service{{Proto: netmodel.ICMP}, {Proto: netmodel.TCP, Port: 80}},
		Sensitive:   map[string]bool{"h3": true},
		MaxPolicies: 5,
	})
	if len(capped) != 5 {
		t.Fatalf("capped = %d policies", len(capped))
	}
	// Truncation is deterministic.
	capped2 := Mine(s, n, Options{
		Services:    []Service{{Proto: netmodel.ICMP}, {Proto: netmodel.TCP, Port: 80}},
		Sensitive:   map[string]bool{"h3": true},
		MaxPolicies: 5,
	})
	for i := range capped {
		if capped[i] != capped2[i] {
			t.Fatal("truncation not deterministic")
		}
	}
}

func TestMineWaypoints(t *testing.T) {
	n := miningNet()
	s := dataplane.Compute(n)
	policies := Mine(s, n, Options{
		Sensitive: map[string]bool{"h3": true},
		Waypoints: map[string]bool{"r1": true},
	})
	var waypoints, reach int
	for _, p := range policies {
		switch p.Kind {
		case verify.Waypoint:
			waypoints++
			if p.Via != "r1" {
				t.Errorf("waypoint via %q", p.Via)
			}
		case verify.Reachability:
			reach++
		}
	}
	// Every delivered pair crosses r1, so all reachability policies are
	// promoted to waypoint policies.
	if waypoints != 4 || reach != 0 {
		t.Fatalf("waypoints=%d reach=%d: %v", waypoints, reach, policies)
	}
	// They hold on the baseline.
	if res := verify.Check(s, policies); !res.OK() {
		t.Fatalf("mined waypoint policies violated: %v", res.Violations)
	}
}

func TestMineDeterministicOrder(t *testing.T) {
	n := miningNet()
	s := dataplane.Compute(n)
	a := Mine(s, n, Options{Sensitive: map[string]bool{"h3": true}})
	b := Mine(s, n, Options{Sensitive: map[string]bool{"h3": true}})
	if len(a) != len(b) {
		t.Fatal("non-deterministic count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
