// Package spec mines network policies from a baseline snapshot, playing the
// role config2spec plays in the paper's pipeline: given the configurations
// of a presumably-working network, derive the specification (reachability
// and isolation policies) the enterprise expects to keep holding.
package spec

import (
	"fmt"
	"sort"

	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
	"heimdall/internal/verify"
)

// Options controls policy mining.
type Options struct {
	// Services lists (proto, port) pairs probed between every host pair.
	// Empty means a single ICMP probe.
	Services []Service
	// Sensitive names hosts for which *non*-reachability is promoted to an
	// isolation policy. Pairs not involving a sensitive host that are
	// unreachable yield no policy (absence of connectivity between random
	// hosts is rarely intended behaviour worth pinning).
	Sensitive map[string]bool
	// MaxPolicies truncates the mined set deterministically (0 = no limit),
	// matching how operators curate config2spec output down to the
	// constraints they care about.
	MaxPolicies int
	// Waypoints names devices (e.g. firewalls) whose traversal should be
	// pinned: a delivered flow crossing a waypoint device yields a
	// waypoint policy instead of a plain reachability policy.
	Waypoints map[string]bool
	// Partition assigns hosts to named partitions (e.g. fat-tree pods,
	// WAN sites) for sampled mining. Host pairs inside one partition are
	// always probed exhaustively; cross-partition pairs are sampled at
	// CrossSample. Hosts absent from the map form an implicit partition
	// of their own. A nil Partition (or CrossSample >= 1) probes all
	// pairs — the exact-equivalence baseline.
	Partition map[string]string
	// CrossSample is the fraction of cross-partition host pairs probed
	// when Partition is set (<= 0 means probe none). Selection is a
	// deterministic per-pair hash seeded by Seed, so the same options
	// always mine the same policy set.
	CrossSample float64
	// Seed varies which cross-partition pairs the sampler selects.
	Seed int64
}

// Service is one probed protocol/port combination.
type Service struct {
	Proto netmodel.Protocol
	Port  uint16
}

// Mine computes the policy set implied by the snapshot's behaviour: every
// host pair is probed for every service; delivered flows become
// reachability policies, and undelivered flows touching a sensitive host
// become isolation policies.
//
// With Options.Partition set, the all-pairs enumeration becomes
// partitioned: intra-partition pairs stay exhaustive while
// cross-partition pairs are sampled at Options.CrossSample. On symmetric
// generated topologies (a fat-tree's pods are interchangeable) the
// sampled set pins the same behaviour classes at a fraction of the
// trace cost; TestPartitionedMineOracle checks the exact-equivalence
// degenerate cases against the exhaustive baseline.
func Mine(s *dataplane.Snapshot, n *netmodel.Network, opts Options) []verify.Policy {
	services := opts.Services
	if len(services) == 0 {
		services = []Service{{Proto: netmodel.ICMP}}
	}
	hosts := n.Hosts()
	var out []verify.Policy
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			if !opts.probePair(src, dst) {
				continue
			}
			for _, svc := range services {
				tr, err := s.Reach(src, dst, svc.Proto, svc.Port)
				if err != nil {
					continue
				}
				switch {
				case tr.Delivered():
					p := verify.Policy{
						Kind: verify.Reachability, Src: src, Dst: dst,
						Proto: svc.Proto, DstPort: svc.Port,
					}
					for _, hop := range tr.Hops {
						if opts.Waypoints[hop.Device] {
							p.Kind = verify.Waypoint
							p.Via = hop.Device
							break
						}
					}
					out = append(out, p)
				case opts.Sensitive[dst] || opts.Sensitive[src]:
					out = append(out, verify.Policy{
						Kind: verify.Isolation, Src: src, Dst: dst,
						Proto: svc.Proto, DstPort: svc.Port,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return policyKey(out[i]) < policyKey(out[j]) })
	if opts.MaxPolicies > 0 && len(out) > opts.MaxPolicies {
		// Deterministic stratified truncation: keep every k-th policy so
		// both kinds and all host pairs stay represented.
		kept := make([]verify.Policy, 0, opts.MaxPolicies)
		step := float64(len(out)) / float64(opts.MaxPolicies)
		for i := 0; i < opts.MaxPolicies; i++ {
			kept = append(kept, out[int(float64(i)*step)])
		}
		out = kept
	}
	for i := range out {
		out[i].ID = fmt.Sprintf("P%03d", i+1)
	}
	return out
}

func policyKey(p verify.Policy) string {
	return fmt.Sprintf("%d|%s|%s|%d|%d|%s", p.Kind, p.Src, p.Dst, p.Proto, p.DstPort, p.Via)
}

// probePair decides whether the ordered host pair is enumerated. Nil
// Partition or a saturating sample rate reduce to the exhaustive
// all-pairs walk exactly (the equivalence oracle relies on this).
func (o *Options) probePair(src, dst string) bool {
	if o.Partition == nil || o.CrossSample >= 1 {
		return true
	}
	ps, oks := o.Partition[src]
	pd, okd := o.Partition[dst]
	if oks && okd && ps == pd {
		return true
	}
	if o.CrossSample <= 0 {
		return false
	}
	return pairHash(o.Seed, src, dst) < o.CrossSample
}

// pairHash maps (seed, src, dst) to a deterministic point in [0, 1).
func pairHash(seed int64, src, dst string) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	for s := 0; s < 64; s += 8 {
		mix(byte(uint64(seed) >> s))
	}
	for i := 0; i < len(src); i++ {
		mix(src[i])
	}
	mix('|')
	for i := 0; i < len(dst); i++ {
		mix(dst[i])
	}
	return float64(h>>11) / float64(1<<53)
}
