// Package spec mines network policies from a baseline snapshot, playing the
// role config2spec plays in the paper's pipeline: given the configurations
// of a presumably-working network, derive the specification (reachability
// and isolation policies) the enterprise expects to keep holding.
package spec

import (
	"fmt"
	"sort"

	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
	"heimdall/internal/verify"
)

// Options controls policy mining.
type Options struct {
	// Services lists (proto, port) pairs probed between every host pair.
	// Empty means a single ICMP probe.
	Services []Service
	// Sensitive names hosts for which *non*-reachability is promoted to an
	// isolation policy. Pairs not involving a sensitive host that are
	// unreachable yield no policy (absence of connectivity between random
	// hosts is rarely intended behaviour worth pinning).
	Sensitive map[string]bool
	// MaxPolicies truncates the mined set deterministically (0 = no limit),
	// matching how operators curate config2spec output down to the
	// constraints they care about.
	MaxPolicies int
	// Waypoints names devices (e.g. firewalls) whose traversal should be
	// pinned: a delivered flow crossing a waypoint device yields a
	// waypoint policy instead of a plain reachability policy.
	Waypoints map[string]bool
}

// Service is one probed protocol/port combination.
type Service struct {
	Proto netmodel.Protocol
	Port  uint16
}

// Mine computes the policy set implied by the snapshot's behaviour: every
// host pair is probed for every service; delivered flows become
// reachability policies, and undelivered flows touching a sensitive host
// become isolation policies.
func Mine(s *dataplane.Snapshot, n *netmodel.Network, opts Options) []verify.Policy {
	services := opts.Services
	if len(services) == 0 {
		services = []Service{{Proto: netmodel.ICMP}}
	}
	hosts := n.Hosts()
	var out []verify.Policy
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			for _, svc := range services {
				tr, err := s.Reach(src, dst, svc.Proto, svc.Port)
				if err != nil {
					continue
				}
				switch {
				case tr.Delivered():
					p := verify.Policy{
						Kind: verify.Reachability, Src: src, Dst: dst,
						Proto: svc.Proto, DstPort: svc.Port,
					}
					for _, hop := range tr.Hops {
						if opts.Waypoints[hop.Device] {
							p.Kind = verify.Waypoint
							p.Via = hop.Device
							break
						}
					}
					out = append(out, p)
				case opts.Sensitive[dst] || opts.Sensitive[src]:
					out = append(out, verify.Policy{
						Kind: verify.Isolation, Src: src, Dst: dst,
						Proto: svc.Proto, DstPort: svc.Port,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return policyKey(out[i]) < policyKey(out[j]) })
	if opts.MaxPolicies > 0 && len(out) > opts.MaxPolicies {
		// Deterministic stratified truncation: keep every k-th policy so
		// both kinds and all host pairs stay represented.
		kept := make([]verify.Policy, 0, opts.MaxPolicies)
		step := float64(len(out)) / float64(opts.MaxPolicies)
		for i := 0; i < opts.MaxPolicies; i++ {
			kept = append(kept, out[int(float64(i)*step)])
		}
		out = kept
	}
	for i := range out {
		out[i].ID = fmt.Sprintf("P%03d", i+1)
	}
	return out
}

func policyKey(p verify.Policy) string {
	return fmt.Sprintf("%d|%s|%s|%d|%d|%s", p.Kind, p.Src, p.Dst, p.Proto, p.DstPort, p.Via)
}
