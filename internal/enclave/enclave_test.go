package enclave

import (
	"bytes"
	"testing"
)

func TestMeasurementStableAndDistinct(t *testing.T) {
	p := NewPlatformFromSeed("s1")
	a := p.Load("heimdall-enforcer-v1")
	b := p.Load("heimdall-enforcer-v1")
	c := p.Load("heimdall-enforcer-v2")
	if a.Measurement() != b.Measurement() {
		t.Fatal("same code identity should have same measurement")
	}
	if a.Measurement() == c.Measurement() {
		t.Fatal("different code should have different measurement")
	}
	if len(a.Measurement()) != 64 {
		t.Fatalf("measurement length = %d", len(a.Measurement()))
	}
}

func TestAttestationVerifies(t *testing.T) {
	p := NewPlatformFromSeed("s1")
	e := p.Load("enforcer")
	nonce := []byte("fresh-nonce-123")
	r := e.Attest(nonce)
	if err := p.VerifyReport(r, e.Measurement(), nonce); err != nil {
		t.Fatalf("honest report rejected: %v", err)
	}
	// Wrong expectations are rejected.
	if err := p.VerifyReport(r, p.Load("other").Measurement(), nonce); err == nil {
		t.Fatal("wrong measurement accepted")
	}
	if err := p.VerifyReport(r, e.Measurement(), []byte("other-nonce")); err == nil {
		t.Fatal("replayed nonce accepted")
	}
	// Forged MAC rejected.
	forged := r
	forged.MAC = "00" + forged.MAC[2:]
	if err := p.VerifyReport(forged, e.Measurement(), nonce); err == nil {
		t.Fatal("forged MAC accepted")
	}
	// A different platform cannot vouch for this report.
	p2 := NewPlatformFromSeed("s2")
	if err := p2.VerifyReport(r, e.Measurement(), nonce); err == nil {
		t.Fatal("cross-platform report accepted")
	}
}

func TestSealUnseal(t *testing.T) {
	p := NewPlatformFromSeed("s1")
	e := p.Load("enforcer")
	secret := []byte("audit-hmac-key-material")
	sealed, err := e.Seal(secret)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, secret) {
		t.Fatal("sealed blob leaks plaintext")
	}
	back, err := e.Unseal(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, secret) {
		t.Fatal("round trip mismatch")
	}
	// Same identity reloaded can unseal.
	if _, err := p.Load("enforcer").Unseal(sealed); err != nil {
		t.Fatalf("reloaded enclave cannot unseal: %v", err)
	}
	// Different code identity cannot.
	if _, err := p.Load("evil").Unseal(sealed); err == nil {
		t.Fatal("different code identity unsealed the blob")
	}
	// Different platform cannot.
	if _, err := NewPlatformFromSeed("s2").Load("enforcer").Unseal(sealed); err == nil {
		t.Fatal("different platform unsealed the blob")
	}
	// Tampered blob fails.
	sealed[len(sealed)-1] ^= 0xff
	if _, err := e.Unseal(sealed); err == nil {
		t.Fatal("tampered blob unsealed")
	}
	if _, err := e.Unseal([]byte("short")); err == nil {
		t.Fatal("short blob unsealed")
	}
}

func TestDeriveKeyStableAndScoped(t *testing.T) {
	p := NewPlatformFromSeed("s1")
	e := p.Load("enforcer")
	k1 := e.DeriveKey("audit")
	k2 := e.DeriveKey("audit")
	k3 := e.DeriveKey("other")
	if !bytes.Equal(k1, k2) {
		t.Fatal("DeriveKey not deterministic")
	}
	if bytes.Equal(k1, k3) {
		t.Fatal("DeriveKey ignores purpose")
	}
	if bytes.Equal(k1, p.Load("evil").DeriveKey("audit")) {
		t.Fatal("DeriveKey ignores measurement")
	}
	if len(k1) != 32 {
		t.Fatalf("key length = %d", len(k1))
	}
}

func TestNewPlatformRandomness(t *testing.T) {
	p1, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	if p1.secret == p2.secret {
		t.Fatal("two platforms share a secret")
	}
}
