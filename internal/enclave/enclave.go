// Package enclave simulates the trusted execution environment (Intel SGX in
// the paper, §4.3) that hosts Heimdall's policy enforcer. The real paper
// prototype relies on SGX for three properties, all of which this
// simulation reproduces at the interface level so the rest of the system
// exercises the same code paths:
//
//   - Measurement & attestation: an enclave has a code identity
//     (measurement); a verifier holding the expected measurement can check a
//     signed attestation report bound to a fresh nonce.
//   - Sealed storage: data encrypted inside the enclave (AES-256-GCM under a
//     key derived from the platform secret and the measurement) can only be
//     unsealed by the same code identity on the same platform.
//   - Integrity: secrets (the audit HMAC key) live only inside the enclave.
//
// The "hardware" root of trust is a per-Platform secret; production SGX
// derives it from CPU fuses, our simulation from crypto/rand.
package enclave

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
)

// Platform is the simulated hardware root of trust: one physical machine
// with a fused secret key.
type Platform struct {
	secret [32]byte
}

// NewPlatform creates a platform with a random hardware secret.
func NewPlatform() (*Platform, error) {
	p := &Platform{}
	if _, err := io.ReadFull(rand.Reader, p.secret[:]); err != nil {
		return nil, fmt.Errorf("enclave: generating platform secret: %w", err)
	}
	return p, nil
}

// NewPlatformFromSeed creates a deterministic platform for tests.
func NewPlatformFromSeed(seed string) *Platform {
	p := &Platform{}
	p.secret = sha256.Sum256([]byte("platform|" + seed))
	return p
}

// Enclave is one loaded enclave: a code identity running on a platform.
type Enclave struct {
	platform    *Platform
	measurement [32]byte
	sealKey     [32]byte
}

// Load measures the given code identity and instantiates an enclave for
// it. In production this is the hash of the enclave binary; here callers
// pass a stable identity string (e.g. "heimdall-enforcer-v1").
func (p *Platform) Load(codeIdentity string) *Enclave {
	e := &Enclave{platform: p}
	e.measurement = sha256.Sum256([]byte(codeIdentity))
	e.sealKey = derive(p.secret, "seal", e.measurement[:])
	return e
}

// derive computes HKDF-like key material: HMAC(secret, label || context).
func derive(secret [32]byte, label string, context []byte) [32]byte {
	mac := hmac.New(sha256.New, secret[:])
	mac.Write([]byte(label))
	mac.Write([]byte{0})
	mac.Write(context)
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// Measurement returns the hex code identity of the enclave.
func (e *Enclave) Measurement() string {
	return hex.EncodeToString(e.measurement[:])
}

// Report is an attestation report: proof that code with Measurement runs on
// the platform, bound to the verifier's nonce.
type Report struct {
	Measurement string
	Nonce       string
	MAC         string
}

// Attest produces an attestation report for the given verifier nonce.
func (e *Enclave) Attest(nonce []byte) Report {
	key := derive(e.platform.secret, "attest", nil)
	mac := hmac.New(sha256.New, key[:])
	mac.Write(e.measurement[:])
	mac.Write(nonce)
	return Report{
		Measurement: e.Measurement(),
		Nonce:       hex.EncodeToString(nonce),
		MAC:         hex.EncodeToString(mac.Sum(nil)),
	}
}

// VerifyReport checks an attestation report against the platform and the
// expected measurement and nonce. In production the platform is replaced by
// the vendor's attestation service; the trust structure is identical.
func (p *Platform) VerifyReport(r Report, expectedMeasurement string, nonce []byte) error {
	if r.Measurement != expectedMeasurement {
		return fmt.Errorf("enclave: measurement %s, expected %s", r.Measurement, expectedMeasurement)
	}
	if r.Nonce != hex.EncodeToString(nonce) {
		return errors.New("enclave: stale attestation (nonce mismatch)")
	}
	m, err := hex.DecodeString(r.Measurement)
	if err != nil || len(m) != 32 {
		return errors.New("enclave: malformed measurement")
	}
	key := derive(p.secret, "attest", nil)
	mac := hmac.New(sha256.New, key[:])
	mac.Write(m)
	mac.Write(nonce)
	got, err := hex.DecodeString(r.MAC)
	if err != nil {
		return errors.New("enclave: malformed report MAC")
	}
	if !hmac.Equal(mac.Sum(nil), got) {
		return errors.New("enclave: report MAC invalid")
	}
	return nil
}

// Seal encrypts data under the enclave's sealing key (AES-256-GCM). Only
// the same code identity on the same platform can unseal it.
func (e *Enclave) Seal(plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(e.sealKey[:])
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, err
	}
	return gcm.Seal(nonce, nonce, plaintext, e.measurement[:]), nil
}

// Unseal decrypts sealed data. It fails for data sealed by a different
// code identity or platform.
func (e *Enclave) Unseal(sealed []byte) ([]byte, error) {
	block, err := aes.NewCipher(e.sealKey[:])
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	if len(sealed) < gcm.NonceSize() {
		return nil, errors.New("enclave: sealed blob too short")
	}
	nonce, ct := sealed[:gcm.NonceSize()], sealed[gcm.NonceSize():]
	pt, err := gcm.Open(nil, nonce, ct, e.measurement[:])
	if err != nil {
		return nil, errors.New("enclave: unseal failed (wrong enclave or tampered data)")
	}
	return pt, nil
}

// DeriveKey returns key material bound to the enclave identity for a named
// purpose; the enforcer uses this for its audit-trail HMAC key so the key
// never exists outside the enclave boundary.
func (e *Enclave) DeriveKey(purpose string) []byte {
	k := derive(e.sealKey, "app|"+purpose, e.measurement[:])
	return k[:]
}
