package console

import (
	"net/netip"
	"strings"
	"testing"

	"heimdall/internal/netmodel"
)

// bgpNet: two routers peering over eBGP, each fronting a host subnet.
func bgpNet() *netmodel.Network {
	n := netmodel.NewNetwork("b")
	r1 := n.AddDevice("r1", netmodel.Router)
	r2 := n.AddDevice("r2", netmodel.Router)
	h1 := n.AddDevice("h1", netmodel.Host)
	h2 := n.AddDevice("h2", netmodel.Host)
	n.MustConnect("h1", "eth0", "r1", "Gi0/0")
	n.MustConnect("r1", "Gi0/1", "r2", "Gi0/0")
	n.MustConnect("r2", "Gi0/1", "h2", "eth0")

	h1.Interface("eth0").Addr = netip.MustParsePrefix("10.1.0.10/24")
	h1.DefaultGateway = netip.MustParseAddr("10.1.0.1")
	r1.Interface("Gi0/0").Addr = netip.MustParsePrefix("10.1.0.1/24")
	r1.Interface("Gi0/1").Addr = netip.MustParsePrefix("203.0.113.1/30")
	r2.Interface("Gi0/0").Addr = netip.MustParsePrefix("203.0.113.2/30")
	r2.Interface("Gi0/1").Addr = netip.MustParsePrefix("192.0.2.1/24")
	h2.Interface("eth0").Addr = netip.MustParsePrefix("192.0.2.10/24")
	h2.DefaultGateway = netip.MustParseAddr("192.0.2.1")

	r1.BGP = &netmodel.BGPProcess{LocalAS: 65001,
		Networks: []netip.Prefix{netip.MustParsePrefix("10.1.0.0/24")}}
	r2.BGP = &netmodel.BGPProcess{LocalAS: 65002,
		Networks: []netip.Prefix{netip.MustParsePrefix("192.0.2.0/24")}}
	r2.BGP.SetNeighbor(netip.MustParseAddr("203.0.113.1"), 65001)
	return n
}

func TestBGPConsoleCommands(t *testing.T) {
	n := bgpNet()
	env := NewEnv(n)
	r1 := New("r1", env)

	// Session is down until r1 configures the neighbor.
	out, err := r1.Run("show ip bgp")
	if err != nil || strings.Contains(out, "Established") {
		t.Fatalf("pre-config bgp = %q err %v", out, err)
	}
	cmd, err := r1.Parse("router bgp 65001 neighbor 203.0.113.2 remote-as 65002")
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Action != "config.bgp.set" || cmd.Resource != "device:r1:bgp" || !cmd.Write {
		t.Fatalf("classification = %+v", cmd)
	}
	if _, err := r1.Execute(cmd); err != nil {
		t.Fatal(err)
	}
	out, _ = r1.Run("show ip bgp")
	if !strings.Contains(out, "Established") {
		t.Fatalf("post-config bgp = %q", out)
	}

	// End-to-end over the learned routes.
	h1 := New("h1", env)
	if out, _ := h1.Run("ping h2"); !strings.Contains(out, "success") {
		t.Fatalf("ping over BGP = %q", out)
	}

	// Originate another prefix and remove the neighbor.
	if _, err := r1.Run("router bgp 65001 network 172.16.0.0 mask 255.240.0.0"); err != nil {
		t.Fatal(err)
	}
	if got := len(n.Device("r1").BGP.Networks); got != 2 {
		t.Fatalf("networks = %d", got)
	}
	if _, err := r1.Run("router bgp 65001 no neighbor 203.0.113.2"); err != nil {
		t.Fatal(err)
	}
	if out, _ := h1.Run("ping h2"); !strings.Contains(out, "failed") {
		t.Fatalf("ping after neighbor removal = %q", out)
	}
}

func TestBGPConsoleErrors(t *testing.T) {
	c := New("r1", NewEnv(bgpNet()))
	bad := []string{
		"router bgp x neighbor 1.2.3.4 remote-as 1",
		"router bgp 65001 neighbor bogus remote-as 1",
		"router bgp 65001 neighbor 1.2.3.4 remote-as x",
		"router bgp 65001 network 10.0.0.0 mask 255.0.255.0",
		"router bgp 65001 flap",
	}
	for _, line := range bad {
		if _, err := c.Run(line); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
	// Wrong local AS is an execution error.
	if _, err := c.Run("router bgp 64999 neighbor 1.2.3.4 remote-as 1"); err == nil {
		t.Error("wrong local AS accepted")
	}
	// Removing a nonexistent neighbor fails.
	if _, err := c.Run("router bgp 65001 no neighbor 9.9.9.9"); err == nil {
		t.Error("removal of unknown neighbor accepted")
	}
}

func TestBGPInCatalog(t *testing.T) {
	n := bgpNet()
	found := false
	for _, ar := range Catalog(n.Device("r1")) {
		if ar.Action == "config.bgp.set" {
			found = true
		}
	}
	if !found {
		t.Fatal("catalog missing config.bgp.set for a BGP router")
	}
}
