// Package console implements the per-device command-line interface MSP
// technicians use. It is the twin network's presentation-layer surface: a
// command is parsed and classified into a privilege (action, resource)
// pair first, so the reference monitor can decide before anything executes.
//
// Commands are single-line, IOS-flavoured:
//
//	show running-config | show ip route | show interfaces [IF] |
//	show access-lists [NAME] | show vlan | show ip ospf neighbor
//	ping HOST|ADDR [tcp PORT|udp PORT]
//	interface IF shutdown | interface IF no shutdown
//	interface IF ip address ADDR MASK
//	interface IF ip access-group NAME in|out
//	interface IF no ip access-group in|out
//	interface IF switchport access vlan N
//	interface IF ip ospf cost N
//	access-list NAME SEQ permit|deny PROTO SRC [eq P] DST [eq P]
//	no access-list NAME SEQ
//	ip route NET MASK NEXTHOP [DIST] | no ip route NET MASK NEXTHOP
//	router ospf passive-interface IF | router ospf no passive-interface IF
//	router ospf network NET WILDCARD area N
//	router bgp AS neighbor ADDR remote-as N | router bgp AS no neighbor ADDR
//	router bgp AS network NET mask MASK
//	vlan N name NAME | no vlan N
//	ip default-gateway ADDR
package console

import (
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
	"heimdall/internal/telemetry"
)

// Command is one parsed console command with its privilege classification.
type Command struct {
	Raw      string
	Device   string
	Action   string
	Resource string
	// Write reports whether executing the command mutates configuration.
	Write bool

	exec func(env *Env) (string, error)
}

// Env is what a command needs to execute: the network holding the target
// device and a snapshot provider for read/diagnostic commands. After a
// write, the console invalidates the snapshot via Invalidate.
type Env struct {
	Net *netmodel.Network
	// Snapshot returns the current dataplane snapshot, recomputing it
	// lazily after writes.
	Snapshot func() *dataplane.Snapshot
	// Invalidate marks the snapshot stale after a write.
	Invalidate func()
	// Meter, when set, counts dispatched commands
	// (heimdall_console_dispatch_total by action and write class).
	Meter telemetry.Meter

	// incremental, when set (EnableIncremental), records classified writes
	// through noteChange so the next snapshot derives incrementally
	// instead of recomputing from scratch.
	incremental bool
	noteChange  func(device string, kind dataplane.ChangeKind)
}

// noteWrite records one executed write: classified writes queue an
// incremental derivation (when enabled), everything else pays the full
// invalidation.
func (e *Env) noteWrite(action, device string) {
	if e.incremental && e.noteChange != nil {
		if kind, ok := writeChangeKind(action); ok {
			e.noteChange(device, kind)
			return
		}
	}
	e.Invalidate()
}

// writeChangeKind maps a console write action onto the narrowest dataplane
// change class it can affect on its device (see dataplane.ChangeKind).
// Interface edits are classed L3-topology without inspecting the port —
// strictly more conservative than the enforcer's L2-only refinement, never
// less. Unknown write actions report false and force a full recompute.
func writeChangeKind(action string) (dataplane.ChangeKind, bool) {
	switch action {
	case "config.acl.add", "config.acl.remove":
		return dataplane.ChangeACL, true
	case "config.route.add", "config.route.remove", "config.gateway.set":
		return dataplane.ChangeStatic, true
	case "config.ospf.set":
		return dataplane.ChangeOSPF, true
	case "config.bgp.set":
		return dataplane.ChangeBGP, true
	case "config.vlan.set", "config.vlan.remove":
		return dataplane.ChangeL2, true
	case "config.interface.set":
		return dataplane.ChangeL3Topology, true
	}
	return 0, false
}

// Console parses and executes commands against one device.
type Console struct {
	device string
	env    *Env
}

// New returns a console bound to the named device.
func New(device string, env *Env) *Console {
	return &Console{device: device, env: env}
}

// Device returns the console's target device name.
func (c *Console) Device() string { return c.device }

// Run parses and immediately executes a command line (no mediation). The
// twin network's reference monitor uses Parse + Execute separately.
func (c *Console) Run(line string) (string, error) {
	cmd, err := c.Parse(line)
	if err != nil {
		return "", err
	}
	return c.Execute(cmd)
}

// Execute runs a previously parsed command.
func (c *Console) Execute(cmd Command) (string, error) {
	if m := c.env.Meter; m != nil {
		write := "read"
		if cmd.Write {
			write = "write"
		}
		m.Counter("heimdall_console_dispatch_total",
			telemetry.L("action", cmd.Action), telemetry.L("write", write)).Inc()
	}
	out, err := cmd.exec(c.env)
	if err != nil {
		return "", err
	}
	if cmd.Write {
		c.env.noteWrite(cmd.Action, cmd.Device)
	}
	return out, nil
}

// Parse classifies a command line without executing it.
func (c *Console) Parse(line string) (Command, error) {
	f := strings.Fields(line)
	if len(f) == 0 {
		return Command{}, fmt.Errorf("console: empty command")
	}
	dev := c.device
	mk := func(action, resource string, write bool, exec func(env *Env) (string, error)) Command {
		return Command{Raw: line, Device: dev, Action: action, Resource: resource, Write: write, exec: exec}
	}
	devRes := "device:" + dev

	switch f[0] {
	case "show":
		return c.parseShow(line, f[1:], mk, devRes)
	case "ping":
		return c.parsePing(line, f[1:], mk, devRes)
	case "traceroute":
		if len(f) != 2 {
			return Command{}, fmt.Errorf("console: usage: traceroute HOST|ADDR")
		}
		target := f[1]
		return mk("diag.traceroute", devRes, false, func(env *Env) (string, error) {
			return c.tracePath(env, target, netmodel.ICMP, 0)
		}), nil
	case "interface":
		return c.parseInterface(line, f[1:], mk)
	case "access-list":
		return c.parseACLAdd(line, f[1:], mk)
	case "no":
		return c.parseNo(line, f[1:], mk)
	case "ip":
		return c.parseIP(line, f[1:], mk, devRes)
	case "router":
		return c.parseRouter(line, f[1:], mk, devRes)
	case "vlan":
		if len(f) != 4 || f[2] != "name" {
			return Command{}, fmt.Errorf("console: usage: vlan N name NAME")
		}
		id, err := strconv.Atoi(f[1])
		if err != nil || id < 1 || id > 4094 {
			return Command{}, fmt.Errorf("console: bad vlan id %q", f[1])
		}
		name := f[3]
		return mk("config.vlan.set", fmt.Sprintf("%s:vlan:%d", devRes, id), true, func(env *Env) (string, error) {
			d := env.Net.Devices[dev]
			d.VLANs[id] = &netmodel.VLAN{ID: id, Name: name}
			return "", nil
		}), nil
	}
	return Command{}, fmt.Errorf("console: unknown command %q", f[0])
}

func (c *Console) parseShow(line string, f []string, mk mkFunc, devRes string) (Command, error) {
	dev := c.device
	rest := strings.Join(f, " ")
	switch {
	case rest == "running-config":
		return mk("show.running-config", devRes, false, func(env *Env) (string, error) {
			return renderRunningConfig(env.Net.Devices[dev]), nil
		}), nil
	case rest == "ip route":
		return mk("show.ip.route", devRes, false, func(env *Env) (string, error) {
			return env.Snapshot().FormatRIB(dev), nil
		}), nil
	case rest == "interfaces" || (len(f) == 2 && f[0] == "interfaces"):
		var name string
		if len(f) == 2 {
			name = f[1]
		}
		return mk("show.interfaces", devRes, false, func(env *Env) (string, error) {
			return renderInterfaces(env.Net.Devices[dev], name)
		}), nil
	case rest == "access-lists" || (len(f) == 2 && f[0] == "access-lists"):
		var name string
		if len(f) == 2 {
			name = f[1]
		}
		return mk("show.access-lists", devRes, false, func(env *Env) (string, error) {
			return renderACLs(env.Net.Devices[dev], name)
		}), nil
	case rest == "vlan":
		return mk("show.vlan", devRes, false, func(env *Env) (string, error) {
			return renderVLANs(env.Net.Devices[dev]), nil
		}), nil
	case rest == "ip ospf neighbor":
		return mk("show.ip.ospf", devRes, false, func(env *Env) (string, error) {
			return renderOSPFNeighbors(env, dev), nil
		}), nil
	case rest == "ip bgp" || rest == "ip bgp summary":
		return mk("show.ip.bgp", devRes, false, func(env *Env) (string, error) {
			return env.Snapshot().FormatBGP(dev), nil
		}), nil
	}
	return Command{}, fmt.Errorf("console: unknown show command %q", rest)
}

func (c *Console) parsePing(line string, f []string, mk mkFunc, devRes string) (Command, error) {
	if len(f) != 1 && len(f) != 3 {
		return Command{}, fmt.Errorf("console: usage: ping HOST|ADDR [tcp|udp PORT]")
	}
	target := f[0]
	proto := netmodel.ICMP
	var port uint16
	if len(f) == 3 {
		p, err := netmodel.ParseProtocol(f[1])
		if err != nil || (p != netmodel.TCP && p != netmodel.UDP) {
			return Command{}, fmt.Errorf("console: ping protocol must be tcp or udp")
		}
		proto = p
		v, err := strconv.Atoi(f[2])
		if err != nil || v < 1 || v > 65535 {
			return Command{}, fmt.Errorf("console: bad port %q", f[2])
		}
		port = uint16(v)
	}
	return mk("diag.ping", devRes, false, func(env *Env) (string, error) {
		return c.ping(env, target, proto, port)
	}), nil
}

type mkFunc func(action, resource string, write bool, exec func(env *Env) (string, error)) Command

func (c *Console) parseInterface(line string, f []string, mk mkFunc) (Command, error) {
	if len(f) < 2 {
		return Command{}, fmt.Errorf("console: usage: interface IF SUBCOMMAND")
	}
	dev := c.device
	ifName := f[0]
	res := fmt.Sprintf("device:%s:interface:%s", dev, ifName)
	sub := strings.Join(f[1:], " ")
	withIf := func(apply func(itf *netmodel.Interface) error) func(env *Env) (string, error) {
		return func(env *Env) (string, error) {
			d := env.Net.Devices[dev]
			itf := d.Interface(ifName)
			if itf == nil {
				return "", fmt.Errorf("console: %s: no interface %s", dev, ifName)
			}
			return "", apply(itf)
		}
	}
	sf := f[1:]
	switch {
	case sub == "shutdown":
		return mk("config.interface.set", res, true, withIf(func(itf *netmodel.Interface) error {
			itf.Shutdown = true
			return nil
		})), nil
	case sub == "no shutdown":
		return mk("config.interface.set", res, true, withIf(func(itf *netmodel.Interface) error {
			itf.Shutdown = false
			return nil
		})), nil
	case len(sf) == 4 && sf[0] == "ip" && sf[1] == "address":
		pfxStr, maskStr := sf[2], sf[3]
		return mk("config.interface.set", res, true, withIf(func(itf *netmodel.Interface) error {
			p, err := parseAddrMask(pfxStr, maskStr)
			if err != nil {
				return err
			}
			itf.Addr = p
			return nil
		})), nil
	case len(sf) == 4 && sf[0] == "ip" && sf[1] == "access-group" && (sf[3] == "in" || sf[3] == "out"):
		name, dir := sf[2], sf[3]
		return mk("config.interface.set", res, true, withIf(func(itf *netmodel.Interface) error {
			if dir == "in" {
				itf.ACLIn = name
			} else {
				itf.ACLOut = name
			}
			return nil
		})), nil
	case len(sf) == 4 && sf[0] == "no" && sf[1] == "ip" && sf[2] == "access-group" && (sf[3] == "in" || sf[3] == "out"):
		dir := sf[3]
		return mk("config.interface.set", res, true, withIf(func(itf *netmodel.Interface) error {
			if dir == "in" {
				itf.ACLIn = ""
			} else {
				itf.ACLOut = ""
			}
			return nil
		})), nil
	case len(sf) == 4 && sf[0] == "ip" && sf[1] == "ospf" && sf[2] == "cost":
		cost, err := strconv.Atoi(sf[3])
		if err != nil || cost < 1 || cost > 65535 {
			return Command{}, fmt.Errorf("console: bad ospf cost %q", sf[3])
		}
		return mk("config.interface.set", res, true, withIf(func(itf *netmodel.Interface) error {
			itf.OSPFCost = cost
			return nil
		})), nil
	case len(sf) == 4 && sf[0] == "switchport" && sf[1] == "access" && sf[2] == "vlan":
		id, err := strconv.Atoi(sf[3])
		if err != nil || id < 1 || id > 4094 {
			return Command{}, fmt.Errorf("console: bad vlan id %q", sf[3])
		}
		return mk("config.interface.set", res, true, withIf(func(itf *netmodel.Interface) error {
			itf.Mode = netmodel.Access
			itf.AccessVLAN = id
			return nil
		})), nil
	}
	return Command{}, fmt.Errorf("console: unknown interface subcommand %q", sub)
}

func (c *Console) parseACLAdd(line string, f []string, mk mkFunc) (Command, error) {
	// access-list NAME SEQ permit|deny PROTO SRC [eq P] DST [eq P]
	if len(f) < 5 {
		return Command{}, fmt.Errorf("console: short access-list command")
	}
	dev := c.device
	name := f[0]
	entry, err := parseACLEntry(f[1:])
	if err != nil {
		return Command{}, err
	}
	res := fmt.Sprintf("device:%s:acl:%s", dev, name)
	return mk("config.acl.add", res, true, func(env *Env) (string, error) {
		env.Net.Devices[dev].ACL(name, true).InsertEntry(entry)
		return "", nil
	}), nil
}

func (c *Console) parseNo(line string, f []string, mk mkFunc) (Command, error) {
	dev := c.device
	switch {
	case len(f) == 3 && f[0] == "access-list":
		name := f[1]
		seq, err := strconv.Atoi(f[2])
		if err != nil {
			return Command{}, fmt.Errorf("console: bad sequence number %q", f[2])
		}
		res := fmt.Sprintf("device:%s:acl:%s", dev, name)
		return mk("config.acl.remove", res, true, func(env *Env) (string, error) {
			a := env.Net.Devices[dev].ACL(name, false)
			if a == nil || !a.RemoveEntry(seq) {
				return "", fmt.Errorf("console: %s: no ACL entry %s seq %d", dev, name, seq)
			}
			return "", nil
		}), nil
	case len(f) == 5 && f[0] == "ip" && f[1] == "route":
		netStr, maskStr, nhStr := f[2], f[3], f[4]
		return mk("config.route.remove", fmt.Sprintf("device:%s:route:%s", dev, netStr), true,
			func(env *Env) (string, error) {
				p, err := parseAddrMask(netStr, maskStr)
				if err != nil {
					return "", err
				}
				nh, err := netip.ParseAddr(nhStr)
				if err != nil {
					return "", fmt.Errorf("console: bad next hop %q", nhStr)
				}
				d := env.Net.Devices[dev]
				for i, r := range d.StaticRoutes {
					if r.Prefix == p.Masked() && r.NextHop == nh {
						d.StaticRoutes = append(d.StaticRoutes[:i], d.StaticRoutes[i+1:]...)
						return "", nil
					}
				}
				return "", fmt.Errorf("console: %s: no route %s via %s", dev, p.Masked(), nh)
			}), nil
	case len(f) == 2 && f[0] == "vlan":
		id, err := strconv.Atoi(f[1])
		if err != nil {
			return Command{}, fmt.Errorf("console: bad vlan id %q", f[1])
		}
		return mk("config.vlan.remove", fmt.Sprintf("device:%s:vlan:%d", dev, id), true,
			func(env *Env) (string, error) {
				d := env.Net.Devices[dev]
				if _, ok := d.VLANs[id]; !ok {
					return "", fmt.Errorf("console: %s: no vlan %d", dev, id)
				}
				delete(d.VLANs, id)
				return "", nil
			}), nil
	}
	return Command{}, fmt.Errorf("console: unknown no-command %q", strings.Join(f, " "))
}

func (c *Console) parseIP(line string, f []string, mk mkFunc, devRes string) (Command, error) {
	dev := c.device
	switch {
	case len(f) >= 4 && f[0] == "route":
		netStr, maskStr, nhStr := f[1], f[2], f[3]
		dist := 0
		if len(f) == 5 {
			v, err := strconv.Atoi(f[4])
			if err != nil || v < 1 || v > 255 {
				return Command{}, fmt.Errorf("console: bad distance %q", f[4])
			}
			dist = v
		} else if len(f) != 4 {
			return Command{}, fmt.Errorf("console: usage: ip route NET MASK NEXTHOP [DIST]")
		}
		return mk("config.route.add", fmt.Sprintf("device:%s:route:%s", dev, netStr), true,
			func(env *Env) (string, error) {
				p, err := parseAddrMask(netStr, maskStr)
				if err != nil {
					return "", err
				}
				nh, err := netip.ParseAddr(nhStr)
				if err != nil {
					return "", fmt.Errorf("console: bad next hop %q", nhStr)
				}
				d := env.Net.Devices[dev]
				d.StaticRoutes = append(d.StaticRoutes, netmodel.StaticRoute{
					Prefix: p.Masked(), NextHop: nh, Distance: dist,
				})
				return "", nil
			}), nil
	case len(f) == 2 && f[0] == "default-gateway":
		gwStr := f[1]
		return mk("config.gateway.set", devRes+":gateway", true, func(env *Env) (string, error) {
			gw, err := netip.ParseAddr(gwStr)
			if err != nil {
				return "", fmt.Errorf("console: bad gateway %q", gwStr)
			}
			env.Net.Devices[dev].DefaultGateway = gw
			return "", nil
		}), nil
	}
	return Command{}, fmt.Errorf("console: unknown ip command %q", strings.Join(f, " "))
}

func (c *Console) parseRouter(line string, f []string, mk mkFunc, devRes string) (Command, error) {
	dev := c.device
	if len(f) >= 2 && f[0] == "bgp" {
		return c.parseBGP(line, f[1:], mk, devRes)
	}
	if len(f) < 2 || f[0] != "ospf" {
		return Command{}, fmt.Errorf("console: usage: router {ospf|bgp AS} SUBCOMMAND")
	}
	res := devRes + ":ospf"
	withOSPF := func(apply func(o *netmodel.OSPFProcess) error) func(env *Env) (string, error) {
		return func(env *Env) (string, error) {
			d := env.Net.Devices[dev]
			if d.OSPF == nil {
				d.OSPF = &netmodel.OSPFProcess{ProcessID: 1, Passive: make(map[string]bool)}
			}
			return "", apply(d.OSPF)
		}
	}
	sf := f[1:]
	switch {
	case len(sf) == 2 && sf[0] == "passive-interface":
		name := sf[1]
		return mk("config.ospf.set", res, true, withOSPF(func(o *netmodel.OSPFProcess) error {
			o.Passive[name] = true
			return nil
		})), nil
	case len(sf) == 3 && sf[0] == "no" && sf[1] == "passive-interface":
		name := sf[2]
		return mk("config.ospf.set", res, true, withOSPF(func(o *netmodel.OSPFProcess) error {
			delete(o.Passive, name)
			return nil
		})), nil
	case len(sf) == 5 && sf[0] == "network" && sf[3] == "area":
		netStr, wcStr, areaStr := sf[1], sf[2], sf[4]
		return mk("config.ospf.set", res, true, withOSPF(func(o *netmodel.OSPFProcess) error {
			p, err := parseNetWildcard(netStr, wcStr)
			if err != nil {
				return err
			}
			area, err := strconv.Atoi(areaStr)
			if err != nil || area < 0 {
				return fmt.Errorf("console: bad area %q", areaStr)
			}
			o.Networks = append(o.Networks, netmodel.OSPFNetwork{Prefix: p, Area: area})
			return nil
		})), nil
	}
	return Command{}, fmt.Errorf("console: unknown router ospf subcommand %q", strings.Join(sf, " "))
}

// parseBGP handles "router bgp AS SUBCOMMAND".
func (c *Console) parseBGP(line string, f []string, mk mkFunc, devRes string) (Command, error) {
	dev := c.device
	asn, err := strconv.Atoi(f[0])
	if err != nil || asn <= 0 {
		return Command{}, fmt.Errorf("console: bad AS number %q", f[0])
	}
	res := devRes + ":bgp"
	withBGP := func(apply func(g *netmodel.BGPProcess) error) func(env *Env) (string, error) {
		return func(env *Env) (string, error) {
			d := env.Net.Devices[dev]
			if d.BGP == nil {
				d.BGP = &netmodel.BGPProcess{LocalAS: asn}
			}
			if d.BGP.LocalAS != asn {
				return "", fmt.Errorf("console: %s runs AS %d, not %d", dev, d.BGP.LocalAS, asn)
			}
			return "", apply(d.BGP)
		}
	}
	sf := f[1:]
	switch {
	case len(sf) == 4 && sf[0] == "neighbor" && sf[2] == "remote-as":
		addrStr, asStr := sf[1], sf[3]
		return mk("config.bgp.set", res, true, withBGP(func(g *netmodel.BGPProcess) error {
			addr, err := netip.ParseAddr(addrStr)
			if err != nil {
				return fmt.Errorf("console: bad neighbor address %q", addrStr)
			}
			remote, err := strconv.Atoi(asStr)
			if err != nil || remote <= 0 {
				return fmt.Errorf("console: bad remote-as %q", asStr)
			}
			g.SetNeighbor(addr, remote)
			return nil
		})), nil
	case len(sf) == 3 && sf[0] == "no" && sf[1] == "neighbor":
		addrStr := sf[2]
		return mk("config.bgp.set", res, true, withBGP(func(g *netmodel.BGPProcess) error {
			addr, err := netip.ParseAddr(addrStr)
			if err != nil {
				return fmt.Errorf("console: bad neighbor address %q", addrStr)
			}
			if !g.RemoveNeighbor(addr) {
				return fmt.Errorf("console: no neighbor %s", addrStr)
			}
			return nil
		})), nil
	case len(sf) == 4 && sf[0] == "network" && sf[2] == "mask":
		netStr, maskStr := sf[1], sf[3]
		return mk("config.bgp.set", res, true, withBGP(func(g *netmodel.BGPProcess) error {
			p, err := parseAddrMask(netStr, maskStr)
			if err != nil {
				return err
			}
			g.Networks = append(g.Networks, p.Masked())
			return nil
		})), nil
	}
	return Command{}, fmt.Errorf("console: unknown router bgp subcommand %q", strings.Join(sf, " "))
}

// ping resolves the target (host name or address) and traces from the
// console's device.
func (c *Console) ping(env *Env, target string, proto netmodel.Protocol, port uint16) (string, error) {
	snap := env.Snapshot()
	dst, err := resolveTarget(env.Net, target)
	if err != nil {
		return "", err
	}
	src, ok := sourceAddr(env.Net.Devices[c.device])
	if !ok {
		return "", fmt.Errorf("console: %s has no usable source address", c.device)
	}
	f := dataplane.Flow{Proto: proto, Src: src, Dst: dst, DstPort: port}
	if proto == netmodel.TCP || proto == netmodel.UDP {
		f.SrcPort = 40000
	}
	tr := snap.TraceFrom(c.device, f)
	if tr.Delivered() {
		return fmt.Sprintf("!!!!! success: %s", tr.Flow), nil
	}
	return fmt.Sprintf("..... failed (%s at %s) %s", tr.Disposition, tr.Where, tr.Flow), nil
}

func (c *Console) tracePath(env *Env, target string, proto netmodel.Protocol, port uint16) (string, error) {
	snap := env.Snapshot()
	dst, err := resolveTarget(env.Net, target)
	if err != nil {
		return "", err
	}
	src, ok := sourceAddr(env.Net.Devices[c.device])
	if !ok {
		return "", fmt.Errorf("console: %s has no usable source address", c.device)
	}
	tr := snap.TraceFrom(c.device, dataplane.Flow{Proto: proto, Src: src, Dst: dst, DstPort: port})
	var b strings.Builder
	for i, hop := range tr.Hops {
		fmt.Fprintf(&b, "%2d  %s\n", i+1, hop.Device)
	}
	fmt.Fprintf(&b, "result: %s", tr.Disposition)
	return b.String(), nil
}

func resolveTarget(n *netmodel.Network, target string) (netip.Addr, error) {
	if a, err := netip.ParseAddr(target); err == nil {
		return a, nil
	}
	if a, ok := n.HostAddr(target); ok {
		return a, nil
	}
	// Allow pinging any device's first address by name.
	if d := n.Devices[target]; d != nil {
		if a, ok := sourceAddr(d); ok {
			return a, nil
		}
	}
	return netip.Addr{}, fmt.Errorf("console: cannot resolve %q", target)
}

func sourceAddr(d *netmodel.Device) (netip.Addr, bool) {
	if d == nil {
		return netip.Addr{}, false
	}
	for _, name := range d.InterfaceNames() {
		itf := d.Interfaces[name]
		if itf.Up() && itf.HasAddr() {
			return itf.Addr.Addr(), true
		}
	}
	return netip.Addr{}, false
}

// Catalog returns every (action, resource) pair executable on the device:
// the attack-surface metric's "available commands" A_n. The set grows with
// the device's configuration surface (interfaces, ACLs, routes, VLANs).
func Catalog(d *netmodel.Device) []struct{ Action, Resource string } {
	devRes := "device:" + d.Name
	var out []struct{ Action, Resource string }
	add := func(action, resource string) {
		out = append(out, struct{ Action, Resource string }{action, resource})
	}
	for _, a := range []string{
		"show.running-config", "show.ip.route", "show.interfaces",
		"show.access-lists", "show.vlan", "show.ip.ospf", "show.ip.bgp",
		"diag.ping", "diag.traceroute",
	} {
		add(a, devRes)
	}
	for _, ifName := range d.InterfaceNames() {
		add("config.interface.set", devRes+":interface:"+ifName)
	}
	for _, aclName := range d.ACLNames() {
		add("config.acl.add", devRes+":acl:"+aclName)
		add("config.acl.remove", devRes+":acl:"+aclName)
	}
	add("config.acl.add", devRes+":acl:NEW") // a new ACL can always be created
	add("config.route.add", devRes+":route:0.0.0.0")
	if len(d.StaticRoutes) > 0 {
		add("config.route.remove", devRes+":route:"+d.StaticRoutes[0].Prefix.Addr().String())
	}
	if d.OSPF != nil {
		add("config.ospf.set", devRes+":ospf")
	}
	if d.BGP != nil {
		add("config.bgp.set", devRes+":bgp")
	}
	for _, id := range d.VLANIDs() {
		add("config.vlan.set", fmt.Sprintf("%s:vlan:%d", devRes, id))
		add("config.vlan.remove", fmt.Sprintf("%s:vlan:%d", devRes, id))
	}
	if d.Kind == netmodel.Host || d.DefaultGateway.IsValid() {
		add("config.gateway.set", devRes+":gateway")
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Action != out[j].Action {
			return out[i].Action < out[j].Action
		}
		return out[i].Resource < out[j].Resource
	})
	return out
}
