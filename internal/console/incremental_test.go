package console

import (
	"reflect"
	"testing"

	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
)

// TestIncrementalSnapshotOracle is the correctness oracle for the
// incremental post-write derivation the twin enables: after every command
// in a write-heavy script, the environment's snapshot must match a
// from-scratch dataplane.Compute of the same network — routing state on
// every device and end-to-end reachability included. The script mixes
// classified writes (ACL, static route, interface, OSPF, VLAN), a write
// the classifier punts on (ACL application, which falls back to full
// invalidation), and reads that force derivation of the queued changes.
func TestIncrementalSnapshotOracle(t *testing.T) {
	n := testNet()
	env := NewEnv(n)
	env.EnableIncremental()
	r1 := New("r1", env)

	script := []string{
		"show ip route",
		"access-list EDGE 5 deny tcp any any eq 23",
		"show access-lists EDGE",
		"interface Gi0/1 shutdown",
		"show interfaces",
		"interface Gi0/1 no shutdown",
		"ip route 192.168.0.0 255.255.0.0 10.2.0.10",
		"show ip route",
		"no ip route 192.168.0.0 255.255.0.0 10.2.0.10",
		"no access-list EDGE 5",
		"interface Gi0/0 ip access-group EDGE in", // unclassified write: full recompute path
		"router ospf passive-interface Gi0/0",
		"vlan 40 name lab",
		"ping h2",
	}
	for _, line := range script {
		if _, err := r1.Run(line); err != nil {
			t.Fatalf("%q: %v", line, err)
		}
		got := env.Snapshot()
		want := dataplane.Compute(n)
		for dev := range n.Devices {
			if g, w := got.FormatRIB(dev), want.FormatRIB(dev); g != w {
				t.Fatalf("after %q: %s RIB diverged from fresh compute:\nderived:\n%s\nfresh:\n%s",
					line, dev, g, w)
			}
		}
		gotTr, gotErr := got.Reach("h1", "h2", netmodel.TCP, 22)
		wantTr, wantErr := want.Reach("h1", "h2", netmodel.TCP, 22)
		if (gotErr == nil) != (wantErr == nil) || !reflect.DeepEqual(gotTr, wantTr) {
			t.Fatalf("after %q: reachability diverged: derived (%+v, %v) fresh (%+v, %v)",
				line, gotTr, gotErr, wantTr, wantErr)
		}
	}
}

// TestIncrementalSnapshotInvalidate pins that an explicit Invalidate (an
// out-of-band mutation, e.g. the service layer resetting a twin) discards
// queued incremental changes rather than deriving on top of a stale base.
func TestIncrementalSnapshotInvalidate(t *testing.T) {
	n := testNet()
	env := NewEnv(n)
	env.EnableIncremental()
	r1 := New("r1", env)

	env.Snapshot() // warm the cache so writes queue derivations
	if _, err := r1.Run("ip route 192.168.0.0 255.255.0.0 10.2.0.10"); err != nil {
		t.Fatal(err)
	}
	// Out-of-band mutation the console never saw.
	n.Device("r1").Interface("Gi0/1").Shutdown = true
	env.Invalidate()
	got := env.Snapshot()
	want := dataplane.Compute(n)
	for dev := range n.Devices {
		if g, w := got.FormatRIB(dev), want.FormatRIB(dev); g != w {
			t.Fatalf("%s RIB stale after Invalidate:\n%s\nwant:\n%s", dev, g, w)
		}
	}
}
