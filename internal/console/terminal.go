package console

import (
	"fmt"
	"strings"
)

// Runner executes one flat console command line — a direct console's Run, a
// twin session's Exec, an emergency session's Exec, or an RMM client call.
type Runner func(line string) (string, error)

// Terminal adds IOS-style modal editing on top of the flat command grammar:
//
//	r1# configure terminal
//	r1(config)# interface Gi0/1
//	r1(config-if)# shutdown
//	r1(config-if)# exit
//	r1(config)# ip access-list extended EDGE
//	r1(config-acl)# 10 permit tcp any any eq 443
//	r1(config-acl)# end
//	r1# show ip route
//
// Each modal line is translated into the equivalent flat command and passed
// to the Runner, so mediation (the reference monitor) sees exactly the same
// (action, resource) classification whichever input style the technician
// uses. The terminal itself holds no device state.
type Terminal struct {
	run Runner
	// mode is the sub-mode context stack: empty = exec mode,
	// ["config"] = global config, ["config", "interface Gi0/1"] = sub-mode.
	mode []string
}

// NewTerminal wraps a Runner in a modal terminal.
func NewTerminal(run Runner) *Terminal {
	return &Terminal{run: run}
}

// Prompt renders the IOS-style prompt suffix for the current mode.
func (t *Terminal) Prompt() string {
	switch {
	case len(t.mode) == 0:
		return "#"
	case len(t.mode) == 1:
		return "(config)#"
	default:
		head := strings.Fields(t.mode[1])[0]
		switch head {
		case "interface":
			return "(config-if)#"
		case "router":
			return "(config-router)#"
		case "ip": // ip access-list
			return "(config-acl)#"
		case "vlan":
			return "(config-vlan)#"
		default:
			return "(config)#"
		}
	}
}

// InConfigMode reports whether the terminal is inside configure terminal.
func (t *Terminal) InConfigMode() bool { return len(t.mode) > 0 }

// Input processes one line of modal input: mode navigation is handled
// locally, everything else is translated to a flat command and executed.
func (t *Terminal) Input(line string) (string, error) {
	trimmed := strings.TrimSpace(line)
	if trimmed == "" {
		return "", nil
	}
	f := strings.Fields(trimmed)

	switch {
	case trimmed == "exit":
		if len(t.mode) > 0 {
			t.mode = t.mode[:len(t.mode)-1]
		}
		return "", nil
	case trimmed == "end":
		t.mode = nil
		return "", nil
	case trimmed == "configure terminal" || trimmed == "conf t":
		if t.InConfigMode() {
			return "", fmt.Errorf("console: already in configuration mode")
		}
		t.mode = []string{"config"}
		return "", nil
	}

	// Exec mode: flat commands pass through; config commands need conf t.
	if !t.InConfigMode() {
		switch f[0] {
		case "show", "ping", "traceroute":
			return t.run(trimmed)
		}
		return "", fmt.Errorf("console: %q requires configuration mode (try 'configure terminal')", f[0])
	}

	// "do CMD" runs an exec-mode command from inside config mode.
	if f[0] == "do" {
		return t.run(strings.TrimSpace(strings.TrimPrefix(trimmed, "do")))
	}

	// Global config mode: sub-mode entries and direct config statements.
	if len(t.mode) == 1 {
		switch {
		case f[0] == "interface" && len(f) == 2:
			t.mode = append(t.mode, "interface "+f[1])
			return "", nil
		case f[0] == "router" && len(f) == 3 && (f[1] == "ospf" || f[1] == "bgp"):
			t.mode = append(t.mode, trimmed)
			return "", nil
		case f[0] == "ip" && len(f) == 4 && f[1] == "access-list" && f[2] == "extended":
			t.mode = append(t.mode, "ip access-list "+f[3])
			return "", nil
		case f[0] == "vlan" && len(f) == 2:
			t.mode = append(t.mode, "vlan "+f[1])
			return "", nil
		}
		// Direct global statements map 1:1 onto the flat grammar.
		return t.run(trimmed)
	}

	// Inside a sub-mode: translate relative statements.
	sub := strings.Fields(t.mode[1])
	switch sub[0] {
	case "interface":
		return t.run("interface " + sub[1] + " " + trimmed)
	case "router":
		if sub[1] == "ospf" {
			return t.run("router ospf " + trimmed)
		}
		return t.run("router bgp " + sub[2] + " " + trimmed)
	case "ip": // ip access-list NAME
		name := sub[2]
		if f[0] == "no" && len(f) == 2 {
			return t.run("no access-list " + name + " " + f[1])
		}
		return t.run("access-list " + name + " " + trimmed)
	case "vlan":
		return t.run("vlan " + sub[1] + " " + trimmed)
	}
	return "", fmt.Errorf("console: unhandled mode %q", t.mode[1])
}

// Script feeds a multi-line modal script through the terminal, returning
// the concatenated non-empty outputs. It stops at the first error.
func (t *Terminal) Script(text string) (string, error) {
	var outputs []string
	for i, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "!") {
			continue
		}
		out, err := t.Input(trimmed)
		if err != nil {
			return strings.Join(outputs, "\n"), fmt.Errorf("console: line %d (%q): %w", i+1, trimmed, err)
		}
		if out != "" {
			outputs = append(outputs, out)
		}
	}
	return strings.Join(outputs, "\n"), nil
}
