package console

import (
	"net/netip"
	"strings"
	"testing"

	"heimdall/internal/netmodel"
)

// testNet: h1 - r1 - h2 plus an ACL and OSPF config on r1 so every show
// command has something to render.
func testNet() *netmodel.Network {
	n := netmodel.NewNetwork("c")
	r1 := n.AddDevice("r1", netmodel.Router)
	h1 := n.AddDevice("h1", netmodel.Host)
	h2 := n.AddDevice("h2", netmodel.Host)
	n.MustConnect("h1", "eth0", "r1", "Gi0/0")
	n.MustConnect("r1", "Gi0/1", "h2", "eth0")
	h1.Interface("eth0").Addr = netip.MustParsePrefix("10.1.0.10/24")
	h1.DefaultGateway = netip.MustParseAddr("10.1.0.1")
	r1.Interface("Gi0/0").Addr = netip.MustParsePrefix("10.1.0.1/24")
	r1.Interface("Gi0/1").Addr = netip.MustParsePrefix("10.2.0.1/24")
	h2.Interface("eth0").Addr = netip.MustParsePrefix("10.2.0.10/24")
	h2.DefaultGateway = netip.MustParseAddr("10.2.0.1")
	acl := r1.ACL("EDGE", true)
	acl.InsertEntry(netmodel.ACLEntry{Seq: 10, Action: netmodel.Permit, Proto: netmodel.AnyProto})
	r1.Interface("Gi0/0").ACLIn = "EDGE"
	r1.OSPF = &netmodel.OSPFProcess{ProcessID: 1,
		Networks: []netmodel.OSPFNetwork{{Prefix: netip.MustParsePrefix("10.0.0.0/8"), Area: 0}},
		Passive:  map[string]bool{}}
	r1.VLANs[10] = &netmodel.VLAN{ID: 10, Name: "users"}
	return n
}

func TestShowCommands(t *testing.T) {
	n := testNet()
	env := NewEnv(n)
	c := New("r1", env)

	cases := []struct {
		line     string
		action   string
		contains string
	}{
		{"show running-config", "show.running-config", "hostname r1"},
		{"show ip route", "show.ip.route", "directly connected"},
		{"show interfaces", "show.interfaces", "Gi0/0 is up"},
		{"show interfaces Gi0/1", "show.interfaces", "10.2.0.1/24"},
		{"show access-lists", "show.access-lists", "EDGE"},
		{"show access-lists EDGE", "show.access-lists", "permit ip any any"},
		{"show vlan", "show.vlan", "users"},
		{"show ip ospf neighbor", "show.ip.ospf", "no OSPF neighbors"},
	}
	for _, tc := range cases {
		cmd, err := c.Parse(tc.line)
		if err != nil {
			t.Fatalf("%q: %v", tc.line, err)
		}
		if cmd.Action != tc.action || cmd.Write {
			t.Errorf("%q: action=%s write=%v", tc.line, cmd.Action, cmd.Write)
		}
		if cmd.Resource != "device:r1" {
			t.Errorf("%q: resource=%s", tc.line, cmd.Resource)
		}
		out, err := c.Execute(cmd)
		if err != nil {
			t.Fatalf("%q: execute: %v", tc.line, err)
		}
		if !strings.Contains(out, tc.contains) {
			t.Errorf("%q: output %q missing %q", tc.line, out, tc.contains)
		}
	}
}

func TestPingAndTraceroute(t *testing.T) {
	n := testNet()
	env := NewEnv(n)
	h1 := New("h1", env)

	out, err := h1.Run("ping h2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "success") {
		t.Fatalf("ping h2 = %q", out)
	}
	out, err = h1.Run("ping 10.2.0.10 tcp 80")
	if err != nil || !strings.Contains(out, "success") {
		t.Fatalf("tcp ping = %q err %v", out, err)
	}
	out, err = h1.Run("ping 192.0.2.9")
	if err != nil || !strings.Contains(out, "failed") {
		t.Fatalf("unreachable ping = %q err %v", out, err)
	}
	out, err = h1.Run("traceroute h2")
	if err != nil || !strings.Contains(out, "r1") || !strings.Contains(out, "delivered") {
		t.Fatalf("traceroute = %q err %v", out, err)
	}
	if _, err := h1.Run("ping nosuchhost"); err == nil {
		t.Fatal("unresolvable target accepted")
	}
	if _, err := h1.Run("ping h2 icmp 5"); err == nil {
		t.Fatal("bad ping proto accepted")
	}
}

func TestWriteCommandsMutateAndClassify(t *testing.T) {
	n := testNet()
	env := NewEnv(n)
	r1 := New("r1", env)

	// Interface shutdown changes behaviour: ping breaks afterwards.
	h1 := New("h1", env)
	if out, _ := h1.Run("ping h2"); !strings.Contains(out, "success") {
		t.Fatal("precondition: ping works")
	}
	cmd, err := r1.Parse("interface Gi0/1 shutdown")
	if err != nil {
		t.Fatal(err)
	}
	if !cmd.Write || cmd.Action != "config.interface.set" || cmd.Resource != "device:r1:interface:Gi0/1" {
		t.Fatalf("classification = %+v", cmd)
	}
	if _, err := r1.Execute(cmd); err != nil {
		t.Fatal(err)
	}
	if out, _ := h1.Run("ping h2"); !strings.Contains(out, "failed") {
		t.Fatal("shutdown did not take effect (snapshot not invalidated?)")
	}
	if _, err := r1.Run("interface Gi0/1 no shutdown"); err != nil {
		t.Fatal(err)
	}
	if out, _ := h1.Run("ping h2"); !strings.Contains(out, "success") {
		t.Fatal("no shutdown did not restore")
	}

	// ACL entry add + remove.
	cmd, err = r1.Parse("access-list EDGE 5 deny tcp any host 10.2.0.10 eq 80")
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Action != "config.acl.add" || cmd.Resource != "device:r1:acl:EDGE" {
		t.Fatalf("acl classification = %+v", cmd)
	}
	if _, err := r1.Execute(cmd); err != nil {
		t.Fatal(err)
	}
	if out, _ := h1.Run("ping h2 tcp 80"); !strings.Contains(out, "failed") {
		t.Fatal("ACL deny should block tcp/80")
	}
	if _, err := r1.Run("no access-list EDGE 5"); err != nil {
		t.Fatal(err)
	}
	if out, _ := h1.Run("ping h2 tcp 80"); !strings.Contains(out, "success") {
		t.Fatal("ACL removal should restore tcp/80")
	}

	// Static route add/remove.
	if _, err := r1.Run("ip route 192.168.5.0 255.255.255.0 10.2.0.10"); err != nil {
		t.Fatal(err)
	}
	if len(n.Device("r1").StaticRoutes) != 1 {
		t.Fatal("route not added")
	}
	if _, err := r1.Run("no ip route 192.168.5.0 255.255.255.0 10.2.0.10"); err != nil {
		t.Fatal(err)
	}
	if len(n.Device("r1").StaticRoutes) != 0 {
		t.Fatal("route not removed")
	}

	// OSPF subcommands.
	if _, err := r1.Run("router ospf passive-interface Gi0/0"); err != nil {
		t.Fatal(err)
	}
	if !n.Device("r1").OSPF.Passive["Gi0/0"] {
		t.Fatal("passive-interface not set")
	}
	if _, err := r1.Run("router ospf no passive-interface Gi0/0"); err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Run("router ospf network 10.9.0.0 0.0.255.255 area 2"); err != nil {
		t.Fatal(err)
	}
	nets := n.Device("r1").OSPF.Networks
	if nets[len(nets)-1].Area != 2 {
		t.Fatal("network statement not appended")
	}

	// VLAN and switchport.
	if _, err := r1.Run("vlan 20 name servers"); err != nil {
		t.Fatal(err)
	}
	if n.Device("r1").VLANs[20] == nil {
		t.Fatal("vlan not created")
	}
	if _, err := r1.Run("no vlan 20"); err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Run("interface Gi0/0 switchport access vlan 10"); err != nil {
		t.Fatal(err)
	}
	if got := n.Device("r1").Interface("Gi0/0"); got.Mode != netmodel.Access || got.AccessVLAN != 10 {
		t.Fatal("switchport command not applied")
	}

	// Gateway and address.
	h2c := New("h2", env)
	if _, err := h2c.Run("ip default-gateway 10.2.0.254"); err != nil {
		t.Fatal(err)
	}
	if n.Device("h2").DefaultGateway != netip.MustParseAddr("10.2.0.254") {
		t.Fatal("gateway not set")
	}
	if _, err := r1.Run("interface Gi0/1 ip address 10.2.0.2 255.255.255.0"); err != nil {
		t.Fatal(err)
	}
	if n.Device("r1").Interface("Gi0/1").Addr != netip.MustParsePrefix("10.2.0.2/24") {
		t.Fatal("address not set")
	}
	// Access-group binding.
	if _, err := r1.Run("interface Gi0/0 ip access-group EDGE in"); err != nil {
		t.Fatal(err)
	}
	if n.Device("r1").Interface("Gi0/0").ACLIn != "EDGE" {
		t.Fatal("access-group not bound")
	}
	if _, err := r1.Run("interface Gi0/0 no ip access-group in"); err != nil {
		t.Fatal(err)
	}
	if n.Device("r1").Interface("Gi0/0").ACLIn != "" {
		t.Fatal("access-group not unbound")
	}
}

func TestParseErrors(t *testing.T) {
	c := New("r1", NewEnv(testNet()))
	bad := []string{
		"",
		"frobnicate",
		"show nonsense",
		"ping",
		"ping h2 gre 5",
		"ping h2 tcp 99999",
		"interface",
		"interface Gi0/0 wiggle",
		"access-list X 10 permit",
		"no access-list X notanumber",
		"no what",
		"ip route 10.0.0.0 255.0.0.0",
		"ip route 10.0.0.0 255.0.0.0 1.2.3.4 999",
		"router bgp neighbor",
		"router ospf frob",
		"vlan ten name x",
		"vlan 10 label x",
	}
	for _, line := range bad {
		if _, err := c.Parse(line); err == nil {
			t.Errorf("Parse(%q): expected error", line)
		}
	}
}

func TestExecErrors(t *testing.T) {
	n := testNet()
	env := NewEnv(n)
	r1 := New("r1", env)
	bad := []string{
		"interface Gi9/9 shutdown",
		"no access-list NOPE 10",
		"no ip route 10.0.0.0 255.0.0.0 1.2.3.4",
		"no vlan 99",
		"show interfaces Gi9/9",
		"show access-lists NOPE",
		"ip default-gateway bogus",
		"interface Gi0/0 ip address bogus 255.0.0.0",
	}
	for _, line := range bad {
		if _, err := r1.Run(line); err == nil {
			t.Errorf("Run(%q): expected error", line)
		}
	}
}

func TestOSPFNeighborRendering(t *testing.T) {
	// Two routers that should see each other as neighbors.
	n := netmodel.NewNetwork("o")
	r1 := n.AddDevice("r1", netmodel.Router)
	r2 := n.AddDevice("r2", netmodel.Router)
	n.MustConnect("r1", "Gi0/0", "r2", "Gi0/0")
	r1.Interface("Gi0/0").Addr = netip.MustParsePrefix("10.0.12.1/30")
	r2.Interface("Gi0/0").Addr = netip.MustParsePrefix("10.0.12.2/30")
	for _, r := range []*netmodel.Device{r1, r2} {
		r.OSPF = &netmodel.OSPFProcess{ProcessID: 1,
			Networks: []netmodel.OSPFNetwork{{Prefix: netip.MustParsePrefix("10.0.0.0/8"), Area: 0}},
			Passive:  map[string]bool{}}
	}
	env := NewEnv(n)
	out, err := New("r1", env).Run("show ip ospf neighbor")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "r2") || !strings.Contains(out, "FULL") {
		t.Fatalf("neighbors = %q", out)
	}
	// Passive peer disappears.
	r2.OSPF.Passive["Gi0/0"] = true
	env.Invalidate()
	out, _ = New("r1", env).Run("show ip ospf neighbor")
	if strings.Contains(out, "r2") {
		t.Fatalf("passive peer still shown: %q", out)
	}
}

func TestCatalog(t *testing.T) {
	n := testNet()
	cat := Catalog(n.Device("r1"))
	if len(cat) == 0 {
		t.Fatal("empty catalog")
	}
	actions := map[string]bool{}
	for _, ar := range cat {
		actions[ar.Action] = true
		if !strings.HasPrefix(ar.Resource, "device:r1") {
			t.Errorf("catalog resource %q not on r1", ar.Resource)
		}
	}
	for _, want := range []string{"show.ip.route", "diag.ping", "config.interface.set",
		"config.acl.add", "config.ospf.set", "config.vlan.set"} {
		if !actions[want] {
			t.Errorf("catalog missing action %s", want)
		}
	}
	// Hosts have a smaller surface than routers.
	hostCat := Catalog(n.Device("h1"))
	if len(hostCat) >= len(cat) {
		t.Errorf("host surface (%d) should be smaller than router surface (%d)", len(hostCat), len(cat))
	}
}

func TestRunParseErrorPropagates(t *testing.T) {
	c := New("r1", NewEnv(testNet()))
	if _, err := c.Run("bogus"); err == nil {
		t.Fatal("Run should propagate parse errors")
	}
}
