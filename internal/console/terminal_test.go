package console

import (
	"net/netip"
	"strings"
	"testing"

	"heimdall/internal/netmodel"
)

func newTerminal(t *testing.T) (*Terminal, *netmodel.Network) {
	t.Helper()
	n := testNet()
	env := NewEnv(n)
	con := New("r1", env)
	return NewTerminal(con.Run), n
}

func TestTerminalModalConfig(t *testing.T) {
	term, n := newTerminal(t)

	if term.Prompt() != "#" || term.InConfigMode() {
		t.Fatalf("initial prompt = %q", term.Prompt())
	}
	// Exec-mode commands work directly.
	out, err := term.Input("show ip route")
	if err != nil || !strings.Contains(out, "directly connected") {
		t.Fatalf("show in exec mode: %q %v", out, err)
	}
	// Config statements require conf t.
	if _, err := term.Input("interface Gi0/1"); err == nil {
		t.Fatal("config statement accepted in exec mode")
	}

	steps := []struct{ line, prompt string }{
		{"configure terminal", "(config)#"},
		{"interface Gi0/1", "(config-if)#"},
		{"shutdown", "(config-if)#"},
		{"exit", "(config)#"},
		{"ip access-list extended EDGE", "(config-acl)#"},
		{"5 deny tcp any host 10.2.0.10 eq 443", "(config-acl)#"},
		{"exit", "(config)#"},
		{"vlan 30", "(config-vlan)#"},
		{"name mgmt", "(config-vlan)#"},
		{"exit", "(config)#"},
		{"router ospf 1", "(config-router)#"},
		{"passive-interface Gi0/0", "(config-router)#"},
		{"end", "#"},
	}
	for _, st := range steps {
		if _, err := term.Input(st.line); err != nil {
			t.Fatalf("%q: %v", st.line, err)
		}
		if term.Prompt() != st.prompt {
			t.Fatalf("%q: prompt = %q, want %q", st.line, term.Prompt(), st.prompt)
		}
	}

	r1 := n.Device("r1")
	if !r1.Interface("Gi0/1").Shutdown {
		t.Error("interface sub-mode shutdown not applied")
	}
	if got := r1.ACLs["EDGE"].Entries[0]; got.Seq != 5 || got.DstPort != 443 {
		t.Errorf("ACL sub-mode entry = %+v", got)
	}
	if r1.VLANs[30] == nil || r1.VLANs[30].Name != "mgmt" {
		t.Error("vlan sub-mode not applied")
	}
	if !r1.OSPF.Passive["Gi0/0"] {
		t.Error("router sub-mode not applied")
	}
}

func TestTerminalDoAndNo(t *testing.T) {
	term, n := newTerminal(t)
	script := `
configure terminal
ip route 192.168.9.0 255.255.255.0 10.2.0.10
do show ip route
ip access-list extended EDGE
no 10
end
show access-lists EDGE
`
	out, err := term.Script(script)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "192.168.9.0/24") {
		t.Fatalf("do-command output missing route:\n%s", out)
	}
	if len(n.Device("r1").ACLs["EDGE"].Entries) != 0 {
		t.Fatal("no <seq> in ACL sub-mode did not remove the entry")
	}
	if len(n.Device("r1").StaticRoutes) != 1 {
		t.Fatal("global config statement not applied")
	}
}

func TestTerminalBGPSubMode(t *testing.T) {
	n := testNet()
	n.Device("r1").BGP = &netmodel.BGPProcess{LocalAS: 65001}
	term := NewTerminal(New("r1", NewEnv(n)).Run)
	script := `
configure terminal
router bgp 65001
neighbor 10.2.0.10 remote-as 65002
network 10.1.0.0 mask 255.255.255.0
end
`
	if _, err := term.Script(script); err != nil {
		t.Fatal(err)
	}
	g := n.Device("r1").BGP
	if g.Neighbor(netip.MustParseAddr("10.2.0.10")) == nil || len(g.Networks) != 1 {
		t.Fatalf("BGP sub-mode not applied: %+v", g)
	}
}

func TestTerminalErrors(t *testing.T) {
	term, _ := newTerminal(t)
	if _, err := term.Input("configure terminal"); err != nil {
		t.Fatal(err)
	}
	if _, err := term.Input("configure terminal"); err == nil {
		t.Fatal("nested conf t accepted")
	}
	// Errors from the runner propagate with the line context via Script.
	term2, _ := newTerminal(t)
	_, err := term2.Script("configure terminal\ninterface Gi9/9\nshutdown\n")
	if err == nil || !strings.Contains(err.Error(), "Gi9/9") && !strings.Contains(err.Error(), "line") {
		t.Fatalf("script error context: %v", err)
	}
	// Blank lines and comments are skipped.
	if _, err := term.Script("\n! comment\n\n"); err != nil {
		t.Fatal(err)
	}
	// exit in exec mode is a no-op.
	if _, err := term.Input("exit"); err != nil {
		t.Fatal(err)
	}
}

// TestTerminalOverTwinMediation proves the modal terminal composes with the
// twin's reference monitor: the same Runner signature, the same denials.
func TestTerminalMediationComposes(t *testing.T) {
	denied := func(line string) (string, error) {
		if strings.HasPrefix(line, "show") {
			return "ok", nil
		}
		return "", &deniedErr{}
	}
	term := NewTerminal(denied)
	if out, err := term.Input("show ip route"); err != nil || out != "ok" {
		t.Fatalf("read: %q %v", out, err)
	}
	if _, err := term.Input("configure terminal"); err != nil {
		t.Fatal(err)
	}
	if _, err := term.Input("interface Gi0/0"); err != nil {
		t.Fatal(err) // mode entry is local, no command issued yet
	}
	if _, err := term.Input("shutdown"); err == nil {
		t.Fatal("denied write should propagate")
	}
}

type deniedErr struct{}

func (*deniedErr) Error() string { return "permission denied" }
