package console

import (
	"fmt"
	"net/netip"
	"strings"

	"heimdall/internal/config"
	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
)

// Thin wrappers so the console shares one grammar with the config parser.

func parseAddrMask(addr, mask string) (netip.Prefix, error) {
	return config.ParseAddrMask(addr, mask)
}

func parseNetWildcard(addr, wc string) (netip.Prefix, error) {
	return config.ParseNetWildcard(addr, wc)
}

func parseACLEntry(tokens []string) (netmodel.ACLEntry, error) {
	return config.ParseACLEntry(tokens)
}

func renderRunningConfig(d *netmodel.Device) string {
	return config.Print(d)
}

func renderInterfaces(d *netmodel.Device, name string) (string, error) {
	var names []string
	if name != "" {
		if d.Interface(name) == nil {
			return "", fmt.Errorf("console: %s: no interface %s", d.Name, name)
		}
		names = []string{name}
	} else {
		names = d.InterfaceNames()
	}
	var b strings.Builder
	for _, n := range names {
		itf := d.Interfaces[n]
		status := "up"
		if itf.Shutdown {
			status = "administratively down"
		}
		fmt.Fprintf(&b, "%s is %s\n", n, status)
		if itf.HasAddr() {
			fmt.Fprintf(&b, "  Internet address is %s\n", itf.Addr)
		}
		if itf.Description != "" {
			fmt.Fprintf(&b, "  Description: %s\n", itf.Description)
		}
		switch itf.Mode {
		case netmodel.Access:
			fmt.Fprintf(&b, "  Switchport: access vlan %d\n", itf.AccessVLAN)
		case netmodel.Trunk:
			fmt.Fprintf(&b, "  Switchport: trunk %v\n", itf.TrunkVLANs)
		}
		if itf.ACLIn != "" {
			fmt.Fprintf(&b, "  Inbound access list is %s\n", itf.ACLIn)
		}
		if itf.ACLOut != "" {
			fmt.Fprintf(&b, "  Outbound access list is %s\n", itf.ACLOut)
		}
	}
	return strings.TrimRight(b.String(), "\n"), nil
}

func renderACLs(d *netmodel.Device, name string) (string, error) {
	var names []string
	if name != "" {
		if d.ACL(name, false) == nil {
			return "", fmt.Errorf("console: %s: no access list %s", d.Name, name)
		}
		names = []string{name}
	} else {
		names = d.ACLNames()
	}
	var b strings.Builder
	for _, n := range names {
		a := d.ACLs[n]
		fmt.Fprintf(&b, "Extended IP access list %s\n", a.Name)
		for i := range a.Entries {
			fmt.Fprintf(&b, "    %s\n", config.FormatACLEntry(&a.Entries[i]))
		}
	}
	if b.Len() == 0 {
		return "% no access lists configured", nil
	}
	return strings.TrimRight(b.String(), "\n"), nil
}

func renderVLANs(d *netmodel.Device) string {
	ids := d.VLANIDs()
	if len(ids) == 0 {
		return "% no vlans configured"
	}
	var b strings.Builder
	b.WriteString("VLAN Name\n---- ----\n")
	for _, id := range ids {
		fmt.Fprintf(&b, "%-4d %s\n", id, d.VLANs[id].Name)
	}
	return strings.TrimRight(b.String(), "\n")
}

// renderOSPFNeighbors lists routers this device would form OSPF
// adjacencies with, derived from the snapshot's adjacency and route state.
func renderOSPFNeighbors(env *Env, dev string) string {
	d := env.Net.Devices[dev]
	if d.OSPF == nil {
		return "% OSPF not configured"
	}
	snap := env.Snapshot()
	var b strings.Builder
	seen := map[string]bool{}
	for _, ifName := range d.InterfaceNames() {
		itf := d.Interfaces[ifName]
		if !itf.Up() || !itf.HasAddr() {
			continue
		}
		if _, enabled := d.OSPF.EnabledArea(itf.Addr.Addr()); !enabled || d.OSPF.Passive[ifName] {
			continue
		}
		for _, peer := range snap.Adjacent(netmodel.Endpoint{Device: dev, Interface: ifName}) {
			pd := env.Net.Devices[peer.Device]
			if pd == nil || pd.OSPF == nil || seen[peer.Device] {
				continue
			}
			pi := pd.Interface(peer.Interface)
			if pi == nil || !itf.Addr.Masked().Contains(pi.Addr.Addr()) {
				continue
			}
			if _, enabled := pd.OSPF.EnabledArea(pi.Addr.Addr()); !enabled || pd.OSPF.Passive[peer.Interface] {
				continue
			}
			seen[peer.Device] = true
			fmt.Fprintf(&b, "%-12s FULL  %s  %s\n", peer.Device, pi.Addr.Addr(), ifName)
		}
	}
	if b.Len() == 0 {
		return "% no OSPF neighbors"
	}
	return strings.TrimRight(b.String(), "\n")
}

// NewEnv builds a command environment around a mutable network with a
// lazily recomputed snapshot. With EnableIncremental, the post-write
// snapshot derives from the previous one (dataplane.Derive) instead of
// recomputing from scratch; writes the console cannot classify still
// invalidate fully.
func NewEnv(n *netmodel.Network) *Env {
	var snap *dataplane.Snapshot
	var pending dataplane.ChangeSet
	env := &Env{Net: n}
	env.Snapshot = func() *dataplane.Snapshot {
		if snap != nil && len(pending) > 0 {
			snap = snap.Derive(n, pending)
			pending = nil
		}
		if snap == nil {
			pending = nil
			snap = dataplane.Compute(n)
		}
		return snap
	}
	env.Invalidate = func() { snap, pending = nil, nil }
	env.noteChange = func(device string, kind dataplane.ChangeKind) {
		if snap == nil {
			// Nothing cached: the next read computes fresh anyway.
			return
		}
		pending = append(pending, dataplane.Change{Device: device, Kind: kind})
	}
	return env
}

// EnableIncremental turns on incremental post-write snapshot derivation.
// It is only sound when every mutation of the environment's network goes
// through this console environment: an external writer (the enforcer
// committing to production, a fault injection) would leave the derived
// snapshot describing a network that no longer exists. The twin enables
// it — technician consoles are the only writers of the emulation layer —
// and it is what keeps the mediated-command tail flat when a diagnosis
// script alternates writes with snapshot-hungry reads.
func (e *Env) EnableIncremental() { e.incremental = true }
