package console

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// commandCorpus is a broad sample of every command family the console
// accepts, used for classification-invariant tests.
var commandCorpus = []string{
	"show running-config",
	"show ip route",
	"show interfaces",
	"show interfaces Gi0/0",
	"show access-lists",
	"show access-lists EDGE",
	"show vlan",
	"show ip ospf neighbor",
	"show ip bgp",
	"ping h2",
	"ping 10.2.0.10 tcp 80",
	"traceroute h2",
	"interface Gi0/0 shutdown",
	"interface Gi0/0 no shutdown",
	"interface Gi0/0 ip address 10.1.0.2 255.255.255.0",
	"interface Gi0/0 ip access-group EDGE in",
	"interface Gi0/0 no ip access-group in",
	"interface Gi0/0 switchport access vlan 10",
	"interface Gi0/0 ip ospf cost 5",
	"access-list EDGE 30 permit tcp any any eq 443",
	"no access-list EDGE 10",
	"ip route 192.168.0.0 255.255.0.0 10.2.0.10",
	"no ip route 192.168.0.0 255.255.0.0 10.2.0.10",
	"ip default-gateway 10.1.0.1",
	"router ospf passive-interface Gi0/0",
	"router ospf no passive-interface Gi0/0",
	"router ospf network 10.0.0.0 0.255.255.255 area 0",
	"router bgp 65001 neighbor 10.2.0.10 remote-as 65002",
	"router bgp 65001 network 10.1.0.0 mask 255.255.255.0",
	"vlan 40 name lab",
	"no vlan 10",
}

// TestReadCommandsArePure checks the central classification invariant the
// reference monitor depends on: a command parsed with Write=false must not
// change the network, and one with Write=true (that executes successfully)
// must be reflected in the semantic state or be a genuine no-op.
func TestReadCommandsArePure(t *testing.T) {
	for _, line := range commandCorpus {
		n := testNet()
		n.Device("r1").VLANs[10] = n.Device("r1").VLANs[10] // keep as-is
		env := NewEnv(n)
		con := New("r1", env)
		cmd, err := con.Parse(line)
		if err != nil {
			t.Fatalf("corpus command %q no longer parses: %v", line, err)
		}
		before := n.Clone()
		_, execErr := con.Execute(cmd)
		if !cmd.Write {
			if !reflect.DeepEqual(before.Devices["r1"], n.Devices["r1"]) {
				t.Errorf("%q is classified read-only but mutated the device", line)
			}
		}
		if cmd.Action == "" || cmd.Resource == "" {
			t.Errorf("%q: empty action/resource classification", line)
		}
		if !strings.HasPrefix(cmd.Resource, "device:r1") {
			t.Errorf("%q: resource %q not scoped to the device", line, cmd.Resource)
		}
		// Write commands must carry a config.* action; reads never do.
		isConfig := strings.HasPrefix(cmd.Action, "config.")
		if cmd.Write != isConfig {
			t.Errorf("%q: Write=%v but action=%q", line, cmd.Write, cmd.Action)
		}
		_ = execErr // some corpus commands legitimately fail on this net
	}
}

// TestParseNeverPanics throws random token soup at the parser.
func TestParseNeverPanics(t *testing.T) {
	words := []string{
		"show", "ip", "route", "interface", "Gi0/0", "no", "shutdown",
		"access-list", "permit", "deny", "any", "host", "eq", "80", "vlan",
		"router", "ospf", "bgp", "network", "mask", "area", "neighbor",
		"remote-as", "255.255.255.0", "10.0.0.1", "0.0.0.255", "name",
		"ping", "traceroute", "default-gateway", "cost", "passive-interface",
		"", "🦊", "-1", "999999999999999999999",
	}
	r := rand.New(rand.NewSource(123))
	con := New("r1", NewEnv(testNet()))
	for trial := 0; trial < 3000; trial++ {
		n := 1 + r.Intn(8)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = words[r.Intn(len(words))]
		}
		line := strings.Join(parts, " ")
		// Must not panic; errors are expected and fine.
		cmd, err := con.Parse(line)
		if err == nil && (cmd.Action == "" || cmd.Resource == "") {
			t.Fatalf("accepted %q without classification", line)
		}
	}
}

// TestExecuteNeverPanics also executes whatever random soup parses.
func TestExecuteNeverPanics(t *testing.T) {
	words := []string{
		"show", "ip", "route", "interface", "Gi0/0", "Gi9/9", "no",
		"shutdown", "access-list", "EDGE", "10", "permit", "deny", "any",
		"vlan", "20", "name", "x", "router", "ospf", "bgp", "65001",
		"ping", "h2", "tcp", "80", "10.0.0.1", "255.0.0.0",
	}
	r := rand.New(rand.NewSource(321))
	env := NewEnv(testNet())
	con := New("r1", env)
	for trial := 0; trial < 3000; trial++ {
		n := 1 + r.Intn(8)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = words[r.Intn(len(words))]
		}
		cmd, err := con.Parse(strings.Join(parts, " "))
		if err != nil {
			continue
		}
		_, _ = con.Execute(cmd) // must not panic
	}
}
