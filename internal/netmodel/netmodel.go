// Package netmodel defines the vendor-neutral semantic model of a managed
// network: devices (routers, switches, hosts), their interfaces, links,
// VLANs, access-control lists, static routes and OSPF processes.
//
// The model is deliberately plain data. The config package translates
// between this model and vendor-style configuration text; the dataplane
// package computes routing and forwarding behaviour from it; the twin
// package deep-copies it to build isolated twin networks.
package netmodel

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
)

// DeviceKind classifies a device by its forwarding role.
type DeviceKind int

const (
	// Router forwards packets between L3 subnets using its routing table.
	Router DeviceKind = iota
	// Switch forwards frames within VLANs and may route between VLANs
	// through switched virtual interfaces (SVIs).
	Switch
	// Host is an endpoint: it originates and sinks traffic and forwards
	// nothing. A host uses its default gateway for off-subnet traffic.
	Host
)

// String returns the lowercase name of the device kind.
func (k DeviceKind) String() string {
	switch k {
	case Router:
		return "router"
	case Switch:
		return "switch"
	case Host:
		return "host"
	default:
		return fmt.Sprintf("DeviceKind(%d)", int(k))
	}
}

// SwitchportMode describes the L2 role of an interface.
type SwitchportMode int

const (
	// Routed is an L3 interface with an IP address (the default).
	Routed SwitchportMode = iota
	// Access carries exactly one VLAN untagged.
	Access
	// Trunk carries multiple tagged VLANs.
	Trunk
)

// String returns the lowercase name of the switchport mode.
func (m SwitchportMode) String() string {
	switch m {
	case Routed:
		return "routed"
	case Access:
		return "access"
	case Trunk:
		return "trunk"
	default:
		return fmt.Sprintf("SwitchportMode(%d)", int(m))
	}
}

// Interface is a single network interface on a device.
type Interface struct {
	Name        string
	Description string

	// Addr is the interface's IP address and prefix length. The zero
	// value means the interface has no L3 address.
	Addr netip.Prefix

	// Shutdown is true when the interface is administratively down.
	Shutdown bool

	// ACLIn and ACLOut name ACLs applied to traffic entering and leaving
	// the interface. Empty means no ACL.
	ACLIn  string
	ACLOut string

	// Mode, AccessVLAN and TrunkVLANs describe L2 switchport behaviour.
	Mode       SwitchportMode
	AccessVLAN int
	TrunkVLANs []int

	// OSPFCost overrides the interface's OSPF link cost (0 = default 1).
	OSPFCost int
}

// HasAddr reports whether the interface has an IP address configured.
func (i *Interface) HasAddr() bool { return i.Addr.IsValid() }

// Up reports whether the interface is administratively up.
func (i *Interface) Up() bool { return !i.Shutdown }

// IsSVI reports whether the interface is a switched virtual interface
// ("Vlan<N>"), which provides L3 routing into a VLAN.
func (i *Interface) IsSVI() bool { return strings.HasPrefix(i.Name, "Vlan") }

// SVIVLAN returns the VLAN ID of an SVI, or 0 if the interface is not one.
func (i *Interface) SVIVLAN() int {
	if !i.IsSVI() {
		return 0
	}
	var id int
	if _, err := fmt.Sscanf(i.Name, "Vlan%d", &id); err != nil {
		return 0
	}
	return id
}

// CarriesVLAN reports whether the interface carries the given VLAN at L2.
func (i *Interface) CarriesVLAN(id int) bool {
	switch i.Mode {
	case Access:
		return i.AccessVLAN == id
	case Trunk:
		for _, v := range i.TrunkVLANs {
			if v == id {
				return true
			}
		}
	}
	return false
}

// Clone returns a deep copy of the interface.
func (i *Interface) Clone() *Interface {
	c := *i
	c.TrunkVLANs = append([]int(nil), i.TrunkVLANs...)
	return &c
}

// VLAN is an L2 broadcast domain definition.
type VLAN struct {
	ID   int
	Name string
}

// ACLAction is the verdict of an ACL entry.
type ACLAction int

const (
	// Deny drops matching traffic.
	Deny ACLAction = iota
	// Permit forwards matching traffic.
	Permit
)

// String returns "permit" or "deny".
func (a ACLAction) String() string {
	if a == Permit {
		return "permit"
	}
	return "deny"
}

// Protocol identifies the protocol an ACL entry or packet uses.
type Protocol int

const (
	// AnyProto matches every IP protocol.
	AnyProto Protocol = iota
	// TCP matches only TCP segments.
	TCP
	// UDP matches only UDP datagrams.
	UDP
	// ICMP matches only ICMP messages.
	ICMP
)

// String returns the lowercase protocol keyword ("ip" for AnyProto).
func (p Protocol) String() string {
	switch p {
	case AnyProto:
		return "ip"
	case TCP:
		return "tcp"
	case UDP:
		return "udp"
	case ICMP:
		return "icmp"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// ParseProtocol converts a protocol keyword to a Protocol value.
func ParseProtocol(s string) (Protocol, error) {
	switch strings.ToLower(s) {
	case "ip", "any":
		return AnyProto, nil
	case "tcp":
		return TCP, nil
	case "udp":
		return UDP, nil
	case "icmp":
		return ICMP, nil
	}
	return AnyProto, fmt.Errorf("netmodel: unknown protocol %q", s)
}

// ACLEntry is one rule of an access list. The zero prefix (IsValid()==false)
// on Src or Dst means "any". Port 0 means "any port".
type ACLEntry struct {
	Seq    int
	Action ACLAction
	Proto  Protocol
	Src    netip.Prefix
	Dst    netip.Prefix
	// SrcPort and DstPort match a single port when non-zero ("eq N").
	SrcPort uint16
	DstPort uint16
}

// Matches reports whether the entry matches a flow described by protocol,
// source and destination address, and transport ports.
func (e *ACLEntry) Matches(proto Protocol, src, dst netip.Addr, sport, dport uint16) bool {
	if e.Proto != AnyProto && e.Proto != proto {
		return false
	}
	if e.Src.IsValid() && !e.Src.Contains(src) {
		return false
	}
	if e.Dst.IsValid() && !e.Dst.Contains(dst) {
		return false
	}
	if e.SrcPort != 0 && e.SrcPort != sport {
		return false
	}
	if e.DstPort != 0 && e.DstPort != dport {
		return false
	}
	return true
}

// ACL is an ordered access list. Evaluation is first match wins; a flow
// matching no entry is denied (the implicit deny of IOS-style ACLs).
type ACL struct {
	Name    string
	Entries []ACLEntry
}

// Evaluate returns the verdict for the flow, applying first-match-wins and
// the trailing implicit deny.
func (a *ACL) Evaluate(proto Protocol, src, dst netip.Addr, sport, dport uint16) ACLAction {
	for i := range a.Entries {
		if a.Entries[i].Matches(proto, src, dst, sport, dport) {
			return a.Entries[i].Action
		}
	}
	return Deny
}

// Clone returns a deep copy of the ACL.
func (a *ACL) Clone() *ACL {
	return &ACL{Name: a.Name, Entries: append([]ACLEntry(nil), a.Entries...)}
}

// NextSeq returns the sequence number a newly appended entry should use.
func (a *ACL) NextSeq() int {
	max := 0
	for i := range a.Entries {
		if a.Entries[i].Seq > max {
			max = a.Entries[i].Seq
		}
	}
	return max + 10
}

// InsertEntry adds an entry keeping the list ordered by sequence number.
// An entry with a duplicate sequence number replaces the existing one.
func (a *ACL) InsertEntry(e ACLEntry) {
	for i := range a.Entries {
		if a.Entries[i].Seq == e.Seq {
			a.Entries[i] = e
			return
		}
		if a.Entries[i].Seq > e.Seq {
			a.Entries = append(a.Entries[:i], append([]ACLEntry{e}, a.Entries[i:]...)...)
			return
		}
	}
	a.Entries = append(a.Entries, e)
}

// RemoveEntry deletes the entry with the given sequence number and reports
// whether one was removed.
func (a *ACL) RemoveEntry(seq int) bool {
	for i := range a.Entries {
		if a.Entries[i].Seq == seq {
			a.Entries = append(a.Entries[:i], a.Entries[i+1:]...)
			return true
		}
	}
	return false
}

// StaticRoute is a manually configured route.
type StaticRoute struct {
	Prefix  netip.Prefix
	NextHop netip.Addr
	// Distance is the administrative distance; 0 means the IOS default of 1.
	Distance int
}

// AdminDistance returns the effective administrative distance.
func (r StaticRoute) AdminDistance() int {
	if r.Distance == 0 {
		return 1
	}
	return r.Distance
}

// OSPFNetwork enables OSPF on interfaces whose address falls inside Prefix,
// placing them in Area.
type OSPFNetwork struct {
	Prefix netip.Prefix
	Area   int
}

// OSPFProcess is a device's OSPF routing process.
type OSPFProcess struct {
	ProcessID int
	RouterID  netip.Addr
	Networks  []OSPFNetwork
	// Ranges configures ABR route aggregation (`area <n> range <prefix>`):
	// when this router advertises Area's intra-area prefixes into another
	// area, prefixes covered by Prefix collapse into a single summary for
	// Prefix whose cost is the minimum component cost (RFC 1583
	// compatibility semantics). Ranges on non-ABRs are inert.
	Ranges []OSPFNetwork
	// Passive interfaces advertise their subnet but form no adjacency.
	Passive map[string]bool
}

// Clone returns a deep copy of the OSPF process.
func (o *OSPFProcess) Clone() *OSPFProcess {
	c := &OSPFProcess{
		ProcessID: o.ProcessID,
		RouterID:  o.RouterID,
		Networks:  append([]OSPFNetwork(nil), o.Networks...),
		Ranges:    append([]OSPFNetwork(nil), o.Ranges...),
		Passive:   make(map[string]bool, len(o.Passive)),
	}
	for k, v := range o.Passive {
		c.Passive[k] = v
	}
	return c
}

// EnabledArea returns the OSPF area for the given interface address and
// whether OSPF is enabled on it. The longest matching network statement
// wins, following IOS semantics.
func (o *OSPFProcess) EnabledArea(addr netip.Addr) (int, bool) {
	best := -1
	area := 0
	for _, n := range o.Networks {
		if n.Prefix.Contains(addr) && n.Prefix.Bits() > best {
			best = n.Prefix.Bits()
			area = n.Area
		}
	}
	return area, best >= 0
}

// Device is a single managed network element.
type Device struct {
	Name string
	Kind DeviceKind

	// Interfaces holds the device's interfaces keyed by name.
	Interfaces map[string]*Interface

	// ACLs holds named access lists.
	ACLs map[string]*ACL

	// VLANs holds VLAN definitions (switches).
	VLANs map[int]*VLAN

	StaticRoutes []StaticRoute
	OSPF         *OSPFProcess
	BGP          *BGPProcess

	// DefaultGateway is used by hosts for off-subnet traffic.
	DefaultGateway netip.Addr

	// Secrets holds sensitive configuration material (enable secrets,
	// SNMP communities, IPSec keys) keyed by kind. The twin network
	// sanitizes these before exposing any configuration.
	Secrets map[string]string
}

// NewDevice returns an empty device of the given kind.
func NewDevice(name string, kind DeviceKind) *Device {
	return &Device{
		Name:       name,
		Kind:       kind,
		Interfaces: make(map[string]*Interface),
		ACLs:       make(map[string]*ACL),
		VLANs:      make(map[int]*VLAN),
		Secrets:    make(map[string]string),
	}
}

// AddInterface creates (or returns an existing) interface with the name.
func (d *Device) AddInterface(name string) *Interface {
	if itf, ok := d.Interfaces[name]; ok {
		return itf
	}
	itf := &Interface{Name: name}
	d.Interfaces[name] = itf
	return itf
}

// Interface returns the named interface, or nil.
func (d *Device) Interface(name string) *Interface { return d.Interfaces[name] }

// ACL returns the named ACL, creating it when create is true.
func (d *Device) ACL(name string, create bool) *ACL {
	if a, ok := d.ACLs[name]; ok {
		return a
	}
	if !create {
		return nil
	}
	a := &ACL{Name: name}
	d.ACLs[name] = a
	return a
}

// InterfaceNames returns the interface names in sorted order.
func (d *Device) InterfaceNames() []string {
	names := make([]string, 0, len(d.Interfaces))
	for n := range d.Interfaces {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ACLNames returns the ACL names in sorted order.
func (d *Device) ACLNames() []string {
	names := make([]string, 0, len(d.ACLs))
	for n := range d.ACLs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// VLANIDs returns the VLAN IDs in ascending order.
func (d *Device) VLANIDs() []int {
	ids := make([]int, 0, len(d.VLANs))
	for id := range d.VLANs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// AddrOnSubnet returns the first up interface address on the same subnet as
// the given address, which is how a device decides it can ARP directly.
func (d *Device) AddrOnSubnet(a netip.Addr) (*Interface, bool) {
	for _, name := range d.InterfaceNames() {
		itf := d.Interfaces[name]
		if itf.Up() && itf.HasAddr() && itf.Addr.Masked().Contains(a) {
			return itf, true
		}
	}
	return nil, false
}

// Clone returns a deep copy of the device.
func (d *Device) Clone() *Device {
	c := NewDevice(d.Name, d.Kind)
	c.DefaultGateway = d.DefaultGateway
	for n, itf := range d.Interfaces {
		c.Interfaces[n] = itf.Clone()
	}
	for n, a := range d.ACLs {
		c.ACLs[n] = a.Clone()
	}
	for id, v := range d.VLANs {
		vv := *v
		c.VLANs[id] = &vv
	}
	c.StaticRoutes = append([]StaticRoute(nil), d.StaticRoutes...)
	if d.OSPF != nil {
		c.OSPF = d.OSPF.Clone()
	}
	if d.BGP != nil {
		c.BGP = d.BGP.Clone()
	}
	for k, v := range d.Secrets {
		c.Secrets[k] = v
	}
	return c
}
