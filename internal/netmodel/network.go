package netmodel

import (
	"fmt"
	"net/netip"
	"sort"
)

// Endpoint names one end of a link: an interface on a device.
type Endpoint struct {
	Device    string
	Interface string
}

// String returns "device:interface".
func (e Endpoint) String() string { return e.Device + ":" + e.Interface }

// Link is a point-to-point cable between two interfaces.
type Link struct {
	A, B Endpoint
}

// Other returns the endpoint opposite to the one on the named device and
// whether the link touches that device at all.
func (l *Link) Other(device string) (Endpoint, bool) {
	switch device {
	case l.A.Device:
		return l.B, true
	case l.B.Device:
		return l.A, true
	}
	return Endpoint{}, false
}

// Touches reports whether the link attaches to the given interface.
func (l *Link) Touches(device, itf string) bool {
	return (l.A.Device == device && l.A.Interface == itf) ||
		(l.B.Device == device && l.B.Interface == itf)
}

// Network is the complete model of a managed network: its devices and the
// physical links between them.
type Network struct {
	Name    string
	Devices map[string]*Device
	Links   []*Link
}

// NewNetwork returns an empty network.
func NewNetwork(name string) *Network {
	return &Network{Name: name, Devices: make(map[string]*Device)}
}

// AddDevice creates and registers a device. It panics if the name is taken,
// since topologies are built programmatically and a duplicate is a bug.
func (n *Network) AddDevice(name string, kind DeviceKind) *Device {
	if _, ok := n.Devices[name]; ok {
		panic(fmt.Sprintf("netmodel: duplicate device %q", name))
	}
	d := NewDevice(name, kind)
	n.Devices[name] = d
	return d
}

// Device returns the named device, or nil.
func (n *Network) Device(name string) *Device { return n.Devices[name] }

// DeviceNames returns all device names in sorted order.
func (n *Network) DeviceNames() []string {
	names := make([]string, 0, len(n.Devices))
	for name := range n.Devices {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Connect cables devA:ifA to devB:ifB, creating the interfaces when they do
// not exist yet. It returns an error when either device is missing or either
// interface is already cabled.
func (n *Network) Connect(devA, ifA, devB, ifB string) error {
	da, db := n.Devices[devA], n.Devices[devB]
	if da == nil {
		return fmt.Errorf("netmodel: connect: unknown device %q", devA)
	}
	if db == nil {
		return fmt.Errorf("netmodel: connect: unknown device %q", devB)
	}
	for _, l := range n.Links {
		if l.Touches(devA, ifA) {
			return fmt.Errorf("netmodel: connect: %s:%s already cabled", devA, ifA)
		}
		if l.Touches(devB, ifB) {
			return fmt.Errorf("netmodel: connect: %s:%s already cabled", devB, ifB)
		}
	}
	da.AddInterface(ifA)
	db.AddInterface(ifB)
	n.Links = append(n.Links, &Link{
		A: Endpoint{Device: devA, Interface: ifA},
		B: Endpoint{Device: devB, Interface: ifB},
	})
	return nil
}

// MustConnect is Connect that panics on error, for use in generators.
func (n *Network) MustConnect(devA, ifA, devB, ifB string) {
	if err := n.Connect(devA, ifA, devB, ifB); err != nil {
		panic(err)
	}
}

// LinkAt returns the link attached to the given interface, or nil.
func (n *Network) LinkAt(device, itf string) *Link {
	for _, l := range n.Links {
		if l.Touches(device, itf) {
			return l
		}
	}
	return nil
}

// Neighbors returns the names of devices directly cabled to the given
// device, sorted and without duplicates.
func (n *Network) Neighbors(device string) []string {
	seen := make(map[string]bool)
	for _, l := range n.Links {
		if other, ok := l.Other(device); ok && other.Device != device {
			seen[other.Device] = true
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the network. Twin networks are built from
// clones so technician changes never touch production state.
func (n *Network) Clone() *Network {
	c := NewNetwork(n.Name)
	for name, d := range n.Devices {
		c.Devices[name] = d.Clone()
	}
	c.Links = make([]*Link, len(n.Links))
	for i, l := range n.Links {
		ll := *l
		c.Links[i] = &ll
	}
	return c
}

// CloneCOW returns a copy-on-write clone: the named devices are deep-cloned
// and safe to mutate, every other *Device pointer is shared with the
// receiver. The shared devices MUST be treated as immutable by the caller —
// writing one corrupts the original network (and races with anyone reading
// it). Links are shared too (the slice is capped, so appending to the
// clone's Links cannot clobber the receiver's backing array); Connect-ing
// new cables on a COW clone is safe, but mutating an existing Link is not.
//
// This is what makes the attack-surface mutation sweep cheap: a trial that
// touches one device pays one Device.Clone instead of a full deep copy of
// the network. TestCloneCOWAliasing pins the sharing contract.
func (n *Network) CloneCOW(mutated ...string) *Network {
	c := &Network{Name: n.Name, Devices: make(map[string]*Device, len(n.Devices))}
	for name, d := range n.Devices {
		c.Devices[name] = d
	}
	for _, name := range mutated {
		if d, ok := n.Devices[name]; ok {
			c.Devices[name] = d.Clone()
		}
	}
	c.Links = n.Links[:len(n.Links):len(n.Links)]
	return c
}

// Validate checks structural invariants: every link endpoint names an
// existing device and interface, no interface is cabled twice, and no two
// up interfaces carry the same IP address.
func (n *Network) Validate() error {
	cabled := make(map[Endpoint]bool)
	for _, l := range n.Links {
		for _, ep := range []Endpoint{l.A, l.B} {
			d := n.Devices[ep.Device]
			if d == nil {
				return fmt.Errorf("netmodel: link endpoint %s: unknown device", ep)
			}
			if d.Interface(ep.Interface) == nil {
				return fmt.Errorf("netmodel: link endpoint %s: unknown interface", ep)
			}
			if cabled[ep] {
				return fmt.Errorf("netmodel: interface %s cabled twice", ep)
			}
			cabled[ep] = true
		}
	}
	addrs := make(map[netip.Addr]string)
	for _, name := range n.DeviceNames() {
		d := n.Devices[name]
		for _, in := range d.InterfaceNames() {
			itf := d.Interfaces[in]
			if !itf.HasAddr() || itf.Shutdown {
				continue
			}
			a := itf.Addr.Addr()
			if prev, ok := addrs[a]; ok {
				return fmt.Errorf("netmodel: duplicate address %s on %s:%s and %s", a, name, in, prev)
			}
			addrs[a] = name + ":" + in
		}
	}
	return nil
}

// Hosts returns the names of all host devices, sorted.
func (n *Network) Hosts() []string {
	var out []string
	for _, name := range n.DeviceNames() {
		if n.Devices[name].Kind == Host {
			out = append(out, name)
		}
	}
	return out
}

// RoutersAndSwitches returns the names of all non-host devices, sorted.
func (n *Network) RoutersAndSwitches() []string {
	var out []string
	for _, name := range n.DeviceNames() {
		if n.Devices[name].Kind != Host {
			out = append(out, name)
		}
	}
	return out
}

// HostAddr returns the primary address of a host device and whether the
// device exists, is a host, and has an address.
func (n *Network) HostAddr(name string) (netip.Addr, bool) {
	d := n.Devices[name]
	if d == nil || d.Kind != Host {
		return netip.Addr{}, false
	}
	for _, in := range d.InterfaceNames() {
		if itf := d.Interfaces[in]; itf.HasAddr() {
			return itf.Addr.Addr(), true
		}
	}
	return netip.Addr{}, false
}

// DeviceByAddr returns the name of the device owning the given address on
// any of its interfaces (up or down), or "".
func (n *Network) DeviceByAddr(a netip.Addr) string {
	for _, name := range n.DeviceNames() {
		d := n.Devices[name]
		for _, in := range d.InterfaceNames() {
			if itf := d.Interfaces[in]; itf.HasAddr() && itf.Addr.Addr() == a {
				return name
			}
		}
	}
	return ""
}

// PathsBetween returns every device on any simple path between src and dst
// whose length is at most slack hops longer than the shortest path. It is
// the topological core of the twin network's task-driven slice.
func (n *Network) PathsBetween(src, dst string, slack int) map[string]bool {
	adj := make(map[string][]string)
	for name := range n.Devices {
		adj[name] = n.Neighbors(name)
	}
	shortest := bfsDist(adj, src, dst)
	out := make(map[string]bool)
	if shortest < 0 {
		return out
	}
	// A node v is on a path of length <= shortest+slack iff
	// dist(src,v)+dist(v,dst) <= shortest+slack.
	fromSrc := bfsAll(adj, src)
	fromDst := bfsAll(adj, dst)
	for name := range n.Devices {
		ds, ok1 := fromSrc[name]
		dd, ok2 := fromDst[name]
		if ok1 && ok2 && ds+dd <= shortest+slack {
			out[name] = true
		}
	}
	return out
}

func bfsAll(adj map[string][]string, start string) map[string]int {
	dist := map[string]int{start: 0}
	queue := []string{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range adj[cur] {
			if _, seen := dist[next]; !seen {
				dist[next] = dist[cur] + 1
				queue = append(queue, next)
			}
		}
	}
	return dist
}

func bfsDist(adj map[string][]string, src, dst string) int {
	d, ok := bfsAll(adj, src)[dst]
	if !ok {
		return -1
	}
	return d
}
