package netmodel

import (
	"net/netip"
	"reflect"
	"testing"
)

// cowNet builds a three-router line with one host for the aliasing tests.
func cowNet() *Network {
	n := NewNetwork("cow")
	for _, r := range []string{"r1", "r2", "r3"} {
		n.AddDevice(r, Router)
	}
	n.AddDevice("h1", Host)
	n.MustConnect("r1", "Gi0/0", "r2", "Gi0/0")
	n.MustConnect("r2", "Gi0/1", "r3", "Gi0/0")
	n.MustConnect("h1", "eth0", "r1", "Gi0/1")
	n.Devices["r1"].Interface("Gi0/0").Addr = netip.MustParsePrefix("10.0.0.1/30")
	n.Devices["r2"].Interface("Gi0/0").Addr = netip.MustParsePrefix("10.0.0.2/30")
	n.Devices["r2"].Interface("Gi0/1").Addr = netip.MustParsePrefix("10.0.1.1/30")
	n.Devices["r3"].Interface("Gi0/0").Addr = netip.MustParsePrefix("10.0.1.2/30")
	return n
}

// TestCloneCOWAliasing pins the copy-on-write contract: the named devices
// are fresh deep clones, every other device pointer is shared, and writes
// to a cloned device never reach the original network.
func TestCloneCOWAliasing(t *testing.T) {
	n := cowNet()
	c := n.CloneCOW("r2")

	// Unnamed devices are the SAME pointers; the named one is fresh.
	for _, dev := range []string{"r1", "r3", "h1"} {
		if c.Devices[dev] != n.Devices[dev] {
			t.Errorf("%s was cloned; CloneCOW must share unnamed devices", dev)
		}
	}
	if c.Devices["r2"] == n.Devices["r2"] {
		t.Fatal("mutated device r2 still shared")
	}
	if !reflect.DeepEqual(c.Devices["r2"].InterfaceNames(), n.Devices["r2"].InterfaceNames()) {
		t.Fatal("r2 clone lost state")
	}

	// Mutating the clone's r2 leaves the original untouched.
	c.Devices["r2"].Interface("Gi0/0").Shutdown = true
	c.Devices["r2"].StaticRoutes = append(c.Devices["r2"].StaticRoutes, StaticRoute{
		Prefix:  netip.MustParsePrefix("0.0.0.0/0"),
		NextHop: netip.MustParseAddr("10.0.0.1"),
	})
	if n.Devices["r2"].Interface("Gi0/0").Shutdown {
		t.Fatal("write to clone reached the original interface")
	}
	if len(n.Devices["r2"].StaticRoutes) != 0 {
		t.Fatal("write to clone reached the original static routes")
	}

	// Links are shared but append-safe: cabling a new link on the clone
	// must not grow (or clobber) the original's link list.
	c.AddDevice("h2", Host)
	c.MustConnect("h2", "eth0", "r2", "Gi0/2")
	if len(n.Links) != 3 {
		t.Fatalf("original link count changed: %d", len(n.Links))
	}
	if len(c.Links) != 4 {
		t.Fatalf("clone link count = %d", len(c.Links))
	}
	// The original's backing array must be intact even after the append.
	for _, l := range n.Links {
		if l.A.Device == "h2" || l.B.Device == "h2" {
			t.Fatal("clone's appended link leaked into the original's array")
		}
	}

	// Cloning a name that does not exist is a no-op, not a panic.
	c2 := n.CloneCOW("nope")
	if len(c2.Devices) != len(n.Devices) {
		t.Fatal("unknown mutated name changed the device set")
	}
}

// TestCloneCOWMultiple names several devices at once.
func TestCloneCOWMultiple(t *testing.T) {
	n := cowNet()
	c := n.CloneCOW("r1", "r3")
	if c.Devices["r1"] == n.Devices["r1"] || c.Devices["r3"] == n.Devices["r3"] {
		t.Fatal("named devices not cloned")
	}
	if c.Devices["r2"] != n.Devices["r2"] {
		t.Fatal("unnamed device not shared")
	}
}
