package netmodel

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatalf("ParsePrefix(%q): %v", s, err)
	}
	return p
}

func TestDeviceKindString(t *testing.T) {
	cases := map[DeviceKind]string{Router: "router", Switch: "switch", Host: "host"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if got := DeviceKind(9).String(); got != "DeviceKind(9)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestInterfaceSVI(t *testing.T) {
	itf := &Interface{Name: "Vlan10"}
	if !itf.IsSVI() {
		t.Fatal("Vlan10 should be an SVI")
	}
	if got := itf.SVIVLAN(); got != 10 {
		t.Fatalf("SVIVLAN() = %d, want 10", got)
	}
	phys := &Interface{Name: "GigabitEthernet0/0"}
	if phys.IsSVI() || phys.SVIVLAN() != 0 {
		t.Fatal("physical interface misclassified as SVI")
	}
}

func TestInterfaceCarriesVLAN(t *testing.T) {
	access := &Interface{Name: "Gi0/1", Mode: Access, AccessVLAN: 10}
	trunk := &Interface{Name: "Gi0/2", Mode: Trunk, TrunkVLANs: []int{10, 20}}
	routed := &Interface{Name: "Gi0/3", Mode: Routed}
	if !access.CarriesVLAN(10) || access.CarriesVLAN(20) {
		t.Error("access port VLAN carriage wrong")
	}
	if !trunk.CarriesVLAN(10) || !trunk.CarriesVLAN(20) || trunk.CarriesVLAN(30) {
		t.Error("trunk port VLAN carriage wrong")
	}
	if routed.CarriesVLAN(10) {
		t.Error("routed port should carry no VLAN")
	}
}

func TestACLEvaluateFirstMatchAndImplicitDeny(t *testing.T) {
	acl := &ACL{Name: "T"}
	acl.Entries = []ACLEntry{
		{Seq: 10, Action: Deny, Proto: TCP, Dst: mustPrefix(t, "10.0.0.0/24"), DstPort: 80},
		{Seq: 20, Action: Permit, Proto: AnyProto},
	}
	src := netip.MustParseAddr("192.168.1.1")
	web := netip.MustParseAddr("10.0.0.5")

	if got := acl.Evaluate(TCP, src, web, 1234, 80); got != Deny {
		t.Errorf("tcp/80 to 10.0.0.5 = %v, want deny (first match)", got)
	}
	if got := acl.Evaluate(TCP, src, web, 1234, 443); got != Permit {
		t.Errorf("tcp/443 = %v, want permit (second entry)", got)
	}
	empty := &ACL{Name: "E"}
	if got := empty.Evaluate(TCP, src, web, 0, 80); got != Deny {
		t.Errorf("empty ACL = %v, want implicit deny", got)
	}
}

func TestACLEntryMatchesFields(t *testing.T) {
	e := ACLEntry{
		Action: Permit, Proto: UDP,
		Src: mustPrefix(t, "10.1.0.0/16"), Dst: mustPrefix(t, "10.2.0.0/16"),
		SrcPort: 53, DstPort: 53,
	}
	s, d := netip.MustParseAddr("10.1.2.3"), netip.MustParseAddr("10.2.3.4")
	if !e.Matches(UDP, s, d, 53, 53) {
		t.Fatal("full match failed")
	}
	if e.Matches(TCP, s, d, 53, 53) {
		t.Error("protocol mismatch should fail")
	}
	if e.Matches(UDP, netip.MustParseAddr("10.9.0.1"), d, 53, 53) {
		t.Error("src mismatch should fail")
	}
	if e.Matches(UDP, s, d, 53, 54) {
		t.Error("dst port mismatch should fail")
	}
}

func TestACLInsertRemoveOrdering(t *testing.T) {
	acl := &ACL{Name: "X"}
	acl.InsertEntry(ACLEntry{Seq: 20, Action: Permit})
	acl.InsertEntry(ACLEntry{Seq: 10, Action: Deny})
	acl.InsertEntry(ACLEntry{Seq: 30, Action: Permit})
	if got := []int{acl.Entries[0].Seq, acl.Entries[1].Seq, acl.Entries[2].Seq}; !reflect.DeepEqual(got, []int{10, 20, 30}) {
		t.Fatalf("order after insert = %v", got)
	}
	// Replace in place.
	acl.InsertEntry(ACLEntry{Seq: 20, Action: Deny})
	if len(acl.Entries) != 3 || acl.Entries[1].Action != Deny {
		t.Fatal("duplicate seq should replace")
	}
	if !acl.RemoveEntry(20) || acl.RemoveEntry(99) {
		t.Fatal("RemoveEntry verdicts wrong")
	}
	if got := acl.NextSeq(); got != 40 {
		t.Fatalf("NextSeq = %d, want 40", got)
	}
}

func TestOSPFEnabledAreaLongestMatch(t *testing.T) {
	o := &OSPFProcess{
		ProcessID: 1,
		Networks: []OSPFNetwork{
			{Prefix: mustPrefix(t, "10.0.0.0/8"), Area: 0},
			{Prefix: mustPrefix(t, "10.5.0.0/16"), Area: 5},
		},
	}
	if area, ok := o.EnabledArea(netip.MustParseAddr("10.5.1.1")); !ok || area != 5 {
		t.Fatalf("10.5.1.1 -> area %d ok=%v, want 5 true", area, ok)
	}
	if area, ok := o.EnabledArea(netip.MustParseAddr("10.9.1.1")); !ok || area != 0 {
		t.Fatalf("10.9.1.1 -> area %d ok=%v, want 0 true", area, ok)
	}
	if _, ok := o.EnabledArea(netip.MustParseAddr("192.168.1.1")); ok {
		t.Fatal("address outside all networks should be disabled")
	}
}

func TestNetworkConnectAndNeighbors(t *testing.T) {
	n := NewNetwork("t")
	n.AddDevice("r1", Router)
	n.AddDevice("r2", Router)
	n.AddDevice("h1", Host)
	if err := n.Connect("r1", "Gi0/0", "r2", "Gi0/0"); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("r1", "Gi0/1", "h1", "eth0"); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("r1", "Gi0/0", "h1", "eth1"); err == nil {
		t.Fatal("double-cabling an interface should fail")
	}
	if err := n.Connect("r1", "Gi0/9", "zz", "Gi0/0"); err == nil {
		t.Fatal("unknown device should fail")
	}
	if got := n.Neighbors("r1"); !reflect.DeepEqual(got, []string{"h1", "r2"}) {
		t.Fatalf("Neighbors(r1) = %v", got)
	}
	l := n.LinkAt("r2", "Gi0/0")
	if l == nil {
		t.Fatal("LinkAt returned nil")
	}
	other, ok := l.Other("r2")
	if !ok || other.Device != "r1" {
		t.Fatalf("Other(r2) = %v, %v", other, ok)
	}
	if _, ok := l.Other("h1"); ok {
		t.Fatal("Other on unrelated device should report false")
	}
}

func TestNetworkValidate(t *testing.T) {
	n := NewNetwork("t")
	r1 := n.AddDevice("r1", Router)
	r2 := n.AddDevice("r2", Router)
	n.MustConnect("r1", "Gi0/0", "r2", "Gi0/0")
	r1.Interfaces["Gi0/0"].Addr = mustPrefix(t, "10.0.0.1/30")
	r2.Interfaces["Gi0/0"].Addr = mustPrefix(t, "10.0.0.2/30")
	if err := n.Validate(); err != nil {
		t.Fatalf("valid network rejected: %v", err)
	}
	r2.Interfaces["Gi0/0"].Addr = mustPrefix(t, "10.0.0.1/30")
	if err := n.Validate(); err == nil {
		t.Fatal("duplicate address accepted")
	}
	// A shut-down duplicate is tolerated.
	r2.Interfaces["Gi0/0"].Shutdown = true
	if err := n.Validate(); err != nil {
		t.Fatalf("shutdown duplicate rejected: %v", err)
	}
	n.Links = append(n.Links, &Link{A: Endpoint{"ghost", "x"}, B: Endpoint{"r1", "Gi0/0"}})
	if err := n.Validate(); err == nil {
		t.Fatal("dangling link accepted")
	}
}

func TestNetworkCloneIsDeep(t *testing.T) {
	n := NewNetwork("prod")
	r1 := n.AddDevice("r1", Router)
	r1.AddInterface("Gi0/0").Addr = mustPrefix(t, "10.0.0.1/24")
	r1.ACL("A", true).InsertEntry(ACLEntry{Seq: 10, Action: Permit})
	r1.StaticRoutes = append(r1.StaticRoutes, StaticRoute{Prefix: mustPrefix(t, "0.0.0.0/0"), NextHop: netip.MustParseAddr("10.0.0.254")})
	r1.OSPF = &OSPFProcess{ProcessID: 1, Passive: map[string]bool{"Gi0/0": true}}
	r1.Secrets["enable"] = "hunter2"
	r1.VLANs[10] = &VLAN{ID: 10, Name: "users"}
	n.AddDevice("h1", Host)
	n.MustConnect("r1", "Gi0/1", "h1", "eth0")

	c := n.Clone()
	// Mutate the clone; the original must not change.
	c.Devices["r1"].Interfaces["Gi0/0"].Shutdown = true
	c.Devices["r1"].ACLs["A"].Entries[0].Action = Deny
	c.Devices["r1"].StaticRoutes[0].Distance = 250
	c.Devices["r1"].OSPF.Passive["Gi0/1"] = true
	c.Devices["r1"].Secrets["enable"] = "changed"
	c.Devices["r1"].VLANs[10].Name = "evil"

	if r1.Interfaces["Gi0/0"].Shutdown {
		t.Error("interface mutation leaked")
	}
	if r1.ACLs["A"].Entries[0].Action != Permit {
		t.Error("ACL mutation leaked")
	}
	if r1.StaticRoutes[0].Distance != 0 {
		t.Error("static route mutation leaked")
	}
	if r1.OSPF.Passive["Gi0/1"] {
		t.Error("OSPF mutation leaked")
	}
	if r1.Secrets["enable"] != "hunter2" {
		t.Error("secret mutation leaked")
	}
	if r1.VLANs[10].Name != "users" {
		t.Error("VLAN mutation leaked")
	}
}

func TestPathsBetween(t *testing.T) {
	// h1 - r1 - r2 - r3 - h2, with a detour r1 - r4 - r3.
	n := NewNetwork("t")
	for _, r := range []string{"r1", "r2", "r3", "r4"} {
		n.AddDevice(r, Router)
	}
	n.AddDevice("h1", Host)
	n.AddDevice("h2", Host)
	n.MustConnect("h1", "eth0", "r1", "Gi0/0")
	n.MustConnect("r1", "Gi0/1", "r2", "Gi0/0")
	n.MustConnect("r2", "Gi0/1", "r3", "Gi0/0")
	n.MustConnect("r3", "Gi0/1", "h2", "eth0")
	n.MustConnect("r1", "Gi0/2", "r4", "Gi0/0")
	n.MustConnect("r4", "Gi0/1", "r3", "Gi0/2")

	slice := n.PathsBetween("h1", "h2", 0)
	for _, want := range []string{"h1", "r1", "r2", "r3", "h2", "r4"} {
		if !slice[want] {
			t.Errorf("shortest-path slice missing %s (detour same length)", want)
		}
	}

	// Disconnect case.
	n2 := NewNetwork("t2")
	n2.AddDevice("a", Host)
	n2.AddDevice("b", Host)
	if got := n2.PathsBetween("a", "b", 5); len(got) != 0 {
		t.Fatalf("disconnected slice = %v, want empty", got)
	}
}

func TestHostHelpers(t *testing.T) {
	n := NewNetwork("t")
	h := n.AddDevice("h1", Host)
	h.AddInterface("eth0").Addr = mustPrefix(t, "10.1.0.5/24")
	n.AddDevice("r1", Router)
	if hosts := n.Hosts(); !reflect.DeepEqual(hosts, []string{"h1"}) {
		t.Fatalf("Hosts() = %v", hosts)
	}
	if infra := n.RoutersAndSwitches(); !reflect.DeepEqual(infra, []string{"r1"}) {
		t.Fatalf("RoutersAndSwitches() = %v", infra)
	}
	a, ok := n.HostAddr("h1")
	if !ok || a != netip.MustParseAddr("10.1.0.5") {
		t.Fatalf("HostAddr = %v %v", a, ok)
	}
	if _, ok := n.HostAddr("r1"); ok {
		t.Fatal("HostAddr on router should fail")
	}
	if got := n.DeviceByAddr(netip.MustParseAddr("10.1.0.5")); got != "h1" {
		t.Fatalf("DeviceByAddr = %q", got)
	}
	if got := n.DeviceByAddr(netip.MustParseAddr("1.2.3.4")); got != "" {
		t.Fatalf("DeviceByAddr unknown = %q", got)
	}
}

// randomACL builds a deterministic pseudo-random ACL for property tests.
func randomACL(r *rand.Rand, entries int) *ACL {
	acl := &ACL{Name: "P"}
	for i := 0; i < entries; i++ {
		e := ACLEntry{
			Seq:    (i + 1) * 10,
			Action: ACLAction(r.Intn(2)),
			Proto:  Protocol(r.Intn(4)),
		}
		if r.Intn(2) == 0 {
			e.Src = netip.PrefixFrom(randomAddr(r), 8+r.Intn(25))
		}
		if r.Intn(2) == 0 {
			e.Dst = netip.PrefixFrom(randomAddr(r), 8+r.Intn(25))
		}
		if e.Proto == TCP || e.Proto == UDP {
			if r.Intn(2) == 0 {
				e.DstPort = uint16(1 + r.Intn(65535))
			}
		}
		acl.Entries = append(acl.Entries, e)
	}
	return acl
}

func randomAddr(r *rand.Rand) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(10 + r.Intn(3)), byte(r.Intn(256)), byte(r.Intn(256)), byte(1 + r.Intn(254))})
}

// Property: an ACL verdict equals the action of its first matching entry;
// with no matching entry it is Deny.
func TestACLFirstMatchProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		acl := randomACL(r, 1+r.Intn(12))
		proto := Protocol(r.Intn(4))
		src, dst := randomAddr(r), randomAddr(r)
		sport, dport := uint16(r.Intn(65536)), uint16(r.Intn(65536))
		want := Deny
		for i := range acl.Entries {
			if acl.Entries[i].Matches(proto, src, dst, sport, dport) {
				want = acl.Entries[i].Action
				break
			}
		}
		if got := acl.Evaluate(proto, src, dst, sport, dport); got != want {
			t.Fatalf("trial %d: Evaluate = %v, want %v", trial, got, want)
		}
	}
}

// Property: inserting entries in any order yields a sequence-sorted list.
func TestACLInsertKeepsSorted(t *testing.T) {
	f := func(seqs []uint8) bool {
		acl := &ACL{Name: "Q"}
		for _, s := range seqs {
			acl.InsertEntry(ACLEntry{Seq: int(s), Action: Permit})
		}
		for i := 1; i < len(acl.Entries); i++ {
			if acl.Entries[i-1].Seq >= acl.Entries[i].Seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone produces a structurally equal but aliasing-free network.
func TestCloneEqualProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := NewNetwork("p")
		nDev := 2 + r.Intn(5)
		for i := 0; i < nDev; i++ {
			d := n.AddDevice(string(rune('a'+i)), DeviceKind(r.Intn(3)))
			d.AddInterface("Gi0/0").Addr = netip.PrefixFrom(randomAddr(r), 24)
			d.ACLs["A"] = randomACL(r, r.Intn(4))
		}
		c := n.Clone()
		if !reflect.DeepEqual(n.DeviceNames(), c.DeviceNames()) {
			t.Fatal("device names differ after clone")
		}
		for _, name := range n.DeviceNames() {
			if !reflect.DeepEqual(n.Devices[name].ACLs["A"].Entries, c.Devices[name].ACLs["A"].Entries) {
				t.Fatal("ACL entries differ after clone")
			}
			if len(n.Devices[name].ACLs["A"].Entries) > 0 &&
				&n.Devices[name].ACLs["A"].Entries[0] == &c.Devices[name].ACLs["A"].Entries[0] {
				t.Fatal("clone aliases original ACL storage")
			}
		}
	}
}

func TestProtocolRoundTrip(t *testing.T) {
	for _, p := range []Protocol{AnyProto, TCP, UDP, ICMP} {
		got, err := ParseProtocol(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: got %v err %v", p, got, err)
		}
	}
	if _, err := ParseProtocol("gre"); err == nil {
		t.Error("unknown protocol should error")
	}
}

func TestAddrOnSubnet(t *testing.T) {
	d := NewDevice("r1", Router)
	g0 := d.AddInterface("Gi0/0")
	g0.Addr = mustPrefix(t, "10.0.1.1/24")
	g1 := d.AddInterface("Gi0/1")
	g1.Addr = mustPrefix(t, "10.0.2.1/24")
	g1.Shutdown = true

	if itf, ok := d.AddrOnSubnet(netip.MustParseAddr("10.0.1.99")); !ok || itf.Name != "Gi0/0" {
		t.Fatalf("AddrOnSubnet(10.0.1.99) = %v %v", itf, ok)
	}
	if _, ok := d.AddrOnSubnet(netip.MustParseAddr("10.0.2.99")); ok {
		t.Fatal("shutdown interface should not match")
	}
	if _, ok := d.AddrOnSubnet(netip.MustParseAddr("10.0.3.99")); ok {
		t.Fatal("off-subnet address should not match")
	}
}
