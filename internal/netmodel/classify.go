package netmodel

// Change-classification helpers: predicates that let callers (the
// enforcer's shadow derivation, the attack-surface sweep) decide how
// narrow a dataplane change class a mutation belongs to.

// InterfaceL2Only reports whether the interface participates in the
// dataplane only through the L2 switching fabric: it is not an SVI and is
// either an access/trunk switchport or carries no address. Toggling such
// an interface (shutdown, VLAN move) can rewire L2 adjacency but can never
// change address ownership, connected routes, static-route resolution,
// OSPF participation, or BGP session endpoints on its own device — the
// contract behind the dataplane's L2-only change class. Nil is not
// L2-only: an unknown interface gets the conservative answer.
func InterfaceL2Only(itf *Interface) bool {
	if itf == nil || itf.IsSVI() {
		return false
	}
	return itf.Mode == Access || itf.Mode == Trunk || !itf.HasAddr()
}

// L2OnlyInterface reports whether the named interface exists on the device
// and is L2-only per InterfaceL2Only.
func (d *Device) L2OnlyInterface(name string) bool {
	return InterfaceL2Only(d.Interface(name))
}
