package netmodel

import (
	"net/netip"
	"testing"
)

func TestBGPNeighborManagement(t *testing.T) {
	g := &BGPProcess{LocalAS: 65001}
	a := netip.MustParseAddr("203.0.113.2")
	b := netip.MustParseAddr("203.0.113.6")

	g.SetNeighbor(a, 65010)
	g.SetNeighbor(b, 65020)
	if len(g.Neighbors) != 2 {
		t.Fatalf("neighbors = %d", len(g.Neighbors))
	}
	// SetNeighbor on an existing address updates in place.
	g.SetNeighbor(a, 65011)
	if len(g.Neighbors) != 2 || g.Neighbor(a).RemoteAS != 65011 {
		t.Fatalf("update in place failed: %+v", g.Neighbors)
	}
	if g.Neighbor(netip.MustParseAddr("9.9.9.9")) != nil {
		t.Fatal("unknown neighbor returned")
	}
	if !g.RemoveNeighbor(a) || g.RemoveNeighbor(a) {
		t.Fatal("RemoveNeighbor verdicts wrong")
	}
	if len(g.Neighbors) != 1 || g.Neighbors[0].Addr != b {
		t.Fatalf("after removal: %+v", g.Neighbors)
	}
}

func TestBGPProcessClone(t *testing.T) {
	g := &BGPProcess{
		LocalAS:  65001,
		RouterID: netip.MustParseAddr("1.1.1.1"),
		Networks: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
	}
	g.SetNeighbor(netip.MustParseAddr("203.0.113.2"), 65010)

	c := g.Clone()
	c.SetNeighbor(netip.MustParseAddr("203.0.113.2"), 99)
	c.Networks = append(c.Networks, netip.MustParsePrefix("172.16.0.0/12"))
	c.LocalAS = 65099

	if g.LocalAS != 65001 || g.Neighbors[0].RemoteAS != 65010 || len(g.Networks) != 1 {
		t.Fatalf("clone aliases original: %+v", g)
	}
}

func TestDeviceCloneIncludesBGP(t *testing.T) {
	d := NewDevice("edge", Router)
	d.BGP = &BGPProcess{LocalAS: 65001}
	d.BGP.SetNeighbor(netip.MustParseAddr("203.0.113.2"), 65010)
	c := d.Clone()
	c.BGP.SetNeighbor(netip.MustParseAddr("203.0.113.2"), 99)
	if d.BGP.Neighbors[0].RemoteAS != 65010 {
		t.Fatal("device clone shares BGP state")
	}
	// Devices without BGP clone to nil, not an empty process.
	d2 := NewDevice("r1", Router)
	if d2.Clone().BGP != nil {
		t.Fatal("nil BGP became non-nil on clone")
	}
}
