package netmodel

import "net/netip"

// BGPNeighbor is one configured eBGP peering.
type BGPNeighbor struct {
	// Addr is the peer's interface address (sessions form over directly
	// connected subnets, the standard eBGP deployment).
	Addr netip.Addr
	// RemoteAS is the AS number expected from the peer; a mismatch keeps
	// the session down (the classic "wrong remote-as" misconfiguration).
	RemoteAS int
}

// BGPProcess is a device's BGP configuration. Only eBGP is modeled: the
// enterprise-edge-to-ISP peering the paper's ISP-reconfiguration tickets
// concern.
type BGPProcess struct {
	LocalAS  int
	RouterID netip.Addr
	// Neighbors lists configured peerings.
	Neighbors []BGPNeighbor
	// Networks are prefixes originated by this router.
	Networks []netip.Prefix
	// RedistributeConnected additionally originates every connected subnet.
	RedistributeConnected bool
}

// Clone returns a deep copy of the BGP process.
func (b *BGPProcess) Clone() *BGPProcess {
	c := *b
	c.Neighbors = append([]BGPNeighbor(nil), b.Neighbors...)
	c.Networks = append([]netip.Prefix(nil), b.Networks...)
	return &c
}

// Neighbor returns the neighbor entry for the given address, or nil.
func (b *BGPProcess) Neighbor(addr netip.Addr) *BGPNeighbor {
	for i := range b.Neighbors {
		if b.Neighbors[i].Addr == addr {
			return &b.Neighbors[i]
		}
	}
	return nil
}

// SetNeighbor adds or updates a neighbor entry.
func (b *BGPProcess) SetNeighbor(addr netip.Addr, remoteAS int) {
	if n := b.Neighbor(addr); n != nil {
		n.RemoteAS = remoteAS
		return
	}
	b.Neighbors = append(b.Neighbors, BGPNeighbor{Addr: addr, RemoteAS: remoteAS})
}

// RemoveNeighbor deletes a neighbor entry, reporting whether it existed.
func (b *BGPProcess) RemoveNeighbor(addr netip.Addr) bool {
	for i := range b.Neighbors {
		if b.Neighbors[i].Addr == addr {
			b.Neighbors = append(b.Neighbors[:i], b.Neighbors[i+1:]...)
			return true
		}
	}
	return false
}
