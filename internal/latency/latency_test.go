package latency

import (
	"strings"
	"testing"
	"time"
)

func TestCurrentBreakdown(t *testing.T) {
	m := Default()
	b := m.Current("isp", 6)
	if b.Approach != "Current" || b.Issue != "isp" {
		t.Fatalf("breakdown = %+v", b)
	}
	want := m.Connect + 6*m.Command + m.Save
	if b.Total() != want {
		t.Fatalf("Total = %v, want %v", b.Total(), want)
	}
	if b.Step("operate") != 6*m.Command {
		t.Fatalf("operate = %v", b.Step("operate"))
	}
	if b.Step("nonexistent") != 0 {
		t.Fatal("missing step should be zero")
	}
}

func TestHeimdallBreakdownAndOverhead(t *testing.T) {
	m := Default()
	cur := m.Current("vlan", 11)
	hd := m.Heimdall("vlan", 11, 4, 2, 21, 1)

	twin := m.TwinSetupBase + 4*m.TwinSetupPerDevice + 2*m.TwinSetupPerSwitch
	if hd.Step("twin-setup") != twin {
		t.Fatalf("twin-setup = %v, want %v", hd.Step("twin-setup"), twin)
	}
	if hd.Step("verify") != 21*m.VerifyPerPolicy {
		t.Fatalf("verify = %v", hd.Step("verify"))
	}
	// The operate step is identical across approaches; overhead is the sum
	// of Heimdall's extra steps.
	extra := m.GenPrivilege + twin + 21*m.VerifyPerPolicy + 1*m.SchedulePerChange
	if got := Overhead(cur, hd); got != extra {
		t.Fatalf("Overhead = %v, want %v", got, extra)
	}
	if !strings.Contains(hd.String(), "twin-setup") {
		t.Fatalf("String = %q", hd.String())
	}
}

func TestCalibrationMatchesPaperAnchors(t *testing.T) {
	m := Default()
	// §4.3: checking 175 constraints ≈ 25 s.
	verify175 := 175 * m.VerifyPerPolicy
	if verify175 < 24*time.Second || verify175 > 26*time.Second {
		t.Fatalf("175-policy verify = %v, want ≈25s", verify175)
	}
}
