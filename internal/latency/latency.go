// Package latency models the wall-clock costs of the paper's pilot study
// (Figure 7). Our emulated devices execute commands in microseconds, so the
// human-scale step costs (connecting to consoles, command round trips,
// policy verification) are modeled with a calibrated virtual clock instead
// of being measured. The calibration constants come from the paper's own
// numbers: checking 175 constraints takes ~25 s (§4.3), and Heimdall's
// extra steps add 15 s (simple issue) to 42 s (complex issue), 28 s on
// average, over the direct approach.
package latency

import (
	"fmt"
	"strings"
	"time"
)

// Model holds the per-step cost constants.
type Model struct {
	// Connect is the cost of logging into the RMM server / a console.
	Connect time.Duration
	// Command is the round-trip cost of one console command.
	Command time.Duration
	// Save is the cost of persisting changes (both approaches).
	Save time.Duration

	// GenPrivilege is Heimdall's Privilegemsp generation step.
	GenPrivilege time.Duration
	// TwinSetupBase + TwinSetupPerDevice model twin instantiation: a fixed
	// orchestration cost plus a per-emulated-device boot cost for the
	// devices in the slice. L2 switches carry an extra surcharge: booting
	// a switch image and materialising its per-VLAN fabric state is the
	// costliest emulation step, which is what made the paper's VLAN
	// ticket its most expensive issue (42 s overhead).
	TwinSetupBase      time.Duration
	TwinSetupPerDevice time.Duration
	TwinSetupPerSwitch time.Duration
	// VerifyPerPolicy is the verification cost per checked policy,
	// calibrated to 25 s / 175 policies ≈ 143 ms.
	VerifyPerPolicy time.Duration
	// SchedulePerChange is the cost of ordering and pushing one change.
	SchedulePerChange time.Duration
}

// Default returns the calibrated model.
func Default() Model {
	return Model{
		Connect:            2 * time.Second,
		Command:            1500 * time.Millisecond,
		Save:               3 * time.Second,
		GenPrivilege:       2 * time.Second,
		TwinSetupBase:      3 * time.Second,
		TwinSetupPerDevice: 800 * time.Millisecond,
		TwinSetupPerSwitch: 10 * time.Second,
		VerifyPerPolicy:    143 * time.Millisecond,
		SchedulePerChange:  1 * time.Second,
	}
}

// Step is one named phase of a resolution run.
type Step struct {
	Name     string
	Duration time.Duration
}

// Breakdown is the per-step timing of one issue resolution, the unit
// Figure 7 plots.
type Breakdown struct {
	Approach string // "Current" or "Heimdall"
	Issue    string
	Steps    []Step
}

// Total sums the step durations.
func (b *Breakdown) Total() time.Duration {
	var t time.Duration
	for _, s := range b.Steps {
		t += s.Duration
	}
	return t
}

// Add appends a step.
func (b *Breakdown) Add(name string, d time.Duration) {
	b.Steps = append(b.Steps, Step{Name: name, Duration: d})
}

// Step returns the duration of the named step (0 when absent).
func (b *Breakdown) Step(name string) time.Duration {
	for _, s := range b.Steps {
		if s.Name == name {
			return s.Duration
		}
	}
	return 0
}

// String renders the breakdown as one table row.
func (b *Breakdown) String() string {
	var parts []string
	for _, s := range b.Steps {
		parts = append(parts, fmt.Sprintf("%s=%.1fs", s.Name, s.Duration.Seconds()))
	}
	return fmt.Sprintf("%-8s %-6s total=%5.1fs  (%s)",
		b.Approach, b.Issue, b.Total().Seconds(), strings.Join(parts, " "))
}

// Current models the direct-access workflow: connect, run the prepared
// command list, save.
func (m Model) Current(issue string, commands int) *Breakdown {
	b := &Breakdown{Approach: "Current", Issue: issue}
	b.Add("connect", m.Connect)
	b.Add("operate", time.Duration(commands)*m.Command)
	b.Add("save", m.Save)
	return b
}

// Heimdall models the twin workflow: generate the Privilegemsp, set up the
// twin (scaled by slice size, with the switch surcharge), run the same
// prepared command list, verify (scaled by checked policies), schedule the
// changes, save.
func (m Model) Heimdall(issue string, commands, sliceDevices, sliceSwitches, policiesChecked, changes int) *Breakdown {
	b := &Breakdown{Approach: "Heimdall", Issue: issue}
	b.Add("connect", m.Connect)
	b.Add("gen-privilege", m.GenPrivilege)
	b.Add("twin-setup", m.TwinSetupBase+
		time.Duration(sliceDevices)*m.TwinSetupPerDevice+
		time.Duration(sliceSwitches)*m.TwinSetupPerSwitch)
	b.Add("operate", time.Duration(commands)*m.Command)
	b.Add("verify", time.Duration(policiesChecked)*m.VerifyPerPolicy)
	b.Add("schedule", time.Duration(changes)*m.SchedulePerChange)
	b.Add("save", m.Save)
	return b
}

// Overhead returns how much longer the Heimdall run takes than the current
// run for the same issue.
func Overhead(current, heimdall *Breakdown) time.Duration {
	return heimdall.Total() - current.Total()
}
