// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) from the reproduction:
//
//   - Table 1: the evaluation networks' statistics;
//   - Figure 7: the pilot study — time to resolve the three issues under
//     the current (direct access) approach versus Heimdall;
//   - Figures 8 and 9: the feasibility / attack-surface trade-off for the
//     All, Neighbor and Heimdall techniques on both networks.
//
// The cmd/experiments binary prints these; the repository's root
// benchmarks report them as metrics.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"heimdall/internal/attacksurface"
	"heimdall/internal/console"
	"heimdall/internal/core"
	"heimdall/internal/dataplane"
	"heimdall/internal/latency"
	"heimdall/internal/netmodel"
	"heimdall/internal/scenarios"
	"heimdall/internal/telemetry"
	"heimdall/internal/ticket"
	"heimdall/internal/verify"
)

// Table1 regenerates Table 1.
func Table1() []scenarios.Table1Row {
	return []scenarios.Table1Row{
		scenarios.Enterprise().Row(),
		scenarios.University().Row(),
	}
}

// FormatTable1 renders Table 1 next to the published values.
func FormatTable1(rows []scenarios.Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: evaluation networks (generated vs paper)\n")
	fmt.Fprintf(&b, "%-11s %-8s %-6s %-6s %-9s %s\n",
		"Network", "routers", "hosts", "links", "policies", "config lines")
	paper := map[string][5]int{
		"enterprise": {9, 9, 22, 21, 1394},
		"university": {13, 17, 92, 175, 2146},
	}
	for _, r := range rows {
		p := paper[r.Network]
		fmt.Fprintf(&b, "%-11s %-8d %-6d %-6d %-9d %d\n",
			r.Network, r.Routers, r.Hosts, r.Links, r.Policies, r.ConfigLines)
		fmt.Fprintf(&b, "%-11s %-8d %-6d %-6d %-9d %d\n",
			"  (paper)", p[0], p[1], p[2], p[3], p[4])
	}
	return b.String()
}

// Figure7Run is one issue resolved under both approaches, with the modeled
// wall-clock breakdowns and the measured workflow facts behind them.
type Figure7Run struct {
	Issue    string
	Current  *latency.Breakdown
	Heimdall *latency.Breakdown
	// TicketID and Technician identify the Heimdall run's workflow, so the
	// exported spans line up with the audit trail's ticket/technician
	// columns.
	TicketID   string
	Technician string
	// Measured workflow facts feeding the model.
	Commands        int
	SliceDevices    int
	SliceSwitches   int
	PoliciesChecked int
	Changes         int
	// RealCompute is the actual CPU time the Heimdall run took in this
	// reproduction (twin build + mediation + verification), reported to
	// show the modeled costs dominate.
	RealCompute time.Duration
}

// Overhead returns the modeled extra latency Heimdall adds for this issue.
func (r Figure7Run) Overhead() time.Duration {
	return latency.Overhead(r.Current, r.Heimdall)
}

// Figure7 runs the pilot study on the enterprise network: each issue is
// actually resolved twice — once over direct access, once through the full
// Heimdall workflow — and the calibrated latency model converts the
// measured step counts into the wall-clock seconds the paper plots.
func Figure7(model latency.Model) ([]Figure7Run, error) {
	scen := scenarios.Enterprise()
	var out []Figure7Run
	for _, issue := range scen.Issues {
		run, err := runIssue(scen, issue, model)
		if err != nil {
			return nil, fmt.Errorf("experiments: issue %s: %w", issue.Name, err)
		}
		out = append(out, *run)
	}
	return out, nil
}

func runIssue(scen *scenarios.Scenario, issue scenarios.Issue, model latency.Model) (*Figure7Run, error) {
	// ── Current approach: direct access to the faulted production net. ──
	direct := scen.Network.Clone()
	if err := issue.Fault.Inject(direct); err != nil {
		return nil, err
	}
	if err := replayDirect(direct, issue.Script); err != nil {
		return nil, err
	}
	tr, err := dataplane.Compute(direct).Reach(issue.SrcHost, issue.DstHost, issue.Proto, issue.DstPort)
	if err != nil || !tr.Delivered() {
		return nil, fmt.Errorf("direct fix failed: %v %v", tr, err)
	}

	// ── Heimdall workflow on a fresh copy. ──────────────────────────────
	start := time.Now()
	prod := scen.Network.Clone()
	if err := issue.Fault.Inject(prod); err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(core.Options{
		Network:      prod,
		Policies:     scen.Policies,
		Sensitive:    scen.Sensitive,
		PlatformSeed: "fig7",
	})
	if err != nil {
		return nil, err
	}
	tk := sys.Tickets.Create(ticket.Ticket{
		Summary: issue.Fault.Description,
		Kind:    issue.Fault.Kind,
		SrcHost: issue.SrcHost, DstHost: issue.DstHost,
		Proto: issue.Proto, DstPort: issue.DstPort,
		Suspects:  []string{issue.Fault.RootCause},
		CreatedBy: "netadmin",
	})
	eng, err := sys.StartWork(tk.ID, "pilot")
	if err != nil {
		return nil, err
	}
	if _, err := eng.RunScript(issue.Script); err != nil {
		return nil, err
	}
	if ok, err := eng.SymptomResolved(); err != nil || !ok {
		return nil, fmt.Errorf("twin fix failed: ok=%v err=%v", ok, err)
	}
	changes := eng.Twin.Changes()
	decision, err := eng.Commit()
	if err != nil {
		return nil, err
	}
	real := time.Since(start)

	switches := 0
	for _, dev := range eng.Twin.VisibleDevices() {
		if prod.Devices[dev] != nil && prod.Devices[dev].Kind == netmodel.Switch {
			switches++
		}
	}
	run := &Figure7Run{
		Issue:           issue.Name,
		TicketID:        tk.ID,
		Technician:      "pilot",
		Commands:        len(issue.Script),
		SliceDevices:    len(eng.Twin.VisibleDevices()),
		SliceSwitches:   switches,
		PoliciesChecked: decision.Checked,
		Changes:         len(changes),
		RealCompute:     real,
	}
	run.Current = model.Current(issue.Name, run.Commands)
	run.Heimdall = model.Heimdall(issue.Name, run.Commands, run.SliceDevices, run.SliceSwitches, run.PoliciesChecked, run.Changes)
	return run, nil
}

// replayDirect runs the prepared script straight against production
// through unrestricted consoles — the paper's "current approach" baseline.
func replayDirect(n *netmodel.Network, script []ticket.FixCommand) error {
	env := console.NewEnv(n)
	for _, cmd := range script {
		if _, err := console.New(cmd.Device, env).Run(cmd.Line); err != nil {
			return fmt.Errorf("%s on %s: %w", cmd.Line, cmd.Device, err)
		}
	}
	return nil
}

// FormatFigure7 renders the pilot-study rows.
func FormatFigure7(runs []Figure7Run) string {
	var b strings.Builder
	b.WriteString("Figure 7: time to solve three issues on the enterprise network (modeled seconds)\n")
	for _, r := range runs {
		fmt.Fprintf(&b, "  %s\n  %s\n  overhead=%.0fs  (commands=%d slice=%d policies=%d changes=%d, real compute %s)\n",
			r.Current, r.Heimdall, r.Overhead().Seconds(),
			r.Commands, r.SliceDevices, r.PoliciesChecked, r.Changes, r.RealCompute.Round(time.Millisecond))
	}
	var total time.Duration
	for _, r := range runs {
		total += r.Overhead()
	}
	if len(runs) > 0 {
		fmt.Fprintf(&b, "  mean overhead: %.0fs (paper: 28s average, 15s simple .. 42s complex)\n",
			(total / time.Duration(len(runs))).Seconds())
	}
	return b.String()
}

// TraceFigure7 replays the pilot-study latency breakdowns as spans on a
// deterministic virtual clock: each run becomes one root span per approach
// ("current <issue>" / "heimdall <issue>") carrying ticket and technician
// attributes that match the audit trail, with one child span per modeled
// step (connect, twin-setup, operate, verify, ...). The virtual clock
// advances by exactly each step's modeled duration, so every root span's
// duration equals its Breakdown.Total() and the JSONL export reconciles
// with Figure 7.
func TraceFigure7(runs []Figure7Run, start time.Time) *telemetry.Tracer {
	clock := telemetry.NewVirtualClock(start)
	tr := telemetry.NewTracer(clock.Now)
	for _, run := range runs {
		for _, bd := range []*latency.Breakdown{run.Current, run.Heimdall} {
			if bd == nil {
				continue
			}
			root := tr.StartTrace(strings.ToLower(bd.Approach)+" "+bd.Issue,
				telemetry.L("approach", strings.ToLower(bd.Approach)),
				telemetry.L("issue", bd.Issue),
				telemetry.L("ticket", run.TicketID),
				telemetry.L("technician", run.Technician))
			for _, step := range bd.Steps {
				child := root.StartChild(step.Name)
				clock.Advance(step.Duration)
				child.Finish()
			}
			root.Finish()
		}
	}
	return tr
}

// Figure89 runs the feasibility / attack-surface sweep on a scenario
// (Figure 8 = enterprise, Figure 9 = university). workers bounds the
// sweep's parallelism (≤ 1 = serial); results are identical at any
// worker count.
func Figure89(scen *scenarios.Scenario, mutationBudget, workers int) []*attacksurface.Result {
	results, _ := figure89Instrumented(scen, mutationBudget, workers)
	return results
}

// figure89Instrumented is Figure89 returning the evaluator too, so the
// bench harness can read its SPF-memo counters after the sweep.
func figure89Instrumented(scen *scenarios.Scenario, mutationBudget, workers int) ([]*attacksurface.Result, *attacksurface.Evaluator) {
	ev := &attacksurface.Evaluator{
		Base:           scen.Network,
		Policies:       scen.Policies,
		Sensitive:      scen.Sensitive,
		MutationBudget: mutationBudget,
		Workers:        workers,
	}
	// Fault enumeration reuses the evaluator's base snapshot instead of
	// paying a second full compute of the same network.
	cases := attacksurface.InterfaceFaults(scen.Network, ev.BaseSnapshot())
	return []*attacksurface.Result{
		ev.Evaluate(attacksurface.All, cases),
		ev.Evaluate(attacksurface.Neighbor, cases),
		ev.Evaluate(attacksurface.Heimdall, cases),
	}, ev
}

// FormatFigure89 renders the trade-off rows.
func FormatFigure89(name string, results []*attacksurface.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: feasibility and attack surface\n", name)
	for _, r := range results {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	if len(results) == 3 {
		fmt.Fprintf(&b, "  attack-surface reduction vs All: %.1f points (paper: up to 39-40%%)\n",
			results[0].MeanSurface()-results[2].MeanSurface())
	}
	return b.String()
}

// VerifyCost measures real verification time for the university policy set
// (the paper cites ~25 s for 175 constraints on their prototype; ours is a
// simulator, so the interesting number is the per-policy scaling).
type VerifyCostResult struct {
	Policies    int
	Elapsed     time.Duration
	PerPolicy   time.Duration
	ModeledWall time.Duration
}

// MeasureVerifyCost checks the university policy set against its baseline.
func MeasureVerifyCost(model latency.Model) VerifyCostResult {
	scen := scenarios.University()
	snap := scen.Snapshot()
	res := verify.Check(snap, scen.Policies)
	out := VerifyCostResult{
		Policies:    res.Checked,
		Elapsed:     res.Elapsed,
		ModeledWall: time.Duration(res.Checked) * model.VerifyPerPolicy,
	}
	if res.Checked > 0 {
		out.PerPolicy = res.Elapsed / time.Duration(res.Checked)
	}
	return out
}
