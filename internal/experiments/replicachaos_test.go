package experiments

import (
	"strings"
	"testing"
)

// TestReplicaChaosSuite runs the full Jepsen-style deck — the exhaustive
// drop-at-boundary matrix, quorum-loss pairs, partitions, all nine
// liar/lie combinations and the seeded random schedules — as parallel
// subtests, so the race detector sweeps the replication path too.
func TestReplicaChaosSuite(t *testing.T) {
	deck := ReplicaSchedules()
	if len(deck) < 60 {
		t.Fatalf("deck has %d schedules, acceptance floor is 60", len(deck))
	}
	results := make([]*ReplicaChaosResult, len(deck))
	t.Run("schedules", func(t *testing.T) {
		for i, sched := range deck {
			i, sched := i, sched
			t.Run(sched.Name, func(t *testing.T) {
				t.Parallel()
				r, err := RunReplicaSchedule(sched)
				if err != nil {
					t.Fatal(err)
				}
				results[i] = r
			})
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	var s ReplicaChaosSummary
	for _, r := range results {
		s.Add(*r)
	}
	// Coverage: the deck must commit, roll back, drop replicas, heal them,
	// and catch every lie — a sweep that misses an outcome proves nothing.
	if s.Committed == 0 || s.RolledBack == 0 {
		t.Fatalf("outcome coverage too thin: %d committed, %d rolled back", s.Committed, s.RolledBack)
	}
	if s.Dropouts == 0 || s.Healed == 0 {
		t.Fatalf("no dropouts (%d) or heals (%d) across the deck", s.Dropouts, s.Healed)
	}
	if s.LyingSchedules < 9 {
		t.Fatalf("only %d lying schedules ran (want the full 9-liar matrix and more)", s.LyingSchedules)
	}
	if s.ByzantineDetected != s.LyingSchedules {
		t.Fatalf("byzantine detection %d/%d — the guarantee is 100%%", s.ByzantineDetected, s.LyingSchedules)
	}
	t.Logf("%d schedules: %d committed, %d rolled back; %d dropouts, %d heals; %d/%d lies detected",
		len(deck), s.Committed, s.RolledBack, s.Dropouts, s.Healed, s.ByzantineDetected, s.LyingSchedules)
}

// TestReplicaChaosDeterministic: the same schedule must reproduce the
// same outcome and bookkeeping, run to run.
func TestReplicaChaosDeterministic(t *testing.T) {
	deck := ReplicaSchedules()
	for _, i := range []int{0, 13, 25, 40, len(deck) - 1} {
		a, err := RunReplicaSchedule(deck[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunReplicaSchedule(deck[i])
		if err != nil {
			t.Fatal(err)
		}
		if *a != *b {
			t.Fatalf("schedule %s not deterministic: %+v vs %+v", deck[i].Name, a, b)
		}
	}
}

// TestReplicaChaosSweep exercises the aggregate entry point the CLI uses.
func TestReplicaChaosSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full deck in -short mode")
	}
	s, err := ReplicaChaos()
	if err != nil {
		t.Fatal(err)
	}
	out := FormatReplicaChaos(s)
	if !strings.Contains(out, "lying replicas detected") {
		t.Fatalf("report missing detection summary:\n%s", out)
	}
}
