package experiments

// The replication chaos suite: a Jepsen-style sweep of seeded schedules
// thrown at the replicated enforcer — message drops at every journal
// boundary on every replica, link partitions, quorum loss before and
// during the push, and one Byzantine replica per lying schedule. Every
// schedule must terminate in a consistent group: the change committed
// everywhere or rolled back everywhere, honest replica journals
// bit-identical to the coordinator's, and the liar detected and
// quarantined by majority cross-audit.

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"time"

	"heimdall/internal/config"
	"heimdall/internal/dataplane"
	"heimdall/internal/enclave"
	"heimdall/internal/enforcer"
	"heimdall/internal/faultinject"
	"heimdall/internal/journal"
	"heimdall/internal/replica"
	"heimdall/internal/spec"
	"heimdall/internal/telemetry"
)

// replicaNames is the fixed three-replica deployment every schedule runs.
var replicaNames = []string{"rep-a", "rep-b", "rep-c"}

// ReplicaSchedule is one deterministic fault schedule for the group.
type ReplicaSchedule struct {
	Name string
	// Rules arm the injector for the commit phase. Link-scoped rules drop
	// replication messages; the sweep keeps device scopes clean so every
	// outcome is decided by replication faults alone.
	Rules []faultinject.Rule
	// Liar, when set, turns that replica Byzantine (with Lie) after the
	// commit settles, so the cross-audit must catch it.
	Liar string
	Lie  replica.Lie
}

// ReplicaSchedules builds the full deck: the exhaustive drop-at-boundary
// matrix (every replica x every replication message), quorum-loss pairs,
// partitions, all nine liar/lie combinations, and seeded random schedules
// from the shared faultinject generator.
func ReplicaSchedules() []ReplicaSchedule {
	var deck []ReplicaSchedule
	link := func(r string) string { return faultinject.LinkScope("coord", r) }

	// 1. Exhaustive single-replica drop at every journal boundary: the
	// propose (intent) message, each of the first two apply messages, and
	// the terminal-record (finish) message. One lost replica never costs
	// quorum, so these must all commit and then heal.
	for _, r := range replicaNames {
		for _, b := range []struct {
			op  string
			nth int
		}{{"propose", 1}, {"apply", 1}, {"apply", 2}, {"finish", 1}} {
			deck = append(deck, ReplicaSchedule{
				Name: fmt.Sprintf("drop-%s-%s-%d", r, b.op, b.nth),
				Rules: []faultinject.Rule{{
					Scope: link(r), Op: b.op, FailNth: b.nth, Class: faultinject.Transient,
				}},
			})
		}
	}
	// 2. Two replicas lost at the same boundary: quorum gone, the commit
	// must abort (propose) or roll back everywhere (apply).
	pairs := [][2]string{{"rep-a", "rep-b"}, {"rep-a", "rep-c"}, {"rep-b", "rep-c"}}
	for _, p := range pairs {
		for _, op := range []string{"propose", "apply"} {
			deck = append(deck, ReplicaSchedule{
				Name: fmt.Sprintf("quorum-loss-%s+%s-%s", p[0], p[1], op),
				Rules: []faultinject.Rule{
					{Scope: link(p[0]), Op: op, Outage: true, Class: faultinject.Transient},
					{Scope: link(p[1]), Op: op, Outage: true, Class: faultinject.Transient},
				},
			})
		}
	}
	// 3. Mid-push quorum loss with the survivor also dropping a restore
	// message: the rollback itself is exercised across a flaky link.
	for i, p := range pairs {
		survivor := replicaNames[2-i] // the replica not in the pair
		deck = append(deck, ReplicaSchedule{
			Name: fmt.Sprintf("rollback-under-drop-%s", survivor),
			Rules: []faultinject.Rule{
				{Scope: link(p[0]), Op: "apply", Outage: true, Class: faultinject.Transient},
				{Scope: link(p[1]), Op: "apply", Outage: true, Class: faultinject.Transient},
				{Scope: link(survivor), Op: "restore", FailNth: 1, Class: faultinject.Transient},
			},
		})
	}
	// 4. Full link partitions: each single link, then each pair of links.
	for _, r := range replicaNames {
		deck = append(deck, ReplicaSchedule{
			Name:  "partition-" + r,
			Rules: []faultinject.Rule{faultinject.PartitionRule("coord", r)},
		})
	}
	for _, p := range pairs {
		deck = append(deck, ReplicaSchedule{
			Name: fmt.Sprintf("partition-%s+%s", p[0], p[1]),
			Rules: []faultinject.Rule{
				faultinject.PartitionRule("coord", p[0]),
				faultinject.PartitionRule("coord", p[1]),
			},
		})
	}
	// 5. Byzantine: every replica tries every lie against a clean commit.
	for _, r := range replicaNames {
		for _, lie := range []replica.Lie{replica.LieForge, replica.LieTruncate, replica.LieEquivocate} {
			deck = append(deck, ReplicaSchedule{
				Name: fmt.Sprintf("byzantine-%s-%s", r, lie),
				Liar: r, Lie: lie,
			})
		}
	}
	// 6. Seeded random schedules over the replication links, reusing the
	// shared fault-plan generator; odd seeds also pick a liar.
	for seed := int64(1); seed <= 30; seed++ {
		links := []string{link("rep-a"), link("rep-b"), link("rep-c")}
		s := ReplicaSchedule{
			Name:  fmt.Sprintf("random-%d", seed),
			Rules: faultinject.RandomPlan(seed, links, []string{"propose", "apply", "finish"}).Rules,
		}
		if seed%2 == 1 {
			s.Liar = replicaNames[int(seed/2)%3]
			s.Lie = replica.Lie(1 + int(seed/3)%3)
		}
		deck = append(deck, s)
	}
	return deck
}

// ReplicaChaosResult is the audited outcome of one schedule.
type ReplicaChaosResult struct {
	Name    string
	Outcome string // "committed" or "rolled-back"
	// Dropouts is how many replicas fell Lagging during the commit;
	// Healed how many the audit brought back; Lied/Detected track the
	// Byzantine half of the schedule.
	Dropouts int
	Healed   int
	Lied     bool
	Detected bool
}

var lieVerdicts = map[replica.Lie]string{
	replica.LieForge:      replica.VerdictForged,
	replica.LieTruncate:   replica.VerdictTruncated,
	replica.LieEquivocate: replica.VerdictEquivocated,
}

// RunReplicaSchedule executes one schedule against a fresh group and
// audits the replication invariants: a single terminal outcome applied
// all-or-nothing, coordinator journal verifiable, every honest replica
// bit-identical to the coordinator after one cross-audit, liars detected
// and quarantined, and no false positives on honest replicas.
func RunReplicaSchedule(s ReplicaSchedule) (*ReplicaChaosResult, error) {
	fail := func(format string, args ...any) (*ReplicaChaosResult, error) {
		return nil, fmt.Errorf("schedule %s: %s", s.Name, fmt.Sprintf(format, args...))
	}
	n := ChaosNetwork()
	pre := n.Clone()

	platform := enclave.NewPlatformFromSeed("replica-chaos")
	encl := platform.Load("heimdall-enforcer-v1")
	policies := spec.Mine(dataplane.Compute(n), n, spec.Options{Sensitive: map[string]bool{"h3": true}})
	e := enforcer.New(encl, policies)
	reg := telemetry.NewRegistry()
	e.SetMeter(reg)
	e.Retry = enforcer.RetryPolicy{Sleep: func(time.Duration) {}}

	var inj *faultinject.Injector
	if len(s.Rules) > 0 {
		inj = faultinject.New(faultinject.Plan{Rules: s.Rules})
		inj.SetMeter(reg)
	}
	g, err := replica.NewGroup(n, e.Journal(), replica.Config{
		Replicas: replicaNames,
		Key:      e.JournalKey(),
		Injector: inj,
		Meter:    reg,
	})
	if err != nil {
		return fail("NewGroup: %v", err)
	}
	e.SetTarget(g)

	res := &ReplicaChaosResult{Name: s.Name}
	_, cerr := e.Commit(n, chaosChanges(), chaosSpec())
	if q, why := e.Quarantined(); q {
		return fail("link faults must never quarantine production: %s", why)
	}
	if cerr == nil {
		res.Outcome = "committed"
	} else {
		res.Outcome = "rolled-back"
	}
	for _, r := range g.Replicas() {
		if r.State() == replica.Lagging {
			res.Dropouts++
		}
	}

	// The coordinator's journal must verify and close with the terminal
	// record the outcome claims.
	if err := e.Journal().Verify(); err != nil {
		return fail("coordinator journal: %v", err)
	}
	records := e.Journal().Records()
	if len(records) == 0 {
		return fail("no journal records")
	}
	wantKind := journal.KindCommitted
	if res.Outcome == "rolled-back" {
		wantKind = journal.KindRolledBack
	}
	if last := records[len(records)-1]; last.Kind != wantKind {
		return fail("terminal record %s, outcome %s", last.Kind, res.Outcome)
	}

	// All-or-nothing on production.
	committedState := pre.Clone()
	if err := config.ApplyChanges(committedState, records[0].Changes); err != nil {
		return fail("applying scheduled set to pre-state: %v", err)
	}
	gotFP := chaosFingerprint(n)
	switch res.Outcome {
	case "committed":
		if gotFP != chaosFingerprint(committedState) {
			return fail("committed run does not match pre-state + changes")
		}
	case "rolled-back":
		if gotFP != chaosFingerprint(pre) {
			return fail("rolled-back run does not match pre-state")
		}
	}

	// Inject the lie (only a live replica can lie convincingly; a laggard
	// is healed by state transfer before its chain is believed).
	if s.Liar != "" && g.Replica(s.Liar).State() == replica.Live {
		g.MakeByzantine(s.Liar, s.Lie)
		res.Lied = true
	}

	// Heal the network and audit.
	g.SetInjector(nil)
	rep := g.CrossAudit()
	if !rep.Conclusive {
		return fail("cross-audit inconclusive (suspect coordinator: %v)", rep.CoordinatorSuspect)
	}
	res.Healed = len(rep.Healed)
	if res.Lied {
		want := lieVerdicts[s.Lie]
		if got := rep.Verdicts[s.Liar]; got != want {
			return fail("liar %s verdict %q, want %q", s.Liar, got, want)
		}
		if g.Replica(s.Liar).State() != replica.Quarantined {
			return fail("liar %s not quarantined", s.Liar)
		}
		res.Detected = true
	}
	for _, r := range g.Replicas() {
		if r.Name != s.Liar && r.State() == replica.Quarantined {
			return fail("honest replica %s quarantined (%s): false positive", r.Name, r.Verdict())
		}
	}

	// Every non-quarantined replica ends bit-identical to the coordinator,
	// journal and network both — committed everywhere or rolled back
	// everywhere, never mixed.
	coordExport, err := e.Journal().Export()
	if err != nil {
		return fail("export: %v", err)
	}
	for _, r := range g.Replicas() {
		if r.State() == replica.Quarantined {
			continue
		}
		if r.State() != replica.Live {
			return fail("replica %s still %s after audit", r.Name, r.State())
		}
		got, err := r.Journal().Export()
		if err != nil {
			return fail("replica %s export: %v", r.Name, err)
		}
		if !bytes.Equal(got, coordExport) {
			return fail("replica %s journal differs from coordinator after audit", r.Name)
		}
		if chaosFingerprint(r.Net()) != gotFP {
			return fail("replica %s network differs from production after audit", r.Name)
		}
	}
	// Audits are idempotent: a second pass finds nothing new.
	rep2 := g.CrossAudit()
	if len(rep2.NewlyQuarantined) != 0 || len(rep2.Healed) != 0 {
		return fail("second audit not clean: quarantined %v healed %v", rep2.NewlyQuarantined, rep2.Healed)
	}
	return res, nil
}

// ReplicaChaosSummary aggregates a replication sweep.
type ReplicaChaosSummary struct {
	Results           []ReplicaChaosResult
	Committed         int
	RolledBack        int
	Dropouts          int
	Healed            int
	LyingSchedules    int
	ByzantineDetected int
}

// ReplicaChaos runs the full schedule deck and fails on the first
// invariant violation. The deck is deterministic: the same binary always
// runs the same schedules with the same outcomes.
func ReplicaChaos() (*ReplicaChaosSummary, error) {
	s := &ReplicaChaosSummary{}
	for _, sched := range ReplicaSchedules() {
		r, err := RunReplicaSchedule(sched)
		if err != nil {
			return nil, err
		}
		s.Add(*r)
	}
	if s.LyingSchedules == 0 {
		return nil, fmt.Errorf("replica chaos: deck contains no lying schedules")
	}
	if s.ByzantineDetected != s.LyingSchedules {
		return nil, fmt.Errorf("replica chaos: %d/%d lies detected", s.ByzantineDetected, s.LyingSchedules)
	}
	return s, nil
}

// Add folds one schedule result into the summary.
func (s *ReplicaChaosSummary) Add(r ReplicaChaosResult) {
	s.Results = append(s.Results, r)
	if r.Outcome == "committed" {
		s.Committed++
	} else {
		s.RolledBack++
	}
	s.Dropouts += r.Dropouts
	s.Healed += r.Healed
	if r.Lied {
		s.LyingSchedules++
	}
	if r.Detected {
		s.ByzantineDetected++
	}
}

// QuorumCommitBench times fault-free quorum commits — intent proposal,
// three replica votes, per-change fan-out, terminal-record mirror — on a
// fresh three-replica group per commit, and returns (p50, p99) wall-clock
// milliseconds.
func QuorumCommitBench(commits int) (p50, p99 float64, err error) {
	lat := make([]time.Duration, 0, commits)
	for i := 0; i < commits; i++ {
		n := ChaosNetwork()
		platform := enclave.NewPlatformFromSeed("replica-bench")
		encl := platform.Load("heimdall-enforcer-v1")
		policies := spec.Mine(dataplane.Compute(n), n, spec.Options{Sensitive: map[string]bool{"h3": true}})
		e := enforcer.New(encl, policies)
		e.Retry = enforcer.RetryPolicy{Sleep: func(time.Duration) {}}
		g, gerr := replica.NewGroup(n, e.Journal(), replica.Config{
			Replicas: replicaNames,
			Key:      e.JournalKey(),
		})
		if gerr != nil {
			return 0, 0, gerr
		}
		e.SetTarget(g)
		start := time.Now()
		if _, cerr := e.Commit(n, chaosChanges(), chaosSpec()); cerr != nil {
			return 0, 0, fmt.Errorf("bench commit %d: %w", i, cerr)
		}
		lat = append(lat, time.Since(start))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	at := func(q float64) float64 {
		idx := int(q * float64(len(lat)-1))
		return float64(lat[idx].Nanoseconds()) / 1e6
	}
	return at(0.50), at(0.99), nil
}

// FormatReplicaChaos renders a replication sweep for the CLI.
func FormatReplicaChaos(s *ReplicaChaosSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Replication chaos suite: %d schedules against the replicated enforcer\n", len(s.Results))
	fmt.Fprintf(&b, "%-28s %-12s %9s %7s %10s\n", "schedule", "outcome", "dropouts", "healed", "byzantine")
	for _, r := range s.Results {
		byz := "-"
		if r.Lied {
			byz = "detected"
		}
		fmt.Fprintf(&b, "%-28s %-12s %9d %7d %10s\n", r.Name, r.Outcome, r.Dropouts, r.Healed, byz)
	}
	fmt.Fprintf(&b, "\n%d committed, %d rolled back; %d dropouts, %d heals; %d/%d lying replicas detected\n",
		s.Committed, s.RolledBack, s.Dropouts, s.Healed, s.ByzantineDetected, s.LyingSchedules)
	b.WriteString("Invariant held on every schedule: committed everywhere or rolled back everywhere,\n")
	b.WriteString("honest replicas bit-identical to the coordinator, every liar quarantined.\n")
	return b.String()
}
