package experiments

import (
	"strings"
	"testing"
	"time"

	"heimdall/internal/latency"
	"heimdall/internal/scenarios"
)

func TestTable1MatchesPaperShape(t *testing.T) {
	rows := Table1()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	ent, uni := rows[0], rows[1]
	if ent.Routers != 9 || ent.Hosts != 9 || ent.Links != 22 || ent.Policies != 21 {
		t.Fatalf("enterprise row = %+v", ent)
	}
	if uni.Routers != 13 || uni.Hosts != 17 || uni.Links != 92 || uni.Policies != 175 {
		t.Fatalf("university row = %+v", uni)
	}
	text := FormatTable1(rows)
	if !strings.Contains(text, "enterprise") || !strings.Contains(text, "1394") {
		t.Fatalf("format:\n%s", text)
	}
}

func TestFigure7ShapeMatchesPaper(t *testing.T) {
	runs, err := Figure7(latency.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("runs = %d", len(runs))
	}
	byName := map[string]Figure7Run{}
	var totalOverhead time.Duration
	for _, r := range runs {
		byName[r.Issue] = r
		totalOverhead += r.Overhead()

		// Heimdall is always slower than Current for the same issue, and
		// the dominant step is operating (paper: "most time is spent
		// performing operations").
		if r.Heimdall.Total() <= r.Current.Total() {
			t.Errorf("%s: Heimdall %v <= Current %v", r.Issue, r.Heimdall.Total(), r.Current.Total())
		}
		operate := r.Heimdall.Step("operate")
		for _, step := range []string{"connect", "gen-privilege", "verify", "schedule", "save"} {
			if r.Heimdall.Step(step) > operate {
				t.Errorf("%s: step %s (%v) exceeds operate (%v)", r.Issue, step, r.Heimdall.Step(step), operate)
			}
		}
	}
	// The complex issue (vlan) costs more overhead than the simple one
	// (isp), and the average lands in the paper's ballpark (~28 s; we
	// accept 10-60 s).
	if byName["vlan"].Overhead() <= byName["isp"].Overhead() {
		t.Errorf("vlan overhead %v should exceed isp %v",
			byName["vlan"].Overhead(), byName["isp"].Overhead())
	}
	mean := totalOverhead / 3
	if mean < 10*time.Second || mean > 60*time.Second {
		t.Errorf("mean overhead %v outside the paper's ballpark", mean)
	}
	if !strings.Contains(FormatFigure7(runs), "overhead") {
		t.Error("format missing overhead")
	}
}

func TestFigure8ShapeViaExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation search is slow")
	}
	results := Figure89(scenarios.Enterprise(), 0)
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	all, nb, hd := results[0], results[1], results[2]
	if all.Feasibility() != 1 || hd.Feasibility() < 0.9 {
		t.Errorf("feasibility: all=%v heimdall=%v", all.Feasibility(), hd.Feasibility())
	}
	if !(all.MeanSurface() > nb.MeanSurface() && nb.MeanSurface() > hd.MeanSurface()) {
		t.Errorf("surface ordering wrong: %v %v %v",
			all.MeanSurface(), nb.MeanSurface(), hd.MeanSurface())
	}
	if out := FormatFigure89("Figure 8 (enterprise)", results); !strings.Contains(out, "reduction") {
		t.Errorf("format:\n%s", out)
	}
}

func TestMeasureVerifyCost(t *testing.T) {
	res := MeasureVerifyCost(latency.Default())
	if res.Policies != 175 {
		t.Fatalf("policies = %d", res.Policies)
	}
	if res.Elapsed <= 0 || res.PerPolicy <= 0 {
		t.Fatalf("elapsed = %v per-policy = %v", res.Elapsed, res.PerPolicy)
	}
	// Modeled wall time reproduces the paper's ~25 s for 175 constraints.
	if res.ModeledWall < 20*time.Second || res.ModeledWall > 30*time.Second {
		t.Fatalf("modeled wall = %v, want ≈25s", res.ModeledWall)
	}
}
