package experiments

import (
	"strings"
	"testing"
	"time"

	"heimdall/internal/latency"
	"heimdall/internal/scenarios"
	"heimdall/internal/telemetry"
)

func TestTable1MatchesPaperShape(t *testing.T) {
	rows := Table1()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	ent, uni := rows[0], rows[1]
	if ent.Routers != 9 || ent.Hosts != 9 || ent.Links != 22 || ent.Policies != 21 {
		t.Fatalf("enterprise row = %+v", ent)
	}
	if uni.Routers != 13 || uni.Hosts != 17 || uni.Links != 92 || uni.Policies != 175 {
		t.Fatalf("university row = %+v", uni)
	}
	text := FormatTable1(rows)
	if !strings.Contains(text, "enterprise") || !strings.Contains(text, "1394") {
		t.Fatalf("format:\n%s", text)
	}
}

func TestFigure7ShapeMatchesPaper(t *testing.T) {
	runs, err := Figure7(latency.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("runs = %d", len(runs))
	}
	byName := map[string]Figure7Run{}
	var totalOverhead time.Duration
	for _, r := range runs {
		byName[r.Issue] = r
		totalOverhead += r.Overhead()

		// Heimdall is always slower than Current for the same issue, and
		// the dominant step is operating (paper: "most time is spent
		// performing operations").
		if r.Heimdall.Total() <= r.Current.Total() {
			t.Errorf("%s: Heimdall %v <= Current %v", r.Issue, r.Heimdall.Total(), r.Current.Total())
		}
		operate := r.Heimdall.Step("operate")
		for _, step := range []string{"connect", "gen-privilege", "verify", "schedule", "save"} {
			if r.Heimdall.Step(step) > operate {
				t.Errorf("%s: step %s (%v) exceeds operate (%v)", r.Issue, step, r.Heimdall.Step(step), operate)
			}
		}
	}
	// The complex issue (vlan) costs more overhead than the simple one
	// (isp), and the average lands in the paper's ballpark (~28 s; we
	// accept 10-60 s).
	if byName["vlan"].Overhead() <= byName["isp"].Overhead() {
		t.Errorf("vlan overhead %v should exceed isp %v",
			byName["vlan"].Overhead(), byName["isp"].Overhead())
	}
	mean := totalOverhead / 3
	if mean < 10*time.Second || mean > 60*time.Second {
		t.Errorf("mean overhead %v outside the paper's ballpark", mean)
	}
	if !strings.Contains(FormatFigure7(runs), "overhead") {
		t.Error("format missing overhead")
	}
}

func TestFigure8ShapeViaExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation search is slow")
	}
	results := Figure89(scenarios.Enterprise(), 0, 1)
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	all, nb, hd := results[0], results[1], results[2]
	if all.Feasibility() != 1 || hd.Feasibility() < 0.9 {
		t.Errorf("feasibility: all=%v heimdall=%v", all.Feasibility(), hd.Feasibility())
	}
	if !(all.MeanSurface() > nb.MeanSurface() && nb.MeanSurface() > hd.MeanSurface()) {
		t.Errorf("surface ordering wrong: %v %v %v",
			all.MeanSurface(), nb.MeanSurface(), hd.MeanSurface())
	}
	if out := FormatFigure89("Figure 8 (enterprise)", results); !strings.Contains(out, "reduction") {
		t.Errorf("format:\n%s", out)
	}
}

func TestMeasureVerifyCost(t *testing.T) {
	res := MeasureVerifyCost(latency.Default())
	if res.Policies != 175 {
		t.Fatalf("policies = %d", res.Policies)
	}
	if res.Elapsed <= 0 || res.PerPolicy <= 0 {
		t.Fatalf("elapsed = %v per-policy = %v", res.Elapsed, res.PerPolicy)
	}
	// Modeled wall time reproduces the paper's ~25 s for 175 constraints.
	if res.ModeledWall < 20*time.Second || res.ModeledWall > 30*time.Second {
		t.Fatalf("modeled wall = %v, want ≈25s", res.ModeledWall)
	}
}

// TestTraceFigure7Reconciles fabricates pilot-study runs from the default
// latency model and checks that the exported spans reconcile exactly with
// the Figure 7 breakdowns: one root span per approach whose duration is
// the breakdown total, with one child per modeled step.
func TestTraceFigure7Reconciles(t *testing.T) {
	model := latency.Default()
	runs := []Figure7Run{
		{
			Issue:      "vlan",
			TicketID:   "T-0001",
			Technician: "pilot",
			Current:    model.Current("vlan", 6),
			Heimdall:   model.Heimdall("vlan", 6, 5, 2, 21, 3),
		},
		{
			Issue:      "ospf",
			TicketID:   "T-0001",
			Technician: "pilot",
			Current:    model.Current("ospf", 4),
			Heimdall:   model.Heimdall("ospf", 4, 4, 0, 21, 1),
		},
	}
	start := time.Date(2021, time.November, 1, 0, 0, 0, 0, time.UTC)
	tr := TraceFigure7(runs, start)
	spans := tr.Finished()

	wantSpans := 0
	for _, r := range runs {
		wantSpans += 2 // two root spans
		wantSpans += len(r.Current.Steps) + len(r.Heimdall.Steps)
	}
	if len(spans) != wantSpans {
		t.Fatalf("got %d spans, want %d", len(spans), wantSpans)
	}

	roots := map[string]*telemetry.Span{}
	children := map[string][]*telemetry.Span{}
	for _, s := range spans {
		if s.ParentID == "" {
			roots[s.Name] = s
		} else {
			children[s.ParentID] = append(children[s.ParentID], s)
		}
	}
	for _, r := range runs {
		for _, bd := range []*latency.Breakdown{r.Current, r.Heimdall} {
			name := strings.ToLower(bd.Approach) + " " + bd.Issue
			root := roots[name]
			if root == nil {
				t.Fatalf("no root span %q", name)
			}
			if got := root.Duration(); got != bd.Total() {
				t.Errorf("%s: root duration %s, want breakdown total %s", name, got, bd.Total())
			}
			if root.Attrs["ticket"] != r.TicketID || root.Attrs["technician"] != r.Technician {
				t.Errorf("%s: attrs = %v", name, root.Attrs)
			}
			kids := children[root.SpanID]
			if len(kids) != len(bd.Steps) {
				t.Fatalf("%s: %d child spans, want %d steps", name, len(kids), len(bd.Steps))
			}
			for i, step := range bd.Steps {
				if kids[i].Name != step.Name {
					t.Errorf("%s: child %d = %q, want %q", name, i, kids[i].Name, step.Name)
				}
				if got := kids[i].Duration(); got != step.Duration {
					t.Errorf("%s/%s: duration %s, want %s", name, step.Name, got, step.Duration)
				}
			}
		}
	}

	// The JSONL export round-trips.
	var b strings.Builder
	if err := tr.ExportJSONL(&b); err != nil {
		t.Fatal(err)
	}
	parsed, err := telemetry.ParseJSONL([]byte(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(spans) {
		t.Fatalf("parsed %d spans, want %d", len(parsed), len(spans))
	}
}
