package experiments

import (
	"fmt"
	"testing"
)

// TestChaosSuite is the headline robustness proof: 60 seeded fault
// schedules, each audited by RunChaosSchedule against the all-or-nothing
// invariant, journal-replay equivalence and counter reconciliation.
// Schedules run as parallel subtests so the race detector sweeps the
// pipeline too.
func TestChaosSuite(t *testing.T) {
	results := make([]*ChaosResult, 61)
	t.Run("schedules", func(t *testing.T) {
		for seed := int64(1); seed <= 60; seed++ {
			seed := seed
			t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
				t.Parallel()
				r, err := RunChaosSchedule(seed)
				if err != nil {
					t.Fatal(err)
				}
				results[seed] = r
			})
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	var s ChaosSummary
	for _, r := range results[1:] {
		s.Add(*r)
	}
	// The sweep must actually exercise every terminal outcome — a chaos
	// suite that never rolls back or quarantines proves nothing.
	if s.Committed == 0 || s.RolledBack == 0 || s.Quarantined == 0 {
		t.Fatalf("outcome coverage too thin: %d committed, %d rolled back, %d quarantined",
			s.Committed, s.RolledBack, s.Quarantined)
	}
	if s.Faults == 0 {
		t.Fatal("no faults injected across 60 schedules")
	}
	t.Logf("60 schedules: %d committed, %d rolled back, %d quarantined; %d faults, %d retries",
		s.Committed, s.RolledBack, s.Quarantined, s.Faults, s.Retries)
}

// TestChaosDeterministic: the same seed must reproduce the same schedule,
// outcome and bookkeeping — that is what makes a chaos failure debuggable.
func TestChaosDeterministic(t *testing.T) {
	for _, seed := range []int64{3, 17, 42} {
		a, err := RunChaosSchedule(seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunChaosSchedule(seed)
		if err != nil {
			t.Fatal(err)
		}
		if *a != *b {
			t.Fatalf("seed %d not deterministic: %+v vs %+v", seed, a, b)
		}
	}
}

// TestChaosSweep exercises the aggregate entry point the CLI uses.
func TestChaosSweep(t *testing.T) {
	s, err := Chaos(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Results) != 10 {
		t.Fatalf("got %d results, want 10", len(s.Results))
	}
	if s.Committed+s.RolledBack+s.Quarantined != 10 {
		t.Fatalf("outcomes do not partition the sweep: %+v", s)
	}
	out := FormatChaos(s)
	if out == "" {
		t.Fatal("empty report")
	}
}
