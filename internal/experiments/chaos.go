package experiments

// The chaos suite: seeded fault schedules thrown at the enforcer's commit
// pipeline, each checked against the all-or-nothing invariant the paper's
// trust argument needs — a managed-service push either fully lands, fully
// unwinds, or quarantines with an exact journaled account of the partial
// state. Nothing in between, under any schedule.

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"heimdall/internal/config"
	"heimdall/internal/dataplane"
	"heimdall/internal/enclave"
	"heimdall/internal/enforcer"
	"heimdall/internal/faultinject"
	"heimdall/internal/journal"
	"heimdall/internal/netmodel"
	"heimdall/internal/privilege"
	"heimdall/internal/spec"
	"heimdall/internal/telemetry"
)

// ChaosNetwork builds the chaos fixture: h1—r1—r2—{h2, sensitive h3},
// with a GUARD ACL on r2 denying traffic into h3's subnet. Two routers
// mean every chaos change set crosses devices, so partial application is
// a real risk the pipeline must never expose.
func ChaosNetwork() *netmodel.Network {
	n := netmodel.NewNetwork("chaos")
	r1 := n.AddDevice("r1", netmodel.Router)
	r2 := n.AddDevice("r2", netmodel.Router)
	n.AddDevice("h1", netmodel.Host)
	n.AddDevice("h2", netmodel.Host)
	n.AddDevice("h3", netmodel.Host)

	n.MustConnect("r1", "Gi0/1", "r2", "Gi0/0")
	r1.Interface("Gi0/1").Addr = netip.MustParsePrefix("10.12.0.1/30")
	r2.Interface("Gi0/0").Addr = netip.MustParsePrefix("10.12.0.2/30")

	attach := func(host, dev, itf, sub string) {
		n.MustConnect(host, "eth0", dev, itf)
		n.Devices[dev].Interface(itf).Addr = netip.MustParsePrefix(sub + ".1/24")
		h := n.Devices[host]
		h.Interface("eth0").Addr = netip.MustParsePrefix(sub + ".10/24")
		h.DefaultGateway = netip.MustParseAddr(sub + ".1")
	}
	attach("h1", "r1", "Gi0/0", "10.1.0")
	attach("h2", "r2", "Gi0/1", "10.2.0")
	attach("h3", "r2", "Gi0/2", "10.3.0")

	via := func(d *netmodel.Device, prefix, nh string) {
		d.StaticRoutes = append(d.StaticRoutes, netmodel.StaticRoute{
			Prefix: netip.MustParsePrefix(prefix), NextHop: netip.MustParseAddr(nh)})
	}
	via(r1, "10.2.0.0/24", "10.12.0.2")
	via(r1, "10.3.0.0/24", "10.12.0.2")
	via(r2, "10.1.0.0/24", "10.12.0.1")

	guard := r2.ACL("GUARD", true)
	guard.InsertEntry(netmodel.ACLEntry{Seq: 10, Action: netmodel.Deny,
		Proto: netmodel.AnyProto, Dst: netip.MustParsePrefix("10.3.0.0/24")})
	guard.InsertEntry(netmodel.ACLEntry{Seq: 20, Action: netmodel.Permit})
	r2.Interface("Gi0/0").ACLIn = "GUARD"
	r2.Interface("Gi0/1").ACLIn = "GUARD"
	return n
}

// chaosChanges is the fixed change set every schedule pushes: four neutral
// changes spread over both routers, so the window for partial application
// spans devices.
func chaosChanges() []config.Change {
	return []config.Change{
		{Device: "r1", Op: config.OpAddACLEntry, ACLName: "CHAOS",
			Entry: &netmodel.ACLEntry{Seq: 10, Action: netmodel.Permit, Proto: netmodel.TCP,
				Dst: netip.MustParsePrefix("10.2.0.10/32"), DstPort: 443}},
		{Device: "r1", Op: config.OpSetVLAN, VLAN: &netmodel.VLAN{ID: 901, Name: "chaos-a"}},
		{Device: "r2", Op: config.OpAddACLEntry, ACLName: "GUARD",
			Entry: &netmodel.ACLEntry{Seq: 15, Action: netmodel.Permit, Proto: netmodel.TCP,
				Dst: netip.MustParsePrefix("10.2.0.10/32"), DstPort: 443}},
		{Device: "r2", Op: config.OpSetVLAN, VLAN: &netmodel.VLAN{ID: 902, Name: "chaos-b"}},
	}
}

func chaosSpec() *privilege.Spec {
	return &privilege.Spec{Ticket: "CHAOS", Technician: "chaos",
		Rules: []privilege.Rule{{Effect: privilege.AllowEffect, Action: "*", Resource: "*"}}}
}

// ChaosResult is the audited outcome of one fault schedule.
type ChaosResult struct {
	Seed    int64
	Outcome string // "committed", "rolled-back" or "quarantined"
	// Faults is how many calls the injector failed; Retries how many
	// backoff sleeps the pipeline took.
	Faults  int
	Retries int
	// Recovered is true when a quarantined run was healed by Recover
	// (every quarantined run must be).
	Recovered bool
}

// chaosFingerprint canonicalises a network for bit-for-bit comparison.
func chaosFingerprint(n *netmodel.Network) string {
	var b strings.Builder
	for _, name := range n.DeviceNames() {
		b.WriteString(config.Print(n.Devices[name]))
		b.WriteString("\n")
	}
	return b.String()
}

// replayJournal reconstructs the production state a verified journal
// describes: pre-state plus every applied change, minus every journaled
// restore. Production matching this replay bit-for-bit is what makes the
// journal a trustworthy account of a partial push.
func replayJournal(pre *netmodel.Network, records []journal.Record) (*netmodel.Network, error) {
	state := pre.Clone()
	var intent *journal.Record
	restore := func(names []string) error {
		for _, name := range names {
			d, err := config.Parse(name, intent.PreState[name])
			if err != nil {
				return fmt.Errorf("parsing journaled pre-state of %s: %w", name, err)
			}
			state.Devices[name] = d
		}
		return nil
	}
	for i := range records {
		r := &records[i]
		switch r.Kind {
		case journal.KindIntent:
			intent = r
		case journal.KindApplied:
			if intent == nil || r.ChangeIndex < 0 || r.ChangeIndex >= len(intent.Changes) {
				return nil, fmt.Errorf("applied record %d without matching intent", r.Index)
			}
			c := intent.Changes[r.ChangeIndex]
			if err := config.ApplyChange(state.Devices[c.Device], c); err != nil {
				return nil, fmt.Errorf("replaying change %d: %w", r.ChangeIndex, err)
			}
		case journal.KindRolledBack, journal.KindQuarantined, journal.KindRecovered:
			if intent == nil {
				return nil, fmt.Errorf("%s record %d without intent", r.Kind, r.Index)
			}
			names := r.Restored
			if r.Kind == journal.KindRecovered {
				// Recovery restores every journaled device before replaying.
				names = nil
				for name := range intent.PreState {
					names = append(names, name)
				}
			}
			if err := restore(names); err != nil {
				return nil, err
			}
		}
	}
	return state, nil
}

// RunChaosSchedule executes one seeded fault schedule against a fresh
// enforcer and fixture, then audits every invariant the pipeline promises:
// exactly one terminal outcome, production bit-identical to what that
// outcome implies (via independent journal replay), verifiable journal and
// audit trail, reconciled fault/retry/latency counters, and — for
// quarantined runs — that Recover restores full consistency. Any violation
// is returned as an error naming the seed.
func RunChaosSchedule(seed int64) (*ChaosResult, error) {
	n := ChaosNetwork()
	pre := n.Clone()
	changes := chaosChanges()

	platform := enclave.NewPlatformFromSeed("chaos-suite")
	encl := platform.Load("heimdall-enforcer-v1")
	policies := spec.Mine(dataplane.Compute(n), n, spec.Options{Sensitive: map[string]bool{"h3": true}})
	e := enforcer.New(encl, policies)
	reg := telemetry.NewRegistry()
	e.SetMeter(reg)

	retries := 0
	e.Retry = enforcer.RetryPolicy{
		JitterSeed: seed,
		Sleep:      func(time.Duration) { retries++ },
	}
	inj := faultinject.New(faultinject.RandomPlan(seed, []string{"r1", "r2"}, []string{"apply", "restore"}))
	inj.SetMeter(reg)
	inj.SetSleep(func(time.Duration) {}) // injected latency is virtual in the suite
	e.SetInjector(inj)

	res := &ChaosResult{Seed: seed}
	fail := func(format string, args ...any) (*ChaosResult, error) {
		return nil, fmt.Errorf("seed %d: %s", seed, fmt.Sprintf(format, args...))
	}

	_, err := e.Commit(n, changes, chaosSpec())
	quarantined, _ := e.Quarantined()
	switch {
	case err == nil:
		res.Outcome = "committed"
	case quarantined:
		res.Outcome = "quarantined"
	default:
		res.Outcome = "rolled-back"
	}
	res.Faults = inj.Injected()
	res.Retries = retries

	// The journal must be verifiable and end in exactly the terminal
	// record the outcome claims.
	if err := e.Journal().Verify(); err != nil {
		return fail("journal: %v", err)
	}
	if err := e.Trail().Verify(); err != nil {
		return fail("audit trail: %v", err)
	}
	records := e.Journal().Records()
	if len(records) == 0 {
		return fail("no journal records")
	}
	last := records[len(records)-1]
	want := map[string]journal.Kind{
		"committed":   journal.KindCommitted,
		"rolled-back": journal.KindRolledBack,
		"quarantined": journal.KindQuarantined,
	}[res.Outcome]
	if last.Kind != want {
		return fail("terminal record %s, outcome %s", last.Kind, res.Outcome)
	}

	// All-or-nothing: production must be bit-identical to the committed
	// state, the pre-state, or (quarantined) the journal's exact account.
	committedState := pre.Clone()
	if err := config.ApplyChanges(committedState, records[0].Changes); err != nil {
		return fail("applying scheduled set to pre-state: %v", err)
	}
	committedFP := chaosFingerprint(committedState)
	preFP := chaosFingerprint(pre)
	gotFP := chaosFingerprint(n)
	switch res.Outcome {
	case "committed":
		if gotFP != committedFP {
			return fail("committed run does not match pre-state + changes")
		}
	case "rolled-back":
		if gotFP != preFP {
			return fail("rolled-back run does not match pre-state")
		}
	}
	replayed, err := replayJournal(pre, records)
	if err != nil {
		return fail("journal replay: %v", err)
	}
	if chaosFingerprint(replayed) != gotFP {
		return fail("production diverges from journal replay (outcome %s)", res.Outcome)
	}

	// Counter reconciliation: the meters must agree with the injector and
	// the pipeline's own bookkeeping.
	metered := 0.0
	for _, op := range []string{"apply", "restore"} {
		for _, class := range []string{"transient", "permanent"} {
			metered += reg.CounterValue("heimdall_faults_injected_total",
				telemetry.L("op", op), telemetry.L("class", class))
		}
	}
	if metered != float64(res.Faults) {
		return fail("faults_injected_total = %v, injector says %d", metered, res.Faults)
	}
	meteredRetries := reg.CounterValue("heimdall_enforcer_push_retries_total", telemetry.L("phase", "apply")) +
		reg.CounterValue("heimdall_enforcer_push_retries_total", telemetry.L("phase", "rollback"))
	if meteredRetries != float64(res.Retries) {
		return fail("push_retries_total = %v, pipeline slept %d times", meteredRetries, res.Retries)
	}
	applied := 0
	for _, r := range records {
		if r.Kind == journal.KindApplied {
			applied++
		}
	}
	wantPushes := uint64(applied)
	if res.Outcome != "committed" {
		wantPushes++ // the op whose retries ran out is still observed
	}
	if got := reg.HistogramCount("heimdall_enforcer_push_seconds"); got != wantPushes {
		return fail("push_seconds observations = %d, want %d", got, wantPushes)
	}

	// A quarantined run is not an outcome an operator can live with: the
	// journal must still hold the commit open, and Recover must converge
	// production onto the uninterrupted result.
	if res.Outcome == "quarantined" {
		if intent, _ := e.Journal().Open(); intent == nil {
			return fail("quarantined commit not open for recovery")
		}
		rep, err := e.Recover(n)
		if err != nil {
			return fail("recover: %v", err)
		}
		if rep.Action != "committed" {
			return fail("recovery action %s, want committed", rep.Action)
		}
		if chaosFingerprint(n) != committedFP {
			return fail("recovered production does not match committed state")
		}
		if q, _ := e.Quarantined(); q {
			return fail("quarantine not cleared by recovery")
		}
		if reg.CounterValue("heimdall_enforcer_recoveries_total") != 1 {
			return fail("recoveries_total != 1 after recovery")
		}
		res.Recovered = true
	} else if intent, _ := e.Journal().Open(); intent != nil {
		return fail("settled run left the journal open")
	}
	return res, nil
}

// ChaosSummary aggregates a chaos sweep.
type ChaosSummary struct {
	Results     []ChaosResult
	Committed   int
	RolledBack  int
	Quarantined int
	Faults      int
	Retries     int
}

// Chaos runs the seeds [first, first+count) sequentially and fails on the
// first invariant violation. The same seed range always reproduces the
// same schedules and outcomes.
func Chaos(first int64, count int) (*ChaosSummary, error) {
	s := &ChaosSummary{}
	for seed := first; seed < first+int64(count); seed++ {
		r, err := RunChaosSchedule(seed)
		if err != nil {
			return nil, err
		}
		s.Add(*r)
	}
	return s, nil
}

// Add folds one schedule result into the summary.
func (s *ChaosSummary) Add(r ChaosResult) {
	s.Results = append(s.Results, r)
	switch r.Outcome {
	case "committed":
		s.Committed++
	case "rolled-back":
		s.RolledBack++
	case "quarantined":
		s.Quarantined++
	}
	s.Faults += r.Faults
	s.Retries += r.Retries
}

// FormatChaos renders a chaos sweep for the CLI.
func FormatChaos(s *ChaosSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos suite: %d fault schedules against the commit pipeline\n", len(s.Results))
	fmt.Fprintf(&b, "%8s  %-12s %7s %8s %10s\n", "seed", "outcome", "faults", "retries", "recovered")
	for _, r := range s.Results {
		rec := "-"
		if r.Recovered {
			rec = "yes"
		}
		fmt.Fprintf(&b, "%8d  %-12s %7d %8d %10s\n", r.Seed, r.Outcome, r.Faults, r.Retries, rec)
	}
	fmt.Fprintf(&b, "\n%d committed, %d rolled back, %d quarantined (all recovered); %d faults injected, %d retries\n",
		s.Committed, s.RolledBack, s.Quarantined, s.Faults, s.Retries)
	b.WriteString("Invariant held on every schedule: production is never silently partial.\n")
	return b.String()
}
