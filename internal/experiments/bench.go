package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"runtime"
	"sort"
	"strings"
	"time"

	"heimdall/internal/attacksurface"
	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
	"heimdall/internal/scenarios"
	"heimdall/internal/scenarios/generate"
	"heimdall/internal/service"
	"heimdall/internal/verify"
)

// BenchReport is the machine-readable performance trajectory emitted by
// `cmd/experiments -bench-json`. Each PR checks one in (BENCH_<n>.json) so
// regressions and wins are chartable across the repo's history. Timings
// are single-shot wall-clock measurements on whatever machine ran them —
// coarse by design; the Go benchmarks are the precise instrument.
type BenchReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`

	// Figure8SerialSeconds is the full enterprise sweep (mutation budget 0,
	// one worker) — the acceptance-criteria headline.
	Figure8SerialSeconds float64 `json:"figure8_serial_seconds"`
	// Figure9BoundedSeconds is the university sweep at mutation budget 8
	// (the CI-sized search; the full search is minutes).
	Figure9BoundedSeconds float64 `json:"figure9_bounded_seconds"`

	// SnapshotComputeMs is the full dataplane computation per scenario.
	SnapshotComputeMs map[string]float64 `json:"snapshot_compute_ms"`

	// Per-trial cost at university scale, nanoseconds per operation:
	// a full Clone+Compute versus Derive per change class.
	FullComputeNsOp   float64 `json:"full_compute_ns_op"`
	DeriveStaticNsOp  float64 `json:"derive_static_ns_op"`
	DeriveACLNsOp     float64 `json:"derive_acl_ns_op"`
	DeriveOSPFNsOp    float64 `json:"derive_ospf_ns_op"`
	DeriveL2NsOp      float64 `json:"derive_l2_ns_op"`
	DeriveL3TopoNsOp  float64 `json:"derive_l3topo_ns_op"`
	DeriveStaticSpeed float64 `json:"derive_static_speedup"`
	DeriveACLSpeed    float64 `json:"derive_acl_speedup"`
	DeriveOSPFSpeed   float64 `json:"derive_ospf_speedup"`
	DeriveL2Speed     float64 `json:"derive_l2_speedup"`
	DeriveL3TopoSpeed float64 `json:"derive_l3topo_speedup"`

	// FlowCacheHitRate is hits/(hits+misses) over two consecutive full
	// policy verifications on one university snapshot (the warm-verify
	// pattern AffectedBy leans on).
	FlowCacheHitRate float64 `json:"flowcache_hit_rate"`

	// SPFMemoHitRate is hits/(hits+misses) of the per-sweep SPF memo over
	// the bounded Figure 9 sweep: the fraction of link-state passes whose
	// canonical LSDB had already been solved by an earlier trial.
	SPFMemoHitRate float64 `json:"spf_memo_hit_rate"`

	// Service-layer headline: the multi-tenant load generator at the
	// acceptance scale (50 tenants x 20 concurrent scripted technician
	// sessions on university+enterprise), mediated commands per second and
	// mediation latency percentiles through the full twin/enforcer path,
	// plus the peak verify-queue depth behind the bounded pool.
	ServiceTenants    int     `json:"service_tenants"`
	ServiceSessions   int     `json:"service_sessions"`
	ServiceCmdsPerSec float64 `json:"service_cmds_per_sec"`
	// ServiceP50Ms/P99Ms are mediated Exec latency only; verify-pool queue
	// wait (submit to worker dequeue) is reported separately so a deep
	// review backlog reads as queue pressure, not slow mediation.
	ServiceP50Ms            float64 `json:"service_p50_ms"`
	ServiceP99Ms            float64 `json:"service_p99_ms"`
	ServiceVerifyQueueP50Ms float64 `json:"service_verify_queue_p50_ms"`
	ServiceVerifyQueueP99Ms float64 `json:"service_verify_queue_p99_ms"`
	ServicePeakQueueDepth   int     `json:"service_peak_queue_depth"`
	// Review-dedup headline: of ServiceReviews total, how many were served
	// from the enforcer's verdict cache and how many coalesced onto an
	// in-flight identical verification (the rest ran fresh).
	ServiceReviews         int64 `json:"service_reviews"`
	ServiceReviewCacheHits int64 `json:"service_review_cache_hits"`
	ServiceReviewCoalesced int64 `json:"service_review_coalesced"`

	// Replicated-enforcer headline: wall-clock per quorum commit (intent
	// proposal, three replica votes, change fan-out, terminal mirror) on a
	// fault-free three-replica group, and the Byzantine detections across
	// the full replication chaos deck — which must equal its lying
	// schedules, or the sweep itself would have failed.
	QuorumCommitP50Ms      float64 `json:"quorum_commit_p50_ms"`
	QuorumCommitP99Ms      float64 `json:"quorum_commit_p99_ms"`
	ByzantineDetectedTotal int     `json:"byzantine_detected_total"`

	// ScaleTiers are the generated-topology tiers (fat-tree datacenters,
	// ISP backbone, multi-site WAN): structural counts plus the same
	// full-vs-derive timings at each scale. The derive mutation per tier
	// is the class the topology stresses — a backbone (area 0) link down,
	// which the partitioned SPF localizes.
	ScaleTiers map[string]ScaleTier `json:"scale_tiers"`
}

// ScaleTier is one generated topology's size and timing row.
type ScaleTier struct {
	Devices  int `json:"devices"` // routers + switches
	Hosts    int `json:"hosts"`
	Links    int `json:"links"`
	Policies int `json:"policies"`

	// GenerateMs is the full scenario build: topology synthesis, config
	// rendering, baseline snapshot and (partitioned) policy mining.
	GenerateMs float64 `json:"generate_ms"`
	// SnapshotComputeMs is one full dataplane computation.
	SnapshotComputeMs float64 `json:"snapshot_compute_ms"`

	// Full clone+compute versus Derive for the tier's bench mutations.
	FullComputeNsOp   float64 `json:"full_compute_ns_op"`
	DeriveL3TopoNsOp  float64 `json:"derive_l3topo_ns_op"`
	DeriveL3TopoSpeed float64 `json:"derive_l3topo_speedup"`
	DeriveOSPFNsOp    float64 `json:"derive_ospf_ns_op"`
	DeriveOSPFSpeed   float64 `json:"derive_ospf_speedup"`

	// SweepCases fault cases (of SweepCasesTotal enumerated — the cap keeps
	// the tier affordable; the acceptance bound is the capped time) swept
	// with all three techniques at mutation budget 4, serial. The biggest
	// tiers enumerate from a stride-sampled host-pair walk (pairBudget), so
	// their SweepCasesTotal is of the sampled catalog, not the full one.
	SweepCases          int     `json:"sweep_cases"`
	SweepCasesTotal     int     `json:"sweep_cases_total"`
	SweepBoundedSeconds float64 `json:"sweep_bounded_seconds"`
}

// timeIt runs fn count times and returns mean ns/op.
func timeIt(count int, fn func()) float64 {
	start := time.Now()
	for i := 0; i < count; i++ {
		fn()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(count)
}

// RunBench measures the report's metrics. It takes tens of seconds — the
// Figure 8 sweep runs in full.
func RunBench() BenchReport {
	r := BenchReport{
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		SnapshotComputeMs: make(map[string]float64),
	}

	// The scale tiers run first, on a clean heap: they are the most
	// allocation-sensitive measurement here, and running them after the
	// figure sweeps and the service load (whose live heaps linger) was
	// observed to inflate the k8 derive timings several-fold through GC
	// pressure at GOMAXPROCS=1.
	r.ScaleTiers = RunScaleTiers()

	ent, uni := scenarios.Enterprise(), scenarios.University()

	start := time.Now()
	Figure89(ent, 0, 1)
	r.Figure8SerialSeconds = time.Since(start).Seconds()

	start = time.Now()
	_, ev := figure89Instrumented(uni, 8, 1)
	r.Figure9BoundedSeconds = time.Since(start).Seconds()
	if hits, misses := ev.SPFMemoStats(); hits+misses > 0 {
		r.SPFMemoHitRate = float64(hits) / float64(hits+misses)
	}

	for _, scen := range []*scenarios.Scenario{ent, uni} {
		scen := scen
		r.SnapshotComputeMs[scen.Name] = timeIt(20, func() {
			dataplane.Compute(scen.Network)
		}) / 1e6
	}

	// Per-trial derive vs full compute, university scale (the Figure 9
	// inner loop). Mutations mirror BenchmarkDerive.
	base := uni.Network
	snap := dataplane.Compute(base)
	blackhole := netip.MustParseAddr("10.200.0.3")
	addStatic := func(n *netmodel.Network) {
		n.Devices["r2"].StaticRoutes = append(n.Devices["r2"].StaticRoutes,
			netmodel.StaticRoute{Prefix: netip.MustParsePrefix("10.5.0.0/24"), NextHop: blackhole})
	}
	r.FullComputeNsOp = timeIt(20, func() {
		trial := base.Clone()
		addStatic(trial)
		dataplane.Compute(trial)
	})
	r.DeriveStaticNsOp = timeIt(200, func() {
		trial := base.CloneCOW("r2")
		addStatic(trial)
		snap.Derive(trial, dataplane.ChangeSet{{Device: "r2", Kind: dataplane.ChangeStatic}})
	})
	r.DeriveACLNsOp = timeIt(1000, func() {
		trial := base.CloneCOW("r2")
		d := trial.Devices["r2"]
		d.ACL(d.ACLNames()[0], true).InsertEntry(netmodel.ACLEntry{
			Seq: 1, Action: netmodel.Deny, Proto: netmodel.AnyProto,
		})
		snap.Derive(trial, dataplane.ChangeSet{{Device: "r2", Kind: dataplane.ChangeACL}})
	})
	r.DeriveOSPFNsOp = timeIt(20, func() {
		trial := base.CloneCOW("r2")
		d := trial.Devices["r2"]
		for _, ifName := range d.InterfaceNames() {
			d.OSPF.Passive[ifName] = true
		}
		snap.Derive(trial, dataplane.ChangeSet{{Device: "r2", Kind: dataplane.ChangeOSPF}})
	})
	r.DeriveL2NsOp = timeIt(200, func() {
		trial := base.CloneCOW("r2")
		trial.Devices["r2"].VLANs[999] = &netmodel.VLAN{ID: 999, Name: "qa"}
		snap.Derive(trial, dataplane.ChangeSet{{Device: "r2", Kind: dataplane.ChangeL2}})
	})
	r.DeriveL3TopoNsOp = timeIt(20, func() {
		trial := base.CloneCOW("r2")
		d := trial.Devices["r2"]
		for _, ifName := range d.InterfaceNames() {
			if itf := d.Interfaces[ifName]; itf.Up() && itf.HasAddr() {
				itf.Shutdown = true
				break
			}
		}
		snap.Derive(trial, dataplane.ChangeSet{{Device: "r2", Kind: dataplane.ChangeL3Topology}})
	})
	if r.DeriveStaticNsOp > 0 {
		r.DeriveStaticSpeed = r.FullComputeNsOp / r.DeriveStaticNsOp
	}
	if r.DeriveACLNsOp > 0 {
		r.DeriveACLSpeed = r.FullComputeNsOp / r.DeriveACLNsOp
	}
	if r.DeriveOSPFNsOp > 0 {
		r.DeriveOSPFSpeed = r.FullComputeNsOp / r.DeriveOSPFNsOp
	}
	if r.DeriveL2NsOp > 0 {
		r.DeriveL2Speed = r.FullComputeNsOp / r.DeriveL2NsOp
	}
	if r.DeriveL3TopoNsOp > 0 {
		r.DeriveL3TopoSpeed = r.FullComputeNsOp / r.DeriveL3TopoNsOp
	}

	// Flow-cache hit rate over a cold + warm verification pass.
	warm := dataplane.Compute(uni.Network)
	verify.Check(warm, uni.Policies)
	verify.Check(warm, uni.Policies)
	hits, misses := warm.FlowCacheStats()
	if hits+misses > 0 {
		r.FlowCacheHitRate = float64(hits) / float64(hits+misses)
	}

	// Multi-tenant service throughput at the acceptance scale.
	if rep, err := service.RunLoad(service.LoadConfig{
		ServiceConfig: service.Config{VerifyQueue: 4096},
		Reviews:       true,
		Commits:       true,
	}); err == nil {
		r.ServiceTenants = rep.Tenants
		r.ServiceSessions = rep.Sessions
		r.ServiceCmdsPerSec = rep.CmdsPerSec
		r.ServiceP50Ms = rep.P50Ms
		r.ServiceP99Ms = rep.P99Ms
		r.ServiceVerifyQueueP50Ms = rep.VerifyQueueP50Ms
		r.ServiceVerifyQueueP99Ms = rep.VerifyQueueP99Ms
		r.ServicePeakQueueDepth = rep.PeakQueueDepth
		r.ServiceReviews = rep.Reviews
		r.ServiceReviewCacheHits = rep.CacheHits
		r.ServiceReviewCoalesced = rep.Coalesced
	}

	// Replicated-enforcer quorum commits and the chaos deck's Byzantine
	// detections.
	if p50, p99, err := QuorumCommitBench(100); err == nil {
		r.QuorumCommitP50Ms = p50
		r.QuorumCommitP99Ms = p99
	}
	if s, err := ReplicaChaos(); err == nil {
		r.ByzantineDetectedTotal = s.ByzantineDetected
	}

	return r
}

// scaleTierSpec names one generated tier and its derive bench mutations.
type scaleTierSpec struct {
	name  string
	build func() *scenarios.Scenario
	// l3dev/l3if is the ChangeL3Topology mutation (link shutdown); on the
	// hierarchical topologies it is a redundant backbone/parallel link, so
	// the per-area fingerprints localize the recompute.
	l3dev, l3if string
	// ospfDev/ospfIf takes an OSPF cost bump (ChangeOSPF).
	ospfDev, ospfIf string
	// computes/derives are the timing iteration counts (kept small: the
	// big tiers pay seconds per full compute).
	computes, derives int
	// sweepCap overrides sweepCaseCap (0 = the default); pairBudget bounds
	// the fault enumeration's host-pair walk (0 = all pairs) — the k=16
	// tier's 1024 hosts make the unbounded quadratic walk minutes long.
	sweepCap, pairBudget int
}

// sweepCaseCap bounds the fault cases each tier's bounded sweep evaluates.
const sweepCaseCap = 12

// RunScaleTiers measures the generated-topology tiers. Separated from
// RunBench so cmd/experiments can emit tier rows without the full bench.
func RunScaleTiers() map[string]ScaleTier {
	tiers := []scaleTierSpec{
		{
			name:  "fattree-k4",
			build: func() *scenarios.Scenario { return generate.FatTree(generate.FatTreeParams{K: 4}) },
			l3dev: "c0-0", l3if: "Gi0/0", ospfDev: "c0-0", ospfIf: "Gi0/1",
			computes: 10, derives: 50,
		},
		{
			name:  "fattree-k8",
			build: func() *scenarios.Scenario { return generate.FatTree(generate.FatTreeParams{K: 8}) },
			l3dev: "c0-0", l3if: "Gi0/0", ospfDev: "c0-0", ospfIf: "Gi0/1",
			computes: 3, derives: 10,
		},
		{
			// The routine k=16 run (ROADMAP item 2 follow-up): 320 devices,
			// 1024 hosts. Time-boxed hard — one timed compute, three
			// derives, a stride-sampled fault walk and a four-case sweep —
			// so the whole tier stays around ten seconds in CI.
			name:  "fattree-k16",
			build: func() *scenarios.Scenario { return generate.FatTree(generate.FatTreeParams{K: 16}) },
			l3dev: "c0-0", l3if: "Gi0/0", ospfDev: "c0-0", ospfIf: "Gi0/1",
			computes: 1, derives: 3,
			sweepCap: 4, pairBudget: 4096,
		},
		{
			name:  "isp",
			build: func() *scenarios.Scenario { return generate.ISP(generate.ISPParams{}) },
			// The customer edge runs BGP only, so its host-port shutdown
			// leaves the OSPF LSDB untouched — the common "customer work
			// order" mutation the derive path should make nearly free.
			l3dev: "ce00", l3if: "Gi0/1", ospfDev: "p0", ospfIf: "Gi0/0",
			computes: 5, derives: 20,
		},
		{
			name:  "wan",
			build: func() *scenarios.Scenario { return generate.WAN(generate.WANParams{}) },
			// One of site 1's parallel router-pair links: no distance or ABR
			// summary changes, so every other area derives by identity.
			l3dev: "sr1-0", l3if: "Gi0/2", ospfDev: "sr1-0", ospfIf: "Gi0/2",
			computes: 10, derives: 50,
		},
	}
	out := make(map[string]ScaleTier, len(tiers))
	for _, spec := range tiers {
		out[spec.name] = runScaleTier(spec)
	}
	return out
}

func runScaleTier(spec scaleTierSpec) ScaleTier {
	// Fence off the previous tier's garbage (mining a k8 policy set
	// allocates hundreds of MB) so its collection doesn't land inside
	// this tier's timed sections.
	runtime.GC()
	start := time.Now()
	scen := spec.build()
	t := ScaleTier{
		GenerateMs: float64(time.Since(start).Nanoseconds()) / 1e6,
		Devices:    len(scen.Network.RoutersAndSwitches()),
		Hosts:      len(scen.Network.Hosts()),
		Links:      len(scen.Network.Links),
		Policies:   len(scen.Policies),
	}
	base := scen.Network
	snap := dataplane.Compute(base)
	t.SnapshotComputeMs = timeIt(spec.computes, func() {
		dataplane.Compute(base)
	}) / 1e6

	shutdown := func(n *netmodel.Network) {
		n.Devices[spec.l3dev].Interfaces[spec.l3if].Shutdown = true
	}
	t.FullComputeNsOp = timeIt(spec.computes, func() {
		trial := base.Clone()
		shutdown(trial)
		dataplane.Compute(trial)
	})
	t.DeriveL3TopoNsOp = timeIt(spec.derives, func() {
		trial := base.CloneCOW(spec.l3dev)
		shutdown(trial)
		snap.Derive(trial, dataplane.ChangeSet{{Device: spec.l3dev, Kind: dataplane.ChangeL3Topology}})
	})
	t.DeriveOSPFNsOp = timeIt(spec.derives, func() {
		trial := base.CloneCOW(spec.ospfDev)
		trial.Devices[spec.ospfDev].Interfaces[spec.ospfIf].OSPFCost = 7
		snap.Derive(trial, dataplane.ChangeSet{{Device: spec.ospfDev, Kind: dataplane.ChangeOSPF}})
	})
	if t.DeriveL3TopoNsOp > 0 {
		t.DeriveL3TopoSpeed = t.FullComputeNsOp / t.DeriveL3TopoNsOp
	}
	if t.DeriveOSPFNsOp > 0 {
		t.DeriveOSPFSpeed = t.FullComputeNsOp / t.DeriveOSPFNsOp
	}

	// Bounded attack-surface sweep: all three techniques, serial, mutation
	// budget 4, capped at sweepCaseCap fault cases.
	ev := &attacksurface.Evaluator{
		Base:           base,
		Policies:       scen.Policies,
		Sensitive:      scen.Sensitive,
		MutationBudget: 4,
		Workers:        1,
	}
	cases := attacksurface.InterfaceFaultsBudget(base, ev.BaseSnapshot(), spec.pairBudget)
	t.SweepCasesTotal = len(cases)
	caseCap := spec.sweepCap
	if caseCap == 0 {
		caseCap = sweepCaseCap
	}
	if len(cases) > caseCap {
		cases = cases[:caseCap]
	}
	t.SweepCases = len(cases)
	start = time.Now()
	for _, tech := range []attacksurface.Technique{attacksurface.All, attacksurface.Neighbor, attacksurface.Heimdall} {
		ev.Evaluate(tech, cases)
	}
	t.SweepBoundedSeconds = time.Since(start).Seconds()
	return t
}

// FormatScaleTiers renders the tier table, smallest first.
func FormatScaleTiers(tiers map[string]ScaleTier) string {
	names := make([]string, 0, len(tiers))
	for name := range tiers {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return tiers[names[i]].Devices < tiers[names[j]].Devices })
	var b strings.Builder
	b.WriteString("Scale tiers: generated topologies\n")
	fmt.Fprintf(&b, "%-11s %8s %6s %6s %9s %11s %11s %9s %9s %14s\n",
		"tier", "devices", "hosts", "links", "policies", "compute_ms", "full_ms/op", "l3topo_x", "ospf_x", "sweep(cases)")
	for _, name := range names {
		t := tiers[name]
		fmt.Fprintf(&b, "%-11s %8d %6d %6d %9d %11.1f %11.1f %8.1fx %8.1fx %8.1fs (%d/%d)\n",
			name, t.Devices, t.Hosts, t.Links, t.Policies,
			t.SnapshotComputeMs, t.FullComputeNsOp/1e6,
			t.DeriveL3TopoSpeed, t.DeriveOSPFSpeed,
			t.SweepBoundedSeconds, t.SweepCases, t.SweepCasesTotal)
	}
	return b.String()
}

// WriteJSON renders the report as indented JSON.
func (r BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
