package experiments

import (
	"encoding/json"
	"io"
	"net/netip"
	"runtime"
	"time"

	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
	"heimdall/internal/scenarios"
	"heimdall/internal/service"
	"heimdall/internal/verify"
)

// BenchReport is the machine-readable performance trajectory emitted by
// `cmd/experiments -bench-json`. Each PR checks one in (BENCH_<n>.json) so
// regressions and wins are chartable across the repo's history. Timings
// are single-shot wall-clock measurements on whatever machine ran them —
// coarse by design; the Go benchmarks are the precise instrument.
type BenchReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`

	// Figure8SerialSeconds is the full enterprise sweep (mutation budget 0,
	// one worker) — the acceptance-criteria headline.
	Figure8SerialSeconds float64 `json:"figure8_serial_seconds"`
	// Figure9BoundedSeconds is the university sweep at mutation budget 8
	// (the CI-sized search; the full search is minutes).
	Figure9BoundedSeconds float64 `json:"figure9_bounded_seconds"`

	// SnapshotComputeMs is the full dataplane computation per scenario.
	SnapshotComputeMs map[string]float64 `json:"snapshot_compute_ms"`

	// Per-trial cost at university scale, nanoseconds per operation:
	// a full Clone+Compute versus Derive per change class.
	FullComputeNsOp   float64 `json:"full_compute_ns_op"`
	DeriveStaticNsOp  float64 `json:"derive_static_ns_op"`
	DeriveACLNsOp     float64 `json:"derive_acl_ns_op"`
	DeriveOSPFNsOp    float64 `json:"derive_ospf_ns_op"`
	DeriveL2NsOp      float64 `json:"derive_l2_ns_op"`
	DeriveL3TopoNsOp  float64 `json:"derive_l3topo_ns_op"`
	DeriveStaticSpeed float64 `json:"derive_static_speedup"`
	DeriveACLSpeed    float64 `json:"derive_acl_speedup"`
	DeriveL2Speed     float64 `json:"derive_l2_speedup"`

	// FlowCacheHitRate is hits/(hits+misses) over two consecutive full
	// policy verifications on one university snapshot (the warm-verify
	// pattern AffectedBy leans on).
	FlowCacheHitRate float64 `json:"flowcache_hit_rate"`

	// SPFMemoHitRate is hits/(hits+misses) of the per-sweep SPF memo over
	// the bounded Figure 9 sweep: the fraction of link-state passes whose
	// canonical LSDB had already been solved by an earlier trial.
	SPFMemoHitRate float64 `json:"spf_memo_hit_rate"`

	// Service-layer headline: the multi-tenant load generator at the
	// acceptance scale (50 tenants x 20 concurrent scripted technician
	// sessions on university+enterprise), mediated commands per second and
	// mediation latency percentiles through the full twin/enforcer path,
	// plus the peak verify-queue depth behind the bounded pool.
	ServiceTenants        int     `json:"service_tenants"`
	ServiceSessions       int     `json:"service_sessions"`
	ServiceCmdsPerSec     float64 `json:"service_cmds_per_sec"`
	ServiceP50Ms          float64 `json:"service_p50_ms"`
	ServiceP99Ms          float64 `json:"service_p99_ms"`
	ServicePeakQueueDepth int     `json:"service_peak_queue_depth"`
}

// timeIt runs fn count times and returns mean ns/op.
func timeIt(count int, fn func()) float64 {
	start := time.Now()
	for i := 0; i < count; i++ {
		fn()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(count)
}

// RunBench measures the report's metrics. It takes tens of seconds — the
// Figure 8 sweep runs in full.
func RunBench() BenchReport {
	r := BenchReport{
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		SnapshotComputeMs: make(map[string]float64),
	}

	ent, uni := scenarios.Enterprise(), scenarios.University()

	start := time.Now()
	Figure89(ent, 0, 1)
	r.Figure8SerialSeconds = time.Since(start).Seconds()

	start = time.Now()
	_, ev := figure89Instrumented(uni, 8, 1)
	r.Figure9BoundedSeconds = time.Since(start).Seconds()
	if hits, misses := ev.SPFMemoStats(); hits+misses > 0 {
		r.SPFMemoHitRate = float64(hits) / float64(hits+misses)
	}

	for _, scen := range []*scenarios.Scenario{ent, uni} {
		scen := scen
		r.SnapshotComputeMs[scen.Name] = timeIt(20, func() {
			dataplane.Compute(scen.Network)
		}) / 1e6
	}

	// Per-trial derive vs full compute, university scale (the Figure 9
	// inner loop). Mutations mirror BenchmarkDerive.
	base := uni.Network
	snap := dataplane.Compute(base)
	blackhole := netip.MustParseAddr("10.200.0.3")
	addStatic := func(n *netmodel.Network) {
		n.Devices["r2"].StaticRoutes = append(n.Devices["r2"].StaticRoutes,
			netmodel.StaticRoute{Prefix: netip.MustParsePrefix("10.5.0.0/24"), NextHop: blackhole})
	}
	r.FullComputeNsOp = timeIt(20, func() {
		trial := base.Clone()
		addStatic(trial)
		dataplane.Compute(trial)
	})
	r.DeriveStaticNsOp = timeIt(200, func() {
		trial := base.CloneCOW("r2")
		addStatic(trial)
		snap.Derive(trial, dataplane.ChangeSet{{Device: "r2", Kind: dataplane.ChangeStatic}})
	})
	r.DeriveACLNsOp = timeIt(1000, func() {
		trial := base.CloneCOW("r2")
		d := trial.Devices["r2"]
		d.ACL(d.ACLNames()[0], true).InsertEntry(netmodel.ACLEntry{
			Seq: 1, Action: netmodel.Deny, Proto: netmodel.AnyProto,
		})
		snap.Derive(trial, dataplane.ChangeSet{{Device: "r2", Kind: dataplane.ChangeACL}})
	})
	r.DeriveOSPFNsOp = timeIt(20, func() {
		trial := base.CloneCOW("r2")
		d := trial.Devices["r2"]
		for _, ifName := range d.InterfaceNames() {
			d.OSPF.Passive[ifName] = true
		}
		snap.Derive(trial, dataplane.ChangeSet{{Device: "r2", Kind: dataplane.ChangeOSPF}})
	})
	r.DeriveL2NsOp = timeIt(200, func() {
		trial := base.CloneCOW("r2")
		trial.Devices["r2"].VLANs[999] = &netmodel.VLAN{ID: 999, Name: "qa"}
		snap.Derive(trial, dataplane.ChangeSet{{Device: "r2", Kind: dataplane.ChangeL2}})
	})
	r.DeriveL3TopoNsOp = timeIt(20, func() {
		trial := base.CloneCOW("r2")
		d := trial.Devices["r2"]
		for _, ifName := range d.InterfaceNames() {
			if itf := d.Interfaces[ifName]; itf.Up() && itf.HasAddr() {
				itf.Shutdown = true
				break
			}
		}
		snap.Derive(trial, dataplane.ChangeSet{{Device: "r2", Kind: dataplane.ChangeL3Topology}})
	})
	if r.DeriveStaticNsOp > 0 {
		r.DeriveStaticSpeed = r.FullComputeNsOp / r.DeriveStaticNsOp
	}
	if r.DeriveACLNsOp > 0 {
		r.DeriveACLSpeed = r.FullComputeNsOp / r.DeriveACLNsOp
	}
	if r.DeriveL2NsOp > 0 {
		r.DeriveL2Speed = r.FullComputeNsOp / r.DeriveL2NsOp
	}

	// Flow-cache hit rate over a cold + warm verification pass.
	warm := dataplane.Compute(uni.Network)
	verify.Check(warm, uni.Policies)
	verify.Check(warm, uni.Policies)
	hits, misses := warm.FlowCacheStats()
	if hits+misses > 0 {
		r.FlowCacheHitRate = float64(hits) / float64(hits+misses)
	}

	// Multi-tenant service throughput at the acceptance scale.
	if rep, err := service.RunLoad(service.LoadConfig{
		ServiceConfig: service.Config{VerifyQueue: 4096},
		Reviews:       true,
		Commits:       true,
	}); err == nil {
		r.ServiceTenants = rep.Tenants
		r.ServiceSessions = rep.Sessions
		r.ServiceCmdsPerSec = rep.CmdsPerSec
		r.ServiceP50Ms = rep.P50Ms
		r.ServiceP99Ms = rep.P99Ms
		r.ServicePeakQueueDepth = rep.PeakQueueDepth
	}
	return r
}

// WriteJSON renders the report as indented JSON.
func (r BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
