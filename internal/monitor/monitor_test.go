package monitor

import (
	"math"
	"strings"
	"testing"

	"heimdall/internal/netmodel"
	"heimdall/internal/scenarios"
)

func TestEvaluateRoutesDemands(t *testing.T) {
	scen := scenarios.Enterprise()
	snap := scen.Snapshot()
	demands := []Demand{
		{Src: "h4", Dst: "h5", Proto: netmodel.TCP, Port: 443, Rate: 100},
		{Src: "h5", Dst: "h4", Proto: netmodel.TCP, Port: 443, Rate: 50},
		{Src: "h1", Dst: "h9", Proto: netmodel.TCP, Port: 443, Rate: 25}, // blocked by FINANCE-GUARD
	}
	rep := Evaluate(snap, demands)
	if rep.TotalOffered != 175 {
		t.Fatalf("offered = %v", rep.TotalOffered)
	}
	if rep.TotalDelivered != 150 {
		t.Fatalf("delivered = %v", rep.TotalDelivered)
	}
	if len(rep.Undelivered) != 1 || rep.Undelivered[0].Dst != "h9" {
		t.Fatalf("undelivered = %+v", rep.Undelivered)
	}
	if !strings.Contains(rep.Reasons[0], "acl-deny") {
		t.Fatalf("reason = %q", rep.Reasons[0])
	}
	// h4's gateway egress carries the 100 Mbps flow; flows are counted.
	foundEgress := false
	for _, l := range rep.Loads {
		if l.Device == "h4" && l.Mbps != 100 {
			t.Errorf("h4 egress = %+v", l)
		}
		if l.Device == "r5" {
			foundEgress = true
		}
		if l.Flows == 0 || l.Mbps <= 0 {
			t.Errorf("degenerate load %+v", l)
		}
	}
	if !foundEgress {
		t.Fatalf("r5 missing from loads: %+v", rep.Loads)
	}
	// Loads sorted descending.
	for i := 1; i < len(rep.Loads); i++ {
		if rep.Loads[i].Mbps > rep.Loads[i-1].Mbps {
			t.Fatal("loads not sorted")
		}
	}
	if got := rep.TopTalkers(3); len(got) != 3 {
		t.Fatalf("TopTalkers = %d", len(got))
	}
	if rep.String() == "" || !strings.Contains(rep.String(), "LOSS h1 -> h9") {
		t.Fatalf("report:\n%s", rep)
	}
}

func TestEvaluateConservation(t *testing.T) {
	// Flow conservation: every delivered demand contributes its rate to
	// exactly one egress interface per transit device on its path, so the
	// source-host egress total equals the delivered total.
	scen := scenarios.Enterprise()
	snap := scen.Snapshot()
	demands := UniformMatrix(scen.Network, 42, 60, 1, 10)
	rep := Evaluate(snap, demands)

	srcEgress := 0.0
	for _, l := range rep.Loads {
		if scen.Network.Devices[l.Device].Kind == netmodel.Host {
			srcEgress += l.Mbps
		}
	}
	if math.Abs(srcEgress-rep.TotalDelivered) > 1e-6 {
		t.Fatalf("host egress %.3f != delivered %.3f", srcEgress, rep.TotalDelivered)
	}
	if rep.TotalDelivered > rep.TotalOffered {
		t.Fatal("delivered exceeds offered")
	}
}

func TestUniformMatrixDeterministic(t *testing.T) {
	scen := scenarios.Enterprise()
	a := UniformMatrix(scen.Network, 7, 20, 1, 5)
	b := UniformMatrix(scen.Network, 7, 20, 1, 5)
	if len(a) != 20 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("matrix not deterministic")
		}
		if a[i].Src == a[i].Dst {
			t.Fatal("self-demand generated")
		}
		if a[i].Rate < 1 || a[i].Rate > 5 {
			t.Fatalf("rate out of range: %v", a[i].Rate)
		}
	}
	if got := UniformMatrix(scen.Network, 7, 0, 1, 5); got != nil {
		t.Fatal("zero flows should yield nil")
	}
}

func TestMonitoringDetectsOutageShift(t *testing.T) {
	// The MSP monitoring use case: after a link failure, the same demand
	// matrix shows loss or rerouted load — the signal that opens a ticket.
	scen := scenarios.Enterprise()
	demands := []Demand{{Src: "h5", Dst: "h6", Proto: netmodel.TCP, Port: 443, Rate: 100}}
	before := Evaluate(scen.Snapshot(), demands)
	if before.TotalDelivered != 100 {
		t.Fatalf("baseline loss: %s", before)
	}
	// Fail r7's uplink: h6 becomes unreachable.
	scen.Network.Device("r7").Interface("Gi0/0").Shutdown = true
	after := Evaluate(scen.Snapshot(), demands)
	if after.TotalDelivered != 0 || len(after.Undelivered) != 1 {
		t.Fatalf("outage not visible: %s", after)
	}
}
