// Package monitor implements the performance-management service class of
// the paper's §2.1 ("monitor bandwidth usage"): offered traffic demands are
// routed over a dataplane snapshot's forwarding paths and aggregated into
// per-interface load, giving the MSP technician top-talker and utilization
// reports without any write access — exactly what the read-only
// TaskMonitoring privilege template is for.
package monitor

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
)

// Demand is one offered host-to-host traffic flow.
type Demand struct {
	Src, Dst string
	Proto    netmodel.Protocol
	Port     uint16
	// Rate is the offered load in Mbit/s.
	Rate float64
}

// InterfaceLoad aggregates the traffic leaving one interface.
type InterfaceLoad struct {
	Device    string
	Interface string
	Mbps      float64
	Flows     int
}

// Report is the result of routing a demand matrix over a snapshot.
type Report struct {
	Loads []InterfaceLoad
	// Undelivered lists demands whose traffic did not reach its
	// destination (with the drop reason in Reasons, index-aligned).
	Undelivered []Demand
	Reasons     []string

	TotalOffered   float64
	TotalDelivered float64
}

// Evaluate routes every demand over the snapshot's forwarding path and
// accumulates per-egress-interface load. Loads are sorted by Mbps
// descending (then by name for determinism).
func Evaluate(snap *dataplane.Snapshot, demands []Demand) *Report {
	rep := &Report{}
	type key struct{ dev, itf string }
	acc := make(map[key]*InterfaceLoad)
	for _, d := range demands {
		rep.TotalOffered += d.Rate
		tr, err := snap.Reach(d.Src, d.Dst, d.Proto, d.Port)
		if err != nil {
			rep.Undelivered = append(rep.Undelivered, d)
			rep.Reasons = append(rep.Reasons, err.Error())
			continue
		}
		if !tr.Delivered() {
			rep.Undelivered = append(rep.Undelivered, d)
			rep.Reasons = append(rep.Reasons, tr.Disposition.String()+" at "+tr.Where)
			continue
		}
		rep.TotalDelivered += d.Rate
		for _, hop := range tr.Hops {
			if hop.OutIf == "" {
				continue
			}
			k := key{hop.Device, hop.OutIf}
			l, ok := acc[k]
			if !ok {
				l = &InterfaceLoad{Device: hop.Device, Interface: hop.OutIf}
				acc[k] = l
			}
			l.Mbps += d.Rate
			l.Flows++
		}
	}
	for _, l := range acc {
		rep.Loads = append(rep.Loads, *l)
	}
	sort.Slice(rep.Loads, func(i, j int) bool {
		if rep.Loads[i].Mbps != rep.Loads[j].Mbps {
			return rep.Loads[i].Mbps > rep.Loads[j].Mbps
		}
		if rep.Loads[i].Device != rep.Loads[j].Device {
			return rep.Loads[i].Device < rep.Loads[j].Device
		}
		return rep.Loads[i].Interface < rep.Loads[j].Interface
	})
	return rep
}

// TopTalkers returns the k busiest interfaces.
func (r *Report) TopTalkers(k int) []InterfaceLoad {
	if k > len(r.Loads) {
		k = len(r.Loads)
	}
	return r.Loads[:k]
}

// String renders the report like an MSP bandwidth dashboard.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "offered %.1f Mbps, delivered %.1f Mbps (%d flows undelivered)\n",
		r.TotalOffered, r.TotalDelivered, len(r.Undelivered))
	for _, l := range r.TopTalkers(10) {
		fmt.Fprintf(&b, "  %-6s %-12s %8.1f Mbps  (%d flows)\n", l.Device, l.Interface, l.Mbps, l.Flows)
	}
	for i, d := range r.Undelivered {
		fmt.Fprintf(&b, "  LOSS %s -> %s (%.1f Mbps): %s\n", d.Src, d.Dst, d.Rate, r.Reasons[i])
	}
	return strings.TrimRight(b.String(), "\n")
}

// UniformMatrix generates a deterministic random demand matrix: flows
// host pairs drawn uniformly, each offering between minRate and maxRate.
func UniformMatrix(n *netmodel.Network, seed int64, flows int, minRate, maxRate float64) []Demand {
	hosts := n.Hosts()
	if len(hosts) < 2 || flows <= 0 {
		return nil
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]Demand, 0, flows)
	for i := 0; i < flows; i++ {
		si := r.Intn(len(hosts))
		di := r.Intn(len(hosts) - 1)
		if di >= si {
			di++
		}
		proto := netmodel.TCP
		port := uint16(443)
		if i%3 == 0 {
			port = 80
		}
		out = append(out, Demand{
			Src: hosts[si], Dst: hosts[di], Proto: proto, Port: port,
			Rate: minRate + r.Float64()*(maxRate-minRate),
		})
	}
	return out
}
