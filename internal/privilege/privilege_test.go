package privilege

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestMatchPath(t *testing.T) {
	cases := []struct {
		pattern, value string
		sep            byte
		want           bool
	}{
		{"*", "anything:at:all", ':', true},
		{"device:r1", "device:r1", ':', true},
		{"device:r1", "device:r1:interface:Gi0/0", ':', true}, // hierarchical prefix
		{"device:*", "device:r9:acl:X", ':', true},
		{"device:r1:interface:*", "device:r1:interface:Gi0/0", ':', true},
		{"device:r1:interface:Gi0/0", "device:r1", ':', false}, // pattern longer than value
		{"device:r2", "device:r1", ':', false},
		{"show.*", "show.ip.route", '.', true},
		{"show", "show.run", '.', true},
		{"config.acl.*", "config.acl.add", '.', true},
		{"config.acl.*", "config.interface.set", '.', false},
	}
	for _, tc := range cases {
		if got := matchPath(tc.pattern, tc.value, tc.sep); got != tc.want {
			t.Errorf("matchPath(%q, %q) = %v, want %v", tc.pattern, tc.value, got, tc.want)
		}
	}
}

func TestEvaluateDenyOverridesAndDefaultDeny(t *testing.T) {
	s := &Spec{Ticket: "T1", Technician: "alice", Rules: []Rule{
		{Effect: AllowEffect, Action: "show.*", Resource: "device:*"},
		{Effect: AllowEffect, Action: "config.acl.*", Resource: "device:r3"},
		{Effect: DenyEffect, Action: "*", Resource: "device:h3"},
	}}
	if !s.Allows("show.ip.route", "device:r1") {
		t.Error("show on r1 should be allowed")
	}
	if !s.Allows("config.acl.add", "device:r3:acl:CORE-IN") {
		t.Error("acl config on r3 should be allowed")
	}
	if s.Allows("config.acl.add", "device:r1") {
		t.Error("acl config on r1 should be default-denied")
	}
	if s.Allows("show.run", "device:h3") {
		t.Error("deny must override the show allow on h3")
	}
	if s.Allows("config.interface.set", "device:r3:interface:Gi0/0") {
		t.Error("interface config not granted anywhere")
	}
}

func TestAllowedOnAndDevices(t *testing.T) {
	s := &Spec{Rules: []Rule{
		{Effect: AllowEffect, Action: "show.*", Resource: "device:r1"},
		{Effect: AllowEffect, Action: "config.acl.*", Resource: "device:r2"},
		{Effect: DenyEffect, Action: "*", Resource: "device:h9"},
	}}
	actions := []string{"show.run", "show.ip.route", "config.acl.add", "config.ospf.set"}
	if got := s.AllowedOn("device:r1", actions); got != 2 {
		t.Errorf("AllowedOn(r1) = %d, want 2", got)
	}
	if got := s.AllowedOn("device:r2", actions); got != 1 {
		t.Errorf("AllowedOn(r2) = %d, want 1", got)
	}
	if got := s.Devices(); !reflect.DeepEqual(got, []string{"r1", "r2"}) {
		t.Errorf("Devices = %v", got)
	}
}

func TestParseSpecTextDSL(t *testing.T) {
	text := `
# privileges for ticket T42
allow(show.*, device:*)
allow(config.interface.set, device:r3:interface:Gi0/1)
deny(config.acl.*, device:r3)
`
	s, err := ParseSpec("T42", "bob", text)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rules) != 3 || s.Ticket != "T42" || s.Technician != "bob" {
		t.Fatalf("spec = %+v", s)
	}
	if s.Rules[2].Effect != DenyEffect || s.Rules[2].Action != "config.acl.*" {
		t.Fatalf("rule 3 = %+v", s.Rules[2])
	}
	// Round trip through String().
	s2, err := ParseSpec("T42", "bob", s.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Rules, s2.Rules) {
		t.Fatalf("DSL round trip: %v vs %v", s.Rules, s2.Rules)
	}
}

func TestParseRuleErrors(t *testing.T) {
	bad := []string{
		"allow show.*, device:*",
		"permit(show.*, device:*)",
		"allow(show.*)",
		"allow(, device:*)",
		"allow(show.*, )",
		"allow(show.*, device:*",
	}
	for _, line := range bad {
		if _, err := ParseRule(line); err == nil {
			t.Errorf("ParseRule(%q): expected error", line)
		}
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := &Spec{Ticket: "T7", Technician: "carol", Rules: []Rule{
		{Effect: AllowEffect, Action: "show.*", Resource: "device:r1"},
		{Effect: DenyEffect, Action: "*", Resource: "device:h3"},
	}}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*s, back) {
		t.Fatalf("JSON round trip: %+v vs %+v", *s, back)
	}
	for _, bad := range []string{
		`{"ticket":"T","technician":"x","rules":[{"effect":"maybe","action":"a","resource":"r"}]}`,
		`{"ticket":"T","technician":"x","rules":[{"effect":"allow","action":"","resource":"r"}]}`,
	} {
		var s2 Spec
		if err := json.Unmarshal([]byte(bad), &s2); err == nil {
			t.Errorf("bad JSON accepted: %s", bad)
		}
	}
}

func TestGenerateTemplate(t *testing.T) {
	s, err := Generate(TemplateInput{
		Ticket: "T1", Technician: "alice", Kind: TaskACL,
		Scope:     []string{"r1", "r2", "r3"},
		Suspects:  []string{"r3"},
		Sensitive: []string{"h3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Read everywhere in scope.
	for _, dev := range []string{"r1", "r2", "r3"} {
		if !s.Allows("show.ip.route", "device:"+dev) {
			t.Errorf("show should be allowed on %s", dev)
		}
	}
	// ACL writes only on the suspect.
	if !s.Allows("config.acl.add", "device:r3:acl:X") {
		t.Error("acl write on suspect r3 should be allowed")
	}
	if s.Allows("config.acl.add", "device:r1") {
		t.Error("acl write on r1 should be denied")
	}
	// Kind-scoped: no interface shutdown privileges on an ACL ticket.
	if s.Allows("config.interface.set", "device:r3:interface:Gi0/0") {
		t.Error("interface write should not come with an ACL ticket")
	}
	// Sensitive devices stay dark even for reads.
	if s.Allows("show.run", "device:h3") {
		t.Error("sensitive device should be denied")
	}

	if _, err := Generate(TemplateInput{Ticket: "", Technician: "x", Kind: TaskACL}); err == nil {
		t.Error("empty ticket accepted")
	}
	if _, err := Generate(TemplateInput{Ticket: "T", Technician: "x", Kind: "bogus"}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestMonitoringTemplateIsReadOnly(t *testing.T) {
	s, err := Generate(TemplateInput{
		Ticket: "T2", Technician: "bob", Kind: TaskMonitoring,
		Scope: []string{"r1"}, Suspects: []string{"r1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Allows("show.interfaces", "device:r1") {
		t.Error("monitoring should read")
	}
	for _, a := range []string{"config.acl.add", "config.interface.set", "config.route.add"} {
		if s.Allows(a, "device:r1") {
			t.Errorf("monitoring must not allow %s", a)
		}
	}
}

func TestEscalationFlow(t *testing.T) {
	s, _ := Generate(TemplateInput{
		Ticket: "T3", Technician: "eve", Kind: TaskOSPF,
		Scope: []string{"r1", "r2"}, Suspects: []string{"r2"},
	})
	if s.Allows("config.acl.add", "device:r2") {
		t.Fatal("ACL write should start denied on an OSPF ticket")
	}
	esc := s.RequestEscalation(Rule{Effect: AllowEffect, Action: "config.acl.*", Resource: "device:r2"},
		"routing fine; firewall rule suspected")
	if esc.Approved {
		t.Fatal("escalation pre-approved")
	}
	if err := s.Approve(esc); err != nil {
		t.Fatal(err)
	}
	if !esc.Approved || !s.Allows("config.acl.add", "device:r2") {
		t.Fatal("approved escalation should take effect")
	}

	// Wrong ticket and deny escalations are rejected.
	other := &Escalation{Ticket: "T9", Rule: Rule{Effect: AllowEffect, Action: "a", Resource: "r"}}
	if err := s.Approve(other); err == nil {
		t.Error("cross-ticket escalation accepted")
	}
	bad := s.RequestEscalation(Rule{Effect: DenyEffect, Action: "a", Resource: "r"}, "")
	if err := s.Approve(bad); err == nil {
		t.Error("deny escalation accepted")
	}
}

// Property: Evaluate never allows anything an empty spec was asked about,
// and adding a deny rule never widens the allowed set.
func TestDenyMonotonicityProperty(t *testing.T) {
	empty := &Spec{}
	f := func(action, resource string) bool {
		return !empty.Allows(action, resource)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}

	base := &Spec{Rules: []Rule{
		{Effect: AllowEffect, Action: "show.*", Resource: "device:*"},
		{Effect: AllowEffect, Action: "config.*", Resource: "device:r1"},
	}}
	withDeny := &Spec{Rules: append(append([]Rule(nil), base.Rules...),
		Rule{Effect: DenyEffect, Action: "config.*", Resource: "device:r1:acl:SECRET"})}
	actions := []string{"show.run", "config.acl.add", "config.interface.set"}
	resources := []string{"device:r1", "device:r1:acl:SECRET", "device:r2", "device:r1:interface:Gi0/0"}
	for _, a := range actions {
		for _, r := range resources {
			if withDeny.Allows(a, r) && !base.Allows(a, r) {
				t.Fatalf("deny rule widened access for (%s, %s)", a, r)
			}
		}
	}
	if withDeny.Allows("config.acl.add", "device:r1:acl:SECRET") {
		t.Fatal("deny rule ineffective")
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{Effect: AllowEffect, Action: "show.*", Resource: "device:r1"}
	if got := r.String(); got != "allow(show.*, device:r1)" {
		t.Fatalf("Rule.String = %q", got)
	}
	if !strings.Contains((&Spec{Ticket: "T", Technician: "u", Rules: []Rule{r}}).String(), "allow(show.*, device:r1)") {
		t.Fatal("Spec.String missing rule")
	}
}
