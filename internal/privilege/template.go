package privilege

import (
	"fmt"
	"sort"
)

// TaskKind classifies the ticket driving a privilege template, mirroring
// the issue classes of the paper's evaluation (§5).
type TaskKind string

const (
	// TaskConnectivity is a generic "A cannot reach B" ticket.
	TaskConnectivity TaskKind = "connectivity"
	// TaskACL is a firewall/ACL misconfiguration ticket.
	TaskACL TaskKind = "acl"
	// TaskVLAN is a VLAN assignment/trunking ticket.
	TaskVLAN TaskKind = "vlan"
	// TaskOSPF is a routing-protocol ticket.
	TaskOSPF TaskKind = "ospf"
	// TaskISP is an ISP/static-route reconfiguration ticket.
	TaskISP TaskKind = "isp"
	// TaskInterface is an interface-down/up ticket.
	TaskInterface TaskKind = "interface"
	// TaskMonitoring is read-only performance monitoring.
	TaskMonitoring TaskKind = "monitoring"
)

// TemplateInput describes a ticket to the privilege generator.
type TemplateInput struct {
	Ticket     string
	Technician string
	Kind       TaskKind
	// Scope lists devices inside the twin's task-driven slice: read access
	// is granted on these.
	Scope []string
	// Suspects lists devices where the root cause may live: write access
	// for the task's configuration domain is granted on these.
	Suspects []string
	// Sensitive lists devices that must stay untouchable regardless of
	// scope (explicit deny, which overrides any allow).
	Sensitive []string
}

// writeActionsByKind maps each task kind to the configuration actions it
// legitimately needs. These deliberately exclude everything else: an ACL
// ticket grants no interface shutdowns, and vice versa.
var writeActionsByKind = map[TaskKind][]string{
	TaskConnectivity: {"config.acl.*", "config.interface.set", "config.route.*"},
	TaskACL:          {"config.acl.*"},
	TaskVLAN:         {"config.vlan.*", "config.interface.set"},
	TaskOSPF:         {"config.ospf.*", "config.interface.set"},
	TaskISP:          {"config.route.*", "config.bgp.*", "config.interface.set", "config.gateway.set"},
	TaskInterface:    {"config.interface.set"},
	TaskMonitoring:   nil,
}

// Generate builds the task-driven Privilegemsp for a ticket: read/diagnose
// privileges across the scope, task-specific write privileges on suspect
// devices, and explicit denies on sensitive devices. This is the automation
// the paper proposes so that admins do not hand-write predicates per ticket.
func Generate(in TemplateInput) (*Spec, error) {
	if in.Ticket == "" || in.Technician == "" {
		return nil, fmt.Errorf("privilege: template needs ticket and technician")
	}
	writes, ok := writeActionsByKind[in.Kind]
	if !ok {
		return nil, fmt.Errorf("privilege: unknown task kind %q", in.Kind)
	}
	s := &Spec{Ticket: in.Ticket, Technician: in.Technician}

	scope := append([]string(nil), in.Scope...)
	sort.Strings(scope)
	for _, dev := range scope {
		res := "device:" + dev
		s.Rules = append(s.Rules,
			Rule{Effect: AllowEffect, Action: "show.*", Resource: res},
			Rule{Effect: AllowEffect, Action: "diag.*", Resource: res},
		)
	}

	suspects := append([]string(nil), in.Suspects...)
	sort.Strings(suspects)
	for _, dev := range suspects {
		res := "device:" + dev
		for _, a := range writes {
			s.Rules = append(s.Rules, Rule{Effect: AllowEffect, Action: a, Resource: res})
		}
	}

	sensitive := append([]string(nil), in.Sensitive...)
	sort.Strings(sensitive)
	for _, dev := range sensitive {
		s.Rules = append(s.Rules, Rule{Effect: DenyEffect, Action: "*", Resource: "device:" + dev})
	}
	return s, nil
}

// Escalation is a request to widen a ticket's privileges mid-task
// (paper §7, "Privilege escalation"). It must be approved by the admin
// before the rule takes effect.
type Escalation struct {
	Ticket        string
	Technician    string
	Rule          Rule
	Justification string
	Approved      bool
}

// RequestEscalation creates a pending escalation for the spec's ticket.
func (s *Spec) RequestEscalation(rule Rule, justification string) *Escalation {
	return &Escalation{
		Ticket:        s.Ticket,
		Technician:    s.Technician,
		Rule:          rule,
		Justification: justification,
	}
}

// Approve applies an approved escalation to the spec, appending its rule.
// It returns an error for escalations belonging to another ticket or for
// deny rules (escalations only ever widen privileges; narrowing is done by
// issuing a new spec).
func (s *Spec) Approve(e *Escalation) error {
	if e.Ticket != s.Ticket {
		return fmt.Errorf("privilege: escalation for ticket %s applied to %s", e.Ticket, s.Ticket)
	}
	if e.Rule.Effect != AllowEffect {
		return fmt.Errorf("privilege: escalations must be allow rules")
	}
	e.Approved = true
	s.Rules = append(s.Rules, e.Rule)
	return nil
}
