package privilege

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestCompiledMatchesEvaluate pins the compiled trie to the reference
// evaluator over randomized rule sets and queries, including wildcard
// segments, whole-pattern stars, literal "*" value segments, empty
// segments, and patterns longer than the value.
func TestCompiledMatchesEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	segs := []string{"a", "b", "config", "device", "interface", "r1", "*", ""}
	randPath := func(sep byte, min, max int) string {
		n := min + rng.Intn(max-min+1)
		out := ""
		for i := 0; i < n; i++ {
			if i > 0 {
				out += string(sep)
			}
			out += segs[rng.Intn(len(segs))]
		}
		return out
	}
	for trial := 0; trial < 500; trial++ {
		spec := &Spec{Ticket: "t", Technician: "x"}
		for i, n := 0, 1+rng.Intn(8); i < n; i++ {
			eff := AllowEffect
			if rng.Intn(3) == 0 {
				eff = DenyEffect
			}
			spec.Rules = append(spec.Rules, Rule{
				Effect:   eff,
				Action:   randPath('.', 1, 3),
				Resource: randPath(':', 1, 3),
			})
		}
		compiled := spec.Compile()
		for q := 0; q < 40; q++ {
			action := randPath('.', 1, 4)
			resource := randPath(':', 1, 4)
			want := spec.Evaluate(action, resource)
			if got := compiled.Evaluate(action, resource); got != want {
				t.Fatalf("trial %d: Evaluate(%q, %q) = %v, reference says %v\nrules: %v",
					trial, action, resource, got, want, spec.Rules)
			}
			if compiled.Allows(action, resource) != spec.Allows(action, resource) {
				t.Fatalf("trial %d: Allows(%q, %q) diverged", trial, action, resource)
			}
		}
	}
}

// TestCompiledKnownCases spot-checks the semantics the sweep depends on.
func TestCompiledKnownCases(t *testing.T) {
	spec := &Spec{Rules: []Rule{
		{Effect: AllowEffect, Action: "show.*", Resource: "device:r1"},
		{Effect: AllowEffect, Action: "config.interface.set", Resource: "device:r2:interface:Gi0/1"},
		{Effect: AllowEffect, Action: "*", Resource: "device:r3"},
		{Effect: DenyEffect, Action: "config.*", Resource: "device:r3:acl:*"},
	}}
	compiled := spec.Compile()
	cases := []struct {
		action, resource string
		want             bool
	}{
		{"show.version", "device:r1", true},
		{"show.version", "device:r1:interface:Gi0/0", true}, // resource prefix containment
		{"show.version", "device:r2", false},
		{"config.interface.set", "device:r2:interface:Gi0/1", true},
		{"config.interface.set", "device:r2:interface:Gi0/2", false},
		{"config.acl.add", "device:r3:acl:MGMT", false}, // deny overrides the * allow
		{"config.route.add", "device:r3:route:0.0.0.0/0", true},
		{"anything.at.all", "device:r3", true},
	}
	for _, tc := range cases {
		if got := compiled.Allows(tc.action, tc.resource); got != tc.want {
			t.Errorf("Allows(%q, %q) = %v, want %v", tc.action, tc.resource, got, tc.want)
		}
		if ref := spec.Allows(tc.action, tc.resource); ref != tc.want {
			t.Errorf("reference Allows(%q, %q) = %v, want %v (test expectation wrong)",
				tc.action, tc.resource, ref, tc.want)
		}
	}
}

// BenchmarkCompiledAllows measures the mediation hot path against the
// reference scan on a realistic generated spec. The compiled form must not
// allocate.
func BenchmarkCompiledAllows(b *testing.B) {
	spec, err := Generate(TemplateInput{
		Ticket: "bench", Technician: "tech", Kind: TaskInterface,
		Scope:     []string{"r1", "r2", "r3", "sw1", "h1", "h2"},
		Sensitive: []string{"h9"},
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		spec.Rules = append(spec.Rules, Rule{
			Effect:   AllowEffect,
			Action:   "config.interface.set",
			Resource: fmt.Sprintf("device:r%d:interface:Gi0/%d", i%3+1, i),
		})
	}
	queries := [][2]string{
		{"show.run", "device:r2"},
		{"config.interface.set", "device:r2:interface:Gi0/4"},
		{"config.acl.add", "device:sw1:acl:MGMT"},
		{"ping", "device:h1"},
		{"config.route.add", "device:r3:route:10.0.0.0/8"},
	}
	b.Run("compiled", func(b *testing.B) {
		compiled := spec.Compile()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			compiled.Allows(q[0], q[1])
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			spec.Allows(q[0], q[1])
		}
	})
}
