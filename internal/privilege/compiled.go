package privilege

import "strings"

// CompiledSpec is a Spec compiled into segment tries for fast evaluation.
// Spec.Evaluate scans every rule and splits both patterns on each call —
// fine at the console, but the attack-surface sweep and the twin's
// mediation path evaluate the same spec thousands of times. The compiled
// form walks the action through a pattern trie (one branch per literal
// segment plus a wildcard branch) and, wherever an action pattern ends,
// walks the resource through that rule group's resource trie. Deny rules
// and allow rules compile into separate tries, preserving deny-overrides
// exactly; prefix containment is preserved by treating every
// pattern-terminal node as a match regardless of remaining value segments.
// Evaluate and Allows perform no allocations.
type CompiledSpec struct {
	deny  *trieNode
	allow *trieNode
}

// trieNode is one segment-trie node, shared by the action and resource
// layers: action-trie nodes carry res (the resource patterns of rules
// whose action pattern ends there), resource-trie nodes carry terminal.
type trieNode struct {
	children map[string]*trieNode
	star     *trieNode // the "*" wildcard branch
	res      *trieNode // action layer: resource trie of rules ending here
	terminal bool      // resource layer: a resource pattern ends here
}

func (n *trieNode) child(seg string) *trieNode {
	if seg == "*" {
		if n.star == nil {
			n.star = &trieNode{}
		}
		return n.star
	}
	if n.children == nil {
		n.children = make(map[string]*trieNode)
	}
	c := n.children[seg]
	if c == nil {
		c = &trieNode{}
		n.children[seg] = c
	}
	return c
}

// Compile builds the trie form of the spec. The result is immutable and
// safe for concurrent use; it reflects the rules at compile time, so
// recompile after appending rules.
func (s *Spec) Compile() *CompiledSpec {
	c := &CompiledSpec{deny: &trieNode{}, allow: &trieNode{}}
	for _, r := range s.Rules {
		root := c.allow
		if r.Effect == DenyEffect {
			root = c.deny
		}
		nd := root
		for _, seg := range strings.Split(r.Action, ".") {
			nd = nd.child(seg)
		}
		if nd.res == nil {
			nd.res = &trieNode{}
		}
		rn := nd.res
		for _, seg := range strings.Split(r.Resource, ":") {
			rn = rn.child(seg)
		}
		rn.terminal = true
	}
	return c
}

// Evaluate returns the effect for an action on a resource, identical to
// Spec.Evaluate on the rules the spec held at compile time: deny wins over
// allow, and no matching rule denies.
func (c *CompiledSpec) Evaluate(action, resource string) Effect {
	if actionMatch(c.deny, action, false, resource) {
		return DenyEffect
	}
	if actionMatch(c.allow, action, false, resource) {
		return AllowEffect
	}
	return DenyEffect
}

// Allows reports whether Evaluate yields AllowEffect.
func (c *CompiledSpec) Allows(action, resource string) bool {
	return c.Evaluate(action, resource) == AllowEffect
}

// actionMatch walks the action value through the pattern trie. Wherever a
// rule's action pattern ends (nd.res) — matchPath's prefix containment
// means any node on the walk, not just where the value runs out — the
// resource value is matched against that rule group's resource trie.
func actionMatch(nd *trieNode, rest string, exhausted bool, resource string) bool {
	if nd == nil {
		return false
	}
	if nd.res != nil && resourceMatch(nd.res, resource, false) {
		return true
	}
	if exhausted {
		return false
	}
	seg, tail, ex := splitSeg(rest, '.')
	if actionMatch(nd.children[seg], tail, ex, resource) {
		return true
	}
	return actionMatch(nd.star, tail, ex, resource)
}

// resourceMatch walks the resource value through a resource trie; any
// terminal node reached is a match (prefix containment again).
func resourceMatch(nd *trieNode, rest string, exhausted bool) bool {
	if nd == nil {
		return false
	}
	if nd.terminal {
		return true
	}
	if exhausted {
		return false
	}
	seg, tail, ex := splitSeg(rest, ':')
	if resourceMatch(nd.children[seg], tail, ex) {
		return true
	}
	return resourceMatch(nd.star, tail, ex)
}

// splitSeg splits off the first sep-delimited segment, mirroring
// strings.Split semantics (an empty string is one empty segment); ex
// reports that no segments remain after seg.
func splitSeg(rest string, sep byte) (seg, tail string, ex bool) {
	if i := strings.IndexByte(rest, sep); i >= 0 {
		return rest[:i], rest[i+1:], false
	}
	return rest, "", true
}
