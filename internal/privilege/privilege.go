// Package privilege implements Heimdall's Privilegemsp: the fine-grained
// privilege specification an enterprise admin writes for each MSP ticket
// (paper §4.1).
//
// A specification is a set of predicates, each allowing or denying an
// (action, resource) pair:
//
//	allow(show.*, device:*)
//	allow(config.interface.set, device:r3:interface:Gi0/1)
//	deny(config.acl.*, device:r3)
//
// Actions are dot-separated paths ("config.acl.add"); resources are
// colon-separated paths ("device:r3:acl:CORE-IN"). Patterns match
// hierarchically: a pattern that is a (wildcard-aware) prefix of the value
// matches, so "device:r3" covers every resource on r3. Evaluation is
// deny-overrides with a default-deny.
package privilege

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Effect is the verdict of a rule or an evaluation.
type Effect int

const (
	// DenyEffect forbids the action.
	DenyEffect Effect = iota
	// AllowEffect permits the action.
	AllowEffect
)

// String returns "allow" or "deny".
func (e Effect) String() string {
	if e == AllowEffect {
		return "allow"
	}
	return "deny"
}

// Rule is one predicate of a Privilegemsp.
type Rule struct {
	Effect   Effect
	Action   string
	Resource string
}

// String renders the rule in the text DSL form.
func (r Rule) String() string {
	return fmt.Sprintf("%s(%s, %s)", r.Effect, r.Action, r.Resource)
}

// Matches reports whether the rule covers the (action, resource) pair.
func (r Rule) Matches(action, resource string) bool {
	return matchPath(r.Action, action, '.') && matchPath(r.Resource, resource, ':')
}

// matchPath matches a pattern against a value, both split on sep. A "*"
// segment matches any one value segment. A pattern that is a prefix of the
// value matches (hierarchical containment); a pattern longer than the value
// does not.
func matchPath(pattern, value string, sep byte) bool {
	if pattern == "*" || pattern == value {
		return true
	}
	ps := strings.Split(pattern, string(sep))
	vs := strings.Split(value, string(sep))
	if len(ps) > len(vs) {
		return false
	}
	for i, p := range ps {
		if p != "*" && p != vs[i] {
			return false
		}
	}
	return true
}

// Spec is a complete Privilegemsp: the privileges one technician holds for
// one ticket.
type Spec struct {
	Ticket     string
	Technician string
	Rules      []Rule
}

// Evaluate returns the effect for the (action, resource) pair:
// deny-overrides across matching rules, default deny when nothing matches.
func (s *Spec) Evaluate(action, resource string) Effect {
	allowed := false
	for _, r := range s.Rules {
		if !r.Matches(action, resource) {
			continue
		}
		if r.Effect == DenyEffect {
			return DenyEffect
		}
		allowed = true
	}
	if allowed {
		return AllowEffect
	}
	return DenyEffect
}

// Allows reports whether Evaluate yields AllowEffect.
func (s *Spec) Allows(action, resource string) bool {
	return s.Evaluate(action, resource) == AllowEffect
}

// AllowedOn counts how many of the given actions are allowed on the
// resource; the attack-surface metric uses this as C_n.
func (s *Spec) AllowedOn(resource string, actions []string) int {
	n := 0
	for _, a := range actions {
		if s.Allows(a, resource) {
			n++
		}
	}
	return n
}

// String renders the spec in the text DSL, one predicate per line.
func (s *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Privilegemsp ticket=%s technician=%s\n", s.Ticket, s.Technician)
	for _, r := range s.Rules {
		b.WriteString(r.String())
		b.WriteString("\n")
	}
	return b.String()
}

// RulesDigest returns a content digest of the spec's rule set. Two specs
// digest equal exactly when they authorize the same (action, resource)
// pairs: evaluation is deny-overrides over the whole rule set, so rule
// order is irrelevant and the digest hashes the rules sorted. Ticket and
// technician identity are deliberately excluded — many technicians
// working the same scenario template hold textually identical privileges,
// and the enforcer's review cache keys on what a spec permits, not on who
// holds it.
func (s *Spec) RulesDigest() string {
	lines := make([]string, len(s.Rules))
	for i, r := range s.Rules {
		lines[i] = r.String()
	}
	sort.Strings(lines)
	h := sha256.New()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Devices returns the sorted set of device names the spec's allow rules
// mention ("*" patterns excluded).
func (s *Spec) Devices() []string {
	set := make(map[string]bool)
	for _, r := range s.Rules {
		if r.Effect != AllowEffect {
			continue
		}
		parts := strings.Split(r.Resource, ":")
		if len(parts) >= 2 && parts[0] == "device" && parts[1] != "*" {
			set[parts[1]] = true
		}
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// ParseSpec parses the text DSL: comment lines start with '#', every other
// non-blank line is "allow(action, resource)" or "deny(action, resource)".
func ParseSpec(ticket, technician, text string) (*Spec, error) {
	s := &Spec{Ticket: ticket, Technician: technician}
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := ParseRule(line)
		if err != nil {
			return nil, fmt.Errorf("privilege: line %d: %w", i+1, err)
		}
		s.Rules = append(s.Rules, r)
	}
	return s, nil
}

// ParseRule parses one "allow(action, resource)" predicate.
func ParseRule(line string) (Rule, error) {
	open := strings.IndexByte(line, '(')
	if open < 0 || !strings.HasSuffix(line, ")") {
		return Rule{}, fmt.Errorf("malformed predicate %q", line)
	}
	var eff Effect
	switch strings.TrimSpace(line[:open]) {
	case "allow":
		eff = AllowEffect
	case "deny":
		eff = DenyEffect
	default:
		return Rule{}, fmt.Errorf("unknown effect in %q", line)
	}
	body := line[open+1 : len(line)-1]
	parts := strings.SplitN(body, ",", 2)
	if len(parts) != 2 {
		return Rule{}, fmt.Errorf("predicate needs (action, resource): %q", line)
	}
	action := strings.TrimSpace(parts[0])
	resource := strings.TrimSpace(parts[1])
	if action == "" || resource == "" {
		return Rule{}, fmt.Errorf("empty action or resource in %q", line)
	}
	return Rule{Effect: eff, Action: action, Resource: resource}, nil
}

// specJSON is the JSON frontend format (the paper's Batfish-based UI).
type specJSON struct {
	Ticket     string     `json:"ticket"`
	Technician string     `json:"technician"`
	Rules      []ruleJSON `json:"rules"`
}

type ruleJSON struct {
	Effect   string `json:"effect"`
	Action   string `json:"action"`
	Resource string `json:"resource"`
}

// MarshalJSON implements json.Marshaler.
func (s *Spec) MarshalJSON() ([]byte, error) {
	j := specJSON{Ticket: s.Ticket, Technician: s.Technician}
	for _, r := range s.Rules {
		j.Rules = append(j.Rules, ruleJSON{Effect: r.Effect.String(), Action: r.Action, Resource: r.Resource})
	}
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Spec) UnmarshalJSON(data []byte) error {
	var j specJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	out := Spec{Ticket: j.Ticket, Technician: j.Technician}
	for _, r := range j.Rules {
		var eff Effect
		switch r.Effect {
		case "allow":
			eff = AllowEffect
		case "deny":
			eff = DenyEffect
		default:
			return fmt.Errorf("privilege: unknown effect %q", r.Effect)
		}
		if r.Action == "" || r.Resource == "" {
			return fmt.Errorf("privilege: rule with empty action or resource")
		}
		out.Rules = append(out.Rules, Rule{Effect: eff, Action: r.Action, Resource: r.Resource})
	}
	*s = out
	return nil
}
