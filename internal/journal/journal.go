// Package journal implements the enforcer's write-ahead commit journal:
// a tamper-evident record of every production push, detailed enough to
// finish or undo a half-applied commit after a crash.
//
// Where the audit trail (internal/audit) answers "what happened, for the
// customer's auditor", the journal answers "what was I doing, for the
// recovering enforcer": the intent record written before the first device
// is touched carries the scheduled change set and the pre-change
// configuration of every affected device, each applied change lands as its
// own record, and exactly one terminal record (committed / rolled-back /
// quarantined) closes the commit. Records are hash-chained and HMAC'd with
// an enclave-derived key using the same discipline as the audit trail, so
// a journal that survived a crash can be authenticated before it drives
// recovery.
package journal

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"heimdall/internal/config"
	"heimdall/internal/telemetry"
)

// Kind classifies a journal record.
type Kind string

const (
	// KindIntent opens a commit: scheduled changes + device pre-state,
	// written before anything touches production.
	KindIntent Kind = "intent"
	// KindApplied records one change successfully pushed to production.
	KindApplied Kind = "applied"
	// KindCommitted closes a commit that fully applied and post-verified.
	KindCommitted Kind = "committed"
	// KindRolledBack closes a commit undone back to its pre-state.
	KindRolledBack Kind = "rolled-back"
	// KindQuarantined closes a commit whose rollback itself failed:
	// production is in the recorded mixed state and needs recovery.
	KindQuarantined Kind = "quarantined"
	// KindRecovered records a crash-recovery pass over an open commit.
	KindRecovered Kind = "recovered"
)

// closes reports whether the kind settles a commit for good. Quarantined
// is terminal for the push but NOT settled: production is partial, so the
// commit stays open for Recover to finish.
func closes(k Kind) bool {
	return k == KindCommitted || k == KindRolledBack
}

// Approval is one signer's HMAC endorsement of a commit's scheduled
// change set. High-risk changes (see internal/authz) require M of them,
// from both the customer and the MSP, recorded in the intent record before
// the push phase may start — so the journal itself proves who authorized
// what.
type Approval struct {
	// Signer names the approving party's key.
	Signer string `json:"signer"`
	// Role is the signer's side of the engagement ("customer" or "msp").
	Role string `json:"role,omitempty"`
	// MAC is the hex HMAC-SHA256 of the authorization digest (ticket +
	// canonical change set) under the signer's key.
	MAC string `json:"mac"`
}

// Record is one link of the journal chain. Payload fields are set per
// kind: Changes, PreState and Approvals only on intent records, ChangeIndex
// only on applied records (-1 elsewhere), Restored/Unrestored only on
// rollback and quarantine records.
type Record struct {
	Index      int       `json:"index"`
	Time       time.Time `json:"time"`
	Kind       Kind      `json:"kind"`
	Commit     string    `json:"commit"`
	Ticket     string    `json:"ticket,omitempty"`
	Technician string    `json:"technician,omitempty"`

	Changes     []config.Change   `json:"changes,omitempty"`
	PreState    map[string]string `json:"preState,omitempty"`
	Approvals   []Approval        `json:"approvals,omitempty"`
	ChangeIndex int               `json:"changeIndex"`
	Detail      string            `json:"detail,omitempty"`
	Restored    []string          `json:"restored,omitempty"`
	Unrestored  []string          `json:"unrestored,omitempty"`

	PrevHash string `json:"prevHash"`
	Hash     string `json:"hash"`
	MAC      string `json:"mac"`
}

// content returns the canonical byte string covered by the record hash:
// the record itself with the chain-output fields cleared, in Go's
// deterministic JSON field order.
func (r *Record) content() []byte {
	c := *r
	c.Hash = ""
	c.MAC = ""
	b, err := json.Marshal(&c)
	if err != nil {
		// Record payloads are plain data; marshal cannot fail for values
		// the enforcer constructs. Panic beats silently unverifiable links.
		panic(fmt.Sprintf("journal: marshal record: %v", err))
	}
	return b
}

// Journal is an append-only, hash-chained commit log. It is safe for
// concurrent use.
type Journal struct {
	mu      sync.Mutex
	key     []byte
	records []Record
	now     func() time.Time
	meter   telemetry.Meter
}

// New creates a journal authenticated with the given HMAC key (in
// Heimdall, derived inside the enforcer's enclave and never released).
func New(key []byte) *Journal {
	k := make([]byte, len(key))
	copy(k, key)
	return &Journal{key: k, now: time.Now, meter: telemetry.Nop()}
}

// SetClock replaces the time source (tests and deterministic replays).
func (j *Journal) SetClock(now func() time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.now = now
}

// SetMeter wires journal metrics (records appended by kind).
func (j *Journal) SetMeter(m telemetry.Meter) {
	if m == nil {
		m = telemetry.Nop()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.meter = m
}

// append chains and stores one record, filling Index, Time, hashes, MAC.
func (j *Journal) append(r Record) Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	r.Index = len(j.records)
	r.Time = j.now()
	if len(j.records) > 0 {
		r.PrevHash = j.records[len(j.records)-1].Hash
	}
	sum := sha256.Sum256(r.content())
	r.Hash = hex.EncodeToString(sum[:])
	mac := hmac.New(sha256.New, j.key)
	mac.Write(sum[:])
	r.MAC = hex.EncodeToString(mac.Sum(nil))
	j.records = append(j.records, r)
	j.meter.Counter("heimdall_journal_records_total", telemetry.L("kind", string(r.Kind))).Inc()
	return r
}

// Intent opens a commit: the scheduled change set, the canonical
// pre-change configuration of every device the set touches, and — for
// high-risk changes — the M-of-N approvals that authorized it. It must be
// appended before the first change is pushed — that write-ahead ordering
// is what makes crash recovery possible. With no approvals the record
// serialises byte-identically to the pre-authorization format.
func (j *Journal) Intent(commit, ticket, technician string, changes []config.Change, preState map[string]string, approvals ...Approval) Record {
	return j.append(Record{
		Kind: KindIntent, Commit: commit, Ticket: ticket, Technician: technician,
		Changes: changes, PreState: preState, Approvals: approvals, ChangeIndex: -1,
	})
}

// Applied records that the change at the given index of the intent's
// scheduled set has been pushed to production.
func (j *Journal) Applied(commit string, index int, detail string) Record {
	return j.append(Record{Kind: KindApplied, Commit: commit, ChangeIndex: index, Detail: detail})
}

// Committed closes the commit as fully applied and post-verified.
func (j *Journal) Committed(commit, detail string) Record {
	return j.append(Record{Kind: KindCommitted, Commit: commit, ChangeIndex: -1, Detail: detail})
}

// RolledBack closes the commit as fully undone: every touched device was
// restored to its pre-state.
func (j *Journal) RolledBack(commit string, restored []string, why string) Record {
	return j.append(Record{
		Kind: KindRolledBack, Commit: commit, ChangeIndex: -1,
		Restored: restored, Detail: why,
	})
}

// Quarantined closes the commit in the degraded state: rollback restored
// only some devices and the listed ones remain in their pushed state.
func (j *Journal) Quarantined(commit string, restored, unrestored []string, why string) Record {
	return j.append(Record{
		Kind: KindQuarantined, Commit: commit, ChangeIndex: -1,
		Restored: restored, Unrestored: unrestored, Detail: why,
	})
}

// Recovered records a crash-recovery pass and its action.
func (j *Journal) Recovered(commit, action string) Record {
	return j.append(Record{Kind: KindRecovered, Commit: commit, ChangeIndex: -1, Detail: action})
}

// AppendVerbatim appends an already-chained record without re-stamping
// it — the replica-mirroring primitive: an enforcer replica copies the
// coordinator's records byte-for-byte, so honest replica journals are
// bit-identical by construction. The record must authenticate under the
// journal's key (content hash and HMAC intact) and extend the current head
// exactly (contiguous index, matching prev-hash); any other record is
// refused, which is how a replica notices it has lagged or diverged.
func (j *Journal) AppendVerbatim(r Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if r.Index != len(j.records) {
		return fmt.Errorf("journal: verbatim record index %d, head is %d", r.Index, len(j.records)-1)
	}
	prev := ""
	if len(j.records) > 0 {
		prev = j.records[len(j.records)-1].Hash
	}
	if r.PrevHash != prev {
		return fmt.Errorf("journal: verbatim record %d does not extend this chain", r.Index)
	}
	sum := sha256.Sum256(r.content())
	if hex.EncodeToString(sum[:]) != r.Hash {
		return fmt.Errorf("journal: verbatim record %d content hash mismatch (tampered)", r.Index)
	}
	mac := hmac.New(sha256.New, j.key)
	mac.Write(sum[:])
	got, err := hex.DecodeString(r.MAC)
	if err != nil || !hmac.Equal(mac.Sum(nil), got) {
		return fmt.Errorf("journal: verbatim record %d MAC mismatch (forged)", r.Index)
	}
	j.records = append(j.records, r)
	j.meter.Counter("heimdall_journal_records_total", telemetry.L("kind", string(r.Kind))).Inc()
	return nil
}

// Records returns a copy of the journal.
func (j *Journal) Records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Record, len(j.records))
	copy(out, j.records)
	return out
}

// Len returns the number of records.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.records)
}

// Open returns a copy of the intent record of the last commit that is not
// settled — the commit a crashed enforcer was in the middle of, or a
// quarantined commit whose partial state still needs repair — along with
// the indexes of its applied changes, or nil when every commit is closed.
func (j *Journal) Open() (*Record, []int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var intent *Record
	var applied []int
	for i := range j.records {
		r := &j.records[i]
		switch {
		case r.Kind == KindIntent:
			intent = r
			applied = nil
		case intent != nil && r.Commit == intent.Commit && r.Kind == KindApplied:
			applied = append(applied, r.ChangeIndex)
		case intent != nil && r.Commit == intent.Commit && closes(r.Kind):
			intent = nil
			applied = nil
		}
	}
	if intent == nil {
		return nil, nil
	}
	cp := *intent
	return &cp, applied
}

// Verify checks the whole chain: per-record hashes, prev-hash links,
// index continuity and every HMAC. It returns the first inconsistency.
func (j *Journal) Verify() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return verifyRecords(j.records, j.key)
}

// VerifyChain checks a detached record slice the way Verify checks the
// journal's own chain — the cross-audit entry point for chains received
// from another replica.
func VerifyChain(records []Record, key []byte) error {
	return verifyRecords(records, key)
}

func verifyRecords(records []Record, key []byte) error {
	prev := ""
	for i := range records {
		r := &records[i]
		if r.Index != i {
			return fmt.Errorf("journal: record %d has index %d (reordered or truncated)", i, r.Index)
		}
		if r.PrevHash != prev {
			return fmt.Errorf("journal: record %d chain break", i)
		}
		sum := sha256.Sum256(r.content())
		if hex.EncodeToString(sum[:]) != r.Hash {
			return fmt.Errorf("journal: record %d content hash mismatch (tampered)", i)
		}
		mac := hmac.New(sha256.New, key)
		mac.Write(sum[:])
		got, err := hex.DecodeString(r.MAC)
		// hex.DecodeString accepts uppercase; require the canonical lowercase
		// encoding too, so no byte of an exported MAC can be altered without
		// failing verification.
		if err != nil || r.MAC != hex.EncodeToString(got) || !hmac.Equal(mac.Sum(nil), got) {
			return fmt.Errorf("journal: record %d MAC mismatch (forged)", i)
		}
		prev = r.Hash
	}
	return nil
}

// Export serialises the journal as JSON. A crashed enforcer's journal is
// what survives; Import authenticates it before recovery trusts it.
func (j *Journal) Export() ([]byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return json.MarshalIndent(j.records, "", "  ")
}

// Head is a compact claim about a chain's tip — what replicas exchange
// during cross-audit. Index is -1 for an empty chain.
type Head struct {
	Index int    `json:"index"`
	Hash  string `json:"hash"`
}

// Head returns the journal's current chain tip.
func (j *Journal) Head() Head {
	j.mu.Lock()
	defer j.mu.Unlock()
	return HeadOf(j.records)
}

// HeadOf returns the chain tip of a record slice.
func HeadOf(records []Record) Head {
	if len(records) == 0 {
		return Head{Index: -1}
	}
	last := records[len(records)-1]
	return Head{Index: last.Index, Hash: last.Hash}
}

// Rechain recomputes every hash, prev-hash link and MAC of a record slice
// in place — exactly the forgery a compromised replica that holds the
// journal key can produce. Verify cannot catch a rechained journal (the
// insider has the key); majority cross-audit between replicas can, which
// is why Byzantine drills need this helper to simulate the attack.
func Rechain(records []Record, key []byte) {
	prev := ""
	for i := range records {
		r := &records[i]
		r.Index = i
		r.PrevHash = prev
		sum := sha256.Sum256(r.content())
		r.Hash = hex.EncodeToString(sum[:])
		mac := hmac.New(sha256.New, key)
		mac.Write(sum[:])
		r.MAC = hex.EncodeToString(mac.Sum(nil))
		prev = r.Hash
	}
}

// Import parses an exported journal and verifies it against the key
// before returning it. Tampered journals are rejected; a journal truncated
// at a record boundary — the shape a crash leaves — verifies, because
// every prefix of a valid chain is a valid chain. Parsing is strict
// (unknown fields and trailing data are errors): a field name altered in
// transit must not silently degrade to the field's zero value.
func Import(key, data []byte) (*Journal, error) {
	var records []Record
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&records); err != nil {
		return nil, fmt.Errorf("journal: parsing export: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("journal: trailing data after export")
	}
	if err := verifyRecords(records, key); err != nil {
		return nil, err
	}
	j := New(key)
	j.records = records
	return j, nil
}
