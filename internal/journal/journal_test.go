package journal

import (
	"encoding/json"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"heimdall/internal/config"
	"heimdall/internal/netmodel"
	"heimdall/internal/telemetry"
)

func testClock() func() time.Time {
	t := time.Unix(1700000000, 0).UTC()
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

func sampleChanges() []config.Change {
	return []config.Change{
		{Device: "r1", Op: config.OpAddACLEntry, ACLName: "GUARD",
			Entry: &netmodel.ACLEntry{Seq: 15, Action: netmodel.Permit, Proto: netmodel.TCP,
				Dst: netip.MustParsePrefix("10.2.0.10/32"), DstPort: 443}},
		{Device: "r2", Op: config.OpAddStaticRoute,
			Route: &netmodel.StaticRoute{Prefix: netip.MustParsePrefix("10.9.0.0/24"),
				NextHop: netip.MustParseAddr("10.0.0.2")}},
		{Device: "r2", Op: config.OpSetGateway, Gateway: netip.MustParseAddr("10.0.0.1")},
	}
}

func sampleJournal(key []byte) *Journal {
	j := New(key)
	j.SetClock(testClock())
	j.Intent("T1#1", "T1", "alice", sampleChanges(), map[string]string{"r1": "! kind: router\nhostname r1\n"})
	j.Applied("T1#1", 0, "add acl entry")
	j.Applied("T1#1", 1, "add static route")
	return j
}

func TestChainAppendsAndVerifies(t *testing.T) {
	j := sampleJournal([]byte("k1"))
	j.Committed("T1#1", "3 changes")
	if err := j.Verify(); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 4 {
		t.Fatalf("Len = %d, want 4", j.Len())
	}
	recs := j.Records()
	for i, r := range recs {
		if r.Index != i {
			t.Fatalf("record %d has index %d", i, r.Index)
		}
		if i > 0 && r.PrevHash != recs[i-1].Hash {
			t.Fatalf("record %d prev-hash mismatch", i)
		}
	}
}

func TestTamperDetected(t *testing.T) {
	j := sampleJournal([]byte("k1"))
	j.Committed("T1#1", "done")
	data, err := j.Export()
	if err != nil {
		t.Fatal(err)
	}
	// Bit-flip an applied record's detail.
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatal(err)
	}
	recs[1].Detail = "remove acl entry"
	forged, _ := json.Marshal(recs)
	if _, err := Import([]byte("k1"), forged); err == nil {
		t.Fatal("tampered journal imported")
	}
	// Wrong key is rejected even with intact content.
	if _, err := Import([]byte("k2"), data); err == nil {
		t.Fatal("journal imported under wrong key")
	}
	// Intact journal round-trips and still verifies.
	back, err := Import([]byte("k1"), data)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Verify(); err != nil {
		t.Fatal(err)
	}
}

// A crash leaves a journal truncated at a record boundary; every such
// prefix must import and verify, because recovery has to trust it.
func TestTruncatedPrefixVerifies(t *testing.T) {
	j := sampleJournal([]byte("k1"))
	j.RolledBack("T1#1", []string{"r1", "r2"}, "post-apply verification failed")
	full := j.Records()
	for k := 0; k <= len(full); k++ {
		data, err := json.Marshal(full[:k])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Import([]byte("k1"), data); err != nil {
			t.Fatalf("prefix of %d records rejected: %v", k, err)
		}
	}
	// Truncation in the middle (dropping an interior record) is detected.
	data, _ := json.Marshal(append(append([]Record(nil), full[0]), full[2:]...))
	if _, err := Import([]byte("k1"), data); err == nil {
		t.Fatal("interior truncation not detected")
	}
}

// The intent record must round-trip the change set exactly: recovery
// replays those changes, so any lossy serialisation would corrupt
// production.
func TestChangeSetRoundTrips(t *testing.T) {
	j := sampleJournal([]byte("k1"))
	data, err := j.Export()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Import([]byte("k1"), data)
	if err != nil {
		t.Fatal(err)
	}
	got := back.Records()[0].Changes
	want := sampleChanges()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("changes did not round-trip:\n got %#v\nwant %#v", got, want)
	}
}

func TestOpenCommit(t *testing.T) {
	j := sampleJournal([]byte("k1"))
	intent, applied := j.Open()
	if intent == nil || intent.Commit != "T1#1" {
		t.Fatalf("Open = %+v, want intent T1#1", intent)
	}
	if !reflect.DeepEqual(applied, []int{0, 1}) {
		t.Fatalf("applied = %v, want [0 1]", applied)
	}
	j.Committed("T1#1", "done")
	if intent, _ := j.Open(); intent != nil {
		t.Fatalf("Open after terminal record = %+v, want nil", intent)
	}
	// A second commit reopens; quarantine closes it too.
	j.Intent("T2#2", "T2", "bob", sampleChanges()[:1], nil)
	if intent, applied := j.Open(); intent == nil || intent.Commit != "T2#2" || len(applied) != 0 {
		t.Fatalf("Open = %+v/%v, want fresh intent T2#2", intent, applied)
	}
	// Quarantine does NOT settle the commit: production is partial and
	// recovery must still find it.
	j.Quarantined("T2#2", nil, []string{"r1"}, "restore outage")
	if intent, _ := j.Open(); intent == nil || intent.Commit != "T2#2" {
		t.Fatalf("Open after quarantine = %+v, want still-open T2#2", intent)
	}
	j.RolledBack("T2#2", []string{"r1"}, "repaired by operator")
	if intent, _ := j.Open(); intent != nil {
		t.Fatal("Open after rollback should be nil")
	}
}

func TestMeterCountsRecords(t *testing.T) {
	reg := telemetry.NewRegistry()
	j := New([]byte("k"))
	j.SetMeter(reg)
	j.Intent("c", "t", "x", nil, nil)
	j.Applied("c", 0, "")
	j.Applied("c", 1, "")
	j.Committed("c", "")
	if got := reg.CounterValue("heimdall_journal_records_total", telemetry.L("kind", "applied")); got != 2 {
		t.Fatalf("applied records counter = %v, want 2", got)
	}
	if got := reg.CounterValue("heimdall_journal_records_total", telemetry.L("kind", "committed")); got != 1 {
		t.Fatalf("committed records counter = %v, want 1", got)
	}
}
