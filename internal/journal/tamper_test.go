package journal

import (
	"bytes"
	"strings"
	"testing"
)

// fullJournal builds a chain containing every record kind, with an intent
// that carries multi-party approvals — the complete surface a tamper sweep
// must cover.
func fullJournal(key []byte) *Journal {
	j := New(key)
	j.SetClock(testClock())
	j.Intent("T1#1", "T1", "alice", sampleChanges(),
		map[string]string{"r1": "! kind: router\nhostname r1\n"},
		Approval{Signer: "cust-ops", Role: "customer", MAC: strings.Repeat("ab", 32)},
		Approval{Signer: "msp-noc", Role: "msp", MAC: strings.Repeat("cd", 32)})
	j.Applied("T1#1", 0, "add acl entry")
	j.Committed("T1#1", "1 change")
	j.Intent("T2#1", "T2", "bob", sampleChanges(), nil)
	j.Applied("T2#1", 0, "add acl entry")
	j.RolledBack("T2#1", []string{"r1"}, "post-verify failed")
	j.Intent("T3#1", "T3", "carol", sampleChanges(), nil)
	j.Quarantined("T3#1", []string{"r1"}, []string{"r2"}, "restore failed on r2")
	j.Recovered("T3#1", "operator restored r2 from backup")
	return j
}

func kindSet(records []Record) map[Kind]bool {
	out := make(map[Kind]bool)
	for _, r := range records {
		out[r.Kind] = true
	}
	return out
}

// TestTamperAnySingleByteFailsImport is the satellite property test: flip
// any single byte of an exported journal (every byte offset, two different
// bit positions) and Import must refuse it — either the JSON no longer
// parses, or a record's index/chain/hash/MAC check fails. The fixture
// contains every record kind, so the sweep covers the full payload surface
// including approvals.
func TestTamperAnySingleByteFailsImport(t *testing.T) {
	key := []byte("tamper-key")
	j := fullJournal(key)
	if err := j.Verify(); err != nil {
		t.Fatalf("fixture does not verify: %v", err)
	}
	have := kindSet(j.Records())
	for _, k := range []Kind{KindIntent, KindApplied, KindCommitted, KindRolledBack, KindQuarantined, KindRecovered} {
		if !have[k] {
			t.Fatalf("fixture missing record kind %q", k)
		}
	}
	data, err := j.Export()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Import(key, data); err != nil {
		t.Fatalf("untampered export rejected: %v", err)
	}
	for _, bit := range []byte{0x01, 0x80} {
		for i := range data {
			mutated := bytes.Clone(data)
			mutated[i] ^= bit
			if _, err := Import(key, mutated); err == nil {
				t.Fatalf("flip of byte %d (xor %#02x, %q -> %q) accepted by Import",
					i, bit, data[i], mutated[i])
			}
		}
	}
}

// TestTamperPerKindPayloadFailsVerify mutates one payload field of each
// record kind in a parsed export (no re-hashing) and checks the chain is
// rejected — the table-driven per-kind complement to the raw byte sweep.
func TestTamperPerKindPayloadFailsVerify(t *testing.T) {
	key := []byte("tamper-key")
	base := fullJournal(key).Records()
	cases := []struct {
		kind   Kind
		mutate func(r *Record)
	}{
		{KindIntent, func(r *Record) { r.Changes[0].Device = "r9" }},
		{KindIntent, func(r *Record) { r.Approvals[0].Signer = "mallory" }},
		{KindIntent, func(r *Record) { r.PreState["r1"] = "hostname evil\n" }},
		{KindApplied, func(r *Record) { r.ChangeIndex++ }},
		{KindApplied, func(r *Record) { r.Detail += "!" }},
		{KindCommitted, func(r *Record) { r.Detail = "2 changes" }},
		{KindRolledBack, func(r *Record) { r.Restored = nil }},
		{KindQuarantined, func(r *Record) { r.Unrestored = nil }},
		{KindRecovered, func(r *Record) { r.Technician = "mallory" }},
		{KindIntent, func(r *Record) { r.Ticket = "T9" }},
		{KindCommitted, func(r *Record) { r.Commit = "T9#9" }},
	}
	for ci, tc := range cases {
		records := make([]Record, len(base))
		copy(records, base)
		found := false
		for i := range records {
			if records[i].Kind != tc.kind || found {
				continue
			}
			found = true
			// Deep-copy mutable payload so the base fixture stays pristine.
			r := base[i]
			r.Changes = append(r.Changes[:0:0], r.Changes...)
			r.Approvals = append(r.Approvals[:0:0], r.Approvals...)
			r.Restored = append(r.Restored[:0:0], r.Restored...)
			r.Unrestored = append(r.Unrestored[:0:0], r.Unrestored...)
			if r.PreState != nil {
				ps := make(map[string]string, len(r.PreState))
				for k, v := range r.PreState {
					ps[k] = v
				}
				r.PreState = ps
			}
			tc.mutate(&r)
			records[i] = r
		}
		if !found {
			t.Fatalf("case %d: no record of kind %q", ci, tc.kind)
		}
		if err := VerifyChain(records, key); err == nil {
			t.Fatalf("case %d (%s): payload mutation passed VerifyChain", ci, tc.kind)
		}
	}
}

// TestTruncationSemantics: chopping whole records off the END of a chain
// leaves a valid chain (that is exactly what a crash does, and recovery
// depends on it), while removing or reordering records anywhere in the
// middle breaks it. Byte-level truncation of the export always fails to
// parse.
func TestTruncationSemantics(t *testing.T) {
	key := []byte("tamper-key")
	j := fullJournal(key)
	records := j.Records()

	// Every prefix of a valid chain is a valid chain.
	for n := 0; n <= len(records); n++ {
		if err := VerifyChain(records[:n], key); err != nil {
			t.Fatalf("prefix of %d records rejected: %v", n, err)
		}
	}
	// Dropping any single non-final record is detected.
	for drop := 0; drop < len(records)-1; drop++ {
		cut := make([]Record, 0, len(records)-1)
		cut = append(cut, records[:drop]...)
		cut = append(cut, records[drop+1:]...)
		if err := VerifyChain(cut, key); err == nil {
			t.Fatalf("chain with record %d removed passed verification", drop)
		}
	}
	// Swapping any adjacent pair is detected.
	for i := 0; i < len(records)-1; i++ {
		swapped := make([]Record, len(records))
		copy(swapped, records)
		swapped[i], swapped[i+1] = swapped[i+1], swapped[i]
		if err := VerifyChain(swapped, key); err == nil {
			t.Fatalf("chain with records %d,%d swapped passed verification", i, i+1)
		}
	}
	// Byte-level truncation mid-export never parses.
	data, err := j.Export()
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n < len(data); n++ {
		if _, err := Import(key, data[:n]); err == nil {
			t.Fatalf("export truncated to %d bytes accepted", n)
		}
	}
	// Wrong key is detected even on an untampered export.
	if _, err := Import([]byte("other-key"), data); err == nil {
		t.Fatal("export imported under the wrong key")
	}
}

// TestAppendVerbatimRejectsBrokenRecords covers the replica-side mirror
// entry point: a record that does not extend the local chain exactly — bad
// index, bad prev-hash, tampered content, forged MAC — must be refused.
func TestAppendVerbatimRejectsBrokenRecords(t *testing.T) {
	key := []byte("tamper-key")
	src := fullJournal(key)
	records := src.Records()

	mirror := New(key)
	for _, r := range records[:2] {
		if err := mirror.AppendVerbatim(r); err != nil {
			t.Fatalf("valid record refused: %v", err)
		}
	}
	next := records[2]

	bad := next
	bad.Index = 5
	if err := mirror.AppendVerbatim(bad); err == nil {
		t.Fatal("wrong index accepted")
	}
	bad = next
	bad.PrevHash = strings.Repeat("00", 32)
	if err := mirror.AppendVerbatim(bad); err == nil {
		t.Fatal("wrong prev-hash accepted")
	}
	bad = next
	bad.Detail += " (doctored)"
	if err := mirror.AppendVerbatim(bad); err == nil {
		t.Fatal("tampered content accepted")
	}
	bad = next
	bad.MAC = strings.Repeat("00", 32)
	if err := mirror.AppendVerbatim(bad); err == nil {
		t.Fatal("forged MAC accepted")
	}
	// The true record still fits: rejections must not advance the chain.
	if err := mirror.AppendVerbatim(next); err != nil {
		t.Fatalf("valid record refused after rejected attempts: %v", err)
	}
	if err := mirror.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDiffRelations(t *testing.T) {
	key := []byte("tamper-key")
	records := fullJournal(key).Records()

	if d := Diff(records, records); d.Relation != RelEqual || !d.Equal() {
		t.Fatalf("self diff = %v", d)
	}
	if d := Diff(records[:3], records); d.Relation != RelPrefix {
		t.Fatalf("prefix diff = %v", d)
	}
	if d := Diff(records, records[:3]); d.Relation != RelExtends {
		t.Fatalf("extends diff = %v", d)
	}
	forged := make([]Record, len(records))
	copy(forged, records)
	forged[2].Detail = "forged"
	Rechain(forged, key)
	d := Diff(records, forged)
	if d.Relation != RelDiverged {
		t.Fatalf("diverged diff = %v", d)
	}
	if d.Index != 2 {
		t.Fatalf("divergence index = %d, want 2", d.Index)
	}
	if !strings.Contains(d.String(), "diverge") {
		t.Fatalf("diff string %q does not name the divergence", d.String())
	}
}
