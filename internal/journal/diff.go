package journal

// Journal comparison: the cross-audit primitive. Two honest replicas of
// the same enforcer hold byte-identical chains; Diff classifies every way
// they can disagree, so both the replica group's Byzantine detector and
// the operator-facing `heimdallctl journal diff` speak the same verdicts.

import "fmt"

// Relation classifies how two record chains relate.
type Relation string

const (
	// RelEqual: both chains are identical.
	RelEqual Relation = "equal"
	// RelPrefix: chain A is a proper prefix of chain B — A is truncated
	// (or merely behind, if A's holder is known to be crashed/lagging).
	RelPrefix Relation = "prefix"
	// RelExtends: chain A properly extends chain B.
	RelExtends Relation = "extends"
	// RelDiverged: the chains disagree on a record both hold.
	RelDiverged Relation = "diverged"
)

// DiffResult reports the first disagreement between two chains.
type DiffResult struct {
	Relation Relation
	// Index is the first differing record index (RelDiverged), or the
	// length of the shorter chain otherwise.
	Index      int
	ALen, BLen int
	// AHash/BHash are the records' content hashes at Index (RelDiverged).
	AHash, BHash string
}

// Equal reports whether the chains are identical.
func (d DiffResult) Equal() bool { return d.Relation == RelEqual }

// String renders the verdict for operators.
func (d DiffResult) String() string {
	switch d.Relation {
	case RelEqual:
		return fmt.Sprintf("chains identical (%d records)", d.ALen)
	case RelPrefix:
		return fmt.Sprintf("A (%d records) is a proper prefix of B (%d records): truncated or behind at record %d",
			d.ALen, d.BLen, d.Index)
	case RelExtends:
		return fmt.Sprintf("A (%d records) extends B (%d records): B truncated or behind at record %d",
			d.ALen, d.BLen, d.Index)
	default:
		return fmt.Sprintf("chains diverge at record %d: A hash %.12s…, B hash %.12s…",
			d.Index, d.AHash, d.BHash)
	}
}

// Diff compares two chains record by record (content hash and chain
// fields both — a re-MAC'd record with identical payload still differs,
// because the hex MAC is part of the comparison).
func Diff(a, b []Record) DiffResult {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i].Hash != b[i].Hash || a[i].MAC != b[i].MAC || a[i].PrevHash != b[i].PrevHash {
			return DiffResult{Relation: RelDiverged, Index: i, ALen: len(a), BLen: len(b),
				AHash: a[i].Hash, BHash: b[i].Hash}
		}
	}
	switch {
	case len(a) == len(b):
		return DiffResult{Relation: RelEqual, Index: n, ALen: len(a), BLen: len(b)}
	case len(a) < len(b):
		return DiffResult{Relation: RelPrefix, Index: n, ALen: len(a), BLen: len(b)}
	default:
		return DiffResult{Relation: RelExtends, Index: n, ALen: len(a), BLen: len(b)}
	}
}
