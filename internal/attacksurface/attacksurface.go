// Package attacksurface implements the paper's §5 attack-surface /
// feasibility trade-off experiment (Figures 8 and 9).
//
// For every interface of the evaluation network, an interface-down issue is
// injected and each access technique (All, Neighbor, Heimdall) is scored on
// two metrics:
//
//   - feasibility: can the technician reach — and is allowed to fix — the
//     root-cause device?
//
//   - attack surface: the paper's weighted combination of exposed command
//     surface and potential policy violations,
//
//     Attack_Surface(%) = (ΣC_n/ΣA_n · 0.5 + VP/P · 0.5) · 100
//
// where A_n is the command surface available on node n, C_n the commands
// the technique lets the technician run there, P the policy count, and VP
// the number of policies some allowed command sequence could newly violate
// (found by searching canonical malicious mutations on accessible nodes).
package attacksurface

import (
	"fmt"
	"net/netip"
	"sort"

	"heimdall/internal/console"
	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
	"heimdall/internal/privilege"
	"heimdall/internal/ticket"
	"heimdall/internal/twin"
	"heimdall/internal/verify"
)

// Technique is one access model under evaluation.
type Technique struct {
	Name     string
	Strategy twin.SliceStrategy
	// FullPrivileges grants every command on every visible node (the All
	// and Neighbor strawmen); otherwise a task-driven Privilegemsp is
	// generated per ticket (Heimdall).
	FullPrivileges bool
}

// The three techniques of Figures 8 and 9.
var (
	All      = Technique{Name: "All", Strategy: twin.SliceAll, FullPrivileges: true}
	Neighbor = Technique{Name: "Neighbor", Strategy: twin.SliceNeighbors, FullPrivileges: true}
	Heimdall = Technique{Name: "Heimdall", Strategy: twin.SliceTaskDriven, FullPrivileges: false}
)

// FaultCase is one injected issue with the host pair it affects.
type FaultCase struct {
	Fault ticket.Fault
	Src   string
	Dst   string
}

// Sample is one (fault, technique) measurement.
type Sample struct {
	Fault          string
	Feasible       bool
	Surface        float64 // percent
	ExposedRatio   float64 // ΣC/ΣA
	ViolationRatio float64 // VP/P
	VisibleNodes   int
}

// Result aggregates a technique's samples.
type Result struct {
	Technique string
	Samples   []Sample
}

// Feasibility returns the fraction of feasible samples.
func (r *Result) Feasibility() float64 {
	if len(r.Samples) == 0 {
		return 0
	}
	n := 0
	for _, s := range r.Samples {
		if s.Feasible {
			n++
		}
	}
	return float64(n) / float64(len(r.Samples))
}

// MeanSurface returns the mean attack surface percentage.
func (r *Result) MeanSurface() float64 {
	if len(r.Samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range r.Samples {
		sum += s.Surface
	}
	return sum / float64(len(r.Samples))
}

// String renders the figure row.
func (r *Result) String() string {
	return fmt.Sprintf("%-9s feasibility=%5.1f%%  attack_surface=%5.1f%%  (n=%d)",
		r.Technique, r.Feasibility()*100, r.MeanSurface()*1, len(r.Samples))
}

// Evaluator runs the experiment against one network and policy set.
type Evaluator struct {
	Base      *netmodel.Network
	Policies  []verify.Policy
	Sensitive map[string]bool
	// MutationBudget caps how many malicious mutations are explored per
	// sample (0 = unlimited). The figures use the full search; unit tests
	// shrink it.
	MutationBudget int
}

// InterfaceFaults enumerates the experiment's issues: for every up,
// addressed interface on an infrastructure device, an interface-down fault
// paired with the first host pair whose baseline traffic crosses that
// device. Interfaces whose loss strands no host pair produce no ticket and
// are skipped, mirroring the paper's setup where every issue is a real
// ticket.
func InterfaceFaults(n *netmodel.Network) []FaultCase {
	snap := dataplane.Compute(n)
	hosts := n.Hosts()
	type pairTrace struct {
		src, dst string
		tr       *dataplane.Trace
	}
	var traces []pairTrace
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			tr, err := snap.Reach(src, dst, netmodel.ICMP, 0)
			if err == nil && tr.Delivered() {
				traces = append(traces, pairTrace{src, dst, tr})
			}
		}
	}
	var out []FaultCase
	for _, dev := range n.RoutersAndSwitches() {
		d := n.Devices[dev]
		for _, ifName := range d.InterfaceNames() {
			itf := d.Interfaces[ifName]
			if !itf.Up() || !itf.HasAddr() {
				continue
			}
			// The affected pair: baseline traffic entering or leaving this
			// interface.
			var affected *pairTrace
			for i := range traces {
				for _, hop := range traces[i].tr.Hops {
					if hop.Device == dev && (hop.InIf == ifName || hop.OutIf == ifName) {
						affected = &traces[i]
						break
					}
				}
				if affected != nil {
					break
				}
			}
			if affected == nil {
				continue
			}
			out = append(out, FaultCase{
				Fault: ticket.InterfaceDown(dev, ifName),
				Src:   affected.src,
				Dst:   affected.dst,
			})
		}
	}
	return out
}

// Evaluate scores one technique across all fault cases.
func (ev *Evaluator) Evaluate(tech Technique, cases []FaultCase) *Result {
	res := &Result{Technique: tech.Name}
	totalAvail := 0
	availPer := make(map[string]int)
	for _, dev := range ev.Base.DeviceNames() {
		c := len(console.Catalog(ev.Base.Devices[dev]))
		availPer[dev] = c
		totalAvail += c
	}

	for _, fc := range cases {
		faulted := ev.Base.Clone()
		if err := fc.Fault.Inject(faulted); err != nil {
			continue
		}
		snap := dataplane.Compute(faulted)
		slice := twin.ComputeSlice(faulted, snap, tech.Strategy, fc.Src, fc.Dst, nil)

		spec := ev.specFor(tech, faulted, slice)
		visible := func(dev string) bool { return slice[dev] }

		// ΣC: allowed commands on visible nodes.
		allowedTotal := 0
		for dev := range slice {
			d := faulted.Devices[dev]
			if d == nil {
				continue
			}
			if tech.FullPrivileges {
				allowedTotal += availPer[dev]
				continue
			}
			for _, ar := range console.Catalog(d) {
				if spec.Allows(ar.Action, ar.Resource) {
					allowedTotal++
				}
			}
		}

		// Feasibility: root cause visible and fixable.
		root := fc.Fault.RootCause
		feasible := visible(root)
		if feasible && !tech.FullPrivileges {
			fixRes := fmt.Sprintf("device:%s", root)
			feasible = spec.Allows("config.interface.set", fixRes) ||
				anyInterfaceFixAllowed(spec, faulted.Devices[root])
		}

		// VP: policies newly violable through allowed mutations.
		pre := violatedSet(snap, ev.Policies)
		vp := ev.potentialViolations(faulted, spec, tech.FullPrivileges, slice, pre)

		exposed := 0.0
		if totalAvail > 0 {
			exposed = float64(allowedTotal) / float64(totalAvail)
		}
		vr := 0.0
		if len(ev.Policies) > 0 {
			vr = float64(vp) / float64(len(ev.Policies))
		}
		res.Samples = append(res.Samples, Sample{
			Fault:          fc.Fault.Name,
			Feasible:       feasible,
			Surface:        (exposed*0.5 + vr*0.5) * 100,
			ExposedRatio:   exposed,
			ViolationRatio: vr,
			VisibleNodes:   len(slice),
		})
	}
	return res
}

// specFor builds the technique's privilege specification for a ticket.
func (ev *Evaluator) specFor(tech Technique, n *netmodel.Network, slice map[string]bool) *privilege.Spec {
	if tech.FullPrivileges {
		return &privilege.Spec{Ticket: "fig89", Technician: "tech", Rules: []privilege.Rule{
			{Effect: privilege.AllowEffect, Action: "*", Resource: "*"},
		}}
	}
	var scope, sensitive []string
	for dev := range slice {
		scope = append(scope, dev)
	}
	for host := range ev.Sensitive {
		sensitive = append(sensitive, host)
	}
	sort.Strings(scope)
	sort.Strings(sensitive)
	spec, err := privilege.Generate(privilege.TemplateInput{
		Ticket: "fig89", Technician: "tech", Kind: privilege.TaskInterface,
		Scope: scope, Sensitive: sensitive,
	})
	if err != nil {
		// The template only fails on empty inputs, which cannot happen here.
		panic(err)
	}
	// Fine-grained write grants: for an interface ticket, the plausible
	// root causes are exactly the administratively-down interfaces inside
	// the slice — write access covers those specific resources, nothing
	// else. This is the fine-grained authorization the paper's
	// Privilegemsp exists for (§3, Challenge 1).
	for _, dev := range scope {
		d := n.Devices[dev]
		if d == nil || d.Kind == netmodel.Host {
			continue
		}
		for _, ifName := range d.InterfaceNames() {
			if d.Interfaces[ifName].Shutdown {
				spec.Rules = append(spec.Rules, privilege.Rule{
					Effect:   privilege.AllowEffect,
					Action:   "config.interface.set",
					Resource: fmt.Sprintf("device:%s:interface:%s", dev, ifName),
				})
			}
		}
	}
	return spec
}

func anyInterfaceFixAllowed(spec *privilege.Spec, d *netmodel.Device) bool {
	if d == nil {
		return false
	}
	for _, ifName := range d.InterfaceNames() {
		if spec.Allows("config.interface.set", fmt.Sprintf("device:%s:interface:%s", d.Name, ifName)) {
			return true
		}
	}
	return false
}

func violatedSet(snap *dataplane.Snapshot, policies []verify.Policy) map[string]bool {
	out := make(map[string]bool)
	for _, v := range verify.Check(snap, policies).Violations {
		out[v.Policy.ID] = true
	}
	return out
}

// mutation is one canonical malicious action a technician could attempt.
type mutation struct {
	action   string
	resource string
	apply    func(n *netmodel.Network)
}

// potentialViolations searches allowed mutations on visible nodes and
// returns how many policies become newly violated by at least one of them.
func (ev *Evaluator) potentialViolations(faulted *netmodel.Network, spec *privilege.Spec,
	full bool, slice map[string]bool, pre map[string]bool) int {

	// Hijack targets: every host subnet (a /24 route outranks the OSPF
	// routes protecting it).
	var hijacks []netip.Prefix
	seen := map[netip.Prefix]bool{}
	for _, host := range ev.Base.Hosts() {
		if a, ok := ev.Base.HostAddr(host); ok {
			p := netip.PrefixFrom(a, 24).Masked()
			if !seen[p] {
				seen[p] = true
				hijacks = append(hijacks, p)
			}
		}
	}

	var muts []mutation
	var devs []string
	for dev := range slice {
		devs = append(devs, dev)
	}
	sort.Strings(devs)
	for _, dev := range devs {
		d := faulted.Devices[dev]
		if d == nil {
			continue
		}
		muts = append(muts, deviceMutations(d, hijacks)...)
	}

	violated := make(map[string]bool)
	evaluated := 0
	for _, m := range muts {
		if ev.MutationBudget > 0 && evaluated >= ev.MutationBudget {
			break
		}
		if len(violated) == len(ev.Policies) {
			break // everything violable already
		}
		if !full && !spec.Allows(m.action, m.resource) {
			continue
		}
		evaluated++
		trial := faulted.Clone()
		m.apply(trial)
		for _, v := range verify.Check(dataplane.Compute(trial), ev.Policies).Violations {
			if !pre[v.Policy.ID] {
				violated[v.Policy.ID] = true
			}
		}
	}
	return len(violated)
}

// deviceMutations enumerates the canonical malicious actions on one device.
func deviceMutations(d *netmodel.Device, hijacks []netip.Prefix) []mutation {
	dev := d.Name
	var out []mutation

	// Shut every interface down.
	for _, ifName := range d.InterfaceNames() {
		name := ifName
		out = append(out, mutation{
			action:   "config.interface.set",
			resource: fmt.Sprintf("device:%s:interface:%s", dev, name),
			apply: func(n *netmodel.Network) {
				if itf := n.Devices[dev].Interface(name); itf != nil {
					itf.Shutdown = true
				}
			},
		})
	}

	// Poison every ACL: blanket deny (breaks reachability) and blanket
	// permit (breaks isolation), plus removing the first entry.
	for _, aclName := range d.ACLNames() {
		name := aclName
		for _, act := range []netmodel.ACLAction{netmodel.Deny, netmodel.Permit} {
			action := act
			out = append(out, mutation{
				action:   "config.acl.add",
				resource: fmt.Sprintf("device:%s:acl:%s", dev, name),
				apply: func(n *netmodel.Network) {
					n.Devices[dev].ACL(name, true).InsertEntry(netmodel.ACLEntry{
						Seq: 1, Action: action, Proto: netmodel.AnyProto,
					})
				},
			})
		}
		out = append(out, mutation{
			action:   "config.acl.remove",
			resource: fmt.Sprintf("device:%s:acl:%s", dev, name),
			apply: func(n *netmodel.Network) {
				a := n.Devices[dev].ACL(name, false)
				if a != nil && len(a.Entries) > 0 {
					a.RemoveEntry(a.Entries[0].Seq)
				}
			},
		})
	}

	// Route manipulation: blackhole routes (next hop resolving to no
	// neighbor) for each host subnet — a /24 static outranks the OSPF
	// route protecting it — plus a blackhole default.
	if blackhole := unownedNeighborAddr(d); blackhole.IsValid() && d.Kind != netmodel.Host {
		targets := append([]netip.Prefix{netip.MustParsePrefix("0.0.0.0/0")}, hijacks...)
		for _, p := range targets {
			prefix := p
			out = append(out, mutation{
				action:   "config.route.add",
				resource: fmt.Sprintf("device:%s:route:%s", dev, prefix),
				apply: func(n *netmodel.Network) {
					n.Devices[dev].StaticRoutes = append(n.Devices[dev].StaticRoutes,
						netmodel.StaticRoute{Prefix: prefix, NextHop: blackhole})
				},
			})
		}
	}

	// Silence OSPF entirely.
	if d.OSPF != nil {
		out = append(out, mutation{
			action:   "config.ospf.set",
			resource: fmt.Sprintf("device:%s:ospf", dev),
			apply: func(n *netmodel.Network) {
				dd := n.Devices[dev]
				for _, ifName := range dd.InterfaceNames() {
					dd.OSPF.Passive[ifName] = true
				}
			},
		})
	}

	// Break L2: delete VLANs, move access ports.
	for _, id := range d.VLANIDs() {
		vid := id
		out = append(out, mutation{
			action:   "config.vlan.remove",
			resource: fmt.Sprintf("device:%s:vlan:%d", dev, vid),
			apply: func(n *netmodel.Network) {
				delete(n.Devices[dev].VLANs, vid)
			},
		})
	}
	for _, ifName := range d.InterfaceNames() {
		itf := d.Interfaces[ifName]
		if itf.Mode != netmodel.Access {
			continue
		}
		name := ifName
		out = append(out, mutation{
			action:   "config.interface.set",
			resource: fmt.Sprintf("device:%s:interface:%s", dev, name),
			apply: func(n *netmodel.Network) {
				n.Devices[dev].Interface(name).AccessVLAN = 999
			},
		})
	}

	// Blackhole a host by rewriting its gateway.
	if d.Kind == netmodel.Host {
		out = append(out, mutation{
			action:   "config.gateway.set",
			resource: fmt.Sprintf("device:%s:gateway", dev),
			apply: func(n *netmodel.Network) {
				n.Devices[dev].DefaultGateway = netip.MustParseAddr("192.0.2.254")
			},
		})
	}
	return out
}

// unownedNeighborAddr finds an address on one of the device's connected
// subnets that no device owns — the perfect blackhole next hop.
func unownedNeighborAddr(d *netmodel.Device) netip.Addr {
	for _, ifName := range d.InterfaceNames() {
		itf := d.Interfaces[ifName]
		if !itf.Up() || !itf.HasAddr() || itf.Addr.Bits() > 30 {
			continue
		}
		base := itf.Addr.Masked().Addr().As4()
		// .3 of a /30 or .250 of anything wider is never assigned by the
		// scenario generators.
		if itf.Addr.Bits() == 30 {
			return netip.AddrFrom4([4]byte{base[0], base[1], base[2], base[3] + 3})
		}
		return netip.AddrFrom4([4]byte{base[0], base[1], base[2], 250})
	}
	return netip.Addr{}
}
