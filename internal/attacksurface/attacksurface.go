// Package attacksurface implements the paper's §5 attack-surface /
// feasibility trade-off experiment (Figures 8 and 9).
//
// For every interface of the evaluation network, an interface-down issue is
// injected and each access technique (All, Neighbor, Heimdall) is scored on
// two metrics:
//
//   - feasibility: can the technician reach — and is allowed to fix — the
//     root-cause device?
//
//   - attack surface: the paper's weighted combination of exposed command
//     surface and potential policy violations,
//
//     Attack_Surface(%) = (ΣC_n/ΣA_n · 0.5 + VP/P · 0.5) · 100
//
// where A_n is the command surface available on node n, C_n the commands
// the technique lets the technician run there, P the policy count, and VP
// the number of policies some allowed command sequence could newly violate
// (found by searching canonical malicious mutations on accessible nodes).
package attacksurface

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"heimdall/internal/console"
	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
	"heimdall/internal/privilege"
	"heimdall/internal/ticket"
	"heimdall/internal/twin"
	"heimdall/internal/verify"
)

// Technique is one access model under evaluation.
type Technique struct {
	Name     string
	Strategy twin.SliceStrategy
	// FullPrivileges grants every command on every visible node (the All
	// and Neighbor strawmen); otherwise a task-driven Privilegemsp is
	// generated per ticket (Heimdall).
	FullPrivileges bool
}

// The three techniques of Figures 8 and 9.
var (
	All      = Technique{Name: "All", Strategy: twin.SliceAll, FullPrivileges: true}
	Neighbor = Technique{Name: "Neighbor", Strategy: twin.SliceNeighbors, FullPrivileges: true}
	Heimdall = Technique{Name: "Heimdall", Strategy: twin.SliceTaskDriven, FullPrivileges: false}
)

// FaultCase is one injected issue with the host pair it affects.
type FaultCase struct {
	Fault ticket.Fault
	Src   string
	Dst   string
}

// Sample is one (fault, technique) measurement.
type Sample struct {
	Fault          string
	Feasible       bool
	Surface        float64 // percent
	ExposedRatio   float64 // ΣC/ΣA
	ViolationRatio float64 // VP/P
	VisibleNodes   int
}

// Result aggregates a technique's samples.
type Result struct {
	Technique string
	Samples   []Sample
}

// Feasibility returns the fraction of feasible samples.
func (r *Result) Feasibility() float64 {
	if len(r.Samples) == 0 {
		return 0
	}
	n := 0
	for _, s := range r.Samples {
		if s.Feasible {
			n++
		}
	}
	return float64(n) / float64(len(r.Samples))
}

// MeanSurface returns the mean attack surface percentage.
func (r *Result) MeanSurface() float64 {
	if len(r.Samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range r.Samples {
		sum += s.Surface
	}
	return sum / float64(len(r.Samples))
}

// String renders the figure row.
func (r *Result) String() string {
	return fmt.Sprintf("%-9s feasibility=%5.1f%%  attack_surface=%5.1f%%  (n=%d)",
		r.Technique, r.Feasibility()*100, r.MeanSurface(), len(r.Samples))
}

// Evaluator runs the experiment against one network and policy set.
type Evaluator struct {
	Base      *netmodel.Network
	Policies  []verify.Policy
	Sensitive map[string]bool
	// MutationBudget caps how many malicious mutations are explored per
	// sample (0 = unlimited). The figures use the full search; unit tests
	// shrink it.
	MutationBudget int
	// Workers bounds the sweep's parallelism: fault cases fan out across
	// up to Workers goroutines, and within a case the mutation trials fan
	// out under the same bound. 0 or 1 runs fully serial. Results are
	// identical to the serial sweep regardless of Workers — samples merge
	// in fault-case order and the violation search is order-independent.
	Workers int

	// baseOnce/baseSnap memoize the base network's snapshot so fault
	// enumeration and every per-fault derivation share one full compute.
	baseOnce sync.Once
	baseSnap *dataplane.Snapshot
	// memoOnce/memo hold the sweep-wide SPF memo: trials and faults that
	// produce identical L3 graphs share one link-state computation.
	memoOnce sync.Once
	memo     *dataplane.SPFMemo
}

// BaseSnapshot returns the snapshot of ev.Base, computed once and shared
// by every fault case (and by InterfaceFaults when the caller passes it).
func (ev *Evaluator) BaseSnapshot() *dataplane.Snapshot {
	ev.baseOnce.Do(func() { ev.baseSnap = dataplane.Compute(ev.Base) })
	return ev.baseSnap
}

// spfMemo returns the sweep-wide SPF memo, created on first use.
func (ev *Evaluator) spfMemo() *dataplane.SPFMemo {
	ev.memoOnce.Do(func() { ev.memo = dataplane.NewSPFMemo() })
	return ev.memo
}

// SPFMemoStats returns the sweep's SPF-memo hit/miss counters — the
// fraction of link-state passes the memo absorbed.
func (ev *Evaluator) SPFMemoStats() (hits, misses uint64) {
	return ev.spfMemo().Stats()
}

// InterfaceFaults enumerates the experiment's issues: for every up,
// addressed interface on an infrastructure device, an interface-down fault
// paired with the first host pair whose baseline traffic crosses that
// device. Interfaces whose loss strands no host pair produce no ticket and
// are skipped, mirroring the paper's setup where every issue is a real
// ticket. snap must be a snapshot of n; pass nil to compute one (callers
// that already hold the base snapshot — every caller in the tree — reuse
// it instead of paying a duplicate full compute).
func InterfaceFaults(n *netmodel.Network, snap *dataplane.Snapshot) []FaultCase {
	return InterfaceFaultsBudget(n, snap, 0)
}

// InterfaceFaultsBudget is InterfaceFaults with the baseline trace
// enumeration bounded to roughly maxPairs host pairs (0 = all pairs). The
// unbounded walk is quadratic in hosts — a k=16 fat-tree's 1024 hosts mean
// a million Reach calls — so the big generated tiers stride-sample the
// src×dst sequence instead; strides spread across sources, so every rack
// still contributes baseline traffic. With maxPairs = 0 the result is
// identical to the historical all-pairs enumeration: interface coverage is
// recorded incrementally in pair order (the first covering pair wins,
// exactly as the old first-matching-trace scan chose), and the walk stops
// early once every candidate interface is covered.
func InterfaceFaultsBudget(n *netmodel.Network, snap *dataplane.Snapshot, maxPairs int) []FaultCase {
	if snap == nil {
		snap = dataplane.Compute(n)
	}
	hosts := n.Hosts()
	devs := n.RoutersAndSwitches()

	// The candidate set: interfaces eligible for a fault ticket. Coverage
	// is only tracked for these, and the pair walk ends as soon as all of
	// them have an affected pair.
	candidates := make(map[netmodel.Endpoint]bool)
	for _, dev := range devs {
		d := n.Devices[dev]
		for _, ifName := range d.InterfaceNames() {
			if itf := d.Interfaces[ifName]; itf.Up() && itf.HasAddr() {
				candidates[netmodel.Endpoint{Device: dev, Interface: ifName}] = true
			}
		}
	}

	stride := 1
	if total := len(hosts) * (len(hosts) - 1); maxPairs > 0 && total > maxPairs {
		stride = (total + maxPairs - 1) / maxPairs
	}

	type hostPair struct{ src, dst string }
	covered := make(map[netmodel.Endpoint]hostPair)
	idx := -1
pairs:
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			idx++
			if idx%stride != 0 {
				continue
			}
			tr, err := snap.Reach(src, dst, netmodel.ICMP, 0)
			if err != nil || !tr.Delivered() {
				continue
			}
			for _, hop := range tr.Hops {
				for _, ifName := range [2]string{hop.InIf, hop.OutIf} {
					ep := netmodel.Endpoint{Device: hop.Device, Interface: ifName}
					if !candidates[ep] {
						continue
					}
					if _, ok := covered[ep]; ok {
						continue
					}
					covered[ep] = hostPair{src, dst}
				}
			}
			if len(covered) == len(candidates) {
				break pairs
			}
		}
	}

	var out []FaultCase
	for _, dev := range devs {
		d := n.Devices[dev]
		for _, ifName := range d.InterfaceNames() {
			p, ok := covered[netmodel.Endpoint{Device: dev, Interface: ifName}]
			if !ok {
				continue
			}
			out = append(out, FaultCase{
				Fault: ticket.InterfaceDown(dev, ifName),
				Src:   p.src,
				Dst:   p.dst,
			})
		}
	}
	return out
}

// limiter is a counting semaphore bounding concurrent mutation trials.
type limiter chan struct{}

func (l limiter) acquire() { l <- struct{}{} }
func (l limiter) release() { <-l }

// Evaluate scores one technique across all fault cases. With Workers > 1
// the cases run on a bounded worker pool (and mutation trials fan out
// under the same bound); samples are merged in fault-case order, so the
// result is identical to the serial sweep.
//
// Fault setup relies on the ticket.Fault contract that Inject mutates only
// the RootCause device (every built-in fault does): each case's network is
// a copy-on-write clone of ev.Base sharing all other devices, so a custom
// Fault writing beyond its RootCause would corrupt ev.Base.
func (ev *Evaluator) Evaluate(tech Technique, cases []FaultCase) *Result {
	res := &Result{Technique: tech.Name}
	totalAvail := 0
	availPer := make(map[string]int)
	for _, dev := range ev.Base.DeviceNames() {
		c := len(console.Catalog(ev.Base.Devices[dev]))
		availPer[dev] = c
		totalAvail += c
	}

	workers := ev.Workers
	if workers < 1 {
		workers = 1
	}
	if workers == 1 {
		for _, fc := range cases {
			if sm, ok := ev.evaluateCase(tech, fc, availPer, totalAvail, nil); ok {
				res.Samples = append(res.Samples, sm)
			}
		}
		return res
	}

	// Case fan-out: a pool of Workers goroutines consumes case indices;
	// each writes its sample into a fixed slot so the merge below
	// reproduces the serial order exactly. Trials share one semaphore
	// across all in-flight cases, bounding the expensive clone+recompute
	// work to Workers at a time.
	type slot struct {
		sm Sample
		ok bool
	}
	slots := make([]slot, len(cases))
	gate := make(limiter, workers)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				sm, ok := ev.evaluateCase(tech, cases[i], availPer, totalAvail, gate)
				slots[i] = slot{sm, ok}
			}
		}()
	}
	for i := range cases {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, s := range slots {
		if s.ok {
			res.Samples = append(res.Samples, s.sm)
		}
	}
	return res
}

// evaluateCase scores one (fault, technique) pair. It reads ev.Base and
// the precomputed command-surface counts but mutates nothing shared, so
// any number of cases may run concurrently. A nil gate runs the mutation
// trials serially.
func (ev *Evaluator) evaluateCase(tech Technique, fc FaultCase,
	availPer map[string]int, totalAvail int, gate limiter) (Sample, bool) {

	// Every ticket.Fault injector mutates only its RootCause device (the
	// contract Evaluate documents), so the faulted network shares all other
	// devices with ev.Base copy-on-write — and the faulted snapshot derives
	// from the base snapshot as an L3-topology change on that one device
	// instead of a from-scratch compute. ChangeL3Topology re-derives every
	// structure a single-device mutation can reach (adjacency, ownership,
	// LSDB-diffed OSPF, session-checked BGP, the device's own RIB), so it
	// is sound for any fault honoring the contract; the sweep-wide SPF memo
	// dedups link-state passes across faults isolating the same component.
	faulted := ev.Base.CloneCOW(fc.Fault.RootCause)
	if err := fc.Fault.Inject(faulted); err != nil {
		return Sample{}, false
	}
	snap := ev.BaseSnapshot().DeriveWithMemo(faulted,
		dataplane.ChangeSet{{Device: fc.Fault.RootCause, Kind: dataplane.ChangeL3Topology}},
		ev.spfMemo())
	slice := twin.ComputeSlice(faulted, snap, tech.Strategy, fc.Src, fc.Dst, nil)

	// The spec is evaluated against every cataloged command on every
	// visible node plus each mutation trial — compile it once per case.
	spec := ev.specFor(tech, faulted, slice).Compile()
	visible := func(dev string) bool { return slice[dev] }

	// ΣC: allowed commands on visible nodes.
	allowedTotal := 0
	for dev := range slice {
		d := faulted.Devices[dev]
		if d == nil {
			continue
		}
		if tech.FullPrivileges {
			allowedTotal += availPer[dev]
			continue
		}
		for _, ar := range console.Catalog(d) {
			if spec.Allows(ar.Action, ar.Resource) {
				allowedTotal++
			}
		}
	}

	// Feasibility: root cause visible and fixable.
	root := fc.Fault.RootCause
	feasible := visible(root)
	if feasible && !tech.FullPrivileges {
		fixRes := fmt.Sprintf("device:%s", root)
		feasible = spec.Allows("config.interface.set", fixRes) ||
			anyInterfaceFixAllowed(spec, faulted.Devices[root])
	}

	// VP: policies newly violable through allowed mutations.
	pre := violatedSet(snap, ev.Policies)
	vp := ev.potentialViolations(faulted, snap, spec, tech.FullPrivileges, slice, pre, gate)

	exposed := 0.0
	if totalAvail > 0 {
		exposed = float64(allowedTotal) / float64(totalAvail)
	}
	vr := 0.0
	if len(ev.Policies) > 0 {
		vr = float64(vp) / float64(len(ev.Policies))
	}
	return Sample{
		Fault:          fc.Fault.Name,
		Feasible:       feasible,
		Surface:        (exposed*0.5 + vr*0.5) * 100,
		ExposedRatio:   exposed,
		ViolationRatio: vr,
		VisibleNodes:   len(slice),
	}, true
}

// specFor builds the technique's privilege specification for a ticket.
func (ev *Evaluator) specFor(tech Technique, n *netmodel.Network, slice map[string]bool) *privilege.Spec {
	if tech.FullPrivileges {
		return &privilege.Spec{Ticket: "fig89", Technician: "tech", Rules: []privilege.Rule{
			{Effect: privilege.AllowEffect, Action: "*", Resource: "*"},
		}}
	}
	var scope, sensitive []string
	for dev := range slice {
		scope = append(scope, dev)
	}
	for host := range ev.Sensitive {
		sensitive = append(sensitive, host)
	}
	sort.Strings(scope)
	sort.Strings(sensitive)
	spec, err := privilege.Generate(privilege.TemplateInput{
		Ticket: "fig89", Technician: "tech", Kind: privilege.TaskInterface,
		Scope: scope, Sensitive: sensitive,
	})
	if err != nil {
		// The template only fails on empty inputs, which cannot happen here.
		panic(err)
	}
	// Fine-grained write grants: for an interface ticket, the plausible
	// root causes are exactly the administratively-down interfaces inside
	// the slice — write access covers those specific resources, nothing
	// else. This is the fine-grained authorization the paper's
	// Privilegemsp exists for (§3, Challenge 1).
	for _, dev := range scope {
		d := n.Devices[dev]
		if d == nil || d.Kind == netmodel.Host {
			continue
		}
		for _, ifName := range d.InterfaceNames() {
			if d.Interfaces[ifName].Shutdown {
				spec.Rules = append(spec.Rules, privilege.Rule{
					Effect:   privilege.AllowEffect,
					Action:   "config.interface.set",
					Resource: fmt.Sprintf("device:%s:interface:%s", dev, ifName),
				})
			}
		}
	}
	return spec
}

func anyInterfaceFixAllowed(spec *privilege.CompiledSpec, d *netmodel.Device) bool {
	if d == nil {
		return false
	}
	for _, ifName := range d.InterfaceNames() {
		if spec.Allows("config.interface.set", fmt.Sprintf("device:%s:interface:%s", d.Name, ifName)) {
			return true
		}
	}
	return false
}

func violatedSet(snap *dataplane.Snapshot, policies []verify.Policy) map[string]bool {
	out := make(map[string]bool)
	for _, v := range verify.Check(snap, policies).Violations {
		out[v.Policy.ID] = true
	}
	return out
}

// policyScope returns the policies a trial mutating dev must recheck.
// Routers get verify.AffectedBy's trace-based subset; switches keep every
// policy in scope, because their VLAN fabric carries flows whose traces
// never list the switch as an L3 hop (an access-port move or trunk
// shutdown can break a policy AffectedBy would have dropped).
func (ev *Evaluator) policyScope(faulted *netmodel.Network, snap *dataplane.Snapshot, dev string) []verify.Policy {
	if d := faulted.Devices[dev]; d != nil && d.Kind == netmodel.Switch {
		return ev.Policies
	}
	return verify.AffectedBy(snap, ev.Policies, map[string]bool{dev: true})
}

// mutation is one canonical malicious action a technician could attempt.
// kind classifies what the mutation can affect, letting the trial derive
// its dataplane snapshot from the faulted one instead of recomputing it.
type mutation struct {
	device   string
	action   string
	resource string
	kind     dataplane.ChangeKind
	apply    func(n *netmodel.Network)
}

// potentialViolations searches allowed mutations on visible nodes and
// returns how many policies become newly violated by at least one of them.
//
// The search is incremental: a mutation on device D can only break
// policies whose baseline (faulted) traffic traverses D, plus isolation
// and already-broken flows, which verify.AffectedBy keeps in scope — so
// each trial rechecks only that subset instead of the whole policy set.
// Pure-L2 switches are the one exception (their VLAN fabric carries flows
// whose traces never list them as an L3 hop), so mutations on switches
// conservatively keep every policy in scope. VP counts are therefore
// exactly those of the exhaustive recheck. Trials short-circuit once
// every policy still winnable is already marked violable. A non-nil gate
// fans the trials out across goroutines; the violation union is
// order-independent, so the count is identical either way.
func (ev *Evaluator) potentialViolations(faulted *netmodel.Network, snap *dataplane.Snapshot,
	spec *privilege.CompiledSpec, full bool, slice map[string]bool, pre map[string]bool, gate limiter) int {

	// Hijack targets: every host subnet (a /24 route outranks the OSPF
	// routes protecting it).
	var hijacks []netip.Prefix
	seen := map[netip.Prefix]bool{}
	for _, host := range ev.Base.Hosts() {
		if a, ok := ev.Base.HostAddr(host); ok {
			p := netip.PrefixFrom(a, 24).Masked()
			if !seen[p] {
				seen[p] = true
				hijacks = append(hijacks, p)
			}
		}
	}

	var muts []mutation
	var devs []string
	for dev := range slice {
		devs = append(devs, dev)
	}
	sort.Strings(devs)
	for _, dev := range devs {
		d := faulted.Devices[dev]
		if d == nil {
			continue
		}
		ms := deviceMutations(d, hijacks)
		for i := range ms {
			ms[i].device = dev
		}
		muts = append(muts, ms...)
	}

	// The mutations actually explored: the first MutationBudget allowed
	// ones, in deterministic (device, enumeration) order — the same set
	// the serial search evaluates.
	var allowed []mutation
	for _, m := range muts {
		if ev.MutationBudget > 0 && len(allowed) >= ev.MutationBudget {
			break
		}
		if !full && !spec.Allows(m.action, m.resource) {
			continue
		}
		allowed = append(allowed, m)
	}

	// winnable is how many policies a trial could still newly violate:
	// pre-violated ones never count toward VP.
	winnable := 0
	for _, p := range ev.Policies {
		if !pre[p.ID] {
			winnable++
		}
	}
	if len(allowed) == 0 || winnable == 0 {
		return 0
	}

	// Incremental scope per mutated device (the baseline snapshot's flow
	// cache makes the second and later AffectedBy calls nearly free).
	affected := make(map[string][]verify.Policy, len(allowed))
	for _, m := range allowed {
		if _, ok := affected[m.device]; ok {
			continue
		}
		affected[m.device] = ev.policyScope(faulted, snap, m.device)
	}

	violated := make(map[string]bool)
	if gate == nil {
		for _, m := range allowed {
			if len(violated) >= winnable {
				break // every winnable policy is violable already
			}
			for _, id := range ev.trialViolations(faulted, snap, m, affected[m.device], pre, violated) {
				violated[id] = true
			}
		}
		return len(violated)
	}

	var mu sync.Mutex
	done := false
	var wg sync.WaitGroup
	for _, m := range allowed {
		m := m
		wg.Add(1)
		go func() {
			defer wg.Done()
			gate.acquire()
			defer gate.release()
			mu.Lock()
			if done {
				mu.Unlock()
				return
			}
			// Snapshot the IDs already found so the trial skips them —
			// pure work-saving: re-finding an ID never changes the union.
			seen := make(map[string]bool, len(violated))
			for id := range violated {
				seen[id] = true
			}
			mu.Unlock()
			ids := ev.trialViolations(faulted, snap, m, affected[m.device], pre, seen)
			if len(ids) == 0 {
				return
			}
			mu.Lock()
			for _, id := range ids {
				violated[id] = true
			}
			if len(violated) >= winnable {
				done = true
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	return len(violated)
}

// trialViolations applies one mutation to a copy-on-write clone of the
// faulted network and returns the IDs of in-scope policies it newly
// violates. Policies in pre (already violated before the mutation) or skip
// (already proven violable by an earlier trial) are not rechecked; when
// none remain the clone and snapshot derivation are skipped entirely.
//
// This is the sweep's hot path, and where the incremental machinery pays
// off: CloneCOW deep-copies only the mutated device, and Derive reuses
// every part of the faulted snapshot the mutation class cannot invalidate
// (an ACL trial recomputes nothing at all; a static-route trial rebuilds
// one RIB; an L2 trial whose LSDB is unchanged shares all routing state).
// The derived snapshot is byte-identical to a from-scratch Compute, so VP
// counts are exactly those of the old clone-everything loop; the SPF memo
// additionally collapses trials that isolate identical L3 graphs.
func (ev *Evaluator) trialViolations(faulted *netmodel.Network, snap *dataplane.Snapshot, m mutation,
	scope []verify.Policy, pre, skip map[string]bool) []string {

	todo := make([]verify.Policy, 0, len(scope))
	for _, p := range scope {
		if !pre[p.ID] && !skip[p.ID] {
			todo = append(todo, p)
		}
	}
	if len(todo) == 0 {
		return nil
	}
	trial := faulted.CloneCOW(m.device)
	m.apply(trial)
	tsnap := snap.DeriveWithMemo(trial,
		dataplane.ChangeSet{{Device: m.device, Kind: m.kind}}, ev.spfMemo())
	var out []string
	for _, p := range todo {
		if verify.CheckPolicy(tsnap, p) != nil {
			out = append(out, p.ID)
		}
	}
	return out
}

// deviceMutations enumerates the canonical malicious actions on one device.
func deviceMutations(d *netmodel.Device, hijacks []netip.Prefix) []mutation {
	dev := d.Name
	var out []mutation

	// Shut every interface down. Downing a pure-L2 port (access/trunk or
	// unaddressed) is an L2-class change; downing an addressed routed port
	// or SVI is an L3-topology change. Either way the mutation is confined
	// to this device, so a full-recompute fallback is never needed.
	for _, ifName := range d.InterfaceNames() {
		name := ifName
		kind := dataplane.ChangeL3Topology
		if netmodel.InterfaceL2Only(d.Interfaces[ifName]) {
			kind = dataplane.ChangeL2
		}
		out = append(out, mutation{
			action:   "config.interface.set",
			resource: fmt.Sprintf("device:%s:interface:%s", dev, name),
			kind:     kind,
			apply: func(n *netmodel.Network) {
				if itf := n.Devices[dev].Interface(name); itf != nil {
					itf.Shutdown = true
				}
			},
		})
	}

	// Poison every ACL: blanket deny (breaks reachability) and blanket
	// permit (breaks isolation), plus removing the first entry.
	for _, aclName := range d.ACLNames() {
		name := aclName
		for _, act := range []netmodel.ACLAction{netmodel.Deny, netmodel.Permit} {
			action := act
			out = append(out, mutation{
				action:   "config.acl.add",
				resource: fmt.Sprintf("device:%s:acl:%s", dev, name),
				kind:     dataplane.ChangeACL,
				apply: func(n *netmodel.Network) {
					n.Devices[dev].ACL(name, true).InsertEntry(netmodel.ACLEntry{
						Seq: 1, Action: action, Proto: netmodel.AnyProto,
					})
				},
			})
		}
		out = append(out, mutation{
			action:   "config.acl.remove",
			resource: fmt.Sprintf("device:%s:acl:%s", dev, name),
			kind:     dataplane.ChangeACL,
			apply: func(n *netmodel.Network) {
				a := n.Devices[dev].ACL(name, false)
				if a != nil && len(a.Entries) > 0 {
					a.RemoveEntry(a.Entries[0].Seq)
				}
			},
		})
	}

	// Route manipulation: blackhole routes (next hop resolving to no
	// neighbor) for each host subnet — a /24 static outranks the OSPF
	// route protecting it — plus a blackhole default.
	if blackhole := unownedNeighborAddr(d); blackhole.IsValid() && d.Kind != netmodel.Host {
		targets := append([]netip.Prefix{netip.MustParsePrefix("0.0.0.0/0")}, hijacks...)
		for _, p := range targets {
			prefix := p
			out = append(out, mutation{
				action:   "config.route.add",
				resource: fmt.Sprintf("device:%s:route:%s", dev, prefix),
				kind:     dataplane.ChangeStatic,
				apply: func(n *netmodel.Network) {
					n.Devices[dev].StaticRoutes = append(n.Devices[dev].StaticRoutes,
						netmodel.StaticRoute{Prefix: prefix, NextHop: blackhole})
				},
			})
		}
	}

	// Silence OSPF entirely.
	if d.OSPF != nil {
		out = append(out, mutation{
			action:   "config.ospf.set",
			resource: fmt.Sprintf("device:%s:ospf", dev),
			kind:     dataplane.ChangeOSPF,
			apply: func(n *netmodel.Network) {
				dd := n.Devices[dev]
				for _, ifName := range dd.InterfaceNames() {
					dd.OSPF.Passive[ifName] = true
				}
			},
		})
	}

	// Break L2: delete VLANs, move access ports. Both touch only the
	// switching fabric (VLAN definitions never carry addresses, access
	// ports are never L3 endpoints), so they derive as L2-class changes —
	// typically sharing every RIB with the faulted snapshot by identity.
	for _, id := range d.VLANIDs() {
		vid := id
		out = append(out, mutation{
			action:   "config.vlan.remove",
			resource: fmt.Sprintf("device:%s:vlan:%d", dev, vid),
			kind:     dataplane.ChangeL2,
			apply: func(n *netmodel.Network) {
				delete(n.Devices[dev].VLANs, vid)
			},
		})
	}
	for _, ifName := range d.InterfaceNames() {
		itf := d.Interfaces[ifName]
		if itf.Mode != netmodel.Access {
			continue
		}
		name := ifName
		out = append(out, mutation{
			action:   "config.interface.set",
			resource: fmt.Sprintf("device:%s:interface:%s", dev, name),
			kind:     dataplane.ChangeL2,
			apply: func(n *netmodel.Network) {
				n.Devices[dev].Interface(name).AccessVLAN = 999
			},
		})
	}

	// Blackhole a host by rewriting its gateway.
	if d.Kind == netmodel.Host {
		out = append(out, mutation{
			action:   "config.gateway.set",
			resource: fmt.Sprintf("device:%s:gateway", dev),
			kind:     dataplane.ChangeStatic,
			apply: func(n *netmodel.Network) {
				n.Devices[dev].DefaultGateway = netip.MustParseAddr("192.0.2.254")
			},
		})
	}
	return out
}

// unownedNeighborAddr finds an address on one of the device's connected
// subnets that no device owns — the perfect blackhole next hop.
func unownedNeighborAddr(d *netmodel.Device) netip.Addr {
	for _, ifName := range d.InterfaceNames() {
		itf := d.Interfaces[ifName]
		if !itf.Up() || !itf.HasAddr() || itf.Addr.Bits() > 30 {
			continue
		}
		base := itf.Addr.Masked().Addr().As4()
		// .3 of a /30 or .250 of anything wider is never assigned by the
		// scenario generators.
		if itf.Addr.Bits() == 30 {
			return netip.AddrFrom4([4]byte{base[0], base[1], base[2], base[3] + 3})
		}
		return netip.AddrFrom4([4]byte{base[0], base[1], base[2], 250})
	}
	return netip.Addr{}
}
