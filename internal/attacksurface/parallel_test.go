package attacksurface

import (
	"net/netip"
	"reflect"
	"sort"
	"testing"

	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
	"heimdall/internal/scenarios"
	"heimdall/internal/twin"
	"heimdall/internal/verify"
)

// TestParallelEquivalence is the sweep's correctness anchor: at any
// worker count, Result.Samples must be identical — same order, same
// feasibility, same surface bits — to the serial sweep.
func TestParallelEquivalence(t *testing.T) {
	type tc struct {
		name   string
		scen   *scenarios.Scenario
		cases  int // 0 = all
		budget int
	}
	for _, c := range []tc{
		{"enterprise", scenarios.Enterprise(), 0, 6},
		{"university", scenarios.University(), 24, 4},
	} {
		t.Run(c.name, func(t *testing.T) {
			cases := InterfaceFaults(c.scen.Network, nil)
			if c.cases > 0 && len(cases) > c.cases {
				cases = cases[:c.cases]
			}
			for _, tech := range []Technique{All, Neighbor, Heimdall} {
				ev := &Evaluator{Base: c.scen.Network, Policies: c.scen.Policies,
					Sensitive: c.scen.Sensitive, MutationBudget: c.budget}
				serial := ev.Evaluate(tech, cases)
				for _, workers := range []int{4, 8} {
					ev.Workers = workers
					par := ev.Evaluate(tech, cases)
					if !reflect.DeepEqual(serial.Samples, par.Samples) {
						t.Errorf("%s/%s: Workers=%d samples differ from serial\nserial:   %+v\nparallel: %+v",
							c.name, tech.Name, workers, serial.Samples, par.Samples)
					}
				}
			}
		})
	}
}

// exhaustiveVP is the pre-optimization search, kept as a test oracle: it
// mirrors the original potentialViolations loop — every allowed mutation
// within the budget is applied and the FULL policy set rechecked. The
// incremental search must return exactly this count.
func exhaustiveVP(ev *Evaluator, faulted *netmodel.Network, tech Technique,
	slice map[string]bool, pre map[string]bool) int {

	spec := ev.specFor(tech, faulted, slice)
	hijacks := hostSubnets(ev.Base)
	var muts []mutation
	for _, dev := range sortedKeys(slice) {
		d := faulted.Devices[dev]
		if d == nil {
			continue
		}
		muts = append(muts, deviceMutations(d, hijacks)...)
	}
	violated := make(map[string]bool)
	evaluated := 0
	for _, m := range muts {
		if ev.MutationBudget > 0 && evaluated >= ev.MutationBudget {
			break
		}
		if len(violated) == len(ev.Policies) {
			break
		}
		if !tech.FullPrivileges && !spec.Allows(m.action, m.resource) {
			continue
		}
		evaluated++
		trial := faulted.Clone()
		m.apply(trial)
		for _, v := range verify.Check(dataplane.Compute(trial), ev.Policies).Violations {
			if !pre[v.Policy.ID] {
				violated[v.Policy.ID] = true
			}
		}
	}
	return len(violated)
}

// TestIncrementalMatchesExhaustive pins the tentpole's exactness claim:
// scoping each trial to the policies whose baseline traffic crosses the
// mutated device (plus the isolation/undelivered carve-outs and the
// conservative all-policies path for switches) yields the same VP count
// as rechecking everything.
func TestIncrementalMatchesExhaustive(t *testing.T) {
	scen := scenarios.Enterprise()
	cases := InterfaceFaults(scen.Network, nil)
	if len(cases) > 10 {
		cases = cases[:10]
	}
	for _, tech := range []Technique{All, Heimdall} {
		ev := &Evaluator{Base: scen.Network, Policies: scen.Policies,
			Sensitive: scen.Sensitive, MutationBudget: 8}
		for _, fc := range cases {
			faulted := ev.Base.Clone()
			if err := fc.Fault.Inject(faulted); err != nil {
				continue
			}
			snap := dataplane.Compute(faulted)
			slice := twin.ComputeSlice(faulted, snap, tech.Strategy, fc.Src, fc.Dst, nil)
			spec := ev.specFor(tech, faulted, slice)
			pre := violatedSet(snap, ev.Policies)

			want := exhaustiveVP(ev, faulted, tech, slice, pre)
			got := ev.potentialViolations(faulted, snap, spec.Compile(), tech.FullPrivileges, slice, pre, nil)
			if got != want {
				t.Errorf("%s/%s: incremental VP = %d, exhaustive = %d",
					tech.Name, fc.Fault.Name, got, want)
			}
		}
	}
}

// TestWorkersDefaultSerial pins that the zero value of Workers keeps the
// evaluator fully serial (the documented Workers: 1 contract).
func TestWorkersDefaultSerial(t *testing.T) {
	scen := scenarios.Enterprise()
	cases := InterfaceFaults(scen.Network, nil)[:3]
	zero := &Evaluator{Base: scen.Network, Policies: scen.Policies,
		Sensitive: scen.Sensitive, MutationBudget: 2}
	one := &Evaluator{Base: scen.Network, Policies: scen.Policies,
		Sensitive: scen.Sensitive, MutationBudget: 2, Workers: 1}
	a := zero.Evaluate(Heimdall, cases)
	b := one.Evaluate(Heimdall, cases)
	if !reflect.DeepEqual(a.Samples, b.Samples) {
		t.Errorf("Workers 0 and 1 disagree:\n%+v\n%+v", a.Samples, b.Samples)
	}
}

// hostSubnets duplicates the hijack-target enumeration for the oracle.
func hostSubnets(n *netmodel.Network) []netip.Prefix {
	var out []netip.Prefix
	seen := map[netip.Prefix]bool{}
	for _, host := range n.Hosts() {
		if a, ok := n.HostAddr(host); ok {
			p := netip.PrefixFrom(a, 24).Masked()
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
