package attacksurface

import (
	"testing"

	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
	"heimdall/internal/scenarios"
	"heimdall/internal/ticket"
	"heimdall/internal/verify"
)

func TestInterfaceFaultsEnumeration(t *testing.T) {
	s := scenarios.Enterprise()
	cases := InterfaceFaults(s.Network, nil)
	if len(cases) < 10 {
		t.Fatalf("too few fault cases: %d", len(cases))
	}
	seen := map[string]bool{}
	for _, fc := range cases {
		if seen[fc.Fault.Name] {
			t.Errorf("duplicate fault %s", fc.Fault.Name)
		}
		seen[fc.Fault.Name] = true
		if fc.Src == "" || fc.Dst == "" || fc.Fault.RootCause == "" {
			t.Errorf("incomplete case %+v", fc)
		}
		if s.Network.Devices[fc.Fault.RootCause].Kind == 2 /* Host */ {
			t.Errorf("fault on a host: %+v", fc)
		}
	}
}

func TestFigure8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full mutation search is slow")
	}
	s := scenarios.Enterprise()
	ev := &Evaluator{Base: s.Network, Policies: s.Policies, Sensitive: s.Sensitive}
	cases := InterfaceFaults(s.Network, nil)

	all := ev.Evaluate(All, cases)
	nb := ev.Evaluate(Neighbor, cases)
	hd := ev.Evaluate(Heimdall, cases)
	t.Logf("All:      %s", all)
	t.Logf("Neighbor: %s", nb)
	t.Logf("Heimdall: %s", hd)

	// Paper shape (Figure 8): All is fully feasible with the largest
	// surface; Neighbor is cheap but often infeasible; Heimdall keeps
	// feasibility close to All with the smallest surface.
	if all.Feasibility() != 1.0 {
		t.Errorf("All feasibility = %v, want 1.0", all.Feasibility())
	}
	if nb.Feasibility() >= all.Feasibility() {
		t.Errorf("Neighbor feasibility %v should be below All", nb.Feasibility())
	}
	if hd.Feasibility() < 0.9 {
		t.Errorf("Heimdall feasibility = %v, want ≈1.0", hd.Feasibility())
	}
	if !(all.MeanSurface() > nb.MeanSurface()) {
		t.Errorf("surface: All %.1f should exceed Neighbor %.1f", all.MeanSurface(), nb.MeanSurface())
	}
	if !(nb.MeanSurface() > hd.MeanSurface()) {
		t.Errorf("surface: Neighbor %.1f should exceed Heimdall %.1f", nb.MeanSurface(), hd.MeanSurface())
	}
	// The headline claim: Heimdall reduces attack surface substantially
	// (the paper reports up to 39 percentage points vs the baselines).
	if all.MeanSurface()-hd.MeanSurface() < 20 {
		t.Errorf("reduction All->Heimdall = %.1f points, want > 20",
			all.MeanSurface()-hd.MeanSurface())
	}
}

func TestMutationBudgetBounds(t *testing.T) {
	s := scenarios.Enterprise()
	ev := &Evaluator{Base: s.Network, Policies: s.Policies, Sensitive: s.Sensitive, MutationBudget: 3}
	cases := InterfaceFaults(s.Network, nil)[:2]
	res := ev.Evaluate(All, cases)
	if len(res.Samples) != 2 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
	for _, sm := range res.Samples {
		if sm.Surface < 0 || sm.Surface > 100 {
			t.Errorf("surface out of range: %v", sm.Surface)
		}
		if sm.ExposedRatio != 1.0 {
			t.Errorf("All should expose everything, got %v", sm.ExposedRatio)
		}
	}
}

func TestHeimdallExposesLessThanAll(t *testing.T) {
	s := scenarios.Enterprise()
	ev := &Evaluator{Base: s.Network, Policies: s.Policies, Sensitive: s.Sensitive, MutationBudget: 1}
	cases := InterfaceFaults(s.Network, nil)[:3]
	all := ev.Evaluate(All, cases)
	hd := ev.Evaluate(Heimdall, cases)
	for i := range all.Samples {
		if hd.Samples[i].ExposedRatio >= all.Samples[i].ExposedRatio {
			t.Errorf("case %d: Heimdall exposed %v >= All %v", i,
				hd.Samples[i].ExposedRatio, all.Samples[i].ExposedRatio)
		}
		if hd.Samples[i].VisibleNodes > all.Samples[i].VisibleNodes {
			t.Errorf("case %d: Heimdall sees more nodes than All", i)
		}
	}
}

func TestResultAggregation(t *testing.T) {
	r := &Result{Technique: "x"}
	if r.Feasibility() != 0 || r.MeanSurface() != 0 {
		t.Fatal("empty result should aggregate to zero")
	}
	r.Samples = []Sample{{Feasible: true, Surface: 40}, {Feasible: false, Surface: 20}}
	if r.Feasibility() != 0.5 {
		t.Fatalf("feasibility = %v", r.Feasibility())
	}
	if r.MeanSurface() != 30 {
		t.Fatalf("mean surface = %v", r.MeanSurface())
	}
	if r.String() == "" {
		t.Fatal("empty String")
	}
}

// TestAffectedBySwitchConservative pins why policyScope treats switches
// conservatively: the enterprise fabric carries flows through sw1/sw2 as
// pure L2 transit, so their traces never list the switch as a hop,
// verify.AffectedBy would drop the policy from a trial's recheck scope —
// yet an L2-only mutation on the switch (trunk shutdown) breaks the flow.
// The sweep must therefore keep every policy in scope for switch trials.
func TestAffectedBySwitchConservative(t *testing.T) {
	scen := scenarios.Enterprise()
	n := scen.Network
	snap := dataplane.Compute(n)
	ev := &Evaluator{Base: n, Policies: scen.Policies, Sensitive: scen.Sensitive}

	type witness struct {
		policy verify.Policy
		sw     string
	}
	var w *witness
	for _, sw := range []string{"sw1", "sw2"} {
		mutated := n.CloneCOW(sw)
		d := mutated.Devices[sw]
		trunk := ""
		for _, ifName := range d.InterfaceNames() {
			if itf := d.Interfaces[ifName]; itf.Mode == netmodel.Trunk && !itf.HasAddr() {
				trunk = ifName
				break
			}
		}
		if trunk == "" {
			continue
		}
		d.Interfaces[trunk].Shutdown = true
		trial := snap.Derive(mutated, dataplane.ChangeSet{{Device: sw, Kind: dataplane.ChangeL2}})
		for _, p := range scen.Policies {
			tr, err := snap.Reach(p.Src, p.Dst, p.Proto, p.DstPort)
			if err != nil || !tr.Delivered() || tr.Traverses(sw) {
				continue // only interested in policies outside AffectedBy's scope
			}
			if verify.CheckPolicy(trial, p) != nil {
				w = &witness{policy: p, sw: sw}
				break
			}
		}
		if w != nil {
			break
		}
	}
	if w == nil {
		t.Fatal("no policy is both outside AffectedBy scope and breakable by an L2 switch mutation; the conservative path has no witness")
	}

	// AffectedBy alone would have dropped the witness policy...
	scoped := verify.AffectedBy(snap, []verify.Policy{w.policy}, map[string]bool{w.sw: true})
	if len(scoped) != 0 {
		t.Fatalf("precondition broken: %s is in AffectedBy scope for %s", w.policy.ID, w.sw)
	}
	// ...but the sweep's per-trial scope must retain it.
	kept := false
	for _, p := range ev.policyScope(n, snap, w.sw) {
		if p.ID == w.policy.ID {
			kept = true
			break
		}
	}
	if !kept {
		t.Errorf("policyScope(%s) dropped policy %s, which an L2 mutation on %s violates", w.sw, w.policy.ID, w.sw)
	}
	// A router's scope stays trace-based: it must be a strict subset.
	if got, all := len(ev.policyScope(n, snap, "r2")), len(scen.Policies); got >= all {
		t.Errorf("router scope not narrowed: %d of %d policies", got, all)
	}
}

// TestInterfaceFaultsOracle pins the incremental coverage walk against the
// historical all-pairs reference: build every delivered host-pair trace,
// then for each candidate interface pick the first trace that crosses it.
// The unbounded InterfaceFaults must reproduce that output exactly —
// including which pair each fault is attributed to — since the early-exit
// rewrite only changes when the walk stops, not what it records.
func TestInterfaceFaultsOracle(t *testing.T) {
	for _, s := range []*scenarios.Scenario{scenarios.Enterprise(), scenarios.University()} {
		n := s.Network
		snap := dataplane.Compute(n)
		got := InterfaceFaults(n, snap)

		type pairTrace struct {
			src, dst string
			tr       *dataplane.Trace
		}
		var traces []pairTrace
		for _, src := range n.Hosts() {
			for _, dst := range n.Hosts() {
				if src == dst {
					continue
				}
				tr, err := snap.Reach(src, dst, netmodel.ICMP, 0)
				if err == nil && tr.Delivered() {
					traces = append(traces, pairTrace{src, dst, tr})
				}
			}
		}
		var want []FaultCase
		for _, dev := range n.RoutersAndSwitches() {
			d := n.Devices[dev]
			for _, ifName := range d.InterfaceNames() {
				itf := d.Interfaces[ifName]
				if !itf.Up() || !itf.HasAddr() {
					continue
				}
				var affected *pairTrace
				for i := range traces {
					for _, hop := range traces[i].tr.Hops {
						if hop.Device == dev && (hop.InIf == ifName || hop.OutIf == ifName) {
							affected = &traces[i]
							break
						}
					}
					if affected != nil {
						break
					}
				}
				if affected == nil {
					continue
				}
				want = append(want, FaultCase{Fault: ticket.InterfaceDown(dev, ifName), Src: affected.src, Dst: affected.dst})
			}
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d cases, reference has %d", s.Name, len(got), len(want))
		}
		for i := range want {
			if got[i].Fault.Name != want[i].Fault.Name || got[i].Src != want[i].Src || got[i].Dst != want[i].Dst {
				t.Errorf("%s case %d: got (%s %s->%s) want (%s %s->%s)", s.Name, i,
					got[i].Fault.Name, got[i].Src, got[i].Dst,
					want[i].Fault.Name, want[i].Src, want[i].Dst)
			}
		}
	}
}

// TestInterfaceFaultsBudget checks the stride-sampled walk's invariants:
// every emitted case's host pair really crosses the faulted interface, no
// fault repeats, and a budget large enough to cover everything converges
// to the unbounded enumeration.
func TestInterfaceFaultsBudget(t *testing.T) {
	s := scenarios.University()
	n := s.Network
	snap := dataplane.Compute(n)
	cases := InterfaceFaultsBudget(n, snap, 8)
	if len(cases) == 0 {
		t.Fatal("budgeted walk found no cases")
	}
	seen := map[string]bool{}
	for _, fc := range cases {
		if seen[fc.Fault.Name] {
			t.Errorf("duplicate fault %s", fc.Fault.Name)
		}
		seen[fc.Fault.Name] = true
		tr, err := snap.Reach(fc.Src, fc.Dst, netmodel.ICMP, 0)
		if err != nil || !tr.Delivered() {
			t.Fatalf("%s: affected pair %s->%s does not deliver", fc.Fault.Name, fc.Src, fc.Dst)
		}
		crosses := false
		for _, hop := range tr.Hops {
			for _, ifName := range []string{hop.InIf, hop.OutIf} {
				if ifName != "" && ticket.InterfaceDown(hop.Device, ifName).Name == fc.Fault.Name {
					crosses = true
				}
			}
		}
		if !crosses {
			t.Errorf("%s: pair %s->%s never crosses the faulted interface", fc.Fault.Name, fc.Src, fc.Dst)
		}
	}
	hosts := len(n.Hosts())
	full := InterfaceFaultsBudget(n, snap, hosts*(hosts-1))
	unbounded := InterfaceFaults(n, snap)
	if len(full) != len(unbounded) {
		t.Fatalf("budget >= pair count diverges: %d vs %d", len(full), len(unbounded))
	}
	for i := range unbounded {
		if full[i].Fault.Name != unbounded[i].Fault.Name || full[i].Src != unbounded[i].Src || full[i].Dst != unbounded[i].Dst {
			t.Errorf("case %d: (%s %s->%s) vs (%s %s->%s)", i,
				full[i].Fault.Name, full[i].Src, full[i].Dst,
				unbounded[i].Fault.Name, unbounded[i].Src, unbounded[i].Dst)
		}
	}
}
