package faultinject

import (
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"heimdall/internal/telemetry"
)

func TestFailNth(t *testing.T) {
	in := New(Plan{Rules: []Rule{{Scope: "r1", Op: "apply", FailNth: 2}}})
	if err := in.Visit("r1", "apply"); err != nil {
		t.Fatalf("call 1 faulted: %v", err)
	}
	err := in.Visit("r1", "apply")
	if err == nil {
		t.Fatal("call 2 did not fault")
	}
	if !IsTransient(err) {
		t.Fatal("default class should be transient")
	}
	if err := in.Visit("r1", "apply"); err != nil {
		t.Fatalf("call 3 faulted: %v", err)
	}
	// Other scopes and ops are untouched.
	if err := in.Visit("r2", "apply"); err != nil {
		t.Fatalf("r2 faulted: %v", err)
	}
	if err := in.Visit("r1", "restore"); err != nil {
		t.Fatalf("restore faulted: %v", err)
	}
	if got := in.Injected(); got != 1 {
		t.Fatalf("Injected = %d, want 1", got)
	}
	if got := in.Calls("r1", "apply"); got != 3 {
		t.Fatalf("Calls = %d, want 3", got)
	}
}

func TestFailFirstKThenRecover(t *testing.T) {
	in := New(Plan{Rules: []Rule{{Scope: "r1", FailFirst: 2}}})
	for i := 1; i <= 2; i++ {
		if err := in.Visit("r1", "apply"); err == nil {
			t.Fatalf("call %d did not fault", i)
		}
	}
	if err := in.Visit("r1", "apply"); err != nil {
		t.Fatalf("device did not recover: %v", err)
	}
}

func TestOutageAndClassification(t *testing.T) {
	in := New(Plan{Rules: []Rule{{Scope: "r9", Op: "apply", Outage: true, Class: Permanent}}})
	for i := 0; i < 5; i++ {
		err := in.Visit("r9", "apply")
		if err == nil {
			t.Fatalf("outage call %d succeeded", i)
		}
		if IsTransient(err) {
			t.Fatal("permanent fault classified transient")
		}
	}
	// Wrapped errors keep their classification.
	err := fmt.Errorf("push r9: %w", in.Visit("r9", "apply"))
	if IsTransient(err) {
		t.Fatal("wrapped permanent fault classified transient")
	}
	wrapped := fmt.Errorf("push: %w", &Error{Scope: "x", Op: "apply", Class: Transient})
	if !IsTransient(wrapped) {
		t.Fatal("wrapped transient fault not classified")
	}
	// Unclassified errors are permanent by default.
	if IsTransient(errors.New("some device error")) {
		t.Fatal("bare error classified transient")
	}
	if IsTransient(nil) {
		t.Fatal("nil error classified transient")
	}
}

func TestLatencyAndMeter(t *testing.T) {
	in := New(Plan{Rules: []Rule{
		{Scope: "r1", Latency: 5 * time.Millisecond},
		{Scope: "r1", Op: "apply", FailNth: 1, Latency: 2 * time.Millisecond},
	}})
	var slept []time.Duration
	in.SetSleep(func(d time.Duration) { slept = append(slept, d) })
	reg := telemetry.NewRegistry()
	in.SetMeter(reg)

	if err := in.Visit("r1", "apply"); err == nil {
		t.Fatal("first apply did not fault")
	}
	if err := in.Visit("r1", "restore"); err != nil {
		t.Fatalf("restore faulted: %v", err)
	}
	// Latency accumulates across matching rules: 5+2 then 5.
	want := []time.Duration{7 * time.Millisecond, 5 * time.Millisecond}
	if !reflect.DeepEqual(slept, want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	if got := reg.CounterValue("heimdall_faults_injected_total",
		telemetry.L("op", "apply"), telemetry.L("class", "transient")); got != 1 {
		t.Fatalf("faults_injected_total = %v, want 1", got)
	}
}

func TestRandomPlanDeterministic(t *testing.T) {
	scopes := []string{"r1", "r2", "r3"}
	ops := []string{"apply", "restore"}
	a := RandomPlan(42, scopes, ops)
	b := RandomPlan(42, scopes, ops)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	// Different seeds should (for these values) differ.
	c := RandomPlan(43, scopes, ops)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
	// Replaying a plan through two injectors gives identical outcomes.
	ia, ib := New(a), New(a)
	for i := 0; i < 20; i++ {
		for _, s := range scopes {
			for _, op := range ops {
				ea, eb := ia.Visit(s, op), ib.Visit(s, op)
				if (ea == nil) != (eb == nil) {
					t.Fatalf("replay diverged at %s/%s call %d", s, op, i)
				}
			}
		}
	}
}

func TestVisitConcurrent(t *testing.T) {
	in := New(Plan{Rules: []Rule{{Scope: "*", Op: "*", FailNth: 10}}})
	var wg sync.WaitGroup
	faults := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := in.Visit("r1", "apply"); err != nil {
					faults[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, f := range faults {
		total += f
	}
	if total != 1 || in.Injected() != 1 {
		t.Fatalf("FailNth under concurrency injected %d faults (counter %d), want exactly 1",
			total, in.Injected())
	}
}

func TestWrapConn(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	in := New(Plan{Rules: []Rule{{Scope: "c", Op: "write", FailNth: 2, Class: Permanent}}})
	wrapped := WrapConn(client, in, "c")

	go func() { // drain the peer so writes complete
		buf := make([]byte, 16)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()
	if _, err := wrapped.Write([]byte("ok")); err != nil {
		t.Fatalf("first write faulted: %v", err)
	}
	_, err := wrapped.Write([]byte("boom"))
	if err == nil {
		t.Fatal("second write did not fault")
	}
	if IsTransient(err) {
		t.Fatal("permanent conn fault classified transient")
	}
	// The underlying conn is closed after an injected fault.
	if _, err := client.Write([]byte("x")); err == nil {
		t.Fatal("underlying conn still open after injected fault")
	}
	// Nil injector passes the conn through untouched.
	if got := WrapConn(server, nil, "s"); got != server {
		t.Fatal("WrapConn(nil) wrapped the conn")
	}
}

func TestLinkScopeCanonical(t *testing.T) {
	if LinkScope("coord", "rep-b") != LinkScope("rep-b", "coord") {
		t.Fatal("LinkScope is not symmetric")
	}
	if got := LinkScope("rep-b", "coord"); got != "coord~rep-b" {
		t.Fatalf("LinkScope = %q, want sorted coord~rep-b", got)
	}
}

func TestPartitionRuleCutsLinkBothWaysAllOps(t *testing.T) {
	in := New(Plan{Rules: []Rule{PartitionRule("rep-b", "coord")}})
	for _, op := range []string{"propose", "apply", "restore", "finish", "head"} {
		err := in.Visit(LinkScope("coord", "rep-b"), op)
		if err == nil {
			t.Fatalf("op %q crossed the partition", op)
		}
		if !IsTransient(err) {
			t.Fatalf("partition fault for %q not transient", op)
		}
	}
	// Reverse argument order hits the same canonical scope.
	if err := in.Visit(LinkScope("rep-b", "coord"), "propose"); err == nil {
		t.Fatal("reverse-order link scope crossed the partition")
	}
	// Other links and plain device scopes are untouched.
	if err := in.Visit(LinkScope("coord", "rep-a"), "propose"); err != nil {
		t.Fatalf("unrelated link faulted: %v", err)
	}
	if err := in.Visit("rep-b", "apply"); err != nil {
		t.Fatalf("device scope caught by partition rule: %v", err)
	}
}

func TestPartitionRuleIgnoresScopeField(t *testing.T) {
	// A rule with both Partition endpoints set matches by link, even if a
	// stray Scope is also present.
	r := PartitionRule("a", "b")
	r.Scope = "c"
	in := New(Plan{Rules: []Rule{r}})
	if err := in.Visit(LinkScope("a", "b"), "apply"); err == nil {
		t.Fatal("partition endpoints did not take precedence over Scope")
	}
	if err := in.Visit("c", "apply"); err != nil {
		t.Fatalf("Scope matched despite partition endpoints: %v", err)
	}
}
