package faultinject

import "net"

// Conn wraps a net.Conn so the injector can fail or delay reads and
// writes on schedule — the transport-level half of the fault model. An
// injected fault closes the underlying connection (a half-dead TCP session
// looks like a hard close to the peer) and surfaces the classified error.
type Conn struct {
	net.Conn
	inj   *Injector
	scope string
}

// WrapConn attaches the injector to a connection under the given scope.
// Rules with ops "read" and "write" apply; a nil injector returns the
// connection unchanged.
func WrapConn(c net.Conn, inj *Injector, scope string) net.Conn {
	if inj == nil {
		return c
	}
	return &Conn{Conn: c, inj: inj, scope: scope}
}

// Read implements net.Conn with fault injection on the "read" op.
func (c *Conn) Read(p []byte) (int, error) {
	if err := c.inj.Visit(c.scope, "read"); err != nil {
		c.Conn.Close()
		return 0, err
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn with fault injection on the "write" op.
func (c *Conn) Write(p []byte) (int, error) {
	if err := c.inj.Visit(c.scope, "write"); err != nil {
		c.Conn.Close()
		return 0, err
	}
	return c.Conn.Write(p)
}
