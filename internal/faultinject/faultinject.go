// Package faultinject is Heimdall's deterministic fault-injection
// framework. The paper's enforcer exists because production pushes are
// dangerous (§3): devices time out, links flap, the RMM channel drops
// mid-request. This package lets tests and chaos experiments script those
// failures exactly — a seeded Plan of per-scope/per-op rules decides which
// calls fail, how often, with what latency, and whether the failure is
// transient (worth retrying) or permanent — so the same seed always yields
// the same fault schedule and invariant violations reproduce.
//
// The injector plugs into two layers:
//
//   - the enforcer's device-apply path: the push target consults
//     Injector.Visit(device, op) before every apply/restore;
//   - the RMM transport: WrapConn wraps a net.Conn so reads and writes
//     fail or stall on schedule.
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"heimdall/internal/telemetry"
)

// Class classifies an injected failure the way real device errors split:
// transient failures (timeouts, resets, busy devices) deserve a retry,
// permanent ones (rejected config, dead hardware) do not.
type Class int

const (
	// Transient marks failures that a later attempt may not see.
	Transient Class = iota
	// Permanent marks failures every attempt will see.
	Permanent
)

// String returns "transient" or "permanent".
func (c Class) String() string {
	if c == Permanent {
		return "permanent"
	}
	return "transient"
}

// Error is an injected failure. It carries the scope/op it hit and its
// class so callers can classify without string matching.
type Error struct {
	Scope string
	Op    string
	Class Class
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: %s fault on %s/%s", e.Class, e.Scope, e.Op)
}

// TransientFault reports whether the failure is worth retrying. Any error
// type may implement this interface to opt into retry classification.
func (e *Error) TransientFault() bool { return e.Class == Transient }

// transienter is the classification interface IsTransient looks for.
type transienter interface{ TransientFault() bool }

// IsTransient reports whether any error in err's chain declares itself
// transient (implements TransientFault() bool returning true). Errors
// without a classification are treated as permanent: retrying an apply the
// device deterministically rejects only delays the rollback.
func IsTransient(err error) bool {
	for err != nil {
		if t, ok := err.(transienter); ok {
			return t.TransientFault()
		}
		switch x := err.(type) {
		case interface{ Unwrap() error }:
			err = x.Unwrap()
		default:
			return false
		}
	}
	return false
}

// Rule schedules faults for the calls matching Scope and Op. Exactly one
// of the trigger fields (FailNth, FailFirst, Outage) is normally set;
// Latency may accompany any of them or stand alone.
type Rule struct {
	// Scope selects the device or connection the rule applies to.
	// Empty or "*" matches every scope.
	Scope string
	// Op selects the operation ("apply", "restore", "read", "write", ...).
	// Empty or "*" matches every op.
	Op string

	// Partition, when both endpoints are named, matches every op whose
	// scope is the canonical link scope between them (LinkScope), in
	// either direction — a deterministic network split between two
	// replicas or between the coordinator and a replica. A partition rule
	// ignores Scope; combine it with Outage for a split that never heals
	// or FailFirst for one that does.
	Partition [2]string

	// FailNth fails exactly the Nth matching call (1-based), modelling a
	// one-shot glitch.
	FailNth int
	// FailFirst fails the first K matching calls and then recovers,
	// modelling a device that comes back after a reboot.
	FailFirst int
	// Outage fails every matching call: the device is gone for good.
	Outage bool

	// Class classifies the injected failures (default Transient).
	Class Class
	// Latency is added to every matching call before it proceeds or fails.
	Latency time.Duration
}

// matches reports whether the rule covers the given scope and op.
func (r *Rule) matches(scope, op string) bool {
	if r.Op != "" && r.Op != "*" && r.Op != op {
		return false
	}
	if r.Partition[0] != "" && r.Partition[1] != "" {
		return scope == LinkScope(r.Partition[0], r.Partition[1])
	}
	return r.Scope == "" || r.Scope == "*" || r.Scope == scope
}

// LinkScope canonicalises the scope name of the link between two
// endpoints: the same string regardless of direction, so a partition rule
// drops a→b and b→a ops alike. Layers that model inter-replica traffic
// visit the injector with this scope.
func LinkScope(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return a + "~" + b
}

// PartitionRule drops every op between the two named endpoints until the
// plan is replaced — the deterministic network-split primitive the
// replicated-enforcer schedule sweeps use. Partition faults are classified
// transient: splits heal, and a coordinator should keep trying.
func PartitionRule(a, b string) Rule {
	return Rule{Partition: [2]string{a, b}, Op: "*", Outage: true, Class: Transient}
}

// Plan is a complete fault schedule: an ordered rule list. Rules are
// evaluated in order per call; latency accumulates across every matching
// rule and the first rule whose trigger fires decides the failure.
type Plan struct {
	Rules []Rule
}

// Injector executes a Plan deterministically. It is safe for concurrent
// use; per-rule hit counters make schedules independent of wall-clock time.
type Injector struct {
	mu       sync.Mutex
	rules    []Rule
	hits     []int // per-rule count of matching calls
	calls    map[string]int
	injected int
	meter    telemetry.Meter
	sleep    func(time.Duration)
}

// New builds an injector for the plan. A nil-rule plan injects nothing.
func New(plan Plan) *Injector {
	return &Injector{
		rules: append([]Rule(nil), plan.Rules...),
		hits:  make([]int, len(plan.Rules)),
		calls: make(map[string]int),
		meter: telemetry.Nop(),
		sleep: time.Sleep,
	}
}

// SetMeter wires the heimdall_faults_injected_total counter.
func (in *Injector) SetMeter(m telemetry.Meter) {
	if m == nil {
		m = telemetry.Nop()
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.meter = m
}

// SetSleep replaces the latency sink (tests use a recording fake so added
// latency never slows the suite).
func (in *Injector) SetSleep(f func(time.Duration)) {
	if f == nil {
		f = time.Sleep
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sleep = f
}

// Visit records one call on (scope, op) and returns the scheduled fault,
// or nil when the call should proceed. Latency from matching rules is
// applied before returning.
func (in *Injector) Visit(scope, op string) error {
	in.mu.Lock()
	in.calls[scope+"/"+op]++
	var delay time.Duration
	var fault *Error
	for i := range in.rules {
		r := &in.rules[i]
		if !r.matches(scope, op) {
			continue
		}
		in.hits[i]++
		delay += r.Latency
		if fault != nil {
			continue
		}
		n := in.hits[i]
		if r.Outage || (r.FailNth > 0 && n == r.FailNth) || (r.FailFirst > 0 && n <= r.FailFirst) {
			fault = &Error{Scope: scope, Op: op, Class: r.Class}
		}
	}
	sleep := in.sleep
	meter := in.meter
	if fault != nil {
		in.injected++
		meter.Counter("heimdall_faults_injected_total",
			telemetry.L("op", op), telemetry.L("class", fault.Class.String())).Inc()
	}
	in.mu.Unlock()
	if delay > 0 {
		sleep(delay)
	}
	if fault != nil {
		return fault
	}
	return nil
}

// Injected returns how many faults the injector has delivered.
func (in *Injector) Injected() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// Calls returns how many calls (scope, op) has received, faulted or not.
func (in *Injector) Calls(scope, op string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls[scope+"/"+op]
}

// RandomPlan derives a fault schedule from a seed: for each scope it rolls
// zero or more rules over the given ops, mixing one-shot, fail-then-recover
// and outage triggers with both classes and occasional latency. The same
// (seed, scopes, ops) always yields the same plan, which is what makes the
// chaos suite reproducible.
func RandomPlan(seed int64, scopes, ops []string) Plan {
	rng := rand.New(rand.NewSource(seed))
	var plan Plan
	for _, scope := range scopes {
		for _, op := range ops {
			switch rng.Intn(4) {
			case 0:
				// No rule: this scope/op behaves.
			case 1:
				plan.Rules = append(plan.Rules, Rule{
					Scope: scope, Op: op,
					FailNth: 1 + rng.Intn(3),
					Class:   Class(rng.Intn(2)),
				})
			case 2:
				plan.Rules = append(plan.Rules, Rule{
					Scope: scope, Op: op,
					FailFirst: 1 + rng.Intn(2),
					Class:     Transient,
					Latency:   time.Duration(rng.Intn(3)) * time.Millisecond,
				})
			case 3:
				plan.Rules = append(plan.Rules, Rule{
					Scope: scope, Op: op,
					Outage: true,
					Class:  Class(rng.Intn(2)),
				})
			}
		}
	}
	return plan
}
