package enforcer

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"testing"

	"heimdall/internal/config"
	"heimdall/internal/enclave"
	"heimdall/internal/journal"
	"heimdall/internal/netmodel"
	"heimdall/internal/privilege"
	"heimdall/internal/scenarios"
)

// crashSpec authorizes everything: crash recovery is about push
// resilience, not privilege.
func crashSpec() *privilege.Spec {
	return &privilege.Spec{Ticket: "CRASH", Technician: "op",
		Rules: []privilege.Rule{{Effect: privilege.AllowEffect, Action: "*", Resource: "*"}}}
}

// neutralChanges builds a small committing change set for any scenario
// network: inert VLAN definitions plus a no-op ACL permit inserted between
// an existing deny and the trailing permit-all, so every policy keeps its
// verdict and post-verify passes.
func neutralChanges(t *testing.T, n *netmodel.Network) []config.Change {
	t.Helper()
	var changes []config.Change
	var vlanDevs []string
	for _, name := range n.RoutersAndSwitches() {
		if len(vlanDevs) < 2 {
			vlanDevs = append(vlanDevs, name)
		}
	}
	for i, name := range vlanDevs {
		changes = append(changes, config.Change{Device: name, Op: config.OpSetVLAN,
			VLAN: &netmodel.VLAN{ID: 900 + i, Name: fmt.Sprintf("chaos-%d", i)}})
	}
	// Find an ACL that ends in a permit-all (seq 30 in both scenarios)
	// and add a neutral permit at seq 25.
	for _, name := range n.DeviceNames() {
		d := n.Devices[name]
		for acl, a := range d.ACLs {
			for _, e := range a.Entries {
				if e.Seq == 30 && e.Action == netmodel.Permit {
					changes = append(changes, config.Change{Device: name, Op: config.OpAddACLEntry,
						ACLName: acl, Entry: &netmodel.ACLEntry{Seq: 25, Action: netmodel.Permit,
							Proto: netmodel.TCP, Dst: netip.MustParsePrefix("203.0.113.0/24"), DstPort: 443}})
					return changes
				}
			}
		}
	}
	if len(changes) == 0 {
		t.Fatal("no neutral changes derivable for scenario")
	}
	return changes
}

// newCrashEnforcer builds an enforcer on a fixed platform seed so a
// "rebooted" instance derives the same journal and trail keys.
func newCrashEnforcer(scen *scenarios.Scenario) *Enforcer {
	platform := enclave.NewPlatformFromSeed("crash-test")
	encl := platform.Load("heimdall-enforcer-v1")
	return New(encl, scen.Policies)
}

// TestRecoverEveryCrashPoint runs a clean commit on each seed scenario,
// then simulates a crash after every journal record boundary: production
// is reconstructed to exactly what the pipeline had pushed at that point,
// a fresh enforcer imports the surviving journal prefix, and Recover must
// land on the same final production state as the uninterrupted run.
func TestRecoverEveryCrashPoint(t *testing.T) {
	for _, load := range []func() *scenarios.Scenario{scenarios.Enterprise, scenarios.University} {
		scen := load()
		pre := scen.Network.Clone()
		changes := neutralChanges(t, scen.Network)

		// Uninterrupted run.
		e := newCrashEnforcer(scen)
		if _, err := e.Commit(scen.Network, changes, crashSpec()); err != nil {
			t.Fatalf("%s: uninterrupted commit failed: %v", scen.Name, err)
		}
		finalFP := fingerprint(scen.Network)
		full := e.Journal().Records()
		ordered := full[0].Changes // the scheduled set the journal replays

		for k := 1; k <= len(full); k++ {
			prefix := full[:k]
			// Reconstruct production as the crash left it: pre-state plus
			// every change the journal prefix records as applied.
			state := pre.Clone()
			committedSeen := false
			for _, r := range prefix {
				switch r.Kind {
				case journal.KindApplied:
					if err := config.ApplyChange(state.Devices[ordered[r.ChangeIndex].Device], ordered[r.ChangeIndex]); err != nil {
						t.Fatalf("%s: replaying applied record: %v", scen.Name, err)
					}
				case journal.KindCommitted:
					committedSeen = true
				}
			}

			// Reboot: a fresh enforcer imports the authenticated prefix.
			e2 := newCrashEnforcer(scen)
			data, err := json.Marshal(prefix)
			if err != nil {
				t.Fatal(err)
			}
			j, err := journal.Import(e2.JournalKey(), data)
			if err != nil {
				t.Fatalf("%s: crash point %d: journal rejected: %v", scen.Name, k, err)
			}
			e2.SetJournal(j)
			rep, err := e2.Recover(state)
			if err != nil {
				t.Fatalf("%s: crash point %d: recover: %v", scen.Name, k, err)
			}
			wantAction := "committed"
			if committedSeen {
				wantAction = "none"
			}
			if rep.Action != wantAction {
				t.Fatalf("%s: crash point %d: action = %s, want %s", scen.Name, k, rep.Action, wantAction)
			}
			if got := fingerprint(state); got != finalFP {
				t.Fatalf("%s: crash point %d: recovered state differs from uninterrupted run", scen.Name, k)
			}
			// The journal is settled and verifiable; recovery is idempotent.
			if err := e2.Journal().Verify(); err != nil {
				t.Fatalf("%s: crash point %d: %v", scen.Name, k, err)
			}
			if intent, _ := e2.Journal().Open(); intent != nil {
				t.Fatalf("%s: crash point %d: commit still open after recovery", scen.Name, k)
			}
			again, err := e2.Recover(state)
			if err != nil || again.Action != "none" {
				t.Fatalf("%s: crash point %d: second recover = %+v, %v", scen.Name, k, again, err)
			}
		}
	}
}

// TestRecoverNothingOpen: a journal with only settled commits is a no-op.
func TestRecoverNothingOpen(t *testing.T) {
	n := prod()
	e := newEnforcer(n)
	if _, err := e.Commit(n, []config.Change{benignChange(15, 443)}, aclSpec()); err != nil {
		t.Fatal(err)
	}
	fp := fingerprint(n)
	rep, err := e.Recover(n)
	if err != nil || rep.Action != "none" {
		t.Fatalf("Recover = %+v, %v, want none", rep, err)
	}
	if fingerprint(n) != fp {
		t.Fatal("no-op recovery mutated production")
	}
}

// TestRecoverTamperedJournalRejected: recovery must never trust a forged
// journal — Import authenticates before Recover sees it.
func TestRecoverTamperedJournalRejected(t *testing.T) {
	n := prod()
	e := newEnforcer(n)
	// Leave a commit open by crashing after intent: simulate by exporting
	// a prefix of a full run.
	if _, err := e.Commit(n, []config.Change{benignChange(15, 443)}, aclSpec()); err != nil {
		t.Fatal(err)
	}
	full := e.Journal().Records()
	prefix := full[:1]
	// Forge the pre-state to point recovery at a different config.
	prefix[0].PreState = map[string]string{"r1": "! kind: router\nhostname r1\n"}
	data, _ := json.Marshal(prefix)
	if _, err := journal.Import(e.JournalKey(), data); err == nil {
		t.Fatal("forged journal prefix imported")
	}
}
