package enforcer

// Conflict mediation: two tickets racing on overlapping parts of the
// network are a classic MSP failure mode — each change verifies against
// the state it saw, but the loser's verification is stale the moment the
// winner lands. Commits are already serialized by commitMu, which keeps
// production consistent; mediation makes the race *visible and governed*:
// the scope of a commit (the devices it touches plus every device on the
// forwarding path of any policy the change could affect, via
// verify.AffectedBy) is reserved before the commit runs, an overlapping
// ticket is either serialized behind the holder or rejected, and either
// verdict lands on the audit trail under the losing ticket.

import (
	"fmt"
	"sort"
	"sync"

	"heimdall/internal/audit"
	"heimdall/internal/config"
	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
	"heimdall/internal/privilege"
	"heimdall/internal/telemetry"
	"heimdall/internal/verify"
)

// ConflictPolicy selects how a commit whose scope overlaps an in-flight
// reservation is mediated.
type ConflictPolicy int

const (
	// MediateOff (the zero value) disables mediation: commits still
	// serialize on commitMu, but overlaps are neither audited nor refused.
	// Mediation is opt-in because computing a commit's scope costs a
	// dataplane snapshot per reservation.
	MediateOff ConflictPolicy = iota
	// MediateSerialize parks the later ticket until the holder releases,
	// with an audited "serialized" verdict.
	MediateSerialize
	// MediateReject refuses the later ticket outright with an audited
	// rejection; the technician must re-review against the post-winner
	// network state.
	MediateReject
)

// String names the policy.
func (p ConflictPolicy) String() string {
	switch p {
	case MediateSerialize:
		return "serialize"
	case MediateReject:
		return "reject"
	default:
		return "off"
	}
}

// commitScope computes the device scope a change set contends on: the
// devices it touches plus every device on the trace of a policy whose
// traffic the change could affect. Taking commitMu makes the read of prod
// safe against an in-flight commit.
func (e *Enforcer) commitScope(prod *netmodel.Network, changes []config.Change) map[string]bool {
	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	touched := make(map[string]bool)
	for _, c := range changes {
		touched[c.Device] = true
	}
	scope := make(map[string]bool, len(touched))
	for d := range touched {
		scope[d] = true
	}
	snap := dataplane.ComputeWithOptions(prod, dataplane.Options{Meter: e.meter})
	for _, p := range verify.AffectedBy(snap, e.policies, touched) {
		tr, err := snap.Reach(p.Src, p.Dst, p.Proto, p.DstPort)
		if err != nil || tr == nil {
			continue
		}
		for _, h := range tr.Hops {
			scope[h.Device] = true
		}
	}
	return scope
}

// overlap returns the sorted devices two scopes share.
func overlap(a, b map[string]bool) []string {
	var out []string
	for d := range a {
		if b[d] {
			out = append(out, d)
		}
	}
	sort.Strings(out)
	return out
}

// Reserve claims the commit scope of a change set for a ticket before its
// commit runs. If the scope overlaps another ticket's live reservation the
// conflict is mediated per e.Conflict: serialized (block until the holder
// releases) or rejected — both with an audited verdict under the losing
// ticket. The returned release function must be called when the ticket is
// done (idempotent). Commit reserves automatically; call Reserve directly
// to hold a scope across review + commit.
func (e *Enforcer) Reserve(prod *netmodel.Network, changes []config.Change, spec *privilege.Spec) (func(), error) {
	if e.Conflict == MediateOff {
		return func() {}, nil
	}
	scope := e.commitScope(prod, changes)
	e.scopeMu.Lock()
	defer e.scopeMu.Unlock()
	if e.scopeCond == nil {
		e.scopeCond = sync.NewCond(&e.scopeMu)
	}
	if e.reservations == nil {
		e.reservations = make(map[string]map[string]bool)
	}
	serialized := false
	for {
		holder, shared := e.findConflict(spec.Ticket, scope)
		if holder == "" {
			break
		}
		if e.Conflict == MediateReject {
			e.meter.Counter("heimdall_enforcer_conflicts_total", telemetry.L("verdict", "rejected")).Inc()
			e.trail.Append(spec.Ticket, spec.Technician, audit.KindSession,
				fmt.Sprintf("CONFLICT: scope overlaps in-flight ticket %s on %v; rejected", holder, shared), false)
			return nil, fmt.Errorf("enforcer: ticket %s conflicts with in-flight ticket %s on devices %v",
				spec.Ticket, holder, shared)
		}
		if !serialized {
			serialized = true
			e.meter.Counter("heimdall_enforcer_conflicts_total", telemetry.L("verdict", "serialized")).Inc()
			e.trail.Append(spec.Ticket, spec.Technician, audit.KindSession,
				fmt.Sprintf("CONFLICT: scope overlaps in-flight ticket %s on %v; serialized behind it", holder, shared), true)
		}
		e.scopeCond.Wait()
	}
	e.reservations[spec.Ticket] = scope
	released := false
	return func() {
		e.scopeMu.Lock()
		defer e.scopeMu.Unlock()
		if released {
			return
		}
		released = true
		delete(e.reservations, spec.Ticket)
		e.scopeCond.Broadcast()
	}, nil
}

// findConflict returns the first other ticket (in sorted order, for
// deterministic verdicts) whose reservation overlaps the scope.
func (e *Enforcer) findConflict(ticket string, scope map[string]bool) (string, []string) {
	holders := make([]string, 0, len(e.reservations))
	for t := range e.reservations {
		holders = append(holders, t)
	}
	sort.Strings(holders)
	for _, t := range holders {
		if t == ticket {
			continue
		}
		if shared := overlap(scope, e.reservations[t]); len(shared) > 0 {
			return t, shared
		}
	}
	return "", nil
}

// reserveForCommit auto-reserves for Commit/CommitApproved, unless the
// ticket already holds a reservation (taken via Reserve) — then the commit
// runs under the existing claim and its release stays with the caller.
func (e *Enforcer) reserveForCommit(prod *netmodel.Network, changes []config.Change, spec *privilege.Spec) (func(), error) {
	if e.Conflict == MediateOff {
		return func() {}, nil
	}
	e.scopeMu.Lock()
	_, held := e.reservations[spec.Ticket]
	e.scopeMu.Unlock()
	if held {
		return func() {}, nil
	}
	return e.Reserve(prod, changes, spec)
}
