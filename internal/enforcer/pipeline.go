package enforcer

// The resilient commit pipeline: production pushes go through a Target
// with per-change retry/backoff, every step is journaled write-ahead, and
// rollback is itself retried — if rollback cannot restore a device the
// enforcer degrades to a quarantined state instead of pretending. The
// invariant the chaos suite proves: after any fault schedule production is
// either fully committed or fully rolled back, never silently partial, and
// the journal + audit trail say which.

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"heimdall/internal/audit"
	"heimdall/internal/config"
	"heimdall/internal/dataplane"
	"heimdall/internal/faultinject"
	"heimdall/internal/journal"
	"heimdall/internal/netmodel"
	"heimdall/internal/telemetry"
	"heimdall/internal/verify"
)

// Target abstracts the device-push path of a commit: today an in-memory
// production network, later an RMM-backed channel to real devices. Apply
// and RestoreDevice may fail transiently (see faultinject.IsTransient);
// the pipeline retries around them.
type Target interface {
	// Apply pushes one change to the production device it names.
	Apply(c config.Change) error
	// RestoreDevice replaces a device's running state with the given
	// pre-change snapshot (rollback and recovery).
	RestoreDevice(name string, d *netmodel.Device) error
}

// ReplicationHooks is the optional second interface of a Target that
// replicates the commit pipeline (internal/replica). The pipeline calls
// BeginCommit after the intent record is journaled and before the first
// device push; an error aborts the commit pre-push with a journaled
// rollback — that is how a replica group vetoes a commit that cannot
// reach quorum. Every subsequent journal record of the commit (applied
// and the terminal record) is handed to MirrorRecord so replicas can
// extend their own journal copies verbatim, keeping honest replica
// chains bit-identical to the coordinator's by construction.
type ReplicationHooks interface {
	// BeginCommit proposes the journaled intent to the replica group and
	// gathers verify votes. A non-nil error means quorum was not reached;
	// its message becomes the rollback reason on every journal copy.
	BeginCommit(intent journal.Record) error
	// MirrorRecord distributes one post-intent record of the in-flight
	// commit. It must tolerate replicas that have dropped out mid-commit.
	MirrorRecord(rec journal.Record)
}

// mirrorTo forwards rec to the target's replication hooks, when present.
func mirrorTo(tgt Target, rec journal.Record) {
	if hooks, ok := tgt.(ReplicationHooks); ok {
		hooks.MirrorRecord(rec)
	}
}

// memTarget is the in-memory production target, optionally gated by a
// fault injector on the "apply" and "restore" ops.
type memTarget struct {
	net *netmodel.Network
	inj *faultinject.Injector
}

func (t *memTarget) Apply(c config.Change) error {
	if t.inj != nil {
		if err := t.inj.Visit(c.Device, "apply"); err != nil {
			return err
		}
	}
	d := t.net.Devices[c.Device]
	if d == nil {
		return fmt.Errorf("enforcer: no production device %q", c.Device)
	}
	return config.ApplyChange(d, c)
}

func (t *memTarget) RestoreDevice(name string, d *netmodel.Device) error {
	if t.inj != nil {
		if err := t.inj.Visit(name, "restore"); err != nil {
			return err
		}
	}
	t.net.Devices[name] = d
	return nil
}

// RetryPolicy controls per-change push retries. The zero value means the
// defaults; only transient failures (faultinject.IsTransient) are retried.
type RetryPolicy struct {
	// MaxAttempts bounds tries per operation (default 3).
	MaxAttempts int
	// BaseBackoff is the delay after the first failure; it doubles per
	// attempt (default 50ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the per-attempt delay (default 1s).
	MaxBackoff time.Duration
	// OpTimeout bounds the wall-clock budget of one operation including
	// its retries (default 5s).
	OpTimeout time.Duration
	// JitterSeed seeds the backoff jitter so fault schedules replay
	// identically (default 1).
	JitterSeed int64
	// Sleep is the backoff sink; nil means time.Sleep. Tests install a
	// recording fake so chaos schedules run at full speed.
	Sleep func(time.Duration)
}

// withDefaults fills zero fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	if p.OpTimeout <= 0 {
		p.OpTimeout = 5 * time.Second
	}
	if p.JitterSeed == 0 {
		p.JitterSeed = 1
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// backoff returns the jittered delay before the given retry (attempt is
// the 1-based number of the attempt that just failed).
func (p RetryPolicy) backoff(attempt int, rng *rand.Rand) time.Duration {
	d := p.BaseBackoff << (attempt - 1)
	if d > p.MaxBackoff || d <= 0 {
		d = p.MaxBackoff
	}
	// Jitter in [d/2, d): desynchronises retries against a recovering
	// device without ever exceeding the cap.
	return d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
}

// pushOp runs one target operation with retry, backoff and the per-op
// timeout. phase labels the retry counter ("apply" or "rollback").
func (e *Enforcer) pushOp(p RetryPolicy, rng *rand.Rand, phase string, op func() error) error {
	start := time.Now()
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil {
			return nil
		}
		if !faultinject.IsTransient(err) || attempt >= p.MaxAttempts ||
			time.Since(start) >= p.OpTimeout {
			return err
		}
		e.meter.Counter("heimdall_enforcer_push_retries_total",
			telemetry.L("phase", phase)).Inc()
		p.Sleep(p.backoff(attempt, rng))
	}
}

// SetInjector gates the default in-memory target with a fault injector
// (chaos tests and drills). A nil injector removes the gate.
func (e *Enforcer) SetInjector(inj *faultinject.Injector) {
	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	e.injector = inj
}

// SetTarget replaces the production push path (e.g. an RMM-backed
// target). The target must mutate the same *netmodel.Network that Commit
// receives, because post-apply verification recomputes from it. A nil
// target restores the built-in in-memory path.
func (e *Enforcer) SetTarget(t Target) {
	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	e.target = t
}

// pushTarget returns the Target for the given production network.
// Callers hold commitMu.
func (e *Enforcer) pushTarget(prod *netmodel.Network) Target {
	if e.target != nil {
		return e.target
	}
	return &memTarget{net: prod, inj: e.injector}
}

// Journal returns the enforcer's write-ahead commit journal.
func (e *Enforcer) Journal() *journal.Journal { return e.journal }

// SetJournal replaces the commit journal — recovery after a crash imports
// the surviving journal (authenticated under JournalKey) and hands it to a
// fresh enforcer.
func (e *Enforcer) SetJournal(j *journal.Journal) {
	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	e.journal = j
}

// JournalKey returns a copy of the journal HMAC key (released, like the
// trail key, only over the attested channel).
func (e *Enforcer) JournalKey() []byte {
	k := e.encl.DeriveKey("commit-journal")
	return append([]byte(nil), k...)
}

// Quarantined reports whether a failed rollback left production in the
// degraded state, and why. While quarantined the enforcer refuses new
// commits; Recover clears the state by restoring consistency.
func (e *Enforcer) Quarantined() (bool, string) {
	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	return e.quarantined, e.quarReason
}

// touchedDevices returns the sorted unique device names of a change set.
func touchedDevices(changes []config.Change) []string {
	seen := make(map[string]bool)
	var out []string
	for _, c := range changes {
		if !seen[c.Device] {
			seen[c.Device] = true
			out = append(out, c.Device)
		}
	}
	sort.Strings(out)
	return out
}

// preState renders the canonical pre-change configuration of every device
// the change set touches, for the journal's intent record.
func preState(backup *netmodel.Network, changes []config.Change) map[string]string {
	pre := make(map[string]string)
	for _, name := range touchedDevices(changes) {
		if d := backup.Devices[name]; d != nil {
			pre[name] = config.Print(d)
		}
	}
	return pre
}

// rollbackPush restores every touched device from the backup through the
// target, retrying each restore. If any device cannot be restored the
// enforcer quarantines instead of leaving a silent partial state. It
// returns the terminal outcome ("rolled-back" or "quarantined"). Callers
// hold commitMu.
func (e *Enforcer) rollbackPush(tgt Target, p RetryPolicy, rng *rand.Rand, backup *netmodel.Network, devices []string, spec specIdent, cid, why string) string {
	// Production was (partially) mutated before the rollback began; even a
	// clean restore replaces device objects, and a failed one leaves
	// partial state — either way no cached verdict may survive.
	defer e.InvalidateReviews()
	var restored, failed []string
	for _, name := range devices {
		d := backup.Devices[name]
		if d == nil {
			continue
		}
		err := e.pushOp(p, rng, "rollback", func() error {
			return tgt.RestoreDevice(name, d.Clone())
		})
		if err != nil {
			failed = append(failed, name)
		} else {
			restored = append(restored, name)
		}
	}
	if len(failed) > 0 {
		e.quarantined = true
		e.quarReason = fmt.Sprintf("rollback failed on %v (%s)", failed, why)
		mirrorTo(tgt, e.journal.Quarantined(cid, restored, failed, why))
		e.trail.Append(spec.ticket, spec.technician, audit.KindSession,
			fmt.Sprintf("QUARANTINE: rollback failed on %v: %s", failed, why), false)
		e.meter.Counter("heimdall_enforcer_quarantines_total").Inc()
		return "quarantined"
	}
	mirrorTo(tgt, e.journal.RolledBack(cid, restored, why))
	e.trail.Append(spec.ticket, spec.technician, audit.KindChange, "ROLLBACK: "+why, false)
	e.meter.Counter("heimdall_enforcer_rollbacks_total").Inc()
	return "rolled-back"
}

// specIdent is the (ticket, technician) identity trail entries carry.
type specIdent struct{ ticket, technician string }

// RecoveryReport describes what Recover did.
type RecoveryReport struct {
	// Commit is the journal commit id that was open, or "" when the
	// journal had no unfinished commit.
	Commit string
	// Action is "none", "committed" or "rolled-back".
	Action string
	// Changes is how many changes the recovered commit carried.
	Changes int
}

// Recover completes or undoes a commit the journal left open — the state
// a crash between the intent record and the terminal record leaves behind.
// It restores every touched device to its journaled pre-state, replays the
// full scheduled change set, and re-runs post-apply verification: the
// outcome (and the final production state) is therefore identical to the
// uninterrupted run, whichever record the crash interrupted. Recovery runs
// without the fault injector — it models the operator-driven repair path —
// and clears a quarantine once production is consistent again.
func (e *Enforcer) Recover(prod *netmodel.Network) (*RecoveryReport, error) {
	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	intent, _ := e.journal.Open()
	if intent == nil {
		return &RecoveryReport{Action: "none"}, nil
	}
	// Recovery rewrites production (pre-state restore, then replay); no
	// verdict cached against the interrupted state may survive it,
	// whichever way it ends.
	defer e.InvalidateReviews()
	e.meter.Counter("heimdall_enforcer_recoveries_total").Inc()
	id := specIdent{intent.Ticket, intent.Technician}
	restore := func() error {
		for _, name := range sortedKeys(intent.PreState) {
			d, err := config.Parse(name, intent.PreState[name])
			if err != nil {
				return fmt.Errorf("enforcer: recovery: parsing pre-state of %s: %w", name, err)
			}
			prod.Devices[name] = d
		}
		return nil
	}
	if err := restore(); err != nil {
		return nil, err
	}
	e.journal.Recovered(intent.Commit, fmt.Sprintf("restored pre-state of %d devices; replaying %d changes",
		len(intent.PreState), len(intent.Changes)))
	rep := &RecoveryReport{Commit: intent.Commit, Changes: len(intent.Changes)}
	for i, c := range intent.Changes {
		d := prod.Devices[c.Device]
		var err error
		if d == nil {
			err = fmt.Errorf("enforcer: no production device %q", c.Device)
		} else {
			err = config.ApplyChange(d, c)
		}
		if err != nil {
			if rerr := restore(); rerr != nil {
				return nil, rerr
			}
			e.journal.RolledBack(intent.Commit, sortedKeys(intent.PreState),
				fmt.Sprintf("recovery replay failed at change %d: %v", i, err))
			e.trail.Append(id.ticket, id.technician, audit.KindChange,
				fmt.Sprintf("ROLLBACK: recovery replay failed: %v", err), false)
			e.meter.Counter("heimdall_enforcer_rollbacks_total").Inc()
			e.quarantined = false
			e.quarReason = ""
			rep.Action = "rolled-back"
			return rep, nil
		}
		e.journal.Applied(intent.Commit, i, c.String())
	}
	post := verify.CheckMetered(dataplane.ComputeWithOptions(prod, dataplane.Options{Meter: e.meter}), e.policies, e.meter)
	if !post.OK() {
		if err := restore(); err != nil {
			return nil, err
		}
		why := fmt.Sprintf("post-apply verification failed during recovery: %d violations", len(post.Violations))
		e.journal.RolledBack(intent.Commit, sortedKeys(intent.PreState), why)
		e.trail.Append(id.ticket, id.technician, audit.KindChange, "ROLLBACK: "+why, false)
		e.meter.Counter("heimdall_enforcer_rollbacks_total").Inc()
		e.quarantined = false
		e.quarReason = ""
		rep.Action = "rolled-back"
		return rep, nil
	}
	e.journal.Committed(intent.Commit, fmt.Sprintf("recovered: %d changes replayed", len(intent.Changes)))
	e.trail.Append(id.ticket, id.technician, audit.KindSession,
		fmt.Sprintf("recovered commit %s: %d changes replayed to production", intent.Commit, len(intent.Changes)), true)
	e.quarantined = false
	e.quarReason = ""
	rep.Action = "committed"
	return rep, nil
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
