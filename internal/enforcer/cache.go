package enforcer

// The content-addressed review cache. The MSP workload is dominated by
// near-duplicate change sets: many technicians replay the same scenario
// template against the same customer network, so the same (production
// snapshot, change set, privilege rules) triple is reviewed over and over.
// Each such review pays a full shadow-snapshot derivation plus policy
// verification even though the verdict is a pure function of its inputs.
//
// The cache keys on content, not identity: production-mutation version ×
// privilege-rules digest × canonical change-set digest (plus the network
// pointer, so one enforcer fronting two networks never cross-serves). Any
// path that mutates production — a committed change set, a rollback, a
// quarantine, recovery, or an out-of-band mutation reported through
// InvalidateReviews — bumps the version, which orphans every prior key.
//
// A cached hit is observably identical to a fresh review: it appends the
// same audit-trail entry (message and outcome recorded alongside the
// verdict), bumps the same review counters, and returns a decision whose
// JSON serialization is byte-for-byte the fresh result, including the
// ReportDeltas reachability diff. Only the verify-latency histogram is
// skipped, so that metric keeps measuring real verifications.
//
// The cache is opt-in because Review takes the production network as a
// parameter: callers that mutate networks behind the enforcer's back (the
// chaos suites do, deliberately) must not enable it, or must route every
// mutation through InvalidateReviews. The service layer does the latter.

import (
	"fmt"
	"sync"

	"heimdall/internal/audit"
	"heimdall/internal/config"
	"heimdall/internal/netmodel"
	"heimdall/internal/privilege"
	"heimdall/internal/verify"
)

// defaultReviewCacheCap bounds retained verdicts when EnableReviewCache
// is given no capacity. Entries are small (a Decision plus its trail
// line); the bound exists to stop a scripted load from growing the map
// without limit across privilege-spec variants.
const defaultReviewCacheCap = 256

// reviewCacheEntry is one memoized verdict: the decision plus the exact
// audit-trail line the fresh review produced, so a hit replays it.
type reviewCacheEntry struct {
	decision *Decision
	trailMsg string
	trailOK  bool
}

// reviewCache is a bounded FIFO map of verdicts. FIFO (not LRU) keeps
// eviction O(1) and is near-optimal here: invalidation happens by version
// bump, so surviving entries are all the same age class.
type reviewCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]reviewCacheEntry
	order   []string
}

func newReviewCache(capacity int) *reviewCache {
	if capacity <= 0 {
		capacity = defaultReviewCacheCap
	}
	return &reviewCache{cap: capacity, entries: make(map[string]reviewCacheEntry)}
}

func (rc *reviewCache) get(key string) (reviewCacheEntry, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	ent, ok := rc.entries[key]
	return ent, ok
}

func (rc *reviewCache) put(key string, ent reviewCacheEntry) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if _, exists := rc.entries[key]; !exists {
		rc.order = append(rc.order, key)
	}
	rc.entries[key] = ent
	for len(rc.entries) > rc.cap && len(rc.order) > 0 {
		oldest := rc.order[0]
		rc.order = rc.order[1:]
		delete(rc.entries, oldest)
	}
}

func (rc *reviewCache) clear() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.entries = make(map[string]reviewCacheEntry)
	rc.order = nil
}

// EnableReviewCache turns on verdict memoization with the given capacity
// (<= 0 means defaultReviewCacheCap). Enable it before the enforcer sees
// concurrent reviews, and only when every production mutation is visible
// to the enforcer (its own commit pipeline, or InvalidateReviews).
func (e *Enforcer) EnableReviewCache(capacity int) {
	e.reviews.Store(newReviewCache(capacity))
}

// InvalidateReviews discards every cached review verdict by bumping the
// production version. Call it after mutating production outside the
// enforcer's commit pipeline (maintenance edits, emergency sessions). The
// commit pipeline calls it itself on every path that touches production.
func (e *Enforcer) InvalidateReviews() {
	e.prodVersion.Add(1)
	if rc := e.reviews.Load(); rc != nil {
		rc.clear()
	}
}

// ReviewKey returns the content address a review of (changes, spec) would
// occupy right now: production version, privilege-rules digest, canonical
// change-set digest. Two calls return the same key exactly when the
// enforcer would serve them the same verdict, which is what the service
// layer's request coalescing keys on. The key changes on every production
// mutation, so it is only meaningful for the duration of one submission.
func (e *Enforcer) ReviewKey(changes []config.Change, spec *privilege.Spec) string {
	return fmt.Sprintf("v%d|%s|%s", e.prodVersion.Load(), spec.RulesDigest(), verify.ChangeSetDigest(changes))
}

// clone returns a decision whose slices are independent of the original,
// so a cached verdict can be handed out repeatedly while callers (the
// commit pipeline mutates Accepted/Violations on post-apply failure)
// remain free to modify their copy.
func (d *Decision) clone() *Decision {
	c := *d
	c.Unauthorized = append([]config.Change(nil), d.Unauthorized...)
	c.Violations = append([]verify.Violation(nil), d.Violations...)
	c.Deltas = append([]verify.Delta(nil), d.Deltas...)
	return &c
}

// ReviewCached is Review plus a hit indicator: true means the verdict was
// served from the cache (the audit trail and review counters are updated
// identically either way). With the cache disabled it always computes and
// reports false.
func (e *Enforcer) ReviewCached(prod *netmodel.Network, changes []config.Change, spec *privilege.Spec) (*Decision, bool) {
	rc := e.reviews.Load()
	if rc == nil {
		d, msg, ok := e.reviewCompute(prod, changes, spec)
		e.trail.Append(spec.Ticket, spec.Technician, audit.KindVerify, msg, ok)
		e.countReview(d.Accepted)
		return d, false
	}
	// The network pointer joins the key so an enforcer reviewing against
	// two different networks (tests do) never serves one's verdict for the
	// other. The key is computed once, before the review: the version it
	// captures is the one the verdict is valid for.
	key := fmt.Sprintf("%p|%s", prod, e.ReviewKey(changes, spec))
	if ent, hit := rc.get(key); hit {
		e.trail.Append(spec.Ticket, spec.Technician, audit.KindVerify, ent.trailMsg, ent.trailOK)
		e.countReview(ent.decision.Accepted)
		e.meter.Counter("heimdall_enforcer_review_cache_hits_total").Inc()
		return ent.decision.clone(), true
	}
	d, msg, ok := e.reviewCompute(prod, changes, spec)
	e.trail.Append(spec.Ticket, spec.Technician, audit.KindVerify, msg, ok)
	e.countReview(d.Accepted)
	e.meter.Counter("heimdall_enforcer_review_cache_misses_total").Inc()
	rc.put(key, reviewCacheEntry{decision: d.clone(), trailMsg: msg, trailOK: ok})
	return d, false
}
