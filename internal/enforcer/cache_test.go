package enforcer

import (
	"encoding/json"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"heimdall/internal/audit"
	"heimdall/internal/config"
	"heimdall/internal/faultinject"
	"heimdall/internal/netmodel"
)

// decisionJSON serializes a decision the way the service layer's HTTP
// responses do, so "byte-identical" below means what a client observes.
func decisionJSON(t *testing.T, d *Decision) string {
	t.Helper()
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// maliciousPermit opens the sensitive subnet (h3) behind the GUARD ACL —
// the review is rejected with violations and counterexample traces.
func maliciousPermit() config.Change {
	return config.Change{
		Device: "r1", Op: config.OpAddACLEntry, ACLName: "GUARD",
		Entry: &netmodel.ACLEntry{Seq: 5, Action: netmodel.Permit, Proto: netmodel.AnyProto,
			Dst: netip.MustParsePrefix("10.3.0.0/24")},
	}
}

// verifyDetails extracts the audit trail's verification entries.
func verifyDetails(trail *audit.Trail) []string {
	var out []string
	for _, e := range trail.Entries() {
		if e.Kind == audit.KindVerify {
			out = append(out, e.Detail)
		}
	}
	return out
}

// TestReviewCacheOracle is the acceptance oracle: a cached verdict must be
// observably identical to a fresh review — same JSON serialization
// (including the ReportDeltas reachability diff and violation traces),
// same audit-trail entry — for both an accepting and a rejecting review.
func TestReviewCacheOracle(t *testing.T) {
	for name, change := range map[string]config.Change{
		"accepted": benignChange(15, 443),
		"rejected": maliciousPermit(),
	} {
		change := change
		t.Run(name, func(t *testing.T) {
			n := prod()
			e := newEnforcer(n)
			spec := aclSpec()
			changes := []config.Change{change}

			// Fresh verdict with the cache disabled: the reference output.
			dFresh, hit := e.ReviewCached(n, changes, spec)
			if hit {
				t.Fatal("hit with the cache disabled")
			}
			ref := decisionJSON(t, dFresh)

			e.EnableReviewCache(0)
			d1, hit1 := e.ReviewCached(n, changes, spec)
			d2, hit2 := e.ReviewCached(n, changes, spec)
			if hit1 {
				t.Fatal("first review hit a cold cache")
			}
			if !hit2 {
				t.Fatal("second identical review missed the cache")
			}
			if got := decisionJSON(t, d1); got != ref {
				t.Fatalf("cache-miss decision diverges from cacheless review:\nwant %s\ngot  %s", ref, got)
			}
			if got := decisionJSON(t, d2); got != ref {
				t.Fatalf("cached decision diverges from fresh review:\nwant %s\ngot  %s", ref, got)
			}

			// All three reviews logged the exact same trail entry.
			details := verifyDetails(e.Trail())
			if len(details) != 3 {
				t.Fatalf("verify trail entries = %d, want 3", len(details))
			}
			if details[0] != details[1] || details[1] != details[2] {
				t.Fatalf("trail entries not replayed identically: %q", details)
			}
		})
	}
}

// TestReviewCacheInvalidatedByCommit pins the staleness contract: after a
// commit mutates production, the same change set must be recomputed, not
// served from the cache.
func TestReviewCacheInvalidatedByCommit(t *testing.T) {
	n := prod()
	e := newEnforcer(n)
	e.EnableReviewCache(0)
	spec := aclSpec()

	ch := []config.Change{benignChange(15, 443)}
	if _, hit := e.ReviewCached(n, ch, spec); hit {
		t.Fatal("cold cache hit")
	}
	if _, hit := e.ReviewCached(n, ch, spec); !hit {
		t.Fatal("warm cache missed")
	}
	if _, err := e.Commit(n, []config.Change{benignChange(16, 8443)}, spec); err != nil {
		t.Fatal(err)
	}
	d, hit := e.ReviewCached(n, ch, spec)
	if hit {
		t.Fatal("stale verdict served after commit mutated production")
	}
	if !d.Accepted {
		t.Fatalf("recomputed review rejected: %+v", d)
	}
}

// TestReviewCacheInvalidatedByRecover drives the quarantine -> Recover
// path and checks both transitions invalidate: the failed push left
// production half-applied, and recovery rewrote it again.
func TestReviewCacheInvalidatedByRecover(t *testing.T) {
	n := prod()
	e := newEnforcer(n)
	e.EnableReviewCache(0)
	e.Retry = RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Microsecond,
		Sleep: func(time.Duration) {}}
	spec := aclSpec()

	ch := []config.Change{benignChange(15, 443)}
	e.ReviewCached(n, ch, spec)
	if _, hit := e.ReviewCached(n, ch, spec); !hit {
		t.Fatal("warm cache missed before quarantine")
	}

	inj := faultinject.New(faultinject.Plan{Rules: []faultinject.Rule{
		{Scope: "r1", Op: "apply", FailNth: 2, Class: faultinject.Permanent},
		{Scope: "r1", Op: "restore", Outage: true},
	}})
	e.SetInjector(inj)
	changes := []config.Change{benignChange(16, 8443), benignChange(17, 80)}
	if _, err := e.Commit(n, changes, spec); err == nil || !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("err = %v, want quarantine", err)
	}
	if _, hit := e.ReviewCached(n, ch, spec); hit {
		t.Fatal("stale verdict served after quarantine left production half-applied")
	}
	e.SetInjector(nil)
	if _, err := e.Recover(n); err != nil {
		t.Fatal(err)
	}
	if _, hit := e.ReviewCached(n, ch, spec); hit {
		t.Fatal("stale verdict served after recovery mutated production")
	}
	// And the recomputed verdict re-warms the cache.
	if _, hit := e.ReviewCached(n, ch, spec); !hit {
		t.Fatal("cache not re-warmed after recovery")
	}
}

// TestReviewCacheConcurrent hammers one enforcer with interleaved
// identical and distinct reviews under -race: verdicts must stay correct
// and handed-out clones independent of the cached copy.
func TestReviewCacheConcurrent(t *testing.T) {
	n := prod()
	e := newEnforcer(n)
	e.EnableReviewCache(8)
	spec := aclSpec()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch := []config.Change{benignChange(15+(i%2), 443)}
			for j := 0; j < 50; j++ {
				d, _ := e.ReviewCached(n, ch, spec)
				if !d.Accepted {
					t.Errorf("benign change rejected: %+v", d)
					return
				}
				// Mutate the returned copy the way the commit pipeline
				// does; the cached entry must be unaffected.
				d.Accepted = false
				d.Violations = append(d.Violations, d.Violations...)
			}
		}()
	}
	wg.Wait()
	d, _ := e.ReviewCached(n, []config.Change{benignChange(15, 443)}, spec)
	if !d.Accepted {
		t.Fatal("cache poisoned by caller mutation")
	}
}

// TestReviewCacheEviction bounds retention: with capacity 2, three
// distinct keys evict the oldest (FIFO), which then recomputes.
func TestReviewCacheEviction(t *testing.T) {
	n := prod()
	e := newEnforcer(n)
	e.EnableReviewCache(2)
	spec := aclSpec()

	a := []config.Change{benignChange(15, 443)}
	b := []config.Change{benignChange(16, 8443)}
	c := []config.Change{benignChange(17, 80)}
	e.ReviewCached(n, a, spec)
	e.ReviewCached(n, b, spec)
	e.ReviewCached(n, c, spec) // evicts a
	if _, hit := e.ReviewCached(n, c, spec); !hit {
		t.Fatal("newest entry evicted")
	}
	if _, hit := e.ReviewCached(n, a, spec); hit {
		t.Fatal("oldest entry not evicted at capacity")
	}
}
