package enforcer

import (
	"encoding/json"
	"net/netip"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"heimdall/internal/config"
	"heimdall/internal/faultinject"
	"heimdall/internal/journal"
	"heimdall/internal/netmodel"
	"heimdall/internal/telemetry"
)

// benignChange returns an ACL permit for traffic that is already
// reachable, parameterised by sequence number so tests can build disjoint
// multi-change sets.
func benignChange(seq, port int) config.Change {
	return config.Change{
		Device: "r1", Op: config.OpAddACLEntry, ACLName: "GUARD",
		Entry: &netmodel.ACLEntry{Seq: seq, Action: netmodel.Permit, Proto: netmodel.TCP,
			Dst: netip.MustParsePrefix("10.2.0.10/32"), DstPort: uint16(port)},
	}
}

// fastRetry is a retry policy with a recording sleep so chaos runs at
// full speed and tests can reconcile backoff counts.
func fastRetry(sleeps *[]time.Duration) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 3,
		Sleep: func(d time.Duration) {
			*sleeps = append(*sleeps, d)
		},
	}
}

func TestCommitRetriesTransientFaultAndSucceeds(t *testing.T) {
	n := prod()
	e := newEnforcer(n)
	reg := telemetry.NewRegistry()
	e.SetMeter(reg)
	var sleeps []time.Duration
	e.Retry = fastRetry(&sleeps)

	inj := faultinject.New(faultinject.Plan{Rules: []faultinject.Rule{
		{Scope: "r1", Op: "apply", FailFirst: 2}, // transient, recovers on 3rd try
	}})
	inj.SetMeter(reg)
	e.SetInjector(inj)

	d, err := e.Commit(n, []config.Change{benignChange(15, 443)}, aclSpec())
	if err != nil || !d.Accepted {
		t.Fatalf("commit with transient faults failed: %v %+v", err, d)
	}
	if len(n.Device("r1").ACLs["GUARD"].Entries) != 3 {
		t.Fatal("change not applied after retries")
	}
	// Two faults, two retries, two backoff sleeps — all reconciled.
	if got := reg.CounterValue("heimdall_enforcer_push_retries_total", telemetry.L("phase", "apply")); got != 2 {
		t.Fatalf("push_retries_total = %v, want 2", got)
	}
	if len(sleeps) != 2 {
		t.Fatalf("backoff sleeps = %d, want 2", len(sleeps))
	}
	if got := reg.CounterValue("heimdall_faults_injected_total",
		telemetry.L("op", "apply"), telemetry.L("class", "transient")); got != float64(inj.Injected()) {
		t.Fatalf("faults_injected_total = %v, want %d", got, inj.Injected())
	}
	if got := reg.HistogramCount("heimdall_enforcer_push_seconds"); got != 1 {
		t.Fatalf("push_seconds count = %d, want 1 (one change pushed)", got)
	}
	// Backoff doubles with jitter in [d/2, d].
	if sleeps[0] < 25*time.Millisecond || sleeps[0] > 50*time.Millisecond {
		t.Fatalf("first backoff %v outside [25ms, 50ms]", sleeps[0])
	}
	if sleeps[1] < 50*time.Millisecond || sleeps[1] > 100*time.Millisecond {
		t.Fatalf("second backoff %v outside [50ms, 100ms]", sleeps[1])
	}
}

func TestPermanentFaultNotRetried(t *testing.T) {
	n := prod()
	e := newEnforcer(n)
	reg := telemetry.NewRegistry()
	e.SetMeter(reg)
	var sleeps []time.Duration
	e.Retry = fastRetry(&sleeps)
	inj := faultinject.New(faultinject.Plan{Rules: []faultinject.Rule{
		{Scope: "r1", Op: "apply", FailNth: 1, Class: faultinject.Permanent},
	}})
	e.SetInjector(inj)

	if _, err := e.Commit(n, []config.Change{benignChange(15, 443)}, aclSpec()); err == nil {
		t.Fatal("commit with permanent fault succeeded")
	}
	if len(sleeps) != 0 {
		t.Fatalf("permanent fault was retried: %d sleeps", len(sleeps))
	}
	if got := reg.CounterValue("heimdall_enforcer_rollbacks_total"); got != 1 {
		t.Fatalf("rollbacks_total = %v, want 1", got)
	}
	// Apply was attempted exactly once.
	if got := inj.Calls("r1", "apply"); got != 1 {
		t.Fatalf("apply calls = %d, want 1", got)
	}
}

// Satellite regression: after a rollback, production must be exactly the
// pre-commit state — compared deeply and byte-for-byte on the serialised
// network, so a future Network field missed by rollback fails this test.
func TestRollbackRestoresProductionExactly(t *testing.T) {
	n := prod()
	e := newEnforcer(n)
	var sleeps []time.Duration
	e.Retry = fastRetry(&sleeps)
	pre := n.Clone()
	preJSON, err := json.Marshal(pre)
	if err != nil {
		t.Fatal(err)
	}
	// Multi-change set; the second apply dies permanently after the first
	// one already landed.
	inj := faultinject.New(faultinject.Plan{Rules: []faultinject.Rule{
		{Scope: "r1", Op: "apply", FailNth: 2, Class: faultinject.Permanent},
	}})
	e.SetInjector(inj)
	changes := []config.Change{benignChange(15, 443), benignChange(16, 8443)}
	if _, err := e.Commit(n, changes, aclSpec()); err == nil {
		t.Fatal("commit should have failed")
	}
	if !reflect.DeepEqual(n, pre) {
		t.Fatal("post-rollback network differs structurally from pre-commit state")
	}
	postJSON, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	if string(postJSON) != string(preJSON) {
		t.Fatal("post-rollback network not byte-identical to pre-commit snapshot")
	}
	// The journal closed the commit as rolled-back and still verifies.
	recs := e.Journal().Records()
	last := recs[len(recs)-1]
	if last.Kind != journal.KindRolledBack {
		t.Fatalf("last journal record = %s, want rolled-back", last.Kind)
	}
	if err := e.Journal().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRetryExhaustionRollsBack(t *testing.T) {
	n := prod()
	e := newEnforcer(n)
	reg := telemetry.NewRegistry()
	e.SetMeter(reg)
	var sleeps []time.Duration
	e.Retry = fastRetry(&sleeps)
	pre := n.Clone()
	inj := faultinject.New(faultinject.Plan{Rules: []faultinject.Rule{
		{Scope: "r1", Op: "apply", Outage: true}, // transient but never recovers
	}})
	e.SetInjector(inj)

	_, err := e.Commit(n, []config.Change{benignChange(15, 443)}, aclSpec())
	if err == nil || !strings.Contains(err.Error(), "rolled back") {
		t.Fatalf("err = %v, want rolled-back failure", err)
	}
	if len(sleeps) != 2 { // MaxAttempts 3 => 2 retries
		t.Fatalf("retries = %d, want 2", len(sleeps))
	}
	if !reflect.DeepEqual(n, pre) {
		t.Fatal("rollback did not restore production")
	}
	if q, _ := e.Quarantined(); q {
		t.Fatal("successful rollback must not quarantine")
	}
}

func TestQuarantineWhenRollbackFails(t *testing.T) {
	n := prod()
	e := newEnforcer(n)
	reg := telemetry.NewRegistry()
	e.SetMeter(reg)
	var sleeps []time.Duration
	e.Retry = fastRetry(&sleeps)
	pre := n.Clone()
	inj := faultinject.New(faultinject.Plan{Rules: []faultinject.Rule{
		{Scope: "r1", Op: "apply", FailNth: 2, Class: faultinject.Permanent},
		{Scope: "r1", Op: "restore", Outage: true},
	}})
	e.SetInjector(inj)
	changes := []config.Change{benignChange(15, 443), benignChange(16, 8443)}
	_, err := e.Commit(n, changes, aclSpec())
	if err == nil || !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("err = %v, want quarantine", err)
	}
	q, why := e.Quarantined()
	if !q || why == "" {
		t.Fatalf("Quarantined = %v %q, want true with reason", q, why)
	}
	if got := reg.CounterValue("heimdall_enforcer_quarantines_total"); got != 1 {
		t.Fatalf("quarantines_total = %v, want 1", got)
	}
	// The journal says exactly which device is stuck.
	recs := e.Journal().Records()
	last := recs[len(recs)-1]
	if last.Kind != journal.KindQuarantined || !reflect.DeepEqual(last.Unrestored, []string{"r1"}) {
		t.Fatalf("terminal record = %+v, want quarantined r1", last)
	}
	// New commits are refused while quarantined.
	if _, err := e.Commit(n, []config.Change{benignChange(17, 80)}, aclSpec()); err == nil ||
		!strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("commit while quarantined: err = %v", err)
	}
	// Recover heals: pre-state is restored, the reviewed change set is
	// replayed, and the quarantine lifts.
	rep, err := e.Recover(n)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Action != "committed" {
		t.Fatalf("recovery action = %s, want committed", rep.Action)
	}
	if q, _ := e.Quarantined(); q {
		t.Fatal("quarantine not cleared by recovery")
	}
	// Final state is the full intended commit: pre + both changes.
	want := pre.Clone()
	for _, c := range changes {
		if err := config.ApplyChange(want.Devices[c.Device], c); err != nil {
			t.Fatal(err)
		}
	}
	if fingerprint(n) != fingerprint(want) {
		t.Fatal("recovered state is not the fully-committed state")
	}
	if got := reg.CounterValue("heimdall_enforcer_recoveries_total"); got != 1 {
		t.Fatalf("recoveries_total = %v, want 1", got)
	}
	// And commits work again.
	if _, err := e.Commit(n, []config.Change{benignChange(17, 80)}, aclSpec()); err != nil {
		t.Fatalf("commit after recovery: %v", err)
	}
}

// misapplyTarget models a buggy or compromised device agent: it applies
// every requested change but also sneaks in an extra one — exactly the
// drift the post-apply verification pass exists to catch.
type misapplyTarget struct {
	net   *netmodel.Network
	extra config.Change
	done  bool
}

func (t *misapplyTarget) Apply(c config.Change) error {
	if err := config.ApplyChange(t.net.Devices[c.Device], c); err != nil {
		return err
	}
	if !t.done {
		t.done = true
		return config.ApplyChange(t.net.Devices[t.extra.Device], t.extra)
	}
	return nil
}

func (t *misapplyTarget) RestoreDevice(name string, d *netmodel.Device) error {
	t.net.Devices[name] = d
	return nil
}

func TestPostVerifyFailureRollsBackMisappliedCommit(t *testing.T) {
	n := prod()
	e := newEnforcer(n)
	pre := n.Clone()
	// The sneaked-in change opens the sensitive subnet — review never saw
	// it, so only the post-apply check can catch it.
	e.SetTarget(&misapplyTarget{net: n, extra: config.Change{
		Device: "r1", Op: config.OpAddACLEntry, ACLName: "GUARD",
		Entry: &netmodel.ACLEntry{Seq: 5, Action: netmodel.Permit, Proto: netmodel.AnyProto,
			Dst: netip.MustParsePrefix("10.3.0.0/24")},
	}})
	d, err := e.Commit(n, []config.Change{benignChange(15, 443)}, aclSpec())
	if err == nil || !strings.Contains(err.Error(), "post-apply verification failed") {
		t.Fatalf("err = %v, want post-apply failure", err)
	}
	if d.Accepted || len(d.Violations) == 0 {
		t.Fatalf("decision should carry the post-verify violations: %+v", d)
	}
	if !reflect.DeepEqual(n, pre) {
		t.Fatal("misapplied commit not fully rolled back")
	}
	if err := e.Trail().Verify(); err != nil {
		t.Fatal(err)
	}
}

// Satellite: concurrent Commit callers are serialised by commitMu and the
// counters stay exact. Run with -race.
func TestConcurrentCommits(t *testing.T) {
	n := prod()
	e := newEnforcer(n)
	reg := telemetry.NewRegistry()
	e.SetMeter(reg)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.Commit(n, []config.Change{benignChange(30+i, 1000+i)}, aclSpec())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent commit %d failed: %v", i, err)
		}
	}
	if len(n.Device("r1").ACLs["GUARD"].Entries) != 6 {
		t.Fatalf("entries = %d, want 6", len(n.Device("r1").ACLs["GUARD"].Entries))
	}
	if got := reg.CounterValue("heimdall_enforcer_commits_total", telemetry.L("accepted", "true")); got != 4 {
		t.Fatalf("commits_total{accepted} = %v, want 4", got)
	}
	if got := reg.CounterValue("heimdall_enforcer_changes_applied_total"); got != 4 {
		t.Fatalf("changes_applied_total = %v, want 4", got)
	}
	if err := e.Trail().Verify(); err != nil {
		t.Fatal(err)
	}
	if err := e.Journal().Verify(); err != nil {
		t.Fatal(err)
	}
	// Each of the four commits is a closed intent..committed window.
	if intent, _ := e.Journal().Open(); intent != nil {
		t.Fatalf("journal left an open commit: %+v", intent)
	}
}

func TestHappyPathJournalShape(t *testing.T) {
	n := prod()
	e := newEnforcer(n)
	changes := []config.Change{benignChange(15, 443), benignChange(16, 8443)}
	if _, err := e.Commit(n, changes, aclSpec()); err != nil {
		t.Fatal(err)
	}
	recs := e.Journal().Records()
	kinds := make([]journal.Kind, len(recs))
	for i, r := range recs {
		kinds[i] = r.Kind
	}
	want := []journal.Kind{journal.KindIntent, journal.KindApplied, journal.KindApplied, journal.KindCommitted}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("journal kinds = %v, want %v", kinds, want)
	}
	// The intent carries the scheduled set and r1's pre-state config.
	if len(recs[0].Changes) != 2 || recs[0].PreState["r1"] == "" {
		t.Fatalf("intent record incomplete: %+v", recs[0])
	}
	if _, err := config.Parse("r1", recs[0].PreState["r1"]); err != nil {
		t.Fatalf("journaled pre-state does not parse: %v", err)
	}
}

// fingerprint renders a network canonically for state comparison.
func fingerprint(n *netmodel.Network) string {
	var b strings.Builder
	for _, name := range n.DeviceNames() {
		b.WriteString(config.Print(n.Devices[name]))
		b.WriteString("\n")
	}
	for _, l := range n.Links {
		b.WriteString(l.A.String() + "<->" + l.B.String() + "\n")
	}
	return b.String()
}
