package enforcer

import (
	"strings"
	"testing"
	"time"

	"heimdall/internal/config"
	"heimdall/internal/privilege"
	"heimdall/internal/telemetry"
)

// specFor is aclSpec with a custom ticket, so two tickets can race.
func specFor(ticket string) *privilege.Spec {
	return &privilege.Spec{Ticket: ticket, Technician: "alice", Rules: []privilege.Rule{
		{Effect: privilege.AllowEffect, Action: "config.acl.*", Resource: "device:r1"},
	}}
}

func TestCommitScopeIncludesAffectedPolicyPaths(t *testing.T) {
	n := prod()
	e := newEnforcer(n)
	scope := e.commitScope(n, []config.Change{benignChange(15, 443)})
	if !scope["r1"] {
		t.Fatal("touched device missing from scope")
	}
	// Policies guarding h3 route through r1; their endpoints are on the
	// trace and therefore in scope.
	if !scope["h1"] && !scope["h2"] && !scope["h3"] {
		t.Fatalf("scope %v misses every policy-path host", scope)
	}
}

// TestConflictMediationRejectsLoser is the satellite scenario: two tickets
// race on overlapping AffectedBy scopes; one wins, the loser gets an
// audited rejection. The interleaving is fixed (reserve first, then race),
// so the outcome is identical across runs and seeds, and -race-clean.
func TestConflictMediationRejectsLoser(t *testing.T) {
	n := prod()
	e := newEnforcer(n)
	reg := telemetry.NewRegistry()
	e.SetMeter(reg)
	e.Conflict = MediateReject

	winner := specFor("T-WIN")
	loser := specFor("T-LOSE")
	winChanges := []config.Change{benignChange(15, 443)}
	loseChanges := []config.Change{benignChange(16, 8443)} // same device, overlapping scope

	release, err := e.Reserve(n, winChanges, winner)
	if err != nil {
		t.Fatalf("winner reserve: %v", err)
	}

	// The loser races in a goroutine (exercises -race) but the verdict is
	// fully determined: the winner holds the scope.
	errCh := make(chan error, 1)
	go func() {
		_, cerr := e.Commit(n, loseChanges, loser)
		errCh <- cerr
	}()
	cerr := <-errCh
	if cerr == nil || !strings.Contains(cerr.Error(), "conflicts with in-flight ticket T-WIN") {
		t.Fatalf("loser not rejected with conflict verdict: %v", cerr)
	}

	// The winner commits under its reservation.
	if _, err := e.Commit(n, winChanges, winner); err != nil {
		t.Fatalf("winner commit: %v", err)
	}
	release()

	// Audited verdict on the loser's ticket.
	var found bool
	for _, entry := range e.Trail().Entries() {
		if entry.Ticket == "T-LOSE" && strings.Contains(entry.Detail, "CONFLICT") &&
			strings.Contains(entry.Detail, "rejected") && !entry.Allowed {
			found = true
		}
	}
	if !found {
		t.Fatal("no audited rejection for the losing ticket")
	}
	if v := reg.CounterValue("heimdall_enforcer_conflicts_total", telemetry.L("verdict", "rejected")); v != 1 {
		t.Fatalf("conflicts_total{rejected} = %v, want 1", v)
	}

	// After release, the loser's change set goes through.
	if _, err := e.Commit(n, loseChanges, loser); err != nil {
		t.Fatalf("loser retry after release: %v", err)
	}
}

func TestConflictMediationSerializes(t *testing.T) {
	n := prod()
	e := newEnforcer(n)
	reg := telemetry.NewRegistry()
	e.SetMeter(reg)
	e.Conflict = MediateSerialize

	winner := specFor("T-1")
	follower := specFor("T-2")
	release, err := e.Reserve(n, []config.Change{benignChange(15, 443)}, winner)
	if err != nil {
		t.Fatalf("reserve: %v", err)
	}

	done := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		close(started)
		_, cerr := e.Commit(n, []config.Change{benignChange(16, 8443)}, follower)
		done <- cerr
	}()
	<-started
	// Wait until the follower has parked on the reservation (audited
	// verdict appears), then let it through.
	for {
		serialized := false
		for _, entry := range e.Trail().Entries() {
			if entry.Ticket == "T-2" && strings.Contains(entry.Detail, "serialized") {
				serialized = true
			}
		}
		if serialized {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := e.Commit(n, []config.Change{benignChange(15, 443)}, winner); err != nil {
		t.Fatalf("winner commit: %v", err)
	}
	release()
	if cerr := <-done; cerr != nil {
		t.Fatalf("serialized follower failed: %v", cerr)
	}
	if v := reg.CounterValue("heimdall_enforcer_conflicts_total", telemetry.L("verdict", "serialized")); v != 1 {
		t.Fatalf("conflicts_total{serialized} = %v, want 1", v)
	}
	// Both commits landed.
	if got := len(n.Device("r1").ACLs["GUARD"].Entries); got != 4 {
		t.Fatalf("GUARD entries = %d, want 4 (both commits landed)", got)
	}
}

func TestMediationOffIsByteIdenticalToPriorPipeline(t *testing.T) {
	// With mediation off (the default), a commit journals exactly what it
	// always did — no reservation, no extra trail entries.
	n := prod()
	e := newEnforcer(n)
	if e.Conflict != MediateOff {
		t.Fatal("mediation not off by default")
	}
	trailBefore := e.Trail().Len()
	if _, err := e.Commit(n, []config.Change{benignChange(15, 443)}, aclSpec()); err != nil {
		t.Fatalf("commit: %v", err)
	}
	for _, entry := range e.Trail().Entries()[trailBefore:] {
		if strings.Contains(entry.Detail, "CONFLICT") {
			t.Fatal("mediation-off commit produced a conflict entry")
		}
	}
}
