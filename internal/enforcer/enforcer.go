// Package enforcer implements Heimdall's policy enforcer (paper §4.3): the
// trusted component between the twin network and the production network.
// It has three modules:
//
//   - a verifier that checks the technician's changes against the
//     customer's network policies before anything touches production;
//   - a scheduler that orders accepted changes so that applying them never
//     transits through an obviously unsafe intermediate state (additive
//     changes first, subtractive last);
//   - auditing: every review, application and rollback lands on the
//     tamper-evident trail.
//
// The enforcer runs inside a (simulated) TEE: its audit HMAC key is derived
// inside the enclave and the customer can attest the enforcer's identity.
package enforcer

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"heimdall/internal/audit"
	"heimdall/internal/authz"
	"heimdall/internal/config"
	"heimdall/internal/dataplane"
	"heimdall/internal/enclave"
	"heimdall/internal/faultinject"
	"heimdall/internal/journal"
	"heimdall/internal/netmodel"
	"heimdall/internal/privilege"
	"heimdall/internal/telemetry"
	"heimdall/internal/verify"
)

// Enforcer gates changes from twin networks into one production network.
// Commits are serialized: concurrent engagements may review in parallel,
// but only one change set at a time is verified-against and applied to
// production, so a commit's verification always reflects the state it
// lands on.
type Enforcer struct {
	encl     *enclave.Enclave
	trail    *audit.Trail
	journal  *journal.Journal
	policies []verify.Policy
	meter    telemetry.Meter
	commitMu sync.Mutex
	// target, when set, replaces the in-memory production push path
	// (SetTarget); injector gates the default path (SetInjector).
	target   Target
	injector *faultinject.Injector
	// commitSeq numbers commits within this enforcer for journal ids.
	commitSeq int
	// quarantined is the degraded state entered when a rollback fails:
	// production is partial, the journal says exactly how, and new
	// commits are refused until Recover restores consistency.
	quarantined bool
	quarReason  string
	// Incremental restricts verification to policies whose traffic could
	// be affected by the changed devices (plus all isolation policies).
	Incremental bool
	// ReportDeltas adds a reachability what-if diff to every review: the
	// host pairs whose connectivity the change set would flip. Off by
	// default (it probes all pairs twice).
	ReportDeltas bool
	// Retry is the push retry/backoff policy; the zero value means the
	// defaults (3 attempts, 50ms base backoff doubling to 1s, 5s per-op
	// budget, seeded jitter).
	Retry RetryPolicy
	// Auth, when set, enforces M-of-N multi-party authorization: commits
	// whose scheduled change set classifies high-risk (authz.Classify)
	// are refused unless CommitApproved carries approvals the policy
	// verifies. Low-risk changes pass without approvals.
	Auth *authz.Policy
	// Conflict selects how commits whose scopes overlap mediate (default
	// MediateOff). See mediate.go.
	Conflict ConflictPolicy
	// scopeMu guards reservations; scopeCond wakes serialized waiters.
	scopeMu      sync.Mutex
	scopeCond    *sync.Cond
	reservations map[string]map[string]bool
	// reviews, when enabled (EnableReviewCache), memoizes review verdicts
	// by content: production version × privilege digest × change-set
	// digest. prodVersion counts production mutations and is folded into
	// every cache key, so a commit (or rollback, recovery, out-of-band
	// mutation) invalidates all prior verdicts at once. See cache.go.
	reviews     atomic.Pointer[reviewCache]
	prodVersion atomic.Uint64
}

// New creates an enforcer hosted in the given enclave, guarding the given
// policy set. The audit-trail and commit-journal keys never exist outside
// the enclave.
func New(encl *enclave.Enclave, policies []verify.Policy) *Enforcer {
	return &Enforcer{
		encl:     encl,
		trail:    audit.NewTrail(encl.DeriveKey("audit-trail")),
		journal:  journal.New(encl.DeriveKey("commit-journal")),
		policies: policies,
		meter:    telemetry.Nop(),
	}
}

// SetMeter wires enforcer telemetry (reviews, verify latency, changes
// applied, rollbacks) and propagates the meter to the audit trail.
func (e *Enforcer) SetMeter(m telemetry.Meter) {
	if m == nil {
		m = telemetry.Nop()
	}
	e.meter = m
	e.trail.SetMeter(m)
	e.journal.SetMeter(m)
}

// Trail returns the enforcer's audit trail.
func (e *Enforcer) Trail() *audit.Trail { return e.trail }

// TrailKey returns a copy of the audit-trail HMAC key. In the deployment
// model this is released only to the customer's auditor over the secure
// channel established after attestation, so exported trails can be
// verified offline.
func (e *Enforcer) TrailKey() []byte {
	k := e.encl.DeriveKey("audit-trail")
	return append([]byte(nil), k...)
}

// Policies returns the guarded policy set.
func (e *Enforcer) Policies() []verify.Policy { return e.policies }

// Attest produces an attestation report binding the enforcer's code
// identity to the caller's nonce.
func (e *Enforcer) Attest(nonce []byte) enclave.Report { return e.encl.Attest(nonce) }

// Decision is the outcome of reviewing a change set.
type Decision struct {
	Accepted bool
	// Unauthorized lists changes outside the ticket's Privilegemsp. Any
	// such change rejects the whole set: it means the twin's reference
	// monitor was bypassed or the spec shrank since.
	Unauthorized []config.Change
	// Violations lists policies the changed network would break.
	Violations []verify.Violation
	// Checked is how many policies were verified.
	Checked int
	// Deltas lists host pairs whose reachability the change set flips
	// (populated when the enforcer's ReportDeltas is set).
	Deltas []verify.Delta
}

// Reason summarises why a decision rejected the change set. It is safe on
// a nil decision (commit refused before review — quarantine, authorization,
// conflict mediation).
func (d *Decision) Reason() string {
	switch {
	case d == nil:
		return "commit refused"
	case d.Accepted:
		return "accepted"
	case len(d.Unauthorized) > 0:
		return fmt.Sprintf("%d unauthorized changes", len(d.Unauthorized))
	default:
		return fmt.Sprintf("%d policy violations", len(d.Violations))
	}
}

// Review checks a candidate change set against the Privilegemsp and the
// network policies, without touching production. With the review cache
// enabled (EnableReviewCache) a repeat of an already-reviewed change set
// against the unchanged production snapshot replays the cached verdict;
// callers who need to know use ReviewCached.
func (e *Enforcer) Review(prod *netmodel.Network, changes []config.Change, spec *privilege.Spec) *Decision {
	d, _ := e.ReviewCached(prod, changes, spec)
	return d
}

// reviewCompute is the uncached review: it returns the decision plus the
// audit-trail message and outcome flag the caller must append. The trail
// write is hoisted out so a cache hit can replay the identical entry.
func (e *Enforcer) reviewCompute(prod *netmodel.Network, changes []config.Change, spec *privilege.Spec) (d *Decision, trailMsg string, trailOK bool) {
	d = &Decision{}

	// Privilege check: every change must be authorized. The compiled form
	// evaluates each change without rescanning (or re-splitting) the rules.
	compiled := spec.Compile()
	for _, c := range changes {
		if !compiled.Allows(c.Action(), c.Resource()) {
			d.Unauthorized = append(d.Unauthorized, c)
		}
	}
	if len(d.Unauthorized) > 0 {
		return d, fmt.Sprintf("review rejected: %d unauthorized changes", len(d.Unauthorized)), false
	}

	// Policy verification on a shadow copy. The shadow is copy-on-write:
	// only the devices the change set names are cloned (ApplyChanges never
	// creates devices and only writes the named ones), the rest are shared
	// read-only with production.
	touched := make(map[string]bool)
	for _, c := range changes {
		touched[c.Device] = true
	}
	touchedList := make([]string, 0, len(touched))
	for dev := range touched {
		touchedList = append(touchedList, dev)
	}
	sort.Strings(touchedList)
	shadow := prod.CloneCOW(touchedList...)
	if err := config.ApplyChanges(shadow, changes); err != nil {
		d.Violations = append(d.Violations, verify.Violation{
			Reason: fmt.Sprintf("changes do not apply cleanly: %v", err),
		})
		return d, "review rejected: changes do not apply", false
	}
	// Snapshots carry the enforcer's meter so their flow-cache hit/miss
	// counters land in the same registry as the verifier metrics; the
	// production snapshot is shared between the incremental policy scope
	// and the delta report, whose flows largely overlap.
	snapOpts := dataplane.Options{Meter: e.meter}
	var prodSnap *dataplane.Snapshot
	policies := e.policies
	if e.Incremental || e.ReportDeltas {
		prodSnap = dataplane.ComputeWithOptions(prod, snapOpts)
	}
	if e.Incremental {
		policies = verify.AffectedBy(prodSnap, e.policies, touched)
	}
	// With a production snapshot in hand, the shadow snapshot derives from
	// it — reusing everything the change set provably cannot invalidate —
	// instead of recomputing the dataplane from scratch.
	var shadowSnap *dataplane.Snapshot
	if prodSnap != nil {
		cs := make(dataplane.ChangeSet, 0, len(changes))
		for _, c := range changes {
			cs = append(cs, dataplane.Change{Device: c.Device, Kind: changeKindFor(prod, c)})
		}
		shadowSnap = prodSnap.Derive(shadow, cs)
	} else {
		shadowSnap = dataplane.ComputeWithOptions(shadow, snapOpts)
	}
	if e.ReportDeltas {
		d.Deltas = verify.DiffReachability(prodSnap, shadowSnap, shadow, nil)
	}
	verifyStart := time.Now()
	res := verify.CheckMetered(shadowSnap, policies, e.meter)
	e.meter.Histogram("heimdall_enforcer_verify_seconds", telemetry.LatencyBuckets).
		ObserveDuration(time.Since(verifyStart))
	d.Checked = res.Checked
	d.Violations = append(d.Violations, res.Violations...)
	d.Accepted = len(d.Violations) == 0
	return d, fmt.Sprintf("review: %d changes, %d policies checked, %d violations",
		len(changes), d.Checked, len(d.Violations)), d.Accepted
}

// changeKindFor maps a configuration op onto the narrowest dataplane
// change class it can affect, for snapshot derivation. VLAN ops only edit
// the switching fabric. Interface ops are L2-class when the interface is
// L2-only (access/trunk or unaddressed, never an SVI) both before and
// after the change, and L3-topology otherwise — every config op is
// confined to its named device, so the conservative full-recompute class
// is reserved for ops the switch doesn't recognize.
func changeKindFor(prod *netmodel.Network, c config.Change) dataplane.ChangeKind {
	switch c.Op {
	case config.OpAddACLEntry, config.OpRemoveACLEntry, config.OpRemoveACL:
		return dataplane.ChangeACL
	case config.OpAddStaticRoute, config.OpRemoveStaticRoute, config.OpSetGateway:
		return dataplane.ChangeStatic
	case config.OpSetOSPF, config.OpRemoveOSPF:
		return dataplane.ChangeOSPF
	case config.OpSetBGP, config.OpRemoveBGP:
		return dataplane.ChangeBGP
	case config.OpSetVLAN, config.OpRemoveVLAN:
		return dataplane.ChangeL2
	case config.OpAddInterface, config.OpSetInterface:
		if netmodel.InterfaceL2Only(c.Interface) && priorInterfaceL2Only(prod, c) {
			return dataplane.ChangeL2
		}
		return dataplane.ChangeL3Topology
	default:
		return dataplane.ChangeTopology
	}
}

// priorInterfaceL2Only reports whether the interface a change replaces was
// absent or L2-only in production — replacing an addressed routed port is
// an L3 change even when its replacement is L2-only.
func priorInterfaceL2Only(prod *netmodel.Network, c config.Change) bool {
	if c.Interface == nil {
		return false
	}
	d := prod.Devices[c.Device]
	if d == nil {
		return false
	}
	old := d.Interface(c.Interface.Name)
	return old == nil || netmodel.InterfaceL2Only(old)
}

// countReview records one review outcome.
func (e *Enforcer) countReview(accepted bool) {
	e.meter.Counter("heimdall_enforcer_reviews_total",
		telemetry.L("accepted", fmt.Sprintf("%t", accepted))).Inc()
}

// schedulePhase orders ops within the additive/subtractive phases so that
// definitions exist before references and references are dropped before
// definitions.
func schedulePhase(op config.Op) int {
	switch op {
	// Phase 0 (definitions and additive data):
	case config.OpSetVLAN, config.OpAddACLEntry, config.OpSetOSPF, config.OpSetBGP:
		return 0
	case config.OpAddStaticRoute, config.OpSetGateway:
		return 1
	case config.OpAddInterface, config.OpSetInterface:
		return 2
	// Subtractive, inverse order: unbind/undo interfaces first, then
	// routes, then ACL entries/definitions, then VLANs.
	case config.OpRemoveStaticRoute:
		return 3
	case config.OpRemoveACLEntry:
		return 4
	case config.OpRemoveACL:
		return 5
	case config.OpRemoveOSPF, config.OpRemoveBGP, config.OpRemoveVLAN:
		return 6
	}
	return 7
}

// Schedule orders a change set for safe application: additive changes
// before subtractive ones (a reachability-restoring entry lands before the
// entry it replaces disappears), definitions before bindings, and a
// deterministic device order within each phase.
func Schedule(changes []config.Change) []config.Change {
	out := append([]config.Change(nil), changes...)
	sort.SliceStable(out, func(i, j int) bool {
		ai, aj := boolToInt(!out[i].Additive()), boolToInt(!out[j].Additive())
		if ai != aj {
			return ai < aj
		}
		pi, pj := schedulePhase(out[i].Op), schedulePhase(out[j].Op)
		if pi != pj {
			return pi < pj
		}
		return out[i].Device < out[j].Device
	})
	return out
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Commit reviews, schedules and applies the change set to production
// through the push pipeline: the commit intent (change set + device
// pre-state) is journaled before anything touches production, every change
// is pushed with per-change retry/backoff and journaled as applied, and
// after application the full policy set is re-verified against the real
// network. On any unrecoverable failure every touched device is restored
// (rollback is retried too); if rollback itself fails the enforcer
// quarantines rather than leave a silent partial state.
//
// Commit carries no approvals: with an Auth policy set, high-risk change
// sets are refused — use CommitApproved.
func (e *Enforcer) Commit(prod *netmodel.Network, changes []config.Change, spec *privilege.Spec) (*Decision, error) {
	return e.CommitApproved(prod, changes, spec, nil)
}

// CommitApproved is Commit with M-of-N approvals attached. When the
// enforcer has an Auth policy and the scheduled change set classifies
// high-risk, the approvals must verify (M distinct valid signatures over
// the ticket + scheduled change set, both parties represented if the
// policy demands it) before the intent is journaled; the approvals are
// recorded in the intent record, so the journal itself proves who
// authorized the push. When the push target replicates
// (ReplicationHooks), the journaled intent is proposed to the replica
// group after the write-ahead record and before the first device push;
// a group that cannot reach quorum aborts the commit with a journaled
// rollback on every copy.
func (e *Enforcer) CommitApproved(prod *netmodel.Network, changes []config.Change, spec *privilege.Spec, approvals []journal.Approval) (*Decision, error) {
	release, err := e.reserveForCommit(prod, changes, spec)
	if err != nil {
		e.countCommit(false)
		return nil, err
	}
	defer release()
	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	if e.quarantined {
		e.countCommit(false)
		return nil, fmt.Errorf("enforcer: quarantined (%s); run Recover before committing", e.quarReason)
	}
	d := e.Review(prod, changes, spec)
	if !d.Accepted {
		e.countCommit(false)
		return d, fmt.Errorf("enforcer: change set rejected: %s", d.Reason())
	}
	ordered := Schedule(changes)
	// M-of-N gate: high-risk change sets need verified approvals over the
	// scheduled set (what will actually be pushed, in push order) before
	// the write-ahead intent — an unauthorized high-risk push never opens.
	if e.Auth != nil && authz.Classify(ordered) == authz.HighRisk {
		if aerr := e.Auth.Verify(spec.Ticket, ordered, approvals); aerr != nil {
			e.trail.Append(spec.Ticket, spec.Technician, audit.KindVerify,
				fmt.Sprintf("commit refused: high-risk change set without authorization: %v", aerr), false)
			e.meter.Counter("heimdall_enforcer_authz_refusals_total").Inc()
			e.countCommit(false)
			return d, fmt.Errorf("enforcer: high-risk change set refused: %w", aerr)
		}
		e.trail.Append(spec.Ticket, spec.Technician, audit.KindVerify,
			fmt.Sprintf("authz: high-risk change set authorized by %d approvals (M=%d)", len(approvals), e.Auth.M), true)
	}
	backup := prod.Clone()
	tgt := e.pushTarget(prod)
	hooks, _ := tgt.(ReplicationHooks)
	policy := e.Retry.withDefaults()
	e.commitSeq++
	cid := fmt.Sprintf("%s#%d", spec.Ticket, e.commitSeq)
	// Seed the backoff jitter per commit so a replayed fault schedule
	// sees identical delays.
	rng := rand.New(rand.NewSource(policy.JitterSeed + int64(e.commitSeq)))
	id := specIdent{spec.Ticket, spec.Technician}
	devices := touchedDevices(ordered)

	// Write-ahead: the journal knows the full plan before device one.
	intent := e.journal.Intent(cid, spec.Ticket, spec.Technician, ordered, preState(backup, ordered), approvals...)
	if hooks != nil {
		if herr := hooks.BeginCommit(intent); herr != nil {
			// Quorum not reached: abort before any device push. Nothing
			// to restore; the rollback record closes the commit on the
			// coordinator and on every replica that accepted the intent.
			mirrorTo(tgt, e.journal.RolledBack(cid, nil, herr.Error()))
			e.trail.Append(spec.Ticket, spec.Technician, audit.KindChange, "ROLLBACK: "+herr.Error(), false)
			e.meter.Counter("heimdall_enforcer_rollbacks_total").Inc()
			e.countCommit(false)
			return d, fmt.Errorf("enforcer: commit aborted: %w", herr)
		}
	}
	for i, c := range ordered {
		opStart := time.Now()
		err := e.pushOp(policy, rng, "apply", func() error { return tgt.Apply(c) })
		e.meter.Histogram("heimdall_enforcer_push_seconds", telemetry.LatencyBuckets).
			ObserveDuration(time.Since(opStart))
		if err != nil {
			outcome := e.rollbackPush(tgt, policy, rng, backup, devices, id, cid,
				fmt.Sprintf("apply failed: %v", err))
			e.countCommit(false)
			if outcome == "quarantined" {
				return d, fmt.Errorf("enforcer: applying %s: %v; rollback failed, production quarantined", c, err)
			}
			return d, fmt.Errorf("enforcer: applying %s: %w (rolled back)", c, err)
		}
		mirrorTo(tgt, e.journal.Applied(cid, i, c.String()))
		e.trail.Append(spec.Ticket, spec.Technician, audit.KindChange, c.String(), true)
		e.meter.Counter("heimdall_enforcer_changes_applied_total").Inc()
	}
	post := verify.CheckMetered(dataplane.ComputeWithOptions(prod, dataplane.Options{Meter: e.meter}), e.policies, e.meter)
	if !post.OK() {
		outcome := e.rollbackPush(tgt, policy, rng, backup, devices, id, cid,
			fmt.Sprintf("post-apply verification failed: %d violations", len(post.Violations)))
		d.Accepted = false
		d.Violations = post.Violations
		e.countCommit(false)
		if outcome == "quarantined" {
			return d, fmt.Errorf("enforcer: post-apply verification failed; rollback failed, production quarantined")
		}
		return d, fmt.Errorf("enforcer: post-apply verification failed (rolled back)")
	}
	mirrorTo(tgt, e.journal.Committed(cid, fmt.Sprintf("%d changes", len(ordered))))
	e.trail.Append(spec.Ticket, spec.Technician, audit.KindSession,
		fmt.Sprintf("committed %d changes to production", len(ordered)), true)
	// Production changed: every cached review verdict is now stale.
	e.InvalidateReviews()
	e.countCommit(true)
	return d, nil
}

// countCommit records one commit outcome.
func (e *Enforcer) countCommit(accepted bool) {
	e.meter.Counter("heimdall_enforcer_commits_total",
		telemetry.L("accepted", fmt.Sprintf("%t", accepted))).Inc()
}
