package enforcer

import (
	"math/rand"
	"net/netip"
	"strings"
	"testing"

	"heimdall/internal/audit"
	"heimdall/internal/config"
	"heimdall/internal/dataplane"
	"heimdall/internal/enclave"
	"heimdall/internal/netmodel"
	"heimdall/internal/privilege"
	"heimdall/internal/spec"
	"heimdall/internal/verify"
)

// prod: h1 - r1 - h2, plus sensitive h3 behind the same router guarded by
// an isolation-enforcing ACL.
func prod() *netmodel.Network {
	n := netmodel.NewNetwork("prod")
	r1 := n.AddDevice("r1", netmodel.Router)
	for i, sub := range []string{"10.1.0", "10.2.0", "10.3.0"} {
		name := []string{"h1", "h2", "h3"}[i]
		itf := []string{"Gi0/0", "Gi0/1", "Gi0/2"}[i]
		h := n.AddDevice(name, netmodel.Host)
		n.MustConnect(name, "eth0", "r1", itf)
		h.Interface("eth0").Addr = netip.MustParsePrefix(sub + ".10/24")
		h.DefaultGateway = netip.MustParseAddr(sub + ".1")
		r1.Interface(itf).Addr = netip.MustParsePrefix(sub + ".1/24")
	}
	guard := r1.ACL("GUARD", true)
	guard.InsertEntry(netmodel.ACLEntry{Seq: 10, Action: netmodel.Deny, Proto: netmodel.AnyProto,
		Dst: netip.MustParsePrefix("10.3.0.0/24")})
	guard.InsertEntry(netmodel.ACLEntry{Seq: 20, Action: netmodel.Permit})
	r1.Interface("Gi0/0").ACLIn = "GUARD"
	r1.Interface("Gi0/1").ACLIn = "GUARD"
	return n
}

func newEnforcer(n *netmodel.Network) *Enforcer {
	platform := enclave.NewPlatformFromSeed("test")
	encl := platform.Load("heimdall-enforcer-v1")
	policies := spec.Mine(dataplane.Compute(n), n, spec.Options{Sensitive: map[string]bool{"h3": true}})
	return New(encl, policies)
}

func allowSpec(rules ...privilege.Rule) *privilege.Spec {
	return &privilege.Spec{Ticket: "T1", Technician: "alice", Rules: rules}
}

func aclSpec() *privilege.Spec {
	return allowSpec(privilege.Rule{Effect: privilege.AllowEffect, Action: "config.acl.*", Resource: "device:r1"})
}

func TestReviewAcceptsBenignChange(t *testing.T) {
	n := prod()
	e := newEnforcer(n)
	// Add a harmless permit for a port that is already reachable.
	changes := []config.Change{{
		Device: "r1", Op: config.OpAddACLEntry, ACLName: "GUARD",
		Entry: &netmodel.ACLEntry{Seq: 15, Action: netmodel.Permit, Proto: netmodel.TCP,
			Dst: netip.MustParsePrefix("10.2.0.10/32"), DstPort: 443},
	}}
	d := e.Review(n, changes, aclSpec())
	if !d.Accepted {
		t.Fatalf("benign change rejected: %+v", d)
	}
	if d.Checked == 0 {
		t.Fatal("no policies checked")
	}
	// Review must not mutate production.
	if len(n.Device("r1").ACLs["GUARD"].Entries) != 2 {
		t.Fatal("review mutated production")
	}
}

func TestReviewRejectsMaliciousPermit(t *testing.T) {
	// The paper's §4.3 scenario: the technician also opens h2 -> h3
	// (sensitive), which violates an isolation policy.
	n := prod()
	e := newEnforcer(n)
	changes := []config.Change{{
		Device: "r1", Op: config.OpAddACLEntry, ACLName: "GUARD",
		Entry: &netmodel.ACLEntry{Seq: 5, Action: netmodel.Permit, Proto: netmodel.AnyProto,
			Dst: netip.MustParsePrefix("10.3.0.0/24")},
	}}
	d := e.Review(n, changes, aclSpec())
	if d.Accepted {
		t.Fatal("malicious permit accepted")
	}
	if len(d.Violations) == 0 {
		t.Fatal("no violations reported")
	}
	found := false
	for _, v := range d.Violations {
		if v.Policy.Kind == verify.Isolation && v.Policy.Dst == "h3" {
			found = true
			if v.Trace == nil || !v.Trace.Delivered() {
				t.Error("isolation violation lacks a delivered counterexample")
			}
		}
	}
	if !found {
		t.Fatalf("expected isolation violation, got %v", d.Violations)
	}
}

func TestReviewRejectsUnauthorizedChange(t *testing.T) {
	n := prod()
	e := newEnforcer(n)
	// Spec only allows ACL changes; an interface change sneaks in.
	changes := []config.Change{{
		Device: "r1", Op: config.OpSetInterface,
		Interface: &netmodel.Interface{Name: "Gi0/1", Shutdown: true},
	}}
	d := e.Review(n, changes, aclSpec())
	if d.Accepted || len(d.Unauthorized) != 1 {
		t.Fatalf("unauthorized change not caught: %+v", d)
	}
	if !strings.Contains(d.Reason(), "unauthorized") {
		t.Fatalf("Reason = %q", d.Reason())
	}
}

func TestCommitAppliesAndAudits(t *testing.T) {
	n := prod()
	e := newEnforcer(n)
	changes := []config.Change{{
		Device: "r1", Op: config.OpAddACLEntry, ACLName: "GUARD",
		Entry: &netmodel.ACLEntry{Seq: 15, Action: netmodel.Permit, Proto: netmodel.TCP,
			Dst: netip.MustParsePrefix("10.2.0.10/32"), DstPort: 443},
	}}
	d, err := e.Commit(n, changes, aclSpec())
	if err != nil || !d.Accepted {
		t.Fatalf("commit failed: %v %+v", err, d)
	}
	if len(n.Device("r1").ACLs["GUARD"].Entries) != 3 {
		t.Fatal("change not applied to production")
	}
	// Audit trail recorded the change and verifies.
	var changeEntries int
	for _, entry := range e.Trail().Entries() {
		if entry.Kind == audit.KindChange {
			changeEntries++
		}
	}
	if changeEntries != 1 {
		t.Fatalf("audit change entries = %d", changeEntries)
	}
	if err := e.Trail().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestCommitRejectedLeavesProductionUntouched(t *testing.T) {
	n := prod()
	e := newEnforcer(n)
	before := len(n.Device("r1").ACLs["GUARD"].Entries)
	changes := []config.Change{{
		Device: "r1", Op: config.OpAddACLEntry, ACLName: "GUARD",
		Entry: &netmodel.ACLEntry{Seq: 5, Action: netmodel.Permit, Proto: netmodel.AnyProto,
			Dst: netip.MustParsePrefix("10.3.0.0/24")},
	}}
	if _, err := e.Commit(n, changes, aclSpec()); err == nil {
		t.Fatal("violating commit accepted")
	}
	if len(n.Device("r1").ACLs["GUARD"].Entries) != before {
		t.Fatal("rejected commit mutated production")
	}
}

func TestCommitRollsBackOnApplyFailure(t *testing.T) {
	n := prod()
	e := newEnforcer(n)
	// Two changes where the second cannot apply (removing a nonexistent
	// entry): verification sees a net effect that is benign on the shadow
	// copy... actually removal of a missing entry fails on the shadow too,
	// so to exercise the mid-apply rollback we use a change set that
	// passes review but whose scheduled order hits a conflict. Simplest:
	// duplicate removal of the same entry.
	changes := []config.Change{
		{Device: "r1", Op: config.OpRemoveACLEntry, ACLName: "GUARD", Seq: 10},
		{Device: "r1", Op: config.OpRemoveACLEntry, ACLName: "GUARD", Seq: 10},
	}
	// Review fails already (does not apply cleanly) — which is the
	// desired gate; production stays untouched.
	if _, err := e.Commit(n, changes, aclSpec()); err == nil {
		t.Fatal("duplicate removal accepted")
	}
	if len(n.Device("r1").ACLs["GUARD"].Entries) != 2 {
		t.Fatal("production mutated by failed commit")
	}
}

func TestScheduleOrdering(t *testing.T) {
	permit := config.Change{Device: "r9", Op: config.OpAddACLEntry, ACLName: "A",
		Entry: &netmodel.ACLEntry{Seq: 10, Action: netmodel.Permit}}
	deny := config.Change{Device: "r1", Op: config.OpAddACLEntry, ACLName: "A",
		Entry: &netmodel.ACLEntry{Seq: 20, Action: netmodel.Deny}}
	removal := config.Change{Device: "r1", Op: config.OpRemoveACLEntry, ACLName: "A", Seq: 30}
	shutdown := config.Change{Device: "r1", Op: config.OpSetInterface,
		Interface: &netmodel.Interface{Name: "Gi0/0", Shutdown: true}}
	routeAdd := config.Change{Device: "r2", Op: config.OpAddStaticRoute,
		Route: &netmodel.StaticRoute{Prefix: netip.MustParsePrefix("0.0.0.0/0"), NextHop: netip.MustParseAddr("10.0.0.1")}}
	vlanSet := config.Change{Device: "r3", Op: config.OpSetVLAN, VLAN: &netmodel.VLAN{ID: 10}}

	in := []config.Change{shutdown, removal, deny, permit, routeAdd, vlanSet}
	out := Schedule(in)

	pos := func(c config.Change) int {
		for i, o := range out {
			if o.Op == c.Op && o.Device == c.Device {
				return i
			}
		}
		return -1
	}
	// Additive before subtractive.
	if !(pos(permit) < pos(deny)) {
		t.Errorf("permit should precede deny add: %v", out)
	}
	if !(pos(vlanSet) < pos(routeAdd)) {
		t.Errorf("vlan definition should precede route add: %v", out)
	}
	if !(pos(routeAdd) < pos(shutdown)) {
		t.Errorf("route add should precede interface change: %v", out)
	}
	if !(pos(shutdown) < pos(removal)) {
		t.Errorf("subtractive changes must come last: %v", out)
	}
	// Input is not mutated.
	if in[0].Op != config.OpSetInterface {
		t.Error("Schedule mutated its input")
	}
}

func TestIncrementalVerification(t *testing.T) {
	n := prod()
	e := newEnforcer(n)
	full := e.Review(n, []config.Change{{
		Device: "r1", Op: config.OpAddACLEntry, ACLName: "GUARD",
		Entry: &netmodel.ACLEntry{Seq: 15, Action: netmodel.Permit, Proto: netmodel.TCP,
			Dst: netip.MustParsePrefix("10.2.0.10/32"), DstPort: 8080},
	}}, aclSpec())

	e.Incremental = true
	inc := e.Review(n, []config.Change{{
		Device: "r1", Op: config.OpAddACLEntry, ACLName: "GUARD",
		Entry: &netmodel.ACLEntry{Seq: 16, Action: netmodel.Permit, Proto: netmodel.TCP,
			Dst: netip.MustParsePrefix("10.2.0.10/32"), DstPort: 8081},
	}}, aclSpec())

	if !full.Accepted || !inc.Accepted {
		t.Fatalf("reviews rejected: %+v %+v", full, inc)
	}
	if inc.Checked > full.Checked {
		t.Fatalf("incremental checked %d > full %d", inc.Checked, full.Checked)
	}
	// In this topology everything routes through r1, so incremental
	// verification still checks every policy; the invariant that matters
	// is it never checks fewer than the impacted set. Catching a
	// violation must still work incrementally:
	bad := e.Review(n, []config.Change{{
		Device: "r1", Op: config.OpAddACLEntry, ACLName: "GUARD",
		Entry: &netmodel.ACLEntry{Seq: 5, Action: netmodel.Permit, Proto: netmodel.AnyProto,
			Dst: netip.MustParsePrefix("10.3.0.0/24")},
	}}, aclSpec())
	if bad.Accepted {
		t.Fatal("incremental review missed a violation")
	}
}

func TestAttest(t *testing.T) {
	platform := enclave.NewPlatformFromSeed("attest-test")
	encl := platform.Load("heimdall-enforcer-v1")
	e := New(encl, nil)
	nonce := []byte("customer-nonce")
	report := e.Attest(nonce)
	if err := platform.VerifyReport(report, encl.Measurement(), nonce); err != nil {
		t.Fatalf("attestation failed: %v", err)
	}
}

func TestReviewReportsReachabilityDeltas(t *testing.T) {
	n := prod()
	e := newEnforcer(n)
	e.ReportDeltas = true
	// A change that flips reachability: permit everything to h3 — caught
	// as a violation AND explained by the deltas.
	d := e.Review(n, []config.Change{{
		Device: "r1", Op: config.OpAddACLEntry, ACLName: "GUARD",
		Entry: &netmodel.ACLEntry{Seq: 5, Action: netmodel.Permit, Proto: netmodel.AnyProto,
			Dst: netip.MustParsePrefix("10.3.0.0/24")},
	}}, aclSpec())
	if d.Accepted {
		t.Fatal("violating change accepted")
	}
	if len(d.Deltas) == 0 {
		t.Fatal("no deltas reported")
	}
	foundFlip := false
	for _, delta := range d.Deltas {
		if delta.Dst == "h3" && !delta.Before && delta.After {
			foundFlip = true
		}
		if delta.String() == "" {
			t.Error("empty delta string")
		}
	}
	if !foundFlip {
		t.Fatalf("expected h3 flip in deltas: %v", d.Deltas)
	}

	// A no-op-for-reachability change reports no deltas.
	d = e.Review(n, []config.Change{{
		Device: "r1", Op: config.OpAddACLEntry, ACLName: "GUARD",
		Entry: &netmodel.ACLEntry{Seq: 15, Action: netmodel.Permit, Proto: netmodel.TCP,
			Dst: netip.MustParsePrefix("10.2.0.10/32"), DstPort: 8443},
	}}, aclSpec())
	if !d.Accepted || len(d.Deltas) != 0 {
		t.Fatalf("benign change: accepted=%v deltas=%v", d.Accepted, d.Deltas)
	}
}

// TestSchedulePermutationProperty: Schedule must return a permutation of
// its input (nothing dropped, nothing invented) with every additive change
// before every subtractive one, for random change sets.
func TestSchedulePermutationProperty(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	mk := func() config.Change {
		switch r.Intn(6) {
		case 0:
			return config.Change{Device: dev(r), Op: config.OpAddACLEntry, ACLName: "A",
				Entry: &netmodel.ACLEntry{Seq: r.Intn(100), Action: netmodel.ACLAction(r.Intn(2))}}
		case 1:
			return config.Change{Device: dev(r), Op: config.OpRemoveACLEntry, ACLName: "A", Seq: r.Intn(100)}
		case 2:
			return config.Change{Device: dev(r), Op: config.OpSetInterface,
				Interface: &netmodel.Interface{Name: "Gi0/0", Shutdown: r.Intn(2) == 0}}
		case 3:
			return config.Change{Device: dev(r), Op: config.OpAddStaticRoute,
				Route: &netmodel.StaticRoute{Prefix: netip.MustParsePrefix("10.0.0.0/8"),
					NextHop: netip.MustParseAddr("10.0.0.1")}}
		case 4:
			return config.Change{Device: dev(r), Op: config.OpSetVLAN, VLAN: &netmodel.VLAN{ID: 1 + r.Intn(100)}}
		default:
			return config.Change{Device: dev(r), Op: config.OpRemoveVLAN, VLANID: 1 + r.Intn(100)}
		}
	}
	for trial := 0; trial < 100; trial++ {
		in := make([]config.Change, r.Intn(12))
		for i := range in {
			in[i] = mk()
		}
		out := Schedule(in)
		if len(out) != len(in) {
			t.Fatalf("trial %d: length changed: %d -> %d", trial, len(in), len(out))
		}
		// Multiset equality via string rendering.
		count := map[string]int{}
		for _, c := range in {
			count[c.String()]++
		}
		for _, c := range out {
			count[c.String()]--
		}
		for k, v := range count {
			if v != 0 {
				t.Fatalf("trial %d: multiset mismatch at %q", trial, k)
			}
		}
		// Phase invariant.
		seenSubtractive := false
		for _, c := range out {
			if !c.Additive() {
				seenSubtractive = true
			} else if seenSubtractive {
				t.Fatalf("trial %d: additive change after subtractive: %v", trial, out)
			}
		}
	}
}

func dev(r *rand.Rand) string { return []string{"r1", "r2", "r3"}[r.Intn(3)] }
