// Package dataplane computes the forwarding behaviour of a modeled network:
// L2 adjacency (switch fabrics, VLANs), per-device routing tables
// (connected, static, OSPF), longest-prefix-match FIBs, and hop-by-hop
// packet traces with ACL evaluation.
//
// A Snapshot freezes the behaviour of one network state. The verifier
// evaluates policies against snapshots; the twin network serves "show" and
// "ping" commands from them.
package dataplane

import (
	"net/netip"
)

// lpmNode is one node of a binary trie over IPv4 prefixes.
type lpmNode struct {
	child [2]*lpmNode
	// routes holds the FIB entries terminating exactly at this node.
	routes []FIBEntry
	valid  bool
}

// LPM is a longest-prefix-match table mapping IPv4 prefixes to FIB entries.
// The zero value is an empty table.
type LPM struct {
	root lpmNode
	size int
}

// Insert associates the prefix with the given FIB entries, replacing any
// previous entries for exactly that prefix.
func (t *LPM) Insert(p netip.Prefix, entries []FIBEntry) {
	p = p.Masked()
	v := addrBits(p.Addr())
	n := &t.root
	for i := 0; i < p.Bits(); i++ {
		b := (v >> (31 - i)) & 1
		if n.child[b] == nil {
			n.child[b] = &lpmNode{}
		}
		n = n.child[b]
	}
	if !n.valid {
		t.size++
	}
	n.valid = true
	n.routes = entries
}

// Lookup returns the FIB entries of the longest prefix containing addr and
// whether any prefix matched.
func (t *LPM) Lookup(addr netip.Addr) ([]FIBEntry, bool) {
	v := addrBits(addr)
	n := &t.root
	var best *lpmNode
	if n.valid {
		best = n
	}
	for i := 0; i < 32 && n != nil; i++ {
		b := (v >> (31 - i)) & 1
		n = n.child[b]
		if n != nil && n.valid {
			best = n
		}
	}
	if best == nil {
		return nil, false
	}
	return best.routes, true
}

// Len returns the number of distinct prefixes in the table.
func (t *LPM) Len() int { return t.size }

func addrBits(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
