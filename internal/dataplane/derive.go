package dataplane

import (
	"heimdall/internal/netmodel"
)

// ChangeKind classifies what a configuration change can affect, so Derive
// knows which parts of a prior snapshot stay valid. The classification is
// conservative: when in doubt, use ChangeTopology and pay a full recompute.
type ChangeKind int

const (
	// ChangeACL covers access-list edits (entries added/removed/replaced,
	// ACL bindings unchanged interfaces aside). ACLs gate TraceFrom only —
	// they never influence adjacency, OSPF, BGP, or any RIB — so a derived
	// snapshot reuses every computed structure.
	ChangeACL ChangeKind = iota
	// ChangeStatic covers static-route and host default-gateway edits on
	// one device. Statics are not redistributed into any protocol, so only
	// that device's RIB and FIB change.
	ChangeStatic
	// ChangeOSPF covers OSPF process edits (costs, passive interfaces,
	// enabled networks, process removal). The link-state pass reads the L2
	// adjacency but never feeds back into it, and nothing is redistributed
	// between OSPF and BGP, so adjacency, BGP routes, and BGP sessions all
	// stay valid; the OSPF pass reruns and every RIB is rebuilt.
	ChangeOSPF
	// ChangeBGP covers BGP process edits (neighbors, networks, AS changes,
	// process removal). Sessions and routes rerun; adjacency and OSPF stay.
	ChangeBGP
	// ChangeTopology covers anything that can alter L2 adjacency or address
	// ownership: interface state/addresses, VLANs, links. Everything is
	// recomputed from scratch.
	ChangeTopology
)

// String names the change kind.
func (k ChangeKind) String() string {
	switch k {
	case ChangeACL:
		return "acl"
	case ChangeStatic:
		return "static"
	case ChangeOSPF:
		return "ospf"
	case ChangeBGP:
		return "bgp"
	case ChangeTopology:
		return "topology"
	default:
		return "unknown"
	}
}

// Change names one mutated device and what class of state the mutation can
// affect on it.
type Change struct {
	Device string
	Kind   ChangeKind
}

// ChangeSet is the list of changes between the snapshot's network and the
// network a derived snapshot is requested for.
type ChangeSet []Change

// Derive builds a snapshot of n by reusing every part of the receiver that
// the change set provably cannot invalidate, recomputing only the rest.
// n must be the receiver's network modified ONLY as described by changes
// (typically a CloneCOW with the listed devices mutated); an undeclared
// change silently yields a wrong snapshot. The derived snapshot is
// byte-identical to ComputeWithOptions(n, s.opts) — the TestDeriveMatchesCompute
// oracle pins this for every change class — and always starts with a fresh
// flow cache, since memoized traces from the old network would be stale.
//
// Reuse per class (see ChangeKind docs for the exactness argument):
//
//	ACL      → everything shared (adjacency, sessions, OSPF, BGP, RIBs, FIBs)
//	Static   → shared except the changed devices' RIBs+FIBs
//	OSPF     → adjacency, sessions, BGP shared; OSPF pass rerun, RIBs rebuilt
//	BGP      → adjacency, OSPF shared; sessions+BGP rerun, RIBs rebuilt
//	Topology → full ComputeWithOptions fallback
func (s *Snapshot) Derive(n *netmodel.Network, changes ChangeSet) *Snapshot {
	kinds := [5]bool{}
	var staticDevs []string
	for _, c := range changes {
		kinds[c.Kind] = true
		if c.Kind == ChangeStatic {
			staticDevs = append(staticDevs, c.Device)
		}
	}

	// Anything touching L2 adjacency or address ownership invalidates the
	// whole snapshot: fall back to a from-scratch compute.
	if kinds[ChangeTopology] {
		return ComputeWithOptions(n, s.opts)
	}

	d := &Snapshot{
		net:        n,
		adj:        s.adj,
		sessions:   s.sessions,
		opts:       s.opts,
		ospfRoutes: s.ospfRoutes,
		bgpRoutes:  s.bgpRoutes,
		owner:      s.owner,
		flows:      newFlowCache(s.opts.Meter),
	}

	switch {
	case kinds[ChangeOSPF] || kinds[ChangeBGP]:
		// Protocol-level change: rerun the affected protocol pass(es) over
		// the unchanged adjacency, then rebuild every RIB (any device may
		// have learned or lost routes).
		if kinds[ChangeOSPF] {
			d.ospfRoutes = computeOSPF(n, s.adj)
		}
		if kinds[ChangeBGP] {
			d.sessions = bgpSessions(n, s.adj)
			d.bgpRoutes = computeBGP(n, s.adj)
		}
		d.ribs, d.fibs = buildRIBs(n, n.DeviceNames(), s.adj, d.ospfRoutes, d.bgpRoutes)

	case kinds[ChangeStatic]:
		// Statics never leave their device: rebuild only the changed
		// devices' RIBs+FIBs, sharing all others via copied maps.
		d.ribs = make(map[string][]FIBEntry, len(s.ribs))
		d.fibs = make(map[string]*LPM, len(s.fibs))
		for dev, rib := range s.ribs {
			d.ribs[dev] = rib
		}
		for dev, fib := range s.fibs {
			d.fibs[dev] = fib
		}
		for _, dev := range staticDevs {
			if n.Devices[dev] == nil {
				continue
			}
			rib := ribFor(n, dev, s.adj, s.ospfRoutes, s.bgpRoutes)
			d.ribs[dev] = rib
			d.fibs[dev] = fibFrom(rib)
		}

	default:
		// ACL-only (or empty) change set: ACLs gate TraceFrom, not routing.
		// Share the RIB and FIB maps outright; only the flow cache is new.
		d.ribs = s.ribs
		d.fibs = s.fibs
	}
	return d
}
