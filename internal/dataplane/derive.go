package dataplane

import (
	"sort"

	"heimdall/internal/netmodel"
)

// ChangeKind classifies what a configuration change can affect, so Derive
// knows which parts of a prior snapshot stay valid. The classification is
// conservative: when in doubt, use ChangeTopology and pay a full recompute.
type ChangeKind int

const (
	// ChangeACL covers access-list edits (entries added/removed/replaced,
	// ACL bindings unchanged interfaces aside). ACLs gate TraceFrom only —
	// they never influence adjacency, OSPF, BGP, or any RIB — so a derived
	// snapshot reuses every computed structure.
	ChangeACL ChangeKind = iota
	// ChangeStatic covers static-route and host default-gateway edits on
	// one device. Statics are not redistributed into any protocol, so only
	// that device's RIB and FIB change.
	ChangeStatic
	// ChangeOSPF covers OSPF process edits (costs, passive interfaces,
	// enabled networks, process removal). The link-state pass reads the L2
	// adjacency but never feeds back into it, and nothing is redistributed
	// between OSPF and BGP, so adjacency, BGP routes, and BGP sessions all
	// stay valid; the link-state pass reruns incrementally and only the
	// RIBs whose OSPF inputs differed are rebuilt.
	ChangeOSPF
	// ChangeBGP covers BGP process edits (neighbors, networks, AS changes,
	// process removal). Sessions and routes rerun; adjacency and OSPF stay,
	// and only RIBs whose BGP inputs differed are rebuilt.
	ChangeBGP
	// ChangeL2 covers mutations confined to the switching fabric of the
	// changed device: VLAN definition edits, access-port VLAN moves, and
	// state changes of ports that are not L3 endpoints (no address, or
	// access/trunk mode — see netmodel.InterfaceL2Only). Such a change can
	// rewire L2 adjacency — and through it OSPF adjacencies and BGP session
	// reachability, which the derivation re-checks — but can never alter
	// address ownership, connected routes, or static resolution, so every
	// structure the re-checked inputs confirm unchanged is shared with the
	// parent by identity. A pure-L2 rewire (the common case: VLAN renames,
	// moves among L2-only segments) shares ALL routing state.
	ChangeL2
	// ChangeL3Topology covers interface-level changes on the changed
	// devices that can affect L3 state: shutdowns of addressed ports,
	// address edits, SVI changes. Adjacency and address ownership are
	// recomputed; the link-state pass reruns incrementally (SPF only for
	// sources whose reachable LSDB component changed), BGP reruns only when
	// the session set or a changed device's BGP process could differ, and
	// RIBs rebuild only for devices whose route inputs actually changed.
	ChangeL3Topology
	// ChangeTopology is the conservative fallback for anything not
	// confined to the declared devices or not classifiable: link edits,
	// device add/remove, unknown operations. Everything is recomputed from
	// scratch.
	ChangeTopology
)

// changeKindCount sizes per-kind lookup tables.
const changeKindCount = int(ChangeTopology) + 1

// String names the change kind.
func (k ChangeKind) String() string {
	switch k {
	case ChangeACL:
		return "acl"
	case ChangeStatic:
		return "static"
	case ChangeOSPF:
		return "ospf"
	case ChangeBGP:
		return "bgp"
	case ChangeL2:
		return "l2"
	case ChangeL3Topology:
		return "l3-topology"
	case ChangeTopology:
		return "topology"
	default:
		return "unknown"
	}
}

// Change names one mutated device and what class of state the mutation can
// affect on it.
type Change struct {
	Device string
	Kind   ChangeKind
}

// ChangeSet is the list of changes between the snapshot's network and the
// network a derived snapshot is requested for.
type ChangeSet []Change

// Derive builds a snapshot of n by reusing every part of the receiver that
// the change set provably cannot invalidate, recomputing only the rest.
// n must be the receiver's network modified ONLY as described by changes
// (typically a CloneCOW with the listed devices mutated); an undeclared
// change silently yields a wrong snapshot. The derived snapshot is
// byte-identical to ComputeWithOptions(n, s.opts) — the TestDeriveMatchesCompute
// oracle pins this for every change class — and always starts with a fresh
// flow cache, since memoized traces from the old network would be stale.
//
// Reuse per class (see ChangeKind docs for the exactness argument):
//
//	ACL        → everything shared (adjacency, sessions, OSPF, BGP, RIBs, FIBs)
//	Static     → shared except the changed devices' RIBs+FIBs
//	OSPF       → adjacency, sessions, BGP shared; incremental SPF, diffed RIBs
//	BGP        → adjacency, OSPF shared; sessions+BGP rerun, diffed RIBs
//	L2         → adjacency rebuilt; owner shared; OSPF/BGP rerun only if the
//	             LSDB or session set changed, routes shared per source/device
//	L3Topology → adjacency+owner rebuilt; incremental SPF, session-checked
//	             BGP, RIBs rebuilt for changed devices and route diffs
//	Topology   → full ComputeWithOptions fallback
func (s *Snapshot) Derive(n *netmodel.Network, changes ChangeSet) *Snapshot {
	return s.DeriveWithMemo(n, changes, nil)
}

// DeriveWithMemo is Derive with an optional cross-derivation SPF memo.
// When the mutated network's LSDB serializes to a key the memo has seen,
// the whole link-state pass is skipped in favor of the memoized routes —
// the big win for sweeps whose trials keep producing the same L3 graph.
// A nil memo disables memoization; the same memo may be shared by
// concurrent derivations.
func (s *Snapshot) DeriveWithMemo(n *netmodel.Network, changes ChangeSet, memo *SPFMemo) *Snapshot {
	kinds := [changeKindCount]bool{}
	// ribDirty accumulates the devices whose RIB inputs changed. Static and
	// L3-topology changes can alter the changed device's connected/static
	// routes, so those are dirty up front; protocol route differences are
	// discovered (and marked) by the diffs below.
	ribDirty := make(map[string]bool)
	for _, c := range changes {
		kinds[c.Kind] = true
		if c.Kind == ChangeStatic || c.Kind == ChangeL3Topology {
			ribDirty[c.Device] = true
		}
	}

	// Anything that may rewire links between devices or add/remove devices
	// invalidates the whole snapshot: fall back to a from-scratch compute.
	if kinds[ChangeTopology] {
		return ComputeWithOptions(n, s.opts)
	}

	d := &Snapshot{
		net:        n,
		adj:        s.adj,
		sessions:   s.sessions,
		opts:       s.opts,
		ospfRoutes: s.ospfRoutes,
		bgpRoutes:  s.bgpRoutes,
		owner:      s.owner,
		lsdb:       s.lsdb,
		flows:      newFlowCache(s.opts.Meter),
	}

	topo := kinds[ChangeL2] || kinds[ChangeL3Topology]
	if topo {
		groups := computeL2Groups(n)
		if !kinds[ChangeL3Topology] && groupsMatch(groups, s.adj) {
			// The entire L3-visible effect of an L2 change flows through
			// the adjacency relation (it is how the switching fabric feeds
			// OSPF adjacencies and BGP session reachability, and an L2
			// change can touch neither addresses nor protocol config).
			// Unchanged adjacency therefore proves every L3 structure of
			// the parent — LSDB, SPF results, sessions, routes, RIBs — is
			// still exact: keep them all shared and skip the protocol
			// re-checks outright. Comparing the factored component
			// partition avoids even materializing the peer lists.
			topo = false
		} else {
			d.adj = adjacencyFromGroups(groups)
			if kinds[ChangeL3Topology] {
				// An L2-only change cannot move addresses, so owner is
				// shared unless an L3-topology change is present.
				d.owner = buildOwner(n)
			}
		}
	}

	if topo || kinds[ChangeOSPF] {
		changedDevs := make(map[string]bool, len(changes))
		for _, c := range changes {
			changedDevs[c.Device] = true
		}
		d.lsdb = deriveLSDB(s.lsdb, s.net, n, s.adj, d.adj, topo, changedDevs)
		d.ospfRoutes = s.incrementalOSPF(d.lsdb, memo, ribDirty)
	}

	if topo || kinds[ChangeBGP] {
		// A topology change can only affect BGP by forming or tearing down
		// sessions, or by altering a changed device's own origination
		// (connected subnets under "redistribute connected"). If neither is
		// possible, the parent's sessions and routes stay valid as-is.
		newSessions := bgpSessions(n, d.adj)
		same := sessionsEqual(newSessions, s.sessions)
		if kinds[ChangeBGP] || !same || bgpConfigTouched(s.net, n, changes) {
			if same {
				d.sessions = s.sessions
			} else {
				d.sessions = newSessions
			}
			d.bgpRoutes = reconcileRoutes(s.bgpRoutes, computeBGPOver(n, newSessions), ribDirty)
		}
	}

	if len(ribDirty) == 0 {
		// No device's RIB inputs changed: share the maps outright.
		d.ribs = s.ribs
		d.fibs = s.fibs
		return d
	}
	devs := make([]string, 0, len(ribDirty))
	for dev := range ribDirty {
		if n.Devices[dev] != nil {
			devs = append(devs, dev)
		}
	}
	sort.Strings(devs)
	d.ribs = make(map[string][]FIBEntry, len(s.ribs))
	d.fibs = make(map[string]*LPM, len(s.fibs))
	for dev, rib := range s.ribs {
		d.ribs[dev] = rib
	}
	for dev, fib := range s.fibs {
		d.fibs[dev] = fib
	}
	ribs, fibs := buildRIBs(n, devs, d.adj, d.ospfRoutes, d.bgpRoutes)
	for dev, rib := range ribs {
		d.ribs[dev] = rib
	}
	for dev, fib := range fibs {
		d.fibs[dev] = fib
	}
	return d
}

// incrementalOSPF computes the OSPF route map for the new LSDB, reusing
// the receiver's per-source route slices by identity wherever the source's
// reachable component fingerprint is unchanged, consulting the memo for
// whole-LSDB hits, and marking every device whose route set differs in
// ribDirty. The result is DeepEqual to nl.routes() — including the
// nil-iff-no-routers convention — without rerunning SPF for sources whose
// answer is already known.
func (s *Snapshot) incrementalOSPF(nl *ospfLSDB, memo *SPFMemo, ribDirty map[string]bool) map[string][]FIBEntry {
	if len(nl.sources) == 0 {
		for dev := range s.ospfRoutes {
			ribDirty[dev] = true
		}
		return nil
	}
	if memo != nil {
		if routes, ok := memo.lookup(nl.canonicalKey()); ok {
			markRouteDiff(s.ospfRoutes, routes, ribDirty)
			return routes
		}
	}

	old := s.lsdb
	out := make(map[string][]FIBEntry, len(nl.sources))
	changed := false
	var stale []int
	for i, src := range nl.sources {
		reusable := false
		if old != nil {
			if fp, ok := old.fingerprint(src); ok {
				nfp, _ := nl.fingerprint(src)
				reusable = fp == nfp
			}
		}
		if reusable {
			// Identical reachable component: SPF from this source is
			// guaranteed to produce the same routes — share the parent's
			// slice by identity without recomputing.
			if r, ok := s.ospfRoutes[src]; ok {
				out[src] = r
			}
			continue
		}
		stale = append(stale, i)
	}
	slots := make([][]FIBEntry, len(stale))
	fanOut(len(stale), func(k int) {
		slots[k] = nl.routesFrom(stale[k])
	})
	for k, i := range stale {
		src := nl.sources[i]
		oldRoutes, had := s.ospfRoutes[src]
		if had && fibSlicesEqual(slots[k], oldRoutes) {
			// Recomputed to the same answer: keep the old slice so RIB
			// sharing (and identity-based tests) see no change.
			out[src] = oldRoutes
			continue
		}
		if len(slots[k]) > 0 {
			out[src] = slots[k]
		}
		if had || len(slots[k]) > 0 {
			ribDirty[src] = true
			changed = true
		}
	}
	// Devices that dropped out of the router set lose their OSPF routes.
	for dev := range s.ospfRoutes {
		if _, ok := nl.index[dev]; !ok {
			ribDirty[dev] = true
			changed = true
		}
	}
	if !changed && s.ospfRoutes != nil && len(out) == len(s.ospfRoutes) {
		// Nothing differed: share the whole map by identity.
		out = s.ospfRoutes
	}
	if memo != nil {
		out = memo.store(nl.canonicalKey(), out)
	}
	return out
}

// markRouteDiff marks in dirty every device whose route slice differs
// between the two maps (present in only one, or content-unequal).
func markRouteDiff(oldRoutes, newRoutes map[string][]FIBEntry, dirty map[string]bool) {
	for dev, nr := range newRoutes {
		if or, ok := oldRoutes[dev]; !ok || !fibSlicesEqual(or, nr) {
			dirty[dev] = true
		}
	}
	for dev := range oldRoutes {
		if _, ok := newRoutes[dev]; !ok {
			dirty[dev] = true
		}
	}
}

// reconcileRoutes diffs a recomputed protocol route map against the old
// one: devices whose routes are content-equal get the old slice back (so
// downstream identity checks can share RIBs), devices that differ are
// marked dirty, and when nothing differed at all the old map itself is
// returned. Preserves the nil-vs-empty distinction of the compute
// functions exactly.
func reconcileRoutes(oldRoutes, newRoutes map[string][]FIBEntry, dirty map[string]bool) map[string][]FIBEntry {
	if newRoutes == nil {
		for dev := range oldRoutes {
			dirty[dev] = true
		}
		return nil
	}
	identical := oldRoutes != nil
	for dev, nr := range newRoutes {
		if or, ok := oldRoutes[dev]; ok && fibSlicesEqual(or, nr) {
			newRoutes[dev] = or
		} else {
			dirty[dev] = true
			identical = false
		}
	}
	for dev := range oldRoutes {
		if _, ok := newRoutes[dev]; !ok {
			dirty[dev] = true
			identical = false
		}
	}
	if identical {
		return oldRoutes
	}
	return newRoutes
}

// bgpConfigTouched reports whether any changed device runs BGP in the old
// or new network. Origination (configured networks plus redistributed
// connected subnets) is a function of a device's own config and
// interfaces, so with the session set unchanged and no changed device
// running BGP, the path-vector outcome cannot differ.
func bgpConfigTouched(oldNet, newNet *netmodel.Network, changes ChangeSet) bool {
	for _, c := range changes {
		if d := oldNet.Devices[c.Device]; d != nil && d.BGP != nil {
			return true
		}
		if d := newNet.Devices[c.Device]; d != nil && d.BGP != nil {
			return true
		}
	}
	return false
}

// sessionsEqual reports whether two session lists are element-wise equal
// (both are in canonical sorted order).
func sessionsEqual(a, b []bgpSession) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// fibSlicesEqual reports element-wise equality of two route slices.
func fibSlicesEqual(a, b []FIBEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
