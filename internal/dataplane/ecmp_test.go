package dataplane

import (
	"testing"

	"heimdall/internal/netmodel"
)

// diamondNet builds h1 - r1 - {r2,r3} - r4 - h2 with equal-cost paths.
func diamondNet() *netmodel.Network {
	n := netmodel.NewNetwork("diamond")
	for _, name := range []string{"r1", "r2", "r3", "r4"} {
		n.AddDevice(name, netmodel.Router)
	}
	n.AddDevice("h1", netmodel.Host)
	n.AddDevice("h2", netmodel.Host)
	n.MustConnect("h1", "eth0", "r1", "Gi0/9")
	n.MustConnect("r1", "Gi0/0", "r2", "Gi0/0")
	n.MustConnect("r1", "Gi0/1", "r3", "Gi0/0")
	n.MustConnect("r2", "Gi0/1", "r4", "Gi0/0")
	n.MustConnect("r3", "Gi0/1", "r4", "Gi0/1")
	n.MustConnect("r4", "Gi0/9", "h2", "eth0")
	addr := map[string]string{
		"h1:eth0": "10.1.0.10/24", "r1:Gi0/9": "10.1.0.1/24",
		"r1:Gi0/0": "10.0.12.1/30", "r2:Gi0/0": "10.0.12.2/30",
		"r1:Gi0/1": "10.0.13.1/30", "r3:Gi0/0": "10.0.13.2/30",
		"r2:Gi0/1": "10.0.24.1/30", "r4:Gi0/0": "10.0.24.2/30",
		"r3:Gi0/1": "10.0.34.1/30", "r4:Gi0/1": "10.0.34.2/30",
		"r4:Gi0/9": "10.2.0.1/24", "h2:eth0": "10.2.0.10/24",
	}
	for k, v := range addr {
		dev, ifn, _ := cut(k)
		n.Device(dev).Interface(ifn).Addr = pfx(v)
	}
	n.Device("h1").DefaultGateway = ip("10.1.0.1")
	n.Device("h2").DefaultGateway = ip("10.2.0.1")
	for _, name := range []string{"r1", "r2", "r3", "r4"} {
		n.Device(name).OSPF = &netmodel.OSPFProcess{ProcessID: 1,
			Networks: []netmodel.OSPFNetwork{{Prefix: pfx("10.0.0.0/8"), Area: 0}},
			Passive:  map[string]bool{"Gi0/9": true}}
	}
	return n
}

func TestECMPFlowHashSpreadsFlows(t *testing.T) {
	n := diamondNet()
	s := ComputeWithOptions(n, Options{FlowHashECMP: true})

	src, dst := ip("10.1.0.10"), ip("10.2.0.10")
	paths := map[string]int{}
	for port := uint16(1000); port < 1200; port++ {
		tr := s.TraceFrom("h1", Flow{Proto: netmodel.TCP, Src: src, Dst: dst, SrcPort: port, DstPort: 80})
		if !tr.Delivered() {
			t.Fatalf("port %d: %s", port, tr)
		}
		for _, hop := range tr.Hops {
			if hop.Device == "r2" || hop.Device == "r3" {
				paths[hop.Device]++
			}
		}
	}
	if paths["r2"] == 0 || paths["r3"] == 0 {
		t.Fatalf("flow hashing did not spread load: %v", paths)
	}
	// Reasonable balance: neither path carries everything.
	if paths["r2"] < 20 || paths["r3"] < 20 {
		t.Fatalf("badly skewed: %v", paths)
	}
}

func TestECMPFlowHashDeterministicPerFlow(t *testing.T) {
	n := diamondNet()
	s := ComputeWithOptions(n, Options{FlowHashECMP: true})
	f := Flow{Proto: netmodel.TCP, Src: ip("10.1.0.10"), Dst: ip("10.2.0.10"), SrcPort: 4242, DstPort: 80}
	first := s.TraceFrom("h1", f).Path()
	for i := 0; i < 10; i++ {
		if got := s.TraceFrom("h1", f).Path(); !equalStrings(got, first) {
			t.Fatalf("same flow took different paths: %v vs %v", got, first)
		}
	}
}

func TestECMPDefaultIsFirstEntry(t *testing.T) {
	n := diamondNet()
	s := Compute(n)
	// Without flow hashing, every flow takes the same (sorted-first) path.
	for port := uint16(1000); port < 1050; port++ {
		tr := s.TraceFrom("h1", Flow{Proto: netmodel.TCP,
			Src: ip("10.1.0.10"), Dst: ip("10.2.0.10"), SrcPort: port, DstPort: 80})
		if !tr.Delivered() || !tr.Traverses("r2") {
			t.Fatalf("default ECMP should always pick the r2 path: %s", tr)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestOSPFCostSteersPath(t *testing.T) {
	n := diamondNet()
	// Make the r2 branch expensive: traffic prefers r3.
	n.Device("r1").Interface("Gi0/0").OSPFCost = 10
	s := Compute(n)
	tr, err := s.Reach("h1", "h2", netmodel.ICMP, 0)
	if err != nil || !tr.Delivered() {
		t.Fatalf("h1->h2: %v %v", tr, err)
	}
	if !tr.Traverses("r3") || tr.Traverses("r2") {
		t.Fatalf("cost did not steer path: %v", tr.Path())
	}
	// Metric reflects the cheap path.
	for _, e := range s.RIB("r1") {
		if e.Proto == OSPF && e.Prefix == pfx("10.2.0.0/24") {
			if e.Metric != 2 {
				t.Fatalf("metric = %d, want 2 (r3 path)", e.Metric)
			}
			if e.OutIf != "Gi0/1" {
				t.Fatalf("egress = %s, want Gi0/1", e.OutIf)
			}
		}
	}

	// Equal costs again (both 10): ECMP returns.
	n.Device("r1").Interface("Gi0/1").OSPFCost = 10
	s = Compute(n)
	hops := 0
	for _, e := range s.RIB("r1") {
		if e.Proto == OSPF && e.Prefix == pfx("10.2.0.0/24") {
			hops++
		}
	}
	if hops != 2 {
		t.Fatalf("expected ECMP restored with equal costs, got %d next hops", hops)
	}
}

func TestOSPFCostAsymmetric(t *testing.T) {
	// Cost applies on the egress interface of the router that pays it, so
	// forward and reverse paths can legitimately differ.
	n := diamondNet()
	n.Device("r1").Interface("Gi0/0").OSPFCost = 10 // r1 avoids r2 outbound
	s := Compute(n)
	fwd, _ := s.Reach("h1", "h2", netmodel.ICMP, 0)
	rev, _ := s.Reach("h2", "h1", netmodel.ICMP, 0)
	if !fwd.Delivered() || !rev.Delivered() {
		t.Fatalf("traffic broken: %v %v", fwd, rev)
	}
	if fwd.Traverses("r2") {
		t.Fatalf("forward should avoid r2: %v", fwd.Path())
	}
	// Reverse is unaffected by r1's egress cost and keeps the sorted-first
	// choice (r2).
	if !rev.Traverses("r2") {
		t.Fatalf("reverse should still use r2: %v", rev.Path())
	}
}
