package dataplane

import (
	"fmt"
	"net/netip"
	"sort"

	"heimdall/internal/netmodel"
)

// RouteProto identifies how a route was learned.
type RouteProto int

const (
	// Connected routes cover the subnets of up, addressed interfaces.
	Connected RouteProto = iota
	// Static routes come from "ip route" statements.
	Static
	// OSPF routes are computed by the link-state process.
	OSPF
	// BGP routes are learned over eBGP sessions.
	BGP
)

// String returns the IOS-style route code letter ("C", "S", "O").
func (p RouteProto) String() string {
	switch p {
	case Connected:
		return "C"
	case Static:
		return "S"
	case OSPF:
		return "O"
	case BGP:
		return "B"
	default:
		return "?"
	}
}

// adminDistance returns the default administrative distance of the protocol.
func (p RouteProto) adminDistance() int {
	switch p {
	case Connected:
		return 0
	case Static:
		return 1
	case OSPF:
		return 110
	case BGP:
		return ebgpAdminDistance
	}
	return 255
}

// FIBEntry is one forwarding-table entry: a next hop (or directly connected
// subnet) through an egress interface.
type FIBEntry struct {
	Prefix netip.Prefix
	Proto  RouteProto
	// NextHop is the invalid Addr for connected routes.
	NextHop netip.Addr
	// OutIf is the egress interface name.
	OutIf string
	// AD and Metric order competing routes.
	AD     int
	Metric int
}

// Connected reports whether the entry is a directly connected subnet.
func (e FIBEntry) Connected() bool { return !e.NextHop.IsValid() }

// String renders the entry in show-ip-route style.
func (e FIBEntry) String() string {
	if e.Connected() {
		return fmt.Sprintf("%s %s is directly connected, %s", e.Proto, e.Prefix, e.OutIf)
	}
	return fmt.Sprintf("%s %s [%d/%d] via %s, %s", e.Proto, e.Prefix, e.AD, e.Metric, e.NextHop, e.OutIf)
}

// ribFor computes the full routing table of one device given the global L2
// adjacency and OSPF computation results. Entries are best-path only (lowest
// administrative distance, then metric), with ECMP preserved.
func ribFor(n *netmodel.Network, dev string, adj adjacency, ospfRoutes, bgpRoutes map[string][]FIBEntry) []FIBEntry {
	d := n.Devices[dev]
	var all []FIBEntry

	// Connected.
	for _, ifName := range d.InterfaceNames() {
		itf := d.Interfaces[ifName]
		if l3Endpoint(itf) {
			all = append(all, FIBEntry{
				Prefix: itf.Addr.Masked(),
				Proto:  Connected,
				OutIf:  ifName,
			})
		}
	}

	// Static. A static route is active only when its next hop lies in a
	// connected subnet (single-level resolution, the common enterprise case).
	for _, r := range d.StaticRoutes {
		if itf, ok := d.AddrOnSubnet(r.NextHop); ok && l3Endpoint(itf) {
			all = append(all, FIBEntry{
				Prefix:  r.Prefix,
				Proto:   Static,
				NextHop: r.NextHop,
				OutIf:   itf.Name,
				AD:      r.AdminDistance(),
			})
		}
	}

	// Host default gateway behaves like a static default route.
	if d.Kind == netmodel.Host && d.DefaultGateway.IsValid() {
		if itf, ok := d.AddrOnSubnet(d.DefaultGateway); ok && l3Endpoint(itf) {
			all = append(all, FIBEntry{
				Prefix:  netip.MustParsePrefix("0.0.0.0/0"),
				Proto:   Static,
				NextHop: d.DefaultGateway,
				OutIf:   itf.Name,
				AD:      1,
			})
		}
	}

	all = append(all, ospfRoutes[dev]...)
	all = append(all, bgpRoutes[dev]...)
	return bestPaths(all)
}

// bestPaths keeps, for every prefix, only the entries with the lowest
// (AD, metric), preserving equal-cost multipath.
func bestPaths(entries []FIBEntry) []FIBEntry {
	byPrefix := make(map[netip.Prefix][]FIBEntry)
	for _, e := range entries {
		byPrefix[e.Prefix] = append(byPrefix[e.Prefix], e)
	}
	var out []FIBEntry
	for _, group := range byPrefix {
		bestAD, bestMetric := 256, 1<<30
		for _, e := range group {
			if e.AD < bestAD || (e.AD == bestAD && e.Metric < bestMetric) {
				bestAD, bestMetric = e.AD, e.Metric
			}
		}
		for _, e := range group {
			if e.AD == bestAD && e.Metric == bestMetric {
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefix != out[j].Prefix {
			return out[i].Prefix.String() < out[j].Prefix.String()
		}
		if out[i].NextHop != out[j].NextHop {
			return out[i].NextHop.Less(out[j].NextHop)
		}
		return out[i].OutIf < out[j].OutIf
	})
	return out
}

// ospfInterface describes one OSPF-participating interface.
type ospfInterface struct {
	dev     string
	name    string
	addr    netip.Prefix
	area    int
	passive bool
}

// computeOSPF runs the link-state computation for the whole network and
// returns per-device OSPF FIB entries.
//
// Adjacency forms between two interfaces when they are L2-adjacent, share a
// subnet and an area, and neither is passive. Every enabled interface's
// subnet (including passive ones) is advertised. Costs are hop counts.
// Inter-area routing follows the standard area-0 backbone rule implicitly:
// the router graph spans all areas, but edges only exist inside one area,
// so traffic crosses areas only through routers with interfaces in both.
func computeOSPF(n *netmodel.Network, adj adjacency) map[string][]FIBEntry {
	// Collect participating interfaces.
	participants := make(map[netmodel.Endpoint]ospfInterface)
	routers := make(map[string]bool)
	for _, devName := range n.DeviceNames() {
		d := n.Devices[devName]
		if d.OSPF == nil {
			continue
		}
		for _, ifName := range d.InterfaceNames() {
			itf := d.Interfaces[ifName]
			if !l3Endpoint(itf) {
				continue
			}
			area, ok := d.OSPF.EnabledArea(itf.Addr.Addr())
			if !ok {
				continue
			}
			ep := netmodel.Endpoint{Device: devName, Interface: ifName}
			participants[ep] = ospfInterface{
				dev: devName, name: ifName, addr: itf.Addr,
				area: area, passive: d.OSPF.Passive[ifName],
			}
			routers[devName] = true
		}
	}
	if len(routers) == 0 {
		return nil
	}

	// Build the router graph: edge dev->dev via (localIf, peerAddr).
	type edge struct {
		peer     string
		localIf  string
		peerAddr netip.Addr
		cost     int
	}
	graph := make(map[string][]edge)
	for ep, oi := range participants {
		if oi.passive {
			continue
		}
		cost := 1
		if itf := n.Devices[oi.dev].Interface(oi.name); itf != nil && itf.OSPFCost > 0 {
			cost = itf.OSPFCost
		}
		for _, other := range adj[ep] {
			po, ok := participants[other]
			if !ok || po.passive || po.dev == oi.dev {
				continue
			}
			if oi.area != po.area {
				continue // area mismatch: no adjacency
			}
			if !oi.addr.Masked().Contains(po.addr.Addr()) {
				continue // different subnets cannot peer
			}
			graph[oi.dev] = append(graph[oi.dev], edge{
				peer: po.dev, localIf: oi.name, peerAddr: po.addr.Addr(), cost: cost,
			})
		}
	}

	// Advertised prefixes per router (all enabled interfaces).
	advertised := make(map[string]map[netip.Prefix]bool)
	for _, oi := range participants {
		if advertised[oi.dev] == nil {
			advertised[oi.dev] = make(map[netip.Prefix]bool)
		}
		advertised[oi.dev][oi.addr.Masked()] = true
	}

	// Per-source weighted Dijkstra with equal-cost multipath: settle nodes
	// in nondecreasing distance order, merging first-hop sets on ties.
	out := make(map[string][]FIBEntry)
	for src := range routers {
		type hop struct {
			outIf string
			via   netip.Addr
		}
		dist := map[string]int{src: 0}
		firstHops := make(map[string]map[hop]bool)
		settled := make(map[string]bool)
		for {
			// Select the unsettled node with the smallest distance,
			// deterministically tie-broken by name (graphs are tiny, so
			// linear selection beats a heap here).
			cur, best := "", -1
			for name, d := range dist {
				if settled[name] {
					continue
				}
				if best < 0 || d < best || (d == best && name < cur) {
					cur, best = name, d
				}
			}
			if cur == "" {
				break
			}
			settled[cur] = true
			edges := append([]edge(nil), graph[cur]...)
			sort.Slice(edges, func(i, j int) bool { return edges[i].peer < edges[j].peer })
			for _, e := range edges {
				nd := dist[cur] + e.cost
				old, seen := dist[e.peer]
				switch {
				case !seen || nd < old:
					dist[e.peer] = nd
					firstHops[e.peer] = make(map[hop]bool)
				case nd > old:
					continue
				}
				// Propagate first hops for equal-or-new best paths.
				if cur == src {
					firstHops[e.peer][hop{e.localIf, e.peerAddr}] = true
				} else {
					for h := range firstHops[cur] {
						firstHops[e.peer][h] = true
					}
				}
			}
		}

		// Routes to every remote advertised prefix.
		local := advertised[src]
		routes := make(map[netip.Prefix]map[hop]int)
		for dst, hops := range firstHops {
			for p := range advertised[dst] {
				if local[p] {
					continue // connected beats OSPF anyway
				}
				for h := range hops {
					cur, ok := routes[p]
					if !ok {
						cur = make(map[hop]int)
						routes[p] = cur
					}
					if old, seen := cur[h]; !seen || dist[dst] < old {
						cur[h] = dist[dst]
					}
				}
			}
		}
		for p, hops := range routes {
			best := 1 << 30
			for _, m := range hops {
				if m < best {
					best = m
				}
			}
			for h, m := range hops {
				if m != best {
					continue
				}
				out[src] = append(out[src], FIBEntry{
					Prefix: p, Proto: OSPF, NextHop: h.via, OutIf: h.outIf,
					AD: OSPF.adminDistance(), Metric: m,
				})
			}
		}
	}
	return out
}
