package dataplane

import (
	"fmt"
	"net/netip"
	"sort"

	"heimdall/internal/netmodel"
)

// RouteProto identifies how a route was learned.
type RouteProto int

const (
	// Connected routes cover the subnets of up, addressed interfaces.
	Connected RouteProto = iota
	// Static routes come from "ip route" statements.
	Static
	// OSPF routes are computed by the link-state process.
	OSPF
	// BGP routes are learned over eBGP sessions.
	BGP
)

// String returns the IOS-style route code letter ("C", "S", "O").
func (p RouteProto) String() string {
	switch p {
	case Connected:
		return "C"
	case Static:
		return "S"
	case OSPF:
		return "O"
	case BGP:
		return "B"
	default:
		return "?"
	}
}

// adminDistance returns the default administrative distance of the protocol.
func (p RouteProto) adminDistance() int {
	switch p {
	case Connected:
		return 0
	case Static:
		return 1
	case OSPF:
		return 110
	case BGP:
		return ebgpAdminDistance
	}
	return 255
}

// FIBEntry is one forwarding-table entry: a next hop (or directly connected
// subnet) through an egress interface.
type FIBEntry struct {
	Prefix netip.Prefix
	Proto  RouteProto
	// NextHop is the invalid Addr for connected routes.
	NextHop netip.Addr
	// OutIf is the egress interface name.
	OutIf string
	// AD and Metric order competing routes.
	AD     int
	Metric int
}

// Connected reports whether the entry is a directly connected subnet.
func (e FIBEntry) Connected() bool { return !e.NextHop.IsValid() }

// String renders the entry in show-ip-route style.
func (e FIBEntry) String() string {
	if e.Connected() {
		return fmt.Sprintf("%s %s is directly connected, %s", e.Proto, e.Prefix, e.OutIf)
	}
	return fmt.Sprintf("%s %s [%d/%d] via %s, %s", e.Proto, e.Prefix, e.AD, e.Metric, e.NextHop, e.OutIf)
}

// ribFor computes the full routing table of one device given the global L2
// adjacency and OSPF computation results. Entries are best-path only (lowest
// administrative distance, then metric), with ECMP preserved.
func ribFor(n *netmodel.Network, dev string, adj adjacency, ospfRoutes, bgpRoutes map[string][]FIBEntry) []FIBEntry {
	d := n.Devices[dev]
	var all []FIBEntry

	// Connected.
	for _, ifName := range d.InterfaceNames() {
		itf := d.Interfaces[ifName]
		if l3Endpoint(itf) {
			all = append(all, FIBEntry{
				Prefix: itf.Addr.Masked(),
				Proto:  Connected,
				OutIf:  ifName,
			})
		}
	}

	// Static. A static route is active only when its next hop lies in a
	// connected subnet (single-level resolution, the common enterprise case).
	for _, r := range d.StaticRoutes {
		if itf, ok := d.AddrOnSubnet(r.NextHop); ok && l3Endpoint(itf) {
			all = append(all, FIBEntry{
				Prefix:  r.Prefix,
				Proto:   Static,
				NextHop: r.NextHop,
				OutIf:   itf.Name,
				AD:      r.AdminDistance(),
			})
		}
	}

	// Host default gateway behaves like a static default route.
	if d.Kind == netmodel.Host && d.DefaultGateway.IsValid() {
		if itf, ok := d.AddrOnSubnet(d.DefaultGateway); ok && l3Endpoint(itf) {
			all = append(all, FIBEntry{
				Prefix:  netip.MustParsePrefix("0.0.0.0/0"),
				Proto:   Static,
				NextHop: d.DefaultGateway,
				OutIf:   itf.Name,
				AD:      1,
			})
		}
	}

	all = append(all, ospfRoutes[dev]...)
	all = append(all, bgpRoutes[dev]...)
	return bestPaths(all)
}

// bestPaths keeps, for every prefix, only the entries with the lowest
// (AD, metric), preserving equal-cost multipath.
func bestPaths(entries []FIBEntry) []FIBEntry {
	byPrefix := make(map[netip.Prefix][]FIBEntry)
	for _, e := range entries {
		byPrefix[e.Prefix] = append(byPrefix[e.Prefix], e)
	}
	var out []FIBEntry
	for _, group := range byPrefix {
		bestAD, bestMetric := 256, 1<<30
		for _, e := range group {
			if e.AD < bestAD || (e.AD == bestAD && e.Metric < bestMetric) {
				bestAD, bestMetric = e.AD, e.Metric
			}
		}
		for _, e := range group {
			if e.AD == bestAD && e.Metric == bestMetric {
				out = append(out, e)
			}
		}
	}
	// The lexical prefix-string order is load-bearing: entries[0] is the
	// default ECMP selection, so the comparator must reproduce it exactly.
	// Stringify each entry's prefix once instead of O(n log n) times —
	// distinct prefixes always render distinct strings, so comparing the
	// cached keys is the same order the old comparator produced.
	keys := make([]string, len(out))
	for i := range out {
		keys[i] = out[i].Prefix.String()
	}
	sort.Sort(&ribOrder{entries: out, keys: keys})
	return out
}

// ribOrder sorts FIB entries with their cached prefix-string sort keys.
type ribOrder struct {
	entries []FIBEntry
	keys    []string
}

func (r *ribOrder) Len() int { return len(r.entries) }
func (r *ribOrder) Swap(i, j int) {
	r.entries[i], r.entries[j] = r.entries[j], r.entries[i]
	r.keys[i], r.keys[j] = r.keys[j], r.keys[i]
}
func (r *ribOrder) Less(i, j int) bool {
	if r.keys[i] != r.keys[j] {
		return r.keys[i] < r.keys[j]
	}
	if r.entries[i].NextHop != r.entries[j].NextHop {
		return r.entries[i].NextHop.Less(r.entries[j].NextHop)
	}
	return r.entries[i].OutIf < r.entries[j].OutIf
}

// ospfInterface describes one OSPF-participating interface.
type ospfInterface struct {
	dev     string
	name    string
	addr    netip.Prefix
	area    int
	passive bool
}

// computeOSPF runs the link-state computation for the whole network and
// returns per-device OSPF FIB entries.
//
// Adjacency forms between two interfaces when they are L2-adjacent, share a
// subnet and an area, and neither is passive. Every enabled interface's
// subnet (including passive ones) is advertised. Costs are hop counts.
// Inter-area routing follows the standard area-0 backbone rule implicitly:
// the router graph spans all areas, but edges only exist inside one area,
// so traffic crosses areas only through routers with interfaces in both.
func computeOSPF(n *netmodel.Network, adj adjacency) map[string][]FIBEntry {
	// Collect participating interfaces.
	participants := make(map[netmodel.Endpoint]ospfInterface)
	routers := make(map[string]bool)
	for _, devName := range n.DeviceNames() {
		d := n.Devices[devName]
		if d.OSPF == nil {
			continue
		}
		for _, ifName := range d.InterfaceNames() {
			itf := d.Interfaces[ifName]
			if !l3Endpoint(itf) {
				continue
			}
			area, ok := d.OSPF.EnabledArea(itf.Addr.Addr())
			if !ok {
				continue
			}
			ep := netmodel.Endpoint{Device: devName, Interface: ifName}
			participants[ep] = ospfInterface{
				dev: devName, name: ifName, addr: itf.Addr,
				area: area, passive: d.OSPF.Passive[ifName],
			}
			routers[devName] = true
		}
	}
	if len(routers) == 0 {
		return nil
	}

	// Build the router graph: edge dev->dev via (localIf, peerAddr).
	graph := make(map[string][]ospfEdge)
	for ep, oi := range participants {
		if oi.passive {
			continue
		}
		cost := 1
		if itf := n.Devices[oi.dev].Interface(oi.name); itf != nil && itf.OSPFCost > 0 {
			cost = itf.OSPFCost
		}
		for _, other := range adj[ep] {
			po, ok := participants[other]
			if !ok || po.passive || po.dev == oi.dev {
				continue
			}
			if oi.area != po.area {
				continue // area mismatch: no adjacency
			}
			if !oi.addr.Masked().Contains(po.addr.Addr()) {
				continue // different subnets cannot peer
			}
			graph[oi.dev] = append(graph[oi.dev], ospfEdge{
				peer: po.dev, localIf: oi.name, peerAddr: po.addr.Addr(), cost: cost,
			})
		}
	}

	// Advertised prefixes per router (all enabled interfaces).
	advertised := make(map[string]map[netip.Prefix]bool)
	for _, oi := range participants {
		if advertised[oi.dev] == nil {
			advertised[oi.dev] = make(map[netip.Prefix]bool)
		}
		advertised[oi.dev][oi.addr.Masked()] = true
	}

	// Per-source weighted Dijkstra with equal-cost multipath: settle nodes
	// in nondecreasing distance order, merging first-hop sets on ties.
	// Sources are independent given the (now read-only) graph and
	// advertisement maps, so they fan out over a bounded pool; each source
	// writes its routes into an index-addressed slot and the merge walks
	// slots in sorted-source order, so the result is identical to a serial
	// run. Route emission is sorted (prefix string, then hop), making the
	// per-device route slices deterministic — Derive relies on this to
	// reproduce a from-scratch Compute byte for byte.
	sources := make([]string, 0, len(routers))
	for src := range routers {
		sources = append(sources, src)
	}
	sort.Strings(sources)
	slots := make([][]FIBEntry, len(sources))
	fanOut(len(sources), func(i int) {
		slots[i] = ospfRoutesFrom(sources[i], graph, advertised)
	})
	out := make(map[string][]FIBEntry, len(sources))
	for i, src := range sources {
		if len(slots[i]) > 0 {
			out[src] = slots[i]
		}
	}
	return out
}

// ospfHop is one candidate first hop toward a destination.
type ospfHop struct {
	outIf string
	via   netip.Addr
}

// ospfEdge is one adjacency edge of the OSPF router graph.
type ospfEdge struct {
	peer     string
	localIf  string
	peerAddr netip.Addr
	cost     int
}

// ospfRoutesFrom runs the single-source Dijkstra and returns the source
// router's OSPF routes in deterministic (prefix string, hop) order.
func ospfRoutesFrom(src string, graph map[string][]ospfEdge, advertised map[string]map[netip.Prefix]bool) []FIBEntry {
	type hop = ospfHop
	dist := map[string]int{src: 0}
	firstHops := make(map[string]map[hop]bool)
	settled := make(map[string]bool)
	for {
		// Select the unsettled node with the smallest distance,
		// deterministically tie-broken by name (graphs are tiny, so
		// linear selection beats a heap here).
		cur, best := "", -1
		for name, d := range dist {
			if settled[name] {
				continue
			}
			if best < 0 || d < best || (d == best && name < cur) {
				cur, best = name, d
			}
		}
		if cur == "" {
			break
		}
		settled[cur] = true
		edges := append([]ospfEdge(nil), graph[cur]...)
		sort.Slice(edges, func(i, j int) bool { return edges[i].peer < edges[j].peer })
		for _, e := range edges {
			nd := dist[cur] + e.cost
			old, seen := dist[e.peer]
			switch {
			case !seen || nd < old:
				dist[e.peer] = nd
				firstHops[e.peer] = make(map[hop]bool)
			case nd > old:
				continue
			}
			// Propagate first hops for equal-or-new best paths.
			if cur == src {
				firstHops[e.peer][hop{e.localIf, e.peerAddr}] = true
			} else {
				for h := range firstHops[cur] {
					firstHops[e.peer][h] = true
				}
			}
		}
	}

	// Routes to every remote advertised prefix.
	local := advertised[src]
	routes := make(map[netip.Prefix]map[hop]int)
	for dst, hops := range firstHops {
		for p := range advertised[dst] {
			if local[p] {
				continue // connected beats OSPF anyway
			}
			for h := range hops {
				cur, ok := routes[p]
				if !ok {
					cur = make(map[hop]int)
					routes[p] = cur
				}
				if old, seen := cur[h]; !seen || dist[dst] < old {
					cur[h] = dist[dst]
				}
			}
		}
	}

	// Emit best equal-cost hops per prefix in sorted order.
	prefixes := make([]netip.Prefix, 0, len(routes))
	for p := range routes {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].String() < prefixes[j].String() })
	var out []FIBEntry
	for _, p := range prefixes {
		hops := routes[p]
		best := 1 << 30
		for _, m := range hops {
			if m < best {
				best = m
			}
		}
		keep := make([]hop, 0, len(hops))
		for h, m := range hops {
			if m == best {
				keep = append(keep, h)
			}
		}
		sort.Slice(keep, func(i, j int) bool {
			if keep[i].via != keep[j].via {
				return keep[i].via.Less(keep[j].via)
			}
			return keep[i].outIf < keep[j].outIf
		})
		for _, h := range keep {
			out = append(out, FIBEntry{
				Prefix: p, Proto: OSPF, NextHop: h.via, OutIf: h.outIf,
				AD: OSPF.adminDistance(), Metric: best,
			})
		}
	}
	return out
}
