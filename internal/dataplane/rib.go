package dataplane

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"heimdall/internal/netmodel"
)

// prefixStrings interns netip.Prefix -> String() results. Sorting RIBs and
// serializing LSDBs stringify the same few hundred scenario prefixes on
// every trial of a sweep; the cache is bounded by the distinct prefixes a
// process ever routes, which is small and stable.
var prefixStrings sync.Map

func prefixString(p netip.Prefix) string {
	if v, ok := prefixStrings.Load(p); ok {
		return v.(string)
	}
	s := p.String()
	prefixStrings.Store(p, s)
	return s
}

// RouteProto identifies how a route was learned.
type RouteProto int

const (
	// Connected routes cover the subnets of up, addressed interfaces.
	Connected RouteProto = iota
	// Static routes come from "ip route" statements.
	Static
	// OSPF routes are computed by the link-state process.
	OSPF
	// BGP routes are learned over eBGP sessions.
	BGP
)

// String returns the IOS-style route code letter ("C", "S", "O").
func (p RouteProto) String() string {
	switch p {
	case Connected:
		return "C"
	case Static:
		return "S"
	case OSPF:
		return "O"
	case BGP:
		return "B"
	default:
		return "?"
	}
}

// adminDistance returns the default administrative distance of the protocol.
func (p RouteProto) adminDistance() int {
	switch p {
	case Connected:
		return 0
	case Static:
		return 1
	case OSPF:
		return 110
	case BGP:
		return ebgpAdminDistance
	}
	return 255
}

// FIBEntry is one forwarding-table entry: a next hop (or directly connected
// subnet) through an egress interface.
type FIBEntry struct {
	Prefix netip.Prefix
	Proto  RouteProto
	// NextHop is the invalid Addr for connected routes.
	NextHop netip.Addr
	// OutIf is the egress interface name.
	OutIf string
	// AD and Metric order competing routes.
	AD     int
	Metric int
}

// Connected reports whether the entry is a directly connected subnet.
func (e FIBEntry) Connected() bool { return !e.NextHop.IsValid() }

// String renders the entry in show-ip-route style.
func (e FIBEntry) String() string {
	if e.Connected() {
		return fmt.Sprintf("%s %s is directly connected, %s", e.Proto, e.Prefix, e.OutIf)
	}
	return fmt.Sprintf("%s %s [%d/%d] via %s, %s", e.Proto, e.Prefix, e.AD, e.Metric, e.NextHop, e.OutIf)
}

// ribFor computes the full routing table of one device given the global L2
// adjacency and OSPF computation results. Entries are best-path only (lowest
// administrative distance, then metric), with ECMP preserved.
func ribFor(n *netmodel.Network, dev string, adj adjacency, ospfRoutes, bgpRoutes map[string][]FIBEntry) []FIBEntry {
	d := n.Devices[dev]
	all := make([]FIBEntry, 0,
		len(d.Interfaces)+len(d.StaticRoutes)+1+len(ospfRoutes[dev])+len(bgpRoutes[dev]))

	// Connected.
	for _, ifName := range d.InterfaceNames() {
		itf := d.Interfaces[ifName]
		if l3Endpoint(itf) {
			all = append(all, FIBEntry{
				Prefix: itf.Addr.Masked(),
				Proto:  Connected,
				OutIf:  ifName,
			})
		}
	}

	// Static. A static route is active only when its next hop lies in a
	// connected subnet (single-level resolution, the common enterprise case).
	for _, r := range d.StaticRoutes {
		if itf, ok := d.AddrOnSubnet(r.NextHop); ok && l3Endpoint(itf) {
			all = append(all, FIBEntry{
				Prefix:  r.Prefix,
				Proto:   Static,
				NextHop: r.NextHop,
				OutIf:   itf.Name,
				AD:      r.AdminDistance(),
			})
		}
	}

	// Host default gateway behaves like a static default route.
	if d.Kind == netmodel.Host && d.DefaultGateway.IsValid() {
		if itf, ok := d.AddrOnSubnet(d.DefaultGateway); ok && l3Endpoint(itf) {
			all = append(all, FIBEntry{
				Prefix:  netip.MustParsePrefix("0.0.0.0/0"),
				Proto:   Static,
				NextHop: d.DefaultGateway,
				OutIf:   itf.Name,
				AD:      1,
			})
		}
	}

	all = append(all, ospfRoutes[dev]...)
	all = append(all, bgpRoutes[dev]...)
	return bestPaths(all)
}

// bestPaths keeps, for every prefix, only the entries with the lowest
// (AD, metric), preserving equal-cost multipath. Two passes over the input
// (find each prefix's best, then filter) avoid building per-prefix groups —
// this runs once per rebuilt RIB, so its allocations dominate derivation.
func bestPaths(entries []FIBEntry) []FIBEntry {
	type adMetric struct{ ad, metric int }
	best := make(map[netip.Prefix]adMetric, len(entries))
	for _, e := range entries {
		b, ok := best[e.Prefix]
		if !ok || e.AD < b.ad || (e.AD == b.ad && e.Metric < b.metric) {
			best[e.Prefix] = adMetric{e.AD, e.Metric}
		}
	}
	out := make([]FIBEntry, 0, len(entries))
	for _, e := range entries {
		if b := best[e.Prefix]; e.AD == b.ad && e.Metric == b.metric {
			out = append(out, e)
		}
	}
	// The lexical prefix-string order is load-bearing: entries[0] is the
	// default ECMP selection, so the comparator must reproduce it exactly.
	// Stringify each entry's prefix once instead of O(n log n) times —
	// distinct prefixes always render distinct strings, so comparing the
	// cached (interned) keys is the same order the old comparator produced.
	keys := make([]string, len(out))
	for i := range out {
		keys[i] = prefixString(out[i].Prefix)
	}
	sort.Sort(&ribOrder{entries: out, keys: keys})
	return out
}

// ribOrder sorts FIB entries with their cached prefix-string sort keys.
type ribOrder struct {
	entries []FIBEntry
	keys    []string
}

func (r *ribOrder) Len() int { return len(r.entries) }
func (r *ribOrder) Swap(i, j int) {
	r.entries[i], r.entries[j] = r.entries[j], r.entries[i]
	r.keys[i], r.keys[j] = r.keys[j], r.keys[i]
}
func (r *ribOrder) Less(i, j int) bool {
	if r.keys[i] != r.keys[j] {
		return r.keys[i] < r.keys[j]
	}
	if r.entries[i].NextHop != r.entries[j].NextHop {
		return r.entries[i].NextHop.Less(r.entries[j].NextHop)
	}
	return r.entries[i].OutIf < r.entries[j].OutIf
}
