package dataplane

import (
	"runtime"
	"sync"
)

// fanOut runs fn(0..n-1) over a bounded worker pool and returns when every
// call has finished. Each index is processed exactly once; callers get
// determinism by writing into index-addressed slots and merging in index
// order afterwards (the PR 2 sweep idiom). With one usable CPU — or a single
// item — it degrades to a plain serial loop, avoiding goroutine overhead on
// the common single-core CI container.
func fanOut(n int, fn func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
