package dataplane

import (
	"strings"
	"sync"
	"testing"

	"heimdall/internal/netmodel"
	"heimdall/internal/telemetry"
)

// blockWebNet is threeRouterNet with tcp/80 to h2 denied at r3, so the
// same host pair yields different dispositions per (proto, dstPort).
func blockWebNet() *netmodel.Network {
	n := threeRouterNet()
	r3 := n.Device("r3")
	acl := r3.ACL("BLOCK-WEB", true)
	acl.InsertEntry(netmodel.ACLEntry{Seq: 10, Action: netmodel.Deny, Proto: netmodel.TCP,
		Dst: pfx("10.2.0.10/32"), DstPort: 80})
	acl.InsertEntry(netmodel.ACLEntry{Seq: 20, Action: netmodel.Permit, Proto: netmodel.AnyProto})
	r3.Interface("Gi0/0").ACLIn = "BLOCK-WEB"
	r3.Interface("Gi0/2").ACLIn = "BLOCK-WEB"
	return n
}

func TestFlowCacheKeyDistinguishesProtoAndPort(t *testing.T) {
	s := Compute(blockWebNet())

	web, err := s.Reach("h1", "h2", netmodel.TCP, 80)
	if err != nil {
		t.Fatal(err)
	}
	ssh, _ := s.Reach("h1", "h2", netmodel.TCP, 22)
	icmp, _ := s.Reach("h1", "h2", netmodel.ICMP, 0)
	if web.Delivered() {
		t.Fatalf("tcp/80 should be dropped: %s", web)
	}
	if !ssh.Delivered() || !icmp.Delivered() {
		t.Fatalf("tcp/22 and icmp should pass: %s / %s", ssh, icmp)
	}
	if hits, misses := s.FlowCacheStats(); hits != 0 || misses != 3 {
		t.Fatalf("three distinct flows should all miss: hits=%d misses=%d", hits, misses)
	}

	// Re-asking for each flow serves the memoized trace: same pointer,
	// no new miss.
	web2, _ := s.Reach("h1", "h2", netmodel.TCP, 80)
	ssh2, _ := s.Reach("h1", "h2", netmodel.TCP, 22)
	if web2 != web || ssh2 != ssh {
		t.Fatal("repeat Reach should return the memoized trace")
	}
	if hits, misses := s.FlowCacheStats(); hits != 2 || misses != 3 {
		t.Fatalf("hits=%d misses=%d, want 2/3", hits, misses)
	}
}

func TestFlowCacheCachesErrors(t *testing.T) {
	s := Compute(threeRouterNet())
	for i := 0; i < 2; i++ {
		if _, err := s.Reach("nope", "h2", netmodel.ICMP, 0); err == nil {
			t.Fatal("unknown host should error")
		}
	}
	if hits, misses := s.FlowCacheStats(); hits != 1 || misses != 1 {
		t.Fatalf("errors should be memoized too: hits=%d misses=%d", hits, misses)
	}
}

func TestFlowCacheIsPerSnapshot(t *testing.T) {
	n := threeRouterNet()
	s1 := Compute(n)
	tr1, _ := s1.Reach("h1", "h2", netmodel.ICMP, 0)
	if !tr1.Delivered() {
		t.Fatalf("baseline should deliver: %s", tr1)
	}

	// Break the only remaining path and recompute: the fresh snapshot
	// must trace from scratch, not serve the stale delivered trace.
	n.Device("r1").Interface("Gi0/1").Shutdown = true
	n.Device("r1").Interface("Gi0/2").Shutdown = true
	s2 := Compute(n)
	if hits, misses := s2.FlowCacheStats(); hits != 0 || misses != 0 {
		t.Fatalf("recomputed snapshot should start empty: hits=%d misses=%d", hits, misses)
	}
	tr2, _ := s2.Reach("h1", "h2", netmodel.ICMP, 0)
	if tr2.Delivered() {
		t.Fatalf("broken network served a stale delivered trace: %s", tr2)
	}
	// The old snapshot still answers from its own (valid-for-it) cache.
	tr1b, _ := s1.Reach("h1", "h2", netmodel.ICMP, 0)
	if tr1b != tr1 {
		t.Fatal("old snapshot should keep its own memoized trace")
	}
}

func TestFlowCacheConcurrentReach(t *testing.T) {
	s := Compute(blockWebNet())
	type probe struct {
		src, dst  string
		proto     netmodel.Protocol
		port      uint16
		delivered bool
	}
	probes := []probe{
		{"h1", "h2", netmodel.TCP, 80, false},
		{"h1", "h2", netmodel.TCP, 22, true},
		{"h1", "h2", netmodel.ICMP, 0, true},
		{"h2", "h1", netmodel.ICMP, 0, true},
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p := probes[i%len(probes)]
				tr, err := s.Reach(p.src, p.dst, p.proto, p.port)
				if err != nil {
					errs <- err.Error()
					return
				}
				if tr.Delivered() != p.delivered {
					errs <- "wrong disposition for " + tr.String()
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	hits, misses := s.FlowCacheStats()
	if misses != uint64(len(probes)) {
		t.Errorf("misses = %d, want %d (one per distinct flow)", misses, len(probes))
	}
	if hits+misses != 8*50 {
		t.Errorf("hits+misses = %d, want %d", hits+misses, 8*50)
	}
}

func TestFlowCacheMeterExposition(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := ComputeWithOptions(blockWebNet(), Options{Meter: reg})
	s.Reach("h1", "h2", netmodel.ICMP, 0)
	s.Reach("h1", "h2", netmodel.ICMP, 0)
	if v := reg.CounterValue("heimdall_dataplane_flowcache_misses_total"); v != 1 {
		t.Errorf("misses counter = %v, want 1", v)
	}
	if v := reg.CounterValue("heimdall_dataplane_flowcache_hits_total"); v != 1 {
		t.Errorf("hits counter = %v, want 1", v)
	}
	if dump := reg.Dump(); !strings.Contains(dump, "heimdall_dataplane_flowcache_hits_total") {
		t.Errorf("exposition missing flowcache series:\n%s", dump)
	}
}
