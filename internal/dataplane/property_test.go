package dataplane

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"

	"heimdall/internal/netmodel"
)

// randomTreeNet generates a random router tree with a host on every leaf
// router, OSPF everywhere and no ACLs. On such networks reachability is
// total and symmetric — a strong invariant for the whole routing pipeline.
func randomTreeNet(r *rand.Rand, routers int) *netmodel.Network {
	n := netmodel.NewNetwork("rand")
	ifCount := make(map[string]int)
	nextIf := func(dev string) string {
		ifCount[dev]++
		return fmt.Sprintf("Gi0/%d", ifCount[dev]-1)
	}
	for i := 0; i < routers; i++ {
		name := fmt.Sprintf("r%d", i)
		n.AddDevice(name, netmodel.Router)
		if i > 0 {
			parent := fmt.Sprintf("r%d", r.Intn(i))
			a, b := nextIf(parent), nextIf(name)
			n.MustConnect(parent, a, name, b)
			subnet := netip.AddrFrom4([4]byte{10, 200, byte(i), 0})
			n.Devices[parent].Interface(a).Addr = netip.PrefixFrom(next(subnet, 1), 30)
			n.Devices[name].Interface(b).Addr = netip.PrefixFrom(next(subnet, 2), 30)
		}
	}
	for i := 0; i < routers; i++ {
		router := fmt.Sprintf("r%d", i)
		host := fmt.Sprintf("h%d", i)
		n.AddDevice(host, netmodel.Host)
		itf := nextIf(router)
		n.MustConnect(host, "eth0", router, itf)
		gw := netip.AddrFrom4([4]byte{10, byte(i + 1), 0, 1})
		ha := netip.AddrFrom4([4]byte{10, byte(i + 1), 0, 10})
		n.Devices[router].Interface(itf).Addr = netip.PrefixFrom(gw, 24)
		n.Devices[host].Interface("eth0").Addr = netip.PrefixFrom(ha, 24)
		n.Devices[host].DefaultGateway = gw
	}
	for i := 0; i < routers; i++ {
		name := fmt.Sprintf("r%d", i)
		n.Devices[name].OSPF = &netmodel.OSPFProcess{ProcessID: 1,
			Networks: []netmodel.OSPFNetwork{{Prefix: netip.MustParsePrefix("10.0.0.0/8"), Area: 0}},
			Passive:  map[string]bool{}}
	}
	return n
}

func next(a netip.Addr, inc byte) netip.Addr {
	b := a.As4()
	b[3] += inc
	return netip.AddrFrom4(b)
}

// TestRandomTreesFullSymmetricReachability checks, over many random
// topologies, that every host pair is mutually reachable and that the
// forward and reverse paths visit the same devices (trees have unique
// paths).
func TestRandomTreesFullSymmetricReachability(t *testing.T) {
	r := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 20; trial++ {
		routers := 2 + r.Intn(8)
		n := randomTreeNet(r, routers)
		if err := n.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		s := Compute(n)
		hosts := n.Hosts()
		for _, src := range hosts {
			for _, dst := range hosts {
				if src == dst {
					continue
				}
				fwd, err := s.Reach(src, dst, netmodel.ICMP, 0)
				if err != nil || !fwd.Delivered() {
					t.Fatalf("trial %d (%d routers): %s->%s not delivered: %v %v",
						trial, routers, src, dst, fwd, err)
				}
				rev, _ := s.Reach(dst, src, netmodel.ICMP, 0)
				if !rev.Delivered() {
					t.Fatalf("trial %d: asymmetric: %s->%s ok but reverse failed: %s",
						trial, src, dst, rev)
				}
				if !sameDeviceSet(fwd.Path(), rev.Path()) {
					t.Fatalf("trial %d: tree paths differ: %v vs %v", trial, fwd.Path(), rev.Path())
				}
			}
		}
	}
}

// TestRandomTreesSingleCutDisconnects checks the converse invariant: in a
// tree, shutting down any single inter-router link partitions exactly the
// hosts behind it, and every trace still terminates coherently.
func TestRandomTreesSingleCutDisconnects(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := randomTreeNet(r, 3+r.Intn(6))
		var interRouter []*netmodel.Link
		for _, l := range n.Links {
			if n.Devices[l.A.Device].Kind == netmodel.Router && n.Devices[l.B.Device].Kind == netmodel.Router {
				interRouter = append(interRouter, l)
			}
		}
		if len(interRouter) == 0 {
			continue
		}
		cut := interRouter[r.Intn(len(interRouter))]
		n.Devices[cut.A.Device].Interface(cut.A.Interface).Shutdown = true
		s := Compute(n)

		// The two routers on the cut edge must no longer reach each other
		// via their host subnets; everything still terminates.
		hostA := "h" + cut.A.Device[1:]
		hostB := "h" + cut.B.Device[1:]
		tr, err := s.Reach(hostA, hostB, netmodel.ICMP, 0)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Delivered() {
			t.Fatalf("trial %d: tree cut did not partition %s from %s", trial, hostA, hostB)
		}
		if tr.Where == "" || len(tr.Hops) == 0 {
			t.Fatalf("trial %d: incoherent drop: %s", trial, tr)
		}
	}
}

func sameDeviceSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[string]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	for _, x := range b {
		if !set[x] {
			return false
		}
	}
	return true
}
