package dataplane

import (
	"net/netip"
	"sort"

	"heimdall/internal/netmodel"
)

// eBGP simulation. Sessions form between directly connected routers whose
// neighbor statements agree (each side names the other's interface address
// and the AS number the other actually runs). Routes propagate path-vector
// style: a router originates its configured networks (plus connected
// subnets under "redistribute connected"), neighbors install them with the
// eBGP administrative distance (20), and re-advertise with their own AS
// prepended. Loop prevention is the standard AS-path check. Best path is
// the shortest AS-path, tie-broken by lowest next-hop address.

const ebgpAdminDistance = 20

// bgpSession is one established peering.
type bgpSession struct {
	a, b     string // device names
	aAddr    netip.Addr
	bAddr    netip.Addr
	aOutIf   string
	bOutIf   string
	aLocalAS int
	bLocalAS int
}

// bgpSessions computes the established eBGP sessions. A session requires:
// both devices run BGP; A has a neighbor entry for B's address with B's
// actual AS (and vice versa); the peering interfaces are L2-adjacent and
// share a subnet.
func bgpSessions(n *netmodel.Network, adj adjacency) []bgpSession {
	var out []bgpSession
	for _, aName := range n.DeviceNames() {
		a := n.Devices[aName]
		if a.BGP == nil {
			continue
		}
		for _, ifName := range a.InterfaceNames() {
			itf := a.Interfaces[ifName]
			if !l3Endpoint(itf) {
				continue
			}
			ep := netmodel.Endpoint{Device: aName, Interface: ifName}
			for _, peer := range adj[ep] {
				b := n.Devices[peer.Device]
				if b == nil || b.BGP == nil || peer.Device <= aName {
					continue // visit each unordered pair once
				}
				pItf := b.Interface(peer.Interface)
				if pItf == nil || !itf.Addr.Masked().Contains(pItf.Addr.Addr()) {
					continue
				}
				abNeighbor := a.BGP.Neighbor(pItf.Addr.Addr())
				baNeighbor := b.BGP.Neighbor(itf.Addr.Addr())
				if abNeighbor == nil || baNeighbor == nil {
					continue
				}
				// AS expectations must match reality on both sides.
				if abNeighbor.RemoteAS != b.BGP.LocalAS || baNeighbor.RemoteAS != a.BGP.LocalAS {
					continue
				}
				// iBGP (same AS) is out of scope.
				if a.BGP.LocalAS == b.BGP.LocalAS {
					continue
				}
				out = append(out, bgpSession{
					a: aName, b: peer.Device,
					aAddr: itf.Addr.Addr(), bAddr: pItf.Addr.Addr(),
					aOutIf: ifName, bOutIf: peer.Interface,
					aLocalAS: a.BGP.LocalAS, bLocalAS: b.BGP.LocalAS,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].a != out[j].a {
			return out[i].a < out[j].a
		}
		return out[i].b < out[j].b
	})
	return out
}

// bgpRoute is one path-vector entry held by a router.
type bgpRoute struct {
	prefix  netip.Prefix
	asPath  []int
	nextHop netip.Addr // invalid for locally originated
	outIf   string
}

// computeBGP runs the path-vector propagation to a fixpoint and returns
// per-device FIB entries for learned (non-local) routes.
func computeBGP(n *netmodel.Network, adj adjacency) map[string][]FIBEntry {
	return computeBGPOver(n, bgpSessions(n, adj))
}

// computeBGPOver is computeBGP given an already-computed session list
// (Derive computes the sessions first to decide whether a rerun is needed
// at all).
func computeBGPOver(n *netmodel.Network, sessions []bgpSession) map[string][]FIBEntry {
	if len(sessions) == 0 {
		return nil
	}

	// Locally originated prefixes.
	best := make(map[string]map[netip.Prefix]bgpRoute)
	origin := func(dev string, p netip.Prefix) {
		if best[dev] == nil {
			best[dev] = make(map[netip.Prefix]bgpRoute)
		}
		best[dev][p] = bgpRoute{prefix: p}
	}
	for _, devName := range n.DeviceNames() {
		d := n.Devices[devName]
		if d.BGP == nil {
			continue
		}
		for _, p := range d.BGP.Networks {
			origin(devName, p.Masked())
		}
		if d.BGP.RedistributeConnected {
			for _, ifName := range d.InterfaceNames() {
				if itf := d.Interfaces[ifName]; l3Endpoint(itf) {
					origin(devName, itf.Addr.Masked())
				}
			}
		}
	}

	// Iterate advertisements until no router changes its best paths.
	// Bounded by the session count (longest possible AS path).
	for iter := 0; iter <= len(sessions)+1; iter++ {
		changed := false
		for _, s := range sessions {
			// Advertise in both directions.
			dirs := []struct {
				from, to   string
				toNextHop  netip.Addr
				toOutIf    string
				senderAS   int
				receiverAS int
			}{
				{s.a, s.b, s.aAddr, s.bOutIf, s.aLocalAS, s.bLocalAS},
				{s.b, s.a, s.bAddr, s.aOutIf, s.bLocalAS, s.aLocalAS},
			}
			for _, d := range dirs {
				for p, r := range best[d.from] {
					// AS-path loop prevention.
					if containsAS(r.asPath, d.receiverAS) {
						continue
					}
					candidate := bgpRoute{
						prefix:  p,
						asPath:  append([]int{d.senderAS}, r.asPath...),
						nextHop: d.toNextHop,
						outIf:   d.toOutIf,
					}
					if best[d.to] == nil {
						best[d.to] = make(map[netip.Prefix]bgpRoute)
					}
					cur, ok := best[d.to][p]
					if !ok || betterBGP(candidate, cur) {
						best[d.to][p] = candidate
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}

	// Emit per-device routes in sorted prefix order: one best route exists
	// per (device, prefix), so prefix order fully determines the slice.
	// Determinism here is what lets a derived snapshot reproduce a
	// from-scratch compute byte for byte.
	out := make(map[string][]FIBEntry)
	for dev, routes := range best {
		entries := make([]FIBEntry, 0, len(routes))
		for p, r := range routes {
			if !r.nextHop.IsValid() {
				continue // locally originated; covered by IGP/connected
			}
			entries = append(entries, FIBEntry{
				Prefix: p, Proto: BGP, NextHop: r.nextHop, OutIf: r.outIf,
				AD: ebgpAdminDistance, Metric: len(r.asPath),
			})
		}
		if len(entries) == 0 {
			continue
		}
		sort.Slice(entries, func(i, j int) bool {
			return entries[i].Prefix.String() < entries[j].Prefix.String()
		})
		out[dev] = entries
	}
	return out
}

// betterBGP reports whether a should replace b as the best path:
// locally originated always wins, then shortest AS path, then lowest
// next hop for determinism.
func betterBGP(a, b bgpRoute) bool {
	if !b.nextHop.IsValid() {
		return false // local origination is never displaced
	}
	if !a.nextHop.IsValid() {
		return true
	}
	if len(a.asPath) != len(b.asPath) {
		return len(a.asPath) < len(b.asPath)
	}
	return a.nextHop.Less(b.nextHop)
}

func containsAS(path []int, as int) bool {
	for _, p := range path {
		if p == as {
			return true
		}
	}
	return false
}
