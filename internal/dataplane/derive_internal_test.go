package dataplane

import (
	"net/netip"
	"reflect"
	"testing"

	"heimdall/internal/netmodel"
)

// assertInternalsEqual compares every internal structure of two snapshots
// of the same network — not just the observable surface. This is stricter
// than the external oracle: a derived snapshot must be bit-for-bit the
// snapshot a full compute would have built.
func assertInternalsEqual(t *testing.T, got, want *Snapshot) {
	t.Helper()
	if !reflect.DeepEqual(got.adj, want.adj) {
		t.Error("adjacency diverged")
	}
	if !reflect.DeepEqual(got.sessions, want.sessions) {
		t.Errorf("BGP sessions diverged: %+v vs %+v", got.sessions, want.sessions)
	}
	if !reflect.DeepEqual(got.ospfRoutes, want.ospfRoutes) {
		t.Errorf("OSPF routes diverged:\n%+v\nvs\n%+v", got.ospfRoutes, want.ospfRoutes)
	}
	if !reflect.DeepEqual(got.bgpRoutes, want.bgpRoutes) {
		t.Errorf("BGP routes diverged:\n%+v\nvs\n%+v", got.bgpRoutes, want.bgpRoutes)
	}
	if !reflect.DeepEqual(got.ribs, want.ribs) {
		t.Error("RIBs diverged")
	}
	if !reflect.DeepEqual(got.fibs, want.fibs) {
		t.Error("FIB tries diverged")
	}
	if !reflect.DeepEqual(got.owner, want.owner) {
		t.Error("owner index diverged")
	}
}

// TestDeriveBGPWithdraw covers the ChangeBGP class on the peering topology:
// withdrawing an advertised network, removing a neighbor (session teardown),
// and removing the whole process.
func TestDeriveBGPWithdraw(t *testing.T) {
	cases := []struct {
		name   string
		device string
		apply  func(d *netmodel.Device)
	}{
		{"withdraw-network", "isp1", func(d *netmodel.Device) {
			d.BGP.Networks = nil
		}},
		{"remove-neighbor", "edge", func(d *netmodel.Device) {
			d.BGP.RemoveNeighbor(netip.MustParseAddr("203.0.113.2"))
		}},
		{"remove-process", "isp2", func(d *netmodel.Device) {
			d.BGP = nil
		}},
		{"wrong-as", "edge", func(d *netmodel.Device) {
			d.BGP.SetNeighbor(netip.MustParseAddr("203.0.113.2"), 65011)
		}},
	}
	base := peeringNet()
	snap := Compute(base)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := base.CloneCOW(tc.device)
			tc.apply(mutated.Devices[tc.device])
			derived := snap.Derive(mutated, ChangeSet{{Device: tc.device, Kind: ChangeBGP}})
			assertInternalsEqual(t, derived, Compute(mutated))
		})
	}
}

// TestDeriveInternalsPerClass re-runs the sharing-sensitive classes on the
// peering net and asserts full internal equality, including which maps are
// shared: an ACL derivation must alias the parent's maps outright, a static
// derivation must alias every untouched device's RIB slice.
func TestDeriveInternalsPerClass(t *testing.T) {
	base := peeringNet()
	snap := Compute(base)

	t.Run("acl-shares-everything", func(t *testing.T) {
		mutated := base.CloneCOW("edge")
		d := mutated.Devices["edge"]
		d.ACL("BLOCK", true).InsertEntry(netmodel.ACLEntry{Seq: 1, Action: netmodel.Deny, Proto: netmodel.AnyProto})
		d.Interface("Gi0/0").ACLIn = "BLOCK"
		// Binding an ACL to an interface is still an ACL-class change: it
		// gates traces, not routing.
		derived := snap.Derive(mutated, ChangeSet{{Device: "edge", Kind: ChangeACL}})
		assertInternalsEqual(t, derived, Compute(mutated))
		if !sameRIBMap(derived.ribs, snap.ribs) {
			t.Error("ACL derivation did not share the parent's RIB map")
		}
	})

	t.Run("static-shares-untouched-devices", func(t *testing.T) {
		mutated := base.CloneCOW("isp1")
		mutated.Devices["isp1"].StaticRoutes = append(mutated.Devices["isp1"].StaticRoutes,
			netmodel.StaticRoute{Prefix: netip.MustParsePrefix("198.51.100.0/24"),
				NextHop: netip.MustParseAddr("203.0.113.10")})
		derived := snap.Derive(mutated, ChangeSet{{Device: "isp1", Kind: ChangeStatic}})
		assertInternalsEqual(t, derived, Compute(mutated))
		for dev := range snap.ribs {
			if dev == "isp1" {
				continue
			}
			if len(derived.ribs[dev]) > 0 && &derived.ribs[dev][0] != &snap.ribs[dev][0] {
				t.Errorf("static derivation rebuilt untouched device %s", dev)
			}
		}
	})

	t.Run("topology-falls-back", func(t *testing.T) {
		mutated := base.CloneCOW("isp2")
		mutated.Devices["isp2"].Interface("Gi0/0").Shutdown = true
		derived := snap.Derive(mutated, ChangeSet{{Device: "isp2", Kind: ChangeTopology}})
		assertInternalsEqual(t, derived, Compute(mutated))
	})

	t.Run("l3topo-interface-down", func(t *testing.T) {
		mutated := base.CloneCOW("isp2")
		mutated.Devices["isp2"].Interface("Gi0/0").Shutdown = true
		derived := snap.Derive(mutated, ChangeSet{{Device: "isp2", Kind: ChangeL3Topology}})
		assertInternalsEqual(t, derived, Compute(mutated))
	})

	t.Run("l2-shares-everything", func(t *testing.T) {
		mutated := base.CloneCOW("edge")
		mutated.Devices["edge"].VLANs[999] = &netmodel.VLAN{ID: 999, Name: "qa"}
		derived := snap.Derive(mutated, ChangeSet{{Device: "edge", Kind: ChangeL2}})
		assertInternalsEqual(t, derived, Compute(mutated))
		// The ChangeL2 contract is sharing by identity, not just equality:
		// the maps themselves must be the parent's.
		if reflect.ValueOf(derived.ribs).Pointer() != reflect.ValueOf(snap.ribs).Pointer() {
			t.Error("L2 derivation copied the RIB map")
		}
		if reflect.ValueOf(derived.fibs).Pointer() != reflect.ValueOf(snap.fibs).Pointer() {
			t.Error("L2 derivation copied the FIB map")
		}
		if reflect.ValueOf(derived.ospfRoutes).Pointer() != reflect.ValueOf(snap.ospfRoutes).Pointer() {
			t.Error("L2 derivation rebuilt the OSPF route map")
		}
		if reflect.ValueOf(derived.bgpRoutes).Pointer() != reflect.ValueOf(snap.bgpRoutes).Pointer() {
			t.Error("L2 derivation rebuilt the BGP route map")
		}
		if len(derived.sessions) > 0 && &derived.sessions[0] != &snap.sessions[0] {
			t.Error("L2 derivation rebuilt the BGP session list")
		}
		if reflect.ValueOf(derived.owner).Pointer() != reflect.ValueOf(snap.owner).Pointer() {
			t.Error("L2 derivation rebuilt the owner index")
		}
	})
}

// twoIslandNet builds two disjoint OSPF islands in one network: r1—r2 and
// r3—r4 with no links between the pairs. The LSDB splits into two
// components, so a change inside one island must leave every SPF result of
// the other island shared by identity.
func twoIslandNet() *netmodel.Network {
	n := netmodel.NewNetwork("islands")
	for _, r := range []string{"r1", "r2", "r3", "r4"} {
		n.AddDevice(r, netmodel.Router)
	}
	n.MustConnect("r1", "Gi0/0", "r2", "Gi0/0")
	n.MustConnect("r3", "Gi0/0", "r4", "Gi0/0")
	set := func(dev, itf, addr string) { n.Device(dev).Interface(itf).Addr = pfx(addr) }
	set("r1", "Gi0/0", "10.1.0.1/30")
	set("r2", "Gi0/0", "10.1.0.2/30")
	set("r3", "Gi0/0", "10.2.0.1/30")
	set("r4", "Gi0/0", "10.2.0.2/30")
	// A loopback per router so every SPF run produces at least one route.
	n.Device("r1").AddInterface("Loopback0").Addr = pfx("10.1.1.1/32")
	n.Device("r2").AddInterface("Loopback0").Addr = pfx("10.1.2.1/32")
	n.Device("r3").AddInterface("Loopback0").Addr = pfx("10.2.1.1/32")
	n.Device("r4").AddInterface("Loopback0").Addr = pfx("10.2.2.1/32")
	for _, r := range []string{"r1", "r2", "r3", "r4"} {
		n.Device(r).OSPF = &netmodel.OSPFProcess{ProcessID: 1,
			Networks: []netmodel.OSPFNetwork{{Prefix: pfx("10.0.0.0/8"), Area: 0}},
			Passive:  map[string]bool{"Loopback0": true}}
	}
	return n
}

// TestDeriveAffectedSourceReuse pins the affected-source SPF optimization:
// an OSPF cost bump in one island recomputes only that island's sources;
// the untouched island's route slices come through by identity.
func TestDeriveAffectedSourceReuse(t *testing.T) {
	base := twoIslandNet()
	snap := Compute(base)
	mutated := base.CloneCOW("r1")
	mutated.Devices["r1"].Interface("Gi0/0").OSPFCost = 7
	derived := snap.Derive(mutated, ChangeSet{{Device: "r1", Kind: ChangeOSPF}})
	assertInternalsEqual(t, derived, Compute(mutated))
	for _, src := range []string{"r3", "r4"} {
		if len(snap.ospfRoutes[src]) == 0 {
			t.Fatalf("expected OSPF routes for %s in the base snapshot", src)
		}
		if &derived.ospfRoutes[src][0] != &snap.ospfRoutes[src][0] {
			t.Errorf("%s SPF recomputed despite its component being untouched", src)
		}
	}
	// r1's own routes must reflect the new cost, so its slice is fresh.
	if len(derived.ospfRoutes["r1"]) > 0 && len(snap.ospfRoutes["r1"]) > 0 &&
		&derived.ospfRoutes["r1"][0] == &snap.ospfRoutes["r1"][0] {
		t.Error("r1 SPF slice shared even though its cost changed")
	}
}

// TestSPFMemoReuse pins the per-sweep memo: two identical derivations
// through one memo must yield the same OSPF route map (by identity) and
// count exactly one miss and one hit.
func TestSPFMemoReuse(t *testing.T) {
	base := twoIslandNet()
	snap := Compute(base)
	memo := NewSPFMemo()
	derive := func() *Snapshot {
		mutated := base.CloneCOW("r1")
		mutated.Devices["r1"].Interface("Gi0/0").OSPFCost = 9
		return snap.DeriveWithMemo(mutated, ChangeSet{{Device: "r1", Kind: ChangeOSPF}}, memo)
	}
	d1 := derive()
	d2 := derive()
	if reflect.ValueOf(d1.ospfRoutes).Pointer() != reflect.ValueOf(d2.ospfRoutes).Pointer() {
		t.Error("identical derivations did not share one memoized route map")
	}
	hits, misses := memo.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("memo stats = %d hits / %d misses, want 1 / 1", hits, misses)
	}
	mutated := base.CloneCOW("r1")
	mutated.Devices["r1"].Interface("Gi0/0").OSPFCost = 9
	assertInternalsEqual(t, d2, Compute(mutated))
}

// sameRIBMap reports whether two RIB maps share identical backing slices
// for every device (i.e. one map's contents alias the other's).
func sameRIBMap(a, b map[string][]FIBEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for dev, rib := range a {
		other := b[dev]
		if len(rib) != len(other) {
			return false
		}
		if len(rib) > 0 && &rib[0] != &other[0] {
			return false
		}
	}
	return true
}
