package dataplane

import (
	"net/netip"
	"reflect"
	"testing"

	"heimdall/internal/netmodel"
)

// assertInternalsEqual compares every internal structure of two snapshots
// of the same network — not just the observable surface. This is stricter
// than the external oracle: a derived snapshot must be bit-for-bit the
// snapshot a full compute would have built.
func assertInternalsEqual(t *testing.T, got, want *Snapshot) {
	t.Helper()
	if !reflect.DeepEqual(got.adj, want.adj) {
		t.Error("adjacency diverged")
	}
	if !reflect.DeepEqual(got.sessions, want.sessions) {
		t.Errorf("BGP sessions diverged: %+v vs %+v", got.sessions, want.sessions)
	}
	if !reflect.DeepEqual(got.ospfRoutes, want.ospfRoutes) {
		t.Errorf("OSPF routes diverged:\n%+v\nvs\n%+v", got.ospfRoutes, want.ospfRoutes)
	}
	if !reflect.DeepEqual(got.bgpRoutes, want.bgpRoutes) {
		t.Errorf("BGP routes diverged:\n%+v\nvs\n%+v", got.bgpRoutes, want.bgpRoutes)
	}
	if !reflect.DeepEqual(got.ribs, want.ribs) {
		t.Error("RIBs diverged")
	}
	if !reflect.DeepEqual(got.fibs, want.fibs) {
		t.Error("FIB tries diverged")
	}
	if !reflect.DeepEqual(got.owner, want.owner) {
		t.Error("owner index diverged")
	}
}

// TestDeriveBGPWithdraw covers the ChangeBGP class on the peering topology:
// withdrawing an advertised network, removing a neighbor (session teardown),
// and removing the whole process.
func TestDeriveBGPWithdraw(t *testing.T) {
	cases := []struct {
		name   string
		device string
		apply  func(d *netmodel.Device)
	}{
		{"withdraw-network", "isp1", func(d *netmodel.Device) {
			d.BGP.Networks = nil
		}},
		{"remove-neighbor", "edge", func(d *netmodel.Device) {
			d.BGP.RemoveNeighbor(netip.MustParseAddr("203.0.113.2"))
		}},
		{"remove-process", "isp2", func(d *netmodel.Device) {
			d.BGP = nil
		}},
		{"wrong-as", "edge", func(d *netmodel.Device) {
			d.BGP.SetNeighbor(netip.MustParseAddr("203.0.113.2"), 65011)
		}},
	}
	base := peeringNet()
	snap := Compute(base)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := base.CloneCOW(tc.device)
			tc.apply(mutated.Devices[tc.device])
			derived := snap.Derive(mutated, ChangeSet{{Device: tc.device, Kind: ChangeBGP}})
			assertInternalsEqual(t, derived, Compute(mutated))
		})
	}
}

// TestDeriveInternalsPerClass re-runs the sharing-sensitive classes on the
// peering net and asserts full internal equality, including which maps are
// shared: an ACL derivation must alias the parent's maps outright, a static
// derivation must alias every untouched device's RIB slice.
func TestDeriveInternalsPerClass(t *testing.T) {
	base := peeringNet()
	snap := Compute(base)

	t.Run("acl-shares-everything", func(t *testing.T) {
		mutated := base.CloneCOW("edge")
		d := mutated.Devices["edge"]
		d.ACL("BLOCK", true).InsertEntry(netmodel.ACLEntry{Seq: 1, Action: netmodel.Deny, Proto: netmodel.AnyProto})
		d.Interface("Gi0/0").ACLIn = "BLOCK"
		// Binding an ACL to an interface is still an ACL-class change: it
		// gates traces, not routing.
		derived := snap.Derive(mutated, ChangeSet{{Device: "edge", Kind: ChangeACL}})
		assertInternalsEqual(t, derived, Compute(mutated))
		if !sameRIBMap(derived.ribs, snap.ribs) {
			t.Error("ACL derivation did not share the parent's RIB map")
		}
	})

	t.Run("static-shares-untouched-devices", func(t *testing.T) {
		mutated := base.CloneCOW("isp1")
		mutated.Devices["isp1"].StaticRoutes = append(mutated.Devices["isp1"].StaticRoutes,
			netmodel.StaticRoute{Prefix: netip.MustParsePrefix("198.51.100.0/24"),
				NextHop: netip.MustParseAddr("203.0.113.10")})
		derived := snap.Derive(mutated, ChangeSet{{Device: "isp1", Kind: ChangeStatic}})
		assertInternalsEqual(t, derived, Compute(mutated))
		for dev := range snap.ribs {
			if dev == "isp1" {
				continue
			}
			if len(derived.ribs[dev]) > 0 && &derived.ribs[dev][0] != &snap.ribs[dev][0] {
				t.Errorf("static derivation rebuilt untouched device %s", dev)
			}
		}
	})

	t.Run("topology-falls-back", func(t *testing.T) {
		mutated := base.CloneCOW("isp2")
		mutated.Devices["isp2"].Interface("Gi0/0").Shutdown = true
		derived := snap.Derive(mutated, ChangeSet{{Device: "isp2", Kind: ChangeTopology}})
		assertInternalsEqual(t, derived, Compute(mutated))
	})
}

// sameRIBMap reports whether two RIB maps share identical backing slices
// for every device (i.e. one map's contents alias the other's).
func sameRIBMap(a, b map[string][]FIBEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for dev, rib := range a {
		other := b[dev]
		if len(rib) != len(other) {
			return false
		}
		if len(rib) > 0 && &rib[0] != &other[0] {
			return false
		}
	}
	return true
}
