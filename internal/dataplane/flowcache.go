package dataplane

import (
	"sync"
	"sync/atomic"

	"heimdall/internal/netmodel"
	"heimdall/internal/telemetry"
)

// flowKey identifies one host-to-host flow for memoization: the Reach
// arguments. Two flows with the same hosts but different protocol or
// destination port are distinct keys (an ACL may treat them differently).
type flowKey struct {
	src     string
	dst     string
	proto   netmodel.Protocol
	dstPort uint16
}

// flowResult is one memoized Reach outcome. The trace is shared between
// every caller that asks for the same flow, which is safe because traces
// are never mutated after construction.
type flowResult struct {
	tr  *Trace
	err error
}

// flowCache memoizes Reach results for the lifetime of one Snapshot.
// Snapshots are immutable, so a trace computed once is valid forever; a
// recomputed snapshot starts with a fresh, empty cache and can never
// serve stale traces. The cache is safe for concurrent use — the
// attack-surface sweep calls Reach from many goroutines at once.
type flowCache struct {
	m      sync.Map // flowKey -> *flowResult
	hits   atomic.Uint64
	misses atomic.Uint64
	// hitCtr/missCtr mirror the atomic counters onto the wired Meter
	// (no-ops unless a registry was passed via Options.Meter).
	hitCtr  telemetry.Counter
	missCtr telemetry.Counter
}

func newFlowCache(m telemetry.Meter) *flowCache {
	if m == nil {
		m = telemetry.Nop()
	}
	return &flowCache{
		hitCtr:  m.Counter("heimdall_dataplane_flowcache_hits_total"),
		missCtr: m.Counter("heimdall_dataplane_flowcache_misses_total"),
	}
}

// lookup returns the memoized result for the key, if any.
func (c *flowCache) lookup(k flowKey) (*flowResult, bool) {
	v, ok := c.m.Load(k)
	if !ok {
		return nil, false
	}
	c.hits.Add(1)
	c.hitCtr.Inc()
	return v.(*flowResult), true
}

// store memoizes a freshly computed result and returns the canonical
// entry: when two goroutines race on the same key, the first stored copy
// wins and both callers observe it (results are deterministic, so either
// copy is identical in content).
func (c *flowCache) store(k flowKey, r *flowResult) *flowResult {
	c.misses.Add(1)
	c.missCtr.Inc()
	v, _ := c.m.LoadOrStore(k, r)
	return v.(*flowResult)
}

// stats returns the cache's hit and miss counts.
func (c *flowCache) stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// FlowCacheStats returns how many Reach calls this snapshot served from
// its memoized flow cache (hits) versus traced from scratch (misses).
func (s *Snapshot) FlowCacheStats() (hits, misses uint64) {
	return s.flows.stats()
}
