package dataplane

import (
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"heimdall/internal/netmodel"
)

// The OSPF link-state pass is built around an explicit, canonical LSDB.
// buildLSDB distills a network's OSPF configuration plus the L2 adjacency
// into an area-partitioned, index-addressed router graph; the SPF pass runs
// hierarchically (per-area Dijkstra plus ABR summaries, the standard
// two-level OSPF model), and the per-source fingerprints that let Derive
// reuse unchanged shortest-path results localize to the (area, component)
// scopes a source's routes actually depend on.

// lsdbEdge is one adjacency edge of an OSPF area's router graph. peer is a
// position within that area's member list, not a global source index.
type lsdbEdge struct {
	peer     int
	localIf  string
	peerAddr netip.Addr
	cost     int
}

// ospfLSDB is the link-state database: every OSPF router, its per-area
// graph edges, and its advertised prefixes, all index-addressed and
// deterministically ordered. Two LSDBs with equal canonical serializations
// produce identical SPF results; two sources with equal fingerprints
// produce identical per-source routes even across different LSDBs.
//
// The graph is partitioned by OSPF area. Area 0 (when present) is the
// backbone: routers with interfaces in area 0 and at least one other area
// are ABRs. An ABR advertises each attached nonzero area's prefixes into
// the backbone at its intra-area cost (a type-3 summary), and re-advertises
// its backbone view — intra routes plus backbone-learned summaries — into
// its nonzero areas. Sources prefer intra-area routes over inter-area ones
// regardless of cost, per OSPF route preference. A single-area network
// degenerates to one flat SPF, byte-identical to the pre-partitioned pass.
type ospfLSDB struct {
	sources []string       // router names, sorted
	index   map[string]int // name -> index into sources

	// Area partition. areas lists distinct area ids ascending; areasOf[i]
	// holds the positions (into areas) source i participates in, ascending.
	// Per area: members (source indices, ascending), localAt (source index
	// -> member position), per-member edge lists sorted by (peer, localIf,
	// peerAddr, cost), and per-member advertised prefixes in rank order.
	areas   []int
	areasOf [][]int
	members [][]int
	localAt []map[int]int
	aGraph  [][][]lsdbEdge
	aAdv    [][][]netip.Prefix

	adv    [][]netip.Prefix // per source, all areas, rank order
	advSet []map[netip.Prefix]bool
	// ranges holds each source's configured `area range` aggregation
	// statements in canonical (area, prefix-string) order. An ABR folds an
	// area's covered prefixes into the range prefix when summarizing them
	// into other areas; the summary cost is the minimum component cost
	// (RFC 1583 compatibility), so losing one covered prefix leaves the
	// aggregate — and every remote area's view — untouched as long as an
	// equal-cost component survives.
	ranges [][]netmodel.OSPFNetwork
	// rank maps every advertised prefix to its position in the global
	// lexical prefix-string order — per-source emission walks ranks in
	// order, which reproduces the String() order the route slices have
	// always used. ranked is the inverse (rank -> prefix).
	rank   map[netip.Prefix]int
	ranked []netip.Prefix
	// rankStr caches prefixString(ranked[i]) — the strings already exist
	// for the rank sort, and the fingerprint pass would otherwise
	// re-allocate each one per serialized advertisement.
	rankStr []string

	// Hierarchical state is lazy: single-area LSDBs (the common case) never
	// need it beyond the trivial backbone lookup.
	hierOnce sync.Once
	backbone int                    // position of area 0 in areas, or -1
	abrs     []int                  // ABR source indices, ascending
	sumInto0 []map[netip.Prefix]int // per ABR: nonzero-area prefix -> intra cost
	backView []map[netip.Prefix]int // per ABR: backbone-view prefix -> cost
	// hdists retains each ABR's per-area distance vectors (area position ->
	// per-member distances) so derived LSDBs can reuse them for areas whose
	// graph rows they still share with their parent.
	hdists []map[int][]int

	// Fingerprints are lazy: most LSDBs are built, SPF'd, and discarded
	// without ever being diffed against another.
	fpOnce sync.Once
	fps    []string // per-source canonical serialization of its route scope
	// The whole-LSDB serialization (the SPF memo key) is built separately
	// on demand: derivations without a memo never pay for it.
	keyOnce sync.Once
	key     string

	// parent is the LSDB this one was patched from (deriveLSDB). The
	// fingerprint pass reuses the parent's per-(area, member) node
	// serializations for every row still shared by identity, then drops
	// the reference so chains of derivations don't pin their ancestors.
	parent   *ospfLSDB
	nodeStrs [][]string // per-(area, member) serialization, kept for children
}

// ospfInterface describes one OSPF-participating interface.
type ospfInterface struct {
	dev     string
	name    string
	addr    netip.Prefix
	area    int
	passive bool
}

// buildLSDB collects the OSPF router graph and advertisements for n.
//
// Adjacency forms between two interfaces when they are L2-adjacent, share a
// subnet and an area, and neither is passive. Every enabled interface's
// subnet (including passive ones) is advertised into its interface's area.
// Costs are hop counts unless an explicit OSPFCost is set. Inter-area
// routing follows the standard area-0 backbone rule explicitly: the SPF
// pass is per-area, and prefixes cross areas only as ABR summaries through
// the backbone (see ospfLSDB).
func buildLSDB(n *netmodel.Network, adj adjacency) *ospfLSDB {
	participants := make(map[netmodel.Endpoint]ospfInterface)
	routers := make(map[string]bool)
	for _, devName := range n.DeviceNames() {
		d := n.Devices[devName]
		if d.OSPF == nil {
			continue
		}
		for _, ifName := range d.InterfaceNames() {
			itf := d.Interfaces[ifName]
			if !l3Endpoint(itf) {
				continue
			}
			area, ok := d.OSPF.EnabledArea(itf.Addr.Addr())
			if !ok {
				continue
			}
			ep := netmodel.Endpoint{Device: devName, Interface: ifName}
			participants[ep] = ospfInterface{
				dev: devName, name: ifName, addr: itf.Addr,
				area: area, passive: d.OSPF.Passive[ifName],
			}
			routers[devName] = true
		}
	}
	l := &ospfLSDB{index: make(map[string]int, len(routers))}
	if len(routers) == 0 {
		return l
	}
	l.sources = make([]string, 0, len(routers))
	for src := range routers {
		l.sources = append(l.sources, src)
	}
	sort.Strings(l.sources)
	for i, src := range l.sources {
		l.index[src] = i
	}

	// Area ids, membership, and per-(area, source) advertisements.
	areaSet := make(map[int]bool)
	for _, oi := range participants {
		areaSet[oi.area] = true
	}
	l.areas = make([]int, 0, len(areaSet))
	for a := range areaSet {
		l.areas = append(l.areas, a)
	}
	sort.Ints(l.areas)
	areaPos := make(map[int]int, len(l.areas))
	for i, a := range l.areas {
		areaPos[a] = i
	}
	na := len(l.areas)
	memberSet := make([]map[int]bool, na)
	advBy := make([]map[int]map[netip.Prefix]bool, na)
	for ai := range l.areas {
		memberSet[ai] = make(map[int]bool)
		advBy[ai] = make(map[int]map[netip.Prefix]bool)
	}
	for _, oi := range participants {
		ai, si := areaPos[oi.area], l.index[oi.dev]
		memberSet[ai][si] = true
		if advBy[ai][si] == nil {
			advBy[ai][si] = make(map[netip.Prefix]bool)
		}
		advBy[ai][si][oi.addr.Masked()] = true
	}
	l.members = make([][]int, na)
	l.localAt = make([]map[int]int, na)
	l.aGraph = make([][][]lsdbEdge, na)
	for ai := range l.areas {
		ms := make([]int, 0, len(memberSet[ai]))
		for si := range memberSet[ai] {
			ms = append(ms, si)
		}
		sort.Ints(ms)
		l.members[ai] = ms
		l.localAt[ai] = make(map[int]int, len(ms))
		for li, si := range ms {
			l.localAt[ai][si] = li
		}
		l.aGraph[ai] = make([][]lsdbEdge, len(ms))
	}
	l.areasOf = make([][]int, len(l.sources))
	for ai := range l.areas {
		for _, si := range l.members[ai] {
			l.areasOf[si] = append(l.areasOf[si], ai)
		}
	}

	// Per-area router graph: edge source->peer via (localIf, peerAddr).
	for ep, oi := range participants {
		if oi.passive {
			continue
		}
		cost := 1
		if itf := n.Devices[oi.dev].Interface(oi.name); itf != nil && itf.OSPFCost > 0 {
			cost = itf.OSPFCost
		}
		ai := areaPos[oi.area]
		li := l.localAt[ai][l.index[oi.dev]]
		for _, other := range adj[ep] {
			po, ok := participants[other]
			if !ok || po.passive || po.dev == oi.dev {
				continue
			}
			if oi.area != po.area {
				continue // area mismatch: no adjacency
			}
			if !oi.addr.Masked().Contains(po.addr.Addr()) {
				continue // different subnets cannot peer
			}
			l.aGraph[ai][li] = append(l.aGraph[ai][li], lsdbEdge{
				peer: l.localAt[ai][l.index[po.dev]], localIf: oi.name,
				peerAddr: po.addr.Addr(), cost: cost,
			})
		}
	}
	// Participants iterate in map order; sort each edge list into the
	// canonical order (peer position order == peer name order, since
	// members are sorted by source index).
	for ai := range l.aGraph {
		for li := range l.aGraph[ai] {
			sortEdges(l.aGraph[ai][li])
		}
	}

	// Advertised prefixes per router (all enabled interfaces, passive too),
	// plus the global lexical rank used for deterministic emission.
	l.advSet = make([]map[netip.Prefix]bool, len(l.sources))
	for _, oi := range participants {
		si := l.index[oi.dev]
		if l.advSet[si] == nil {
			l.advSet[si] = make(map[netip.Prefix]bool)
		}
		l.advSet[si][oi.addr.Masked()] = true
	}
	// Configured aggregation ranges, canonically ordered per source. Their
	// prefixes join the global rank table: an aggregate can be emitted even
	// though no interface advertises it directly.
	l.ranges = make([][]netmodel.OSPFNetwork, len(l.sources))
	for si, src := range l.sources {
		l.ranges[si] = canonicalRanges(n.Devices[src].OSPF)
	}
	all := make(map[netip.Prefix]bool)
	for _, set := range l.advSet {
		for p := range set {
			all[p] = true
		}
	}
	for _, rs := range l.ranges {
		for _, r := range rs {
			all[r.Prefix] = true
		}
	}
	l.setRank(all)
	l.adv = make([][]netip.Prefix, len(l.sources))
	for si, set := range l.advSet {
		ps := make([]netip.Prefix, 0, len(set))
		for p := range set {
			ps = append(ps, p)
		}
		sort.Slice(ps, func(i, j int) bool { return l.rank[ps[i]] < l.rank[ps[j]] })
		l.adv[si] = ps
	}
	l.aAdv = make([][][]netip.Prefix, na)
	for ai := range l.areas {
		l.aAdv[ai] = make([][]netip.Prefix, len(l.members[ai]))
		for li, si := range l.members[ai] {
			ps := make([]netip.Prefix, 0, len(advBy[ai][si]))
			for p := range advBy[ai][si] {
				ps = append(ps, p)
			}
			sort.Slice(ps, func(i, j int) bool { return l.rank[ps[i]] < l.rank[ps[j]] })
			l.aAdv[ai][li] = ps
		}
	}
	return l
}

// sortEdges orders one member's edge list canonically: peer position (which
// is peer name order, since members are sorted by source index), then local
// interface, peer address, cost.
func sortEdges(edges []lsdbEdge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].peer != edges[j].peer {
			return edges[i].peer < edges[j].peer
		}
		if edges[i].localIf != edges[j].localIf {
			return edges[i].localIf < edges[j].localIf
		}
		if edges[i].peerAddr != edges[j].peerAddr {
			return edges[i].peerAddr.Less(edges[j].peerAddr)
		}
		return edges[i].cost < edges[j].cost
	})
}

// canonicalRanges returns o's `area range` statements masked and in the
// canonical (area, prefix-string) order, or nil when none are configured.
func canonicalRanges(o *netmodel.OSPFProcess) []netmodel.OSPFNetwork {
	if o == nil || len(o.Ranges) == 0 {
		return nil
	}
	cp := make([]netmodel.OSPFNetwork, len(o.Ranges))
	for i, r := range o.Ranges {
		cp[i] = netmodel.OSPFNetwork{Prefix: r.Prefix.Masked(), Area: r.Area}
	}
	sort.Slice(cp, func(i, j int) bool {
		if cp[i].Area != cp[j].Area {
			return cp[i].Area < cp[j].Area
		}
		return prefixString(cp[i].Prefix) < prefixString(cp[j].Prefix)
	})
	return cp
}

// setRank installs the global lexical prefix rank over the given prefix
// union (every advertised prefix plus every configured range prefix).
func (l *ospfLSDB) setRank(all map[netip.Prefix]bool) {
	type ranked struct {
		p netip.Prefix
		s string
	}
	order := make([]ranked, 0, len(all))
	for p := range all {
		order = append(order, ranked{p, prefixString(p)})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].s < order[j].s })
	l.rank = make(map[netip.Prefix]int, len(order))
	l.ranked = make([]netip.Prefix, len(order))
	l.rankStr = make([]string, len(order))
	for i, r := range order {
		l.rank[r.p] = i
		l.ranked[i] = r.p
		l.rankStr[i] = r.s
	}
}

// sharedRow reports whether two slices are the same backing array. Derived
// LSDBs share unchanged rows by reference, so row identity proves content
// equality without comparing elements; rows rebuilt to identical content
// merely miss the shortcut.
func sharedRow[T any](a, b []T) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// sameEndpoints compares two canonical adjacency rows element-wise.
// adjacencyFromGroups emits peers in sorted group order, so equal content
// always means equal slices.
func sameEndpoints(a, b []netmodel.Endpoint) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ospfIf resolves one endpoint's OSPF participation in n, mirroring the
// participant scan in buildLSDB.
func ospfIf(n *netmodel.Network, ep netmodel.Endpoint) (ospfInterface, bool) {
	d := n.Devices[ep.Device]
	if d == nil || d.OSPF == nil {
		return ospfInterface{}, false
	}
	itf := d.Interfaces[ep.Interface]
	if itf == nil || !l3Endpoint(itf) {
		return ospfInterface{}, false
	}
	area, ok := d.OSPF.EnabledArea(itf.Addr.Addr())
	if !ok {
		return ospfInterface{}, false
	}
	return ospfInterface{
		dev: ep.Device, name: ep.Interface, addr: itf.Addr,
		area: area, passive: d.OSPF.Passive[ep.Interface],
	}, true
}

// rebuildEdges recomputes source si's edge list in area position ai against
// network n and adjacency adj. It reads exactly what buildLSDB reads for
// that row: si's own interfaces and adjacency rows plus its peers'
// configurations — the inputs deriveLSDB's affected set is closed over.
func (l *ospfLSDB) rebuildEdges(n *netmodel.Network, adj adjacency, ai, si int) []lsdbEdge {
	src := l.sources[si]
	area := l.areas[ai]
	var edges []lsdbEdge
	for ifName, itf := range n.Devices[src].Interfaces {
		oi, ok := ospfIf(n, netmodel.Endpoint{Device: src, Interface: ifName})
		if !ok || oi.passive || oi.area != area {
			continue
		}
		cost := 1
		if itf.OSPFCost > 0 {
			cost = itf.OSPFCost
		}
		for _, other := range adj[netmodel.Endpoint{Device: src, Interface: ifName}] {
			po, ok := ospfIf(n, other)
			if !ok || po.passive || po.dev == src || po.area != area {
				continue
			}
			if !oi.addr.Masked().Contains(po.addr.Addr()) {
				continue
			}
			pi, ok := l.index[po.dev]
			if !ok {
				continue
			}
			lp, ok := l.localAt[ai][pi]
			if !ok {
				continue
			}
			edges = append(edges, lsdbEdge{
				peer: lp, localIf: ifName, peerAddr: po.addr.Addr(), cost: cost,
			})
		}
	}
	sortEdges(edges)
	return edges
}

// deriveLSDB patches old into the LSDB of n, rebuilding only the rows the
// change set can have touched and sharing everything else by reference —
// the structure-sharing dual of the fingerprint pass: shared rows later
// prove themselves unchanged by identity, so their serializations, SPF
// distance vectors, and ABR summaries are reused instead of recomputed.
//
// The patch keeps old's index-addressed layout, so any structural drift
// falls back to a full buildLSDB: a device entering or leaving the router
// set, a router's per-area membership changing, or a change introducing an
// area id the old LSDB never saw. Within a stable layout the rebuilt rows
// are: the changed routers' advertisements, ranges, and edge lists, plus
// the edge lists of every router whose inputs a change can reach — routers
// adjacent to a changed device under the old or new adjacency (peer
// attributes feed their edges), and, when the L2 adjacency was rebuilt,
// routers whose own adjacency rows differ (an L2-only change on a transit
// switch rewires routers that are not adjacent to the changed device;
// adjacency rows are canonical, so element-wise comparison is exact).
func deriveLSDB(old *ospfLSDB, oldNet, n *netmodel.Network, oldAdj, adj adjacency,
	adjRebuilt bool, changed map[string]bool) *ospfLSDB {
	if old == nil || oldNet == nil || len(old.sources) == 0 {
		return buildLSDB(n, adj)
	}
	areaPos := make(map[int]int, len(old.areas))
	for i, a := range old.areas {
		areaPos[a] = i
	}

	// Re-scan the changed devices' OSPF participation, verifying the layout
	// is intact and collecting their per-area advertisement sets.
	touched := make(map[int]map[int]map[netip.Prefix]bool)
	for dev := range changed {
		d := n.Devices[dev]
		si, wasRouter := old.index[dev]
		var byArea map[int]map[netip.Prefix]bool
		if d != nil && d.OSPF != nil {
			for _, itf := range d.Interfaces {
				if !l3Endpoint(itf) {
					continue
				}
				area, ok := d.OSPF.EnabledArea(itf.Addr.Addr())
				if !ok {
					continue
				}
				ai, ok := areaPos[area]
				if !ok {
					return buildLSDB(n, adj) // new area id
				}
				if byArea == nil {
					byArea = make(map[int]map[netip.Prefix]bool)
				}
				if byArea[ai] == nil {
					byArea[ai] = make(map[netip.Prefix]bool)
				}
				byArea[ai][itf.Addr.Masked()] = true
			}
		}
		if (byArea != nil) != wasRouter {
			return buildLSDB(n, adj) // router set changed
		}
		if byArea == nil {
			continue
		}
		if len(byArea) != len(old.areasOf[si]) {
			return buildLSDB(n, adj) // area membership changed
		}
		for _, ai := range old.areasOf[si] {
			if byArea[ai] == nil {
				return buildLSDB(n, adj)
			}
		}
		touched[si] = byArea
	}

	l := &ospfLSDB{
		sources: old.sources, index: old.index,
		areas: old.areas, areasOf: old.areasOf,
		members: old.members, localAt: old.localAt,
		aGraph: append([][][]lsdbEdge(nil), old.aGraph...),
		aAdv:   append([][][]netip.Prefix(nil), old.aAdv...),
		adv:    old.adv, advSet: old.advSet, ranges: old.ranges,
		rank: old.rank, ranked: old.ranked, rankStr: old.rankStr,
		parent: old,
	}
	ownG := make([]bool, len(l.areas))
	graphRow := func(ai int) [][]lsdbEdge {
		if !ownG[ai] {
			l.aGraph[ai] = append([][]lsdbEdge(nil), l.aGraph[ai]...)
			ownG[ai] = true
		}
		return l.aGraph[ai]
	}
	ownA := make([]bool, len(l.areas))
	advRow := func(ai int) [][]netip.Prefix {
		if !ownA[ai] {
			l.aAdv[ai] = append([][]netip.Prefix(nil), l.aAdv[ai]...)
			ownA[ai] = true
		}
		return l.aAdv[ai]
	}

	if len(touched) > 0 {
		l.adv = append([][]netip.Prefix(nil), old.adv...)
		l.advSet = append([]map[netip.Prefix]bool(nil), old.advSet...)
		l.ranges = append([][]netmodel.OSPFNetwork(nil), old.ranges...)
		for si, byArea := range touched {
			set := make(map[netip.Prefix]bool)
			for _, ps := range byArea {
				for p := range ps {
					set[p] = true
				}
			}
			l.advSet[si] = set
			l.ranges[si] = canonicalRanges(n.Devices[l.sources[si]].OSPF)
		}

		// The rank table is shared whenever the global prefix union is
		// unchanged. When it is rebuilt, unshared rows stay correctly
		// ordered anyway: rank order is lexical prefix-string order, which
		// is stable under insertions and deletions.
		all := make(map[netip.Prefix]bool, len(old.rank))
		for _, set := range l.advSet {
			for p := range set {
				all[p] = true
			}
		}
		for _, rs := range l.ranges {
			for _, r := range rs {
				all[r.Prefix] = true
			}
		}
		same := len(all) == len(old.rank)
		if same {
			for p := range all {
				if _, ok := old.rank[p]; !ok {
					same = false
					break
				}
			}
		}
		if !same {
			l.setRank(all)
		}

		for si, byArea := range touched {
			ps := make([]netip.Prefix, 0, len(l.advSet[si]))
			for p := range l.advSet[si] {
				ps = append(ps, p)
			}
			sort.Slice(ps, func(i, j int) bool { return l.rank[ps[i]] < l.rank[ps[j]] })
			l.adv[si] = ps
			for ai, set := range byArea {
				aps := make([]netip.Prefix, 0, len(set))
				for p := range set {
					aps = append(aps, p)
				}
				sort.Slice(aps, func(i, j int) bool { return l.rank[aps[i]] < l.rank[aps[j]] })
				advRow(ai)[l.localAt[ai][si]] = aps
			}
		}
	}

	// Affected edge lists: changed routers, their adjacency peers under
	// either adjacency, and (after an adjacency rebuild) routers whose own
	// rows differ.
	affected := make(map[int]bool, len(changed))
	for dev := range changed {
		if si, ok := old.index[dev]; ok {
			affected[si] = true
		}
	}
	markPeers := func(net2 *netmodel.Network, a adjacency) {
		for dev := range changed {
			d := net2.Devices[dev]
			if d == nil {
				continue
			}
			for ifName := range d.Interfaces {
				for _, other := range a[netmodel.Endpoint{Device: dev, Interface: ifName}] {
					if pi, ok := old.index[other.Device]; ok {
						affected[pi] = true
					}
				}
			}
		}
	}
	markPeers(oldNet, oldAdj)
	markPeers(n, adj)
	if adjRebuilt {
		for si, src := range old.sources {
			if affected[si] {
				continue
			}
			for ifName := range n.Devices[src].Interfaces {
				ep := netmodel.Endpoint{Device: src, Interface: ifName}
				if !sameEndpoints(oldAdj[ep], adj[ep]) {
					affected[si] = true
					break
				}
			}
		}
	}
	for si := range affected {
		for _, ai := range old.areasOf[si] {
			graphRow(ai)[old.localAt[ai][si]] = l.rebuildEdges(n, adj, ai, si)
		}
	}
	return l
}

// routes runs the SPF pass for every source and returns per-device OSPF
// FIB entries, or nil when no router participates. Sources are independent
// given the read-only LSDB, so they fan out over a bounded pool; each
// writes into an index-addressed slot, so the result is identical to a
// serial run. Route emission is sorted (prefix string, then hop), making
// the per-device route slices deterministic — Derive relies on this to
// reproduce a from-scratch Compute byte for byte.
func (l *ospfLSDB) routes() map[string][]FIBEntry {
	if len(l.sources) == 0 {
		return nil
	}
	l.hier()
	slots := make([][]FIBEntry, len(l.sources))
	fanOut(len(l.sources), func(i int) {
		slots[i] = l.routesFrom(i)
	})
	out := make(map[string][]FIBEntry, len(l.sources))
	for i, src := range l.sources {
		if len(slots[i]) > 0 {
			out[src] = slots[i]
		}
	}
	return out
}

// ospfHop is one candidate first hop toward a destination.
type ospfHop struct {
	outIf string
	via   netip.Addr
}

// addHop appends h unless already present. First-hop sets are tiny (ECMP
// fan-out), so the linear scan beats a map.
func addHop(hops []ospfHop, h ospfHop) []ospfHop {
	for _, x := range hops {
		if x == h {
			return hops
		}
	}
	return append(hops, h)
}

// areaSPF runs the single-source Dijkstra over one area's member graph.
// It returns per-member distances (-1 = unreached) and first-hop sets from
// the local source position ls.
func (l *ospfLSDB) areaSPF(ai, ls int) ([]int, [][]ospfHop) {
	nv := len(l.members[ai])
	const unreached = -1
	dist := make([]int, nv)
	for i := range dist {
		dist[i] = unreached
	}
	dist[ls] = 0
	settled := make([]bool, nv)
	hops := make([][]ospfHop, nv)
	graph := l.aGraph[ai]
	for {
		// Select the unsettled node with the smallest distance. The lowest
		// position wins ties, which is exactly the name order the map-based
		// implementation tie-broke by; since every edge cost is >= 1,
		// equal-distance nodes never relax each other, so the tie order
		// cannot change any first-hop set anyway.
		cur, best := -1, -1
		for i := 0; i < nv; i++ {
			if settled[i] || dist[i] == unreached {
				continue
			}
			if best < 0 || dist[i] < best {
				cur, best = i, dist[i]
			}
		}
		if cur < 0 {
			break
		}
		settled[cur] = true
		for _, e := range graph[cur] {
			nd := dist[cur] + e.cost
			switch old := dist[e.peer]; {
			case old == unreached || nd < old:
				dist[e.peer] = nd
				hops[e.peer] = hops[e.peer][:0]
			case nd > old:
				continue
			}
			// Propagate first hops for equal-or-new best paths.
			if cur == ls {
				hops[e.peer] = addHop(hops[e.peer], ospfHop{outIf: e.localIf, via: e.peerAddr})
			} else {
				for _, h := range hops[cur] {
					hops[e.peer] = addHop(hops[e.peer], h)
				}
			}
		}
	}
	return dist, hops
}

// rangeFor returns the most specific configured range on source si that
// covers prefix p within the given area id, if any. The summarizing key an
// ABR uses for p is that range's prefix; uncovered prefixes pass through
// unaggregated.
func (l *ospfLSDB) rangeFor(si, area int, p netip.Prefix) (netip.Prefix, bool) {
	var best netip.Prefix
	found := false
	for _, r := range l.ranges[si] {
		if r.Area != area || r.Prefix.Bits() > p.Bits() || !r.Prefix.Contains(p.Addr()) {
			continue
		}
		if !found || r.Prefix.Bits() > best.Bits() {
			best, found = r.Prefix, true
		}
	}
	return best, found
}

// areaDist is areaSPF without first-hop bookkeeping: the summary passes in
// hier only consume distances, and tracking hop sets there roughly doubled
// the cost of every ABR's per-area Dijkstra.
func (l *ospfLSDB) areaDist(ai, ls int) []int {
	nv := len(l.members[ai])
	const unreached = -1
	dist := make([]int, nv)
	for i := range dist {
		dist[i] = unreached
	}
	dist[ls] = 0
	settled := make([]bool, nv)
	graph := l.aGraph[ai]
	for {
		cur, best := -1, -1
		for i := 0; i < nv; i++ {
			if settled[i] || dist[i] == unreached {
				continue
			}
			if best < 0 || dist[i] < best {
				cur, best = i, dist[i]
			}
		}
		if cur < 0 {
			break
		}
		settled[cur] = true
		for _, e := range graph[cur] {
			if nd := dist[cur] + e.cost; dist[e.peer] == unreached || nd < dist[e.peer] {
				dist[e.peer] = nd
			}
		}
	}
	return dist
}

// hier computes the hierarchical (inter-area) state once: the backbone
// position, the ABR set, each ABR's summary costs into the backbone, and
// each ABR's backbone view injected into its nonzero areas. Single-area
// LSDBs stop at the backbone lookup.
func (l *ospfLSDB) hier() {
	l.hierOnce.Do(func() {
		l.backbone = -1
		for i, a := range l.areas {
			if a == 0 {
				l.backbone = i
			}
		}
		if l.backbone < 0 || len(l.areas) < 2 {
			return
		}
		for si := range l.sources {
			if len(l.areasOf[si]) < 2 {
				continue
			}
			if _, ok := l.localAt[l.backbone][si]; ok {
				l.abrs = append(l.abrs, si)
			}
		}
		if len(l.abrs) == 0 {
			return
		}
		l.sumInto0 = make([]map[netip.Prefix]int, len(l.sources))
		l.backView = make([]map[netip.Prefix]int, len(l.sources))

		// When this LSDB was derived, areas that still share every graph and
		// advertisement row with the parent have byte-identical SPF inputs:
		// the parent's distance vectors — and, when an ABR's whole nonzero
		// footprint is clean, its backbone summary — carry over untouched.
		// (deriveLSDB guarantees the layout matches; parent is only released
		// after the fingerprint pass, which runs through here first.)
		par := l.parent
		var cleanG, cleanA []bool
		if par != nil {
			par.hier()
			if par.hdists == nil {
				par = nil
			}
		}
		if par != nil {
			cleanG = make([]bool, len(l.areas))
			cleanA = make([]bool, len(l.areas))
			for ai := range l.areas {
				cleanG[ai] = sharedRow(l.aGraph[ai], par.aGraph[ai])
				cleanA[ai] = sharedRow(l.aAdv[ai], par.aAdv[ai])
				if cleanG[ai] && cleanA[ai] {
					continue
				}
				g, a := true, true
				for li := range l.aGraph[ai] {
					g = g && sharedRow(l.aGraph[ai][li], par.aGraph[ai][li])
					a = a && sharedRow(l.aAdv[ai][li], par.aAdv[ai][li])
				}
				cleanG[ai], cleanA[ai] = g, a
			}
		}

		// Pass 1: per-ABR intra-area distances and backbone summaries.
		// dists[b] maps area position -> per-member distances from b.
		dists := make(map[int]map[int][]int, len(l.abrs))
		l.hdists = make([]map[int][]int, len(l.sources))
		allSum := true
		reuseView := make([]bool, len(l.sources))
		for _, b := range l.abrs {
			byArea := make(map[int][]int, len(l.areasOf[b]))
			rangesShared := par != nil && sharedRow(l.ranges[b], par.ranges[b])
			reuseSum, view := rangesShared, rangesShared
			for _, ai := range l.areasOf[b] {
				if par != nil && cleanG[ai] {
					if pd := par.hdists[b][ai]; pd != nil {
						byArea[ai] = pd
					}
				}
				if byArea[ai] == nil {
					byArea[ai] = l.areaDist(ai, l.localAt[ai][b])
				}
				if par == nil || !(cleanG[ai] && cleanA[ai]) {
					view = false
					if ai != l.backbone {
						reuseSum = false
					}
				}
			}
			dists[b] = byArea
			l.hdists[b] = byArea
			reuseView[b] = view
			if reuseSum {
				l.sumInto0[b] = par.sumInto0[b]
				continue
			}
			allSum = false
			sum := make(map[netip.Prefix]int)
			for _, ai := range l.areasOf[b] {
				if ai == l.backbone {
					continue
				}
				d := byArea[ai]
				area := l.areas[ai]
				for li := range l.members[ai] {
					if d[li] < 0 {
						continue
					}
					for _, p := range l.aAdv[ai][li] {
						if rp, ok := l.rangeFor(b, area, p); ok {
							p = rp // aggregate: min component cost wins below
						}
						if c, ok := sum[p]; !ok || d[li] < c {
							sum[p] = d[li]
						}
					}
				}
			}
			l.sumInto0[b] = sum
		}

		// Pass 2: per-ABR backbone view — intra routes over all attached
		// areas, then backbone-learned summaries for everything else.
		// Intra-area routes win regardless of cost (OSPF preference). A
		// parent view carries over only when the ABR's whole footprint is
		// clean AND every ABR's backbone summary was reused: the view folds
		// in other ABRs' summaries, so any summary change taints them all.
		for _, b := range l.abrs {
			if par != nil && allSum && reuseView[b] {
				l.backView[b] = par.backView[b]
				continue
			}
			view := make(map[netip.Prefix]int)
			intra := make(map[netip.Prefix]bool)
			for _, ai := range l.areasOf[b] {
				d := dists[b][ai]
				ls := l.localAt[ai][b]
				area := l.areas[ai]
				for li := range l.members[ai] {
					if li == ls || d[li] < 0 {
						continue
					}
					for _, p := range l.aAdv[ai][li] {
						if rp, ok := l.rangeFor(b, area, p); ok {
							p = rp // aggregate into the range summary
						}
						if c, ok := view[p]; !ok || !intra[p] || d[li] < c {
							view[p] = d[li]
							intra[p] = true
						}
					}
				}
			}
			d0 := dists[b][l.backbone]
			for _, b2 := range l.abrs {
				if b2 == b {
					continue
				}
				p0 := l.localAt[l.backbone][b2]
				if d0[p0] < 0 {
					continue
				}
				for p, c := range l.sumInto0[b2] {
					if intra[p] {
						continue
					}
					if cur, ok := view[p]; !ok || d0[p0]+c < cur {
						view[p] = d0[p0] + c
					}
				}
			}
			l.backView[b] = view
		}
	})
}

// routesFrom computes the source router's OSPF routes in deterministic
// (prefix string, hop) order, or nil when it has none: per-area Dijkstra
// for intra-area routes, plus ABR summaries for inter-area ones.
func (l *ospfLSDB) routesFrom(si int) []FIBEntry {
	if len(l.sources) == 0 {
		return nil
	}
	l.hier()

	// Accumulation is rank-indexed: the global prefix rank doubles as the
	// dedup key (no per-prefix map or pointer allocations) and as the
	// emission order, so the final walk needs no sort. A best of 0 marks an
	// untouched slot — every candidate's total cost is >= 1 because the
	// advertiser (intra) or the ABR (inter) is never the source itself.
	type prefRoute struct {
		best  int
		intra bool
		hops  []ospfHop
	}
	acc := make([]prefRoute, len(l.ranked))
	localRank := make([]bool, len(l.ranked))
	for _, p := range l.adv[si] {
		localRank[l.rank[p]] = true
	}
	any := false
	add := func(ri, dist int, intra bool, hs []ospfHop) {
		if localRank[ri] {
			return // connected beats OSPF anyway
		}
		a := &acc[ri]
		if a.best != 0 {
			if a.intra && !intra {
				return // intra-area routes win regardless of cost
			}
			if a.intra == intra && dist > a.best {
				return
			}
			if a.intra == intra && dist == a.best {
				for _, h := range hs {
					a.hops = addHop(a.hops, h)
				}
				return
			}
		}
		a.best, a.intra = dist, intra
		a.hops = a.hops[:0]
		for _, h := range hs {
			a.hops = addHop(a.hops, h)
		}
		any = true
	}

	// Intra-area candidates, keeping each area's SPF for the inter pass.
	type areaRun struct {
		ai   int
		dist []int
		hops [][]ospfHop
	}
	runs := make([]areaRun, 0, len(l.areasOf[si]))
	inBackbone := false
	for _, ai := range l.areasOf[si] {
		ls := l.localAt[ai][si]
		dist, hops := l.areaSPF(ai, ls)
		runs = append(runs, areaRun{ai: ai, dist: dist, hops: hops})
		if ai == l.backbone {
			inBackbone = true
		}
		for li := range l.members[ai] {
			if li == ls || dist[li] < 0 || len(hops[li]) == 0 {
				continue
			}
			for _, p := range l.aAdv[ai][li] {
				add(l.rank[p], dist[li], true, hops[li])
			}
		}
	}

	// Inter-area candidates. Backbone members consume ABR summaries
	// directly; non-backbone members consume the backbone views their
	// areas' ABRs re-advertise. Map iteration order is irrelevant: add()
	// keeps the minimum and unions hops only at the minimum.
	if len(l.abrs) > 0 {
		if inBackbone {
			for _, r := range runs {
				if r.ai != l.backbone {
					continue
				}
				for _, b := range l.abrs {
					if b == si {
						continue
					}
					p0 := l.localAt[l.backbone][b]
					if r.dist[p0] < 0 || len(r.hops[p0]) == 0 {
						continue
					}
					for p, c := range l.sumInto0[b] {
						add(l.rank[p], r.dist[p0]+c, false, r.hops[p0])
					}
				}
			}
		} else {
			for _, r := range runs {
				for _, b := range l.abrs {
					lb, ok := l.localAt[r.ai][b]
					if !ok || r.dist[lb] < 0 || len(r.hops[lb]) == 0 {
						continue
					}
					for p, c := range l.backView[b] {
						add(l.rank[p], r.dist[lb]+c, false, r.hops[lb])
					}
				}
			}
		}
	}
	if !any {
		return nil
	}

	out := make([]FIBEntry, 0, len(l.ranked))
	for ri := range acc {
		a := &acc[ri]
		if a.best == 0 {
			continue
		}
		sort.Slice(a.hops, func(i, j int) bool {
			if a.hops[i].via != a.hops[j].via {
				return a.hops[i].via.Less(a.hops[j].via)
			}
			return a.hops[i].outIf < a.hops[j].outIf
		})
		for _, h := range a.hops {
			out = append(out, FIBEntry{
				Prefix: l.ranked[ri], Proto: OSPF, NextHop: h.via, OutIf: h.outIf,
				AD: OSPF.adminDistance(), Metric: a.best,
			})
		}
	}
	return out
}

// fingerprint returns the canonical serialization of the named source's
// route scope, or false when the source is not an OSPF router. The scope is
// every (area, connected component) the source belongs to plus the summary
// vectors of the ABRs inside those components — exactly the inputs
// routesFrom reads — so equal fingerprints guarantee identical routesFrom
// output, even between LSDBs that differ elsewhere. In a multi-area
// network this localizes invalidation: a change confined to one area
// leaves every other area's sources reusable, provided the ABR summaries
// it feeds are unchanged (equal-cost redundancy inside an area keeps them
// stable under single-element faults).
func (l *ospfLSDB) fingerprint(name string) (string, bool) {
	i, ok := l.index[name]
	if !ok {
		return "", false
	}
	l.fpOnce.Do(l.computeFingerprints)
	return l.fps[i], true
}

// canonicalKey returns the canonical serialization of the whole LSDB —
// the SPF memo key. Equal keys mean equal routes() output. It is built
// lazily from the retained node serializations: a derivation that never
// consults the memo never pays the whole-LSDB concatenation.
func (l *ospfLSDB) canonicalKey() string {
	l.fpOnce.Do(l.computeFingerprints)
	l.keyOnce.Do(func() {
		var keyB strings.Builder
		for ai, area := range l.areas {
			keyB.WriteString("A=")
			keyB.WriteString(strconv.Itoa(area))
			keyB.WriteByte('\n')
			for li := range l.members[ai] {
				keyB.WriteString(l.nodeStrs[ai][li])
			}
		}
		l.key = keyB.String()
	})
	return l.key
}

// costLines serializes one ABR's summary vector deterministically (prefix
// rank order), for inclusion in component fingerprints.
func (l *ospfLSDB) costLines(tag, name string, m map[netip.Prefix]int) string {
	if len(m) == 0 {
		return ""
	}
	ps := make([]netip.Prefix, 0, len(m))
	for p := range m {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return l.rank[ps[i]] < l.rank[ps[j]] })
	var b strings.Builder
	for _, p := range ps {
		b.WriteString(tag)
		b.WriteString(name)
		b.WriteByte('|')
		b.WriteString(l.rankStr[l.rank[p]])
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(m[p]))
		b.WriteByte('\n')
	}
	return b.String()
}

func (l *ospfLSDB) computeFingerprints() {
	l.hier()
	nv := len(l.sources)
	l.fps = make([]string, nv)

	// Per-(area, member) canonical serialization. Peers are named, not
	// indexed, so serializations compare across LSDBs whose router sets
	// differ; edge lists are already in peer-name order and advertisements
	// in global prefix-string order. Rows still shared with the parent LSDB
	// (deriveLSDB's structural sharing) have byte-identical serializations
	// by construction — reuse them instead of re-serializing. The strings
	// are rank-independent (prefixString values, not rank positions), so
	// reuse stays valid even when the rank table itself was rebuilt.
	par := l.parent
	if par != nil {
		par.fpOnce.Do(par.computeFingerprints)
		if par.nodeStrs == nil {
			par = nil
		}
	}
	nodeStr := make([][]string, len(l.areas))
	for ai := range l.areas {
		nodeStr[ai] = make([]string, len(l.members[ai]))
		for li, si := range l.members[ai] {
			if par != nil &&
				sharedRow(l.aGraph[ai][li], par.aGraph[ai][li]) &&
				sharedRow(l.aAdv[ai][li], par.aAdv[ai][li]) &&
				sharedRow(l.ranges[si], par.ranges[si]) {
				nodeStr[ai][li] = par.nodeStrs[ai][li]
				continue
			}
			var b strings.Builder
			b.WriteString("n=")
			b.WriteString(l.sources[si])
			b.WriteByte('\n')
			for _, e := range l.aGraph[ai][li] {
				b.WriteString("e=")
				b.WriteString(l.sources[l.members[ai][e.peer]])
				b.WriteByte('|')
				b.WriteString(e.localIf)
				b.WriteByte('|')
				b.WriteString(e.peerAddr.String()) // Addr, not Prefix: no intern
				b.WriteByte('|')
				b.WriteString(strconv.Itoa(e.cost))
				b.WriteByte('\n')
			}
			for _, p := range l.aAdv[ai][li] {
				b.WriteString("a=")
				b.WriteString(l.rankStr[l.rank[p]])
				b.WriteByte('\n')
			}
			// Configured ranges for this area change what the member
			// summarizes elsewhere, so they are part of its serialization
			// (and thereby the whole-LSDB memo key).
			for _, r := range l.ranges[si] {
				if r.Area != l.areas[ai] {
					continue
				}
				b.WriteString("r=")
				b.WriteString(l.rankStr[l.rank[r.Prefix]])
				b.WriteByte('\n')
			}
			nodeStr[ai][li] = b.String()
		}
	}

	// ABR summary serializations: what an ABR injects into the backbone
	// (sumInto0) and into its nonzero areas (backView). These are part of
	// every component fingerprint the ABR belongs to, because a source's
	// routes read them even though their inputs live outside its areas.
	isABR := make([]bool, nv)
	sumStr := make([]string, nv)
	viewStr := make([]string, nv)
	for _, b := range l.abrs {
		isABR[b] = true
		sumStr[b] = l.costLines("s=", l.sources[b], l.sumInto0[b])
		viewStr[b] = l.costLines("v=", l.sources[b], l.backView[b])
	}

	// Undirected connected components per area: subnet containment can be
	// asymmetric, so an edge in either direction couples two nodes' SPF
	// results and they must share a fingerprint scope.
	parts := make([][]string, nv)
	for ai, area := range l.areas {
		nm := len(l.members[ai])
		parent := make([]int, nm)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		for li := range l.aGraph[ai] {
			for _, e := range l.aGraph[ai][li] {
				ri, rp := find(li), find(e.peer)
				if ri != rp {
					parent[ri] = rp
				}
			}
		}
		comp := make(map[int][]int)
		for li := 0; li < nm; li++ {
			comp[find(li)] = append(comp[find(li)], li)
		}
		header := "A=" + strconv.Itoa(area) + "\n"
		for _, m := range comp {
			sort.Ints(m)
			var b strings.Builder
			b.WriteString(header)
			for _, li := range m {
				b.WriteString(nodeStr[ai][li])
			}
			for _, li := range m {
				si := l.members[ai][li]
				if !isABR[si] {
					continue
				}
				if ai == l.backbone {
					b.WriteString(sumStr[si])
				} else {
					b.WriteString(viewStr[si])
				}
			}
			cs := b.String()
			for _, li := range m {
				parts[l.members[ai][li]] = append(parts[l.members[ai][li]], cs)
			}
		}
	}
	for i := 0; i < nv; i++ {
		// areasOf is ascending and each area contributes exactly one part,
		// so the join order is the canonical area order.
		l.fps[i] = strings.Join(parts[i], "")
	}
	// Keep the serializations for future derivations (and for canonicalKey),
	// and release the parent so chains of derived LSDBs don't accumulate.
	l.nodeStrs = nodeStr
	l.parent = nil
}

// SPFMemo memoizes whole link-state results across snapshot derivations,
// keyed by the canonical LSDB serialization. Distinct trials that produce
// an identical L3 graph (every VLAN mutation on a pure-L2 switch, repeated
// interface-downs that isolate the same stub) share one SPF computation.
// Safe for concurrent use; stored route maps are shared across goroutines
// and must be treated as immutable by every consumer.
type SPFMemo struct {
	mu     sync.RWMutex
	m      map[string]map[string][]FIBEntry
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewSPFMemo returns an empty memo, typically one per sweep.
func NewSPFMemo() *SPFMemo {
	return &SPFMemo{m: make(map[string]map[string][]FIBEntry)}
}

// lookup returns the memoized routes for key, counting a hit or miss.
func (m *SPFMemo) lookup(key string) (map[string][]FIBEntry, bool) {
	m.mu.RLock()
	routes, ok := m.m[key]
	m.mu.RUnlock()
	if ok {
		m.hits.Add(1)
	} else {
		m.misses.Add(1)
	}
	return routes, ok
}

// store memoizes routes under key and returns the canonical map: the first
// writer wins, so every concurrent caller converges on one shared result.
func (m *SPFMemo) store(key string, routes map[string][]FIBEntry) map[string][]FIBEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	if prior, ok := m.m[key]; ok {
		return prior
	}
	m.m[key] = routes
	return routes
}

// Stats returns the cumulative lookup hit and miss counts.
func (m *SPFMemo) Stats() (hits, misses uint64) {
	return m.hits.Load(), m.misses.Load()
}
