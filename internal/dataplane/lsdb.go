package dataplane

import (
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"heimdall/internal/netmodel"
)

// The OSPF link-state pass is built around an explicit, canonical LSDB.
// buildLSDB distills a network's OSPF configuration plus the L2 adjacency
// into an index-addressed router graph; the SPF pass, the per-source
// component fingerprints that let Derive reuse unchanged shortest-path
// results, and the whole-LSDB memo key all read from this one structure.

// lsdbEdge is one adjacency edge of the OSPF router graph.
type lsdbEdge struct {
	peer     int // index into sources
	localIf  string
	peerAddr netip.Addr
	cost     int
}

// ospfLSDB is the link-state database: every OSPF router, its graph edges,
// and its advertised prefixes, all index-addressed and deterministically
// ordered. Two LSDBs with equal canonical serializations produce identical
// SPF results; two sources with equal component fingerprints produce
// identical per-source routes even across different LSDBs.
type ospfLSDB struct {
	sources []string       // router names, sorted
	index   map[string]int // name -> index into sources
	graph   [][]lsdbEdge   // per source, sorted by (peer, localIf, peerAddr, cost)
	adv     [][]netip.Prefix
	advSet  []map[netip.Prefix]bool
	// rank maps every advertised prefix to its position in the global
	// lexical prefix-string order — per-source emission walks ranks in
	// order, which reproduces the String() order the route slices have
	// always used. ranked is the inverse (rank -> prefix).
	rank   map[netip.Prefix]int
	ranked []netip.Prefix

	// Fingerprints are lazy: most LSDBs are built, SPF'd, and discarded
	// without ever being diffed against another.
	fpOnce sync.Once
	fps    []string // per-source canonical serialization of its component
	key    string   // canonical serialization of the whole LSDB
}

// ospfInterface describes one OSPF-participating interface.
type ospfInterface struct {
	dev     string
	name    string
	addr    netip.Prefix
	area    int
	passive bool
}

// buildLSDB collects the OSPF router graph and advertisements for n.
//
// Adjacency forms between two interfaces when they are L2-adjacent, share a
// subnet and an area, and neither is passive. Every enabled interface's
// subnet (including passive ones) is advertised. Costs are hop counts
// unless an explicit OSPFCost is set. Inter-area routing follows the
// standard area-0 backbone rule implicitly: the router graph spans all
// areas, but edges only exist inside one area, so traffic crosses areas
// only through routers with interfaces in both.
func buildLSDB(n *netmodel.Network, adj adjacency) *ospfLSDB {
	participants := make(map[netmodel.Endpoint]ospfInterface)
	routers := make(map[string]bool)
	for _, devName := range n.DeviceNames() {
		d := n.Devices[devName]
		if d.OSPF == nil {
			continue
		}
		for _, ifName := range d.InterfaceNames() {
			itf := d.Interfaces[ifName]
			if !l3Endpoint(itf) {
				continue
			}
			area, ok := d.OSPF.EnabledArea(itf.Addr.Addr())
			if !ok {
				continue
			}
			ep := netmodel.Endpoint{Device: devName, Interface: ifName}
			participants[ep] = ospfInterface{
				dev: devName, name: ifName, addr: itf.Addr,
				area: area, passive: d.OSPF.Passive[ifName],
			}
			routers[devName] = true
		}
	}
	l := &ospfLSDB{index: make(map[string]int, len(routers))}
	if len(routers) == 0 {
		return l
	}
	l.sources = make([]string, 0, len(routers))
	for src := range routers {
		l.sources = append(l.sources, src)
	}
	sort.Strings(l.sources)
	for i, src := range l.sources {
		l.index[src] = i
	}

	// Router graph: edge source->peer via (localIf, peerAddr).
	l.graph = make([][]lsdbEdge, len(l.sources))
	for ep, oi := range participants {
		if oi.passive {
			continue
		}
		cost := 1
		if itf := n.Devices[oi.dev].Interface(oi.name); itf != nil && itf.OSPFCost > 0 {
			cost = itf.OSPFCost
		}
		si := l.index[oi.dev]
		for _, other := range adj[ep] {
			po, ok := participants[other]
			if !ok || po.passive || po.dev == oi.dev {
				continue
			}
			if oi.area != po.area {
				continue // area mismatch: no adjacency
			}
			if !oi.addr.Masked().Contains(po.addr.Addr()) {
				continue // different subnets cannot peer
			}
			l.graph[si] = append(l.graph[si], lsdbEdge{
				peer: l.index[po.dev], localIf: oi.name, peerAddr: po.addr.Addr(), cost: cost,
			})
		}
	}
	// Participants iterate in map order; sort each edge list into the
	// canonical order (peer index order == peer name order, since sources
	// are sorted).
	for si := range l.graph {
		edges := l.graph[si]
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].peer != edges[j].peer {
				return edges[i].peer < edges[j].peer
			}
			if edges[i].localIf != edges[j].localIf {
				return edges[i].localIf < edges[j].localIf
			}
			if edges[i].peerAddr != edges[j].peerAddr {
				return edges[i].peerAddr.Less(edges[j].peerAddr)
			}
			return edges[i].cost < edges[j].cost
		})
	}

	// Advertised prefixes per router (all enabled interfaces, passive too),
	// plus the global lexical rank used for deterministic emission.
	l.advSet = make([]map[netip.Prefix]bool, len(l.sources))
	for _, oi := range participants {
		si := l.index[oi.dev]
		if l.advSet[si] == nil {
			l.advSet[si] = make(map[netip.Prefix]bool)
		}
		l.advSet[si][oi.addr.Masked()] = true
	}
	all := make(map[netip.Prefix]bool)
	for _, set := range l.advSet {
		for p := range set {
			all[p] = true
		}
	}
	type ranked struct {
		p netip.Prefix
		s string
	}
	order := make([]ranked, 0, len(all))
	for p := range all {
		order = append(order, ranked{p, prefixString(p)})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].s < order[j].s })
	l.rank = make(map[netip.Prefix]int, len(order))
	l.ranked = make([]netip.Prefix, len(order))
	for i, r := range order {
		l.rank[r.p] = i
		l.ranked[i] = r.p
	}
	l.adv = make([][]netip.Prefix, len(l.sources))
	for si, set := range l.advSet {
		ps := make([]netip.Prefix, 0, len(set))
		for p := range set {
			ps = append(ps, p)
		}
		sort.Slice(ps, func(i, j int) bool { return l.rank[ps[i]] < l.rank[ps[j]] })
		l.adv[si] = ps
	}
	return l
}

// routes runs the SPF pass for every source and returns per-device OSPF
// FIB entries, or nil when no router participates. Sources are independent
// given the read-only LSDB, so they fan out over a bounded pool; each
// writes into an index-addressed slot, so the result is identical to a
// serial run. Route emission is sorted (prefix string, then hop), making
// the per-device route slices deterministic — Derive relies on this to
// reproduce a from-scratch Compute byte for byte.
func (l *ospfLSDB) routes() map[string][]FIBEntry {
	if len(l.sources) == 0 {
		return nil
	}
	slots := make([][]FIBEntry, len(l.sources))
	fanOut(len(l.sources), func(i int) {
		slots[i] = l.routesFrom(i)
	})
	out := make(map[string][]FIBEntry, len(l.sources))
	for i, src := range l.sources {
		if len(slots[i]) > 0 {
			out[src] = slots[i]
		}
	}
	return out
}

// ospfHop is one candidate first hop toward a destination.
type ospfHop struct {
	outIf string
	via   netip.Addr
}

// addHop appends h unless already present. First-hop sets are tiny (ECMP
// fan-out), so the linear scan beats a map.
func addHop(hops []ospfHop, h ospfHop) []ospfHop {
	for _, x := range hops {
		if x == h {
			return hops
		}
	}
	return append(hops, h)
}

// routesFrom runs the single-source Dijkstra over the indexed graph and
// returns the source router's OSPF routes in deterministic (prefix string,
// hop) order, or nil when it has none.
func (l *ospfLSDB) routesFrom(si int) []FIBEntry {
	nv := len(l.sources)
	const unreached = -1
	dist := make([]int, nv)
	for i := range dist {
		dist[i] = unreached
	}
	dist[si] = 0
	settled := make([]bool, nv)
	hops := make([][]ospfHop, nv)
	for {
		// Select the unsettled node with the smallest distance. The lowest
		// index wins ties, which is exactly the name order the map-based
		// implementation tie-broke by; since every edge cost is >= 1,
		// equal-distance nodes never relax each other, so the tie order
		// cannot change any first-hop set anyway.
		cur, best := -1, -1
		for i := 0; i < nv; i++ {
			if settled[i] || dist[i] == unreached {
				continue
			}
			if best < 0 || dist[i] < best {
				cur, best = i, dist[i]
			}
		}
		if cur < 0 {
			break
		}
		settled[cur] = true
		for _, e := range l.graph[cur] {
			nd := dist[cur] + e.cost
			switch old := dist[e.peer]; {
			case old == unreached || nd < old:
				dist[e.peer] = nd
				hops[e.peer] = hops[e.peer][:0]
			case nd > old:
				continue
			}
			// Propagate first hops for equal-or-new best paths.
			if cur == si {
				hops[e.peer] = addHop(hops[e.peer], ospfHop{outIf: e.localIf, via: e.peerAddr})
			} else {
				for _, h := range hops[cur] {
					hops[e.peer] = addHop(hops[e.peer], h)
				}
			}
		}
	}

	// Best metric and first-hop union per remote advertised prefix. Every
	// advertiser at the globally best distance contributes its first hops;
	// farther advertisers contribute nothing — equivalent to the per-hop
	// minimum the map-based implementation kept, because a hop's minimum
	// over advertisers equals the global minimum whenever the hop reaches a
	// best-distance advertiser, and hops that don't are filtered either way.
	//
	// Accumulation is rank-indexed: the global prefix rank doubles as the
	// dedup key (no per-prefix map or pointer allocations) and as the
	// emission order, so the final walk needs no sort. A best of 0 marks an
	// untouched slot — real OSPF metrics are always >= 1.
	type prefRoute struct {
		best int
		hops []ospfHop
	}
	acc := make([]prefRoute, len(l.ranked))
	localRank := make([]bool, len(l.ranked))
	for _, p := range l.adv[si] {
		localRank[l.rank[p]] = true
	}
	any := false
	for di := 0; di < nv; di++ {
		if di == si || len(hops[di]) == 0 {
			continue
		}
		for _, p := range l.adv[di] {
			ri := l.rank[p]
			if localRank[ri] {
				continue // connected beats OSPF anyway
			}
			a := &acc[ri]
			if a.best == 0 || dist[di] < a.best {
				a.best = dist[di]
				a.hops = a.hops[:0]
				any = true
			}
			if dist[di] == a.best {
				for _, h := range hops[di] {
					a.hops = addHop(a.hops, h)
				}
			}
		}
	}
	if !any {
		return nil
	}

	out := make([]FIBEntry, 0, len(l.ranked))
	for ri := range acc {
		a := &acc[ri]
		if a.best == 0 {
			continue
		}
		sort.Slice(a.hops, func(i, j int) bool {
			if a.hops[i].via != a.hops[j].via {
				return a.hops[i].via.Less(a.hops[j].via)
			}
			return a.hops[i].outIf < a.hops[j].outIf
		})
		for _, h := range a.hops {
			out = append(out, FIBEntry{
				Prefix: l.ranked[ri], Proto: OSPF, NextHop: h.via, OutIf: h.outIf,
				AD: OSPF.adminDistance(), Metric: a.best,
			})
		}
	}
	return out
}

// fingerprint returns the canonical serialization of the named source's
// connected component, or false when the source is not an OSPF router.
// SPF from a source only ever visits its component, and emission order
// within a component depends only on prefix strings and names, so equal
// fingerprints guarantee identical routesFrom output — even between LSDBs
// that differ elsewhere.
func (l *ospfLSDB) fingerprint(name string) (string, bool) {
	i, ok := l.index[name]
	if !ok {
		return "", false
	}
	l.fpOnce.Do(l.computeFingerprints)
	return l.fps[i], true
}

// canonicalKey returns the canonical serialization of the whole LSDB —
// the SPF memo key. Equal keys mean equal routes() output.
func (l *ospfLSDB) canonicalKey() string {
	l.fpOnce.Do(l.computeFingerprints)
	return l.key
}

func (l *ospfLSDB) computeFingerprints() {
	nv := len(l.sources)
	// Per-node canonical serialization. Peers are named, not indexed, so
	// serializations compare across LSDBs whose router sets differ; edge
	// lists are already in peer-name order and advertisements in global
	// prefix-string order.
	nodeStr := make([]string, nv)
	for i := 0; i < nv; i++ {
		var b strings.Builder
		b.WriteString("n=")
		b.WriteString(l.sources[i])
		b.WriteByte('\n')
		for _, e := range l.graph[i] {
			b.WriteString("e=")
			b.WriteString(l.sources[e.peer])
			b.WriteByte('|')
			b.WriteString(e.localIf)
			b.WriteByte('|')
			b.WriteString(e.peerAddr.String()) // Addr, not Prefix: no intern
			b.WriteByte('|')
			b.WriteString(strconv.Itoa(e.cost))
			b.WriteByte('\n')
		}
		for _, p := range l.adv[i] {
			b.WriteString("a=")
			b.WriteString(prefixString(p))
			b.WriteByte('\n')
		}
		nodeStr[i] = b.String()
	}

	// Undirected connected components: subnet containment can be
	// asymmetric, so an edge in either direction couples two nodes' SPF
	// results and they must share a fingerprint scope.
	parent := make([]int, nv)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < nv; i++ {
		for _, e := range l.graph[i] {
			ri, rp := find(i), find(e.peer)
			if ri != rp {
				parent[ri] = rp
			}
		}
	}
	members := make(map[int][]int)
	for i := 0; i < nv; i++ {
		members[find(i)] = append(members[find(i)], i)
	}
	l.fps = make([]string, nv)
	for _, m := range members {
		sort.Ints(m)
		var b strings.Builder
		for _, i := range m {
			b.WriteString(nodeStr[i])
		}
		fp := b.String()
		for _, i := range m {
			l.fps[i] = fp
		}
	}
	l.key = strings.Join(nodeStr, "")
}

// SPFMemo memoizes whole link-state results across snapshot derivations,
// keyed by the canonical LSDB serialization. Distinct trials that produce
// an identical L3 graph (every VLAN mutation on a pure-L2 switch, repeated
// interface-downs that isolate the same stub) share one SPF computation.
// Safe for concurrent use; stored route maps are shared across goroutines
// and must be treated as immutable by every consumer.
type SPFMemo struct {
	mu     sync.RWMutex
	m      map[string]map[string][]FIBEntry
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewSPFMemo returns an empty memo, typically one per sweep.
func NewSPFMemo() *SPFMemo {
	return &SPFMemo{m: make(map[string]map[string][]FIBEntry)}
}

// lookup returns the memoized routes for key, counting a hit or miss.
func (m *SPFMemo) lookup(key string) (map[string][]FIBEntry, bool) {
	m.mu.RLock()
	routes, ok := m.m[key]
	m.mu.RUnlock()
	if ok {
		m.hits.Add(1)
	} else {
		m.misses.Add(1)
	}
	return routes, ok
}

// store memoizes routes under key and returns the canonical map: the first
// writer wins, so every concurrent caller converges on one shared result.
func (m *SPFMemo) store(key string, routes map[string][]FIBEntry) map[string][]FIBEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	if prior, ok := m.m[key]; ok {
		return prior
	}
	m.m[key] = routes
	return routes
}

// Stats returns the cumulative lookup hit and miss counts.
func (m *SPFMemo) Stats() (hits, misses uint64) {
	return m.hits.Load(), m.misses.Load()
}
