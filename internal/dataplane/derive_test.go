package dataplane_test

// The Derive oracle: for every mutation class on both evaluation scenarios,
// a derived snapshot must be byte-identical to a from-scratch Compute of
// the mutated network. This is the correctness anchor of the incremental
// sweep — if Derive ever diverges, the attack-surface numbers silently rot.
// (The test lives in an external package so it can import scenarios, which
// itself imports dataplane.)

import (
	"fmt"
	"net/netip"
	"reflect"
	"sync"
	"testing"

	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
	"heimdall/internal/scenarios"
)

// deriveCase is one mutation class applied to one device of a scenario.
// optional cases skip scenarios with no eligible device (the university
// network has no switches, so the L2 fabric cases only run on enterprise).
type deriveCase struct {
	name     string
	kind     dataplane.ChangeKind
	device   func(n *netmodel.Network) string
	apply    func(d *netmodel.Device)
	optional bool
}

// firstUpIf returns the device's first up, addressed interface.
func firstUpIf(d *netmodel.Device) string {
	for _, ifName := range d.InterfaceNames() {
		if itf := d.Interfaces[ifName]; itf.Up() && itf.HasAddr() {
			return ifName
		}
	}
	return ""
}

// aclDevice finds a device that already carries an ACL.
func aclDevice(n *netmodel.Network) string {
	for _, dev := range n.RoutersAndSwitches() {
		if len(n.Devices[dev].ACLNames()) > 0 {
			return dev
		}
	}
	return ""
}

// ospfDevice finds a router running OSPF.
func ospfDevice(n *netmodel.Network) string {
	for _, dev := range n.RoutersAndSwitches() {
		d := n.Devices[dev]
		if d.Kind == netmodel.Router && d.OSPF != nil {
			return dev
		}
	}
	return ""
}

func router(name string) func(n *netmodel.Network) string {
	return func(n *netmodel.Network) string { return name }
}

// switchWhere finds a switch for which pred returns a usable interface (or
// any switch when pred is nil). Returns "" when the scenario has none.
func switchWhere(pred func(d *netmodel.Device) bool) func(n *netmodel.Network) string {
	return func(n *netmodel.Network) string {
		for _, dev := range n.RoutersAndSwitches() {
			d := n.Devices[dev]
			if d.Kind != netmodel.Switch {
				continue
			}
			if pred == nil || pred(d) {
				return dev
			}
		}
		return ""
	}
}

// firstIfWhere returns the name of the device's first interface satisfying
// pred, in deterministic order.
func firstIfWhere(d *netmodel.Device, pred func(itf *netmodel.Interface) bool) string {
	for _, ifName := range d.InterfaceNames() {
		if pred(d.Interfaces[ifName]) {
			return ifName
		}
	}
	return ""
}

func deriveCases() []deriveCase {
	blackhole := netip.MustParseAddr("192.0.2.254")
	return []deriveCase{
		{
			name:   "acl-insert-deny",
			kind:   dataplane.ChangeACL,
			device: aclDevice,
			apply: func(d *netmodel.Device) {
				name := d.ACLNames()[0]
				d.ACL(name, true).InsertEntry(netmodel.ACLEntry{
					Seq: 1, Action: netmodel.Deny, Proto: netmodel.AnyProto,
				})
			},
		},
		{
			name:   "acl-remove-first-entry",
			kind:   dataplane.ChangeACL,
			device: aclDevice,
			apply: func(d *netmodel.Device) {
				a := d.ACL(d.ACLNames()[0], false)
				if len(a.Entries) > 0 {
					a.RemoveEntry(a.Entries[0].Seq)
				}
			},
		},
		{
			name:   "static-blackhole-default",
			kind:   dataplane.ChangeStatic,
			device: router("r2"),
			apply: func(d *netmodel.Device) {
				// Next hop on a connected subnet that no device owns: the
				// route activates and blackholes matching traffic.
				itf := d.Interfaces[firstUpIf(d)]
				base := itf.Addr.Masked().Addr().As4()
				nh := netip.AddrFrom4([4]byte{base[0], base[1], base[2], base[3] + 2})
				d.StaticRoutes = append(d.StaticRoutes,
					netmodel.StaticRoute{Prefix: netip.MustParsePrefix("0.0.0.0/0"), NextHop: nh})
			},
		},
		{
			name:   "static-remove-all",
			kind:   dataplane.ChangeStatic,
			device: router("r2"),
			apply:  func(d *netmodel.Device) { d.StaticRoutes = nil },
		},
		{
			name: "host-gateway-rewrite",
			kind: dataplane.ChangeStatic,
			device: func(n *netmodel.Network) string {
				return n.Hosts()[0]
			},
			apply: func(d *netmodel.Device) { d.DefaultGateway = blackhole },
		},
		{
			name:   "ospf-cost-bump",
			kind:   dataplane.ChangeOSPF,
			device: ospfDevice,
			apply: func(d *netmodel.Device) {
				d.Interfaces[firstUpIf(d)].OSPFCost = 7
			},
		},
		{
			name:   "ospf-silence-all-passive",
			kind:   dataplane.ChangeOSPF,
			device: ospfDevice,
			apply: func(d *netmodel.Device) {
				for _, ifName := range d.InterfaceNames() {
					d.OSPF.Passive[ifName] = true
				}
			},
		},
		{
			name:   "ospf-process-removal",
			kind:   dataplane.ChangeOSPF,
			device: ospfDevice,
			apply:  func(d *netmodel.Device) { d.OSPF = nil },
		},
		{
			// ChangeTopology remains the conservative catch-all; keep one
			// case on it so the full-recompute fallback stays covered.
			name:   "interface-down",
			kind:   dataplane.ChangeTopology,
			device: router("r2"),
			apply: func(d *netmodel.Device) {
				d.Interfaces[firstUpIf(d)].Shutdown = true
			},
		},
		{
			name:   "l3topo-interface-down",
			kind:   dataplane.ChangeL3Topology,
			device: router("r2"),
			apply: func(d *netmodel.Device) {
				d.Interfaces[firstUpIf(d)].Shutdown = true
			},
		},
		{
			name: "l3topo-svi-down",
			kind: dataplane.ChangeL3Topology,
			device: switchWhere(func(d *netmodel.Device) bool {
				return firstIfWhere(d, func(itf *netmodel.Interface) bool {
					return itf.IsSVI() && itf.HasAddr() && itf.Up()
				}) != ""
			}),
			apply: func(d *netmodel.Device) {
				ifName := firstIfWhere(d, func(itf *netmodel.Interface) bool {
					return itf.IsSVI() && itf.HasAddr() && itf.Up()
				})
				d.Interfaces[ifName].Shutdown = true
			},
			optional: true,
		},
		{
			// Defining an unused VLAN is pure L2 state: every routing table
			// must come through by identity.
			name:   "l2-vlan-define",
			kind:   dataplane.ChangeL2,
			device: router("r2"),
			apply: func(d *netmodel.Device) {
				d.VLANs[999] = &netmodel.VLAN{ID: 999, Name: "qa"}
			},
		},
		{
			name: "l2-vlan-delete",
			kind: dataplane.ChangeL2,
			device: switchWhere(func(d *netmodel.Device) bool {
				return d.VLANs[10] != nil
			}),
			apply:    func(d *netmodel.Device) { delete(d.VLANs, 10) },
			optional: true,
		},
		{
			name: "l2-access-port-move",
			kind: dataplane.ChangeL2,
			device: switchWhere(func(d *netmodel.Device) bool {
				return firstIfWhere(d, func(itf *netmodel.Interface) bool {
					return itf.Mode == netmodel.Access
				}) != ""
			}),
			apply: func(d *netmodel.Device) {
				ifName := firstIfWhere(d, func(itf *netmodel.Interface) bool {
					return itf.Mode == netmodel.Access
				})
				d.Interfaces[ifName].AccessVLAN = 999
			},
			optional: true,
		},
		{
			name: "l2-trunk-port-shutdown",
			kind: dataplane.ChangeL2,
			device: switchWhere(func(d *netmodel.Device) bool {
				return firstIfWhere(d, func(itf *netmodel.Interface) bool {
					return itf.Mode == netmodel.Trunk && !itf.HasAddr() && itf.Up()
				}) != ""
			}),
			apply: func(d *netmodel.Device) {
				ifName := firstIfWhere(d, func(itf *netmodel.Interface) bool {
					return itf.Mode == netmodel.Trunk && !itf.HasAddr() && itf.Up()
				})
				d.Interfaces[ifName].Shutdown = true
			},
			optional: true,
		},
	}
}

// assertSnapshotsEqual compares two snapshots of the same network through
// every observable surface: per-device RIBs (structural and rendered), and
// the trace of every host pair for ICMP and TCP/80 (exercising FIB lookups,
// ACL gates, and the address index).
func assertSnapshotsEqual(t *testing.T, n *netmodel.Network, got, want *dataplane.Snapshot) {
	t.Helper()
	for _, dev := range n.DeviceNames() {
		if !reflect.DeepEqual(got.RIB(dev), want.RIB(dev)) {
			t.Errorf("%s RIB diverged:\nderived:\n%s\nfull:\n%s",
				dev, got.FormatRIB(dev), want.FormatRIB(dev))
		}
		if g, w := got.FormatRIB(dev), want.FormatRIB(dev); g != w {
			t.Errorf("%s FormatRIB diverged:\nderived:\n%s\nfull:\n%s", dev, g, w)
		}
	}
	hosts := n.Hosts()
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			for _, probe := range []struct {
				proto netmodel.Protocol
				port  uint16
			}{{netmodel.ICMP, 0}, {netmodel.TCP, 80}} {
				g, gerr := got.Reach(src, dst, probe.proto, probe.port)
				w, werr := want.Reach(src, dst, probe.proto, probe.port)
				if (gerr == nil) != (werr == nil) {
					t.Fatalf("%s->%s errors diverged: %v vs %v", src, dst, gerr, werr)
				}
				if !reflect.DeepEqual(g, w) {
					t.Errorf("%s->%s %s trace diverged:\nderived: %s\nfull:    %s",
						src, dst, probe.proto, g, w)
				}
			}
		}
	}
}

// TestDeriveMatchesCompute is the oracle: Derive must reproduce a
// from-scratch Compute for every mutation class on both scenarios.
func TestDeriveMatchesCompute(t *testing.T) {
	for _, scen := range []*scenarios.Scenario{scenarios.Enterprise(), scenarios.University()} {
		base := scen.Network
		snap := dataplane.Compute(base)
		baseline := make(map[string]string, len(base.Devices))
		for _, dev := range base.DeviceNames() {
			baseline[dev] = snap.FormatRIB(dev)
		}
		for _, tc := range deriveCases() {
			t.Run(scen.Name+"/"+tc.name, func(t *testing.T) {
				dev := tc.device(base)
				if dev == "" {
					if tc.optional {
						t.Skipf("no eligible device in %s", scen.Name)
					}
					t.Fatalf("no eligible device in %s", scen.Name)
				}
				mutated := base.CloneCOW(dev)
				tc.apply(mutated.Devices[dev])
				derived := snap.Derive(mutated, dataplane.ChangeSet{{Device: dev, Kind: tc.kind}})
				full := dataplane.Compute(mutated)
				assertSnapshotsEqual(t, mutated, derived, full)
			})
		}
		// The base network and snapshot must come through the whole sweep
		// untouched: trials write only their COW-cloned device.
		for _, dev := range base.DeviceNames() {
			if snap.FormatRIB(dev) != baseline[dev] {
				t.Fatalf("%s: base snapshot corrupted at %s", scen.Name, dev)
			}
		}
		if fresh := dataplane.Compute(base); !reflect.DeepEqual(fresh.RIB("r2"), snap.RIB("r2")) {
			t.Fatalf("%s: base network mutated by the sweep", scen.Name)
		}
	}
}

// TestDeriveConcurrent derives many snapshots from one base concurrently —
// the sweep's access pattern — and checks each against a full compute.
// Run with -race this pins the share-read-only discipline of CloneCOW and
// Derive.
func TestDeriveConcurrent(t *testing.T) {
	scen := scenarios.Enterprise()
	base := scen.Network
	snap := dataplane.Compute(base)
	cases := deriveCases()
	var wg sync.WaitGroup
	errs := make(chan error, len(cases)*4)
	for round := 0; round < 4; round++ {
		for _, tc := range cases {
			tc := tc
			wg.Add(1)
			go func() {
				defer wg.Done()
				dev := tc.device(base)
				if dev == "" {
					return // optional case absent from this scenario
				}
				mutated := base.CloneCOW(dev)
				tc.apply(mutated.Devices[dev])
				derived := snap.Derive(mutated, dataplane.ChangeSet{{Device: dev, Kind: tc.kind}})
				full := dataplane.Compute(mutated)
				hosts := mutated.Hosts()
				src, dst := hosts[0], hosts[len(hosts)-1]
				g, _ := derived.Reach(src, dst, netmodel.ICMP, 0)
				w, _ := full.Reach(src, dst, netmodel.ICMP, 0)
				if !reflect.DeepEqual(g, w) {
					errs <- fmt.Errorf("%s: %s->%s diverged: %s vs %s", tc.name, src, dst, g, w)
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestDeriveMultiChange exercises change sets naming several devices and
// mixed classes (the enforcer's shape: one review may touch ACLs on one
// device and statics on another).
func TestDeriveMultiChange(t *testing.T) {
	scen := scenarios.University()
	base := scen.Network
	snap := dataplane.Compute(base)

	aclDev := aclDevice(base)
	mutated := base.CloneCOW(aclDev, "r3", "r5")
	mutated.Devices[aclDev].ACL(mutated.Devices[aclDev].ACLNames()[0], true).
		InsertEntry(netmodel.ACLEntry{Seq: 1, Action: netmodel.Deny, Proto: netmodel.AnyProto})
	mutated.Devices["r3"].StaticRoutes = nil
	mutated.Devices["r5"].StaticRoutes = nil

	derived := snap.Derive(mutated, dataplane.ChangeSet{
		{Device: aclDev, Kind: dataplane.ChangeACL},
		{Device: "r3", Kind: dataplane.ChangeStatic},
		{Device: "r5", Kind: dataplane.ChangeStatic},
	})
	assertSnapshotsEqual(t, mutated, derived, dataplane.Compute(mutated))
}

// TestDeriveFreshFlowCache pins that a derived snapshot never inherits the
// parent's memoized traces: an ACL-only derivation shares every routing
// structure, so a stale cache would be the one way it could lie.
func TestDeriveFreshFlowCache(t *testing.T) {
	scen := scenarios.Enterprise()
	base := scen.Network
	snap := dataplane.Compute(base)
	hosts := base.Hosts()
	if _, err := snap.Reach(hosts[0], hosts[1], netmodel.ICMP, 0); err != nil {
		t.Fatal(err)
	}

	dev := aclDevice(base)
	mutated := base.CloneCOW(dev)
	d := mutated.Devices[dev]
	d.ACL(d.ACLNames()[0], true).InsertEntry(netmodel.ACLEntry{
		Seq: 1, Action: netmodel.Deny, Proto: netmodel.AnyProto,
	})
	derived := snap.Derive(mutated, dataplane.ChangeSet{{Device: dev, Kind: dataplane.ChangeACL}})
	if hits, misses := derived.FlowCacheStats(); hits != 0 || misses != 0 {
		t.Fatalf("derived snapshot inherited flow cache state: hits=%d misses=%d", hits, misses)
	}
	if _, err := derived.Reach(hosts[0], hosts[1], netmodel.ICMP, 0); err != nil {
		t.Fatal(err)
	}
	if _, misses := derived.FlowCacheStats(); misses != 1 {
		t.Fatalf("derived snapshot did not trace fresh: misses=%d", misses)
	}
}
