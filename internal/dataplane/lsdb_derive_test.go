package dataplane

import (
	"reflect"
	"testing"

	"heimdall/internal/netmodel"
)

// threeAreaNet builds a small hierarchical OSPF network: backbone router r0,
// two ABRs (abr1 into area 1 with an `area range` aggregate, abr2 into
// area 2 without one), and leaf routers in the nonzero areas. It exercises
// every structure deriveLSDB patches: multi-area membership, ABR summaries,
// aggregation ranges, and the global prefix rank.
func threeAreaNet() *netmodel.Network {
	n := netmodel.NewNetwork("three-area")
	for _, r := range []string{"r0", "abr1", "abr2", "r1a", "r1b", "r2a"} {
		n.AddDevice(r, netmodel.Router)
	}
	n.MustConnect("r0", "Gi0/0", "abr1", "Gi0/0")
	n.MustConnect("r0", "Gi0/1", "abr2", "Gi0/0")
	n.MustConnect("abr1", "Gi1/0", "r1a", "Gi0/0")
	n.MustConnect("abr1", "Gi1/1", "r1b", "Gi0/0")
	n.MustConnect("abr2", "Gi1/0", "r2a", "Gi0/0")
	set := func(dev, itf, addr string) { n.Device(dev).Interface(itf).Addr = pfx(addr) }
	set("r0", "Gi0/0", "10.0.0.1/30")
	set("abr1", "Gi0/0", "10.0.0.2/30")
	set("r0", "Gi0/1", "10.0.0.5/30")
	set("abr2", "Gi0/0", "10.0.0.6/30")
	set("abr1", "Gi1/0", "10.1.0.1/30")
	set("r1a", "Gi0/0", "10.1.0.2/30")
	set("abr1", "Gi1/1", "10.1.0.5/30")
	set("r1b", "Gi0/0", "10.1.0.6/30")
	set("abr2", "Gi1/0", "10.2.0.1/30")
	set("r2a", "Gi0/0", "10.2.0.2/30")
	n.Device("r0").AddInterface("Loopback0").Addr = pfx("10.0.255.1/32")
	n.Device("r1a").AddInterface("Loopback0").Addr = pfx("10.1.255.1/32")
	n.Device("r1b").AddInterface("Loopback0").Addr = pfx("10.1.255.2/32")
	n.Device("r2a").AddInterface("Loopback0").Addr = pfx("10.2.255.1/32")
	ospf := func(dev string, nets []netmodel.OSPFNetwork, ranges []netmodel.OSPFNetwork) {
		n.Device(dev).OSPF = &netmodel.OSPFProcess{ProcessID: 1,
			Networks: nets, Ranges: ranges,
			Passive: map[string]bool{"Loopback0": true}}
	}
	area := func(p string, a int) netmodel.OSPFNetwork {
		return netmodel.OSPFNetwork{Prefix: pfx(p), Area: a}
	}
	ospf("r0", []netmodel.OSPFNetwork{area("10.0.0.0/16", 0)}, nil)
	ospf("abr1", []netmodel.OSPFNetwork{area("10.0.0.0/24", 0), area("10.1.0.0/16", 1)},
		[]netmodel.OSPFNetwork{area("10.1.0.0/16", 1)})
	ospf("abr2", []netmodel.OSPFNetwork{area("10.0.0.0/24", 0), area("10.2.0.0/16", 2)}, nil)
	ospf("r1a", []netmodel.OSPFNetwork{area("10.1.0.0/16", 1)}, nil)
	ospf("r1b", []netmodel.OSPFNetwork{area("10.1.0.0/16", 1)}, nil)
	ospf("r2a", []netmodel.OSPFNetwork{area("10.2.0.0/16", 2)}, nil)
	return n
}

// TestDeriveLSDBMatchesBuild pins deriveLSDB's contract: for every change
// class — patchable or fallback — the patched LSDB must be semantically
// identical to a from-scratch buildLSDB of the mutated network: same
// canonical key, same per-source fingerprints, same routes.
func TestDeriveLSDBMatchesBuild(t *testing.T) {
	cases := []struct {
		name   string
		device string
		topo   bool // adjacency rebuilt (L3-topology class)
		apply  func(d *netmodel.Device)
	}{
		{"ospf-cost", "abr1", false, func(d *netmodel.Device) {
			d.Interface("Gi1/0").OSPFCost = 7
		}},
		{"passive-toggle", "abr1", false, func(d *netmodel.Device) {
			d.OSPF.Passive["Gi1/1"] = true
		}},
		{"leaf-interface-down", "r1b", true, func(d *netmodel.Device) {
			d.Interface("Gi0/0").Shutdown = true
		}},
		{"backbone-interface-down", "r0", true, func(d *netmodel.Device) {
			d.Interface("Gi0/1").Shutdown = true
		}},
		{"range-added", "abr2", false, func(d *netmodel.Device) {
			d.OSPF.Ranges = []netmodel.OSPFNetwork{{Prefix: pfx("10.2.0.0/16"), Area: 2}}
		}},
		{"range-removed", "abr1", false, func(d *netmodel.Device) {
			d.OSPF.Ranges = nil
		}},
		{"new-advertised-prefix", "r2a", false, func(d *netmodel.Device) {
			d.AddInterface("Loopback1").Addr = pfx("10.2.254.1/32")
		}},
		// Structural drift: each of these must take the full-rebuild
		// fallback and still come out exact.
		{"router-leaves", "r2a", false, func(d *netmodel.Device) {
			d.OSPF = nil
		}},
		{"area-membership-changes", "abr2", false, func(d *netmodel.Device) {
			d.OSPF.Networks = []netmodel.OSPFNetwork{{Prefix: pfx("10.0.0.0/24"), Area: 0}}
		}},
		{"new-area-id", "r2a", false, func(d *netmodel.Device) {
			d.OSPF.Networks = []netmodel.OSPFNetwork{{Prefix: pfx("10.2.0.0/16"), Area: 7}}
		}},
	}
	base := threeAreaNet()
	oldAdj := computeAdjacency(base)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			old := buildLSDB(base, oldAdj)
			mutated := base.CloneCOW(tc.device)
			tc.apply(mutated.Devices[tc.device])
			newAdj := oldAdj
			if tc.topo {
				newAdj = computeAdjacency(mutated)
			}
			derived := deriveLSDB(old, base, mutated, oldAdj, newAdj, tc.topo,
				map[string]bool{tc.device: true})
			fresh := buildLSDB(mutated, newAdj)
			if derived.canonicalKey() != fresh.canonicalKey() {
				t.Errorf("canonical key diverged:\nderived:\n%s\nfresh:\n%s",
					derived.canonicalKey(), fresh.canonicalKey())
			}
			for _, src := range fresh.sources {
				df, _ := derived.fingerprint(src)
				ff, _ := fresh.fingerprint(src)
				if df != ff {
					t.Errorf("%s fingerprint diverged:\nderived:\n%s\nfresh:\n%s", src, df, ff)
				}
			}
			if !reflect.DeepEqual(derived.routes(), fresh.routes()) {
				t.Errorf("routes diverged:\n%+v\nvs\n%+v", derived.routes(), fresh.routes())
			}
		})
	}
}

// TestDeriveLSDBSharesUntouchedAreas pins the structural sharing itself: a
// change confined to area 1 must leave area 2's graph and advertisement
// rows — and the whole rank table — shared with the parent by identity.
func TestDeriveLSDBSharesUntouchedAreas(t *testing.T) {
	base := threeAreaNet()
	oldAdj := computeAdjacency(base)
	old := buildLSDB(base, oldAdj)
	mutated := base.CloneCOW("r1a")
	mutated.Devices["r1a"].Interface("Gi0/0").OSPFCost = 5
	derived := deriveLSDB(old, base, mutated, oldAdj, oldAdj, false,
		map[string]bool{"r1a": true})
	if derived.parent != old {
		t.Fatal("derived LSDB did not record its parent")
	}
	areaPos := map[int]int{}
	for i, a := range derived.areas {
		areaPos[a] = i
	}
	// abr1 is adjacent to the changed device, so its own rows legitimately
	// rebuild everywhere it appears; every other area-0/2 row must be
	// carried over by identity.
	abr1 := derived.index["abr1"]
	for _, a := range []int{0, 2} {
		ai := areaPos[a]
		for li := range derived.aGraph[ai] {
			if derived.members[ai][li] == abr1 {
				continue
			}
			if !sharedRow(derived.aGraph[ai][li], old.aGraph[ai][li]) {
				t.Errorf("area %d graph row %d rebuilt despite the change being in area 1", a, li)
			}
		}
	}
	if !sharedRow(derived.ranked, old.ranked) {
		t.Error("rank table rebuilt despite an unchanged prefix union")
	}
	// The fingerprint pass must reuse untouched serializations and then
	// release the parent.
	derived.canonicalKey()
	if derived.parent != nil {
		t.Error("fingerprint pass did not release the parent reference")
	}
	r2a := derived.index["r2a"]
	ai2 := areaPos[2]
	li2 := derived.localAt[ai2][r2a]
	if derived.nodeStrs == nil || old.nodeStrs == nil {
		t.Fatal("node serializations were not retained")
	}
	if &derived.nodeStrs[ai2][li2] == nil || derived.nodeStrs[ai2][li2] != old.nodeStrs[ai2][li2] {
		t.Error("area 2 node serialization was rebuilt instead of reused")
	}
}
