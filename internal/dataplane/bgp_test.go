package dataplane

import (
	"net/netip"
	"strings"
	"testing"

	"heimdall/internal/netmodel"
)

// peeringNet builds an enterprise edge peering with two ISPs:
//
//	corp-host - edge(AS 65001) === isp1(AS 65010) --- isp1-host
//	                 \========== isp2(AS 65020) --- isp2-host
//	                              isp1 === isp2 (transit between them)
//
// Each AS advertises its own space; the edge learns both remote subnets.
func peeringNet() *netmodel.Network {
	n := netmodel.NewNetwork("peering")
	edge := n.AddDevice("edge", netmodel.Router)
	isp1 := n.AddDevice("isp1", netmodel.Router)
	isp2 := n.AddDevice("isp2", netmodel.Router)
	n.AddDevice("corp-host", netmodel.Host)
	n.AddDevice("isp1-host", netmodel.Host)
	n.AddDevice("isp2-host", netmodel.Host)

	n.MustConnect("corp-host", "eth0", "edge", "Gi0/0")
	n.MustConnect("edge", "Gi0/1", "isp1", "Gi0/0")
	n.MustConnect("edge", "Gi0/2", "isp2", "Gi0/0")
	n.MustConnect("isp1", "Gi0/1", "isp2", "Gi0/1")
	n.MustConnect("isp1", "Gi0/2", "isp1-host", "eth0")
	n.MustConnect("isp2", "Gi0/2", "isp2-host", "eth0")

	set := func(dev, itf, addr string) { n.Device(dev).Interface(itf).Addr = pfx(addr) }
	set("corp-host", "eth0", "10.1.0.10/24")
	n.Device("corp-host").DefaultGateway = ip("10.1.0.1")
	set("edge", "Gi0/0", "10.1.0.1/24")
	set("edge", "Gi0/1", "203.0.113.1/30")
	set("isp1", "Gi0/0", "203.0.113.2/30")
	set("edge", "Gi0/2", "203.0.113.5/30")
	set("isp2", "Gi0/0", "203.0.113.6/30")
	set("isp1", "Gi0/1", "203.0.113.9/30")
	set("isp2", "Gi0/1", "203.0.113.10/30")
	set("isp1", "Gi0/2", "198.51.100.1/24")
	set("isp1-host", "eth0", "198.51.100.10/24")
	n.Device("isp1-host").DefaultGateway = ip("198.51.100.1")
	set("isp2", "Gi0/2", "192.0.2.1/24")
	set("isp2-host", "eth0", "192.0.2.10/24")
	n.Device("isp2-host").DefaultGateway = ip("192.0.2.1")

	edge.BGP = &netmodel.BGPProcess{
		LocalAS: 65001, RouterID: ip("1.1.1.1"),
		Networks: []netip.Prefix{pfx("10.1.0.0/24")},
	}
	edge.BGP.SetNeighbor(ip("203.0.113.2"), 65010)
	edge.BGP.SetNeighbor(ip("203.0.113.6"), 65020)

	isp1.BGP = &netmodel.BGPProcess{
		LocalAS: 65010, RouterID: ip("2.2.2.2"),
		Networks: []netip.Prefix{pfx("198.51.100.0/24")},
	}
	isp1.BGP.SetNeighbor(ip("203.0.113.1"), 65001)
	isp1.BGP.SetNeighbor(ip("203.0.113.10"), 65020)

	isp2.BGP = &netmodel.BGPProcess{
		LocalAS: 65020, RouterID: ip("3.3.3.3"),
		Networks: []netip.Prefix{pfx("192.0.2.0/24")},
	}
	isp2.BGP.SetNeighbor(ip("203.0.113.5"), 65001)
	isp2.BGP.SetNeighbor(ip("203.0.113.9"), 65010)
	return n
}

func TestBGPSessionsEstablish(t *testing.T) {
	n := peeringNet()
	s := Compute(n)
	peers := s.BGPPeers("edge")
	if len(peers) != 2 {
		t.Fatalf("edge peers = %+v", peers)
	}
	for _, p := range peers {
		if !p.Established {
			t.Errorf("peer %s not established", p.PeerAddr)
		}
	}
	// A one-sided configuration forms no session.
	n.Device("isp1").BGP.RemoveNeighbor(ip("203.0.113.1"))
	s = Compute(n)
	for _, p := range s.BGPPeers("edge") {
		if p.PeerAddr == ip("203.0.113.2") && p.Established {
			t.Error("one-sided peering established")
		}
	}
}

func TestBGPRoutesLearnedAndTraffic(t *testing.T) {
	n := peeringNet()
	s := Compute(n)

	// Edge learns both ISP prefixes with AS-path length 1.
	var learned int
	for _, e := range s.RIB("edge") {
		if e.Proto == BGP {
			learned++
			if e.AD != 20 {
				t.Errorf("eBGP AD = %d", e.AD)
			}
			if e.Metric != 1 {
				t.Errorf("direct route AS-path length = %d", e.Metric)
			}
		}
	}
	if learned != 2 {
		t.Fatalf("edge learned %d BGP routes:\n%s", learned, s.FormatRIB("edge"))
	}

	// End-to-end: corporate host reaches both ISP services and back.
	for _, dst := range []string{"isp1-host", "isp2-host"} {
		tr, err := s.Reach("corp-host", dst, netmodel.ICMP, 0)
		if err != nil || !tr.Delivered() {
			t.Fatalf("corp-host -> %s: %v %v", dst, tr, err)
		}
		back, _ := s.Reach(dst, "corp-host", netmodel.ICMP, 0)
		if !back.Delivered() {
			t.Fatalf("%s -> corp-host not delivered: %s", dst, back)
		}
	}
}

func TestBGPTransitPathAndLoopPrevention(t *testing.T) {
	n := peeringNet()
	// Tear down the edge-isp2 session: isp2's prefix must now arrive via
	// isp1 transit with a longer AS path.
	n.Device("edge").Interface("Gi0/2").Shutdown = true
	s := Compute(n)

	var viaTransit *FIBEntry
	for _, e := range s.RIB("edge") {
		if e.Proto == BGP && e.Prefix == pfx("192.0.2.0/24") {
			ee := e
			viaTransit = &ee
		}
	}
	if viaTransit == nil {
		t.Fatalf("transit route missing:\n%s", s.FormatRIB("edge"))
	}
	if viaTransit.NextHop != ip("203.0.113.2") || viaTransit.Metric != 2 {
		t.Fatalf("transit route = %+v, want via isp1 with AS-path 2", viaTransit)
	}
	tr, _ := s.Reach("corp-host", "isp2-host", netmodel.ICMP, 0)
	if !tr.Delivered() || !tr.Traverses("isp1") {
		t.Fatalf("transit traffic = %s", tr)
	}
}

func TestBGPWrongASKeepsSessionDown(t *testing.T) {
	n := peeringNet()
	// The classic misconfiguration: edge expects the wrong AS from isp1.
	n.Device("edge").BGP.SetNeighbor(ip("203.0.113.2"), 65011)
	s := Compute(n)
	for _, p := range s.BGPPeers("edge") {
		if p.PeerAddr == ip("203.0.113.2") && p.Established {
			t.Fatal("session with AS mismatch established")
		}
	}
	// isp1's prefix now only arrives via isp2 transit.
	for _, e := range s.RIB("edge") {
		if e.Proto == BGP && e.Prefix == pfx("198.51.100.0/24") {
			if e.NextHop != ip("203.0.113.6") {
				t.Fatalf("route should transit isp2: %+v", e)
			}
		}
	}
}

func TestBGPLocalOriginationNotDisplaced(t *testing.T) {
	n := peeringNet()
	// isp1 mischievously advertises the corporate prefix; the edge's own
	// origination must win (no hijack of local space).
	n.Device("isp1").BGP.Networks = append(n.Device("isp1").BGP.Networks, pfx("10.1.0.0/24"))
	s := Compute(n)
	for _, e := range s.RIB("edge") {
		if e.Prefix == pfx("10.1.0.0/24") && e.Proto == BGP {
			t.Fatalf("local prefix displaced by BGP: %+v", e)
		}
	}
	// Connected route still present and wins.
	tr, _ := s.Reach("corp-host", "isp1-host", netmodel.ICMP, 0)
	if !tr.Delivered() {
		t.Fatalf("traffic broken by hijack attempt: %s", tr)
	}
}

func TestBGPRedistributeConnected(t *testing.T) {
	n := peeringNet()
	edge := n.Device("edge")
	edge.BGP.Networks = nil
	edge.BGP.RedistributeConnected = true
	s := Compute(n)
	// isp1 must now know the corporate subnet via redistribution.
	found := false
	for _, e := range s.RIB("isp1") {
		if e.Proto == BGP && e.Prefix == pfx("10.1.0.0/24") {
			found = true
		}
	}
	if !found {
		t.Fatalf("redistributed connected prefix missing:\n%s", s.FormatRIB("isp1"))
	}
}

func TestFormatBGP(t *testing.T) {
	n := peeringNet()
	s := Compute(n)
	out := s.FormatBGP("edge")
	if !strings.Contains(out, "BGP local AS 65001") || !strings.Contains(out, "Established") {
		t.Fatalf("FormatBGP:\n%s", out)
	}
	if !strings.Contains(out, "Learned routes:") {
		t.Fatalf("FormatBGP missing learned routes:\n%s", out)
	}
	if got := s.FormatBGP("corp-host"); got != "% BGP not configured" {
		t.Fatalf("non-BGP device: %q", got)
	}
}

// TestAdminDistancePreference checks the protocol preference order on a
// prefix known via all three sources: static (AD 1) beats eBGP (AD 20)
// beats OSPF (AD 110).
func TestAdminDistancePreference(t *testing.T) {
	n := peeringNet()
	edge := n.Device("edge")

	// Teach the prefix to OSPF as well: run OSPF between edge and isp1 on
	// the peering subnet, with isp1 advertising its service subnet.
	for _, name := range []string{"edge", "isp1"} {
		n.Device(name).OSPF = &netmodel.OSPFProcess{ProcessID: 1,
			Networks: []netmodel.OSPFNetwork{
				{Prefix: pfx("203.0.113.0/28"), Area: 0},
				{Prefix: pfx("198.51.100.0/24"), Area: 0},
			},
			Passive: map[string]bool{"Gi0/2": true}}
	}
	s := Compute(n)
	got := map[RouteProto]bool{}
	for _, e := range s.RIB("edge") {
		if e.Prefix == pfx("198.51.100.0/24") {
			got[e.Proto] = true
			if e.Proto != BGP {
				t.Fatalf("BGP (AD 20) should beat OSPF (AD 110): %+v", e)
			}
		}
	}
	if !got[BGP] {
		t.Fatalf("BGP route missing:\n%s", s.FormatRIB("edge"))
	}

	// A static route displaces both.
	edge.StaticRoutes = append(edge.StaticRoutes, netmodel.StaticRoute{
		Prefix: pfx("198.51.100.0/24"), NextHop: ip("203.0.113.6")})
	s = Compute(n)
	for _, e := range s.RIB("edge") {
		if e.Prefix == pfx("198.51.100.0/24") && e.Proto != Static {
			t.Fatalf("static should win: %+v", e)
		}
	}
}
