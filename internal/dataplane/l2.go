package dataplane

import (
	"sort"
	"strconv"

	"heimdall/internal/netmodel"
)

// l2node identifies a VLAN broadcast domain on one switch.
type l2node struct {
	sw   string
	vlan int
}

// adjacency maps every L3 endpoint to the set of L3 endpoints it can reach
// directly at L2 (same cable or same switched broadcast domain).
type adjacency map[netmodel.Endpoint][]netmodel.Endpoint

// l3Endpoint reports whether the interface is an L3 endpoint that can
// source or sink routed traffic: up, addressed, and either a routed port or
// an SVI.
func l3Endpoint(itf *netmodel.Interface) bool {
	return itf.Up() && itf.HasAddr() && (itf.Mode == netmodel.Routed || itf.IsSVI())
}

// computeAdjacency derives the L2 adjacency between all L3 endpoints of the
// network. Two endpoints are adjacent when a frame can travel between them
// without crossing an L3 hop: either they share a cable, or a path of
// switch broadcast domains connects them.
func computeAdjacency(n *netmodel.Network) adjacency {
	// Union-find over L2 nodes plus virtual nodes for each L3 endpoint.
	uf := newUnionFind()

	epKey := func(ep netmodel.Endpoint) string { return "ep|" + ep.Device + "|" + ep.Interface }
	vlKey := func(v l2node) string { return "vl|" + v.sw + "|" + strconv.Itoa(v.vlan) }

	// Switch fabric: ports of the same VLAN on one switch share a domain
	// implicitly via the vlKey node; inter-switch links join domains.
	for _, l := range n.Links {
		a, b := l.A, l.B
		da, db := n.Devices[a.Device], n.Devices[b.Device]
		if da == nil || db == nil {
			continue
		}
		ia, ib := da.Interface(a.Interface), db.Interface(b.Interface)
		if ia == nil || ib == nil || !ia.Up() || !ib.Up() {
			continue
		}
		switch {
		case isSwitchPort(da, ia) && isSwitchPort(db, ib):
			joinSwitchLink(uf, vlKey, a.Device, ia, b.Device, ib)
		case isSwitchPort(da, ia) && l3Endpoint(ib) && ib.Mode == netmodel.Routed:
			attachToSwitch(uf, vlKey, epKey(b), a.Device, ia)
		case isSwitchPort(db, ib) && l3Endpoint(ia) && ia.Mode == netmodel.Routed:
			attachToSwitch(uf, vlKey, epKey(a), b.Device, ib)
		case l3Endpoint(ia) && l3Endpoint(ib):
			uf.union(epKey(a), epKey(b))
		}
	}

	// SVIs attach to their own switch's VLAN domain.
	var endpoints []netmodel.Endpoint
	for _, devName := range n.DeviceNames() {
		d := n.Devices[devName]
		for _, ifName := range d.InterfaceNames() {
			itf := d.Interfaces[ifName]
			if !l3Endpoint(itf) {
				continue
			}
			ep := netmodel.Endpoint{Device: devName, Interface: ifName}
			endpoints = append(endpoints, ep)
			uf.find(epKey(ep)) // ensure the node exists even if isolated
			if itf.IsSVI() && d.Kind == netmodel.Switch {
				uf.union(epKey(ep), vlKey(l2node{sw: devName, vlan: itf.SVIVLAN()}))
			}
		}
	}

	// Group endpoints by component.
	groups := make(map[string][]netmodel.Endpoint)
	for _, ep := range endpoints {
		root := uf.find(epKey(ep))
		groups[root] = append(groups[root], ep)
	}
	adj := make(adjacency, len(endpoints))
	for _, members := range groups {
		sort.Slice(members, func(i, j int) bool {
			if members[i].Device != members[j].Device {
				return members[i].Device < members[j].Device
			}
			return members[i].Interface < members[j].Interface
		})
		for _, ep := range members {
			for _, other := range members {
				if other != ep {
					adj[ep] = append(adj[ep], other)
				}
			}
			if adj[ep] == nil {
				adj[ep] = []netmodel.Endpoint{}
			}
		}
	}
	return adj
}

// isSwitchPort reports whether the interface is an L2 port on a switch.
func isSwitchPort(d *netmodel.Device, itf *netmodel.Interface) bool {
	return d.Kind == netmodel.Switch && !itf.IsSVI() &&
		(itf.Mode == netmodel.Access || itf.Mode == netmodel.Trunk)
}

// joinSwitchLink connects the VLAN domains bridged by a switch-to-switch
// cable. Access-to-access bridges the two (possibly different!) access
// VLANs — faithfully reproducing the classic VLAN-mismatch misconfiguration.
// Trunks bridge every VLAN allowed on both sides; an access-to-trunk link
// bridges the access VLAN when the trunk allows it.
func joinSwitchLink(uf *unionFind, vlKey func(l2node) string, swA string, ia *netmodel.Interface, swB string, ib *netmodel.Interface) {
	switch {
	case ia.Mode == netmodel.Access && ib.Mode == netmodel.Access:
		uf.union(vlKey(l2node{swA, ia.AccessVLAN}), vlKey(l2node{swB, ib.AccessVLAN}))
	case ia.Mode == netmodel.Trunk && ib.Mode == netmodel.Trunk:
		for _, v := range ia.TrunkVLANs {
			if ib.CarriesVLAN(v) {
				uf.union(vlKey(l2node{swA, v}), vlKey(l2node{swB, v}))
			}
		}
	case ia.Mode == netmodel.Access && ib.Mode == netmodel.Trunk:
		if ib.CarriesVLAN(ia.AccessVLAN) {
			uf.union(vlKey(l2node{swA, ia.AccessVLAN}), vlKey(l2node{swB, ia.AccessVLAN}))
		}
	case ia.Mode == netmodel.Trunk && ib.Mode == netmodel.Access:
		if ia.CarriesVLAN(ib.AccessVLAN) {
			uf.union(vlKey(l2node{swA, ib.AccessVLAN}), vlKey(l2node{swB, ib.AccessVLAN}))
		}
	}
}

// attachToSwitch joins an L3 endpoint to the VLAN domain behind a switch
// port. Only access ports attach routed neighbours (router-on-a-trunk
// subinterfaces are out of scope).
func attachToSwitch(uf *unionFind, vlKey func(l2node) string, epNode string, sw string, port *netmodel.Interface) {
	if port.Mode == netmodel.Access {
		uf.union(epNode, vlKey(l2node{sw, port.AccessVLAN}))
	}
}

// unionFind is a string-keyed disjoint-set structure.
type unionFind struct {
	parent map[string]string
}

func newUnionFind() *unionFind {
	return &unionFind{parent: make(map[string]string)}
}

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}
