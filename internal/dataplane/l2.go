package dataplane

import (
	"sort"

	"heimdall/internal/netmodel"
)

// l2node identifies a VLAN broadcast domain on one switch.
type l2node struct {
	sw   string
	vlan int
}

// adjacency maps every L3 endpoint to the set of L3 endpoints it can reach
// directly at L2 (same cable or same switched broadcast domain).
type adjacency map[netmodel.Endpoint][]netmodel.Endpoint

// l3Endpoint reports whether the interface is an L3 endpoint that can
// source or sink routed traffic: up, addressed, and either a routed port or
// an SVI.
func l3Endpoint(itf *netmodel.Interface) bool {
	return itf.Up() && itf.HasAddr() && (itf.Mode == netmodel.Routed || itf.IsSVI())
}

// l2Space is an integer-indexed disjoint-set over the L2 graph's nodes:
// L3 endpoints and per-switch VLAN domains. Comparable struct keys map to
// dense ids, so the union-find itself is two flat slices — this sits on
// the derivation hot path (every topology-class trial recomputes
// adjacency), where the previous string-keyed structure spent its time
// concatenating keys.
type l2Space struct {
	eps    map[netmodel.Endpoint]int
	vls    map[l2node]int
	parent []int
}

func newL2Space() *l2Space {
	return &l2Space{eps: make(map[netmodel.Endpoint]int), vls: make(map[l2node]int)}
}

func (s *l2Space) node() int {
	id := len(s.parent)
	s.parent = append(s.parent, id)
	return id
}

// ep returns the endpoint's node id, creating it on first use.
func (s *l2Space) ep(e netmodel.Endpoint) int {
	if id, ok := s.eps[e]; ok {
		return id
	}
	id := s.node()
	s.eps[e] = id
	return id
}

// vl returns the VLAN domain's node id, creating it on first use.
func (s *l2Space) vl(v l2node) int {
	if id, ok := s.vls[v]; ok {
		return id
	}
	id := s.node()
	s.vls[v] = id
	return id
}

func (s *l2Space) find(x int) int {
	for s.parent[x] != x {
		s.parent[x] = s.parent[s.parent[x]]
		x = s.parent[x]
	}
	return x
}

func (s *l2Space) union(a, b int) {
	ra, rb := s.find(a), s.find(b)
	if ra != rb {
		s.parent[ra] = rb
	}
}

// computeAdjacency derives the L2 adjacency between all L3 endpoints of the
// network. Two endpoints are adjacent when a frame can travel between them
// without crossing an L3 hop: either they share a cable, or a path of
// switch broadcast domains connects them.
func computeAdjacency(n *netmodel.Network) adjacency {
	return adjacencyFromGroups(computeL2Groups(n))
}

// computeL2Groups partitions the network's L3 endpoints into L2 broadcast
// components and returns each component's sorted member list. The partition
// is the whole adjacency relation in factored form: Derive compares it
// against a parent snapshot without paying for the per-endpoint peer
// slices, and adjacencyFromGroups expands it when the relation did change.
func computeL2Groups(n *netmodel.Network) [][]netmodel.Endpoint {
	uf := newL2Space()

	// Switch fabric: ports of the same VLAN on one switch share a domain
	// implicitly via the vl node; inter-switch links join domains.
	for _, l := range n.Links {
		a, b := l.A, l.B
		da, db := n.Devices[a.Device], n.Devices[b.Device]
		if da == nil || db == nil {
			continue
		}
		ia, ib := da.Interface(a.Interface), db.Interface(b.Interface)
		if ia == nil || ib == nil || !ia.Up() || !ib.Up() {
			continue
		}
		switch {
		case isSwitchPort(da, ia) && isSwitchPort(db, ib):
			joinSwitchLink(uf, a.Device, ia, b.Device, ib)
		case isSwitchPort(da, ia) && l3Endpoint(ib) && ib.Mode == netmodel.Routed:
			attachToSwitch(uf, uf.ep(b), a.Device, ia)
		case isSwitchPort(db, ib) && l3Endpoint(ia) && ia.Mode == netmodel.Routed:
			attachToSwitch(uf, uf.ep(a), b.Device, ib)
		case l3Endpoint(ia) && l3Endpoint(ib):
			uf.union(uf.ep(a), uf.ep(b))
		}
	}

	// SVIs attach to their own switch's VLAN domain.
	var endpoints []netmodel.Endpoint
	for _, devName := range n.DeviceNames() {
		d := n.Devices[devName]
		for _, ifName := range d.InterfaceNames() {
			itf := d.Interfaces[ifName]
			if !l3Endpoint(itf) {
				continue
			}
			ep := netmodel.Endpoint{Device: devName, Interface: ifName}
			endpoints = append(endpoints, ep)
			id := uf.ep(ep) // ensure the node exists even if isolated
			if itf.IsSVI() && d.Kind == netmodel.Switch {
				uf.union(id, uf.vl(l2node{sw: devName, vlan: itf.SVIVLAN()}))
			}
		}
	}

	// Group endpoints by component, each group sorted by (device, interface).
	byRoot := make(map[int][]netmodel.Endpoint)
	for _, ep := range endpoints {
		root := uf.find(uf.eps[ep])
		byRoot[root] = append(byRoot[root], ep)
	}
	groups := make([][]netmodel.Endpoint, 0, len(byRoot))
	for _, members := range byRoot {
		sort.Slice(members, func(i, j int) bool {
			if members[i].Device != members[j].Device {
				return members[i].Device < members[j].Device
			}
			return members[i].Interface < members[j].Interface
		})
		groups = append(groups, members)
	}
	return groups
}

// adjacencyFromGroups expands the component partition into the per-endpoint
// peer-list form the rest of the pipeline consumes. Peer lists inherit each
// group's sorted order; isolated endpoints get a non-nil empty slice.
func adjacencyFromGroups(groups [][]netmodel.Endpoint) adjacency {
	total := 0
	for _, members := range groups {
		total += len(members)
	}
	adj := make(adjacency, total)
	for _, members := range groups {
		for i, ep := range members {
			peers := make([]netmodel.Endpoint, 0, len(members)-1)
			peers = append(peers, members[:i]...)
			peers = append(peers, members[i+1:]...)
			adj[ep] = peers
		}
	}
	return adj
}

// groupsMatch reports whether the partition induces exactly the adjacency
// relation old. Exact, not conservative: both sides are canonical — group
// members and old peer lists are sorted — so the first member of each group
// pins its whole component. If every group G satisfies
// old[G[0]] == G[1:] and the endpoint totals agree, the two partitions are
// identical (each group is then an old component, and equal totals rule out
// old components that no group covers).
func groupsMatch(groups [][]netmodel.Endpoint, old adjacency) bool {
	total := 0
	for _, members := range groups {
		total += len(members)
	}
	if total != len(old) {
		return false
	}
	for _, members := range groups {
		peers, ok := old[members[0]]
		if !ok || len(peers) != len(members)-1 {
			return false
		}
		for i, p := range peers {
			if p != members[i+1] {
				return false
			}
		}
	}
	return true
}

// isSwitchPort reports whether the interface is an L2 port on a switch.
func isSwitchPort(d *netmodel.Device, itf *netmodel.Interface) bool {
	return d.Kind == netmodel.Switch && !itf.IsSVI() &&
		(itf.Mode == netmodel.Access || itf.Mode == netmodel.Trunk)
}

// joinSwitchLink connects the VLAN domains bridged by a switch-to-switch
// cable. Access-to-access bridges the two (possibly different!) access
// VLANs — faithfully reproducing the classic VLAN-mismatch misconfiguration.
// Trunks bridge every VLAN allowed on both sides; an access-to-trunk link
// bridges the access VLAN when the trunk allows it.
func joinSwitchLink(uf *l2Space, swA string, ia *netmodel.Interface, swB string, ib *netmodel.Interface) {
	switch {
	case ia.Mode == netmodel.Access && ib.Mode == netmodel.Access:
		uf.union(uf.vl(l2node{swA, ia.AccessVLAN}), uf.vl(l2node{swB, ib.AccessVLAN}))
	case ia.Mode == netmodel.Trunk && ib.Mode == netmodel.Trunk:
		for _, v := range ia.TrunkVLANs {
			if ib.CarriesVLAN(v) {
				uf.union(uf.vl(l2node{swA, v}), uf.vl(l2node{swB, v}))
			}
		}
	case ia.Mode == netmodel.Access && ib.Mode == netmodel.Trunk:
		if ib.CarriesVLAN(ia.AccessVLAN) {
			uf.union(uf.vl(l2node{swA, ia.AccessVLAN}), uf.vl(l2node{swB, ia.AccessVLAN}))
		}
	case ia.Mode == netmodel.Trunk && ib.Mode == netmodel.Access:
		if ia.CarriesVLAN(ib.AccessVLAN) {
			uf.union(uf.vl(l2node{swA, ib.AccessVLAN}), uf.vl(l2node{swB, ib.AccessVLAN}))
		}
	}
}

// attachToSwitch joins an L3 endpoint to the VLAN domain behind a switch
// port. Only access ports attach routed neighbours (router-on-a-trunk
// subinterfaces are out of scope).
func attachToSwitch(uf *l2Space, epNode int, sw string, port *netmodel.Interface) {
	if port.Mode == netmodel.Access {
		uf.union(epNode, uf.vl(l2node{sw, port.AccessVLAN}))
	}
}
