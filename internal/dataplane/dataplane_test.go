package dataplane

import (
	"math/rand"
	"net/netip"
	"testing"

	"heimdall/internal/netmodel"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func ip(s string) netip.Addr    { return netip.MustParseAddr(s) }

// threeRouterNet builds h1 - r1 - r2 - r3 - h2 with OSPF everywhere,
// a second path r1 - r3 for ECMP/failover tests.
//
//	h1 --- r1 --- r2 --- r3 --- h2
//	        \___________/
func threeRouterNet() *netmodel.Network {
	n := netmodel.NewNetwork("three")
	r1 := n.AddDevice("r1", netmodel.Router)
	r2 := n.AddDevice("r2", netmodel.Router)
	r3 := n.AddDevice("r3", netmodel.Router)
	h1 := n.AddDevice("h1", netmodel.Host)
	h2 := n.AddDevice("h2", netmodel.Host)

	n.MustConnect("h1", "eth0", "r1", "Gi0/0")
	n.MustConnect("r1", "Gi0/1", "r2", "Gi0/0")
	n.MustConnect("r2", "Gi0/1", "r3", "Gi0/0")
	n.MustConnect("r3", "Gi0/1", "h2", "eth0")
	n.MustConnect("r1", "Gi0/2", "r3", "Gi0/2")

	set := func(d *netmodel.Device, ifName, addr string) {
		itf := d.Interface(ifName)
		itf.Addr = pfx(addr)
		itf.Shutdown = false
	}
	set(h1, "eth0", "10.1.0.10/24")
	h1.DefaultGateway = ip("10.1.0.1")
	set(r1, "Gi0/0", "10.1.0.1/24")
	set(r1, "Gi0/1", "10.0.12.1/30")
	set(r1, "Gi0/2", "10.0.13.1/30")
	set(r2, "Gi0/0", "10.0.12.2/30")
	set(r2, "Gi0/1", "10.0.23.2/30")
	set(r3, "Gi0/0", "10.0.23.3/30")
	set(r3, "Gi0/1", "10.2.0.1/24")
	set(r3, "Gi0/2", "10.0.13.3/30")
	set(h2, "eth0", "10.2.0.10/24")
	h2.DefaultGateway = ip("10.2.0.1")

	for _, r := range []*netmodel.Device{r1, r2, r3} {
		r.OSPF = &netmodel.OSPFProcess{
			ProcessID: 1,
			Networks:  []netmodel.OSPFNetwork{{Prefix: pfx("10.0.0.0/8"), Area: 0}},
			Passive:   map[string]bool{},
		}
	}
	// Host-facing interfaces are passive (advertised, no adjacency).
	r1.OSPF.Passive["Gi0/0"] = true
	r3.OSPF.Passive["Gi0/1"] = true
	return n
}

func TestOSPFEndToEndReachability(t *testing.T) {
	n := threeRouterNet()
	s := Compute(n)
	tr, err := s.Reach("h1", "h2", netmodel.ICMP, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Delivered() {
		t.Fatalf("h1->h2 not delivered: %s", tr)
	}
	// Direct path h1,r1,r3,h2 beats h1,r1,r2,r3,h2.
	path := tr.Path()
	if len(path) != 4 || path[0] != "h1" || path[1] != "r1" || path[2] != "r3" || path[3] != "h2" {
		t.Fatalf("path = %v, want [h1 r1 r3 h2]", path)
	}
	// Reverse direction too.
	back, _ := s.Reach("h2", "h1", netmodel.ICMP, 0)
	if !back.Delivered() {
		t.Fatalf("h2->h1 not delivered: %s", back)
	}
}

func TestOSPFFailover(t *testing.T) {
	n := threeRouterNet()
	// Kill the shortcut r1-r3 link.
	n.Device("r1").Interface("Gi0/2").Shutdown = true
	s := Compute(n)
	tr, _ := s.Reach("h1", "h2", netmodel.ICMP, 0)
	if !tr.Delivered() {
		t.Fatalf("h1->h2 should fail over via r2: %s", tr)
	}
	if !tr.Traverses("r2") {
		t.Fatalf("failover path should traverse r2, got %v", tr.Path())
	}
}

func TestOSPFAreaMismatchBreaksAdjacency(t *testing.T) {
	n := threeRouterNet()
	// Put r2 entirely in area 1: r1-r2 and r2-r3 adjacencies fail.
	n.Device("r2").OSPF.Networks = []netmodel.OSPFNetwork{{Prefix: pfx("10.0.0.0/8"), Area: 1}}
	// Also kill the shortcut so there is no alternative.
	n.Device("r1").Interface("Gi0/2").Shutdown = true
	n.Device("r3").Interface("Gi0/2").Shutdown = true
	s := Compute(n)
	tr, _ := s.Reach("h1", "h2", netmodel.ICMP, 0)
	if tr.Delivered() {
		t.Fatalf("area mismatch should break reachability: %s", tr)
	}
}

func TestOSPFPassiveInterfaceFormsNoAdjacency(t *testing.T) {
	n := threeRouterNet()
	n.Device("r1").Interface("Gi0/2").Shutdown = true
	n.Device("r3").Interface("Gi0/2").Shutdown = true
	// Make r2's link to r3 passive: r2-r3 adjacency disappears.
	n.Device("r2").OSPF.Passive["Gi0/1"] = true
	s := Compute(n)
	tr, _ := s.Reach("h1", "h2", netmodel.ICMP, 0)
	if tr.Delivered() {
		t.Fatalf("passive interface should break the only path: %s", tr)
	}
}

func TestInterfaceDownBreaksReachability(t *testing.T) {
	n := threeRouterNet()
	n.Device("r1").Interface("Gi0/0").Shutdown = true // host-facing
	s := Compute(n)
	tr, _ := s.Reach("h1", "h2", netmodel.ICMP, 0)
	if tr.Delivered() {
		t.Fatal("h1's gateway interface is down; traffic should not deliver")
	}
}

func TestACLDropsAtIngressAndEgress(t *testing.T) {
	n := threeRouterNet()
	r3 := n.Device("r3")
	acl := r3.ACL("BLOCK-WEB", true)
	acl.InsertEntry(netmodel.ACLEntry{Seq: 10, Action: netmodel.Deny, Proto: netmodel.TCP,
		Dst: pfx("10.2.0.10/32"), DstPort: 80})
	acl.InsertEntry(netmodel.ACLEntry{Seq: 20, Action: netmodel.Permit, Proto: netmodel.AnyProto})
	r3.Interface("Gi0/2").ACLIn = "BLOCK-WEB"
	r3.Interface("Gi0/0").ACLIn = "BLOCK-WEB"

	s := Compute(n)
	web, _ := s.Reach("h1", "h2", netmodel.TCP, 80)
	if web.Delivered() || web.Disposition != DropACL || web.Where != "r3" {
		t.Fatalf("tcp/80 should be ACL-dropped at r3: %s", web)
	}
	ssh, _ := s.Reach("h1", "h2", netmodel.TCP, 22)
	if !ssh.Delivered() {
		t.Fatalf("tcp/22 should pass: %s", ssh)
	}

	// Egress direction.
	r3.Interface("Gi0/2").ACLIn = ""
	r3.Interface("Gi0/0").ACLIn = ""
	r3.Interface("Gi0/1").ACLOut = "BLOCK-WEB"
	s2 := Compute(n)
	web2, _ := s2.Reach("h1", "h2", netmodel.TCP, 80)
	if web2.Disposition != DropACL {
		t.Fatalf("egress ACL should drop: %s", web2)
	}
}

func TestStaticRouteAndNoRoute(t *testing.T) {
	n := netmodel.NewNetwork("static")
	r1 := n.AddDevice("r1", netmodel.Router)
	r2 := n.AddDevice("r2", netmodel.Router)
	h1 := n.AddDevice("h1", netmodel.Host)
	h2 := n.AddDevice("h2", netmodel.Host)
	n.MustConnect("h1", "eth0", "r1", "Gi0/0")
	n.MustConnect("r1", "Gi0/1", "r2", "Gi0/0")
	n.MustConnect("r2", "Gi0/1", "h2", "eth0")

	h1.Interface("eth0").Addr = pfx("10.1.0.10/24")
	h1.DefaultGateway = ip("10.1.0.1")
	r1.Interface("Gi0/0").Addr = pfx("10.1.0.1/24")
	r1.Interface("Gi0/1").Addr = pfx("10.0.12.1/30")
	r2.Interface("Gi0/0").Addr = pfx("10.0.12.2/30")
	r2.Interface("Gi0/1").Addr = pfx("10.2.0.1/24")
	h2.Interface("eth0").Addr = pfx("10.2.0.10/24")
	h2.DefaultGateway = ip("10.2.0.1")

	// Forward direction only: r1 knows 10.2/16, r2 lacks the return route.
	r1.StaticRoutes = []netmodel.StaticRoute{{Prefix: pfx("10.2.0.0/16"), NextHop: ip("10.0.12.2")}}

	s := Compute(n)
	fwd, _ := s.Reach("h1", "h2", netmodel.ICMP, 0)
	if !fwd.Delivered() {
		t.Fatalf("forward with static route should deliver: %s", fwd)
	}
	back, _ := s.Reach("h2", "h1", netmodel.ICMP, 0)
	if back.Delivered() || back.Disposition != DropNoRoute || back.Where != "r2" {
		t.Fatalf("return without route should drop at r2: %s", back)
	}

	// Inactive static route: next hop not on a connected subnet.
	r2.StaticRoutes = []netmodel.StaticRoute{{Prefix: pfx("10.1.0.0/16"), NextHop: ip("192.168.99.1")}}
	s2 := Compute(n)
	back2, _ := s2.Reach("h2", "h1", netmodel.ICMP, 0)
	if back2.Delivered() {
		t.Fatal("unresolvable static route should stay inactive")
	}
}

func TestRoutingLoopDetected(t *testing.T) {
	n := netmodel.NewNetwork("loop")
	r1 := n.AddDevice("r1", netmodel.Router)
	r2 := n.AddDevice("r2", netmodel.Router)
	h1 := n.AddDevice("h1", netmodel.Host)
	n.MustConnect("h1", "eth0", "r1", "Gi0/0")
	n.MustConnect("r1", "Gi0/1", "r2", "Gi0/0")
	h1.Interface("eth0").Addr = pfx("10.1.0.10/24")
	h1.DefaultGateway = ip("10.1.0.1")
	r1.Interface("Gi0/0").Addr = pfx("10.1.0.1/24")
	r1.Interface("Gi0/1").Addr = pfx("10.0.12.1/30")
	r2.Interface("Gi0/0").Addr = pfx("10.0.12.2/30")
	// Mutual default routes: 9.9.9.9 ping-pongs between r1 and r2.
	r1.StaticRoutes = []netmodel.StaticRoute{{Prefix: pfx("0.0.0.0/0"), NextHop: ip("10.0.12.2")}}
	r2.StaticRoutes = []netmodel.StaticRoute{{Prefix: pfx("0.0.0.0/0"), NextHop: ip("10.0.12.1")}}

	s := Compute(n)
	tr := s.TraceFrom("h1", Flow{Proto: netmodel.ICMP, Src: ip("10.1.0.10"), Dst: ip("9.9.9.9")})
	if tr.Disposition != DropLoop {
		t.Fatalf("expected loop, got %s", tr)
	}
}

// vlanNet builds two hosts on a two-switch fabric:
//
//	h10 -- sw1 ==trunk== sw2 -- h20   (h10 vlan 10, h20 vlan 20)
//	sw1 has SVIs for vlan 10 and 20 and routes between them.
func vlanNet() *netmodel.Network {
	n := netmodel.NewNetwork("vlan")
	sw1 := n.AddDevice("sw1", netmodel.Switch)
	sw2 := n.AddDevice("sw2", netmodel.Switch)
	h10 := n.AddDevice("h10", netmodel.Host)
	h20 := n.AddDevice("h20", netmodel.Host)

	n.MustConnect("h10", "eth0", "sw1", "Gi1/0/1")
	n.MustConnect("h20", "eth0", "sw2", "Gi1/0/1")
	n.MustConnect("sw1", "Gi1/0/24", "sw2", "Gi1/0/24")

	for _, sw := range []*netmodel.Device{sw1, sw2} {
		sw.VLANs[10] = &netmodel.VLAN{ID: 10, Name: "users"}
		sw.VLANs[20] = &netmodel.VLAN{ID: 20, Name: "servers"}
	}
	p := sw1.Interface("Gi1/0/1")
	p.Mode, p.AccessVLAN = netmodel.Access, 10
	p = sw2.Interface("Gi1/0/1")
	p.Mode, p.AccessVLAN = netmodel.Access, 20
	for _, sw := range []*netmodel.Device{sw1, sw2} {
		tr := sw.Interface("Gi1/0/24")
		tr.Mode, tr.TrunkVLANs = netmodel.Trunk, []int{10, 20}
	}
	svi10 := sw1.AddInterface("Vlan10")
	svi10.Addr = pfx("10.10.0.1/24")
	svi20 := sw1.AddInterface("Vlan20")
	svi20.Addr = pfx("10.20.0.1/24")

	h10.Interface("eth0").Addr = pfx("10.10.0.5/24")
	h10.DefaultGateway = ip("10.10.0.1")
	h20.Interface("eth0").Addr = pfx("10.20.0.5/24")
	h20.DefaultGateway = ip("10.20.0.1")
	return n
}

func TestInterVLANRoutingViaSVI(t *testing.T) {
	n := vlanNet()
	s := Compute(n)
	tr, err := s.Reach("h10", "h20", netmodel.ICMP, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Delivered() {
		t.Fatalf("inter-VLAN via SVI should deliver: %s", tr)
	}
	if !tr.Traverses("sw1") {
		t.Fatalf("path should route through sw1's SVIs, got %v", tr.Path())
	}
}

func TestWrongAccessVLANBreaksConnectivity(t *testing.T) {
	n := vlanNet()
	// Misconfigure h20's port into vlan 30: it leaves the 20 domain.
	n.Device("sw2").Interface("Gi1/0/1").AccessVLAN = 30
	s := Compute(n)
	tr, _ := s.Reach("h10", "h20", netmodel.ICMP, 0)
	if tr.Delivered() {
		t.Fatalf("wrong access VLAN should strand h20: %s", tr)
	}
}

func TestTrunkMissingVLANBreaksConnectivity(t *testing.T) {
	n := vlanNet()
	// Trunk drops vlan 20: frames from sw1's SVI20 cannot reach sw2.
	n.Device("sw1").Interface("Gi1/0/24").TrunkVLANs = []int{10}
	s := Compute(n)
	tr, _ := s.Reach("h10", "h20", netmodel.ICMP, 0)
	if tr.Delivered() {
		t.Fatalf("trunk without vlan 20 should break: %s", tr)
	}
}

func TestSameVLANAcrossSwitches(t *testing.T) {
	n := vlanNet()
	// Move h20 into vlan 10 with a vlan-10 address: pure L2 path.
	n.Device("sw2").Interface("Gi1/0/1").AccessVLAN = 10
	n.Device("h20").Interface("eth0").Addr = pfx("10.10.0.6/24")
	n.Device("h20").DefaultGateway = ip("10.10.0.1")
	s := Compute(n)
	tr, _ := s.Reach("h10", "h20", netmodel.ICMP, 0)
	if !tr.Delivered() {
		t.Fatalf("same-VLAN hosts should reach at L2: %s", tr)
	}
	// Direct L2: no routed hop between the hosts.
	if tr.Traverses("sw1") || tr.Traverses("sw2") {
		t.Fatalf("L2 path should not show switch hops, got %v", tr.Path())
	}
}

func TestRIBContents(t *testing.T) {
	n := threeRouterNet()
	s := Compute(n)
	rib := s.RIB("r1")
	var haveConnected, haveOSPF bool
	for _, e := range rib {
		switch {
		case e.Proto == Connected && e.Prefix == pfx("10.1.0.0/24"):
			haveConnected = true
		case e.Proto == OSPF && e.Prefix == pfx("10.2.0.0/24"):
			haveOSPF = true
			if e.AD != 110 {
				t.Errorf("OSPF AD = %d, want 110", e.AD)
			}
			if e.NextHop != ip("10.0.13.3") {
				t.Errorf("OSPF next hop = %s, want 10.0.13.3 (direct path)", e.NextHop)
			}
		}
	}
	if !haveConnected || !haveOSPF {
		t.Fatalf("RIB missing expected routes:\n%s", s.FormatRIB("r1"))
	}
	if s.FormatRIB("nope") != "% no routing table" {
		t.Error("unknown device should render an error")
	}
}

func TestECMPKeptInRIB(t *testing.T) {
	// Diamond: r1 -> {r2, r3} -> r4, equal cost to r4's subnet.
	n := netmodel.NewNetwork("diamond")
	for _, name := range []string{"r1", "r2", "r3", "r4"} {
		n.AddDevice(name, netmodel.Router)
	}
	n.MustConnect("r1", "Gi0/0", "r2", "Gi0/0")
	n.MustConnect("r1", "Gi0/1", "r3", "Gi0/0")
	n.MustConnect("r2", "Gi0/1", "r4", "Gi0/0")
	n.MustConnect("r3", "Gi0/1", "r4", "Gi0/1")
	addr := map[string]string{
		"r1:Gi0/0": "10.0.12.1/30", "r2:Gi0/0": "10.0.12.2/30",
		"r1:Gi0/1": "10.0.13.1/30", "r3:Gi0/0": "10.0.13.2/30",
		"r2:Gi0/1": "10.0.24.1/30", "r4:Gi0/0": "10.0.24.2/30",
		"r3:Gi0/1": "10.0.34.1/30", "r4:Gi0/1": "10.0.34.2/30",
	}
	for k, v := range addr {
		dev, ifn, _ := cut(k)
		n.Device(dev).Interface(ifn).Addr = pfx(v)
	}
	lo := n.Device("r4").AddInterface("Loopback0")
	lo.Addr = pfx("4.4.4.4/32")
	for _, name := range []string{"r1", "r2", "r3", "r4"} {
		n.Device(name).OSPF = &netmodel.OSPFProcess{
			ProcessID: 1,
			Networks: []netmodel.OSPFNetwork{
				{Prefix: pfx("10.0.0.0/8"), Area: 0},
				{Prefix: pfx("4.4.4.4/32"), Area: 0},
			},
			Passive: map[string]bool{"Loopback0": true},
		}
	}
	s := Compute(n)
	var hops int
	for _, e := range s.RIB("r1") {
		if e.Proto == OSPF && e.Prefix == pfx("4.4.4.4/32") {
			hops++
		}
	}
	if hops != 2 {
		t.Fatalf("expected 2 ECMP next hops to 4.4.4.4/32, got %d:\n%s", hops, s.FormatRIB("r1"))
	}
}

func cut(s string) (string, string, bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == ':' {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}

func TestLPMBasics(t *testing.T) {
	var l LPM
	mk := func(p string) []FIBEntry { return []FIBEntry{{Prefix: pfx(p)}} }
	l.Insert(pfx("10.0.0.0/8"), mk("10.0.0.0/8"))
	l.Insert(pfx("10.1.0.0/16"), mk("10.1.0.0/16"))
	l.Insert(pfx("10.1.2.0/24"), mk("10.1.2.0/24"))
	l.Insert(pfx("0.0.0.0/0"), mk("0.0.0.0/0"))

	cases := map[string]string{
		"10.1.2.3":  "10.1.2.0/24",
		"10.1.9.9":  "10.1.0.0/16",
		"10.9.9.9":  "10.0.0.0/8",
		"192.0.2.1": "0.0.0.0/0",
	}
	for addr, want := range cases {
		got, ok := l.Lookup(ip(addr))
		if !ok || got[0].Prefix != pfx(want) {
			t.Errorf("Lookup(%s) = %v %v, want %s", addr, got, ok, want)
		}
	}
	if l.Len() != 4 {
		t.Errorf("Len = %d, want 4", l.Len())
	}
	// Replacement does not grow the table.
	l.Insert(pfx("10.1.2.0/24"), mk("10.1.2.0/24"))
	if l.Len() != 4 {
		t.Errorf("Len after replace = %d, want 4", l.Len())
	}

	var empty LPM
	if _, ok := empty.Lookup(ip("10.0.0.1")); ok {
		t.Error("empty LPM should miss")
	}
}

// Property: LPM lookup equals a linear longest-prefix scan.
func TestLPMMatchesLinearScan(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		var l LPM
		var prefixes []netip.Prefix
		seen := map[netip.Prefix]bool{}
		for i := 0; i < 30; i++ {
			p := netip.PrefixFrom(netip.AddrFrom4([4]byte{
				byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)),
			}), r.Intn(33)).Masked()
			if seen[p] {
				continue
			}
			seen[p] = true
			prefixes = append(prefixes, p)
			l.Insert(p, []FIBEntry{{Prefix: p}})
		}
		for probe := 0; probe < 50; probe++ {
			a := netip.AddrFrom4([4]byte{byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))})
			var want netip.Prefix
			wantBits := -1
			for _, p := range prefixes {
				if p.Contains(a) && p.Bits() > wantBits {
					want, wantBits = p, p.Bits()
				}
			}
			got, ok := l.Lookup(a)
			if wantBits < 0 {
				if ok {
					t.Fatalf("trial %d: lookup(%s) found %v, want miss", trial, a, got)
				}
				continue
			}
			if !ok || got[0].Prefix != want {
				t.Fatalf("trial %d: lookup(%s) = %v %v, want %s", trial, a, got, ok, want)
			}
		}
	}
}

// Property: shutting down any single transit interface never yields a
// "delivered with missing hops" inconsistency — every trace either delivers
// with a coherent hop list or reports a drop with a location.
func TestTraceCoherenceUnderFaults(t *testing.T) {
	base := threeRouterNet()
	for _, dev := range base.RoutersAndSwitches() {
		for _, ifName := range base.Devices[dev].InterfaceNames() {
			n := base.Clone()
			n.Devices[dev].Interfaces[ifName].Shutdown = true
			s := Compute(n)
			tr, err := s.Reach("h1", "h2", netmodel.ICMP, 0)
			if err != nil {
				t.Fatal(err)
			}
			if tr.Delivered() {
				last := tr.Hops[len(tr.Hops)-1]
				if last.Device != "h2" {
					t.Fatalf("fault %s:%s: delivered but last hop %v", dev, ifName, last)
				}
			} else if tr.Where == "" {
				t.Fatalf("fault %s:%s: drop without location: %s", dev, ifName, tr)
			}
			if len(tr.Hops) == 0 {
				t.Fatalf("fault %s:%s: empty hop list", dev, ifName)
			}
		}
	}
}

func TestFlowString(t *testing.T) {
	f := Flow{Proto: netmodel.TCP, Src: ip("10.1.0.5"), SrcPort: 40000, Dst: ip("10.2.0.9"), DstPort: 80}
	if got := f.String(); got != "tcp 10.1.0.5:40000 -> 10.2.0.9:80" {
		t.Fatalf("Flow.String() = %q", got)
	}
	tr := &Trace{Flow: f, Disposition: DropACL, Where: "r3", Detail: "acl X in on Gi0/0",
		Hops: []Hop{{Device: "h1"}, {Device: "r3"}}}
	if tr.String() == "" || tr.Delivered() {
		t.Fatal("trace string/delivered wrong")
	}
}

func TestDispositionString(t *testing.T) {
	for d, want := range map[Disposition]string{
		Delivered: "delivered", DropNoRoute: "no-route", DropACL: "acl-deny",
		DropARPFail: "arp-fail", DropLoop: "loop",
	} {
		if d.String() != want {
			t.Errorf("%d = %q, want %q", int(d), d.String(), want)
		}
	}
}
